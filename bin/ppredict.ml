(* ppredict: command-line driver for the performance prediction framework.

   Subcommands:
     predict   FILE        symbolic performance expressions for each routine
     schedule  FILE        atomic ops + bin diagram of the innermost block
     compare   F1 F2       symbolic comparison of two variants
     search    FILE        performance-guided restructuring
     lint      FILE        static diagnostics (defects + precision losses)
     ranges    FILE        interval abstract interpretation: loop/variable ranges
     machine   [NAME]      print a machine description (textual format)
*)

open Cmdliner
open Pperf_lang
open Pperf_machine
open Pperf_sched
open Pperf_core

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let machine_of_spec spec =
  match spec with
  | "power1" -> Machine.power1
  | "power1x2" -> Machine.power1_wide
  | "alpha21064" | "alpha" -> Machine.alpha21064
  | "scalar" -> Machine.scalar
  | path when Sys.file_exists path -> Descr.of_string (read_file path)
  | other -> failwith (Printf.sprintf "unknown machine %s (power1|power1x2|alpha21064|scalar|FILE)" other)

let machine_arg =
  let doc = "Target machine: power1, power1x2, alpha21064, scalar, or a description file." in
  Arg.(value & opt string "power1" & info [ "m"; "machine" ] ~docv:"MACHINE" ~doc)

let memory_arg =
  let doc = "Include the cache cost model." in
  Arg.(value & flag & info [ "memory" ] ~doc)

let file_arg idx name =
  Arg.(required & pos idx (some file) None & info [] ~docv:name ~doc:"PF source file")

let eval_arg =
  let doc = "Evaluate the expression at VAR=VALUE (repeatable). --bind is a synonym." in
  Arg.(value & opt_all string [] & info [ "eval"; "bind" ] ~docv:"VAR=VALUE" ~doc)

let strict_arg =
  let doc = "Treat binding mismatches (unbound or unused variable names) as errors." in
  Arg.(value & flag & info [ "strict" ] ~doc)

let stats_arg =
  let doc = "Append a JSON object of internal operation counters to the output." in
  Arg.(value & flag & info [ "stats" ] ~doc)

let with_stats stats f =
  Pperf_obs.Obs.reset_all ();
  f ();
  if stats then print_string (Pperf_obs.Obs.to_json () ^ "\n")

(* an --eval/--bind set that names variables the expression does not have,
   or misses variables it does, silently predicts with the wrong values
   (unbound unknowns default to 1.0); say so *)
let check_bindings ~strict ~expr_vars ~prob_vars bindings =
  if bindings <> [] then (
    let bound = List.map fst bindings in
    let known v = List.mem v expr_vars || List.mem v prob_vars in
    let unused = List.filter (fun v -> not (known v)) bound in
    let unbound = List.filter (fun v -> not (List.mem v bound)) expr_vars in
    let msgs =
      (if unused = [] then []
       else
         [ Printf.sprintf
             "binding%s %s do%s not match any variable of the performance expression"
             (if List.length unused = 1 then "" else "s")
             (String.concat ", " unused)
             (if List.length unused = 1 then "es" else "") ])
      @
      if unbound = [] then []
      else
        [ Printf.sprintf "unbound variable%s %s default%s to 1.0"
            (if List.length unbound = 1 then "" else "s")
            (String.concat ", " unbound)
            (if List.length unbound = 1 then "s" else "") ]
    in
    if msgs <> [] then
      if strict then failwith (String.concat "; " msgs)
      else List.iter (fun m -> Printf.eprintf "warning: %s\n%!" m) msgs)

let parse_bindings specs =
  List.map
    (fun s ->
      match String.index_opt s '=' with
      | Some i -> (
        let value = String.sub s (i + 1) (String.length s - i - 1) in
        match float_of_string_opt value with
        | Some f -> (String.sub s 0 i, f)
        | None ->
          failwith
            (Printf.sprintf "malformed --eval binding '%s': '%s' is not a number" s value))
      | None ->
        failwith
          (Printf.sprintf "malformed --eval binding '%s': expected VAR=VALUE" s))
    specs

let options_of ~memory =
  { Aggregate.default_options with include_memory = memory }

let ranges_flag =
  let doc =
    "Run the interval abstract interpretation first and use the inferred \
     variable ranges (tighter trip counts, statically decided comparisons, \
     fewer false positives)."
  in
  Arg.(value & flag & info [ "ranges" ] ~doc)

let handle_code f =
  try f () with
  | Parser.Error (msg, loc) ->
    Printf.eprintf "parse error at %s: %s\n" (Srcloc.to_string loc) msg;
    1
  | Typecheck.Type_error (msg, loc) ->
    Printf.eprintf "type error at %s: %s\n" (Srcloc.to_string loc) msg;
    1
  | Descr.Parse_error msg ->
    Printf.eprintf "machine description error: %s\n" msg;
    1
  | Machine.Unknown_atomic { machine; op } ->
    Printf.eprintf "error: machine %s has no atomic operation %s\n" machine op;
    1
  | Failure msg ->
    Printf.eprintf "error: %s\n" msg;
    1

let handle f =
  handle_code (fun () ->
      f ();
      0)

(* ---- predict ---- *)

let interproc_arg =
  let doc = "Charge call sites with callee performance expressions (§3.5)." in
  Arg.(value & flag & info [ "interprocedural"; "i" ] ~doc)

let predict_cmd =
  let run mspec memory interproc use_ranges strict stats evals file =
    handle (fun () ->
        with_stats stats (fun () ->
        let machine = machine_of_spec mspec in
        let options = { (options_of ~memory) with Aggregate.infer_ranges = use_ranges } in
        let bindings = parse_bindings evals in
        if interproc then (
          let t = Interproc.of_source ~options ~machine (read_file file) in
          Format.printf "%a" Interproc.pp t;
          if bindings <> [] then
            List.iter
              (fun (rp : Interproc.routine_prediction) ->
                let total = Perf_expr.total rp.prediction.cost in
                check_bindings ~strict ~expr_vars:(Pperf_symbolic.Poly.vars total)
                  ~prob_vars:rp.prediction.prob_vars bindings;
                let v =
                  Pperf_symbolic.Poly.eval_float
                    (fun x -> match List.assoc_opt x bindings with Some f -> f | None -> 1.0)
                    total
                in
                Format.printf "  %s at bindings: %.0f cycles@." rp.checked.routine.rname v)
              t.routines)
        else
          List.iter
            (fun p ->
              Format.printf "%a@." Predict.pp p;
              if Predict.prob_vars p <> [] then
                Format.printf "  branch probabilities: %s (in [0,1])@."
                  (String.concat ", " (Predict.prob_vars p));
              let diags = Predict.precision_diagnostics ~ranges:use_ranges p in
              if diags <> [] then (
                Format.printf "  precision diagnostics:@.";
                List.iter
                  (fun d -> Format.printf "    %a@." Pperf_lint.Diagnostic.pp_short d)
                  diags);
              if bindings <> [] then (
                check_bindings ~strict
                  ~expr_vars:(Pperf_symbolic.Poly.vars (Predict.total p))
                  ~prob_vars:(Predict.prob_vars p) bindings;
                Format.printf "  at %s: %.0f cycles@."
                  (String.concat ", "
                     (List.map (fun (v, x) -> Printf.sprintf "%s=%g" v x) bindings))
                  (Predict.eval p bindings)))
            (Predict.of_program ~options ~machine (read_file file))))
  in
  let doc = "Predict performance expressions for each routine in a PF file." in
  Cmd.v (Cmd.info "predict" ~doc)
    Term.(const run $ machine_arg $ memory_arg $ interproc_arg $ ranges_flag $ strict_arg
          $ stats_arg $ eval_arg $ file_arg 0 "FILE")

(* ---- schedule ---- *)

let schedule_cmd =
  let run mspec file =
    handle (fun () ->
        let machine = machine_of_spec mspec in
        let checked = Typecheck.check_program (Parser.parse_program (read_file file)) in
        List.iter
          (fun (c : Typecheck.checked) ->
            Format.printf "routine %s:@." c.routine.rname;
            List.iter
              (fun (loops, body) ->
                let loop_vars = List.map (fun (l : Analysis.loop_ctx) -> l.lvar) loops in
                let assigned = Analysis.assigned_vars c.routine.body in
                let invariants =
                  Analysis.SSet.diff
                    (Analysis.SSet.union (Analysis.used_vars c.routine.body) assigned)
                    assigned
                in
                let res =
                  Pperf_translate.Translator.translate_block ~machine ~symtab:c.symbols
                    ~loop_vars ~invariants body
                in
                Format.printf "@.innermost block under loops [%s]:@.%a@."
                  (String.concat "," loop_vars) Dag.pp res.body;
                let bins = Bins.create machine in
                let s = Bins.drop_dag bins res.body in
                Format.printf "%a@." Bins.pp bins;
                Format.printf
                  "cost %d cycles | critical path %d | operation count %d | reference %d@."
                  s.cost (Dag.critical_path res.body)
                  (Bins.Opcount.cost res.body)
                  (Pperf_backend.Pipeline.reference_cycles machine res.body))
              (Analysis.innermost_bodies c.routine.body))
          checked)
  in
  let doc = "Show the translated atomic operations and their bin schedule." in
  Cmd.v (Cmd.info "schedule" ~doc) Term.(const run $ machine_arg $ file_arg 0 "FILE")

(* ---- compare ---- *)

let range_arg =
  let doc = "Range of an unknown: VAR=LO:HI (repeatable)." in
  Arg.(value & opt_all string [] & info [ "range" ] ~docv:"VAR=LO:HI" ~doc)

let compare_cmd =
  let run mspec memory ranges use_ranges stats f1 f2 =
    handle (fun () ->
        with_stats stats (fun () ->
        let machine = machine_of_spec mspec in
        let options = options_of ~memory in
        let user_env =
          List.fold_left
            (fun env spec ->
              match String.split_on_char '=' spec with
              | [ v; range ] -> (
                match String.split_on_char ':' range with
                | [ lo; hi ] ->
                  Pperf_symbolic.Interval.Env.add v
                    (Pperf_symbolic.Interval.of_ints (int_of_string lo) (int_of_string hi))
                    env
                | _ -> failwith ("malformed range " ^ spec))
              | _ -> failwith ("malformed range " ^ spec))
            Pperf_symbolic.Interval.Env.empty ranges
        in
        let c1 = Typecheck.check_routine (Parser.parse_routine (read_file f1)) in
        let c2 = Typecheck.check_routine (Parser.parse_routine (read_file f2)) in
        let env =
          if use_ranges then Compare.inferred_env ~base:user_env [ c1; c2 ] else user_env
        in
        let p1 = Predict.of_checked ~options ~machine c1 in
        let p2 = Predict.of_checked ~options ~machine c2 in
        Format.printf "first:  %a@." Predict.pp p1;
        Format.printf "second: %a@." Predict.pp p2;
        let d = Compare.decide env (Predict.cost p1) (Predict.cost p2) in
        Format.printf "%a@." Compare.pp_decision d;
        match d.verdict with
        | Pperf_symbolic.Signs.Undecided diff ->
          let t = Runtime_test.of_difference env diff in
          Format.printf "suggested run-time test: %a@." Runtime_test.pp t
        | _ -> ()))
  in
  let doc = "Compare two program variants symbolically." in
  Cmd.v (Cmd.info "compare" ~doc)
    Term.(const run $ machine_arg $ memory_arg $ range_arg $ ranges_flag $ stats_arg
          $ file_arg 0 "FILE1" $ file_arg 1 "FILE2")

(* ---- search ---- *)

let search_cmd =
  let run mspec memory file =
    handle (fun () ->
        let machine = machine_of_spec mspec in
        let options = options_of ~memory in
        let checked = Typecheck.check_routine (Parser.parse_routine (read_file file)) in
        let out = Pperf_transform.Search.run ~machine ~options ~max_nodes:150 ~max_depth:3 checked in
        Format.printf "explored %d states@." out.explored;
        Format.printf "sequence: %s@."
          (if out.trace = [] then "(none)"
           else
             String.concat " ; "
               (List.map (fun (s : Pperf_transform.Search.step) -> s.action) out.trace));
        Format.printf "predicted: %a  ->  %a@." Perf_expr.pp out.initial Perf_expr.pp
          out.predicted;
        if out.blocked <> [] then (
          Format.printf "@.blocked by dependences:@.";
          List.iter
            (fun (b : Pperf_transform.Search.blocked) ->
              Format.printf "  %s at %a: %a@." b.action Pperf_transform.Transformations.pp_path
                b.at Pperf_lint.Diagnostic.pp_short b.why)
            out.blocked);
        Format.printf "@.%s" (Pp_ast.routine_to_string out.best.routine))
  in
  let doc = "Performance-guided automatic restructuring (A*-style search)." in
  Cmd.v (Cmd.info "search" ~doc) Term.(const run $ machine_arg $ memory_arg $ file_arg 0 "FILE")

(* ---- report ---- *)

let report_cmd =
  let run mspec memory ranges file =
    handle (fun () ->
        let machine = machine_of_spec mspec in
        let options = options_of ~memory in
        let env =
          List.fold_left
            (fun env spec ->
              match String.split_on_char '=' spec with
              | [ v; range ] -> (
                match String.split_on_char ':' range with
                | [ lo; hi ] ->
                  Pperf_symbolic.Interval.Env.add v
                    (Pperf_symbolic.Interval.of_ints (int_of_string lo) (int_of_string hi))
                    env
                | _ -> failwith ("malformed range " ^ spec))
              | _ -> failwith ("malformed range " ^ spec))
            Pperf_symbolic.Interval.Env.empty ranges
        in
        List.iter
          (fun checked ->
            let r = Report.generate ~options ~env ~machine checked in
            Format.printf "%a@." Report.pp r)
          (Typecheck.check_program (Parser.parse_program (read_file file))))
  in
  let doc = "Full prediction report: expression, unknowns, sensitivity, hot spots." in
  Cmd.v (Cmd.info "report" ~doc)
    Term.(const run $ machine_arg $ memory_arg $ range_arg $ file_arg 0 "FILE")

(* ---- deps ---- *)

let deps_cmd =
  let run file =
    handle (fun () ->
        let checked = Typecheck.check_program (Parser.parse_program (read_file file)) in
        List.iter
          (fun (c : Typecheck.checked) ->
            Format.printf "routine %s:@." c.routine.rname;
            let deps = Depend.dependences_in c.routine.body in
            if deps = [] then Format.printf "  no data dependences@."
            else
              List.iter
                (fun (d : Depend.dependence) ->
                  Format.printf "  %a  (line %d -> line %d)@." Depend.pp_dependence d
                    d.src.Analysis.at.Srcloc.line d.dst.Analysis.at.Srcloc.line)
                deps;
            (* interchange legality of each outer perfect nest *)
            Ast.iter_stmts
              (fun s ->
                match s.Ast.kind with
                | Ast.Do d when (match d.body with [ { kind = Ast.Do _; _ } ] -> true | _ -> false) ->
                  Format.printf "  nest at line %d: interchange %s@." s.loc.Srcloc.line
                    (if Depend.interchange_legal d then "legal" else "ILLEGAL")
                | _ -> ())
              c.routine.body)
          checked)
  in
  let doc = "Report data dependences and interchange legality." in
  Cmd.v (Cmd.info "deps" ~doc) Term.(const run $ file_arg 0 "FILE")

(* ---- run (interpreter + profile) ---- *)

let run_cmd =
  let run mspec evals file =
    handle (fun () ->
        let machine = machine_of_spec mspec in
        let bindings = parse_bindings evals in
        let args =
          List.map (fun (v, f) ->
              (v, if Float.is_integer f then Pperf_exec.Interp.VInt (int_of_float f)
                  else Pperf_exec.Interp.VReal f))
            bindings
        in
        let res = Pperf_exec.Interp.run_source ~machine ~args (read_file file) in
        Format.printf "dynamic cycles: %.0f@." res.cycles;
        Format.printf "profile:@.%a" Pperf_exec.Interp.Profile.pp res.profile;
        (* compare with the static prediction at the same bindings *)
        let p = Predict.of_source ~machine (read_file file) in
        let static = Predict.eval p bindings in
        Format.printf "static prediction %a = %.0f (%.2f%% from dynamic)@." Predict.pp p static
          (100.0 *. Float.abs (static -. res.cycles) /. Float.max 1.0 res.cycles))
  in
  let doc = "Interpret the program, profile it, and validate the static prediction." in
  Cmd.v (Cmd.info "run" ~doc) Term.(const run $ machine_arg $ eval_arg $ file_arg 0 "FILE")

(* ---- lint ---- *)

let lint_cmd =
  let run json use_ranges file =
    handle_code (fun () ->
        let reports = Pperf_lint.Lint.run_source ~ranges:use_ranges (read_file file) in
        if json then print_string (Pperf_lint.Lint.to_json reports)
        else Format.printf "%a" Pperf_lint.Lint.pp reports;
        Pperf_lint.Lint.exit_code reports)
  in
  let json_arg =
    let doc = "Emit diagnostics as JSON instead of text." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let doc =
    "Run the static diagnostic checks over a PF file: program defects \
     (out-of-bounds subscripts, use before definition, zero loop steps, possible \
     division by zero, dead branches) and the places where the performance \
     prediction goes conservative (non-affine subscripts, unknown call costs). \
     Exit status is 2 when any error is reported, 1 when any warning, else 0."
  in
  Cmd.v (Cmd.info "lint" ~doc)
    Term.(const run $ json_arg $ ranges_flag $ file_arg 0 "FILE")

(* ---- ranges ---- *)

let ranges_cmd =
  let module Absint = Pperf_absint.Absint in
  let module Interval = Pperf_symbolic.Interval in
  let run json stats file =
    handle (fun () ->
        with_stats stats (fun () ->
        let checkeds = Typecheck.check_program (Parser.parse_program (read_file file)) in
        let analyzed =
          List.map (fun (c : Typecheck.checked) -> (c, Absint.analyze c)) checkeds
        in
        if json then (
          let buf = Buffer.create 1024 in
          Buffer.add_string buf "{\"routines\":[";
          List.iteri
            (fun i ((c : Typecheck.checked), r) ->
              if i > 0 then Buffer.add_char buf ',';
              Printf.bprintf buf "{\"routine\":\"%s\",\"loops\":[" c.routine.rname;
              List.iteri
                (fun j (l : Absint.loop_range) ->
                  if j > 0 then Buffer.add_char buf ',';
                  Printf.bprintf buf
                    "{\"var\":\"%s\",\"line\":%d,\"depth\":%d,\"index\":\"%s\",\"trip\":\"%s\"}"
                    l.lvar l.at.Srcloc.line l.depth
                    (Interval.to_string l.index)
                    (Interval.to_string l.trip))
                (Absint.loops r);
              Buffer.add_string buf "],\"summary\":{";
              List.iteri
                (fun j (x, iv) ->
                  if j > 0 then Buffer.add_char buf ',';
                  Printf.bprintf buf "\"%s\":\"%s\"" x (Interval.to_string iv))
                (Interval.Env.bindings (Absint.summary r));
              Buffer.add_string buf "}}")
            analyzed;
          Buffer.add_string buf "]}\n";
          print_string (Buffer.contents buf))
        else
          List.iter
            (fun ((c : Typecheck.checked), r) ->
              Format.printf "routine %s:@." c.routine.rname;
              (match Absint.loops r with
               | [] -> Format.printf "  no loops@."
               | ls ->
                 Format.printf "  loops:@.";
                 List.iter (fun l -> Format.printf "    %a@." Absint.pp_loop_range l) ls);
              match Interval.Env.bindings (Absint.summary r) with
              | [] -> Format.printf "  no variable ranges inferred@."
              | bs ->
                Format.printf "  variable ranges:@.";
                List.iter
                  (fun (x, iv) -> Format.printf "    %s in %s@." x (Interval.to_string iv))
                  bs)
            analyzed))
  in
  let json_arg =
    let doc = "Emit the ranges as JSON instead of text." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let doc =
    "Run the interval abstract interpretation over each routine and print the \
     inferred ranges: per-loop index and trip-count intervals (indented by \
     nesting depth) and the routine-wide variable range summary."
  in
  Cmd.v (Cmd.info "ranges" ~doc) Term.(const run $ json_arg $ stats_arg $ file_arg 0 "FILE")

(* ---- machine ---- *)

let machine_cmd =
  let run mspec =
    handle (fun () ->
        let m = machine_of_spec mspec in
        print_string (Descr.to_string m))
  in
  let doc = "Print a machine description in the portable textual format." in
  let spec = Arg.(value & pos 0 string "power1" & info [] ~docv:"MACHINE" ~doc:"machine name or file") in
  Cmd.v (Cmd.info "machine" ~doc) Term.(const run $ spec)

let () =
  let doc = "compile-time performance prediction for superscalar machines" in
  let info = Cmd.info "ppredict" ~version:"1.0.0" ~doc in
  exit (Cmd.eval' (Cmd.group info [ predict_cmd; schedule_cmd; compare_cmd; search_cmd; run_cmd; deps_cmd; report_cmd; lint_cmd; ranges_cmd; machine_cmd ]))
