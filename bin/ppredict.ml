(* ppredict: command-line driver for the performance prediction framework.

   Subcommands:
     predict   FILE        symbolic performance expressions for each routine
     schedule  FILE        atomic ops + bin diagram of the innermost block
     compare   F1 F2       symbolic comparison of two variants
     bounds    FILE        three-bound analysis: bin-packing vs critical
                           path/LCD vs memory, per loop nest
     search    FILE        performance-guided restructuring
     lint      FILE        static diagnostics (defects + precision losses)
     ranges    FILE        interval abstract interpretation: loop/variable ranges
     machine   [NAME]      print a machine description (textual format)
     machines              list known machines (builtins + .pmach files)
     calibrate             fit an issue-port cost model by measurement
     batch     [FILE]      answer a file/stream of JSON-lines requests
     serve                 long-lived JSON-lines prediction daemon

   The query subcommands render through Pperf_server.Render, the same code
   the server verbs use, so serve/batch responses are byte-identical to
   the one-shot subcommands. *)

open Cmdliner
open Pperf_lang
open Pperf_machine
open Pperf_sched
open Pperf_core

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* one "load the machine once" helper for every subcommand and the server:
   builtins resolve directly, description files are parsed once per content
   digest and their derived tables pre-built *)
let machine_of_spec = Pperf_server.Machines.load

let machine_arg =
  let doc = "Target machine: power1, power1x2, alpha21064, scalar, or a description file." in
  Arg.(value & opt string "power1" & info [ "m"; "machine" ] ~docv:"MACHINE" ~doc)

let memory_arg =
  let doc = "Include the cache cost model." in
  Arg.(value & flag & info [ "memory" ] ~doc)

let file_arg idx name =
  Arg.(required & pos idx (some file) None & info [] ~docv:name ~doc:"PF source file")

(* validate binding/range syntax at parse time: a malformed value is a
   clean cmdliner usage error, not a mid-run failure *)
let binding_conv =
  let parse s =
    match String.index_opt s '=' with
    | None -> Error (`Msg (Printf.sprintf "malformed binding '%s': expected VAR=VALUE" s))
    | Some i -> (
      let value = String.sub s (i + 1) (String.length s - i - 1) in
      match float_of_string_opt value with
      | Some _ -> Ok s
      | None ->
        Error (`Msg (Printf.sprintf "malformed binding '%s': '%s' is not a number" s value)))
  in
  Arg.conv ~docv:"VAR=VALUE" (parse, Format.pp_print_string)

let range_conv =
  let parse s =
    let bad reason = Error (`Msg (Printf.sprintf "malformed range '%s': %s" s reason)) in
    match String.split_on_char '=' s with
    | [ _; range ] -> (
      match String.split_on_char ':' range with
      | [ lo; hi ] -> (
        match (int_of_string_opt lo, int_of_string_opt hi) with
        | Some _, Some _ -> Ok s
        | _ -> bad "bounds must be integers")
      | _ -> bad "expected VAR=LO:HI")
    | _ -> bad "expected VAR=LO:HI"
  in
  Arg.conv ~docv:"VAR=LO:HI" (parse, Format.pp_print_string)

let eval_arg =
  let doc = "Evaluate the expression at VAR=VALUE (repeatable). --bind is a synonym." in
  Arg.(value & opt_all binding_conv [] & info [ "eval"; "bind" ] ~docv:"VAR=VALUE" ~doc)

let strict_arg =
  let doc = "Treat binding mismatches (unbound or unused variable names) as errors." in
  Arg.(value & flag & info [ "strict" ] ~doc)

let stats_arg =
  let doc = "Append a JSON object of internal operation counters to the output." in
  Arg.(value & flag & info [ "stats" ] ~doc)

let trace_arg =
  let doc =
    "Append a JSON span tree of the evaluation: per-phase (parse, typecheck, \
     aggregate, ...) wall time with self/total split."
  in
  Arg.(value & flag & info [ "trace" ] ~doc)

(* reset the registry, run the command, then append the requested
   telemetry: the span tree under --trace, the counters under --stats *)
let with_telemetry ?(stats = false) ?(trace = false) f =
  Pperf_obs.Obs.reset_all ();
  let code =
    if trace then (
      let code, node = Pperf_obs.Obs.Trace.collect f in
      print_string (Pperf_obs.Obs.Trace.to_json node ^ "\n");
      code)
    else f ()
  in
  if stats then print_string (Pperf_obs.Obs.to_json () ^ "\n");
  code

let with_stats ?(stats = false) ?(trace = false) f =
  ignore (with_telemetry ~stats ~trace (fun () -> f (); 0))

let parse_bindings = Pperf_server.Render.parse_bindings

let warn_stderr m = Printf.eprintf "warning: %s\n%!" m

let options_of ~memory =
  Pperf_server.Options.(to_aggregate { default with memory })

let ranges_flag =
  let doc =
    "Run the interval abstract interpretation first and use the inferred \
     variable ranges (tighter trip counts, statically decided comparisons, \
     fewer false positives)."
  in
  Arg.(value & flag & info [ "ranges" ] ~doc)

let domain_arg =
  let domains = List.map (fun d -> (d, d)) Pperf_absint.Absint.all_domains in
  let doc =
    "Abstract domain for the range analysis: $(b,interval) (the default), \
     $(b,octagon) (difference constraints ±x ± y <= c), $(b,affine) (exact \
     equalities x = Σ aᵢ·yᵢ + c), or $(b,product) (both with mutual \
     reduction). Relational domains decide comparisons and rebut \
     diagnostics that intervals alone cannot."
  in
  Arg.(value & opt (some (enum domains)) None & info [ "domain" ] ~docv:"DOMAIN" ~doc)

(* the enum already validated the name, so an unknown string is impossible *)
let resolve_domain = function
  | None -> Pperf_absint.Absint.Box
  | Some d -> (
    match Pperf_absint.Absint.domain_of_string d with
    | Some dom -> dom
    | None -> Pperf_absint.Absint.Box)

let handle_code f =
  try f () with
  | Parser.Error (msg, loc) ->
    Printf.eprintf "parse error at %s: %s\n" (Srcloc.to_string loc) msg;
    1
  | Typecheck.Type_error (msg, loc) ->
    Printf.eprintf "type error at %s: %s\n" (Srcloc.to_string loc) msg;
    1
  | Descr.Parse_error msg ->
    Printf.eprintf "machine description error: %s\n" msg;
    1
  | Machine.Unknown_atomic { machine; op } ->
    Printf.eprintf "error: machine %s has no atomic operation %s\n" machine op;
    1
  | Pperf_server.Render.Bad_flag msg ->
    Printf.eprintf "error: %s\n" msg;
    1
  | Pperf_backend.Pipeline.Livelock { cycle; unissued } ->
    Printf.eprintf
      "error: pipeline schedule livelocked after %d cycles with %d operation(s) unissued\n"
      cycle unissued;
    1
  | Failure msg ->
    Printf.eprintf "error: %s\n" msg;
    1

let handle f =
  handle_code (fun () ->
      f ();
      0)

(* ---- predict ---- *)

let interproc_arg =
  let doc = "Charge call sites with callee performance expressions (§3.5)." in
  Arg.(value & flag & info [ "interprocedural"; "i" ] ~doc)

let predict_cmd =
  let run mspec memory interproc use_ranges domain strict stats trace evals file =
    handle (fun () ->
        with_stats ~stats ~trace (fun () ->
        let machine = machine_of_spec mspec in
        (* the same Options record the server parses from request flags:
           one canonicalization, one Aggregate mapping for both surfaces *)
        let opts =
          { Pperf_server.Options.default with
            memory; ranges = use_ranges; interproc; strict; trace; eval = evals;
            domain }
        in
        let options = Pperf_server.Options.to_aggregate opts in
        print_string
          (Pperf_server.Render.predict ~machine ~options ~interproc:opts.interproc
             ~strict:opts.strict ~evals:opts.eval ~warn:warn_stderr (read_file file))))
  in
  let doc = "Predict performance expressions for each routine in a PF file." in
  Cmd.v (Cmd.info "predict" ~doc)
    Term.(const run $ machine_arg $ memory_arg $ interproc_arg $ ranges_flag $ domain_arg
          $ strict_arg $ stats_arg $ trace_arg $ eval_arg $ file_arg 0 "FILE")

(* ---- schedule ---- *)

let schedule_cmd =
  let run mspec file =
    handle (fun () ->
        let machine = machine_of_spec mspec in
        let checked = Typecheck.check_program (Parser.parse_program (read_file file)) in
        List.iter
          (fun (c : Typecheck.checked) ->
            Format.printf "routine %s:@." c.routine.rname;
            List.iter
              (fun (loops, body) ->
                let loop_vars = List.map (fun (l : Analysis.loop_ctx) -> l.lvar) loops in
                let assigned = Analysis.assigned_vars c.routine.body in
                let invariants =
                  Analysis.SSet.diff
                    (Analysis.SSet.union (Analysis.used_vars c.routine.body) assigned)
                    assigned
                in
                let res =
                  Pperf_translate.Translator.translate_block ~machine ~symtab:c.symbols
                    ~loop_vars ~invariants body
                in
                Format.printf "@.innermost block under loops [%s]:@.%a@."
                  (String.concat "," loop_vars) Dag.pp res.body;
                let bins = Bins.create machine in
                let s = Bins.drop_dag bins res.body in
                Format.printf "%a@." Bins.pp bins;
                Format.printf
                  "cost %d cycles | critical path %d | operation count %d | reference %d@."
                  s.cost (Dag.critical_path res.body)
                  (Bins.Opcount.cost res.body)
                  (Pperf_backend.Pipeline.reference_cycles machine res.body))
              (Analysis.innermost_bodies c.routine.body))
          checked)
  in
  let doc = "Show the translated atomic operations and their bin schedule." in
  Cmd.v (Cmd.info "schedule" ~doc) Term.(const run $ machine_arg $ file_arg 0 "FILE")

(* ---- compare ---- *)

let range_arg =
  let doc = "Range of an unknown: VAR=LO:HI (repeatable)." in
  Arg.(value & opt_all range_conv [] & info [ "range" ] ~docv:"VAR=LO:HI" ~doc)

let compare_cmd =
  let run mspec memory ranges use_ranges domain stats trace f1 f2 =
    handle (fun () ->
        with_stats ~stats ~trace (fun () ->
        let machine = machine_of_spec mspec in
        let opts =
          { Pperf_server.Options.default with
            memory; ranges = use_ranges; trace; range = ranges; domain }
        in
        let options = Pperf_server.Options.to_aggregate opts in
        print_string
          (Pperf_server.Render.compare
             ~domain:(Pperf_server.Options.domain opts)
             ~machine ~options ~use_ranges:opts.ranges ~ranges:opts.range
             (read_file f1) (read_file f2))))
  in
  let doc = "Compare two program variants symbolically." in
  Cmd.v (Cmd.info "compare" ~doc)
    Term.(const run $ machine_arg $ memory_arg $ range_arg $ ranges_flag $ domain_arg
          $ stats_arg $ trace_arg $ file_arg 0 "FILE1" $ file_arg 1 "FILE2")

(* ---- bounds ---- *)

let bounds_cmd =
  let run mspec memory json stats trace evals file =
    handle (fun () ->
        with_stats ~stats ~trace (fun () ->
        let machine = machine_of_spec mspec in
        print_string
          (Pperf_server.Render.bounds ~machine ~memory ~json ~evals (read_file file))))
  in
  let json_arg =
    let doc = "Emit the bound summary as JSON instead of text." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let doc =
    "Three-bound analysis of every loop nest: the paper's bin-packing \
     (throughput) bound, the critical path and loop-carried-dependence (LCD) \
     latency bound, and (with --memory) the cache-line bound, each totalled \
     symbolically over the trip counts. The steady-state classification takes \
     the max; a bound-disagreement event marks nests where the packing model \
     is provably optimistic."
  in
  Cmd.v (Cmd.info "bounds" ~doc)
    Term.(const run $ machine_arg $ memory_arg $ json_arg $ stats_arg $ trace_arg
          $ eval_arg $ file_arg 0 "FILE")

(* ---- search ---- *)

let search_cmd =
  let run mspec memory file =
    handle (fun () ->
        let machine = machine_of_spec mspec in
        let options = options_of ~memory in
        let checked = Typecheck.check_routine (Parser.parse_routine (read_file file)) in
        let out = Pperf_transform.Search.run ~machine ~options ~max_nodes:150 ~max_depth:3 checked in
        Format.printf "explored %d states@." out.explored;
        Format.printf "sequence: %s@."
          (if out.trace = [] then "(none)"
           else
             String.concat " ; "
               (List.map (fun (s : Pperf_transform.Search.step) -> s.action) out.trace));
        Format.printf "predicted: %a  ->  %a@." Perf_expr.pp out.initial Perf_expr.pp
          out.predicted;
        if out.blocked <> [] then (
          Format.printf "@.blocked by dependences:@.";
          List.iter
            (fun (b : Pperf_transform.Search.blocked) ->
              Format.printf "  %s at %a: %a@." b.action Pperf_transform.Transformations.pp_path
                b.at Pperf_lint.Diagnostic.pp_short b.why)
            out.blocked);
        Format.printf "@.%s" (Pp_ast.routine_to_string out.best.routine))
  in
  let doc = "Performance-guided automatic restructuring (A*-style search)." in
  Cmd.v (Cmd.info "search" ~doc) Term.(const run $ machine_arg $ memory_arg $ file_arg 0 "FILE")

(* ---- report ---- *)

let report_cmd =
  let run mspec memory ranges file =
    handle (fun () ->
        let machine = machine_of_spec mspec in
        let options = options_of ~memory in
        let env = Pperf_server.Render.range_env ranges in
        List.iter
          (fun checked ->
            let r = Report.generate ~options ~env ~machine checked in
            Format.printf "%a@." Report.pp r)
          (Typecheck.check_program (Parser.parse_program (read_file file))))
  in
  let doc = "Full prediction report: expression, unknowns, sensitivity, hot spots." in
  Cmd.v (Cmd.info "report" ~doc)
    Term.(const run $ machine_arg $ memory_arg $ range_arg $ file_arg 0 "FILE")

(* ---- deps ---- *)

let deps_cmd =
  let run file =
    handle (fun () ->
        let checked = Typecheck.check_program (Parser.parse_program (read_file file)) in
        List.iter
          (fun (c : Typecheck.checked) ->
            Format.printf "routine %s:@." c.routine.rname;
            let deps = Depend.dependences_in c.routine.body in
            if deps = [] then Format.printf "  no data dependences@."
            else
              List.iter
                (fun (d : Depend.dependence) ->
                  Format.printf "  %a  (line %d -> line %d)@." Depend.pp_dependence d
                    d.src.Analysis.at.Srcloc.line d.dst.Analysis.at.Srcloc.line)
                deps;
            (* interchange legality of each outer perfect nest *)
            Ast.iter_stmts
              (fun s ->
                match s.Ast.kind with
                | Ast.Do d when (match d.body with [ { kind = Ast.Do _; _ } ] -> true | _ -> false) ->
                  Format.printf "  nest at line %d: interchange %s@." s.loc.Srcloc.line
                    (if Depend.interchange_legal d then "legal" else "ILLEGAL")
                | _ -> ())
              c.routine.body)
          checked)
  in
  let doc = "Report data dependences and interchange legality." in
  Cmd.v (Cmd.info "deps" ~doc) Term.(const run $ file_arg 0 "FILE")

(* ---- run (interpreter + profile) ---- *)

let run_cmd =
  let run mspec evals file =
    handle (fun () ->
        let machine = machine_of_spec mspec in
        let bindings = parse_bindings evals in
        let args =
          List.map (fun (v, f) ->
              (v, if Float.is_integer f then Pperf_exec.Interp.VInt (int_of_float f)
                  else Pperf_exec.Interp.VReal f))
            bindings
        in
        let res = Pperf_exec.Interp.run_source ~machine ~args (read_file file) in
        Format.printf "dynamic cycles: %.0f@." res.cycles;
        Format.printf "profile:@.%a" Pperf_exec.Interp.Profile.pp res.profile;
        (* compare with the static prediction at the same bindings *)
        let p = Predict.of_source ~machine (read_file file) in
        let static = Predict.eval p bindings in
        Format.printf "static prediction %a = %.0f (%.2f%% from dynamic)@." Predict.pp p static
          (100.0 *. Float.abs (static -. res.cycles) /. Float.max 1.0 res.cycles))
  in
  let doc = "Interpret the program, profile it, and validate the static prediction." in
  Cmd.v (Cmd.info "run" ~doc) Term.(const run $ machine_arg $ eval_arg $ file_arg 0 "FILE")

(* ---- lint ---- *)

let lint_cmd =
  let run json use_ranges domain trace file =
    handle_code (fun () ->
        with_telemetry ~trace (fun () ->
            let output, code =
              Pperf_server.Render.lint
                ~domain:(resolve_domain domain)
                ~json ~use_ranges (read_file file)
            in
            print_string output;
            code))
  in
  let json_arg =
    let doc = "Emit diagnostics as JSON instead of text." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let doc =
    "Run the static diagnostic checks over a PF file: program defects \
     (out-of-bounds subscripts, use before definition, zero loop steps, possible \
     division by zero, dead branches) and the places where the performance \
     prediction goes conservative (non-affine subscripts, unknown call costs). \
     Exit status is 2 when any error is reported, 1 when any warning, else 0."
  in
  Cmd.v (Cmd.info "lint" ~doc)
    Term.(const run $ json_arg $ ranges_flag $ domain_arg $ trace_arg $ file_arg 0 "FILE")

(* ---- ranges ---- *)

let ranges_cmd =
  let run json domain stats trace file =
    handle (fun () ->
        with_stats ~stats ~trace (fun () ->
        print_string
          (Pperf_server.Render.ranges
             ~domain:(resolve_domain domain)
             ~json (read_file file))))
  in
  let json_arg =
    let doc = "Emit the ranges as JSON instead of text." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let doc =
    "Run the abstract interpretation over each routine and print the \
     inferred ranges: per-loop index and trip-count intervals (indented by \
     nesting depth) and the routine-wide variable range summary. A \
     relational --domain additionally prints the per-point and summary \
     relational constraints."
  in
  Cmd.v (Cmd.info "ranges" ~doc)
    Term.(const run $ json_arg $ domain_arg $ stats_arg $ trace_arg $ file_arg 0 "FILE")

(* ---- machine ---- *)

let machine_cmd =
  let run mspec =
    handle (fun () ->
        let m = machine_of_spec mspec in
        print_string (Descr.to_string m))
  in
  let doc = "Print a machine description in the portable textual format." in
  let spec = Arg.(value & pos 0 string "power1" & info [] ~docv:"MACHINE" ~doc:"machine name or file") in
  Cmd.v (Cmd.info "machine" ~doc) Term.(const run $ spec)

(* ---- machines ---- *)

let machines_cmd =
  let run dir = handle (fun () -> print_string (Pperf_server.Render.machines ~dir ())) in
  let dir_arg =
    let doc = "Directory of .pmach machine description files to list." in
    Arg.(value & opt string "machines" & info [ "dir" ] ~docv:"DIR" ~doc)
  in
  let doc =
    "List every known machine — the builtins plus the .pmach files of a \
     directory — with its cost-model kind (classic or ports), unit/port \
     count and issue width."
  in
  Cmd.v (Cmd.info "machines" ~doc) Term.(const run $ dir_arg)

(* ---- calibrate ---- *)

let calibrate_cmd =
  let run mspec tolerance out =
    handle_code (fun () ->
        let machine = machine_of_spec mspec in
        let r = Pperf_exec.Calibrate.run ~machine ?tolerance () in
        (* same bytes as the server's calibrate verb: both print
           Calibrate.report of a default-tolerance run *)
        print_string (Pperf_exec.Calibrate.report r);
        Option.iter
          (fun path ->
            let oc = open_out path in
            output_string oc r.Pperf_exec.Calibrate.description;
            close_out oc)
          out;
        if r.Pperf_exec.Calibrate.ok then 0 else 1)
  in
  let tolerance_arg =
    let doc =
      "Maximum acceptable relative error between a measurement and the \
       fitted machine's prediction of it (default 0.25). Exceeding it \
       makes the exit code 1."
    in
    Arg.(value & opt (some float) None & info [ "tolerance" ] ~docv:"T" ~doc)
  in
  let out_arg =
    let doc = "Write the fitted machine description (.pmach v2) to FILE." in
    Arg.(value & opt (some string) None & info [ "out"; "o" ] ~docv:"FILE" ~doc)
  in
  let doc =
    "Fit an issue-port cost model to a machine by measurement: run \
     microbenchmark kernels through the interpreter, fit port structure, \
     µop counts and latencies, and report how well the fitted machine \
     reproduces every measurement."
  in
  Cmd.v (Cmd.info "calibrate" ~doc)
    Term.(const run $ machine_arg $ tolerance_arg $ out_arg)

(* ---- batch / serve ---- *)

(* jobs / shard counts are validated at parse time: 0 or negative is a
   usage error, not something to silently clamp *)
let pos_int =
  let parse s =
    match Arg.conv_parser Arg.int s with
    | Error _ as e -> e
    | Ok n when n < 1 ->
      Error (`Msg (Printf.sprintf "expected a positive count, got %d" n))
    | Ok n -> Ok n
  in
  Arg.conv (parse, Arg.conv_printer Arg.int)

let jobs_arg =
  let doc =
    "Worker domains evaluating requests in parallel (default: the recommended \
     domain count of the machine). Must be positive."
  in
  Arg.(value & opt (some pos_int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let max_request_bytes_arg =
  let doc = "Answer request lines longer than $(docv) with an oversized error." in
  Arg.(value
       & opt int Pperf_server.Server.default_max_request_bytes
       & info [ "max-request-bytes" ] ~docv:"BYTES" ~doc)

let cache_capacity_arg =
  let doc = "Capacity (entries) of the content-addressed result cache." in
  Arg.(value & opt (some int) None & info [ "cache-capacity" ] ~docv:"N" ~doc)

let resolve_jobs = function
  | Some n -> n
  | None -> Pperf_server.Pool.recommended_jobs ()

let batch_cmd =
  let run jobs max_bytes cache_capacity file =
    let jobs = resolve_jobs jobs in
    let go ic =
      Pperf_server.Server.batch ?cache_capacity ~max_request_bytes:max_bytes ~jobs ic
        stdout
    in
    match file with
    | None -> go stdin
    | Some f ->
      let ic = open_in f in
      Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> go ic)
  in
  let file =
    Arg.(value & pos 0 (some file) None
         & info [] ~docv:"FILE" ~doc:"JSON-lines request file (default: stdin)")
  in
  let doc =
    "Answer a stream of JSON-lines requests (one JSON object per line; verbs \
     predict, compare, ranges, lint, ping, stats, shutdown) and exit at end of \
     input. Responses come in request order; query outputs are byte-identical \
     to the one-shot subcommands. See README section \"Prediction service\"."
  in
  Cmd.v (Cmd.info "batch" ~doc)
    Term.(const run $ jobs_arg $ max_request_bytes_arg $ cache_capacity_arg $ file)

let hostport =
  let parse s =
    match String.rindex_opt s ':' with
    | None -> Error (`Msg "expected HOST:PORT (e.g. 127.0.0.1:7070)")
    | Some i -> (
      let host = String.sub s 0 i in
      let p = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt p with
      | Some port when port >= 0 && port <= 65535 -> Ok (host, port)
      | _ -> Error (`Msg (Printf.sprintf "bad port %S (expected 0..65535)" p)))
  in
  let print ppf (h, p) = Format.fprintf ppf "%s:%d" h p in
  Arg.conv (parse, print)

let sched_conv =
  let parse s =
    match Pperf_fleet.Sched.of_string s with
    | Ok p -> Ok p
    | Error m -> Error (`Msg m)
  in
  let print ppf p = Format.pp_print_string ppf (Pperf_fleet.Sched.name p) in
  Arg.conv (parse, print)

let tcp_arg ~doc = Arg.(value & opt (some hostport) None & info [ "tcp" ] ~docv:"HOST:PORT" ~doc)

let serve_cmd =
  let run jobs max_bytes cache_capacity socket tcp sched max_queue port_file
      no_affinity =
    let jobs = resolve_jobs jobs in
    try
      match tcp with
      | Some (host, port) ->
        let cfg =
          Pperf_fleet.Fleet.config ~sched ~max_queue ?cache_capacity
            ~max_request_bytes:max_bytes ~affinity:(not no_affinity) ~jobs ()
        in
        let code = Pperf_fleet.Fleet.serve_tcp cfg ~host ~port ?port_file () in
        (* All connections are drained and the listener closed by now; the
           OCaml 5.1 runtime sometimes stalls ~2s tearing down the
           domain+systhread mix, so skip at_exit and leave immediately. *)
        flush stdout;
        flush stderr;
        Unix._exit code
      | None ->
        Pperf_server.Server.serve ?cache_capacity ~max_request_bytes:max_bytes
          ?socket ~jobs ()
    with
    | Pperf_server.Server.Already_serving p ->
      Printf.eprintf "ppredict: %s is owned by a live daemon; not starting\n" p;
      1
    | Failure msg | Sys_error msg ->
      Printf.eprintf "ppredict: %s\n" msg;
      1
    | Unix.Unix_error (e, fn, _) ->
      Printf.eprintf "ppredict: %s: %s\n" fn (Unix.error_message e);
      1
  in
  let socket_arg =
    let doc =
      "Serve connections on a Unix socket at $(docv) instead of stdin/stdout. \
       The engine (and its warm result cache) is shared across connections; a \
       shutdown request stops the daemon, end of a connection does not. A stale \
       socket file left by a dead daemon is replaced; a live one is refused."
    in
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)
  in
  let tcp =
    tcp_arg
      ~doc:
        "Serve many concurrent connections on a TCP listener at $(docv) (port 0 \
         picks an ephemeral port). Requests are dispatched to $(b,--jobs) shards \
         by cache-key affinity so repeat queries for a kernel stay on the worker \
         whose incremental predictor is already warm. See $(b,--sched), \
         $(b,--max-queue), $(b,--port-file)."
  in
  let sched_arg =
    let doc =
      "Scheduling policy for the TCP fleet: $(b,fifo) (admission order), \
       $(b,lifo) (newest first), or $(b,ws) (fifo plus work stealing of \
       affinity-free requests by idle shards)."
    in
    Arg.(value & opt sched_conv (module Pperf_fleet.Sched.Fifo : Pperf_fleet.Sched.POLICY)
         & info [ "sched" ] ~docv:"POLICY" ~doc)
  in
  let max_queue_arg =
    let doc =
      "Admission bound for the TCP fleet: beyond $(docv) queued requests, new \
       ones are shed with a structured $(i,overloaded) error carrying a \
       retry_after_ms hint."
    in
    Arg.(value & opt pos_int Pperf_fleet.Fleet.default_max_queue
         & info [ "max-queue" ] ~docv:"N" ~doc)
  in
  let port_file_arg =
    let doc = "Write the bound TCP port to $(docv) once listening (for port 0)." in
    Arg.(value & opt (some string) None & info [ "port-file" ] ~docv:"PATH" ~doc)
  in
  let no_affinity_arg =
    let doc =
      "Disable affinity routing: place every request on the least-loaded shard \
       (baseline for measuring what affinity buys)."
    in
    Arg.(value & flag & info [ "no-affinity" ] ~doc)
  in
  let doc =
    "Long-lived prediction daemon speaking the JSON-lines protocol of \
     $(b,ppredict batch): hot machine descriptions, a content-addressed result \
     cache, and a pool of worker domains stay resident between requests. Every \
     response is flushed as soon as it is in order; malformed input yields a \
     structured error response and the server keeps running. With $(b,--tcp), a \
     fleet of affinity-sharded workers serves many connections concurrently; \
     SIGTERM/SIGINT drain in-flight requests before exit."
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(const run $ jobs_arg $ max_request_bytes_arg $ cache_capacity_arg
          $ socket_arg $ tcp $ sched_arg $ max_queue_arg $ port_file_arg
          $ no_affinity_arg)

let loadgen_cmd =
  let run tcp socket script requests connections window seed samples json =
    let target =
      match (tcp, socket) with
      | Some (h, p), None -> Some (Pperf_fleet.Loadgen.Tcp (h, p))
      | None, Some path -> Some (Pperf_fleet.Loadgen.Unix_path path)
      | _ -> None
    in
    match target with
    | None ->
      prerr_endline "ppredict loadgen: pass exactly one of --tcp HOST:PORT or --socket PATH";
      2
    | Some target -> (
      try
        match script with
        | Some f -> Pperf_fleet.Loadgen.run_script target f
        | None ->
          Pperf_fleet.Loadgen.run_load target ~requests ~connections ~window ~seed
            ~samples ~json ()
      with
      | Failure msg | Sys_error msg ->
        Printf.eprintf "ppredict loadgen: %s\n" msg;
        1
      | Unix.Unix_error (e, fn, _) ->
        Printf.eprintf "ppredict loadgen: %s: %s\n" fn (Unix.error_message e);
        1)
  in
  let tcp = tcp_arg ~doc:"Target daemon's TCP listener address." in
  let socket_arg =
    let doc = "Target daemon's Unix socket path." in
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)
  in
  let script_arg =
    let doc =
      "Replay $(docv) (one JSON request per line) serially and print each \
       response: the deterministic mode. Without it, run the synthetic load."
    in
    Arg.(value & opt (some file) None & info [ "script" ] ~docv:"FILE" ~doc)
  in
  let requests_arg =
    let doc = "Total synthetic requests across all connections." in
    Arg.(value & opt pos_int 1000 & info [ "n"; "requests" ] ~docv:"N" ~doc)
  in
  let connections_arg =
    let doc = "Concurrent client connections." in
    Arg.(value & opt pos_int 8 & info [ "c"; "connections" ] ~docv:"N" ~doc)
  in
  let window_arg =
    let doc = "Pipelined requests kept outstanding per connection." in
    Arg.(value & opt pos_int 32 & info [ "window" ] ~docv:"N" ~doc)
  in
  let seed_arg =
    let doc = "PRNG seed for the request mix (reproducible runs)." in
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let samples_arg =
    let doc = "Directory of *.pf kernels to build the corpus from." in
    Arg.(value & opt dir "samples" & info [ "samples" ] ~docv:"DIR" ~doc)
  in
  let json_arg =
    let doc = "Machine-readable output only (the JSON summary)." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let doc =
    "Drive a prediction daemon with load: either replay a request script \
     deterministically, or storm it with a seeded mix of hot and cold queries, \
     control verbs, malformed lines and deadline churn over many pipelined \
     connections, verifying in-order exactly-once responses and reporting \
     latency percentiles and throughput as JSON."
  in
  Cmd.v (Cmd.info "loadgen" ~doc)
    Term.(const run $ tcp $ socket_arg $ script_arg $ requests_arg
          $ connections_arg $ window_arg $ seed_arg $ samples_arg $ json_arg)

let () =
  let doc = "compile-time performance prediction for superscalar machines" in
  let info = Cmd.info "ppredict" ~version:"1.0.0" ~doc in
  exit (Cmd.eval' (Cmd.group info [ predict_cmd; schedule_cmd; compare_cmd; bounds_cmd; search_cmd; run_cmd; deps_cmd; report_cmd; lint_cmd; ranges_cmd; machine_cmd; machines_cmd; calibrate_cmd; batch_cmd; serve_cmd; loadgen_cmd ]))
