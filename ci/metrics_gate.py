#!/usr/bin/env python3
"""CI gate for the telemetry surfaces of the prediction service.

Starts `ppredict serve --socket`, drives a warm session over the Unix
socket, scrapes the `metrics` verb, and asserts:
  1. the exposition parses as Prometheus text format 0.0.4: every line
     is a comment or `name[{labels}] value`, every histogram family has
     monotone cumulative buckets ending at `+Inf` whose final count
     equals `_count`;
  2. the request-latency histogram (pperf_server_request_ns) is
     non-empty and consistent with the number of requests served;
  3. the extended `stats` verb reports p50/p90/p99 over the session,
     ordered and non-negative;
  4. a `--trace` run's span tree is internally consistent: each node's
     total covers its self time plus its children's totals, and the
     root total stays within 5% of the measured wall time (plus a small
     absolute allowance for process startup jitter).
"""

import json
import os
import re
import socket
import subprocess
import sys
import tempfile
import time

PP = os.environ.get("PPREDICT", "./_build/default/bin/ppredict.exe")

fail = 0


def err(msg):
    global fail
    fail += 1
    print("::error::" + msg)


# ---- drive a session over the Unix socket ----

sock_path = os.path.join(tempfile.mkdtemp(prefix="pperf-gate-"), "pperf.sock")
server = subprocess.Popen(
    [PP, "serve", "--jobs", "2", "--socket", sock_path],
    stdout=subprocess.PIPE,
    stderr=subprocess.PIPE,
    text=True,
)
try:
    for _ in range(100):
        if os.path.exists(sock_path):
            break
        if server.poll() is not None:
            print(server.stderr.read(), file=sys.stderr)
            err(f"server exited {server.returncode} before creating the socket")
            sys.exit(1)
        time.sleep(0.1)
    else:
        err("socket never appeared")
        sys.exit(1)

    def session(reqs):
        conn = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        conn.connect(sock_path)
        conn.sendall(("\n".join(json.dumps(r) for r in reqs) + "\n").encode())
        conn.shutdown(socket.SHUT_WR)
        buf = b""
        while True:
            chunk = conn.recv(65536)
            if not chunk:
                break
            buf += chunk
        conn.close()
        return [json.loads(l) for l in buf.decode().splitlines()]

    reqs = []
    for i in range(8):
        reqs.append({"id": i, "verb": "predict", "file": "samples/daxpy.pf"})
        reqs.append({"id": 100 + i, "verb": "predict", "file": "samples/jacobi.pf"})
    n_queries = len(reqs)
    reqs.append({"id": "stats", "verb": "stats"})
    reqs.append({"id": "metrics", "verb": "metrics"})
    outs = session(reqs)
    if len(outs) != len(reqs):
        err(f"{len(reqs)} requests but {len(outs)} responses")
        sys.exit(1)
    by_id = {o.get("id"): o for o in outs}

    # ---- 1 + 2: the exposition parses and the latency histogram is live ----

    metrics = by_id.get("metrics", {})
    if not metrics.get("ok"):
        err(f"metrics verb failed: {json.dumps(metrics)}")
        sys.exit(1)
    text = metrics.get("output", "")

    SAMPLE = re.compile(
        r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (-?[0-9.eE+]+|\+Inf|NaN)$"
    )
    families = {}  # name -> type
    samples = []  # (name, labels, value)
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("#"):
            m = re.match(r"^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram)$", line)
            if m:
                families[m.group(1)] = m.group(2)
            elif not line.startswith("# HELP"):
                err(f"unparseable comment line: {line!r}")
            continue
        m = SAMPLE.match(line)
        if not m:
            err(f"unparseable sample line: {line!r}")
            continue
        samples.append((m.group(1), m.group(2) or "", m.group(3)))
    if not families:
        err("no # TYPE lines in the exposition")

    def series(name):
        return [(l, v) for (n, l, v) in samples if n == name]

    for fam, ftype in families.items():
        if ftype != "histogram":
            continue
        buckets = series(fam + "_bucket")
        if not buckets:
            err(f"histogram {fam} has no buckets")
            continue
        counts = [int(v) for _, v in buckets]
        if counts != sorted(counts):
            err(f"histogram {fam} buckets are not cumulative: {counts}")
        last_le = re.search(r'le="([^"]*)"', buckets[-1][0]).group(1)
        if last_le != "+Inf":
            err(f"histogram {fam} does not end at +Inf (ends {last_le})")
        count = series(fam + "_count")
        if not count or int(count[0][1]) != counts[-1]:
            err(f"histogram {fam}: _count != final cumulative bucket")

    lat = series("pperf_server_request_ns_count")
    if not lat:
        err("no pperf_server_request_ns_count sample")
    elif int(lat[0][1]) < n_queries:
        err(f"request latency histogram has {lat[0][1]} samples, expected >= {n_queries}")

    # ---- 3: extended stats quantiles ----

    stats = by_id.get("stats", {}).get("stats", {})
    latency = stats.get("latency", {})
    qs = []
    for q in ("p50_ns", "p90_ns", "p99_ns"):
        v = latency.get(q)
        if v == "+Inf":
            v = float("inf")
        if not isinstance(v, (int, float)):
            err(f"stats latency has no numeric {q}: {json.dumps(latency)}")
            v = 0
        qs.append(v)
    if qs != sorted(qs) or any(v < 0 for v in qs):
        err(f"latency quantiles not ordered/non-negative: {qs}")
    if latency.get("count", 0) < n_queries:
        err(f"stats latency count {latency.get('count')} < {n_queries} served queries")
    for stage in ("queue", "cache", "eval", "write"):
        if stage not in stats.get("stages", {}):
            err(f"stats stages section is missing {stage!r}")

    session([{"id": "bye", "verb": "shutdown"}])
    server.wait(timeout=10)
finally:
    if server.poll() is None:
        server.kill()

# ---- 4: --trace span tree consistency against wall time ----

t0 = time.monotonic()
one = subprocess.run(
    [PP, "predict", "--trace", "samples/jacobi.pf"], capture_output=True, text=True
)
wall_ns = (time.monotonic() - t0) * 1e9
if one.returncode != 0:
    err(f"predict --trace exited {one.returncode}: {one.stderr.strip()}")
    sys.exit(1)
tree = json.loads(one.stdout.splitlines()[-1])


def check_node(node, path):
    child_total = sum(c["total_ns"] for c in node["children"])
    if node["self_ns"] + child_total > node["total_ns"] * 1.01 + 1000:
        err(f"span {path}: self {node['self_ns']} + children {child_total} "
            f"exceed total {node['total_ns']}")
    for c in node["children"]:
        check_node(c, path + "/" + c["name"])


check_node(tree, tree["name"])
if tree["name"] != "trace" or not tree["children"]:
    err(f"trace tree has no phases: {one.stdout.strip()}")
# the root total must account for the evaluation: within 5% of the
# process wall time once argv parsing / process startup (~ a few ms,
# absolute) is allowed for
if tree["total_ns"] > wall_ns:
    err(f"trace total {tree['total_ns']}ns exceeds process wall time {wall_ns:.0f}ns")
if tree["total_ns"] < wall_ns * 0.95 - 50e6:
    err(f"trace total {tree['total_ns']}ns is under 95% of wall time {wall_ns:.0f}ns")

print(f"metrics gate: {len(families)} families, {len(samples)} samples, "
      f"request histogram {lat[0][1] if lat else 0} observations, "
      f"quantiles {qs}, trace total {tree['total_ns']}ns vs wall {wall_ns:.0f}ns")
sys.exit(1 if fail else 0)
