#!/usr/bin/env python3
"""CI gate for the TCP serving fleet.

Drives `ppredict loadgen` storms against `ppredict serve --tcp` and
asserts, in order:

  1. main storm: >= 100k mixed requests over many pipelined
     connections — every request answered exactly once, per-connection
     responses in request order, zero unexpected protocol errors and
     zero transport errors, p99 latency and throughput within bounds;
  2. affinity: the shard-affinity warm-hit rate of the incremental
     predictors (scraped from the Prometheus `metrics` verb) beats the
     same storm under --no-affinity routing;
  3. overload: a deliberately under-provisioned fleet (--jobs 1
     --max-queue 4) sheds with structured `overloaded` errors carrying
     a retry_after_ms hint — it neither hangs nor crashes, and keeps
     answering after the flood;
  4. drain: SIGTERM answers what is in flight and exits cleanly.

Environment knobs (all optional): LOAD_GATE_REQUESTS (default 100000),
LOAD_GATE_BASELINE_REQUESTS (20000), LOAD_GATE_P99_US (1000000),
LOAD_GATE_MIN_RPS (500), LOAD_GATE_CONNECTIONS (16), LOAD_GATE_WINDOW (64).
"""

import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time

PP = os.environ.get("PPREDICT", "./_build/default/bin/ppredict.exe")
REQUESTS = int(os.environ.get("LOAD_GATE_REQUESTS", "100000"))
BASELINE_REQUESTS = int(os.environ.get("LOAD_GATE_BASELINE_REQUESTS", "20000"))
P99_US = float(os.environ.get("LOAD_GATE_P99_US", "1000000"))
MIN_RPS = float(os.environ.get("LOAD_GATE_MIN_RPS", "500"))
CONNECTIONS = int(os.environ.get("LOAD_GATE_CONNECTIONS", "16"))
WINDOW = int(os.environ.get("LOAD_GATE_WINDOW", "64"))

fail = 0


def err(msg):
    global fail
    fail += 1
    print("::error::" + msg)


def start_daemon(extra):
    pf = tempfile.NamedTemporaryFile(prefix="ppredict-port-", delete=False)
    pf.close()
    os.unlink(pf.name)
    proc = subprocess.Popen(
        [PP, "serve", "--tcp", "127.0.0.1:0", "--port-file", pf.name] + extra,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
        text=True,
    )
    deadline = time.time() + 20
    while time.time() < deadline:
        try:
            with open(pf.name) as f:
                port = int(f.read().strip())
            os.unlink(pf.name)
            return proc, port
        except (FileNotFoundError, ValueError):
            if proc.poll() is not None:
                break
            time.sleep(0.05)
    out = proc.stderr.read() if proc.poll() is not None else ""
    err(f"daemon did not come up: {out.strip()}")
    sys.exit(1)


def tcp_session(port, lines, timeout=120):
    """Send all lines, read one response per line, in order."""
    with socket.create_connection(("127.0.0.1", port), timeout=timeout) as s:
        s.sendall(("\n".join(lines) + "\n").encode())
        buf = b""
        out = []
        while len(out) < len(lines):
            chunk = s.recv(65536)
            if not chunk:
                break
            buf += chunk
            while b"\n" in buf and len(out) < len(lines):
                line, buf = buf.split(b"\n", 1)
                out.append(line.decode())
        return out


def scrape_metrics(port):
    (resp,) = tcp_session(port, [json.dumps({"id": "m", "verb": "metrics"})])
    body = json.loads(resp)["output"]
    samples = {}
    for line in body.splitlines():
        if line.startswith("#") or not line.strip():
            continue
        name, _, value = line.rpartition(" ")
        try:
            samples[name] = float(value)
        except ValueError:
            pass
    return samples


def warm_hit_rate(samples):
    hits = samples.get("pperf_server_incremental_hits", 0.0)
    misses = samples.get("pperf_server_incremental_misses", 0.0)
    return hits / max(hits + misses, 1.0)


def loadgen(port, requests, connections=CONNECTIONS, window=WINDOW, seed=42):
    proc = subprocess.run(
        [PP, "loadgen", "--tcp", f"127.0.0.1:{port}", "--requests", str(requests),
         "--connections", str(connections), "--window", str(window),
         "--seed", str(seed), "--json"],
        capture_output=True,
        text=True,
    )
    try:
        summary = json.loads(proc.stdout.splitlines()[-1])
    except (IndexError, json.JSONDecodeError):
        err(f"loadgen produced no summary (exit {proc.returncode}): "
            f"{proc.stderr.strip()}")
        sys.exit(1)
    summary["_exit"] = proc.returncode
    summary["_stderr"] = proc.stderr.strip()
    return summary


def shutdown(proc, port, timeout=30):
    try:
        tcp_session(port, [json.dumps({"id": "bye", "verb": "shutdown"})])
    except OSError:
        pass
    try:
        return proc.wait(timeout)
    except subprocess.TimeoutExpired:
        proc.kill()
        err("daemon did not exit within %ds of shutdown" % timeout)
        return None


# ---- 1. main storm -------------------------------------------------

proc, port = start_daemon(["--jobs", "4", "--sched", "ws"])
s = loadgen(port, REQUESTS)
if not s.get("pass") or s["_exit"] != 0:
    err(f"main storm failed: {json.dumps(s)}")
if s.get("sent") != REQUESTS:
    err(f"main storm sent {s.get('sent')} of {REQUESTS} requests")
if s.get("responses") != s.get("sent"):
    err(f"dropped/duplicated responses: sent {s.get('sent')}, "
        f"answered {s.get('responses')}")
for k in ("unexpected_errors", "out_of_order", "transport_errors"):
    if s.get(k, 1) != 0:
        err(f"main storm: {k} = {s.get(k)} ({s['_stderr']})")
if s.get("p99_us", 1e18) > P99_US:
    err(f"p99 {s['p99_us']:.0f}us exceeds the {P99_US:.0f}us bound")
if s.get("rps", 0.0) < MIN_RPS:
    err(f"throughput {s['rps']:.0f} req/s below the {MIN_RPS:.0f} floor")
metrics = scrape_metrics(port)
affinity_rate = warm_hit_rate(metrics)
admitted = metrics.get("pperf_fleet_admitted_total", 0)
completed = metrics.get("pperf_fleet_completed_total", 0)
# the scrape request itself is admitted and still in flight while it
# reads the counters, so it may legitimately be the one not yet completed
if not 0 <= admitted - completed <= 1:
    err(f"fleet admitted {admitted:.0f} but completed {completed:.0f}")
code = shutdown(proc, port)
if code not in (0, None):
    err(f"main daemon exited {code}")
print(f"load gate 1/4: {s['responses']}/{REQUESTS} answered, "
      f"{s['rps']:.0f} req/s, p99 {s['p99_us']:.0f}us, "
      f"{s['overloaded']} shed, warm-hit rate {affinity_rate:.3f}")

# ---- 2. affinity beats --no-affinity -------------------------------

proc, port = start_daemon(["--jobs", "4", "--sched", "ws"])
sa = loadgen(port, BASELINE_REQUESTS, seed=7)
rate_affinity = warm_hit_rate(scrape_metrics(port))
shutdown(proc, port)
if not sa.get("pass"):
    err(f"affinity storm failed: {json.dumps(sa)}")

proc, port = start_daemon(["--jobs", "4", "--sched", "ws", "--no-affinity"])
sb = loadgen(port, BASELINE_REQUESTS, seed=7)
rate_baseline = warm_hit_rate(scrape_metrics(port))
shutdown(proc, port)
if not sb.get("pass"):
    err(f"no-affinity storm failed: {json.dumps(sb)}")
if rate_affinity <= rate_baseline:
    err(f"affinity warm-hit rate {rate_affinity:.3f} does not beat the "
        f"--no-affinity baseline {rate_baseline:.3f}")
print(f"load gate 2/4: warm-hit rate {rate_affinity:.3f} with affinity "
      f"vs {rate_baseline:.3f} without")

# ---- 3. overload sheds, does not hang ------------------------------

proc, port = start_daemon(["--jobs", "1", "--max-queue", "4"])
so = loadgen(port, 5000, connections=8, window=64, seed=3)
if not so.get("pass"):
    err(f"overload storm failed: {json.dumps(so)}")
if so.get("overloaded", 0) == 0:
    err("overload storm: --max-queue 4 never shed a request")
# a hand-rolled cold flood confirms the structured rejection shape
flood = [json.dumps({"id": i, "verb": "predict",
                     "file": "samples/jacobi.pf",
                     "flags": {"eval": [f"n={1000 + i}"]}})
         for i in range(300)]
answers = [json.loads(l) for l in tcp_session(port, flood)]
if len(answers) != len(flood):
    err(f"overload flood: {len(flood)} requests, {len(answers)} responses")
shed = [a for a in answers if not a.get("ok")
        and a.get("error", {}).get("code") == "overloaded"]
bad = [a for a in answers if not a.get("ok")
       and a.get("error", {}).get("code") != "overloaded"]
if bad:
    err(f"overload flood: unexpected error {json.dumps(bad[0])}")
for a in shed:
    if not isinstance(a["error"].get("retry_after_ms"), (int, float)):
        err(f"overloaded response lacks retry_after_ms: {json.dumps(a)}")
        break
(ping,) = tcp_session(port, [json.dumps({"id": "p", "verb": "ping"})])
if json.loads(ping).get("output") != "pong":
    err(f"daemon wedged after overload: {ping}")
shutdown(proc, port)
print(f"load gate 3/4: {so['overloaded']} + {len(shed)} requests shed "
      f"with retry hints, daemon stayed live")

# ---- 4. SIGTERM drains ---------------------------------------------

proc, port = start_daemon(["--jobs", "2"])
with socket.create_connection(("127.0.0.1", port), timeout=30) as sck:
    reqs = [json.dumps({"id": i, "verb": "predict", "file": "samples/daxpy.pf"})
            for i in range(20)]
    sck.sendall(("\n".join(reqs) + "\n").encode())
    got = b""
    while got.count(b"\n") < len(reqs):
        chunk = sck.recv(65536)
        if not chunk:
            break
        got += chunk
    answered = got.count(b"\n")
    if answered != len(reqs):
        err(f"pre-SIGTERM session answered {answered} of {len(reqs)}")
    proc.send_signal(signal.SIGTERM)
    try:
        code = proc.wait(30)
        if code != 0:
            err(f"SIGTERM exit code {code}")
    except subprocess.TimeoutExpired:
        proc.kill()
        err("daemon did not exit within 30s of SIGTERM")
print("load gate 4/4: SIGTERM drained and exited cleanly")

sys.exit(1 if fail else 0)
