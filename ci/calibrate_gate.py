#!/usr/bin/env python3
"""CI gate for machine calibration and the machines listing.

Asserts:
  1. `ppredict calibrate` on the scalar builtin and on the ooo4 ports
     machine exits 0 with a report ending in "-> ok", and the reported
     max relative error is within the default tolerance;
  2. the fitted description written by --out is the canonical fixpoint
     (`ppredict machine FITTED` re-emits the identical bytes) and is a
     usable machine (it drives `ppredict predict` cleanly);
  3. the server's machines and calibrate verbs answer byte-identically
     to the one-shot CLI, and repeating each request is served from the
     warm result cache.
"""

import json
import os
import re
import subprocess
import sys
import tempfile

PP = os.environ.get("PPREDICT", "./_build/default/bin/ppredict.exe")
TOLERANCE = 0.25

fail = 0


def err(msg):
    global fail
    fail += 1
    print("::error::" + msg)


def cli(args):
    return subprocess.run([PP] + args, capture_output=True, text=True)


# ---- 1 + 2: calibrate two machines, check the reports and fitted files ----

tmpdir = tempfile.mkdtemp(prefix="ppredict-calibrate-")
reports = {}
for spec in ["scalar", "machines/ooo4.pmach"]:
    tag = os.path.splitext(os.path.basename(spec))[0]
    fitted = os.path.join(tmpdir, tag + "-fit.pmach")
    r = cli(["calibrate", "-m", spec, "--out", fitted])
    reports[spec] = r.stdout
    if r.returncode != 0:
        err(f"calibrate {spec}: exit {r.returncode}: {r.stderr.strip()}")
        continue
    m = re.search(r"max relative error (\d+\.\d+) -> (\w+)", r.stdout)
    if not m:
        err(f"calibrate {spec}: report has no max-relative-error line")
        continue
    rel, verdict = float(m.group(1)), m.group(2)
    if verdict != "ok":
        err(f"calibrate {spec}: verdict {verdict!r}, expected ok")
    if rel > TOLERANCE:
        err(f"calibrate {spec}: max relative error {rel} > tolerance {TOLERANCE}")
    if not os.path.exists(fitted):
        err(f"calibrate {spec}: --out wrote no file")
        continue
    with open(fitted) as f:
        fitted_text = f.read()
    if fitted_text not in r.stdout:
        err(f"calibrate {spec}: the report does not contain the fitted description")
    # the fitted description is the canonical fixpoint of the printer
    reprint = cli(["machine", fitted])
    if reprint.returncode != 0:
        err(f"machine {fitted}: exit {reprint.returncode}: {reprint.stderr.strip()}")
    elif reprint.stdout != fitted_text:
        err(f"calibrate {spec}: fitted description is not round-trip stable")
    # and a machine like any other: it must drive predict
    pred = cli(["predict", "-m", fitted, "samples/daxpy.pf"])
    if pred.returncode != 0:
        err(f"predict with fitted {tag}: exit {pred.returncode}: {pred.stderr.strip()}")

# ---- 3: server verbs match the CLI byte for byte and cache on repeat ----

machines_cli = cli(["machines", "--dir", "machines"])
if machines_cli.returncode != 0:
    err(f"machines: exit {machines_cli.returncode}: {machines_cli.stderr.strip()}")

requests = [
    {"id": "m0", "verb": "machines"},
    {"id": "m1", "verb": "machines"},
    {"id": "c0", "verb": "calibrate", "machine": "scalar"},
    {"id": "c1", "verb": "calibrate", "machine": "scalar"},
    {"id": "bye", "verb": "shutdown"},
]
proc = subprocess.run(
    [PP, "serve", "--jobs", "1"],
    input="\n".join(json.dumps(r) for r in requests) + "\n",
    capture_output=True,
    text=True,
)
if proc.returncode != 0:
    err(f"serve exited {proc.returncode}: {proc.stderr.strip()}")
    sys.exit(1)
outs = {o.get("id"): o for o in map(json.loads, proc.stdout.splitlines())}
if len(outs) != len(requests):
    err(f"{len(requests)} requests but {len(outs)} responses")

for rid, expect_out, expect_cached in [
    ("m0", machines_cli.stdout, False),
    ("m1", machines_cli.stdout, True),
    ("c0", reports["scalar"], False),
    ("c1", reports["scalar"], True),
]:
    r = outs.get(rid)
    if not r or not r.get("ok"):
        err(f"request {rid} failed: {json.dumps(r)}")
        continue
    if r.get("output") != expect_out:
        err(f"request {rid}: serve output differs from the one-shot CLI")
    if bool(r.get("cached")) != expect_cached:
        err(f"request {rid}: expected cached={expect_cached}")

print(
    f"calibrate gate: 2 machines fitted within tolerance {TOLERANCE}, "
    f"fitted descriptions round-trip and predict, "
    f"machines+calibrate verbs match the CLI with warm cache hits"
)
sys.exit(1 if fail else 0)
