#!/usr/bin/env python3
"""CI gate for the JSON-lines prediction service.

Drives a scripted session through `ppredict serve` and asserts:
  1. every query response's "output" is byte-identical to the one-shot
     CLI subcommand's stdout (and "status" to its exit code);
  2. repeating the whole query block is served from the warm result
     cache (cached:true, nonzero hit count in the stats verb), and
     back-to-back repeats of the same compare all report cached:true;
  3. malformed / unknown-verb / ill-formed / oversized requests get
     structured error responses and the server keeps answering;
  4. a parallel session (--jobs 4) produces the same responses in the
     same order as --jobs 1 (timings and cache bits aside);
  5. the same session over the TCP fleet (--sched fifo --jobs 1) is
     byte-identical to the stdio transport (timings aside);
  6. a restart over a stale Unix-socket file (previous daemon killed
     hard) succeeds, while a second daemon on a live socket is refused.
"""

import glob
import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time

PP = os.environ.get("PPREDICT", "./_build/default/bin/ppredict.exe")

fail = 0


def err(msg):
    global fail
    fail += 1
    print("::error::" + msg)


def cli(args):
    return subprocess.run([PP] + args, capture_output=True, text=True)


def serve(lines, jobs):
    proc = subprocess.run(
        [PP, "serve", "--jobs", str(jobs), "--max-request-bytes", "4096"],
        input="\n".join(lines) + "\n",
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        err(f"serve --jobs {jobs} exited {proc.returncode}: {proc.stderr.strip()}")
        sys.exit(1)
    return [json.loads(l) for l in proc.stdout.splitlines()]


# ---- the mixed query workload over the shipped samples ----

samples = sorted(glob.glob("samples/*.pf"))
if not samples:
    err("no samples/*.pf found (run from the repository root)")
    sys.exit(1)

cases = []
for f in samples:
    cases.append((["predict", f], {"verb": "predict", "file": f}))
    cases.append(
        (["predict", f, "--ranges"], {"verb": "predict", "file": f, "flags": {"ranges": True}})
    )
    cases.append(
        (["lint", f, "--json"], {"verb": "lint", "file": f, "flags": {"json": True}})
    )
    cases.append(
        (["ranges", f, "--json"], {"verb": "ranges", "file": f, "flags": {"json": True}})
    )
cases.append(
    (
        ["compare", "samples/daxpy.pf", "samples/jacobi.pf"],
        {"verb": "compare", "file": "samples/daxpy.pf", "file2": "samples/jacobi.pf"},
    )
)
cases.append(
    (
        ["predict", "samples/calls.pf", "-i"],
        {"verb": "predict", "file": "samples/calls.pf", "flags": {"interproc": True}},
    )
)

n = len(cases)
lines = []
for rep in range(2):  # the second pass must be all cache hits
    for i, (_, req) in enumerate(cases):
        r = dict(req)
        r["id"] = rep * n + i
        lines.append(json.dumps(r))

ERRORS = [
    ("this is not json", "bad_json"),
    (json.dumps({"id": "e1", "verb": "frobnicate"}), "unknown_verb"),
    (json.dumps({"id": "e2", "verb": "predict"}), "bad_request"),
    ('{"id":"e3","verb":"predict","source":"' + "x" * 5000 + '"}', "oversized"),
    (json.dumps({"id": "e4", "verb": "predict", "machine": "vax", "file": samples[0]}), "error"),
]
lines += [l for l, _ in ERRORS]
lines.append(json.dumps({"id": "after-errors", "verb": "ping"}))

# back-to-back repeats of the same compare: the comparison path is the most
# expensive verb, and every repeat must come straight from the result cache
CMP = {"verb": "compare", "file": "samples/daxpy.pf", "file2": "samples/jacobi.pf"}
N_CMP = 3
for k in range(N_CMP):
    r = dict(CMP)
    r["id"] = f"cmp{k}"
    lines.append(json.dumps(r))

lines.append(json.dumps({"id": "stats", "verb": "stats"}))
lines.append(json.dumps({"id": "bye", "verb": "shutdown"}))

outs = serve(lines, jobs=1)
if len(outs) != len(lines):
    err(f"{len(lines)} requests but {len(outs)} responses")
    sys.exit(1)

# 1 + 2: byte-identical to the one-shot CLI, warm on the repeat
for i, (argv, _) in enumerate(cases):
    one = cli(argv)
    for pos, expect_cached in ((i, False), (n + i, True)):
        r = outs[pos]
        if not r.get("ok"):
            err(f"{argv}: request {pos} failed: {json.dumps(r)}")
            continue
        if r.get("output") != one.stdout:
            err(f"{argv}: serve output differs from the one-shot CLI")
        if r.get("status") != one.returncode:
            err(f"{argv}: serve status {r.get('status')} != CLI exit {one.returncode}")
        if bool(r.get("cached")) != expect_cached:
            err(f"{argv}: request {pos} expected cached={expect_cached}")

# 3: structured errors, session still live afterwards
for k, (_, code) in enumerate(ERRORS):
    r = outs[2 * n + k]
    got = r.get("error", {}).get("code")
    if r.get("ok") or got != code:
        err(f"error case {k}: expected code {code}, got {json.dumps(r)}")
ping = outs[2 * n + len(ERRORS)]
if not ping.get("ok") or ping.get("output") != "pong":
    err(f"server did not answer ping after the error block: {json.dumps(ping)}")

# repeated compare block: identical to the compare in the warm pass, so
# every one of the repeats must report cached:true
cmp_base = 2 * n + len(ERRORS) + 1
for k in range(N_CMP):
    r = outs[cmp_base + k]
    if not r.get("ok") or not r.get("cached"):
        err(f"repeated compare {k}: expected a cache hit, got {json.dumps(r)}")

stats = outs[cmp_base + N_CMP]
hits = stats.get("stats", {}).get("cache", {}).get("hits", 0)
if hits < n:
    err(f"warm pass should give >= {n} cache hits, stats reports {hits}")
bye = outs[-1]
if not bye.get("ok") or bye.get("verb") != "shutdown":
    err(f"shutdown not acknowledged: {json.dumps(bye)}")

# 4: --jobs 4 answers the same session identically (order included)
def strip(o):
    o = dict(o)
    o.pop("t", None)
    o.pop("cached", None)  # which duplicate wins the cache race may differ
    if o.get("verb") == "stats":
        o.pop("stats", None)  # counters are timing/order dependent
    return json.dumps(o, sort_keys=True)

par = serve(lines, jobs=4)
if [strip(o) for o in par] != [strip(o) for o in outs]:
    err("--jobs 4 session differs from --jobs 1 session")


# 5: the same session over TCP must be byte-identical to stdio (the
# fleet under --sched fifo --jobs 1 is the deterministic baseline); here
# only timings and the stats payload may differ, cache bits included
def start_tcp(extra):
    pf = tempfile.NamedTemporaryFile(prefix="ppredict-port-", delete=False)
    pf.close()
    os.unlink(pf.name)
    proc = subprocess.Popen(
        [PP, "serve", "--tcp", "127.0.0.1:0", "--port-file", pf.name] + extra,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
        text=True,
    )
    deadline = time.time() + 20
    while time.time() < deadline:
        try:
            with open(pf.name) as f:
                port = int(f.read().strip())
            os.unlink(pf.name)
            return proc, port
        except (FileNotFoundError, ValueError):
            if proc.poll() is not None:
                err("tcp daemon died: " + proc.stderr.read().strip())
                sys.exit(1)
            time.sleep(0.05)
    err("tcp daemon did not write its port file")
    sys.exit(1)


def session_over(sock, session_lines):
    sock.sendall(("\n".join(session_lines) + "\n").encode())
    buf, resp = b"", []
    while len(resp) < len(session_lines):
        chunk = sock.recv(65536)
        if not chunk:
            break
        buf += chunk
        while b"\n" in buf and len(resp) < len(session_lines):
            one, buf = buf.split(b"\n", 1)
            resp.append(json.loads(one.decode()))
    return resp


def strip_t(o):
    o = dict(o)
    o.pop("t", None)
    if o.get("verb") == "stats":
        o.pop("stats", None)
    return json.dumps(o, sort_keys=True)


proc, port = start_tcp(["--sched", "fifo", "--jobs", "1",
                        "--max-request-bytes", "4096"])
with socket.create_connection(("127.0.0.1", port), timeout=120) as s:
    tcp_outs = session_over(s, lines)
proc.wait(30)  # the session ends in a shutdown verb
if len(tcp_outs) != len(lines):
    err(f"tcp transport: {len(lines)} requests but {len(tcp_outs)} responses")
elif [strip_t(o) for o in tcp_outs] != [strip_t(o) for o in outs]:
    for a, b in zip(tcp_outs, outs):
        if strip_t(a) != strip_t(b):
            err(f"tcp response differs from stdio: {strip_t(a)} != {strip_t(b)}")
            break

# 6: socket-file lifecycle — a hard-killed daemon leaves a stale file a
# restart must claim, while a live daemon's socket is refused
sockdir = tempfile.mkdtemp(prefix="ppredict-sock-")
spath = os.path.join(sockdir, "daemon.sock")


def start_unix():
    proc = subprocess.Popen(
        [PP, "serve", "--socket", spath, "--jobs", "1"],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
        text=True,
    )
    deadline = time.time() + 20
    while time.time() < deadline and not os.path.exists(spath):
        if proc.poll() is not None:
            err("unix daemon died: " + proc.stderr.read().strip())
            sys.exit(1)
        time.sleep(0.05)
    return proc


def unix_request(req):
    deadline = time.time() + 10
    while True:
        try:
            with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as s:
                s.settimeout(30)
                s.connect(spath)
                s.sendall((json.dumps(req) + "\n").encode())
                buf = b""
                while b"\n" not in buf:
                    chunk = s.recv(65536)
                    if not chunk:
                        break
                    buf += chunk
                return json.loads(buf.split(b"\n", 1)[0].decode())
        except (ConnectionRefusedError, FileNotFoundError):
            if time.time() > deadline:
                raise
            time.sleep(0.1)


first = start_unix()
second = subprocess.run(
    [PP, "serve", "--socket", spath, "--jobs", "1"],
    capture_output=True, text=True,
)
if second.returncode == 0 or "live daemon" not in second.stderr:
    err(f"live socket not refused: exit {second.returncode}, "
        f"stderr {second.stderr.strip()!r}")
first.send_signal(signal.SIGKILL)
first.wait(30)
if not os.path.exists(spath):
    err("SIGKILL should leave the stale socket file behind")
restarted = start_unix()
pong = unix_request({"id": "p", "verb": "ping"})
if pong.get("output") != "pong":
    err(f"restart over stale socket did not answer: {json.dumps(pong)}")
unix_request({"id": "bye", "verb": "shutdown"})
if restarted.wait(30) != 0:
    err("restarted daemon exited nonzero after shutdown")
if os.path.exists(spath):
    err("socket file not unlinked on clean exit")
os.rmdir(sockdir)

print(f"serve gate: {len(lines)} requests, {2 * n} outputs matched the CLI, "
      f"{hits} warm cache hits, {len(ERRORS)} structured errors, "
      f"jobs 1 == jobs 4 == tcp, stale socket reclaimed, live socket refused")
sys.exit(1 if fail else 0)
