#!/usr/bin/env python3
"""CI gate for the JSON-lines prediction service.

Drives a scripted session through `ppredict serve` and asserts:
  1. every query response's "output" is byte-identical to the one-shot
     CLI subcommand's stdout (and "status" to its exit code);
  2. repeating the whole query block is served from the warm result
     cache (cached:true, nonzero hit count in the stats verb), and
     back-to-back repeats of the same compare all report cached:true;
  3. malformed / unknown-verb / ill-formed / oversized requests get
     structured error responses and the server keeps answering;
  4. a parallel session (--jobs 4) produces the same responses in the
     same order as --jobs 1 (timings and cache bits aside).
"""

import glob
import json
import os
import subprocess
import sys

PP = os.environ.get("PPREDICT", "./_build/default/bin/ppredict.exe")

fail = 0


def err(msg):
    global fail
    fail += 1
    print("::error::" + msg)


def cli(args):
    return subprocess.run([PP] + args, capture_output=True, text=True)


def serve(lines, jobs):
    proc = subprocess.run(
        [PP, "serve", "--jobs", str(jobs), "--max-request-bytes", "4096"],
        input="\n".join(lines) + "\n",
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        err(f"serve --jobs {jobs} exited {proc.returncode}: {proc.stderr.strip()}")
        sys.exit(1)
    return [json.loads(l) for l in proc.stdout.splitlines()]


# ---- the mixed query workload over the shipped samples ----

samples = sorted(glob.glob("samples/*.pf"))
if not samples:
    err("no samples/*.pf found (run from the repository root)")
    sys.exit(1)

cases = []
for f in samples:
    cases.append((["predict", f], {"verb": "predict", "file": f}))
    cases.append(
        (["predict", f, "--ranges"], {"verb": "predict", "file": f, "flags": {"ranges": True}})
    )
    cases.append(
        (["lint", f, "--json"], {"verb": "lint", "file": f, "flags": {"json": True}})
    )
    cases.append(
        (["ranges", f, "--json"], {"verb": "ranges", "file": f, "flags": {"json": True}})
    )
cases.append(
    (
        ["compare", "samples/daxpy.pf", "samples/jacobi.pf"],
        {"verb": "compare", "file": "samples/daxpy.pf", "file2": "samples/jacobi.pf"},
    )
)
cases.append(
    (
        ["predict", "samples/calls.pf", "-i"],
        {"verb": "predict", "file": "samples/calls.pf", "flags": {"interproc": True}},
    )
)

n = len(cases)
lines = []
for rep in range(2):  # the second pass must be all cache hits
    for i, (_, req) in enumerate(cases):
        r = dict(req)
        r["id"] = rep * n + i
        lines.append(json.dumps(r))

ERRORS = [
    ("this is not json", "bad_json"),
    (json.dumps({"id": "e1", "verb": "frobnicate"}), "unknown_verb"),
    (json.dumps({"id": "e2", "verb": "predict"}), "bad_request"),
    ('{"id":"e3","verb":"predict","source":"' + "x" * 5000 + '"}', "oversized"),
    (json.dumps({"id": "e4", "verb": "predict", "machine": "vax", "file": samples[0]}), "error"),
]
lines += [l for l, _ in ERRORS]
lines.append(json.dumps({"id": "after-errors", "verb": "ping"}))

# back-to-back repeats of the same compare: the comparison path is the most
# expensive verb, and every repeat must come straight from the result cache
CMP = {"verb": "compare", "file": "samples/daxpy.pf", "file2": "samples/jacobi.pf"}
N_CMP = 3
for k in range(N_CMP):
    r = dict(CMP)
    r["id"] = f"cmp{k}"
    lines.append(json.dumps(r))

lines.append(json.dumps({"id": "stats", "verb": "stats"}))
lines.append(json.dumps({"id": "bye", "verb": "shutdown"}))

outs = serve(lines, jobs=1)
if len(outs) != len(lines):
    err(f"{len(lines)} requests but {len(outs)} responses")
    sys.exit(1)

# 1 + 2: byte-identical to the one-shot CLI, warm on the repeat
for i, (argv, _) in enumerate(cases):
    one = cli(argv)
    for pos, expect_cached in ((i, False), (n + i, True)):
        r = outs[pos]
        if not r.get("ok"):
            err(f"{argv}: request {pos} failed: {json.dumps(r)}")
            continue
        if r.get("output") != one.stdout:
            err(f"{argv}: serve output differs from the one-shot CLI")
        if r.get("status") != one.returncode:
            err(f"{argv}: serve status {r.get('status')} != CLI exit {one.returncode}")
        if bool(r.get("cached")) != expect_cached:
            err(f"{argv}: request {pos} expected cached={expect_cached}")

# 3: structured errors, session still live afterwards
for k, (_, code) in enumerate(ERRORS):
    r = outs[2 * n + k]
    got = r.get("error", {}).get("code")
    if r.get("ok") or got != code:
        err(f"error case {k}: expected code {code}, got {json.dumps(r)}")
ping = outs[2 * n + len(ERRORS)]
if not ping.get("ok") or ping.get("output") != "pong":
    err(f"server did not answer ping after the error block: {json.dumps(ping)}")

# repeated compare block: identical to the compare in the warm pass, so
# every one of the repeats must report cached:true
cmp_base = 2 * n + len(ERRORS) + 1
for k in range(N_CMP):
    r = outs[cmp_base + k]
    if not r.get("ok") or not r.get("cached"):
        err(f"repeated compare {k}: expected a cache hit, got {json.dumps(r)}")

stats = outs[cmp_base + N_CMP]
hits = stats.get("stats", {}).get("cache", {}).get("hits", 0)
if hits < n:
    err(f"warm pass should give >= {n} cache hits, stats reports {hits}")
bye = outs[-1]
if not bye.get("ok") or bye.get("verb") != "shutdown":
    err(f"shutdown not acknowledged: {json.dumps(bye)}")

# 4: --jobs 4 answers the same session identically (order included)
def strip(o):
    o = dict(o)
    o.pop("t", None)
    o.pop("cached", None)  # which duplicate wins the cache race may differ
    if o.get("verb") == "stats":
        o.pop("stats", None)  # counters are timing/order dependent
    return json.dumps(o, sort_keys=True)

par = serve(lines, jobs=4)
if [strip(o) for o in par] != [strip(o) for o in outs]:
    err("--jobs 4 session differs from --jobs 1 session")

print(f"serve gate: {len(lines)} requests, {2 * n} outputs matched the CLI, "
      f"{hits} warm cache hits, {len(ERRORS)} structured errors, jobs 1 == jobs 4")
sys.exit(1 if fail else 0)
