#!/usr/bin/env python3
"""CI gate for the relational abstract domains (--domain).

Domain monotonicity over the shipped samples: for every pair of sample
routines that `ppredict compare` accepts,

  1. the product domain decides at least as many comparisons as the
     interval domain (a relational analysis only ever adds facts);
  2. a comparison the interval domain already decides is never flipped
     to the opposite sign by the product domain (soundness: more facts
     can refine "either direction" into one, never reverse a proof);
  3. every sample that ranges cleanly under intervals also ranges
     cleanly under every relational domain.

Plus two directed assertions that the relational machinery actually
pays off: reldemo.pf vs reldemo2.pf and divloop.pf vs mulloop.pf are
undecided under intervals and decided under the product domain.
"""

import glob
import os
import subprocess
import sys

PP = os.environ.get("PPREDICT", "./_build/default/bin/ppredict.exe")

fail = 0


def err(msg):
    global fail
    fail += 1
    print("::error::" + msg)


def run(args):
    return subprocess.run([PP] + args, capture_output=True, text=True)


def verdict(out):
    """Classify a compare stdout: 'le' | 'ge' | 'eq' | None (not decided)."""
    for line in out.splitlines():
        if line.startswith("first <= second"):
            return "le"
        if line.startswith("first >= second"):
            return "ge"
        if line.startswith("equal"):
            return "eq"
        if line.startswith("undecided") or line.startswith("crossover"):
            return None
    return None


samples = sorted(glob.glob("samples/*.pf"))
if not samples:
    err("no samples found (run from the repository root)")

# -- 1/2: pairwise compare monotonicity ------------------------------------

decided = {"interval": 0, "product": 0}
pairs = 0
for i, a in enumerate(samples):
    for b in samples[i + 1 :]:
        base = run(["compare", a, b])
        if base.returncode != 0:
            continue  # pair not comparable (e.g. multi-routine file)
        prod = run(["compare", "--domain", "product", a, b])
        if prod.returncode != 0:
            err(f"compare --domain product failed on {a} {b}: {prod.stderr.strip()}")
            continue
        pairs += 1
        vi, vp = verdict(base.stdout), verdict(prod.stdout)
        if vi is not None:
            decided["interval"] += 1
            if vp is None:
                err(f"{a} vs {b}: interval decided ({vi}) but product undecided")
            elif vi != vp and "eq" not in (vi, vp):
                err(f"{a} vs {b}: product flips the decided sign ({vi} -> {vp})")
        if vp is not None:
            decided["product"] += 1

print(f"compared {pairs} sample pairs: "
      f"interval decided {decided['interval']}, product decided {decided['product']}")
if decided["product"] < decided["interval"]:
    err("product domain decides fewer comparisons than intervals")

# -- directed: the relational domains must earn their keep -----------------

for a, b in [("samples/reldemo.pf", "samples/reldemo2.pf"),
             ("samples/divloop.pf", "samples/mulloop.pf")]:
    vi = verdict(run(["compare", a, b]).stdout)
    vp = verdict(run(["compare", "--domain", "product", a, b]).stdout)
    if vi is not None:
        err(f"{a} vs {b}: expected undecided under intervals, got {vi}")
    if vp is None:
        err(f"{a} vs {b}: product domain no longer decides the comparison")

# -- 3: every domain ranges every sample cleanly ---------------------------

for f in samples:
    if run(["ranges", f]).returncode != 0:
        continue  # the interval gate owns plain failures
    for dom in ["octagon", "affine", "product"]:
        r = run(["ranges", "--domain", dom, f])
        if r.returncode != 0:
            err(f"ranges --domain {dom} failed on {f}: {r.stderr.strip()}")

if fail:
    print(f"domain gate: {fail} failure(s)")
    sys.exit(1)
print("domain gate: ok")
