#!/usr/bin/env python3
"""CI gate for the three-bound analysis (`ppredict bounds`).

Soundness over the shipped samples: for every loop nest of every sample,
the critical path of one iteration never exceeds what the bin-packing
schedule pays for that iteration (a longest latency chain is a lower
bound on any schedule of the same DAG).

Directed classifications that the bounds must keep earning:

  * jacobi.pf and streambound.pf under --memory on power1, and daxpy.pf
    under --memory on alpha21064, are memory-bound;
  * recurrence.pf and lcd.pf are LCD-bound on power1, with the LCD bound
    strictly above the bin-packing bound and a bound-disagreement event;
  * daxpy.pf on power1 stays compute-bound (the paper's model suffices).

Protocol parity: the server's bounds verb is byte-identical to the CLI
for the same machine, source, and flags, and a repeated request is
served from the result cache.
"""

import glob
import json
import os
import subprocess
import sys

PP = os.environ.get("PPREDICT", "./_build/default/bin/ppredict.exe")

fail = 0


def err(msg):
    global fail
    fail += 1
    print("::error::" + msg)


def run(args, stdin=None):
    return subprocess.run([PP] + args, capture_output=True, text=True, input=stdin)


def rat(s):
    """Parse the analyzer's rational rendering: '23' or '99/8'."""
    if "/" in s:
        num, den = s.split("/", 1)
        return float(num) / float(den)
    return float(s)


def bounds_json(f, extra=None):
    r = run(["bounds", "--json"] + (extra or []) + [f])
    if r.returncode != 0:
        return None
    return json.loads(r.stdout)


samples = sorted(glob.glob("samples/*.pf"))
if not samples:
    err("no samples found (run from the repository root)")

# -- 1: critical path <= bin packing on every nest of every sample ---------

nests = 0
for f in samples:
    doc = bounds_json(f)
    if doc is None:
        continue  # not a single-routine analyzable sample; other gates own it
    for routine in doc["routines"]:
        for nest in routine["nests"]:
            nests += 1
            if nest["critical_path"] > nest["bin_once"]:
                err(f"{f} line {nest['line']}: critical path {nest['critical_path']} "
                    f"exceeds the one-iteration packing {nest['bin_once']}")
print(f"checked {nests} loop nests: critical path <= bin packing")
if nests == 0:
    err("no loop nests analyzed")


# -- 2: directed classifications -------------------------------------------

def classify(f, extra=None):
    doc = bounds_json(f, extra)
    if doc is None or not doc["routines"] or not doc["routines"][0]["nests"]:
        return None, None
    r = doc["routines"][0]
    return r["nests"][0], r["events"]


for f, extra in [("samples/jacobi.pf", ["--memory"]),
                 ("samples/streambound.pf", ["--memory"]),
                 ("samples/daxpy.pf", ["--memory", "-m", "alpha21064"])]:
    nest, _ = classify(f, extra)
    if nest is None:
        err(f"{f}: bounds --json produced no nest")
    elif nest["classification"] != "memory-bound":
        err(f"{f} {' '.join(extra)}: expected memory-bound, got {nest['classification']}")

for f in ["samples/recurrence.pf", "samples/lcd.pf"]:
    nest, events = classify(f)
    if nest is None:
        err(f"{f}: bounds --json produced no nest")
        continue
    if nest["classification"] != "LCD-bound":
        err(f"{f}: expected LCD-bound, got {nest['classification']}")
    if rat(nest["lcd_per_iter"]) <= nest["bin_per_iter"]:
        err(f"{f}: LCD {nest['lcd_per_iter']}/iter not strictly above "
            f"bin {nest['bin_per_iter']}/iter")
    if not any(e["check"] == "bound-disagreement" for e in events):
        err(f"{f}: no bound-disagreement event")

nest, events = classify("samples/daxpy.pf")
if nest is None or nest["classification"] != "compute-bound":
    err("samples/daxpy.pf: expected compute-bound on power1")

# -- 3: server parity and caching ------------------------------------------

for f, flags, extra in [("samples/recurrence.pf", {}, []),
                        ("samples/jacobi.pf", {"memory": True}, ["--memory"])]:
    cli = run(["bounds"] + extra + [f])
    if cli.returncode != 0:
        err(f"bounds {f} failed: {cli.stderr.strip()}")
        continue
    reqs = "\n".join(
        json.dumps({"id": i, "verb": "bounds", "file": f, "flags": flags})
        for i in (1, 2)) + "\n"
    batch = run(["batch"], stdin=reqs)
    if batch.returncode != 0:
        err(f"batch bounds {f} failed: {batch.stderr.strip()}")
        continue
    lines = [json.loads(l) for l in batch.stdout.splitlines() if l.strip()]
    if len(lines) != 2:
        err(f"batch bounds {f}: expected 2 responses, got {len(lines)}")
        continue
    first, second = lines
    if first.get("output") != cli.stdout:
        err(f"batch bounds {f}: server output differs from CLI stdout")
    if second.get("output") != cli.stdout:
        err(f"batch bounds {f}: repeated request output differs from CLI stdout")
    if first.get("cached"):
        err(f"batch bounds {f}: first request claims a cache hit")
    if not second.get("cached"):
        err(f"batch bounds {f}: repeated request not served from the cache")

if fail:
    print(f"bounds gate: {fail} failure(s)")
    sys.exit(1)
print("bounds gate: ok")
