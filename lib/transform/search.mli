(** Performance-guided transformation search (§3.2).

    "Based on the symbolic performance comparison, the compiler can utilize
    graph search algorithms, such as the A* algorithm, to choose program
    transformation sequences systematically."

    States are program variants; actions are legal transformations at
    specific loops; the evaluation function is the framework's predicted
    cost (evaluated at the midpoint of the variable ranges, with symbolic
    comparison available to order close candidates). The search is A* with
    a lower-bound heuristic of zero remaining improvement (best-first on
    predicted cost), a visited set keyed on program structure, and a node
    budget. *)

open Pperf_lang
open Pperf_machine
open Pperf_symbolic
open Pperf_core

type step = { action : string; at : Transformations.path }

type blocked = {
  action : string;  (** e.g. ["interchange"], ["reverse"] *)
  at : Transformations.path;
  why : Pperf_lint.Diagnostic.t;
      (** the carried-dependence diagnostic that makes the action illegal *)
}

type outcome = {
  best : Typecheck.checked;
  trace : step list;  (** transformations applied, in order *)
  predicted : Perf_expr.t;
  initial : Perf_expr.t;
  explored : int;  (** states expanded *)
  blocked : blocked list;
      (** reordering actions the dependence tests refused on the original
          routine, each citing the lint diagnostic that says why *)
}

val candidate_actions :
  Ast.routine -> (string * Transformations.path * (Ast.routine -> Ast.routine option)) list
(** All transformation instances applicable (syntactically) to the
    routine: unroll 2/4/8, interchange, strip-mine, tile 16/32, distribute
    and fusion of adjacent loops. Legality is checked inside each action. *)

val run :
  machine:Machine.t ->
  ?options:Aggregate.options ->
  ?env:Interval.Env.t ->
  ?max_nodes:int ->
  ?max_depth:int ->
  Typecheck.checked ->
  outcome
(** [env] gives the unknowns' ranges (prediction is scored at range
    midpoints, default [n = 128]-ish for unbound variables). *)

(** {1 Program versioning (§3.4)}

    When the best transformation's benefit depends on unknowns, emit both
    versions guarded by a generated run-time test. *)

type versioned = {
  guard : Ast.expr;  (** true selects the transformed version *)
  routine : Ast.routine;  (** [if (guard) then transformed else original] *)
  test : Runtime_test.test;
}

val make_versioned : guard:Ast.expr -> Ast.routine -> Ast.routine -> Ast.routine

val run_versioned :
  machine:Machine.t ->
  ?options:Aggregate.options ->
  ?env:Interval.Env.t ->
  ?max_nodes:int ->
  ?max_depth:int ->
  Typecheck.checked ->
  outcome * versioned option
(** [None] when one version wins over the whole range (no test needed) or
    the guard costs more than the expected gain. *)
