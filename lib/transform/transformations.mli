(** Restructuring transformations over PF loops, with dependence-based
    legality checks.

    These are the "sequence of restructuring transformations" whose
    performance trade-offs the paper's framework exists to evaluate
    (§1, §3.2). Each returns [None] when illegal or inapplicable, so the
    search layer can enumerate blindly. *)

open Pperf_lang

type path = int list
(** Position of a statement: indices into nested statement lists, where an
    [If] statement's branches are numbered in order and the else branch
    comes last. *)

val loops_in : Ast.routine -> (path * Ast.do_loop) list
(** All [do] loops with their paths, outermost first. *)

val stmt_at : Ast.routine -> path -> Ast.stmt option
val replace_at : Ast.routine -> path -> Ast.stmt list -> Ast.routine option
(** Replace the statement at [path] by a list of statements. *)

val subst_var_expr : string -> Ast.expr -> Ast.expr -> Ast.expr
val subst_var_stmts : string -> Ast.expr -> Ast.stmt list -> Ast.stmt list

(** {1 Transformations} *)

val unroll : factor:int -> Ast.do_loop -> Ast.stmt list option
(** Unroll by [factor] (legal for any loop with step 1): main loop with
    step [factor] and replicated body, plus a remainder loop. *)

val unroll_exact : factor:int -> Ast.do_loop -> Ast.stmt list option
(** Like {!unroll} but only when the trip count is a known constant
    divisible by [factor] — no remainder loop. *)

val interchange : Ast.do_loop -> Ast.stmt list option
(** Swap the outer two loops of a perfect nest; checked against (<,>)
    direction vectors. *)

val strip_mine : width:int -> Ast.do_loop -> Ast.stmt list option
(** Always legal: [do i] becomes [do is] by [width] over [do i]. *)

val tile2 : width:int -> Ast.do_loop -> Ast.stmt list option
(** Tile the outer two loops of a perfect nest (strip-mine both +
    interchange); requires interchange legality. *)

val distribute : Ast.do_loop -> Ast.stmt list option
(** Split a two-or-more statement loop body into consecutive loops at the
    first legal split point. *)

val fuse : Ast.do_loop -> Ast.do_loop -> Ast.stmt list option
(** Fuse two adjacent loops with syntactically equal headers; conservative
    dependence check. *)

val reverse : Ast.do_loop -> Ast.stmt list option
(** Run the loop backwards ([do i = hi, lo, -1]); legal only when the loop
    carries no dependence. *)

val pp_path : Format.formatter -> path -> unit
