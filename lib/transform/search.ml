open Pperf_num
open Pperf_lang
open Pperf_symbolic
open Pperf_core

type step = { action : string; at : Transformations.path }

type blocked = {
  action : string;
  at : Transformations.path;
  why : Pperf_lint.Diagnostic.t;
}

type outcome = {
  best : Typecheck.checked;
  trace : step list;
  predicted : Perf_expr.t;
  initial : Perf_expr.t;
  explored : int;
  blocked : blocked list;
}

(* reordering transformations the dependence tests refuse on the original
   routine, each citing the lint diagnostic that states the reason *)
let blocked_actions (r : Ast.routine) =
  List.concat_map
    (fun (p, (d : Ast.do_loop)) ->
      let loc =
        match Transformations.stmt_at r p with
        | Some s -> s.Ast.loc
        | None -> Srcloc.dummy
      in
      let cite action =
        let why =
          match Pperf_lint.Checks.loop_carried ~loc d with
          | diag :: _ -> diag
          | [] ->
            Pperf_lint.Diagnostic.make Pperf_lint.Diagnostic.Hint ~check:"carried-dep"
              ~loc
              (Printf.sprintf
                 "dependence analysis could not prove the loop over %s reorderable" d.var)
        in
        { action; at = p; why }
      in
      let perfect2 =
        match d.body with [ { Ast.kind = Ast.Do _; _ } ] -> true | _ -> false
      in
      let on_interchange =
        if perfect2 && not (Depend.interchange_legal d) then
          [ cite "interchange"; cite "tile" ]
        else []
      in
      let on_reverse =
        if Depend.carried_dependences d <> [] then [ cite "reverse" ] else []
      in
      on_interchange @ on_reverse)
    (Transformations.loops_in r)

let candidate_actions (r : Ast.routine) =
  let loops = Transformations.loops_in r in
  let at_loop (p, (d : Ast.do_loop)) =
    let wrap name f =
      ( name,
        p,
        fun (r : Ast.routine) ->
          match Transformations.stmt_at r p with
          | Some { Ast.kind = Ast.Do d'; _ } -> (
            match f d' with
            | Some repl -> Transformations.replace_at r p repl
            | None -> None)
          | _ -> None )
    in
    ignore d;
    [
      wrap "unroll2" (Transformations.unroll ~factor:2);
      wrap "unroll4" (Transformations.unroll ~factor:4);
      wrap "unroll8" (Transformations.unroll ~factor:8);
      wrap "interchange" Transformations.interchange;
      wrap "tile16" (Transformations.tile2 ~width:16);
      wrap "tile32" (Transformations.tile2 ~width:32);
      wrap "distribute" Transformations.distribute;
      wrap "reverse" Transformations.reverse;
    ]
  in
  let unary = List.concat_map at_loop loops in
  (* fusion of adjacent sibling loops *)
  let fusions =
    List.concat_map
      (fun (p, _) ->
        match List.rev p with
        | i :: rest_rev ->
          let sibling = List.rev (i + 1 :: rest_rev) in
          [
            ( "fuse",
              p,
              fun (r : Ast.routine) ->
                match (Transformations.stmt_at r p, Transformations.stmt_at r sibling) with
                | Some { Ast.kind = Ast.Do a; _ }, Some { Ast.kind = Ast.Do b; _ } -> (
                  match Transformations.fuse a b with
                  | Some repl -> (
                    (* remove the sibling first (higher index), then replace *)
                    match Transformations.replace_at r sibling [] with
                    | Some r' -> Transformations.replace_at r' p repl
                    | None -> None)
                  | None -> None)
                | _ -> None );
          ]
        | [] -> [])
      loops
  in
  unary @ fusions

let default_env = Interval.Env.empty

let score ~machine ~options ~env (checked : Typecheck.checked) =
  let pred = Aggregate.routine ~machine ~options checked in
  let total = Perf_expr.total pred.cost in
  let value =
    Poly.eval_float
      (fun v ->
        match Interval.Env.find_opt v env with
        | Some iv -> Rat.to_float (Interval.midpoint iv)
        | None ->
          if List.mem v pred.prob_vars then 0.5
          else if String.length v >= 5 && String.sub v 0 5 = "trip_" then 64.0
          else 128.0)
      total
  in
  (value, pred.cost)

module PQ = Map.Make (struct
  type t = float * int

  let compare = compare
end)

let run ~machine ?(options = Aggregate.default_options) ?(env = default_env)
    ?(max_nodes = 200) ?(max_depth = 4) (checked : Typecheck.checked) =
  let seen = Hashtbl.create 64 in
  let counter = ref 0 in
  let init_score, init_cost = score ~machine ~options ~env checked in
  let best = ref (checked, [], init_cost, init_score) in
  let frontier = ref PQ.empty in
  let push sc state =
    incr counter;
    frontier := PQ.add (sc, !counter) state !frontier
  in
  push init_score (checked, [], 0);
  Hashtbl.replace seen (Hashtbl.hash (Ast.show_routine checked.routine)) ();
  let explored = ref 0 in
  while (not (PQ.is_empty !frontier)) && !explored < max_nodes do
    let (sc, id), (state, trace, depth) = PQ.min_binding !frontier in
    frontier := PQ.remove (sc, id) !frontier;
    incr explored;
    if depth < max_depth then
      List.iter
        (fun (name, p, apply) ->
          match apply state.Typecheck.routine with
          | None -> ()
          | Some r' -> (
            let key = Hashtbl.hash (Ast.show_routine r') in
            if not (Hashtbl.mem seen key) then (
              Hashtbl.replace seen key ();
              match Typecheck.check_routine r' with
              | exception _ -> ()
              | checked' ->
                let sc', cost' = score ~machine ~options ~env checked' in
                let trace' = trace @ [ { action = name; at = p } ] in
                let _, _, _, best_sc = !best in
                if sc' < best_sc then best := (checked', trace', cost', sc');
                push sc' (checked', trace', depth + 1))))
        (candidate_actions state.Typecheck.routine)
  done;
  let best_state, trace, cost, _ = !best in
  {
    best = best_state;
    trace;
    predicted = cost;
    initial = init_cost;
    explored = !explored;
    blocked = blocked_actions checked.Typecheck.routine;
  }

(* ---- §3.4 program versioning ---- *)

type versioned = {
  guard : Ast.expr;  (** true selects [when_true] *)
  routine : Ast.routine;  (** the combined two-version routine *)
  test : Runtime_test.test;
}

(** Combine two variants of a routine under a run-time guard: the §3.4
    "multiple branches of instructions guided by well-chosen run-time
    tests". *)
let make_versioned ~guard (a : Ast.routine) (b : Ast.routine) : Ast.routine =
  { a with body = [ Ast.mk (Ast.If ([ (guard, a.body) ], b.body)) ] }

(** Search, then decide between the original and the best variant over the
    variable ranges; when the winner depends on the unknowns (crossover or
    undecidable) and the guard is worth its cycles, emit a two-version
    routine. *)
let run_versioned ~machine ?options ?(env = default_env) ?max_nodes ?max_depth
    (checked : Typecheck.checked) : outcome * versioned option =
  let out = run ~machine ?options ?env:(Some env) ?max_nodes ?max_depth checked in
  if out.trace = [] then (out, None)
  else (
    let d = Compare.decide env out.predicted out.initial in
    match d.verdict with
    | Pperf_symbolic.Signs.Crossover _ | Pperf_symbolic.Signs.Undecided _ ->
      let test = Runtime_test.of_difference env d.difference in
      if Runtime_test.worthwhile env test d.difference then (
        let guard = Runtime_test.guard_expr test in
        let routine = make_versioned ~guard out.best.Typecheck.routine checked.routine in
        match Typecheck.check_routine (Parser.parse_routine (Pp_ast.routine_to_string routine)) with
        | exception _ -> (out, None)
        | _ -> (out, Some { guard; routine; test }))
      else (out, None)
    | _ -> (out, None))
