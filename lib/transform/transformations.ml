open Pperf_lang

type path = int list

(* ---- AST navigation ---- *)

(* children of a statement as a list of statement lists *)
let children (s : Ast.stmt) : Ast.stmt list list =
  match s.kind with
  | Ast.Do d -> [ d.body ]
  | Ast.If (branches, els) -> List.map snd branches @ [ els ]
  | _ -> []

let with_children (s : Ast.stmt) (cs : Ast.stmt list list) : Ast.stmt =
  match (s.kind, cs) with
  | Ast.Do d, [ body ] -> { s with kind = Ast.Do { d with body } }
  | Ast.If (branches, _), _ ->
    let rec split n l = if n = 0 then ([], l) else (match l with
      | x :: r -> let a, b = split (n - 1) r in (x :: a, b)
      | [] -> ([], [])) in
    let bs, rest = split (List.length branches) cs in
    let els = match rest with [ e ] -> e | _ -> [] in
    { s with kind = Ast.If (List.map2 (fun (c, _) b -> (c, b)) branches bs, els) }
  | _ -> s

let loops_in (r : Ast.routine) =
  let out = ref [] in
  let rec go path (ss : Ast.stmt list) =
    List.iteri
      (fun i s ->
        let p = path @ [ i ] in
        (match s.Ast.kind with Ast.Do d -> out := (p, d) :: !out | _ -> ());
        List.iteri (fun j cs -> go (p @ [ j ]) cs) (children s))
      ss
  in
  go [] r.body;
  List.rev !out

(* navigate: a path alternates (stmt index) and, for compound stmts with
   several child lists, (child list index, stmt index). loops_in produces
   paths of the form [i; branch; j; branch'; k; ...]. *)
let rec stmt_at_stmts (ss : Ast.stmt list) (p : path) : Ast.stmt option =
  match p with
  | [] -> None
  | [ i ] -> List.nth_opt ss i
  | i :: j :: rest -> (
    match List.nth_opt ss i with
    | None -> None
    | Some s -> (
      match List.nth_opt (children s) j with
      | None -> None
      | Some cs -> stmt_at_stmts cs rest))

let stmt_at (r : Ast.routine) p = stmt_at_stmts r.body p

let rec replace_at_stmts (ss : Ast.stmt list) (p : path) (repl : Ast.stmt list) :
    Ast.stmt list option =
  match p with
  | [] -> None
  | [ i ] ->
    if i < 0 || i >= List.length ss then None
    else
      Some
        (List.concat
           (List.mapi (fun k s -> if k = i then repl else [ s ]) ss))
  | i :: j :: rest -> (
    match List.nth_opt ss i with
    | None -> None
    | Some s -> (
      let cs = children s in
      match List.nth_opt cs j with
      | None -> None
      | Some child -> (
        match replace_at_stmts child rest repl with
        | None -> None
        | Some child' ->
          let cs' = List.mapi (fun k c -> if k = j then child' else c) cs in
          Some
            (List.mapi (fun k s0 -> if k = i then with_children s cs' else s0) ss))))

let replace_at (r : Ast.routine) p repl =
  Option.map (fun body -> { r with Ast.body }) (replace_at_stmts r.body p repl)

(* ---- substitution ---- *)

let rec subst_var_expr x repl (e : Ast.expr) : Ast.expr =
  match e with
  | Ast.Var y when String.equal x y -> repl
  | Ast.Int _ | Ast.Real _ | Ast.Logical _ | Ast.Var _ -> e
  | Ast.Index (a, subs) -> Ast.Index (a, List.map (subst_var_expr x repl) subs)
  | Ast.Call (f, args) -> Ast.Call (f, List.map (subst_var_expr x repl) args)
  | Ast.Unop (op, a) -> Ast.Unop (op, subst_var_expr x repl a)
  | Ast.Binop (op, a, b) -> Ast.Binop (op, subst_var_expr x repl a, subst_var_expr x repl b)

let rec subst_var_stmts x repl (ss : Ast.stmt list) : Ast.stmt list =
  List.map
    (fun (s : Ast.stmt) ->
      let kind =
        match s.kind with
        | Ast.Assign (lhs, e) ->
          Ast.Assign
            ( { lhs with subs = List.map (subst_var_expr x repl) lhs.subs },
              subst_var_expr x repl e )
        | Ast.If (branches, els) ->
          Ast.If
            ( List.map
                (fun (c, b) -> (subst_var_expr x repl c, subst_var_stmts x repl b))
                branches,
              subst_var_stmts x repl els )
        | Ast.Do d ->
          if String.equal d.var x then s.kind (* shadowed *)
          else
            Ast.Do
              {
                d with
                lo = subst_var_expr x repl d.lo;
                hi = subst_var_expr x repl d.hi;
                step = Option.map (subst_var_expr x repl) d.step;
                body = subst_var_stmts x repl d.body;
              }
        | Ast.Call_stmt (f, args) -> Ast.Call_stmt (f, List.map (subst_var_expr x repl) args)
        | Ast.Return -> Ast.Return
      in
      { s with kind })
    ss

(* ---- simplification of index expressions like (i + 0) ---- *)

let rec simpl (e : Ast.expr) : Ast.expr =
  match e with
  | Ast.Binop (Ast.Add, a, Ast.Int 0) | Ast.Binop (Ast.Add, Ast.Int 0, a) -> simpl a
  | Ast.Binop (Ast.Sub, a, Ast.Int 0) -> simpl a
  | Ast.Binop (op, a, b) -> (
    let a = simpl a and b = simpl b in
    match (op, a, b) with
    | Ast.Add, Ast.Int x, Ast.Int y -> Ast.Int (x + y)
    | Ast.Sub, Ast.Int x, Ast.Int y -> Ast.Int (x - y)
    | Ast.Mul, Ast.Int x, Ast.Int y -> Ast.Int (x * y)
    | Ast.Add, Ast.Binop (Ast.Add, a', Ast.Int x), Ast.Int y -> Ast.Binop (Ast.Add, a', Ast.Int (x + y))
    | Ast.Add, Ast.Binop (Ast.Sub, a', Ast.Int x), Ast.Int y when y >= x -> simpl (Ast.Binop (Ast.Add, a', Ast.Int (y - x)))
    | _ -> Ast.Binop (op, a, b))
  | Ast.Unop (op, a) -> Ast.Unop (op, simpl a)
  | Ast.Index (a, subs) -> Ast.Index (a, List.map simpl subs)
  | Ast.Call (f, args) -> Ast.Call (f, List.map simpl args)
  | _ -> e

let simpl_stmts ss =
  let rec go (ss : Ast.stmt list) =
    List.map
      (fun (s : Ast.stmt) ->
        let kind =
          match s.Ast.kind with
          | Ast.Assign (lhs, e) ->
            Ast.Assign ({ lhs with subs = List.map simpl lhs.subs }, simpl e)
          | Ast.If (branches, els) ->
            Ast.If (List.map (fun (c, b) -> (simpl c, go b)) branches, go els)
          | Ast.Do d ->
            Ast.Do { d with lo = simpl d.lo; hi = simpl d.hi; step = Option.map simpl d.step; body = go d.body }
          | k -> k
        in
        { s with kind })
      ss
  in
  go ss

(* ---- transformations ---- *)

let step_is_one (d : Ast.do_loop) =
  match d.step with None -> true | Some (Ast.Int 1) -> true | Some _ -> false

let const_trip (d : Ast.do_loop) =
  match (d.lo, d.hi, step_is_one d) with
  | Ast.Int lo, Ast.Int hi, true when hi >= lo -> Some ((hi - lo) + 1)
  | _ -> None

let unroll_body ~factor (d : Ast.do_loop) =
  List.concat
    (List.init factor (fun k ->
         if k = 0 then d.body
         else simpl_stmts (subst_var_stmts d.var (Ast.Binop (Ast.Add, Ast.Var d.var, Ast.Int k)) d.body)))

let unroll_exact ~factor (d : Ast.do_loop) =
  if factor < 2 || not (step_is_one d) then None
  else
    match const_trip d with
    | Some trip when trip mod factor = 0 ->
      Some
        [ Ast.mk (Ast.Do { d with step = Some (Ast.Int factor); body = unroll_body ~factor d }) ]
    | _ -> None

let unroll ~factor (d : Ast.do_loop) =
  if factor < 2 || not (step_is_one d) then None
  else (
    match unroll_exact ~factor d with
    | Some r -> Some r
    | None ->
      (* main unrolled loop up to hi - factor + 1, then a remainder loop
         from the saved index; we approximate the remainder with a fresh
         loop from a conservative start (hi - mod): for cost purposes the
         remainder trip is < factor *)
      let main =
        Ast.mk
          (Ast.Do
             {
               d with
               hi = Ast.Binop (Ast.Sub, d.hi, Ast.Int (factor - 1));
               step = Some (Ast.Int factor);
               body = unroll_body ~factor d;
             })
      in
      let rem_var = d.var in
      let remainder =
        Ast.mk
          (Ast.Do
             {
               var = rem_var;
               lo =
                 Ast.Binop
                   ( Ast.Add,
                     Ast.Binop (Ast.Sub, d.hi, Ast.Call ("mod", [ Ast.Binop (Ast.Add, Ast.Binop (Ast.Sub, d.hi, d.lo), Ast.Int 1); Ast.Int factor ])),
                     Ast.Int 1 );
               hi = d.hi;
               step = None;
               body = d.body;
             })
      in
      Some [ main; remainder ])

let interchange (d : Ast.do_loop) =
  match d.body with
  | [ { Ast.kind = Ast.Do inner; loc } ] ->
    if Depend.interchange_legal d then
      Some
        [ Ast.mk ~loc
            (Ast.Do { inner with body = [ Ast.mk (Ast.Do { d with body = inner.body }) ] })
        ]
    else None
  | _ -> None

let strip_mine ~width (d : Ast.do_loop) =
  if width < 2 || not (step_is_one d) then None
  else (
    let sv = d.var ^ "_s" in
    let inner =
      Ast.mk
        (Ast.Do
           {
             d with
             lo = Ast.Var sv;
             hi = Ast.Call ("min", [ Ast.Binop (Ast.Add, Ast.Var sv, Ast.Int (width - 1)); d.hi ]);
           })
    in
    Some
      [ Ast.mk
          (Ast.Do { var = sv; lo = d.lo; hi = d.hi; step = Some (Ast.Int width); body = [ inner ] })
      ])

let tile2 ~width (d : Ast.do_loop) =
  match d.body with
  | [ { Ast.kind = Ast.Do inner; _ } ] when step_is_one d && step_is_one inner ->
    if not (Depend.interchange_legal d) then None
    else (
      let iv = d.var ^ "_t" and jv = inner.var ^ "_t" in
      (* do it = ..., width; do jt = ..., width; do i; do j *)
      let j_loop =
        Ast.mk
          (Ast.Do
             {
               inner with
               lo = Ast.Var jv;
               hi = Ast.Call ("min", [ Ast.Binop (Ast.Add, Ast.Var jv, Ast.Int (width - 1)); inner.hi ]);
             })
      in
      let i_loop =
        Ast.mk
          (Ast.Do
             {
               d with
               lo = Ast.Var iv;
               hi = Ast.Call ("min", [ Ast.Binop (Ast.Add, Ast.Var iv, Ast.Int (width - 1)); d.hi ]);
               body = [ j_loop ];
             })
      in
      let jt_loop =
        Ast.mk
          (Ast.Do
             { var = jv; lo = inner.lo; hi = inner.hi; step = Some (Ast.Int width); body = [ i_loop ] })
      in
      Some
        [ Ast.mk
            (Ast.Do { var = iv; lo = d.lo; hi = d.hi; step = Some (Ast.Int width); body = [ jt_loop ] })
        ])
  | _ -> None

(* fusion-style legality: no dependence from the later group back to the
   earlier group carried with a forward direction that fusion would
   reverse. We tag the two groups through statement locations. *)
let groups_fusable (d : Ast.do_loop) body1 body2 =
  let tag line (ss : Ast.stmt list) =
    List.map (fun (s : Ast.stmt) -> { s with Ast.loc = Srcloc.make line 0 }) ss
  in
  let fused =
    Ast.mk (Ast.Do { d with body = tag 1 body1 @ tag 2 body2 })
  in
  let deps = Depend.dependences_in [ fused ] in
  not
    (List.exists
       (fun (dep : Depend.dependence) ->
         (* a dependence whose source is in the second group and sink in the
            first, carried by the fused loop, would be violated *)
         dep.src.Analysis.at.Srcloc.line = 2
         && dep.dst.Analysis.at.Srcloc.line = 1
         && List.exists (fun dir -> dir <> Depend.Eq) dep.directions)
       deps)

let distribute (d : Ast.do_loop) =
  let n = List.length d.body in
  if n < 2 then None
  else (
    let rec try_split k =
      if k >= n then None
      else (
        let rec split i = function
          | [] -> ([], [])
          | x :: rest ->
            if i = 0 then ([], x :: rest)
            else (
              let a, b = split (i - 1) rest in
              (x :: a, b))
        in
        let body1, body2 = split k d.body in
        if groups_fusable d body1 body2 then
          Some
            [ Ast.mk (Ast.Do { d with body = body1 });
              Ast.mk (Ast.Do { d with body = body2 }) ]
        else try_split (k + 1))
    in
    try_split 1)

let headers_equal (a : Ast.do_loop) (b : Ast.do_loop) =
  String.equal a.var b.var && Ast.equal_expr a.lo b.lo && Ast.equal_expr a.hi b.hi
  && Option.equal Ast.equal_expr a.step b.step

let fuse (a : Ast.do_loop) (b : Ast.do_loop) =
  if not (headers_equal a b) then None
  else if groups_fusable a a.body b.body then
    Some [ Ast.mk (Ast.Do { a with body = a.body @ b.body }) ]
  else None

let reverse (d : Ast.do_loop) =
  if not (step_is_one d) then None
  else if Depend.carried_dependences d <> [] then None
  else
    Some
      [ Ast.mk (Ast.Do { d with lo = d.hi; hi = d.lo; step = Some (Ast.Int (-1)) }) ]

let pp_path fmt p =
  Format.fprintf fmt "[%s]" (String.concat "." (List.map string_of_int p))
