(** Procedure and library-routine cost interface (§3.5).

    "Table look-up of the performance expression can be used to find the
    cost of external function calls or library routines. ... The
    performance expressions are parameterized with the formal parameters.
    Actual parameters are substituted at the call site to get more specific
    performance expressions." *)

open Pperf_lang

type entry = {
  formals : string list;  (** names the stored expression is written in *)
  cost : Perf_expr.t;
}

type t

val create : unit -> t
val register : t -> string -> formals:string list -> Perf_expr.t -> unit
val mem : t -> string -> bool

val call_cost : t -> string -> Ast.expr list -> Perf_expr.t option
(** Substitute the actual arguments for the formals. A non-polynomial
    actual leaves its formal in place, renamed [<callee>.<formal>], so it
    remains a distinct unknown rather than a wrong guess. *)

val of_prediction : formals:string list -> Perf_expr.t -> entry
