(** Symbolic comparison of performance expressions (§3.1–3.2).

    Wraps {!Pperf_symbolic.Signs.compare_over} with performance-expression
    conveniences: evaluate both candidates, decide over the variable
    ranges, and when undecidable produce the run-time test condition.
    Probability variables default to the range [0,1] if the caller's
    environment does not bind them. *)

open Pperf_num
open Pperf_symbolic

type choice = First | Second | Either

type decision = {
  verdict : Signs.verdict;
  recommended : choice;
      (** when the verdict has regions or is undecided, the choice that
          wins on the larger share of the range (by P⁻/P⁺ measure or at
          the midpoint) *)
  difference : Poly.t;  (** [C(first) - C(second)] *)
}

let widen_env env diff =
  (* default probability unknowns to [0,1], trip counts to n >= 0 *)
  List.fold_left
    (fun env v ->
      match Interval.Env.find_opt v env with
      | Some _ -> env
      | None ->
        if String.length v > 0 && v.[0] = 'p' then Interval.Env.add v Interval.unit_prob env
        else Interval.Env.add v Interval.nonneg env)
    env (Poly.vars diff)

(* Eliminate variables the environment pins to a single value: a
   multivariate difference like c*n*m with m in [8,8] becomes univariate in
   n, which the root-isolation path of {!Signs.compare_over} can decide
   where interval subdivision over unbounded boxes cannot. *)
let subst_points env p =
  List.fold_left
    (fun p (x, iv) ->
      match Interval.is_point iv with
      | Some r when Poly.mem_var x p -> Poly.subst x (Poly.const r) p
      | _ -> p)
    p (Interval.Env.bindings env)

type rel_facts = {
  rel_domain : Pperf_absint.Absint.domain;
  rel_rewrites : (string * Poly.t) list;
  rel_oracle : Poly.t -> Interval.t;
  rel_show : string list;
}

let inferred_rel ?(base = Interval.Env.empty) ?(domain = Pperf_absint.Absint.Box) checkeds =
  let module A = Pperf_absint.Absint in
  let results = List.map (A.analyze ~domain) checkeds in
  let inferred =
    List.fold_left
      (fun env res ->
        List.fold_left
          (fun env (x, iv) ->
            match Interval.Env.find_opt x env with
            | Some cur -> Interval.Env.add x (Interval.union cur iv) env
            | None -> Interval.Env.add x iv env)
          env
          (Interval.Env.bindings (A.summary res)))
      Interval.Env.empty results
  in
  (* explicit caller bindings win over inferred ones *)
  let env =
    List.fold_left
      (fun env (x, iv) -> Interval.Env.add x iv env)
      inferred
      (Interval.Env.bindings base)
  in
  let rel =
    if domain = A.Box then None
    else
      match List.map A.summary_rel results with
      | [] -> None
      | r :: tl ->
        (* join: only relations valid in every routine survive, so the
           oracle is sound for a cross-routine comparison *)
        let joined = List.fold_left Pperf_absint.Reldom.join r tl in
        let ivb v = Interval.Env.find v env in
        Some
          {
            rel_domain = domain;
            rel_rewrites = Pperf_absint.Reldom.rewrites joined;
            rel_oracle = (fun p -> Pperf_absint.Reldom.bound ~ivb joined p);
            rel_show =
              List.map Pperf_absint.Lin.cons_to_string
                (Pperf_absint.Reldom.constraints joined);
          }
  in
  (env, rel)

let inferred_env ?base checkeds = fst (inferred_rel ?base checkeds)

let sp_compare = Pperf_obs.Obs.span "compare"

(* one decision counter per domain, registered on first decided verdict so
   interval-only runs keep their historical counter set *)
let c_decided : (string, Pperf_obs.Obs.counter) Hashtbl.t = Hashtbl.create 4

let count_decided rel verdict =
  match verdict with
  | Signs.Always_le | Signs.Always_ge | Signs.Equal ->
    let dom =
      match rel with
      | Some r -> Pperf_absint.Absint.domain_to_string r.rel_domain
      | None -> "interval"
    in
    let name = "compare.decided." ^ dom in
    let c =
      match Hashtbl.find_opt c_decided name with
      | Some c -> c
      | None ->
        let c = Pperf_obs.Obs.counter name in
        Hashtbl.add c_decided name c;
        c
    in
    Pperf_obs.Obs.incr c
  | Signs.Crossover _ | Signs.Undecided _ -> ()

(* ---- comparison-level memo ----

   The sign analysis is the expensive half of [decide]; its verdict is a
   pure function of the two (rewritten, point-substituted) totals, the
   widened environment restricted to their variables, the subdivision
   parameters, and the relational facts feeding the oracle. We key a
   per-domain capped memo on a digest of exactly those inputs. Worker
   domains never share the table (same DLS pattern as the Sturm-chain
   memo in {!Pperf_symbolic.Roots}), so the hot path takes no locks. *)

let c_memo_hits = Pperf_obs.Obs.counter "compare.memo.hits"
let c_memo_misses = Pperf_obs.Obs.counter "compare.memo.misses"
let memo_cap = 256

let memo_key : (string, Signs.verdict) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 32)

let verdict_digest ?eps ?depth ~rel ~env f g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Poly.to_string f);
  Buffer.add_char buf '|';
  Buffer.add_string buf (Poly.to_string g);
  Buffer.add_char buf '|';
  (* env restricted to the variables the analysis can see, in sorted
     binding order so equal environments digest equally *)
  let vars = List.sort_uniq String.compare (Poly.vars f @ Poly.vars g) in
  List.iter
    (fun v ->
      match Interval.Env.find_opt v env with
      | Some iv ->
        Buffer.add_string buf v;
        Buffer.add_char buf '=';
        Buffer.add_string buf (Interval.to_string iv);
        Buffer.add_char buf ';'
      | None -> ())
    vars;
  Buffer.add_char buf '|';
  Option.iter (fun e -> Buffer.add_string buf (Pperf_num.Rat.to_string e)) eps;
  Buffer.add_char buf '|';
  Option.iter (fun d -> Buffer.add_string buf (string_of_int d)) depth;
  Buffer.add_char buf '|';
  (* rewrites are already applied to f/g; the oracle's influence is pinned
     by the rendered relations + domain *)
  Option.iter
    (fun r ->
      Buffer.add_string buf (Pperf_absint.Absint.domain_to_string r.rel_domain);
      List.iter
        (fun s ->
          Buffer.add_char buf ';';
          Buffer.add_string buf s)
        r.rel_show)
    rel;
  Digest.string (Buffer.contents buf)

let apply_rewrites rel p =
  match rel with
  | None -> p
  | Some r ->
    List.fold_left
      (fun p (x, q) ->
        if Poly.mem_var x p && Poly.min_degree_in x p >= 0 then Poly.subst x q p else p)
      p r.rel_rewrites

let decide ?eps ?depth ?rel env (cf : Perf_expr.t) (cg : Perf_expr.t) : decision =
  Pperf_obs.Obs.time sp_compare @@ fun () ->
  (* affine rewrites ([m = 2*n]) eliminate coupled variables exactly, which
     can collapse a multivariate difference to a decidable one *)
  let f = subst_points env (apply_rewrites rel (Perf_expr.total cf))
  and g = subst_points env (apply_rewrites rel (Perf_expr.total cg)) in
  let diff = Poly.sub f g in
  let env = widen_env env diff in
  let key = verdict_digest ?eps ?depth ~rel ~env f g in
  let tbl = Domain.DLS.get memo_key in
  let verdict =
    match Hashtbl.find_opt tbl key with
    | Some v -> Pperf_obs.Obs.incr c_memo_hits; v
    | None ->
      Pperf_obs.Obs.incr c_memo_misses;
      let oracle = Option.map (fun r -> r.rel_oracle) rel in
      let v = Signs.compare_over ?eps ?depth ?oracle env f g in
      if Hashtbl.length tbl >= memo_cap then Hashtbl.reset tbl;
      Hashtbl.add tbl key v;
      v
  in
  count_decided rel verdict;
  let recommended =
    match verdict with
    | Signs.Always_le -> First
    | Signs.Always_ge -> Second
    | Signs.Equal -> Either
    | Signs.Crossover regions -> (
      (* weigh by measure of the negative (first wins) vs positive part *)
      let measure sign =
        List.fold_left
          (fun acc (r : Signs.region) ->
            if r.sign = sign then
              match Interval.width r.range with
              | Some w -> Rat.add acc w
              | None -> Rat.add acc (Rat.of_int 1_000_000)
            else acc)
          Rat.zero regions
      in
      let neg = measure Signs.Neg and pos = measure Signs.Pos in
      match Rat.compare neg pos with
      | c when c > 0 -> First
      | 0 -> Either
      | _ -> Second)
    | Signs.Undecided _ -> (
      (* midpoint evaluation as the tie-breaker the compiler would use if
         forced to guess *)
      let v = Poly.eval (Interval.Env.midpoint_valuation env) diff in
      match Rat.sign v with
      | s when s < 0 -> First
      | 0 -> Either
      | _ -> Second)
  in
  { verdict; recommended; difference = diff }

let pp_choice fmt = function
  | First -> Format.pp_print_string fmt "first"
  | Second -> Format.pp_print_string fmt "second"
  | Either -> Format.pp_print_string fmt "either"

let pp_decision fmt d =
  Format.fprintf fmt "%a (recommend %a)" Signs.pp_verdict d.verdict pp_choice d.recommended
