(** Interprocedural prediction (§3.5).

    "If source code is available, the performance expressions of the
    external library routines can be computed and stored in an external
    library cost table. The performance expressions are parameterized with
    the formal parameters. Actual parameters are substituted at the call
    site."

    We predict a whole program by processing routines in reverse
    call-graph order: callees first, each registered in a shared library
    cost table under its formal parameters, so callers charge specialized
    costs at every call site. Recursive cycles fall back to the plain
    per-call overhead (with a warning flag in the result). *)

open Pperf_lang

type routine_prediction = {
  checked : Typecheck.checked;
  prediction : Aggregate.prediction;
  in_cycle : bool;  (** true when the routine is part of a recursion cycle *)
}

type t = {
  routines : routine_prediction list;  (** in processing (callee-first) order *)
  table : Libtable.t;
}

(* callees of a routine: call statements and non-intrinsic function calls *)
let callees (r : Ast.routine) =
  let acc = ref [] in
  let add f = if not (List.mem f !acc) then acc := f :: !acc in
  let rec expr (e : Ast.expr) =
    match e with
    | Ast.Call (f, args) ->
      if not (Intrinsics.is_intrinsic f) then add f;
      List.iter expr args
    | Ast.Index (_, subs) -> List.iter expr subs
    | Ast.Unop (_, a) -> expr a
    | Ast.Binop (_, a, b) ->
      expr a;
      expr b
    | _ -> ()
  in
  Ast.iter_stmts
    (fun s ->
      match s.Ast.kind with
      | Ast.Assign (lhs, e) ->
        List.iter expr lhs.subs;
        expr e
      | Ast.Call_stmt (f, args) ->
        add f;
        List.iter expr args
      | Ast.If (branches, _) -> List.iter (fun (c, _) -> expr c) branches
      | Ast.Do d ->
        expr d.lo;
        expr d.hi;
        Option.iter expr d.step
      | Ast.Return -> ())
    r.body;
  !acc

(* Tarjan-free topological order with cycle detection: repeatedly emit
   routines all of whose callees (within the program) are already emitted;
   whatever remains is cyclic. *)
let order (checkeds : Typecheck.checked list) =
  let names = List.map (fun (c : Typecheck.checked) -> c.routine.rname) checkeds in
  let remaining = ref checkeds in
  let emitted = ref [] in
  let emitted_names = ref [] in
  let progress = ref true in
  while !progress && !remaining <> [] do
    progress := false;
    let ready, blocked =
      List.partition
        (fun (c : Typecheck.checked) ->
          List.for_all
            (fun f -> (not (List.mem f names)) || List.mem f !emitted_names)
            (callees c.routine))
        !remaining
    in
    if ready <> [] then (
      progress := true;
      List.iter
        (fun (c : Typecheck.checked) ->
          emitted := (c, false) :: !emitted;
          emitted_names := c.routine.rname :: !emitted_names)
        ready;
      remaining := blocked)
  done;
  (* leftovers are cyclic: emit in given order, flagged *)
  List.rev !emitted @ List.map (fun c -> (c, true)) !remaining

let predict_program ?(options = Aggregate.default_options) ~machine
    (checkeds : Typecheck.checked list) : t =
  let table = Libtable.create () in
  let options = { options with library = Some table } in
  let routines =
    List.map
      (fun ((c : Typecheck.checked), in_cycle) ->
        let prediction = Aggregate.routine ~machine ~options c in
        Libtable.register table c.routine.rname ~formals:c.routine.params prediction.cost;
        { checked = c; prediction; in_cycle })
      (order checkeds)
  in
  { routines; table }

let of_source ?options ~machine src =
  predict_program ?options ~machine (Typecheck.check_program (Parser.parse_program src))

let find t name =
  List.find_opt
    (fun rp -> String.equal rp.checked.routine.rname name)
    t.routines

let main_cost t =
  match
    List.find_opt
      (fun rp -> rp.checked.routine.rkind = Ast.Main)
      t.routines
  with
  | Some rp -> Some rp.prediction.cost
  | None -> (
    (* fall back to the last routine in source order = last processed *)
    match List.rev t.routines with rp :: _ -> Some rp.prediction.cost | [] -> None)

let pp fmt t =
  List.iter
    (fun rp ->
      Format.fprintf fmt "%s%s: %a@." rp.checked.routine.rname
        (if rp.in_cycle then " (recursive: call-overhead only)" else "")
        Perf_expr.pp rp.prediction.cost)
    t.routines
