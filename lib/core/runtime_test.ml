(** Run-time test generation (§3.4).

    When symbolic comparison cannot decide between two program variants,
    the compiler can emit both, guarded by a run-time test. "Usually only a
    few run-time tests can be afforded"; sensitivity analysis picks the
    variables that perturb the performance expression most, and the test
    condition comes from the sign condition of [P = C(f) - C(g)]. *)

open Pperf_num
open Pperf_symbolic

type test = {
  condition : Poly.t;  (** choose the first variant iff [condition <= 0] *)
  test_vars : string list;  (** variables the test reads, most sensitive first *)
  cost_cycles : int;  (** estimated cycles to evaluate the test at run time *)
  source : string;  (** PF-ish source text of the guard *)
}

(* pessimistic per-operation cost of evaluating a polynomial at run time:
   one multiply-add per term per degree *)
let eval_cost p =
  List.fold_left
    (fun acc (_, m) ->
      acc + 2 + List.fold_left (fun a (_, k) -> a + abs k) 0 (Monomial.to_list m))
    2 (Poly.terms p)

let rec expr_of_poly p =
  (* render the polynomial as PF source *)
  let term_src (c, m) =
    let vars =
      List.concat_map
        (fun (v, k) -> List.init (abs k) (fun _ -> v))
        (Monomial.to_list m)
    in
    let prod = String.concat "*" vars in
    let cs = Rat.to_string (Rat.abs c) in
    if prod = "" then cs else if Rat.equal (Rat.abs c) Rat.one then prod else cs ^ "*" ^ prod
  in
  match Poly.terms p with
  | [] -> "0"
  | first :: rest ->
    let b = Buffer.create 64 in
    let c0, _ = first in
    if Rat.sign c0 < 0 then Buffer.add_string b "-";
    Buffer.add_string b (term_src first);
    List.iter
      (fun (c, m) ->
        Buffer.add_string b (if Rat.sign c < 0 then " - " else " + ");
        Buffer.add_string b (term_src (c, m)))
      rest;
    ignore expr_of_poly;
    Buffer.contents b

(** The guard condition as a PF expression (for emitting versioned code). *)
let ast_of_poly p =
  let open Pperf_lang in
  let term (c, m) =
    (* |c| * v1^k1 * ... as nested multiplications; rationals become
       float literals *)
    let cabs = Rat.abs c in
    let coeff_expr =
      if Rat.equal cabs Rat.one && not (Monomial.is_unit m) then None
      else if Rat.is_integer cabs then
        Some (Ast.Int (match Rat.to_int cabs with Some i -> i | None -> 0))
      else Some (Ast.Real (Rat.to_float cabs, Ast.Treal))
    in
    let vars =
      List.concat_map
        (fun (v, k) ->
          if k < 0 then [] (* negative powers don't appear in cost guards *)
          else List.init k (fun _ -> Ast.Var v))
        (Monomial.to_list m)
    in
    let factors = Option.to_list coeff_expr @ vars in
    match factors with
    | [] -> Ast.Int 1
    | f :: rest -> List.fold_left (fun acc x -> Ast.Binop (Ast.Mul, acc, x)) f rest
  in
  match Poly.terms p with
  | [] -> Ast.Int 0
  | first :: rest ->
    let c0, _ = first in
    let head = term first in
    let head = if Rat.sign c0 < 0 then Ast.Unop (Ast.Neg, head) else head in
    List.fold_left
      (fun acc ((c, _) as t) ->
        let op = if Rat.sign c < 0 then Ast.Sub else Ast.Add in
        Ast.Binop (op, acc, term t))
      head rest

let guard_expr t =
  (* choose the first variant iff condition <= 0 *)
  Pperf_lang.Ast.Binop (Pperf_lang.Ast.Le, ast_of_poly t.condition, Pperf_lang.Ast.Int 0)

(** Build the run-time test for an undecidable comparison: the paper's
    recipe is to simplify the condition by dropping negligible terms over
    the known ranges, then test the sign. *)
let of_difference ?(max_vars = 3) env (diff : Poly.t) : test =
  let simplified = Simplify.drop_negligible env diff in
  let ranked = Sensitivity.rank env simplified in
  let test_vars =
    List.filteri (fun i _ -> i < max_vars) ranked
    |> List.map (fun (r : Sensitivity.report) -> r.variable)
  in
  {
    condition = simplified;
    test_vars;
    cost_cycles = eval_cost simplified;
    source = Printf.sprintf "if (%s .le. 0) then" (expr_of_poly simplified);
  }

(** Is the test worth it? Compare its evaluation cost against the expected
    gain: the mean of |P| over the box (sampled), i.e. what a wrong static
    guess would cost on average. *)
let worthwhile ?(samples = 3) env (t : test) (diff : Poly.t) : bool =
  let vars = Poly.vars diff in
  let rec enum acc = function
    | [] -> [ acc ]
    | v :: rest ->
      Interval.sample (Interval.Env.find v env) samples
      |> List.concat_map (fun s -> enum ((v, s) :: acc) rest)
  in
  let points = enum [] vars in
  let total =
    List.fold_left
      (fun acc asg ->
        let value =
          Poly.eval
            (fun x ->
              match List.assoc_opt x asg with
              | Some v -> v
              | None ->
                invalid_arg
                  (Printf.sprintf "Runtime_test.worthwhile: unbound variable %s" x))
            diff
        in
        acc +. Float.abs (Rat.to_float value))
      0.0 points
  in
  let mean_gain = total /. float_of_int (max 1 (List.length points)) in
  mean_gain > float_of_int t.cost_cycles

let pp fmt t =
  Format.fprintf fmt "%s  ! tests %s; ~%d cycles" t.source
    (String.concat ", " t.test_vars)
    t.cost_cycles
