(** Procedure and library-routine cost interface (§3.5).

    "Table look-up of the performance expression can be used to find the
    cost of external function calls or library routines. ... The
    performance expressions are parameterized with the formal parameters.
    Actual parameters are substituted at the call site to get more specific
    performance expressions." *)

open Pperf_symbolic
open Pperf_lang

type entry = {
  formals : string list;  (** names the stored expression is written in *)
  cost : Perf_expr.t;
}

type t = (string, entry) Hashtbl.t

let create () : t = Hashtbl.create 16

let register t name ~formals cost = Hashtbl.replace t name { formals; cost }

let mem t name = Hashtbl.mem t name

(** Substitute actual arguments for formals; non-polynomial actuals leave
    the formal in place, renamed to [<callee>.<formal>] so it stays a
    distinct unknown. *)
let call_cost t name (actuals : Ast.expr list) : Perf_expr.t option =
  match Hashtbl.find_opt t name with
  | None -> None
  | Some entry ->
    let substitute poly =
      let n = List.length entry.formals in
      let pairs =
        List.mapi
          (fun i formal ->
            let replacement =
              if i < List.length actuals then
                match Sym_expr.to_poly (List.nth actuals i) with
                | Some p -> p
                | None -> Poly.var (name ^ "." ^ formal)
              else Poly.var (name ^ "." ^ formal)
            in
            (formal, replacement))
          entry.formals
      in
      ignore n;
      List.fold_left (fun acc (formal, repl) -> Poly.subst formal repl acc) poly pairs
    in
    Some (Perf_expr.map substitute entry.cost)

(** Build a table entry from a routine's own predicted cost, expressed in
    its formal parameters. *)
let of_prediction ~formals cost = { formals; cost }
