(** Human-readable prediction reports.

    Collects in one place what a compiler engineer (or the paper's reader)
    wants to see about a prediction: the performance expression by cost
    category, the unknowns and their assumed ranges, evaluations at sample
    points, the sensitivity ranking (§3.4), and per-loop-nest hot spots. *)

open Pperf_num
open Pperf_symbolic
open Pperf_lang
open Pperf_machine

type hotspot = {
  loops : string list;  (** enclosing loop variables, outermost first *)
  at : Srcloc.t;
  cycles_per_iteration : int;
}

type t = {
  routine : string;
  machine : string;
  cost : Perf_expr.t;
  prob_vars : string list;
  unknowns : (string * Interval.t) list;
  samples : (float * float) list;  (** (n, predicted cycles) with others at midpoints *)
  sensitivity : Sensitivity.report list;
  hotspots : hotspot list;
  bounds : Pperf_bounds.Bounds.nest list;
  diagnostics : Pperf_lint.Diagnostic.t list;
}

let hotspots ~machine ~options (checked : Typecheck.checked) =
  List.filter_map
    (fun (loops, body) ->
      match body with
      | [] -> None
      | first :: _ ->
        let loop_vars = List.map (fun (l : Analysis.loop_ctx) -> l.lvar) loops in
        let assigned = Analysis.assigned_vars checked.routine.body in
        let invariants =
          Analysis.SSet.diff
            (Analysis.SSet.union (Analysis.used_vars checked.routine.body) assigned)
            assigned
        in
        (match
           Pperf_translate.Translator.translate_block ~machine
             ~flags:options.Aggregate.flags ~symtab:checked.symbols ~loop_vars ~invariants
             body
         with
         | exception _ -> None
         | res ->
           (* include the loop-control overhead so the number matches the
              per-iteration coefficient of the aggregate expression *)
           let dag =
             Pperf_sched.Dag.concat res.body
               (Pperf_translate.Translator.loop_overhead_dag ~machine ())
           in
           let bins = Pperf_sched.Bins.create machine in
           let s1 = Pperf_sched.Bins.drop_dag bins dag in
           let s2 = Pperf_sched.Bins.drop_dag bins dag in
           Some
             {
               loops = loop_vars;
               at = first.Ast.loc;
               cycles_per_iteration = max 1 (s2.cost - s1.cost);
             }))
    (Analysis.innermost_bodies checked.routine.body)

let generate ?(options = Aggregate.default_options) ?(env = Interval.Env.empty) ~machine
    (checked : Typecheck.checked) : t =
  let prediction = Aggregate.routine ~machine ~options checked in
  let bound_summary =
    Pperf_bounds.Bounds.analyze ~machine ~include_memory:options.include_memory checked
  in
  let total = Perf_expr.total prediction.cost in
  let unknowns = List.map (fun v -> (v, Interval.Env.find v env)) (Poly.vars total) in
  let valuation n v =
    if List.mem v prediction.prob_vars then 0.5
    else if String.equal v "n" then n
    else Rat.to_float (Interval.Env.midpoint_valuation env v)
  in
  let samples =
    if Poly.mem_var "n" total then
      List.map (fun n -> (n, Poly.eval_float (valuation n) total)) [ 64.; 256.; 1024. ]
    else []
  in
  {
    routine = checked.routine.rname;
    machine = machine.Machine.name;
    cost = prediction.cost;
    prob_vars = prediction.prob_vars;
    unknowns;
    samples;
    sensitivity = Sensitivity.rank env total;
    hotspots =
      List.sort
        (fun a b -> compare b.cycles_per_iteration a.cycles_per_iteration)
        (hotspots ~machine ~options checked);
    bounds = bound_summary.nests;
    diagnostics =
      (* the aggregation's own events, merged with the bound-disagreement
         events and the static lint pass so the report names every source
         of conservatism (and optimism) once *)
      Pperf_lint.Lint.dedupe
        (prediction.diagnostics @ bound_summary.diagnostics
        @ Pperf_lint.Lint.precision (Pperf_lint.Lint.run_checked checked));
  }

let pp fmt (t : t) =
  Format.fprintf fmt "# Performance prediction: %s on %s@.@." t.routine t.machine;
  Format.fprintf fmt "expression: %a@." Perf_expr.pp t.cost;
  if t.unknowns <> [] then (
    Format.fprintf fmt "@.unknowns:@.";
    List.iter
      (fun (v, iv) ->
        Format.fprintf fmt "  %-12s in %s%s@." v (Interval.to_string iv)
          (if List.mem v t.prob_vars then "  (branch probability)" else ""))
      t.unknowns);
  if t.samples <> [] then (
    Format.fprintf fmt "@.evaluations (other unknowns at range midpoints):@.";
    List.iter (fun (n, c) -> Format.fprintf fmt "  n = %-6.0f -> %.0f cycles@." n c) t.samples);
  if t.sensitivity <> [] then (
    Format.fprintf fmt "@.sensitivity (most influential unknowns first):@.";
    List.iter (fun r -> Format.fprintf fmt "  %a@." Sensitivity.pp_report r) t.sensitivity);
  if t.hotspots <> [] then (
    Format.fprintf fmt "@.innermost loop bodies (steady-state cycles per iteration):@.";
    List.iter
      (fun h ->
        Format.fprintf fmt "  line %-4d loops [%s]: %d cycles/iter@." h.at.Srcloc.line
          (String.concat "," h.loops) h.cycles_per_iteration)
      t.hotspots);
  if t.bounds <> [] then (
    Format.fprintf fmt "@.bounds (bin-packing vs critical-path/LCD vs memory, max wins):@.";
    List.iter
      (fun (n : Pperf_bounds.Bounds.nest) ->
        Format.fprintf fmt "  line %-4d bin %d/iter, cp %d%s%s -> %s@." n.at.Srcloc.line
          n.bin_per_iter n.critical_path
          (if Pperf_num.Rat.is_zero n.lcd_per_iter then ""
           else Printf.sprintf ", lcd %s/iter" (Pperf_num.Rat.to_string n.lcd_per_iter))
          (match n.mem_bound with
           | Some m -> Printf.sprintf ", mem %s" (Poly.to_string m)
           | None -> "")
          (Pperf_bounds.Bounds.classification_string n.classification))
      t.bounds);
  if t.diagnostics <> [] then (
    Format.fprintf fmt "@.precision diagnostics (where the prediction is conservative):@.";
    List.iter
      (fun d -> Format.fprintf fmt "  %a@." Pperf_lint.Diagnostic.pp_short d)
      t.diagnostics)

let to_string t = Format.asprintf "%a" pp t
