(** Performance expressions: the framework's unified currency.

    "Different categories of program costs are unified into a single,
    comparable performance expression" (§4). A performance expression keeps
    the instruction, memory and communication components separate (so a
    transformation can update just its affected category — §3.3.1) but
    compares and prints as their sum, in cycles. Each component is a
    symbolic polynomial over program unknowns. *)

open Pperf_symbolic

type t = { cpu : Poly.t; mem : Poly.t; comm : Poly.t }

let zero = { cpu = Poly.zero; mem = Poly.zero; comm = Poly.zero }
let of_cpu cpu = { zero with cpu }
let of_mem mem = { zero with mem }
let of_comm comm = { zero with comm }
let of_cycles n = of_cpu (Poly.of_int n)

let total t = Poly.add t.cpu (Poly.add t.mem t.comm)

let add a b =
  { cpu = Poly.add a.cpu b.cpu; mem = Poly.add a.mem b.mem; comm = Poly.add a.comm b.comm }

let sub a b =
  { cpu = Poly.sub a.cpu b.cpu; mem = Poly.sub a.mem b.mem; comm = Poly.sub a.comm b.comm }

let scale p t = { cpu = Poly.mul p t.cpu; mem = Poly.mul p t.mem; comm = Poly.mul p t.comm }
let scale_rat r t = { cpu = Poly.scale r t.cpu; mem = Poly.scale r t.mem; comm = Poly.scale r t.comm }
let sum = List.fold_left add zero

let is_zero t = Poly.is_zero t.cpu && Poly.is_zero t.mem && Poly.is_zero t.comm
let equal a b = Poly.equal a.cpu b.cpu && Poly.equal a.mem b.mem && Poly.equal a.comm b.comm

let eval env t = Pperf_num.Rat.to_float (Poly.eval env (total t))

let map f t = { cpu = f t.cpu; mem = f t.mem; comm = f t.comm }

let pp fmt t =
  if Poly.is_zero t.mem && Poly.is_zero t.comm then Poly.pp fmt t.cpu
  else (
    Format.fprintf fmt "cpu: %a" Poly.pp t.cpu;
    if not (Poly.is_zero t.mem) then Format.fprintf fmt " | mem: %a" Poly.pp t.mem;
    if not (Poly.is_zero t.comm) then Format.fprintf fmt " | comm: %a" Poly.pp t.comm)

let to_string t = Format.asprintf "%a" pp t
