(** Interprocedural prediction (§3.5).

    Routines are processed callee-first along the call graph; each is
    registered in a shared {!Libtable} under its formal parameters, so
    callers charge specialized costs at every call site ("actual parameters
    are substituted at the call site to get more specific performance
    expressions"). Members of recursion cycles fall back to plain call
    overhead and are flagged. *)

open Pperf_lang
open Pperf_machine

type routine_prediction = {
  checked : Typecheck.checked;
  prediction : Aggregate.prediction;
  in_cycle : bool;
}

type t = {
  routines : routine_prediction list;  (** callee-first order *)
  table : Libtable.t;
}

val callees : Ast.routine -> string list
(** Direct callees: [call] statements plus non-intrinsic function calls. *)

val predict_program :
  ?options:Aggregate.options -> machine:Machine.t -> Typecheck.checked list -> t

val of_source : ?options:Aggregate.options -> machine:Machine.t -> string -> t

val find : t -> string -> routine_prediction option

val main_cost : t -> Perf_expr.t option
(** The [program] unit's cost, falling back to the last routine. *)

val pp : Format.formatter -> t -> unit
