(** Run-time test generation (§3.4).

    When symbolic comparison cannot decide between two variants, the
    compiler can emit both behind a guard. The guard comes from the sign
    condition of [P = C(f) − C(g)], simplified over the known ranges
    (§3.1's term dropping); sensitivity analysis names the variables the
    test should read; and a cost/benefit check decides whether the test
    pays for itself. *)

open Pperf_symbolic
open Pperf_lang

type test = {
  condition : Poly.t;  (** choose the first variant iff [condition <= 0] *)
  test_vars : string list;  (** most sensitive first *)
  cost_cycles : int;  (** estimated cycles to evaluate the guard *)
  source : string;  (** PF text of the guard, e.g. ["if (31*m - 5*n .le. 0) then"] *)
}

val of_difference : ?max_vars:int -> Interval.Env.t -> Poly.t -> test

val worthwhile : ?samples:int -> Interval.Env.t -> test -> Poly.t -> bool
(** Is the guard's evaluation cost below the mean |P| over the box — the
    expected price of a wrong static guess? *)

val ast_of_poly : Poly.t -> Ast.expr
(** Render a (non-Laurent) polynomial as a PF expression; round-trips
    through {!Pperf_lang.Sym_expr.to_poly}. *)

val guard_expr : test -> Ast.expr
(** The complete guard condition [condition <= 0] as a PF expression. *)

val pp : Format.formatter -> test -> unit
