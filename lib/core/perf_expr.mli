(** Performance expressions: the framework's unified currency.

    "Different categories of program costs are unified into a single,
    comparable performance expression" (§4). The instruction, memory and
    communication components stay separate — so a transformation can update
    just its affected category (§3.3.1) — but compare and print as their
    sum, in cycles. Each component is a symbolic polynomial over program
    unknowns. *)

open Pperf_symbolic

type t = {
  cpu : Poly.t;  (** instruction cycles (the Tetris model) *)
  mem : Poly.t;  (** cache/TLB cycles (§2.3) *)
  comm : Poly.t;  (** message-passing cycles *)
}

val zero : t
val of_cpu : Poly.t -> t
val of_mem : Poly.t -> t
val of_comm : Poly.t -> t
val of_cycles : int -> t

val total : t -> Poly.t
(** The single comparable expression: [cpu + mem + comm]. *)

val add : t -> t -> t
val sub : t -> t -> t

val scale : Poly.t -> t -> t
(** Multiply every category (e.g. by a symbolic trip count). *)

val scale_rat : Pperf_num.Rat.t -> t -> t
val sum : t list -> t
val is_zero : t -> bool
val equal : t -> t -> bool

val eval : (string -> Pperf_num.Rat.t) -> t -> float
(** Total cycles under a valuation of the unknowns. *)

val map : (Poly.t -> Poly.t) -> t -> t
(** Apply to each category (e.g. substitution at a call site). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
