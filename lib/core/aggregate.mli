(** Symbolic cost aggregation of compound statements (§2.4).

    Straight-line runs are costed by the Tetris model; loops multiply the
    per-iteration cost by a (possibly symbolic) trip count and add bound
    evaluation; conditionals combine branch costs with branching
    probabilities:

    {v
    C(do i = lb, ub, st {B}) = C(lb)+C(ub)+C(st) + trip * C(B) + hoisted(B)
    C(if c then Bt else Bf)  = C(c) + pt*C(Bt) + pf*C(Bf) + c_br
    v}

    Unknown loop bounds become polynomial variables named after the program
    variable; unknown branching probabilities become fresh [p1, p2, ...]
    variables in [0,1]. The §3.3.2 avoidance heuristics are applied:
    near-equal branches drop their probability variable; conditions on the
    enclosing loop index turn into iteration counts ([C = k*C(Bt) +
    (n-k)*C(Bf)], the paper's example) instead of probabilities.

    Loop-invariant (one-time) costs identified by the translator are
    charged per loop {e entry}, not per iteration. When
    [iteration_overlap] is on, the per-iteration cost of an innermost
    block is the {e steady-state} cost — the body is dropped into the bins
    twice and the increment is used, capturing software overlap between
    consecutive iterations (§2.4.2, Fig. 9). *)

open Pperf_symbolic
open Pperf_lang
open Pperf_machine
open Pperf_commcost
open Pperf_translate

type options = {
  flags : Flags.t;
  focus_span : int;
  include_memory : bool;  (** add the §2.3 cache model's cycles *)
  layouts : Commcost.layouts option;  (** when set, add communication cost *)
  branch_prob : Srcloc.t -> Poly.t option;
      (** profile-derived probabilities (§3.4); overrides the heuristics *)
  near_equal_tol : float;
      (** §3.3.2: treat branch costs within this relative tolerance as
          equal and skip the probability variable *)
  iteration_overlap : bool;
  library : Libtable.t option;
  infer_ranges : bool;
      (** run the interval abstract interpretation over the routine and use
          the inferred ranges: symbolic-trip precision events carry the
          inferred trip bounds, and closed-form trips not provably
          non-negative over the ranges are reported *)
  range_domain : Pperf_absint.Absint.domain;
      (** abstract domain for that analysis (default [Box]); relational
          domains sharpen the flow-sensitive facts the events consult *)
  bound_events : bool;
      (** run the three-bound analysis ({!Pperf_bounds.Bounds}) over every
          loop nest and add a [bound-disagreement] precision event where a
          critical-path/LCD or memory bound exceeds the bin-packing
          prediction (default off: it costs a dependence analysis per
          nest) *)
}

val default_options : options

type prediction = {
  cost : Perf_expr.t;
  prob_vars : string list;  (** fresh probability unknowns introduced *)
  diagnostics : Pperf_lint.Diagnostic.t list;
      (** [Precision] events recorded while aggregating: symbolic trip
          counts, invented branch probabilities, calls without a cost
          model — each one a place where the prediction went conservative *)
}

val is_straight : Ast.stmt -> bool
(** Is the statement straight-line at its own level (no loop, no branch)?
    Adjacent straight-line statements aggregate as one translated block, so
    callers that cost statement groups independently (see {!Incremental})
    must use maximal straight-line runs as their unit. *)

val stmts :
  machine:Machine.t ->
  ?options:options ->
  ?prob_offset:int ->
  symtab:Typecheck.symtab ->
  Ast.stmt list ->
  prediction
(** [prob_offset] (default 0) starts the fresh-probability-variable counter
    at [p{offset+1}], so a statement group costed on its own gets the same
    variable names it would get at position [offset] of a larger body. *)

val routine : machine:Machine.t -> ?options:options -> Typecheck.checked -> prediction

val block_cycles :
  machine:Machine.t -> ?options:options -> symtab:Typecheck.symtab -> Ast.stmt list -> int
(** Straight-line only: the Tetris-model cycle count of one execution
    (one-time costs included), for Fig. 7-style comparisons.
    @raise Translator.Not_straight_line on control flow. *)

val if_penalty :
  machine:Machine.t ->
  ?options:options ->
  symtab:Typecheck.symtab ->
  ?loop_vars:string list ->
  ?invariants:Analysis.SSet.t ->
  Pperf_sched.Dag.t ->
  Ast.stmt list ->
  int
(** The §2.2.2 shape-matched taken-branch penalty: how many of the
    machine's branch cycles remain uncovered after the branch body's
    leading block overlaps the condition's block. Shared with the
    interpreter so static and dynamic accounting agree. *)
