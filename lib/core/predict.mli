(** Top-level prediction entry points: source text in, performance
    expression out. *)

open Pperf_lang
open Pperf_machine

type t = {
  routine : Ast.routine;
  symbols : Typecheck.symtab;
  machine : Machine.t;
  prediction : Aggregate.prediction;
}

val of_checked : ?options:Aggregate.options -> machine:Machine.t -> Typecheck.checked -> t
val of_source : ?options:Aggregate.options -> machine:Machine.t -> string -> t
(** Parse, check and predict a single-routine source.
    @raise Parser.Error or Typecheck.Type_error on bad input. *)

val of_program : ?options:Aggregate.options -> machine:Machine.t -> string -> t list
(** Every routine of a multi-unit source, each predicted independently
    (see {!Interproc} for call-site charging). *)

val cost : t -> Perf_expr.t
val total : t -> Pperf_symbolic.Poly.t
val prob_vars : t -> string list

val precision_diagnostics : ?ranges:bool -> t -> Pperf_lint.Diagnostic.t list
(** Every place the prediction went conservative: aggregation events
    (symbolic trip counts, invented probabilities, default-cost calls)
    merged with the static lint pass's [Precision] findings. [ranges]
    (default false) hands the lint pass the interval abstract
    interpretation, matching a prediction made with
    [options.infer_ranges]. *)

val eval : t -> (string * float) list -> float
(** Total cycles at concrete unknowns; unbound probability variables
    default to 1/2, other unbound unknowns to 1. *)

val pp : Format.formatter -> t -> unit

val register_in_library : Libtable.t -> t -> unit
(** Make this routine's prediction available to its callers (§3.5). *)
