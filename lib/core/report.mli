(** Human-readable prediction reports: the expression by cost category, the
    unknowns and their assumed ranges, sample evaluations, the §3.4
    sensitivity ranking, and per-loop-nest hot spots (steady-state cycles
    per iteration, consistent with the aggregate expression's
    coefficients). *)

open Pperf_symbolic
open Pperf_lang
open Pperf_machine

type hotspot = {
  loops : string list;  (** enclosing loop variables, outermost first *)
  at : Srcloc.t;
  cycles_per_iteration : int;
}

type t = {
  routine : string;
  machine : string;
  cost : Perf_expr.t;
  prob_vars : string list;
  unknowns : (string * Interval.t) list;
  samples : (float * float) list;
  sensitivity : Sensitivity.report list;
  hotspots : hotspot list;  (** hottest first *)
  bounds : Pperf_bounds.Bounds.nest list;
      (** the three-bound summary per loop nest (bin-packing vs
          critical-path/LCD vs memory), in source order *)
  diagnostics : Pperf_lint.Diagnostic.t list;
      (** [Precision] diagnostics: aggregation events (symbolic trips,
          invented branch probabilities, default-cost calls) merged with
          the static lint pass, deduplicated by check and location *)
}

val generate :
  ?options:Aggregate.options ->
  ?env:Interval.Env.t ->
  machine:Machine.t ->
  Typecheck.checked ->
  t

val pp : Format.formatter -> t -> unit
val to_string : t -> string
