(** Top-level prediction entry points: source text in, performance
    expression out. *)

open Pperf_lang
open Pperf_machine

type t = {
  routine : Ast.routine;
  symbols : Typecheck.symtab;
  machine : Machine.t;
  prediction : Aggregate.prediction;
}

let of_checked ?(options = Aggregate.default_options) ~machine (checked : Typecheck.checked) =
  {
    routine = checked.routine;
    symbols = checked.symbols;
    machine;
    prediction = Aggregate.routine ~machine ~options checked;
  }

let of_source ?options ~machine src =
  let checked = Typecheck.check_routine (Parser.parse_routine src) in
  of_checked ?options ~machine checked

let of_program ?options ~machine src =
  Parser.parse_program src
  |> Typecheck.check_program
  |> List.map (of_checked ?options ~machine)

let cost t = t.prediction.cost
let total t = Perf_expr.total t.prediction.cost
let prob_vars t = t.prediction.prob_vars

(** Every place this prediction went conservative: the aggregation's own
    events plus the static lint pass, deduplicated. *)
let precision_diagnostics ?ranges t =
  let checked = { Typecheck.routine = t.routine; symbols = t.symbols } in
  Pperf_lint.Lint.dedupe
    (t.prediction.diagnostics
    @ Pperf_lint.Lint.precision (Pperf_lint.Lint.run_checked ?ranges checked))

(** Evaluate the prediction at concrete values of the unknowns; probability
    variables default to 1/2 when unbound. *)
let eval t (bindings : (string * float) list) =
  Pperf_symbolic.Poly.eval_float
    (fun v ->
      match List.assoc_opt v bindings with
      | Some f -> f
      | None -> if List.mem v t.prediction.prob_vars then 0.5 else 1.0)
    (total t)

let pp fmt t =
  Format.fprintf fmt "%s on %s: %a" t.routine.rname t.machine.Machine.name Perf_expr.pp
    t.prediction.cost

(** Register a routine's own prediction in a library cost table so its
    callers can charge it at call sites (§3.5). *)
let register_in_library lib t =
  Libtable.register lib t.routine.rname ~formals:t.routine.params t.prediction.cost
