(** Symbolic comparison of performance expressions (§3.1–3.2).

    Wraps {!Pperf_symbolic.Signs.compare_over} with performance-expression
    conveniences: compare two candidates over the variables' ranges and,
    when no side wins everywhere, recommend the one favoured on the larger
    share of the range — the systematic decision procedure the paper wants
    restructurers to use instead of guessing. Probability unknowns default
    to [0,1]; other unbound unknowns to non-negative ranges. *)

open Pperf_symbolic

type choice = First | Second | Either

type decision = {
  verdict : Signs.verdict;
  recommended : choice;
      (** for crossover/undecided verdicts: the candidate winning on the
          larger measure of the range (or at the midpoint) *)
  difference : Poly.t;  (** [total first - total second] *)
}

val inferred_env :
  ?base:Interval.Env.t -> Pperf_lang.Typecheck.checked list -> Interval.Env.t
(** Seed a comparison environment from the interval abstract interpretation
    of the routines being compared (union when several routines constrain
    the same variable); bindings in [base] override inferred ones. *)

val decide :
  ?eps:Pperf_num.Rat.t ->
  ?depth:int ->
  Interval.Env.t ->
  Perf_expr.t ->
  Perf_expr.t ->
  decision
(** Variables the environment pins to a point are substituted into both
    expressions before the sign analysis, so e.g. a known scalar loop bound
    turns a multivariate difference into a decidable univariate one. *)

val pp_choice : Format.formatter -> choice -> unit
val pp_decision : Format.formatter -> decision -> unit
