(** Symbolic comparison of performance expressions (§3.1–3.2).

    Wraps {!Pperf_symbolic.Signs.compare_over} with performance-expression
    conveniences: compare two candidates over the variables' ranges and,
    when no side wins everywhere, recommend the one favoured on the larger
    share of the range — the systematic decision procedure the paper wants
    restructurers to use instead of guessing. Probability unknowns default
    to [0,1]; other unbound unknowns to non-negative ranges. *)

open Pperf_symbolic

type choice = First | Second | Either

type decision = {
  verdict : Signs.verdict;
  recommended : choice;
      (** for crossover/undecided verdicts: the candidate winning on the
          larger measure of the range (or at the midpoint) *)
  difference : Poly.t;  (** [total first - total second] *)
}

type rel_facts = {
  rel_domain : Pperf_absint.Absint.domain;
  rel_rewrites : (string * Poly.t) list;
      (** exact affine substitutions, e.g. [m ↦ 2·n] *)
  rel_oracle : Poly.t -> Interval.t;
      (** sound enclosure of a polynomial from the relational summary *)
  rel_show : string list;  (** the relations, rendered for display *)
}

val inferred_env :
  ?base:Interval.Env.t -> Pperf_lang.Typecheck.checked list -> Interval.Env.t
(** Seed a comparison environment from the interval abstract interpretation
    of the routines being compared (union when several routines constrain
    the same variable); bindings in [base] override inferred ones. *)

val inferred_rel :
  ?base:Interval.Env.t ->
  ?domain:Pperf_absint.Absint.domain ->
  Pperf_lang.Typecheck.checked list ->
  Interval.Env.t * rel_facts option
(** {!inferred_env} generalized over the abstract domain: relational
    domains additionally return the joined whole-routine relations (facts
    must hold in {e every} routine to survive the join, so the oracle is
    sound for the comparison). [None] under the default [Box] domain. *)

val decide :
  ?eps:Pperf_num.Rat.t ->
  ?depth:int ->
  ?rel:rel_facts ->
  Interval.Env.t ->
  Perf_expr.t ->
  Perf_expr.t ->
  decision
(** Variables the environment pins to a point are substituted into both
    expressions before the sign analysis, so e.g. a known scalar loop bound
    turns a multivariate difference into a decidable univariate one.
    [rel] applies its affine rewrites to both expressions first and feeds
    its oracle to the sign analysis; decided verdicts bump a per-domain
    [compare.decided.<domain>] counter.

    Verdicts are memoized per worker domain behind a capped table keyed on
    a digest of the rewritten totals, the environment restricted to their
    variables, [eps]/[depth], and the relational facts; repeat comparisons
    skip the sign analysis entirely ([compare.memo.hits] /
    [compare.memo.misses] counters). *)

val pp_choice : Format.formatter -> choice -> unit
val pp_decision : Format.formatter -> decision -> unit
