(** Incremental update of predictions (§3.3.1).

    "Each transformation defines an affected region of performance based on
    the structure it changes"; everything outside keeps its cached estimate.
    Realized structurally: per-unit predictions (a unit is a maximal
    straight-line run or one compound statement, the granularity
    {!Aggregate.stmts} works at) are memoized under a full structural
    fingerprint (verified by equality on hits, so collisions can never
    return a stale prediction) plus the routine's symbol table (unit costs
    depend on variable types and array shapes, so a declarations-only edit
    re-predicts) and the probability-variable offset of the unit's
    position; re-predicting a transformed program recomputes exactly
    the units the transformation rebuilt, and the result — cost, [p{k}]
    names, precision diagnostics — is identical to a from-scratch
    {!Aggregate.routine} (asserted in tests).

    With [options.infer_ranges] set the interval analysis couples units
    through the whole body, so prediction falls back to from-scratch
    aggregation (no caching) rather than return subtly different ranges. *)

open Pperf_lang
open Pperf_machine

type t

val create : ?options:Aggregate.options -> Machine.t -> t

val predict_checked : t -> Typecheck.checked -> Aggregate.prediction
(** Same prediction as {!Aggregate.routine} (asserted in tests), reusing
    cached unit predictions. *)

val predict : t -> Typecheck.checked -> Perf_expr.t
(** [(predict_checked t c).cost]. *)

val stats : t -> int * int
(** [(hits, misses)] since creation or the last {!clear}. *)

val clear : t -> unit

val invalidate_routine : t -> Typecheck.checked -> unit
(** Drop every cached unit of this routine (by name). *)
