(** Incremental update of predictions (§3.3.1).

    "Each transformation defines an affected region of performance based on
    the structure it changes"; everything outside keeps its cached estimate.
    Realized structurally: per-subtree costs are memoized under a full
    structural fingerprint (verified by equality on hits, so collisions can
    never return a stale cost); re-predicting a transformed program
    recomputes exactly the subtrees the transformation rebuilt. *)

open Pperf_lang
open Pperf_machine

type t

val create : ?options:Aggregate.options -> Machine.t -> t

val predict : t -> Typecheck.checked -> Perf_expr.t
(** Same result as {!Aggregate.routine} (asserted in tests), reusing cached
    subtree costs. *)

val stats : t -> int * int
(** [(hits, misses)] since creation or the last {!clear}. *)

val clear : t -> unit
val invalidate_routine : t -> Typecheck.checked -> unit
(** Drop the cached entries for this routine's top-level statements. *)
