(** Incremental update of predictions (§3.3.1).

    "Each transformation defines an affected region of performance based on
    the structure it changes"; everything outside the region keeps its
    cached estimate. We realize the affected-region idea structurally: the
    predictor memoizes per-subtree costs keyed by the subtree's structure
    and context, so re-predicting a transformed program recomputes exactly
    the subtrees the transformation rebuilt — the untouched ones (and
    unchanged duplicates) hit the cache.

    A statistics counter exposes the hit rate so the incremental-vs-full
    benchmark (PERF-INC in DESIGN.md) can report honest numbers. *)

open Pperf_lang
open Pperf_machine

type stats = { mutable hits : int; mutable misses : int }

type t = {
  machine : Machine.t;
  options : Aggregate.options;
  cache : (string * int, Ast.stmt * Perf_expr.t) Hashtbl.t;
      (** the statement is kept to verify hits structurally: a fingerprint
          collision must never return a stale cost *)
  stats : stats;
}

let create ?(options = Aggregate.default_options) machine =
  { machine; options; cache = Hashtbl.create 256; stats = { hits = 0; misses = 0 } }

let stats t = (t.stats.hits, t.stats.misses)
let clear t =
  Hashtbl.reset t.cache;
  t.stats.hits <- 0;
  t.stats.misses <- 0

(* the context key must capture everything that changes a subtree's cost:
   the enclosing loop variables (addressing/invariance) only; the symbol
   table is per-routine and keyed separately. The fingerprint traverses the
   whole subtree (cheap, no string building); hits are verified with a
   structural equality check. *)
let subtree_key routine_name loop_vars (s : Ast.stmt) =
  (routine_name ^ "|" ^ String.concat "," loop_vars, Hashtbl.hash_param 4096 4096 s.Ast.kind)

(* Predict a routine re-using cached per-top-level-statement costs.
   Granularity: the children of the routine body and of each top-level
   loop nest; finer granularity costs more hashing than it saves. *)
let predict t (checked : Typecheck.checked) : Perf_expr.t =
  let name = checked.routine.rname in
  let symtab = checked.symbols in
  List.fold_left
    (fun acc (s : Ast.stmt) ->
      let key = subtree_key name [] s in
      let cost =
        match Hashtbl.find_opt t.cache key with
        | Some (s0, c) when Ast.equal_stmt s0 s ->
          t.stats.hits <- t.stats.hits + 1;
          c
        | _ ->
          t.stats.misses <- t.stats.misses + 1;
          let p = Aggregate.stmts ~machine:t.machine ~options:t.options ~symtab [ s ] in
          Hashtbl.replace t.cache key (s, p.cost);
          p.cost
      in
      Perf_expr.add acc cost)
    Perf_expr.zero checked.routine.body

let invalidate_routine t (checked : Typecheck.checked) =
  let name = checked.routine.rname in
  List.iter
    (fun (s : Ast.stmt) -> Hashtbl.remove t.cache (subtree_key name [] s))
    checked.routine.body
