(** Incremental update of predictions (§3.3.1).

    "Each transformation defines an affected region of performance based on
    the structure it changes"; everything outside the region keeps its
    cached estimate. We realize the affected-region idea structurally: the
    predictor memoizes per-unit predictions — a unit is a maximal
    straight-line run or a single loop/conditional, exactly the granularity
    {!Aggregate.stmts} aggregates at — keyed by the unit's structure and
    context (routine name, symbol table, probability offset), so
    re-predicting a transformed program recomputes exactly the
    units the transformation rebuilt; the untouched ones (and unchanged
    duplicates) hit the cache.

    Cached units reproduce the from-scratch prediction bit-for-bit: each
    unit is costed with the probability-variable counter pre-advanced to
    its position in the whole body ([Aggregate.stmts ~prob_offset]), so
    [p1, p2, ...] names agree with a whole-routine aggregation, and the
    offset is part of the cache key so an edit that inserts or removes a
    probability variable upstream re-predicts the downstream units whose
    names change.

    A statistics counter exposes the hit rate so the incremental-vs-full
    benchmark (PERF-INC in DESIGN.md) can report honest numbers. *)

open Pperf_lang
open Pperf_machine

type stats = { mutable hits : int; mutable misses : int }

(* the unit's statements and the routine's symbol bindings are kept to
   verify hits structurally: a fingerprint collision must never return a
   stale prediction *)
type entry = {
  syms : (string * Typecheck.sym) list;
  stmts : Ast.stmt list;
  pred : Aggregate.prediction;
}

type t = {
  machine : Machine.t;
  options : Aggregate.options;
  cache : (string * int, entry) Hashtbl.t;
  stats : stats;
}

let create ?(options = Aggregate.default_options) machine =
  { machine; options; cache = Hashtbl.create 256; stats = { hits = 0; misses = 0 } }

let stats t = (t.stats.hits, t.stats.misses)

let clear t =
  Hashtbl.reset t.cache;
  t.stats.hits <- 0;
  t.stats.misses <- 0

(* split a body into the units Aggregate.stmts aggregates independently:
   maximal straight-line runs and single compound statements *)
let units_of body =
  let rec go acc = function
    | [] -> List.rev acc
    | s :: _ as rest when Aggregate.is_straight s ->
      let rec take run = function
        | x :: r when Aggregate.is_straight x -> take (x :: run) r
        | r -> (List.rev run, r)
      in
      let run, rest' = take [] rest in
      go (run :: acc) rest'
    | s :: rest -> go ([ s ] :: acc) rest
  in
  go [] body

(* the context key must capture everything that changes a unit's
   prediction: the routine name, its symbol table (unit costs depend on
   variable types, array dimensions, and element sizes — a
   declarations-only edit must miss), and the probability-variable
   offset. The fingerprints traverse the structure (cheap, no string
   building); hits are verified with structural equality checks. *)
let unit_key routine_name symtab_fp prob_offset (unit : Ast.stmt list) =
  ( Printf.sprintf "%s|%d|%d" routine_name symtab_fp prob_offset,
    Hashtbl.hash_param 4096 4096 (List.map (fun (s : Ast.stmt) -> s.Ast.kind) unit) )

let unit_equal a b =
  List.length a = List.length b && List.for_all2 Ast.equal_stmt a b

let sym_equal (a : Typecheck.sym) (b : Typecheck.sym) =
  Ast.equal_dtype a.ty b.ty
  && a.is_param = b.is_param
  && a.element_bytes = b.element_bytes
  && List.length a.dims = List.length b.dims
  && List.for_all2 Ast.equal_array_dim a.dims b.dims

let syms_equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun (n1, s1) (n2, s2) -> String.equal n1 n2 && sym_equal s1 s2)
       a b

(* Predict a routine re-using cached per-unit predictions. With
   [infer_ranges] on, the interval analysis reads the whole body, so units
   are not independent and we fall back to a from-scratch aggregation. *)
let predict_checked t (checked : Typecheck.checked) : Aggregate.prediction =
  if t.options.Aggregate.infer_ranges then
    Aggregate.routine ~machine:t.machine ~options:t.options checked
  else (
    let name = checked.routine.rname in
    let symtab = checked.symbols in
    let syms = Typecheck.symbols_list symtab in
    let symtab_fp = Hashtbl.hash_param 4096 4096 syms in
    let cost, prob_vars, diags, _ =
      List.fold_left
        (fun (cost, vars, diags, prob_offset) unit ->
          let key = unit_key name symtab_fp prob_offset unit in
          let p =
            match Hashtbl.find_opt t.cache key with
            | Some e when unit_equal e.stmts unit && syms_equal e.syms syms ->
              t.stats.hits <- t.stats.hits + 1;
              e.pred
            | _ ->
              t.stats.misses <- t.stats.misses + 1;
              let p =
                Aggregate.stmts ~machine:t.machine ~options:t.options ~prob_offset ~symtab
                  unit
              in
              Hashtbl.replace t.cache key { syms; stmts = unit; pred = p };
              p
          in
          ( Perf_expr.add cost p.Aggregate.cost,
            vars @ p.prob_vars,
            diags @ p.diagnostics,
            prob_offset + List.length p.prob_vars ))
        (Perf_expr.zero, [], [], 0)
        (units_of checked.routine.body)
    in
    { Aggregate.cost; prob_vars; diagnostics = Pperf_lint.Lint.dedupe diags })

let predict t checked = (predict_checked t checked).Aggregate.cost

let invalidate_routine t (checked : Typecheck.checked) =
  let name = checked.routine.rname in
  let prefix = name ^ "|" in
  let stale =
    Hashtbl.fold
      (fun ((ctx, _) as key) _ acc ->
        if String.starts_with ~prefix ctx then key :: acc else acc)
      t.cache []
  in
  List.iter (Hashtbl.remove t.cache) stale
