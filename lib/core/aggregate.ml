open Pperf_num
open Pperf_symbolic
open Pperf_lang
open Pperf_machine
open Pperf_commcost
open Pperf_sched
open Pperf_translate
module SSet = Analysis.SSet

type options = {
  flags : Flags.t;
  focus_span : int;
  include_memory : bool;
  layouts : Commcost.layouts option;
  branch_prob : Srcloc.t -> Poly.t option;
  near_equal_tol : float;
  iteration_overlap : bool;
  library : Libtable.t option;
  infer_ranges : bool;
  range_domain : Pperf_absint.Absint.domain;
  bound_events : bool;
}

let default_options =
  {
    flags = Flags.default;
    focus_span = 64;
    include_memory = false;
    layouts = None;
    branch_prob = (fun _ -> None);
    near_equal_tol = 0.05;
    iteration_overlap = true;
    library = None;
    infer_ranges = false;
    range_domain = Pperf_absint.Absint.Box;
    bound_events = false;
  }

type prediction = {
  cost : Perf_expr.t;
  prob_vars : string list;
  diagnostics : Pperf_lint.Diagnostic.t list;
}

(* shared across the [{ ctx with ... }] copies made when entering loops *)
type prob_state = {
  mutable counter : int;
  mutable vars : string list;
  mutable diags : Pperf_lint.Diagnostic.t list;
}

(* one scratch Bins shared by all the [{ ctx with ... }] copies: every
   standalone drop resets it instead of re-allocating slot arrays *)
type scratch = { mutable bins : Bins.t option; mutable symbol_set : SSet.t option }

type ctx = {
  machine : Machine.t;
  options : options;
  symtab : Typecheck.symtab;
  loops : Analysis.loop_ctx list;
  invariants : SSet.t;
  probs : prob_state;
  ranges : Pperf_absint.Absint.result option;
  scratch : scratch;
}

let scratch_bins ctx =
  match ctx.scratch.bins with
  | Some bins ->
    Bins.reset bins;
    bins
  | None ->
    let bins = Bins.create ~focus_span:ctx.options.focus_span ctx.machine in
    ctx.scratch.bins <- Some bins;
    bins

let loop_vars ctx = List.map (fun (l : Analysis.loop_ctx) -> l.lvar) ctx.loops

let fresh_prob ctx =
  ctx.probs.counter <- ctx.probs.counter + 1;
  let v = Printf.sprintf "p%d" ctx.probs.counter in
  ctx.probs.vars <- v :: ctx.probs.vars;
  v

(* a place where the aggregation had to fall back on an unknown — the
   prediction is still correct but now carries a free variable or a
   default cost, which is exactly what a Precision diagnostic reports *)
let imprecise ctx ~check ~loc message =
  ctx.probs.diags <-
    Pperf_lint.Diagnostic.make Pperf_lint.Diagnostic.Precision ~check ~loc message
    :: ctx.probs.diags

(* a stacked-placement fallback inside a drop means the block's cost is a
   safe overestimate — exactly the kind of precision loss lint reports *)
let note_fallbacks ctx ~loc bins =
  let n = Bins.fallbacks bins in
  if n > 0 then
    imprecise ctx ~check:"fit-fallback" ~loc
      (Printf.sprintf
         "%d operation placement(s) did not converge and used conservative stacked \
          placement; the block cost is an overestimate"
         n)

(* drop a dag into fresh bins and return its standalone cost *)
let dag_cost ?(loc = Srcloc.dummy) ctx dag =
  if Dag.length dag = 0 then 0
  else (
    let bins = scratch_bins ctx in
    let cost = (Bins.drop_dag bins dag).cost in
    note_fallbacks ctx ~loc bins;
    cost)

(* steady-state per-iteration cost: drop the block (body + loop control)
   twice; the increment is what one more iteration costs once overlap with
   the previous iteration is accounted for *)
let per_iteration_cost ?(loc = Srcloc.dummy) ctx dag =
  if Dag.length dag = 0 then 0
  else (
    let bins = scratch_bins ctx in
    let s1 = Bins.drop_dag bins dag in
    let cost =
      if not ctx.options.iteration_overlap then s1.cost
      else (
        let s2 = Bins.drop_dag bins dag in
        max 1 (s2.cost - s1.cost))
    in
    note_fallbacks ctx ~loc bins;
    cost)

let trip_of ctx ~loc (d : Ast.do_loop) =
  let inferred =
    match ctx.ranges with
    | Some r ->
      List.find_opt
        (fun (l : Pperf_absint.Absint.loop_range) -> l.at = loc && l.lvar = d.var)
        (Pperf_absint.Absint.loops r)
    | None -> None
  in
  match Sym_expr.trip_count ~lo:d.lo ~hi:d.hi ~step:d.step with
  | Some p ->
    (match ctx.ranges with
    | Some r
      when (not (Poly.is_const p))
           && Interval.sign
                (Interval.eval_poly (Pperf_absint.Absint.summary r) p)
              = Interval.Mixed ->
      (* the closed form assumes a non-empty loop; report when the inferred
         ranges cannot confirm that *)
      imprecise ctx ~check:"symbolic-trip" ~loc
        (Printf.sprintf
           "trip count %s of the loop over '%s' is not provably non-negative over the \
            inferred ranges; the closed form assumes a non-empty loop"
           (Poly.to_string p) d.var)
    | _ -> ());
    p
  | None ->
    let v = "trip_" ^ d.var in
    let bound_note =
      match inferred with
      | Some l when not (Interval.is_full l.trip || Interval.equal l.trip Interval.nonneg) ->
        Printf.sprintf "; inferred %s in %s" v (Interval.to_string l.trip)
      | _ -> ""
    in
    imprecise ctx ~check:"symbolic-trip" ~loc
      (Printf.sprintf
         "trip count of the loop over '%s' has no closed form; prediction uses free variable '%s'%s"
         d.var v bound_note);
    Poly.var v

(* is this statement straight-line at this level? *)
let is_straight (s : Ast.stmt) =
  match s.kind with
  | Ast.Assign _ | Ast.Call_stmt _ | Ast.Return -> true
  | Ast.Do _ | Ast.If _ -> false

let library_extra ctx (run : Ast.stmt list) =
  let charge loc acc f args =
    let cost =
      match ctx.options.library with
      | None -> None
      | Some lib -> Libtable.call_cost lib f args
    in
    match cost with
    | Some c -> Perf_expr.add acc c
    | None ->
      imprecise ctx ~check:"unknown-call" ~loc
        (Printf.sprintf
           "no cost model for routine '%s'; the call is charged at the default call cost" f);
      acc
  in
  let charge_expr loc acc e =
    Ast.fold_expr
      (fun acc e ->
        match e with
        | Ast.Call (f, args) when not (Intrinsics.is_intrinsic f) -> charge loc acc f args
        | _ -> acc)
      acc e
  in
  List.fold_left
    (fun acc (s : Ast.stmt) ->
      match s.kind with
      | Ast.Call_stmt (f, args) ->
        List.fold_left (charge_expr s.loc) (charge s.loc acc f args) args
      | Ast.Assign (lhs, e) ->
        charge_expr s.loc (List.fold_left (charge_expr s.loc) acc lhs.subs) e
      | _ -> acc)
    Perf_expr.zero run

let translate_run ctx (run : Ast.stmt list) =
  Translator.translate_block ~machine:ctx.machine ~flags:ctx.options.flags
    ~symtab:ctx.symtab ~loop_vars:(loop_vars ctx) ~invariants:ctx.invariants run

(* probability that [cond] holds, as count-of-true iterations of the
   innermost loop when the condition tests the loop index (§3.3.2), or
   None when that heuristic does not apply *)
let index_cond_count (d : Ast.do_loop) cond =
  if d.step <> None && d.step <> Some (Ast.Int 1) then None
  else (
    let lo_p = Sym_expr.to_poly d.lo and hi_p = Sym_expr.to_poly d.hi in
    match (lo_p, hi_p) with
    | Some lo, Some hi -> (
      let trip = Poly.add (Poly.sub hi lo) Poly.one in
      let count op k_e flipped =
        match Sym_expr.to_poly k_e with
        | None -> None
        | Some k ->
          (* number of iterations lo..hi satisfying (i op k); assumes k in
             range, as the paper does for its example *)
          let c =
            match (op, flipped) with
            | Ast.Le, false | Ast.Ge, true -> Poly.add (Poly.sub k lo) Poly.one
            | Ast.Lt, false | Ast.Gt, true -> Poly.sub k lo
            | Ast.Ge, false | Ast.Le, true -> Poly.add (Poly.sub hi k) Poly.one
            | Ast.Gt, false | Ast.Lt, true -> Poly.sub hi k
            | Ast.Eq, _ -> Poly.one
            | Ast.Ne, _ -> Poly.sub trip Poly.one
            | _ -> Poly.zero
          in
          Some (c, trip)
      in
      match cond with
      | Ast.Binop ((Ast.Le | Ast.Lt | Ast.Ge | Ast.Gt | Ast.Eq | Ast.Ne) as op, Ast.Var i, k_e)
        when String.equal i d.var && not (SSet.mem d.var (Analysis.expr_reads k_e)) ->
        count op k_e false
      | Ast.Binop ((Ast.Le | Ast.Lt | Ast.Ge | Ast.Gt | Ast.Eq | Ast.Ne) as op, k_e, Ast.Var i)
        when String.equal i d.var && not (SSet.mem d.var (Analysis.expr_reads k_e)) ->
        count op k_e true
      | _ -> None)
    | _ -> None)

(* §2.2.2 branch optimization: "matching shapes of the cost blocks to
   decide whether the branching cost needs to be included". The taken-
   branch penalty is reduced by however much the branch body's leading
   straight-line block really overlaps the condition's block when both are
   dropped into the same bins. *)
let branch_penalty ctx (cond_body : Dag.t) (body : Ast.stmt list) =
  let c_br = ctx.machine.Machine.branch_taken_cycles in
  let rec leading acc = function
    | (s : Ast.stmt) :: rest when is_straight s -> leading (s :: acc) rest
    | _ -> List.rev acc
  in
  match leading [] body with
  | [] -> c_br
  | run -> (
    match translate_run ctx run with
    | exception _ -> c_br
    | res ->
      if Dag.length res.body = 0 || Dag.length cond_body = 0 then c_br
      else (
        let bins = scratch_bins ctx in
        let c_cond = (Bins.drop_dag bins cond_body).cost in
        let combined = (Bins.drop_dag bins res.body).cost in
        let alone =
          let b2 = Bins.create ~focus_span:ctx.options.focus_span ctx.machine in
          (Bins.drop_dag b2 res.body).cost
        in
        let overlap = max 0 (c_cond + alone - combined) in
        max 0 (c_br - overlap)))

let near_equal tol a b =
  match (Poly.to_const (Perf_expr.total a), Poly.to_const (Perf_expr.total b)) with
  | Some ca, Some cb ->
    let fa = Rat.to_float ca and fb = Rat.to_float cb in
    let m = Float.max (Float.abs fa) (Float.abs fb) in
    m = 0.0 || Float.abs (fa -. fb) <= tol *. m
  | _ -> Poly.equal (Perf_expr.total a) (Perf_expr.total b)

let rec agg_stmts ctx (stmts : Ast.stmt list) : Perf_expr.t =
  (* segment into straight-line runs and control statements *)
  let rec go acc = function
    | [] -> acc
    | s :: _ as rest when is_straight s ->
      let run, rest' = split_run rest in
      let res = translate_run ctx run in
      (* outside a loop there is no "per entry" distinction *)
      let c = dag_cost ~loc:s.Ast.loc ctx (Dag.concat res.one_time res.body) in
      let acc = Perf_expr.add acc (Perf_expr.of_cycles c) in
      go (Perf_expr.add acc (library_extra ctx run)) rest'
    | ({ Ast.kind = Ast.Do d; _ } as s) :: rest ->
      let acc = Perf_expr.add acc (agg_do ctx ~loc:s.loc d) in
      go acc rest
    | ({ Ast.kind = Ast.If _; _ } as s) :: rest ->
      let acc = Perf_expr.add acc (agg_if ctx s) in
      go acc rest
    | _ :: rest -> go acc rest
  and split_run stmts =
    let rec take acc = function
      | s :: rest when is_straight s -> take (s :: acc) rest
      | rest -> (List.rev acc, rest)
    in
    take [] stmts
  in
  go Perf_expr.zero stmts

and agg_if ctx (s : Ast.stmt) : Perf_expr.t =
  match s.kind with
  | Ast.If (branches, els) ->
    let cond_dags =
      List.map
        (fun (c, _) ->
          (Translator.translate_condition ~machine:ctx.machine ~flags:ctx.options.flags
             ~symtab:ctx.symtab ~loop_vars:(loop_vars ctx) ~invariants:ctx.invariants c)
            .body)
        branches
    in
    let cond_cost = List.fold_left (fun acc d -> acc + dag_cost ~loc:s.loc ctx d) 0 cond_dags in
    let first_cond = match cond_dags with d :: _ -> d | [] -> Dag.make [||] in
    let branch_costs =
      List.map2
        (fun d (_, body) ->
          Perf_expr.add (agg_stmts ctx body)
            (Perf_expr.of_cycles (branch_penalty ctx d body)))
        cond_dags branches
    in
    let else_cost =
      Perf_expr.add (agg_stmts ctx els)
        (Perf_expr.of_cycles (if els = [] then 0 else branch_penalty ctx first_cond els))
    in
    let combined =
      match branch_costs with
      | [ bt ] when near_equal ctx.options.near_equal_tol bt else_cost ->
        (* §3.3.2: near-equal branches need no probability *)
        Perf_expr.scale_rat Rat.half (Perf_expr.add bt else_cost)
      | _ ->
        (* fresh probability per branch, complement to the else *)
        let probs =
          List.map
            (fun (c, _) ->
              match ctx.options.branch_prob s.loc with
              | Some p -> p
              | None ->
                ignore c;
                let v = fresh_prob ctx in
                imprecise ctx ~check:"branch-prob" ~loc:s.loc
                  (Printf.sprintf
                     "branch probability is unknown; prediction uses free variable '%s' in [0,1]" v);
                Poly.var v)
            branches
        in
        let p_else =
          List.fold_left (fun acc p -> Poly.sub acc p) Poly.one probs
        in
        let weighted =
          List.map2 (fun p bc -> Perf_expr.scale p bc) probs branch_costs
        in
        Perf_expr.add (Perf_expr.sum weighted) (Perf_expr.scale p_else else_cost)
    in
    Perf_expr.add (Perf_expr.of_cycles cond_cost) combined
  | _ -> assert false

and agg_do ctx ~loc (d : Ast.do_loop) : Perf_expr.t =
  let trip = trip_of ctx ~loc d in
  (* bound evaluation, once per loop entry *)
  let bounds_res =
    Translator.translate_exprs ~machine:ctx.machine ~flags:ctx.options.flags
      ~symtab:ctx.symtab ~loop_vars:(loop_vars ctx) ~invariants:ctx.invariants
      (d.lo :: d.hi :: Option.to_list d.step)
  in
  let entry_cost = dag_cost ~loc ctx (Dag.concat bounds_res.one_time bounds_res.body) in
  (* context inside the loop *)
  let assigned = SSet.add d.var (Analysis.assigned_vars d.body) in
  let symbol_set =
    match ctx.scratch.symbol_set with
    | Some s -> s
    | None ->
      let s = SSet.of_list (List.map fst (Typecheck.symbols_list ctx.symtab)) in
      ctx.scratch.symbol_set <- Some s;
      s
  in
  let visible = SSet.union (Analysis.used_vars d.body) symbol_set in
  let invariants = SSet.diff visible assigned in
  let inner_ctx =
    { ctx with loops = ctx.loops @ [ Analysis.{ lvar = d.var; llo = d.lo; lhi = d.hi; lstep = d.step } ];
               invariants }
  in
  (* walk the body: straight-line runs fold the loop-control overhead into
     the per-iteration drop; index conditionals use iteration counts *)
  let overhead = Translator.loop_overhead_dag ~machine:ctx.machine () in
  let per_iter = ref Perf_expr.zero in
  let per_entry = ref (Perf_expr.of_cycles entry_cost) in
  let loop_total_extra = ref Perf_expr.zero in
  let overhead_charged = ref false in
  let rec walk = function
    | [] -> ()
    | s :: _ as rest when is_straight s ->
      let rec take acc = function
        | x :: r when is_straight x -> take (x :: acc) r
        | r -> (List.rev acc, r)
      in
      let run, rest' = take [] rest in
      let res = translate_run inner_ctx run in
      let dag =
        if not !overhead_charged then (
          overhead_charged := true;
          Dag.concat res.body overhead)
        else res.body
      in
      per_iter :=
        Perf_expr.add !per_iter
          (Perf_expr.of_cycles (per_iteration_cost ~loc:s.Ast.loc inner_ctx dag));
      per_iter := Perf_expr.add !per_iter (library_extra inner_ctx run);
      per_entry :=
        Perf_expr.add !per_entry
          (Perf_expr.of_cycles (dag_cost ~loc:s.Ast.loc inner_ctx res.one_time));
      walk rest'
    | ({ Ast.kind = Ast.Do inner; _ } as s) :: rest ->
      per_iter := Perf_expr.add !per_iter (agg_do inner_ctx ~loc:s.loc inner);
      walk rest
    | ({ Ast.kind = Ast.If ([ (cond, then_body) ], else_body); _ } as s) :: rest -> (
      match index_cond_count d cond with
      | Some (count_true, trip_if) when Poly.equal trip_if trip ->
        (* the paper's §3.3.2 pattern: charge iteration counts directly *)
        let ct = agg_stmts inner_ctx then_body in
        let cf = agg_stmts inner_ctx else_body in
        let cond_res =
          Translator.translate_condition ~machine:ctx.machine ~flags:ctx.options.flags
            ~symtab:ctx.symtab ~loop_vars:(loop_vars inner_ctx) ~invariants:inner_ctx.invariants cond
        in
        let pen_t = branch_penalty inner_ctx cond_res.body then_body in
        let pen_f =
          if else_body = [] then 0 else branch_penalty inner_ctx cond_res.body else_body
        in
        let cond_cycles = dag_cost ~loc:s.loc ctx cond_res.body in
        let ct = Perf_expr.add ct (Perf_expr.of_cycles pen_t) in
        let cf = Perf_expr.add cf (Perf_expr.of_cycles pen_f) in
        let count_false = Poly.sub trip count_true in
        (if ctx.options.near_equal_tol > 0.0 && near_equal ctx.options.near_equal_tol ct cf
         then
           (* if C(Bt) ~ C(Bf), C(L) simplifies to trip * C(Bf) (§3.3.2) *)
           loop_total_extra := Perf_expr.add !loop_total_extra (Perf_expr.scale trip cf)
         else
           loop_total_extra :=
             Perf_expr.add !loop_total_extra
               (Perf_expr.add (Perf_expr.scale count_true ct) (Perf_expr.scale count_false cf)));
        loop_total_extra :=
          Perf_expr.add !loop_total_extra (Perf_expr.scale trip (Perf_expr.of_cycles cond_cycles));
        walk rest
      | _ ->
        per_iter := Perf_expr.add !per_iter (agg_if inner_ctx s);
        walk rest)
    | ({ Ast.kind = Ast.If _; _ } as s) :: rest ->
      per_iter := Perf_expr.add !per_iter (agg_if inner_ctx s);
      walk rest
    | _ :: rest -> walk rest
  in
  walk d.body;
  (* if no straight-line run charged the loop control, charge it now *)
  if not !overhead_charged then
    per_iter :=
      Perf_expr.add !per_iter (Perf_expr.of_cycles (per_iteration_cost ~loc inner_ctx overhead));
  (* memory and communication are nest-global (§2.3): charge them when this
     is an outermost loop *)
  let mem_cost =
    if ctx.options.include_memory && ctx.loops = [] then (
      let nests =
        Analysis.innermost_bodies [ Ast.mk (Ast.Do d) ]
      in
      List.fold_left
        (fun acc (loops, body) ->
          Poly.add acc (Pperf_memcost.Memcost.nest_cost ~machine:ctx.machine ~symtab:ctx.symtab loops body))
        Poly.zero nests)
    else Poly.zero
  in
  let comm_cost =
    match ctx.options.layouts with
    | Some layouts when ctx.loops = [] ->
      (match ctx.machine.Machine.comm with
       | Some comm ->
         (* communication happens per phase: boundary exchanges of the whole
            nest are vectorized outside the innermost loops *)
         Commcost.nest_cost ~comm ~symtab:ctx.symtab ~layouts [] [ Ast.mk (Ast.Do d) ]
       | None -> Poly.zero)
    | _ -> Poly.zero
  in
  Perf_expr.add
    (Perf_expr.add
       (Perf_expr.add (Perf_expr.scale trip !per_iter) !per_entry)
       !loop_total_extra)
    (Perf_expr.add (Perf_expr.of_mem mem_cost) (Perf_expr.of_comm comm_cost))

let make_ctx ~machine ~options ~symtab ?ranges ?(prob_offset = 0) () =
  {
    machine;
    options;
    symtab;
    loops = [];
    invariants = SSet.empty;
    probs = { counter = prob_offset; vars = []; diags = [] };
    ranges;
    scratch = { bins = None; symbol_set = None };
  }

let infer_ranges_of ~options ~symtab body =
  if not options.infer_ranges then None
  else (
    let routine =
      { Ast.rname = "<block>"; rkind = Ast.Subroutine; params = []; decls = []; body }
    in
    Some
      (Pperf_absint.Absint.analyze ~domain:options.range_domain
         { Typecheck.routine; symbols = symtab }))

let sp_aggregate = Pperf_obs.Obs.span "aggregate"

let stmts ~machine ?(options = default_options) ?(prob_offset = 0) ~symtab body =
  Pperf_obs.Obs.time sp_aggregate @@ fun () ->
  let ranges = infer_ranges_of ~options ~symtab body in
  let ctx = make_ctx ~machine ~options ~symtab ?ranges ~prob_offset () in
  let cost = agg_stmts ctx body in
  (* opt-in (it costs a dependence analysis per nest): report where the
     critical-path/LCD or memory bound crosses above the bin-packing
     prediction, i.e. where this expression is provably optimistic *)
  let bound_diags =
    if options.bound_events then
      snd
        (Pperf_bounds.Bounds.analyze_stmts ~machine
           ~include_memory:options.include_memory ~symtab body)
    else []
  in
  {
    cost;
    prob_vars = List.rev ctx.probs.vars;
    diagnostics = Pperf_lint.Lint.dedupe (ctx.probs.diags @ bound_diags);
  }

let routine ~machine ?(options = default_options) (checked : Typecheck.checked) =
  stmts ~machine ~options ~symtab:checked.symbols checked.routine.body

let if_penalty ~machine ?(options = default_options) ~symtab ?(loop_vars = [])
    ?(invariants = SSet.empty) cond_dag body =
  let ctx = make_ctx ~machine ~options ~symtab () in
  let loops =
    List.map
      (fun v -> Analysis.{ lvar = v; llo = Ast.Int 1; lhi = Ast.Int 1; lstep = None })
      loop_vars
  in
  let ctx = { ctx with loops; invariants } in
  branch_penalty ctx cond_dag body

let block_cycles ~machine ?(options = default_options) ~symtab body =
  let ctx = make_ctx ~machine ~options ~symtab () in
  let res = translate_run ctx body in
  dag_cost ctx (Dag.concat res.one_time res.body)
