(** Communication cost model for distributed-memory targets.

    The paper routes "message passing instructions ... along with the
    sequential cost estimation to the communication cost module"; its model
    is the parameterized static predictor of Wang–Houstis [19]. We
    implement the standard alpha–beta formulation: a message of [b] bytes
    costs [alpha + beta*b] cycles, and collective patterns cost their
    textbook message counts. Costs are symbolic polynomials over the
    problem unknowns (e.g. [n]) and the processor count [p] — one more
    place where the framework delays guessing unknowns.

    Pattern recognition inspects HPF-like array layouts: for an assignment
    whose right-hand side reads a distributed array at an offset in the
    distributed dimension, a [Shift] boundary exchange is charged; reads
    with a non-aligned distributed index are [Gather]; reductions and
    broadcasts map to their collectives. *)

open Pperf_symbolic
open Pperf_lang
open Pperf_machine

type distribution = Block | Cyclic | Replicated | Collapsed
(** Per-dimension HPF distribution; [Collapsed] = not distributed. *)

type layout = { ldist : distribution list  (** one per array dimension *) }

type layouts = (string * layout) list

type pattern =
  | Shift of { offset : int; bytes_per_proc : Poly.t }
      (** nearest-neighbour boundary exchange *)
  | Broadcast of { bytes : Poly.t }
  | Reduce of { bytes : Poly.t }
  | Gather of { bytes_per_proc : Poly.t }  (** unstructured: all-to-all *)
  | Local  (** no communication *)

type event = { array : string; pattern : pattern; at : Srcloc.t }

(** {1 Cost primitives} *)

val message : Machine.comm_params -> bytes:Poly.t -> Poly.t
(** [alpha + beta * bytes], beta rounded to a rational. *)

val pattern_cost : Machine.comm_params -> pattern -> Poly.t
(** Cycles charged to the critical path:
    shift = 2 messages; broadcast/reduce = ceil(log2 p) messages of the
    payload; gather = (p-1) messages per processor. *)

(** {1 Recognition over a loop nest} *)

val analyze_nest :
  comm:Machine.comm_params ->
  symtab:Typecheck.symtab ->
  layouts:layouts ->
  Analysis.loop_ctx list ->
  Ast.stmt list ->
  event list

val nest_cost :
  comm:Machine.comm_params ->
  symtab:Typecheck.symtab ->
  layouts:layouts ->
  Analysis.loop_ctx list ->
  Ast.stmt list ->
  Poly.t

(** {1 Validation: a message-counting simulator} *)

module Sim : sig
  val count_messages :
    ?on_diag:(Pperf_lint.Diagnostic.t -> unit) ->
    comm:Machine.comm_params ->
    symtab:Typecheck.symtab ->
    layouts:layouts ->
    bounds:(string -> int) ->
    Analysis.loop_ctx list ->
    Ast.stmt list ->
    int * int
  (** [(messages, bytes)] actually exchanged when every non-local element
      read is fetched from its owner (owner-computes rule), with per-
      destination message aggregation per statement instance — the
      standard compilation model the static formulas approximate.

      A subscript or loop bound that does not evaluate to an integer is
      skipped rather than aborting the count; one [Precision] diagnostic
      per source location goes to [on_diag] (dropped by default). *)
end
