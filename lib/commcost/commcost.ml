open Pperf_num
open Pperf_symbolic
open Pperf_lang
open Pperf_machine

type distribution = Block | Cyclic | Replicated | Collapsed

type layout = { ldist : distribution list }

type layouts = (string * layout) list

type pattern =
  | Shift of { offset : int; bytes_per_proc : Poly.t }
  | Broadcast of { bytes : Poly.t }
  | Reduce of { bytes : Poly.t }
  | Gather of { bytes_per_proc : Poly.t }
  | Local

type event = { array : string; pattern : pattern; at : Srcloc.t }

let rat_of_float f = Rat.of_float_approx f

let message (c : Machine.comm_params) ~bytes =
  Poly.add (Poly.of_int c.startup_cycles) (Poly.scale (rat_of_float c.per_byte_cycles) bytes)

let ceil_log2 n =
  let rec go k acc = if acc >= n then k else go (k + 1) (acc * 2) in
  go 0 1

let pattern_cost (c : Machine.comm_params) = function
  | Local -> Poly.zero
  | Shift { bytes_per_proc; _ } ->
    (* send + receive one boundary message on the critical path *)
    Poly.scale_int 2 (message c ~bytes:bytes_per_proc)
  | Broadcast { bytes } | Reduce { bytes } ->
    Poly.scale_int (ceil_log2 (max 2 c.processors)) (message c ~bytes)
  | Gather { bytes_per_proc } ->
    Poly.scale_int (max 1 (c.processors - 1)) (message c ~bytes:bytes_per_proc)

(* which dimension of an array is distributed (first Block/Cyclic) *)
let distributed_dim (l : layout) =
  let rec go i = function
    | [] -> None
    | (Block | Cyclic) :: _ -> Some i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 l.ldist

let elem_bytes symtab name =
  match Typecheck.lookup symtab name with Some s -> s.Typecheck.element_bytes | None -> 4

(* bytes of one "surface" of the iteration space: the product of trip
   counts of the loops other than [skip_var], times the element size *)
let surface_bytes symtab loops skip_var name =
  let trips =
    List.filter_map
      (fun (l : Analysis.loop_ctx) ->
        if String.equal l.lvar skip_var then None
        else
          Some
            (match Sym_expr.trip_count ~lo:l.llo ~hi:l.lhi ~step:l.lstep with
             | Some p -> p
             | None -> Poly.var ("trip_" ^ l.lvar)))
      loops
  in
  Poly.scale_int (elem_bytes symtab name) (List.fold_left Poly.mul Poly.one trips)

(* classify one rhs read of a distributed array against the lhs write *)
let classify_read ~symtab ~layouts loops (lhs : Analysis.array_ref option)
    (r : Analysis.array_ref) : pattern =
  match List.assoc_opt r.array layouts with
  | None -> Local
  | Some lay -> (
    match distributed_dim lay with
    | None -> Local
    | Some d -> (
      match List.nth_opt r.subs d with
      | None -> Local
      | Some sub ->
        (* find the loop index used in the distributed dimension *)
        let loop_vars = List.map (fun (l : Analysis.loop_ctx) -> l.lvar) loops in
        (match Sym_expr.affine_in loop_vars sub with
         | None -> Gather { bytes_per_proc = surface_bytes symtab loops "" r.array }
         | Some (coeffs, rest) -> (
           let nz = List.combine loop_vars coeffs |> List.filter (fun (_, c) -> c <> 0) in
           match nz with
           | [] ->
             (* constant index in the distributed dim: everyone reads one
                owner's data -> broadcast of the surface *)
             Broadcast { bytes = surface_bytes symtab loops "" r.array }
           | [ (v, 1) ] -> (
             (* aligned walk: compare with the lhs distributed index *)
             let offset =
               match Poly.to_const rest with
               | Some c when Rat.is_integer c -> Rat.to_int c
               | _ -> None
             in
             let lhs_offset =
               match lhs with
               | None -> Some 0
               | Some l -> (
                 match List.assoc_opt l.array layouts with
                 | None -> Some 0
                 | Some llay -> (
                   match distributed_dim llay with
                   | None -> Some 0
                   | Some ld -> (
                     match List.nth_opt l.subs ld with
                     | None -> Some 0
                     | Some lsub -> (
                       match Sym_expr.affine_in loop_vars lsub with
                       | Some (lcoeffs, lrest)
                         when List.exists2
                                (fun lv lc -> String.equal lv v && lc = 1)
                                loop_vars lcoeffs -> (
                         match Poly.to_const lrest with
                         | Some c when Rat.is_integer c -> Rat.to_int c
                         | _ -> None)
                       | _ -> None))))
             in
             match (offset, lhs_offset) with
             | Some o, Some lo ->
               let delta = o - lo in
               if delta = 0 then Local
               else Shift { offset = delta; bytes_per_proc = Poly.scale_int (abs delta) (surface_bytes symtab loops v r.array) }
             | _ -> Gather { bytes_per_proc = surface_bytes symtab loops v r.array })
           | _ -> Gather { bytes_per_proc = surface_bytes symtab loops "" r.array }))))

let is_reduction_stmt (s : Ast.stmt) =
  match s.kind with
  | Ast.Assign ({ base; subs = [] }, Ast.Binop ((Ast.Add | Ast.Sub), Ast.Var x, _))
  | Ast.Assign ({ base; subs = [] }, Ast.Binop (Ast.Add, _, Ast.Var x)) ->
    String.equal base x
  | _ -> false

let analyze_nest ~comm ~symtab ~layouts loops stmts =
  ignore comm;
  let events = ref [] in
  let rec go loops (ss : Ast.stmt list) =
    List.iter
      (fun (s : Ast.stmt) ->
        match s.kind with
        | Ast.Assign (lhs, e) ->
          let lhs_ref =
            if lhs.subs = [] then None
            else
              Some
                { Analysis.array = lhs.base; subs = lhs.subs; is_write = true; loops; at = s.loc }
          in
          let reads =
            Analysis.array_refs [ Ast.mk ~loc:s.loc (Ast.Assign ({ lhs with subs = [] }, e)) ]
          in
          (* a scalar reduction over distributed data needs a global reduce *)
          if is_reduction_stmt s && reads <> [] then (
            let r = List.hd reads in
            if List.mem_assoc r.array layouts then
              events :=
                { array = r.array; pattern = Reduce { bytes = Poly.of_int (elem_bytes symtab lhs.base) }; at = s.loc }
                :: !events);
          List.iter
            (fun (r : Analysis.array_ref) ->
              match classify_read ~symtab ~layouts loops lhs_ref { r with loops } with
              | Local -> ()
              | p -> events := { array = r.array; pattern = p; at = s.loc } :: !events)
            reads
        | Ast.Do d -> go (loops @ [ Analysis.{ lvar = d.var; llo = d.lo; lhi = d.hi; lstep = d.step } ]) d.body
        | Ast.If (branches, els) ->
          List.iter (fun (_, b) -> go loops b) branches;
          go loops els
        | Ast.Call_stmt _ | Ast.Return -> ())
      ss
  in
  go loops stmts;
  List.rev !events

let nest_cost ~comm ~symtab ~layouts loops stmts =
  let events = analyze_nest ~comm ~symtab ~layouts loops stmts in
  List.fold_left (fun acc e -> Poly.add acc (pattern_cost comm e.pattern)) Poly.zero events

module Sim = struct
  (* owner-computes execution: iterate the (concrete) iteration space; the
     owner of the written element executes; each distinct (owner, remote
     element) pair read from another processor is a fetch; fetches are
     aggregated into one message per (src,dst) pair per outer-iteration
     "communication phase" (vectorized messages), matching what an HPF
     compiler generates for shift-style patterns. *)

  let owner_of ~layouts ~symtab ~bounds name idxs =
    match List.assoc_opt name layouts with
    | None -> 0
    | Some lay -> (
      match
        (match List.assoc_opt name layouts with Some l -> distributed_dim l | None -> None)
      with
      | None -> 0
      | Some d -> (
        ignore lay;
        let idx = List.nth idxs d in
        let extent =
          match Typecheck.lookup symtab name with
          | Some s -> (
            match List.nth_opt (Typecheck.array_extent s) d with
            | Some p -> (
              match Rat.to_int (Poly.eval (fun x -> Rat.of_int (bounds x)) p) with
              | Some v -> max 1 v
              | None -> 1024)
            | None -> 1024)
          | None -> 1024
        in
        let p = max 1 (bounds "p") in
        match List.nth (List.assoc name layouts).ldist d with
        | Block ->
          let chunk = max 1 ((extent + p - 1) / p) in
          min (p - 1) ((idx - 1) / chunk)
        | Cyclic -> (idx - 1) mod p
        | _ -> 0))

  exception Non_int of Ast.expr

  let count_messages ?(on_diag = fun (_ : Pperf_lint.Diagnostic.t) -> ()) ~comm ~symtab
      ~layouts ~bounds loops stmts =
    ignore comm;
    let messages = ref 0 and bytes = ref 0 in
    let rec eval_int env (e : Ast.expr) : int =
      match e with
      | Ast.Int i -> i
      | Ast.Var x -> env x
      | Ast.Unop (Ast.Neg, a) -> -eval_int env a
      | Ast.Binop (Ast.Add, a, b) -> eval_int env a + eval_int env b
      | Ast.Binop (Ast.Sub, a, b) -> eval_int env a - eval_int env b
      | Ast.Binop (Ast.Mul, a, b) -> eval_int env a * eval_int env b
      | Ast.Binop (Ast.Div, a, b) -> eval_int env a / eval_int env b
      | _ -> raise (Non_int e)
    in
    (* one report per offending source location, however many iterations *)
    let reported = Hashtbl.create 4 in
    let skip ~(loc : Srcloc.t) ~what e =
      if not (Hashtbl.mem reported (loc.line, loc.col, what)) then (
        Hashtbl.add reported (loc.line, loc.col, what) ();
        on_diag
          (Pperf_lint.Diagnostic.make Pperf_lint.Diagnostic.Precision
             ~check:"sim-non-integer" ~loc
             (Printf.sprintf
                "communication simulation skipped this %s: '%s' does not evaluate to \
                 an integer"
                what (Pp_ast.expr_to_string e))))
    in
    (* per outermost iteration, aggregate (src,dst,array) -> element set *)
    let phase : (int * int * string, (int list, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 64 in
    let flush_phase () =
      Hashtbl.iter
        (fun (_, _, name) elems ->
          let eb = elem_bytes symtab name in
          incr messages;
          bytes := !bytes + (Hashtbl.length elems * eb))
        phase;
      Hashtbl.reset phase
    in
    let record src dst name idxs =
      if src <> dst then (
        let key = (src, dst, name) in
        let set =
          match Hashtbl.find_opt phase key with
          | Some s -> s
          | None ->
            let s = Hashtbl.create 16 in
            Hashtbl.add phase key s;
            s
        in
        Hashtbl.replace set idxs ())
    in
    let rec exec ~depth env (ss : Ast.stmt list) =
      List.iter
        (fun (s : Ast.stmt) ->
          match s.kind with
          | Ast.Assign (lhs, e) -> (
            match
              if lhs.subs = [] then 0
              else owner_of ~layouts ~symtab ~bounds lhs.base (List.map (eval_int env) lhs.subs)
            with
            | exception Non_int ex -> skip ~loc:s.loc ~what:"assignment target" ex
            | owner ->
              let reads =
                Analysis.array_refs [ Ast.mk (Ast.Assign ({ lhs with subs = [] }, e)) ]
              in
              List.iter
                (fun (r : Analysis.array_ref) ->
                  if List.mem_assoc r.array layouts then (
                    try
                      let idxs = List.map (eval_int env) r.subs in
                      let src = owner_of ~layouts ~symtab ~bounds r.array idxs in
                      record src owner r.array idxs
                    with Non_int ex -> skip ~loc:r.at ~what:"array reference" ex))
                reads)
          | Ast.Do d -> (
            match
              ( eval_int env d.lo,
                eval_int env d.hi,
                match d.step with None -> 1 | Some e -> eval_int env e )
            with
            | lo, hi, step ->
              let i = ref lo in
              while (step > 0 && !i <= hi) || (step < 0 && !i >= hi) do
                let env' x = if String.equal x d.var then !i else env x in
                exec ~depth:(depth + 1) env' d.body;
                if depth = 0 then flush_phase ();
                i := !i + step
              done
            | exception Non_int ex -> skip ~loc:s.loc ~what:"loop bound" ex)
          | Ast.If (branches, els) ->
            (match branches with
             | (_, body) :: _ -> exec ~depth env body
             | [] -> exec ~depth env els)
          | Ast.Call_stmt _ | Ast.Return -> ())
        ss
    in
    let wrapped =
      List.fold_right
        (fun (l : Analysis.loop_ctx) inner ->
          [ Ast.mk (Ast.Do { var = l.lvar; lo = l.llo; hi = l.lhi; step = l.lstep; body = inner }) ])
        loops stmts
    in
    exec ~depth:0 bounds wrapped;
    flush_phase ();
    (!messages, !bytes)
end
