(* Run-length encoded time slots (paper Fig. 4).

   cells.(i) is meaningful only at run boundaries: for a run spanning
   [s, e) (length L = e - s), cells.(s) and cells.(e - 1) hold L for a
   filled run and -L for an empty run. Interior cells are stale. Runs
   cover [0, hwm); the topmost run (ending at hwm) is always filled, and
   everything at or above hwm is implicitly free. *)

type t = { mutable cells : int array; mutable hwm : int }

let create ?(capacity = 64) () = { cells = Array.make (max capacity 4) 0; hwm = 0 }

let reset t = t.hwm <- 0

let high_water t = t.hwm

let ensure_capacity t n =
  if n > Array.length t.cells then (
    let cap = ref (Array.length t.cells) in
    while !cap < n do
      cap := !cap * 2
    done;
    let cells = Array.make !cap 0 in
    Array.blit t.cells 0 cells 0 t.hwm;
    t.cells <- cells)

(* write run boundaries for [s, e), filled if v > 0 *)
let write_run t s e filled =
  let l = e - s in
  if l > 0 then (
    let v = if filled then l else -l in
    t.cells.(s) <- v;
    t.cells.(e - 1) <- v)

(* the run whose last cell is at [b - 1] (requires 0 < b <= hwm):
   returns (start, filled) *)
let run_ending_at t b =
  let v = t.cells.(b - 1) in
  if v > 0 then (b - v, true) else (b + v, false)

(* walk runs downward from hwm collecting those intersecting [floor, hwm),
   in bottom-to-top order *)
let runs_down_to t floor =
  let acc = ref [] in
  let b = ref t.hwm in
  while !b > floor && !b > 0 do
    let s, filled = run_ending_at t !b in
    acc := (s, !b, filled) :: !acc;
    b := s
  done;
  !acc

let first_fit t ~floor ~len =
  let floor = max floor 0 in
  if len <= 0 then floor
  else if floor >= t.hwm then floor
  else (
    (* walk runs top-down (no list); the last fitting free run seen is the
       lowest, which is what the bottom-up scan returned *)
    let best = ref t.hwm in
    let b = ref t.hwm in
    while !b > floor && !b > 0 do
      let s, filled = run_ending_at t !b in
      (if not filled then (
         let s' = max s floor in
         if !b - s' >= len then best := s'));
      b := s
    done;
    !best)

let is_free t ~start ~len =
  let start = max start 0 in
  if len <= 0 then true
  else if start >= t.hwm then true
  else (
    (* the run containing start must be free and contain the whole range;
       ranges crossing hwm are impossible since the top run is filled *)
    let rec find b =
      if b <= 0 then false
      else (
        let s, filled = run_ending_at t b in
        if start >= s then (not filled) && start + len <= b
        else find s)
    in
    find t.hwm)

let fill t ~start ~len =
  if len <= 0 then ()
  else (
    let start = if start < 0 then invalid_arg "Slots.fill: negative start" else start in
    let e = start + len in
    ensure_capacity t (max e (t.hwm + 1));
    if start >= t.hwm then (
      (* gap of implicit free space becomes an explicit empty run *)
      if start > t.hwm then write_run t t.hwm start false;
      (* merge with a filled run ending exactly at hwm *)
      let fs =
        if start = t.hwm && t.hwm > 0 then (
          let s, filled = run_ending_at t t.hwm in
          if filled then s else start)
        else start
      in
      write_run t fs e true;
      t.hwm <- e)
    else (
      (* locate the free run [s0, e0) containing [start, e) *)
      let rec find b =
        if b <= 0 then invalid_arg "Slots.fill: slot already filled"
        else (
          let s, filled = run_ending_at t b in
          if start >= s then (
            if filled || e > b then invalid_arg "Slots.fill: slot already filled";
            (s, b))
          else find s)
      in
      let s0, e0 = find t.hwm in
      (* left part stays free *)
      if start > s0 then write_run t s0 start false;
      (* merge new filled run with filled neighbours *)
      let fs =
        if start = s0 && s0 > 0 then fst (run_ending_at t s0)
        else start
      in
      let fe =
        if e = e0 then (
          (* right neighbour is filled (the run starting at e0) *)
          let l = t.cells.(e0) in
          e0 + l)
        else e
      in
      if e < e0 then write_run t e e0 false;
      write_run t fs fe true))

let runs t = runs_down_to t 0 |> List.map (fun (s, e, filled) -> (s, e - s, filled))

let num_runs t = List.length (runs t)

let first_occupied t =
  if t.hwm = 0 then None
  else (
    let lowest = ref (-1) in
    let b = ref t.hwm in
    while !b > 0 do
      let s, filled = run_ending_at t !b in
      if filled then lowest := s;
      b := s
    done;
    if !lowest < 0 then None else Some !lowest)

let last_occupied t = if t.hwm = 0 then None else Some (t.hwm - 1)

let occupied_cells t =
  let acc = ref 0 in
  let b = ref t.hwm in
  while !b > 0 do
    let s, filled = run_ending_at t !b in
    if filled then acc := !acc + (!b - s);
    b := s
  done;
  !acc

let pp fmt t =
  List.iter
    (fun (_, len, filled) ->
      for _ = 1 to len do
        Format.pp_print_char fmt (if filled then '#' else '.')
      done)
    (runs t)

module Naive = struct
  type t = { mutable occ : bool array; mutable hwm : int }

  let create ?(capacity = 64) () = { occ = Array.make (max capacity 4) false; hwm = 0 }

  let reset t =
    Array.fill t.occ 0 (Array.length t.occ) false;
    t.hwm <- 0

  let high_water t = t.hwm

  let ensure t n =
    if n > Array.length t.occ then (
      let cap = ref (Array.length t.occ) in
      while !cap < n do
        cap := !cap * 2
      done;
      let occ = Array.make !cap false in
      Array.blit t.occ 0 occ 0 t.hwm;
      t.occ <- occ)

  let is_free t ~start ~len =
    let start = max start 0 in
    let ok = ref true in
    for i = start to start + len - 1 do
      if i < t.hwm && t.occ.(i) then ok := false
    done;
    !ok

  let first_fit t ~floor ~len =
    let floor = max floor 0 in
    if len <= 0 then floor
    else (
      let pos = ref floor in
      while not (is_free t ~start:!pos ~len) do
        incr pos
      done;
      !pos)

  let fill t ~start ~len =
    if len > 0 then (
      if start < 0 then invalid_arg "Slots.Naive.fill: negative start";
      ensure t (start + len);
      for i = start to start + len - 1 do
        if t.occ.(i) then invalid_arg "Slots.Naive.fill: slot already filled";
        t.occ.(i) <- true
      done;
      t.hwm <- max t.hwm (start + len))

  let first_occupied t =
    let rec go i = if i >= t.hwm then None else if t.occ.(i) then Some i else go (i + 1) in
    go 0

  let last_occupied t =
    let rec go i = if i < 0 then None else if t.occ.(i) then Some i else go (i - 1) in
    go (t.hwm - 1)

  let occupied_cells t =
    let n = ref 0 in
    for i = 0 to t.hwm - 1 do
      if t.occ.(i) then incr n
    done;
    !n

  let runs t =
    let acc = ref [] in
    let i = ref 0 in
    while !i < t.hwm do
      let v = t.occ.(!i) in
      let j = ref !i in
      while !j < t.hwm && t.occ.(!j) = v do
        incr j
      done;
      acc := (!i, !j - !i, v) :: !acc;
      i := !j
    done;
    List.rev !acc
end
