(** Time-slot lists for one functional unit — the paper's Fig. 4 data
    structure.

    The slots of a unit are decomposed into alternating filled and empty
    blocks ("runs") encoded in a flat integer array: the first and last
    cell of each run store the run's length, negated for empty runs. This
    gives doubly-linked-list navigation (the adjacent run is one array
    access away) while keeping corresponding slots of different units
    aligned by index — "simultaneously searching for empty spaces in
    multiple bins can be done much more efficiently ... than regular array
    or list representations" (§2.1).

    Everything above the high-water mark (the top of the highest filled
    run) is implicitly one infinite empty run. *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] is just the initial array size; it grows on demand. *)

val reset : t -> unit
(** Flush the bin (the paper flushes bins before each new block). *)

val high_water : t -> int
(** Index one above the highest filled slot; 0 when empty. *)

val first_fit : t -> floor:int -> len:int -> int
(** Lowest [start >= floor] such that [len] consecutive slots starting at
    [start] are all free. [len = 0] returns [floor]. Walks runs downward
    from the high-water mark, so its cost is proportional to the number of
    runs between [floor] and the top — the focus-span argument of §2.1. *)

val is_free : t -> start:int -> len:int -> bool

val fill : t -> start:int -> len:int -> unit
(** Mark [len] slots starting at [start] as filled.
    @raise Invalid_argument if any of them is already filled. *)

val first_occupied : t -> int option
val last_occupied : t -> int option
val occupied_cells : t -> int

val runs : t -> (int * int * bool) list
(** [(start, len, filled)] from bottom to top, up to the high-water mark;
    adjacent runs alternate. Mainly for tests and debugging. *)

val num_runs : t -> int

val pp : Format.formatter -> t -> unit
(** One character per slot, bottom to top: [#] filled, [.] empty. *)

(** A reference implementation with a plain boolean array and linear scans:
    same observable behaviour, used by property tests (equivalence) and by
    the data-structure ablation benchmark. *)
module Naive : sig
  type t

  val create : ?capacity:int -> unit -> t
  val reset : t -> unit
  val high_water : t -> int
  val first_fit : t -> floor:int -> len:int -> int
  val is_free : t -> start:int -> len:int -> bool
  val fill : t -> start:int -> len:int -> unit
  val first_occupied : t -> int option
  val last_occupied : t -> int option
  val occupied_cells : t -> int
  val runs : t -> (int * int * bool) list
end
