open Pperf_machine

type t = {
  machine : Machine.t;
  slots : Slots.t array;
  focus_span : int;
  kind_candidates : int array array;  (** unit id -> ids of same-kind units *)
  mutable makespan : int;
  cover_tops : int array;
}

let create ?(focus_span = 64) machine =
  let n = Machine.num_units machine in
  let kind_candidates =
    Array.init n (fun u ->
        let kind = machine.Machine.units.(u).Funit.kind in
        let same =
          Array.to_list machine.Machine.units
          |> List.filter_map (fun (v : Funit.t) -> if v.kind = kind then Some v.id else None)
        in
        (* prefer the named unit itself, then its twins *)
        Array.of_list (u :: List.filter (fun v -> v <> u) same))
  in
  {
    machine;
    slots = Array.init n (fun _ -> Slots.create ());
    focus_span;
    kind_candidates;
    makespan = 0;
    cover_tops = Array.make n 0;
  }

let reset t =
  Array.iter Slots.reset t.slots;
  t.makespan <- 0;
  Array.fill t.cover_tops 0 (Array.length t.cover_tops) 0

let machine t = t.machine

type placement = {
  node : int;
  start : int;
  finish : int;
  filled : (int * int * int) list;
}

type schedule = { placements : placement array; cost : int; block : Costblock.t }

let global_hwm t =
  Array.fold_left (fun acc s -> max acc (Slots.high_water s)) 0 t.slots

(* find the lowest start >= floor where every component fits simultaneously;
   returns (start, chosen unit per component) *)
let coordinated_fit t ~floor (op : Atomic_op.t) =
  let rec attempt start guard =
    if guard > 100_000 then failwith "Bins: coordinated fit did not converge";
    let worst = ref start in
    let choices =
      List.map
        (fun (c : Atomic_op.component) ->
          if c.noncoverable = 0 then (c, c.unit_id, start)
          else (
            let best = ref max_int and best_u = ref c.unit_id in
            Array.iter
              (fun u ->
                let s = Slots.first_fit t.slots.(u) ~floor:start ~len:c.noncoverable in
                if s < !best then (
                  best := s;
                  best_u := u))
              t.kind_candidates.(c.unit_id);
            if !best > !worst then worst := !best;
            (c, !best_u, !best)))
        op.components
    in
    if !worst = start then (start, choices) else attempt !worst (guard + 1)
  in
  attempt floor 0

let drop_op_full t ~ready node (op : Atomic_op.t) =
  let floor = max ready (max 0 (global_hwm t - t.focus_span)) in
  let start, choices = coordinated_fit t ~floor op in
  let filled =
    List.map
      (fun ((c : Atomic_op.component), u, _) ->
        if c.noncoverable > 0 then Slots.fill t.slots.(u) ~start ~len:c.noncoverable;
        t.cover_tops.(u) <- max t.cover_tops.(u) (start + c.noncoverable + c.coverable);
        (u, start, c.noncoverable))
      choices
  in
  let finish = start + Atomic_op.result_latency op in
  t.makespan <- max t.makespan finish;
  { node; start; finish; filled }

let drop_op t ~ready op = (drop_op_full t ~ready (-1) op).start

let cost_block t =
  let per_unit =
    Array.mapi
      (fun u s ->
        {
          Costblock.first = Slots.first_occupied s;
          last = Slots.last_occupied s;
          occupied = Slots.occupied_cells s;
          cover_top = t.cover_tops.(u);
        })
      t.slots
  in
  let start =
    Array.fold_left
      (fun acc (p : Costblock.unit_profile) ->
        match p.first with Some f -> min acc f | None -> acc)
      max_int per_unit
  in
  let start = if start = max_int then 0 else start in
  { Costblock.start; finish = t.makespan; per_unit }

let current_cost t = Costblock.cost (cost_block t)

let drop_dag ?(start_at = 0) t (dag : Dag.t) =
  let n = Dag.length dag in
  let placements = Array.make n { node = 0; start = 0; finish = 0; filled = [] } in
  for i = 0 to n - 1 do
    let nd = Dag.node dag i in
    let ready =
      List.fold_left (fun acc d -> max acc placements.(d).finish) start_at nd.Dag.deps
    in
    placements.(i) <- drop_op_full t ~ready i nd.Dag.op
  done;
  let block = cost_block t in
  { placements; cost = Costblock.cost block; block }

let unit_slots t u = t.slots.(u)

let pp fmt t =
  let top = max (global_hwm t) t.makespan in
  Format.fprintf fmt "t   ";
  Array.iter (fun (u : Funit.t) -> Format.fprintf fmt "%-6s" u.name) t.machine.Machine.units;
  Format.pp_print_newline fmt ();
  for row = 0 to top - 1 do
    Format.fprintf fmt "%-4d" row;
    Array.iteri
      (fun u s ->
        let occupied = not (Slots.is_free s ~start:row ~len:1) in
        let covered = (not occupied) && row < t.cover_tops.(u) in
        Format.fprintf fmt "%-6s" (if occupied then "##" else if covered then "::" else "..")
      )
      t.slots;
    Format.pp_print_newline fmt ()
  done

module Opcount = struct
  let cost = Dag.serial_cost
  let busy_cost = Dag.busy_cost
end
