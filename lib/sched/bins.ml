open Pperf_machine
module Obs = Pperf_obs.Obs

let c_placements = Obs.counter "bins.placements"
let c_scan = Obs.counter "bins.scan_cells"
let c_fallback = Obs.counter "bins.fit_fallback"

type t = {
  machine : Machine.t;
  slots : Slots.t array;
  focus_span : int;
  kind_candidates : int array array;  (** unit id -> ids of same-kind units *)
  mutable makespan : int;
  cover_tops : int array;
  mutable slots_hwm : int;  (** cached max of the slots' high-water marks *)
  mutable fallbacks : int;  (** coordinated fits resolved by stacked placement *)
}

(* the candidate table depends only on the machine's unit mix; bins are
   created per dropped dag, so share it across all bins of one machine
   (keyed by physical identity — machines are built once and reused).
   Atomic so concurrent server domains publish entries safely; a lost
   CAS race only recomputes a pure table. *)
let kc_cache : (Machine.t * int array array) list Atomic.t = Atomic.make []

let kind_candidates_of machine =
  match List.find_opt (fun (m, _) -> m == machine) (Atomic.get kc_cache) with
  | Some (_, kc) -> kc
  | None ->
    let n = Machine.num_units machine in
    let kc =
      Array.init n (fun u ->
          let kind = (Machine.unit_at machine u).Funit.kind in
          let same =
            Machine.units_list machine
            |> List.filter_map (fun (v : Funit.t) -> if v.kind = kind then Some v.id else None)
          in
          (* prefer the named unit itself, then its twins *)
          Array.of_list (u :: List.filter (fun v -> v <> u) same))
    in
    let rec publish () =
      let old = Atomic.get kc_cache in
      if List.exists (fun (m, _) -> m == machine) old then ()
      else if
        Atomic.compare_and_set kc_cache old
          ((machine, kc) :: List.filteri (fun i _ -> i < 15) old)
      then ()
      else publish ()
    in
    publish ();
    kc

let create ?(focus_span = 64) machine =
  let n = Machine.num_units machine in
  {
    machine;
    slots = Array.init n (fun _ -> Slots.create ~capacity:16 ());
    focus_span;
    kind_candidates = kind_candidates_of machine;
    makespan = 0;
    cover_tops = Array.make n 0;
    slots_hwm = 0;
    fallbacks = 0;
  }

let reset t =
  Array.iter Slots.reset t.slots;
  t.makespan <- 0;
  t.slots_hwm <- 0;
  t.fallbacks <- 0;
  Array.fill t.cover_tops 0 (Array.length t.cover_tops) 0

let machine t = t.machine

type placement = {
  node : int;
  start : int;
  finish : int;
  filled : (int * int * int) list;
}

type schedule = { placements : placement array; cost : int; block : Costblock.t }

(* every fill goes through [drop_op_full], which maintains the cache *)
let global_hwm t = t.slots_hwm

(* a coordinated fit that keeps chasing a moving frontier has hit a
   pathological interleaving of free runs; instead of raising (which would
   kill the whole prediction) place the components stacked above everything
   already in the bins — conservative (it overlaps nothing, costing the sum
   of the unit spans) but always succeeds. Recorded as an [obs] counter and
   a per-bins count so predictions can surface a precision diagnostic. *)
let stacked_placement t ~floor (op : Atomic_op.t) =
  Obs.incr c_fallback;
  t.fallbacks <- t.fallbacks + 1;
  let base = Stdlib.max floor t.slots_hwm in
  let off = ref base in
  let choices =
    List.map
      (fun (c : Atomic_op.component) ->
        let s = !off in
        off := s + Stdlib.max 1 c.noncoverable;
        (c, c.unit_id, s))
      op.components
  in
  (base, choices)

(* find the lowest start >= floor where every component fits simultaneously;
   returns (start, chosen unit per component).

   Ports-model components carry their own eligible port set instead of
   deferring to the kind table, and two components of one op may share a
   primary port — [claimed] tracks ranges already chosen by earlier
   components of the same attempt so the later fill cannot collide (the
   classic path never consults it: components there occupy distinct units). *)
let coordinated_fit t ~floor (op : Atomic_op.t) =
  let rec attempt start guard =
    if guard > 1_000 then raise Exit;
    let worst = ref start in
    let claimed = ref [] in
    let fit_avoiding u ~floor ~len =
      let rec go floor =
        let s = Slots.first_fit t.slots.(u) ~floor ~len in
        let bump =
          List.fold_left
            (fun acc (cu, cs, cl) ->
              if cu = u && s < cs + cl && cs < s + len then Stdlib.max acc (cs + cl) else acc)
            (-1) !claimed
        in
        if bump < 0 then s else go bump
      in
      go floor
    in
    let choices =
      List.map
        (fun (c : Atomic_op.component) ->
          if Array.length c.eligible = 0 then
            if c.noncoverable = 0 then (c, c.unit_id, start)
            else (
              let best = ref max_int and best_u = ref c.unit_id in
              Array.iter
                (fun u ->
                  let s = Slots.first_fit t.slots.(u) ~floor:start ~len:c.noncoverable in
                  if s < !best then (
                    best := s;
                    best_u := u))
                t.kind_candidates.(c.unit_id);
              if !best > !worst then worst := !best;
              (c, !best_u, !best))
          else if c.noncoverable = 0 then (c, c.unit_id, start)
          else (
            let best = ref max_int and best_u = ref c.unit_id in
            Array.iter
              (fun u ->
                let s = fit_avoiding u ~floor:start ~len:c.noncoverable in
                if s < !best then (
                  best := s;
                  best_u := u))
              c.eligible;
            claimed := (!best_u, !best, c.noncoverable) :: !claimed;
            if !best > !worst then worst := !best;
            (c, !best_u, !best)))
        op.components
    in
    if !worst = start then (start, choices) else attempt !worst (guard + 1)
  in
  try attempt floor 0 with Exit -> stacked_placement t ~floor op

let drop_op_full t ~ready node (op : Atomic_op.t) =
  let floor = max ready (max 0 (global_hwm t - t.focus_span)) in
  Obs.incr c_placements;
  Obs.add c_scan (Stdlib.max 0 (global_hwm t - floor));
  let start, choices = coordinated_fit t ~floor op in
  (* each choice carries its own start; all equal after a converged
     coordinated fit, stacked after a fallback *)
  let filled =
    List.map
      (fun ((c : Atomic_op.component), u, s) ->
        if c.noncoverable > 0 then (
          Slots.fill t.slots.(u) ~start:s ~len:c.noncoverable;
          t.slots_hwm <- Stdlib.max t.slots_hwm (s + c.noncoverable));
        t.cover_tops.(u) <- max t.cover_tops.(u) (s + c.noncoverable + c.coverable);
        (u, s, c.noncoverable))
      choices
  in
  let top = List.fold_left (fun acc (_, s, _) -> Stdlib.max acc s) start filled in
  let finish = top + Atomic_op.result_latency op in
  t.makespan <- max t.makespan finish;
  { node; start; finish; filled }

let drop_op t ~ready op = (drop_op_full t ~ready (-1) op).start

let cost_block t =
  let per_unit =
    Array.mapi
      (fun u s ->
        {
          Costblock.first = Slots.first_occupied s;
          last = Slots.last_occupied s;
          occupied = Slots.occupied_cells s;
          cover_top = t.cover_tops.(u);
        })
      t.slots
  in
  let start =
    Array.fold_left
      (fun acc (p : Costblock.unit_profile) ->
        match p.first with Some f -> min acc f | None -> acc)
      max_int per_unit
  in
  let start = if start = max_int then 0 else start in
  { Costblock.start; finish = t.makespan; per_unit }

let current_cost t = Costblock.cost (cost_block t)

let sp_bins = Obs.span "sched.bins"

let drop_dag ?(start_at = 0) t (dag : Dag.t) =
  Obs.time sp_bins @@ fun () ->
  let n = Dag.length dag in
  let placements = Array.make n { node = 0; start = 0; finish = 0; filled = [] } in
  for i = 0 to n - 1 do
    let nd = Dag.node dag i in
    let ready =
      List.fold_left (fun acc d -> max acc placements.(d).finish) start_at nd.Dag.deps
    in
    placements.(i) <- drop_op_full t ~ready i nd.Dag.op
  done;
  let block = cost_block t in
  { placements; cost = Costblock.cost block; block }

let unit_slots t u = t.slots.(u)

let fallbacks t = t.fallbacks

let pp fmt t =
  let top = max (global_hwm t) t.makespan in
  Format.fprintf fmt "t   ";
  Machine.iter_units (fun (u : Funit.t) -> Format.fprintf fmt "%-6s" u.name) t.machine;
  Format.pp_print_newline fmt ();
  for row = 0 to top - 1 do
    Format.fprintf fmt "%-4d" row;
    Array.iteri
      (fun u s ->
        let occupied = not (Slots.is_free s ~start:row ~len:1) in
        let covered = (not occupied) && row < t.cover_tops.(u) in
        Format.fprintf fmt "%-6s" (if occupied then "##" else if covered then "::" else "..")
      )
      t.slots;
    Format.pp_print_newline fmt ()
  done

module Opcount = struct
  let cost = Dag.serial_cost
  let busy_cost = Dag.busy_cost
end
