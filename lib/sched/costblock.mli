(** Cost blocks: the shape of a scheduled basic block (§2.4.2, Fig. 8).

    "The first and last occupied time slots in functional units define the
    actual cost of a basic block and the area they enclose is called the
    cost block." The shape — per-unit lead-in, tail and occupancy — is what
    the model matches to estimate overlap between adjacent blocks (Fig. 9),
    decide whether unrolling or reordering helps, and approximate branch
    costs. *)

type unit_profile = {
  first : int option;  (** lowest noncoverable-occupied slot on this unit *)
  last : int option;  (** highest noncoverable-occupied slot *)
  occupied : int;  (** number of noncoverable-occupied slots *)
  cover_top : int;  (** top of the last (noncoverable+coverable) extent *)
}

type t = {
  start : int;  (** lowest occupied slot over all units *)
  finish : int;  (** makespan: max (issue + result latency) over all ops *)
  per_unit : unit_profile array;
}

val cost : t -> int
(** [finish - start]; 0 for an empty block. *)

val empty : int -> t

val occupancy_ratio : t -> int -> float
(** Occupied fraction of a unit's span within the block — the paper's
    critical-bin ratio used to judge whether reordering/unrolling can help. *)

val critical_unit : t -> int option
(** The unit with the most occupied slots. *)

val lead : t -> int -> int
(** Free slots on a unit between the block start and that unit's first
    occupied slot (the whole block height if the unit is untouched). *)

val trail : t -> int -> int
(** Free slots on a unit between its last occupied slot and the block
    finish. *)

val overlap_estimate : ?min_gap:int -> t -> t -> int
(** Fig. 9: how many cycles the second block can slide up into the first,
    estimated by matching the first block's tail profile against the second
    block's lead profile per unit, taking the minimum over units.
    [min_gap] (default 0) reserves cycles for inter-block dependences.
    Never exceeds either block's cost. *)

val combine_estimate : ?min_gap:int -> t -> t -> int
(** Estimated cost of executing the blocks back to back:
    [cost a + cost b - overlap_estimate a b]. *)

val unrolled_iteration_estimate : t -> int
(** Per-iteration cost of a loop whose body has this shape once software
    overlap between consecutive iterations is accounted for: [cost] minus
    the self-overlap of the shape with itself. Used for the quick
    unroll-benefit test; the precise alternative re-drops the body
    (§2.2.2's two methods). *)

val best_order : t list -> int list
(** §2.4.2: "the shapes of the cost blocks can be used to decide the order
    of statement blocks". Greedy chaining: start from the block whose tail
    leaves the most room, repeatedly append the block whose lead profile
    overlaps the current tail best. Returns indices into the input list. *)

val chain_cost_estimate : t list -> int
(** Estimated cost of executing blocks back-to-back in the given order:
    sum of costs minus pairwise shape overlaps. *)

val pp : Format.formatter -> t -> unit
