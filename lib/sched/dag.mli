(** Dependence DAGs of atomic operations for one basic block.

    Nodes are atomic operations in program order; edges are flow
    dependences (a consumer must wait for its producer's result latency).
    The cost model "assumes that operations can be reordered based on
    mathematical rules and dependence relations" (§2.1), so only true
    dependences constrain placement. *)

open Pperf_machine

type node = {
  index : int;
  op : Atomic_op.t;
  deps : int list;  (** indices of producers this node consumes *)
  label : string;  (** human-readable provenance, e.g. ["load b(i,j)"] *)
}

type t = private { nodes : node array }

val make : (Atomic_op.t * int list * string) array -> t
(** @raise Invalid_argument on a forward or self dependence. *)

val of_ops : (Atomic_op.t * int list) list -> t
(** Convenience wrapper with empty labels. *)

val length : t -> int
val node : t -> int -> node

val critical_path : t -> int
(** Longest chain of result latencies — a lower bound on any schedule's
    makespan. *)

val serial_cost : t -> int
(** Sum of serial cycles: what a machine with no overlap at all pays — an
    upper bound on any schedule's makespan on one-op-at-a-time semantics. *)

val busy_cost : t -> int
(** Sum of noncoverable cycles over all nodes (pure operation count). *)

val map_ops : (Atomic_op.t -> Atomic_op.t) -> t -> t

val concat : t -> t -> t
(** Sequential composition: the second block's dependence indices are
    shifted; no cross-block dependences are added (callers add them
    explicitly if values flow between the blocks). *)

val repeat : ?carry:(int * int) list -> t -> int -> t
(** [repeat body k] unrolls [body] [k] times. [carry] lists
    (producer-in-previous-iteration, consumer-in-next-iteration) pairs —
    loop-carried flow dependences. *)

val pp : Format.formatter -> t -> unit
