open Pperf_machine

type node = { index : int; op : Atomic_op.t; deps : int list; label : string }

type t = { nodes : node array }

let make arr =
  let nodes =
    Array.mapi
      (fun index (op, deps, label) ->
        List.iter
          (fun d ->
            if d >= index then invalid_arg "Dag.make: forward or self dependence";
            if d < 0 then invalid_arg "Dag.make: negative dependence")
          deps;
        { index; op; deps; label })
      arr
  in
  { nodes }

let of_ops ops = make (Array.of_list (List.map (fun (op, deps) -> (op, deps, "")) ops))

let length t = Array.length t.nodes
let node t i = t.nodes.(i)

let critical_path t =
  let n = Array.length t.nodes in
  let finish = Array.make n 0 in
  let cp = ref 0 in
  for i = 0 to n - 1 do
    let node = t.nodes.(i) in
    let ready = List.fold_left (fun acc d -> max acc finish.(d)) 0 node.deps in
    finish.(i) <- ready + Atomic_op.result_latency node.op;
    cp := max !cp finish.(i)
  done;
  !cp

let serial_cost t =
  Array.fold_left (fun acc n -> acc + Atomic_op.serial_cycles n.op) 0 t.nodes

let busy_cost t = Array.fold_left (fun acc n -> acc + Atomic_op.busy_cycles n.op) 0 t.nodes

let map_ops f t =
  { nodes = Array.map (fun n -> { n with op = f n.op }) t.nodes }

let concat a b =
  let na = Array.length a.nodes in
  let shifted =
    Array.map
      (fun n -> { n with index = n.index + na; deps = List.map (fun d -> d + na) n.deps })
      b.nodes
  in
  { nodes = Array.append a.nodes shifted }

let repeat ?(carry = []) body k =
  if k <= 0 then invalid_arg "Dag.repeat: k must be positive";
  let nb = Array.length body.nodes in
  let parts =
    List.init k (fun iter ->
        Array.map
          (fun n ->
            let deps = List.map (fun d -> d + (iter * nb)) n.deps in
            let deps =
              if iter = 0 then deps
              else
                deps
                @ List.filter_map
                    (fun (prod, cons) ->
                      if cons = n.index then Some (prod + ((iter - 1) * nb)) else None)
                    carry
            in
            { n with index = n.index + (iter * nb); deps })
          body.nodes)
  in
  { nodes = Array.concat parts }

let pp fmt t =
  Array.iter
    (fun n ->
      Format.fprintf fmt "%3d: %a%s deps:[%a]@." n.index Atomic_op.pp n.op
        (if n.label = "" then "" else " ; " ^ n.label)
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ",")
           Format.pp_print_int)
        n.deps)
    t.nodes
