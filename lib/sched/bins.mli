(** The virtual architecture bins and the drop algorithm (§2.1, Fig. 3/5).

    Estimating a basic block's cost "can be viewed as finding a way to drop
    all operation objects into the virtual architecture bin with the goal
    of minimizing the unfilled slots" — the paper's Tetris analogy. The
    approximate solution implemented here places each operation's cost
    object at the lowest time slots where {e all} its components fit
    simultaneously, at or after the operation's dependence-ready time.

    The {e focus span} bounds how far below the high-water mark the search
    looks, trading accuracy for speed (§2.1); with the run-encoded
    {!Slots} lists this makes each drop effectively constant-time and the
    whole block linear in the number of operations.

    On machines with replicated units, a component may be placed on any
    unit of the same kind as the one named by the cost table. *)

open Pperf_machine

type t

val create : ?focus_span:int -> Machine.t -> t
(** [focus_span] defaults to 64 slots. *)

val reset : t -> unit
val machine : t -> Machine.t

type placement = {
  node : int;
  start : int;  (** issue slot *)
  finish : int;  (** start + result latency: when consumers may start *)
  filled : (int * int * int) list;  (** (unit, start, noncoverable len) *)
}

type schedule = {
  placements : placement array;
  cost : int;
      (** highest minus lowest occupied slot, coverable tail of the last
          operation included — what the block costs if executed alone *)
  block : Costblock.t;
}

val drop_dag : ?start_at:int -> t -> Dag.t -> schedule
(** Drop all operations of the block, in program order, honoring
    dependences. [start_at] offsets the whole block (used when chaining
    blocks into the same bins). The bins are {e not} reset first. *)

val drop_op : t -> ready:int -> Atomic_op.t -> int
(** Low-level: place one operation, returning its issue slot. *)

val cost_block : t -> Costblock.t
(** Shape of everything currently in the bins. *)

val current_cost : t -> int

val unit_slots : t -> int -> Slots.t
(** Read-only access for tests and visualization. *)

val fallbacks : t -> int
(** Number of placements since the last {!reset} that a non-converging
    coordinated fit resolved by conservative stacked placement (the
    components laid end to end above everything already placed) instead of
    raising. Nonzero means the cost is a safe overestimate for those
    operations; callers surface it as a precision diagnostic. *)

val pp : Format.formatter -> t -> unit
(** Vertical diagram of the bins, one column per unit (Fig. 3 style). *)

(** {1 Baselines} *)

module Opcount : sig
  val cost : Dag.t -> int
  (** The conventional operation-count model the paper criticizes: every
      operation pays its full serial latency; no overlap, no units. *)

  val busy_cost : Dag.t -> int
  (** Even more naive: noncoverable cycles only. *)
end
