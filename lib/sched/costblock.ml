type unit_profile = {
  first : int option;
  last : int option;
  occupied : int;
  cover_top : int;
}

type t = { start : int; finish : int; per_unit : unit_profile array }

let cost t = max 0 (t.finish - t.start)

let empty num_units =
  {
    start = 0;
    finish = 0;
    per_unit = Array.make num_units { first = None; last = None; occupied = 0; cover_top = 0 };
  }

let occupancy_ratio t u =
  let p = t.per_unit.(u) in
  let span = cost t in
  if span = 0 then 0.0 else float_of_int p.occupied /. float_of_int span

let critical_unit t =
  let best = ref None in
  Array.iteri
    (fun u p ->
      match !best with
      | Some (_, occ) when occ >= p.occupied -> ()
      | _ -> if p.occupied > 0 then best := Some (u, p.occupied))
    t.per_unit;
  Option.map fst !best

let lead t u =
  match t.per_unit.(u).first with
  | None -> cost t
  | Some f -> max 0 (f - t.start)

let trail t u =
  match t.per_unit.(u).last with
  | None -> cost t
  | Some l -> max 0 (t.finish - (l + 1))

let overlap_estimate ?(min_gap = 0) a b =
  let ca = cost a and cb = cost b in
  if ca = 0 || cb = 0 then 0
  else (
    let n = min (Array.length a.per_unit) (Array.length b.per_unit) in
    let slide = ref max_int in
    for u = 0 to n - 1 do
      let room =
        if a.per_unit.(u).occupied = 0 && b.per_unit.(u).occupied = 0 then max_int
        else trail a u + lead b u
      in
      slide := min !slide room
    done;
    let s = if !slide = max_int then min ca cb else !slide in
    let s = s - min_gap in
    max 0 (min s (min ca cb)))

let combine_estimate ?min_gap a b = cost a + cost b - overlap_estimate ?min_gap a b

let unrolled_iteration_estimate t = cost t - overlap_estimate t t

let chain_cost_estimate = function
  | [] -> 0
  | first :: rest ->
    let total, _ =
      List.fold_left
        (fun (acc, prev) b -> (acc + cost b - overlap_estimate prev b, b))
        (cost first, first) rest
    in
    total

let best_order blocks =
  match blocks with
  | [] -> []
  | _ ->
    let arr = Array.of_list blocks in
    let n = Array.length arr in
    let used = Array.make n false in
    (* start from the block with the largest self-trailing slack *)
    let start = ref 0 in
    let best_slack = ref min_int in
    Array.iteri
      (fun i b ->
        let slack =
          Array.to_list (Array.init (Array.length b.per_unit) (fun u -> trail b u))
          |> List.fold_left max 0
        in
        if slack > !best_slack then (
          best_slack := slack;
          start := i))
      arr;
    used.(!start) <- true;
    let order = ref [ !start ] in
    let current = ref arr.(!start) in
    for _ = 2 to n do
      let best = ref (-1) and best_ov = ref min_int in
      Array.iteri
        (fun i b ->
          if not used.(i) then (
            let ov = overlap_estimate !current b in
            if ov > !best_ov then (
              best_ov := ov;
              best := i)))
        arr;
      used.(!best) <- true;
      order := !best :: !order;
      current := arr.(!best)
    done;
    List.rev !order

let pp fmt t =
  Format.fprintf fmt "cost block [%d, %d) cost=%d@." t.start t.finish (cost t);
  Array.iteri
    (fun u p ->
      Format.fprintf fmt "  unit %d: %s occ=%d cover_top=%d@." u
        (match (p.first, p.last) with
         | Some f, Some l -> Printf.sprintf "[%d..%d]" f l
         | _ -> "(idle)")
        p.occupied p.cover_top)
    t.per_unit
