(* Global registry of named operation counters. Hot paths hold a direct
   pointer to their counter record, so a bump is one mutable-field
   increment with no lookup. *)

type counter = { name : string; mutable count : int }

let registry : counter list ref = ref []

let counter name =
  let c = { name; count = 0 } in
  registry := c :: !registry;
  c

let incr c = c.count <- c.count + 1
let add c n = c.count <- c.count + n
let count c = c.count
let reset_all () = List.iter (fun c -> c.count <- 0) !registry

let snapshot () =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun c ->
      let cur = match Hashtbl.find_opt tbl c.name with Some n -> n | None -> 0 in
      Hashtbl.replace tbl c.name (cur + c.count))
    !registry;
  Hashtbl.fold (fun name n acc -> (name, n) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let to_json () =
  let fields =
    snapshot () |> List.map (fun (name, n) -> Printf.sprintf "%S: %d" name n)
  in
  "{" ^ String.concat ", " fields ^ "}"
