(* Typed telemetry registry: counters, gauges, log-bucketed histograms,
   and nestable timed spans. Hot paths hold direct pointers to their
   instrument records, so one event is one atomic fetch-and-add with no
   lookup — domain-safe, so the prediction server's worker domains share
   the registry without losing events. Spans keep a per-domain stack in
   Domain.DLS and fold completed frames into global atomics, so a
   snapshot merges all domains by construction. Reset never zeroes a
   live cell: it advances per-cell baselines (an epoch), and snapshots
   report deltas, so a worker bumping mid-reset is attributed to exactly
   one epoch instead of being half-lost. *)

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

(* lock-free registry push, shared by every instrument kind *)
let push_registry registry x =
  let rec go () =
    let old = Atomic.get registry in
    if not (Atomic.compare_and_set registry old (x :: old)) then go ()
  in
  go ()

(* ------------------------------------------------------------- counters *)

type counter = { name : string; count : int Atomic.t; base : int Atomic.t }

let counters : counter list Atomic.t = Atomic.make []

let counter name =
  let c = { name; count = Atomic.make 0; base = Atomic.make 0 } in
  push_registry counters c;
  c

let incr c = Atomic.incr c.count
let add c n = if n <> 0 then ignore (Atomic.fetch_and_add c.count n)
let count c = Atomic.get c.count - Atomic.get c.base

(* --------------------------------------------------------------- gauges *)

type gauge = { gname : string; gvalue : int Atomic.t }

let gauges : gauge list Atomic.t = Atomic.make []

let gauge gname =
  let g = { gname; gvalue = Atomic.make 0 } in
  push_registry gauges g;
  g

let set_gauge g v = Atomic.set g.gvalue v
let incr_gauge g = Atomic.incr g.gvalue
let add_gauge g n = if n <> 0 then ignore (Atomic.fetch_and_add g.gvalue n)
let gauge_value g = Atomic.get g.gvalue

(* ----------------------------------------------------------- histograms *)

(* bucket 0: v <= 0; bucket i in 1..38: v <= 2^(i-1); bucket 39: +Inf *)
let bucket_count = 40
let finite_buckets = bucket_count - 1

let bucket_index v =
  if v <= 0 then 0
  else begin
    let i = ref 1 and bound = ref 1 in
    while v > !bound && !i < finite_buckets - 1 do
      Stdlib.incr i;
      bound := !bound * 2
    done;
    if v > !bound then bucket_count - 1 else !i
  end

let bucket_bound i =
  if i <= 0 then 0.0
  else if i < finite_buckets then Float.of_int (1 lsl (i - 1))
  else Float.infinity

type histogram = {
  hname : string;
  buckets : int Atomic.t array;
  hsum : int Atomic.t;
  bbase : int Atomic.t array;
  sbase : int Atomic.t;
}

let histograms : histogram list Atomic.t = Atomic.make []

let histogram hname =
  let h =
    {
      hname;
      buckets = Array.init bucket_count (fun _ -> Atomic.make 0);
      hsum = Atomic.make 0;
      bbase = Array.init bucket_count (fun _ -> Atomic.make 0);
      sbase = Atomic.make 0;
    }
  in
  push_registry histograms h;
  h

let record h v =
  Atomic.incr h.buckets.(bucket_index v);
  ignore (Atomic.fetch_and_add h.hsum (max 0 v))

(* ---------------------------------------------------------------- spans *)

type span = {
  sname : string;
  s_count : int Atomic.t;
  s_total : int Atomic.t;
  s_self : int Atomic.t;
  cbase : int Atomic.t;
  tbase : int Atomic.t;
  selfbase : int Atomic.t;
}

let spans : span list Atomic.t = Atomic.make []

let span sname =
  let s =
    {
      sname;
      s_count = Atomic.make 0;
      s_total = Atomic.make 0;
      s_self = Atomic.make 0;
      cbase = Atomic.make 0;
      tbase = Atomic.make 0;
      selfbase = Atomic.make 0;
    }
  in
  push_registry spans s;
  s

let unbalanced_exits = gauge "obs.span.unbalanced"

type tnode = { name : string; total_ns : int; self_ns : int; children : tnode list }

type frame = {
  f_sp : span;
  f_start : int;
  mutable f_child : int;
  mutable f_nodes : tnode list;  (* reversed; only filled while tracing *)
}

type dls_state = {
  mutable stack : frame list;
  mutable tracing : bool;
  mutable roots : tnode list;  (* reversed *)
}

let dls : dls_state Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { stack = []; tracing = false; roots = [] })

let enter sp =
  let st = Domain.DLS.get dls in
  st.stack <- { f_sp = sp; f_start = now_ns (); f_child = 0; f_nodes = [] } :: st.stack

(* close the top frame at time [t]: fold its elapsed/self time into the
   span's global atomics, charge the elapsed time to the parent's child
   accumulator, and (under tracing) attach the subtree node *)
let close_top st t =
  match st.stack with
  | [] -> ()
  | f :: rest ->
    st.stack <- rest;
    let elapsed = max 0 (t - f.f_start) in
    let self = max 0 (elapsed - f.f_child) in
    Atomic.incr f.f_sp.s_count;
    ignore (Atomic.fetch_and_add f.f_sp.s_total elapsed);
    ignore (Atomic.fetch_and_add f.f_sp.s_self self);
    (match rest with parent :: _ -> parent.f_child <- parent.f_child + elapsed | [] -> ());
    if st.tracing then (
      let node =
        {
          name = f.f_sp.sname;
          total_ns = elapsed;
          self_ns = self;
          children = List.rev f.f_nodes;
        }
      in
      match rest with
      | parent :: _ -> parent.f_nodes <- node :: parent.f_nodes
      | [] -> st.roots <- node :: st.roots)

let exit sp =
  let st = Domain.DLS.get dls in
  if List.exists (fun f -> f.f_sp == sp) st.stack then (
    let t = now_ns () in
    (* frames still open above the match are implicitly closed at [t] *)
    let rec unwind () =
      match st.stack with
      | [] -> ()
      | f :: _ ->
        let matched = f.f_sp == sp in
        close_top st t;
        if not matched then unwind ()
    in
    unwind ())
  else incr_gauge unbalanced_exits

let time sp f =
  enter sp;
  Fun.protect ~finally:(fun () -> exit sp) f

(* ------------------------------------------------------------- snapshot *)

type histogram_snapshot = {
  buckets : (float * int) list;
  hist_count : int;
  hist_sum : int;
}

type span_snapshot = { span_count : int; span_total_ns : int; span_self_ns : int }

type snapshot = {
  counters : (string * int) list;
  gauges : (string * int) list;
  histograms : (string * histogram_snapshot) list;
  spans : (string * span_snapshot) list;
}

let by_name_sorted pairs =
  List.sort (fun (a, _) (b, _) -> String.compare a b) pairs

(* merge same-name registrations with [combine], sort by name *)
let merged name_of value_of combine entries =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let n = name_of e and v = value_of e in
      match Hashtbl.find_opt tbl n with
      | Some cur -> Hashtbl.replace tbl n (combine cur v)
      | None -> Hashtbl.add tbl n v)
    entries;
  by_name_sorted (Hashtbl.fold (fun n v acc -> (n, v) :: acc) tbl [])

let counters_now () =
  merged (fun (c : counter) -> c.name) count ( + ) (Atomic.get counters)

let histogram_snapshot_of (h : histogram) =
  let counts =
    Array.init bucket_count (fun i ->
        max 0 (Atomic.get h.buckets.(i) - Atomic.get h.bbase.(i)))
  in
  {
    buckets = Array.to_list (Array.mapi (fun i n -> (bucket_bound i, n)) counts);
    hist_count = Array.fold_left ( + ) 0 counts;
    hist_sum = max 0 (Atomic.get h.hsum - Atomic.get h.sbase);
  }

let merge_hist a b =
  {
    buckets = List.map2 (fun (le, n) (_, n') -> (le, n + n')) a.buckets b.buckets;
    hist_count = a.hist_count + b.hist_count;
    hist_sum = a.hist_sum + b.hist_sum;
  }

let span_snapshot_of s =
  {
    span_count = max 0 (Atomic.get s.s_count - Atomic.get s.cbase);
    span_total_ns = max 0 (Atomic.get s.s_total - Atomic.get s.tbase);
    span_self_ns = max 0 (Atomic.get s.s_self - Atomic.get s.selfbase);
  }

let merge_span a b =
  {
    span_count = a.span_count + b.span_count;
    span_total_ns = a.span_total_ns + b.span_total_ns;
    span_self_ns = a.span_self_ns + b.span_self_ns;
  }

let snapshot () =
  {
    counters = counters_now ();
    gauges = merged (fun g -> g.gname) gauge_value ( + ) (Atomic.get gauges);
    histograms =
      merged (fun h -> h.hname) histogram_snapshot_of merge_hist (Atomic.get histograms);
    spans = merged (fun s -> s.sname) span_snapshot_of merge_span (Atomic.get spans);
  }

let quantile hs q =
  if hs.hist_count = 0 then 0.0
  else begin
    let threshold = Float.max 1.0 (Float.of_int hs.hist_count *. q) in
    let rec go cum = function
      | [] -> Float.infinity
      | (le, n) :: rest ->
        let cum = cum + n in
        if n > 0 && Float.of_int cum >= threshold then le else go cum rest
    in
    go 0 hs.buckets
  end

let reset_all () =
  List.iter
    (fun c -> Atomic.set c.base (Atomic.get c.count))
    (Atomic.get counters);
  List.iter
    (fun h ->
      Array.iteri (fun i b -> Atomic.set h.bbase.(i) (Atomic.get b)) h.buckets;
      Atomic.set h.sbase (Atomic.get h.hsum))
    (Atomic.get histograms);
  List.iter
    (fun s ->
      Atomic.set s.cbase (Atomic.get s.s_count);
      Atomic.set s.tbase (Atomic.get s.s_total);
      Atomic.set s.selfbase (Atomic.get s.s_self))
    (Atomic.get spans)

(* ---------------------------------------------------------------- trace *)

module Trace = struct
  type node = tnode = {
    name : string;
    total_ns : int;
    self_ns : int;
    children : node list;
  }

  let collect f =
    let st = Domain.DLS.get dls in
    let was_tracing = st.tracing in
    let saved_roots = st.roots in
    st.tracing <- true;
    if not was_tracing then st.roots <- [];
    let start = now_ns () in
    let finish () =
      let total = max 0 (now_ns () - start) in
      let children = if was_tracing then [] else List.rev st.roots in
      let child_total = List.fold_left (fun acc n -> acc + n.total_ns) 0 children in
      st.tracing <- was_tracing;
      if not was_tracing then st.roots <- saved_roots;
      { name = "trace"; total_ns = total; self_ns = max 0 (total - child_total); children }
    in
    match f () with
    | r -> (r, finish ())
    | exception e ->
      ignore (finish ());
      raise e

  let rec write_node buf n =
    Printf.bprintf buf "{\"name\":%S,\"total_ns\":%d,\"self_ns\":%d,\"children\":[" n.name
      n.total_ns n.self_ns;
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_char buf ',';
        write_node buf c)
      n.children;
    Buffer.add_string buf "]}"

  let to_json n =
    let buf = Buffer.create 256 in
    write_node buf n;
    Buffer.contents buf
end

(* --------------------------------------------------------------- export *)

module Export = struct
  let counters_json snap =
    let fields = List.map (fun (name, n) -> Printf.sprintf "%S: %d" name n) snap in
    "{" ^ String.concat ", " fields ^ "}"

  let bound_string le =
    if Float.is_integer le && Float.abs le < 1e15 then Printf.sprintf "%.0f" le
    else if le = Float.infinity then "+Inf"
    else Printf.sprintf "%g" le

  let json (s : snapshot) =
    let buf = Buffer.create 1024 in
    Buffer.add_string buf "{\"counters\":{";
    List.iteri
      (fun i (n, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Printf.bprintf buf "%S:%d" n v)
      s.counters;
    Buffer.add_string buf "},\"gauges\":{";
    List.iteri
      (fun i (n, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Printf.bprintf buf "%S:%d" n v)
      s.gauges;
    Buffer.add_string buf "},\"histograms\":{";
    List.iteri
      (fun i (n, h) ->
        if i > 0 then Buffer.add_char buf ',';
        Printf.bprintf buf "%S:{\"count\":%d,\"sum\":%d,\"buckets\":[" n h.hist_count
          h.hist_sum;
        let first = ref true in
        List.iter
          (fun (le, c) ->
            if c > 0 then (
              if not !first then Buffer.add_char buf ',';
              first := false;
              Printf.bprintf buf "{\"le\":%s,\"n\":%d}"
                (if le = Float.infinity then "\"+Inf\"" else bound_string le)
                c))
          h.buckets;
        Buffer.add_string buf "]}")
      s.histograms;
    Buffer.add_string buf "},\"spans\":{";
    List.iteri
      (fun i (n, sp) ->
        if i > 0 then Buffer.add_char buf ',';
        Printf.bprintf buf "%S:{\"count\":%d,\"total_ns\":%d,\"self_ns\":%d}" n
          sp.span_count sp.span_total_ns sp.span_self_ns)
      s.spans;
    Buffer.add_string buf "}}";
    Buffer.contents buf

  let sanitize name =
    String.map
      (function ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_') as c -> c | _ -> '_')
      name

  let prometheus (s : snapshot) =
    let buf = Buffer.create 4096 in
    List.iter
      (fun (n, v) ->
        let m = "pperf_" ^ sanitize n ^ "_total" in
        Printf.bprintf buf "# TYPE %s counter\n%s %d\n" m m v)
      s.counters;
    List.iter
      (fun (n, v) ->
        let m = "pperf_" ^ sanitize n in
        Printf.bprintf buf "# TYPE %s gauge\n%s %d\n" m m v)
      s.gauges;
    List.iter
      (fun (n, h) ->
        let m = "pperf_" ^ sanitize n in
        Printf.bprintf buf "# TYPE %s histogram\n" m;
        let cum = ref 0 in
        List.iter
          (fun (le, c) ->
            cum := !cum + c;
            Printf.bprintf buf "%s_bucket{le=\"%s\"} %d\n" m (bound_string le) !cum)
          h.buckets;
        Printf.bprintf buf "%s_sum %d\n%s_count %d\n" m h.hist_sum m h.hist_count)
      s.histograms;
    if s.spans <> [] then begin
      Buffer.add_string buf "# TYPE pperf_span_count counter\n";
      List.iter
        (fun (n, sp) ->
          Printf.bprintf buf "pperf_span_count{span=%S} %d\n" n sp.span_count)
        s.spans;
      Buffer.add_string buf "# TYPE pperf_span_total_ns counter\n";
      List.iter
        (fun (n, sp) ->
          Printf.bprintf buf "pperf_span_total_ns{span=%S} %d\n" n sp.span_total_ns)
        s.spans;
      Buffer.add_string buf "# TYPE pperf_span_self_ns counter\n";
      List.iter
        (fun (n, sp) ->
          Printf.bprintf buf "pperf_span_self_ns{span=%S} %d\n" n sp.span_self_ns)
        s.spans
    end;
    Buffer.contents buf
end

let json_of_snapshot = Export.counters_json
let to_json () = Export.counters_json (counters_now ())
