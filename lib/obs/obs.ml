(* Global registry of named operation counters. Hot paths hold a direct
   pointer to their counter record, so a bump is one atomic fetch-and-add
   with no lookup — domain-safe, so the prediction server's worker domains
   can share the registry without losing events. *)

type counter = { name : string; count : int Atomic.t }

let registry : counter list Atomic.t = Atomic.make []

let counter name =
  let c = { name; count = Atomic.make 0 } in
  let rec push () =
    let old = Atomic.get registry in
    if not (Atomic.compare_and_set registry old (c :: old)) then push ()
  in
  push ();
  c

let incr c = Atomic.incr c.count
let add c n = if n <> 0 then ignore (Atomic.fetch_and_add c.count n)
let count c = Atomic.get c.count
let reset_all () = List.iter (fun c -> Atomic.set c.count 0) (Atomic.get registry)

let snapshot () =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun c ->
      let cur = match Hashtbl.find_opt tbl c.name with Some n -> n | None -> 0 in
      Hashtbl.replace tbl c.name (cur + Atomic.get c.count))
    (Atomic.get registry);
  Hashtbl.fold (fun name n acc -> (name, n) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let json_of_snapshot snap =
  let fields = List.map (fun (name, n) -> Printf.sprintf "%S: %d" name n) snap in
  "{" ^ String.concat ", " fields ^ "}"

let to_json () = json_of_snapshot (snapshot ())
