(** Lightweight operation counters for the analysis hot paths.

    Modules register named counters once at module-initialization time and
    bump them from their hot loops; the cost per event is a single atomic
    fetch-and-add, cheap enough to leave enabled unconditionally and safe
    to bump from the prediction server's worker domains concurrently. The
    CLI's [--stats] flag snapshots the registry after an analysis and
    appends it as a JSON object, giving per-run visibility into how much
    symbolic and scheduling work a prediction actually did (poly
    operations, monomial allocations, bin placements, focus-span scan
    lengths, interval widenings, fit fallbacks). The server's [stats] verb
    uses {!snapshot}/{!reset_all} for the same numbers cumulatively. *)

type counter

val counter : string -> counter
(** [counter name] registers a fresh counter under [name]. Names are
    conventionally dotted paths like ["poly.mul"]. Registering the same
    name twice returns distinct counters whose counts are summed in
    snapshots; in practice each name is registered once, at module
    initialization. *)

val incr : counter -> unit
val add : counter -> int -> unit

val count : counter -> int
(** Current value of one counter. *)

val reset_all : unit -> unit
(** Zero every registered counter (used between benchmark iterations and
    at the start of a [--stats] run). *)

val snapshot : unit -> (string * int) list
(** All registered counters with their current values, sorted by name.
    Counters that never fired report 0. *)

val json_of_snapshot : (string * int) list -> string
(** Render a snapshot (or a difference of snapshots) in the same JSON
    object shape [--stats] emits. *)

val to_json : unit -> string
(** The snapshot as a single-line JSON object [{"name": count, ...}]. *)
