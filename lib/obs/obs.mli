(** Typed telemetry for the analysis pipeline and the prediction service.

    Four instrument kinds share one registry and one {!snapshot} type:

    - {b counters}: monotonically increasing event counts (poly ops,
      monomial allocations, bin placements). A bump is one atomic
      fetch-and-add on a pre-registered record — cheap enough to leave
      enabled unconditionally and safe from concurrent worker domains.
    - {b gauges}: current-state values (cache entries, live domains);
      set rather than accumulated, and not rebased by {!reset_all}.
    - {b histograms}: log-bucketed latency distributions (powers of two
      of nanoseconds, plus a zero bucket and an overflow bucket). One
      record is one atomic bump on the matching bucket plus the sum.
    - {b spans}: nestable timed regions. Each domain keeps its own span
      stack in [Domain.DLS] (no cross-domain interleaving); completed
      spans aggregate count/total/self time into global atomics, merged
      across domains by construction when a snapshot is taken. A
      per-domain {!Trace} collector can additionally capture the span
      tree of one evaluation for [--trace].

    Reset is epoch-consistent: {!reset_all} never zeroes a live cell (a
    worker domain bumping mid-reset can not be half-lost); it instead
    advances per-cell baselines, and snapshots report the delta since the
    last reset. Values are monotone per cell, so deltas are never
    negative.

    The CLI's [--stats] JSON ({!to_json}) remains the counters-only
    object it has always been; the richer sections (gauges, histograms,
    spans) are only visible through {!snapshot} and {!Export}. *)

(** {1 Counters} *)

type counter

val counter : string -> counter
(** [counter name] registers a fresh counter under [name]. Names are
    conventionally dotted paths like ["poly.mul"]. Registering the same
    name twice returns distinct counters whose counts are summed in
    snapshots; in practice each name is registered once, at module
    initialization. *)

val incr : counter -> unit
val add : counter -> int -> unit

val count : counter -> int
(** Current value of one counter since the last {!reset_all}. *)

(** {1 Gauges} *)

type gauge

val gauge : string -> gauge
val set_gauge : gauge -> int -> unit
val incr_gauge : gauge -> unit

val add_gauge : gauge -> int -> unit
(** Atomic delta on a gauge — the shape live-level instruments need
    (queue depths, in-flight request counts) where increments and
    decrements race from different domains. *)

val gauge_value : gauge -> int

(** {1 Histograms} *)

type histogram

val histogram : string -> histogram
(** [histogram name] registers a log-bucketed histogram. Bucket 0 holds
    values [<= 0]; bucket [i] holds values in [(2^(i-2), 2^(i-1)]]; the
    last bucket is the overflow ([+Inf]) bucket. Values are
    conventionally nanoseconds. *)

val record : histogram -> int -> unit
(** Record one value (one atomic bump on its bucket, one on the sum). *)

val bucket_index : int -> int
(** The bucket a value lands in (exposed for boundary tests). *)

val bucket_bound : int -> float
(** Inclusive upper bound of a bucket; [infinity] for the overflow
    bucket. *)

val bucket_count : int
(** Total number of buckets, overflow included. *)

(** {1 Spans} *)

type span

val span : string -> span
(** [span name] registers a named timed region. Like counters, handles
    are registered once at module-initialization time and entered from
    the phase boundaries. *)

val enter : span -> unit
(** Push an open frame for this span on the current domain's stack. *)

val exit : span -> unit
(** Close the most recent open frame for this span, implicitly closing
    (and recording) any frames still open above it. If the span has no
    open frame on this domain, the call is a counted no-op (the
    ["obs.span.unbalanced"] gauge). *)

val time : span -> (unit -> 'a) -> 'a
(** [time sp f] runs [f] inside the span, balanced even on exceptions.
    This is the preferred API; {!enter}/{!exit} exist for regions that do
    not nest lexically (server lifecycle stages). *)

(** {1 Trace collection} *)

module Trace : sig
  type node = {
    name : string;
    total_ns : int;
    self_ns : int;  (** total minus time spent in child spans *)
    children : node list;
  }

  val collect : (unit -> 'a) -> 'a * node
  (** Capture the span tree of one evaluation on the calling domain: the
      returned root node spans the whole call (its [total_ns] is the
      region's wall time), with every top-level span completed during
      [f] as a child. Aggregated span statistics are still recorded as
      usual; collection only adds tree capture. Not reentrant per
      domain: an inner [collect] simply nests its spans in the outer
      tree. *)

  val to_json : node -> string
  (** One-line JSON: [{"name":..,"total_ns":..,"self_ns":..,
      "children":[...]}]. *)
end

(** {1 Snapshot and reset} *)

type histogram_snapshot = {
  buckets : (float * int) list;
      (** per-bucket (inclusive upper bound, count); not cumulative *)
  hist_count : int;  (** number of recorded values *)
  hist_sum : int;  (** sum of recorded values *)
}

type span_snapshot = { span_count : int; span_total_ns : int; span_self_ns : int }

type snapshot = {
  counters : (string * int) list;
  gauges : (string * int) list;
  histograms : (string * histogram_snapshot) list;
  spans : (string * span_snapshot) list;
}
(** Every section is sorted by name; same-name registrations are summed
    (bucket-wise for histograms). All values are deltas since the last
    {!reset_all}, except gauges, which are current state. *)

val snapshot : unit -> snapshot

val counters_now : unit -> (string * int) list
(** The counters section alone, as [--stats] has always reported it. *)

val quantile : histogram_snapshot -> float -> float
(** [quantile h q] for [q] in [0,1]: the inclusive upper bound of the
    first bucket whose cumulative count reaches [q] of the total — an
    upper estimate with log-bucket resolution. [0.] when empty;
    [infinity] when the quantile lands in the overflow bucket. *)

val reset_all : unit -> unit
(** Start a new epoch: advance every counter/histogram/span baseline to
    its current value, so subsequent snapshots report only later events.
    Never zeroes live cells — concurrent bumps are attributed to exactly
    one epoch. Gauges are left untouched. *)

(** {1 Export} *)

module Export : sig
  val counters_json : (string * int) list -> string
  (** The counters-only JSON object [{"name": count, ...}] that
      [--stats] emits. *)

  val json : snapshot -> string
  (** The full snapshot as one JSON object with ["counters"],
      ["gauges"], ["histograms"] (buckets as [le]/[n] pairs), and
      ["spans"] sections. *)

  val prometheus : snapshot -> string
  (** Prometheus text exposition (version 0.0.4): counters as
      [pperf_<name>_total], gauges as [pperf_<name>], histograms as
      [pperf_<name>] histogram families with cumulative [le] buckets,
      [_sum] and [_count], spans as [pperf_span_{count,total_ns,self_ns}]
      families labelled by span name. Dots in names become underscores. *)
end

val json_of_snapshot : (string * int) list -> string
[@@ocaml.deprecated "use Obs.Export.counters_json"]
(** Deprecated alias for {!Export.counters_json}, kept for one release. *)

val to_json : unit -> string
(** [Export.counters_json (counters_now ())]: the [--stats] object,
    byte-compatible with every release since the counter registry was
    introduced. *)
