(** The serving fleet: a TCP front end multiplexing many concurrent
    JSON-lines connections onto N worker-domain shards.

    Requests are routed by {e cache-key affinity}: the hash of
    (machine ‖ source digest) picks the shard, so repeat queries for the
    same kernel land on the same domain and hit its warm per-domain
    incremental predictor. Requests with no source (ping/stats/metrics,
    or with [affinity = false]) are {e affinity-free}: they go to the
    least-loaded shard and — under [--sched ws] — may be stolen by idle
    shards. Admission is bounded: beyond [max_queue] queued requests the
    fleet sheds load with a structured [overloaded] error carrying a
    [retry_after_ms] hint instead of queueing without bound.

    Responses leave each connection in request order (one
    {!Pperf_server.Server.Sequencer} per connection) and every admitted
    request is answered exactly once. Deadlines are honored across the
    queue: a request still queued past its [deadline_ms] is answered
    [deadline_exceeded], not silently evaluated late. *)

type config = {
  jobs : int;  (** shard (worker domain) count, >= 1 *)
  sched : Sched.policy;
  max_queue : int;  (** global admission bound, >= 1 *)
  cache_capacity : int option;  (** result-cache entries (engine default) *)
  max_request_bytes : int;
  affinity : bool;  (** [false]: route everything least-loaded (baseline) *)
}

val default_max_queue : int
(** 1024. *)

val config :
  ?sched:Sched.policy ->
  ?max_queue:int ->
  ?cache_capacity:int ->
  ?max_request_bytes:int ->
  ?affinity:bool ->
  jobs:int ->
  unit ->
  config
(** @raise Invalid_argument when [jobs < 1] or [max_queue < 1]. *)

(** The engine-side core, independent of any transport: shards, queues,
    admission control, dispatch. *)
module Core : sig
  type t

  val create : ?start:bool -> config -> t
  (** One shared {!Pperf_server.Engine} (shared result cache; per-domain
      incremental predictors) and [jobs] shard queues. [start] (default
      [true]) spawns the worker domains; [start:false] leaves the queues
      frozen so tests can fill them deterministically, then {!start}. *)

  val start : t -> unit
  (** Spawn the worker domains (idempotent). *)

  val engine : t -> Pperf_server.Engine.t

  val dispatch :
    t -> Pperf_server.Server.Sequencer.t -> int -> string -> [ `Dispatched | `Shutdown ]
  (** Handle one request line for slot [i] of the connection's sequencer:
      parse errors, oversized lines, and admission rejections are emitted
      immediately; [shutdown] is answered inline and reported as
      [`Shutdown]; anything else is enqueued on its shard and will emit
      exactly once when evaluated. *)

  val drain : t -> unit
  (** Block until no request is queued or in flight. *)

  val stop : t -> unit
  (** Drain queued work, then stop and join the worker domains.
      Subsequent {!dispatch} calls shed with [overloaded]. Idempotent. *)

  val queue_depth : t -> int
end

val run_lines : Core.t -> string list -> string list
(** In-memory session against a started core: request lines in, response
    lines out in request order (blank lines skipped). The fleet analogue
    of {!Pperf_server.Server.batch_lines}, for tests and benchmarks. *)

val serve_tcp :
  config -> host:string -> port:int -> ?port_file:string -> unit -> int
(** Bind [host:port] (port [0] picks an ephemeral port; the bound port is
    written to [port_file] when given) and serve concurrent connections,
    one reader thread each, until a [shutdown] request or
    SIGTERM/SIGINT. Both paths drain: in-flight and queued requests are
    answered, per-connection sequencers flushed, connections closed, the
    listener closed, worker domains joined; then returns 0. *)
