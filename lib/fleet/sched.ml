(* Shard-local two-class run queues (affinity-bound vs affinity-free)
   plus the scheduling policies that pick from them. Policies are
   first-class modules so `--sched {fifo,lifo,ws}` is a table lookup and
   a new discipline is one more module, not a new match arm in the core.

   No locking here: the fleet core owns synchronisation. *)

(* amortised-O(1) deque: push at the back, pop (and peek) at both ends;
   elements are (admission seq, payload) so policies can order across
   the bound/free pair of deques *)
type 'a dq = {
  mutable front : (int * 'a) list;
  mutable back : (int * 'a) list;  (** reversed *)
  mutable len : int;
}

let dq_create () = { front = []; back = []; len = 0 }

let dq_push_back d seq x =
  d.back <- (seq, x) :: d.back;
  d.len <- d.len + 1

let dq_norm_front d =
  if d.front = [] then (
    d.front <- List.rev d.back;
    d.back <- [])

let dq_norm_back d =
  if d.back = [] then (
    d.back <- List.rev d.front;
    d.front <- [])

let dq_peek_front d =
  dq_norm_front d;
  match d.front with [] -> None | (seq, _) :: _ -> Some seq

let dq_peek_back d =
  dq_norm_back d;
  match d.back with [] -> None | (seq, _) :: _ -> Some seq

let dq_pop_front d =
  dq_norm_front d;
  match d.front with
  | [] -> None
  | (_, x) :: tl ->
    d.front <- tl;
    d.len <- d.len - 1;
    Some x

let dq_pop_back d =
  dq_norm_back d;
  match d.back with
  | [] -> None
  | (_, x) :: tl ->
    d.back <- tl;
    d.len <- d.len - 1;
    Some x

type 'a t = { bound : 'a dq; free : 'a dq }

let create () = { bound = dq_create (); free = dq_create () }
let length q = q.bound.len + q.free.len
let push_bound q ~seq x = dq_push_back q.bound seq x
let push_free q ~seq x = dq_push_back q.free seq x

(* oldest across both classes: compare the head admission seqs *)
let take_oldest q =
  match (dq_peek_front q.bound, dq_peek_front q.free) with
  | None, None -> None
  | Some _, None -> dq_pop_front q.bound
  | None, Some _ -> dq_pop_front q.free
  | Some b, Some f -> if b <= f then dq_pop_front q.bound else dq_pop_front q.free

let take_newest q =
  match (dq_peek_back q.bound, dq_peek_back q.free) with
  | None, None -> None
  | Some _, None -> dq_pop_back q.bound
  | None, Some _ -> dq_pop_back q.free
  | Some b, Some f -> if b >= f then dq_pop_back q.bound else dq_pop_back q.free

module type POLICY = sig
  val name : string
  val take : 'a t -> 'a option
  val steal : 'a t -> 'a option
end

module Fifo = struct
  let name = "fifo"
  let take = take_oldest
  let steal _ = None
end

module Lifo = struct
  let name = "lifo"
  let take = take_newest
  let steal _ = None
end

module Ws = struct
  let name = "ws"
  let take = take_oldest

  (* steal the oldest affinity-free item only: bound work stays on the
     shard whose domain holds its warm incremental predictor *)
  let steal q = dq_pop_front q.free
end

type policy = (module POLICY)

let all : (string * policy) list =
  [ ("fifo", (module Fifo)); ("lifo", (module Lifo)); ("ws", (module Ws)) ]

let of_string s =
  match List.assoc_opt (String.lowercase_ascii s) all with
  | Some p -> Ok p
  | None ->
    Error
      (Printf.sprintf "unknown scheduling policy %S (expected one of: %s)" s
         (String.concat ", " (List.map fst all)))

let name (p : policy) =
  let module P = (val p) in
  P.name
