(** Load-generation client for the serving fleet ([ppredict loadgen]).

    Two modes against a TCP or Unix-socket daemon:

    {ul
    {- {!run_script}: replay a JSON-lines request file serially (send one,
       await one, print the response) — the deterministic mode the cram
       tests and the serve gate use to pin byte-identical transcripts.}
    {- {!run_load}: a seeded synthetic storm — [connections] client
       threads each pipelining up to [window] outstanding requests, a
       mixed verb corpus (predict/compare/bounds/ranges over every
       sample, hot repeats and cold eval-binding variants, some malformed
       lines, some near-zero deadlines), verifying per-connection
       response order and exactly-one response per request, and printing
       a JSON summary (counts, throughput, latency percentiles).}}

    Exit codes: [run_load] returns 0 only if every request got exactly
    one response, in order, with no unexpected protocol errors —
    [overloaded] and deadline responses are expected outcomes, counted
    but not failures. *)

type target = Tcp of string * int | Unix_path of string

val run_script : target -> string -> int
(** [run_script target file] replays [file] (one JSON request per line;
    blank lines skipped), printing each response line to stdout. *)

val run_load :
  target ->
  requests:int ->
  connections:int ->
  window:int ->
  seed:int ->
  samples:string ->
  json:bool ->
  unit ->
  int
(** [samples] is a directory of [*.pf] kernels the corpus is built over.
    [json] selects machine-readable summary output (always one summary
    object on stdout; [json:false] adds a human-readable line on
    stderr). *)
