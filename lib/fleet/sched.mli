(** Per-shard run queues and pluggable scheduling policies for the fleet.

    Each shard owns one {!t}: a pair of bounded-front deques separating
    {e affinity-bound} items (routed here because their cache key hashes
    to this shard — moving them would cool a warm per-domain incremental
    predictor) from {e affinity-free} items (no source to be warm for:
    ping/stats/metrics, or affinity disabled). Items carry the global
    admission sequence number, so policies can order across the two
    classes exactly.

    A policy is a first-class module ({!POLICY}): [take] picks the next
    item for the owning shard, [steal] removes work on behalf of
    {e another} shard. Only [ws] steals, and it steals only affinity-free
    items — bound work never migrates off its home shard.

    Queues are not internally synchronised; the fleet core serialises all
    access under its scheduler lock. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int
(** Total queued items, both classes. *)

val push_bound : 'a t -> seq:int -> 'a -> unit
val push_free : 'a t -> seq:int -> 'a -> unit

(** A scheduling discipline over one shard's two-class queue. *)
module type POLICY = sig
  val name : string

  val take : 'a t -> 'a option
  (** Next item for the shard that owns this queue. *)

  val steal : 'a t -> 'a option
  (** Remove an item on behalf of an idle {e other} shard; [None] when
      the policy forbids migration or nothing is stealable. *)
end

module Fifo : POLICY
(** Globally oldest-first (admission order across both classes); never
    steals. [--sched fifo --jobs 1] is the deterministic baseline. *)

module Lifo : POLICY
(** Newest-first; never steals. *)

module Ws : POLICY
(** FIFO locally; an idle shard steals the oldest {e affinity-free} item
    from a busy peer. Affinity-bound work stays home so warm predictors
    stay warm. *)

type policy = (module POLICY)

val all : (string * policy) list
(** Selection table for the CLI: [fifo], [lifo], [ws]. *)

val of_string : string -> (policy, string) result
val name : policy -> string
