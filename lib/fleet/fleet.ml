(* The serving fleet: TCP connections framed onto the JSON-lines
   protocol, dispatched to worker-domain shards by cache-key affinity.

   Layering: one shared Engine (shared content-addressed result cache —
   answers stay byte-identical wherever a request runs) evaluated on N
   shard domains. What affinity buys is the *incremental* layer: the
   per-domain Domain.DLS predictors in Engine are warm exactly for the
   (machine, source) pairs that domain has seen, so hashing
   machine ‖ source onto a stable shard keeps repeat traffic on the
   domain that already holds its predictor.

   Concurrency shape: reader systhreads (one per connection) parse and
   dispatch; worker domains evaluate; a per-connection Server.Sequencer
   restores request order on the way out. All queue state sits under one
   scheduler lock — queue operations are a few list cells, evaluation is
   micro- to milliseconds, so a single lock is contention-free at fleet
   scale and makes admission + routing + stealing atomic. *)

module Server = Pperf_server.Server
module Engine = Pperf_server.Engine
module Protocol = Pperf_server.Protocol
module Json = Pperf_server.Json
module Obs = Pperf_obs.Obs

(* fleet.*: admission and routing; sched.*: scheduler actions.
   Documented in README "Serving fleet" and DESIGN §2.7. *)
let c_admitted = Obs.counter "fleet.admitted"
let c_rejected = Obs.counter "fleet.rejected"
let c_completed = Obs.counter "fleet.completed"
let c_routed_affinity = Obs.counter "fleet.routed.affinity"
let c_routed_free = Obs.counter "fleet.routed.free"
let c_connections = Obs.counter "fleet.connections"
let g_queue_depth = Obs.gauge "fleet.queue.depth"
let g_inflight = Obs.gauge "fleet.inflight"
let g_connections = Obs.gauge "fleet.connections.active"
let c_pops = Obs.counter "sched.pops"
let c_steals = Obs.counter "sched.steals"

type config = {
  jobs : int;
  sched : Sched.policy;
  max_queue : int;
  cache_capacity : int option;
  max_request_bytes : int;
  affinity : bool;
}

let default_max_queue = 1024

let config ?(sched = (module Sched.Fifo : Sched.POLICY)) ?(max_queue = default_max_queue)
    ?cache_capacity ?(max_request_bytes = Server.default_max_request_bytes)
    ?(affinity = true) ~jobs () =
  if jobs < 1 then
    invalid_arg (Printf.sprintf "Fleet.config: jobs must be >= 1 (got %d)" jobs);
  if max_queue < 1 then
    invalid_arg (Printf.sprintf "Fleet.config: max_queue must be >= 1 (got %d)" max_queue);
  { jobs; sched; max_queue; cache_capacity; max_request_bytes; affinity }

(* best effort at correlating an error with the request's id *)
let id_of_line line =
  match Json.of_string line with
  | exception _ -> Json.Null
  | j -> Option.value (Json.member "id" j) ~default:Json.Null

(* ----------------------------------------------------------- core *)

module Core = struct
  type item = { run : unit -> unit }

  type t = {
    cfg : config;
    engine : Engine.t;
    lock : Mutex.t;
    work : Condition.t;  (** signalled on push and on stop *)
    idle : Condition.t;  (** signalled when queued + in-flight reaches 0 *)
    queues : item Sched.t array;
    mutable next_seq : int;  (** global admission order, feeds Sched *)
    mutable queued : int;
    mutable in_flight : int;
    mutable stopping : bool;
    mutable workers : unit Domain.t list;
    mutable started : bool;
  }

  let engine t = t.engine
  let queue_depth t = Mutex.protect t.lock (fun () -> t.queued)

  (* The affinity key is the stable part of the result-cache key: machine
     spec plus source descriptor (path, or digest of inline text; compare
     includes both variants). Flags and eval bindings are deliberately
     excluded — the per-domain incremental predictor is keyed by
     (machine, source, options-sans-eval), so "same kernel, different
     bindings" is exactly the traffic affinity should keep together. *)
  let source_key = function
    | Protocol.File p -> "f:" ^ p
    | Protocol.Text s -> "t:" ^ Digest.to_hex (Digest.string s)

  let affinity_key (req : Protocol.request) =
    match req.verb with
    | Protocol.Predict | Protocol.Compare | Protocol.Ranges | Protocol.Lint
    | Protocol.Bounds -> (
      match req.source with
      | None -> None
      | Some s ->
        let s2 =
          match req.source2 with None -> "" | Some x -> "|" ^ source_key x
        in
        Some (req.machine ^ "|" ^ source_key s ^ s2))
    | _ -> None

  let shard_of_key t key = Hashtbl.hash key mod t.cfg.jobs

  let least_loaded t =
    let best = ref 0 and best_len = ref max_int in
    Array.iteri
      (fun i q ->
        let l = Sched.length q in
        if l < !best_len then (
          best := i;
          best_len := l))
      t.queues;
    !best

  (* overload hint: expected time to drain the current backlog across all
     shards, from the mean evaluation time observed so far *)
  let retry_after_ms t =
    let mean_ns = Engine.mean_eval_ns t.engine in
    let mean_ns = if mean_ns = 0 then 1_000_000 else mean_ns in
    max 1 (mean_ns * t.queued / t.cfg.jobs / 1_000_000)

  let rec worker t shard =
    let module P = (val t.cfg.sched : Sched.POLICY) in
    let job =
      Mutex.protect t.lock (fun () ->
          let rec get () =
            match P.take t.queues.(shard) with
            | Some it ->
              Obs.incr c_pops;
              Some it
            | None -> (
              (* own queue empty: steal (policy-permitting) before sleeping *)
              let n = Array.length t.queues in
              let stolen = ref None in
              (try
                 for d = 1 to n - 1 do
                   match P.steal t.queues.((shard + d) mod n) with
                   | Some it ->
                     stolen := Some it;
                     raise Exit
                   | None -> ()
                 done
               with Exit -> ());
              match !stolen with
              | Some it ->
                Obs.incr c_steals;
                Some it
              | None ->
                if t.stopping then None
                else (
                  Condition.wait t.work t.lock;
                  get ()))
          in
          match get () with
          | None -> None
          | Some it ->
            t.queued <- t.queued - 1;
            t.in_flight <- t.in_flight + 1;
            Obs.add_gauge g_queue_depth (-1);
            Obs.add_gauge g_inflight 1;
            Some it)
    in
    match job with
    | None -> ()
    | Some it ->
      (* items never raise (they produce responses), but a raise must not
         kill the shard or skew the accounting *)
      (try it.run () with _ -> ());
      Obs.incr c_completed;
      Mutex.protect t.lock (fun () ->
          t.in_flight <- t.in_flight - 1;
          Obs.add_gauge g_inflight (-1);
          if t.queued = 0 && t.in_flight = 0 then Condition.broadcast t.idle);
      worker t shard

  let start t =
    Mutex.protect t.lock (fun () ->
        if not t.started then (
          t.started <- true;
          t.workers <-
            List.init t.cfg.jobs (fun i -> Domain.spawn (fun () -> worker t i))))

  let create ?start:(spawn = true) cfg =
    if cfg.jobs < 1 then
      invalid_arg (Printf.sprintf "Fleet.Core.create: jobs must be >= 1 (got %d)" cfg.jobs);
    if cfg.max_queue < 1 then
      invalid_arg
        (Printf.sprintf "Fleet.Core.create: max_queue must be >= 1 (got %d)" cfg.max_queue);
    let t =
      {
        cfg;
        engine = Engine.create ?cache_capacity:cfg.cache_capacity ~jobs:cfg.jobs ();
        lock = Mutex.create ();
        work = Condition.create ();
        idle = Condition.create ();
        queues = Array.init cfg.jobs (fun _ -> Sched.create ());
        next_seq = 0;
        queued = 0;
        in_flight = 0;
        stopping = false;
        workers = [];
        started = false;
      }
    in
    if spawn then start t;
    t

  (* admission + routing, atomically: Ok () guarantees the item will run
     exactly once; Error hint means it was shed and nothing was queued *)
  let submit t ~key run =
    Mutex.protect t.lock (fun () ->
        if t.stopping || t.queued >= t.cfg.max_queue then (
          Obs.incr c_rejected;
          Error (retry_after_ms t))
        else (
          let seq = t.next_seq in
          t.next_seq <- seq + 1;
          (match key with
          | Some k when t.cfg.affinity ->
            Obs.incr c_routed_affinity;
            Sched.push_bound t.queues.(shard_of_key t k) ~seq { run }
          | _ ->
            Obs.incr c_routed_free;
            Sched.push_free t.queues.(least_loaded t) ~seq { run });
          t.queued <- t.queued + 1;
          Obs.incr c_admitted;
          Obs.add_gauge g_queue_depth 1;
          (* broadcast, not signal: a signal could wake only a shard that
             cannot run this item (bound work is not stealable), losing
             the wakeup while the home shard sleeps *)
          Condition.broadcast t.work;
          Ok ()))

  let dispatch t seq i line =
    let received = Unix.gettimeofday () in
    if String.length line > t.cfg.max_request_bytes then (
      Server.Sequencer.emit seq i
        (Protocol.err ~id:Json.Null Protocol.Oversized
           (Printf.sprintf "request line exceeds %d bytes" t.cfg.max_request_bytes));
      `Dispatched)
    else
      match Protocol.request_of_line line with
      | Error (code, msg) ->
        Server.Sequencer.emit seq i (Protocol.err ~id:(id_of_line line) code msg);
        `Dispatched
      | Ok ({ verb = Protocol.Shutdown; _ } as req) ->
        Server.Sequencer.emit seq i (Engine.handle t.engine ~received req);
        `Shutdown
      | Ok req -> (
        let key = affinity_key req in
        let run () = Server.Sequencer.emit seq i (Engine.handle t.engine ~received req) in
        match submit t ~key run with
        | Ok () -> `Dispatched
        | Error hint ->
          Server.Sequencer.emit seq i
            (Protocol.err ~retry_after_ms:hint ~id:req.id Protocol.Overloaded
               (Printf.sprintf "admission queue full (%d queued); retry in ~%dms"
                  t.cfg.max_queue hint));
          `Dispatched)

  let drain t =
    Mutex.protect t.lock (fun () ->
        while t.queued > 0 || t.in_flight > 0 do
          Condition.wait t.idle t.lock
        done)

  let stop t =
    let workers =
      Mutex.protect t.lock (fun () ->
          t.stopping <- true;
          Condition.broadcast t.work;
          let w = t.workers in
          t.workers <- [];
          w)
    in
    List.iter Domain.join workers
end

(* --------------------------------------------------- in-memory session *)

let run_lines core lines =
  let buf = Buffer.create 4096 in
  let seq = Server.Sequencer.create ~write:(Buffer.add_string buf) ~flush:ignore () in
  let lines = List.filter (fun l -> String.trim l <> "") lines in
  let n = List.length lines in
  List.iteri (fun i l -> ignore (Core.dispatch core seq i l)) lines;
  ignore (Server.Sequencer.wait seq ~upto:n);
  String.split_on_char '\n' (String.trim (Buffer.contents buf))
  |> List.filter (fun s -> s <> "")

(* ------------------------------------------------------- TCP front end *)

let resolve_host host =
  if host = "" || host = "localhost" then Unix.inet_addr_loopback
  else
    match Unix.inet_addr_of_string host with
    | a -> a
    | exception Failure _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } | (exception Not_found) ->
        failwith (Printf.sprintf "cannot resolve host %S" host)
      | { Unix.h_addr_list; _ } -> h_addr_list.(0))

let ignore_sigpipe () =
  try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore) with Invalid_argument _ -> ()

(* SIGTERM/SIGINT only flip the flag; the accept loop (which ticks every
   0.25s) performs the actual teardown outside signal-handler context *)
let install_stop_handlers stop =
  let handle _ = Atomic.set stop true in
  List.iter
    (fun s ->
      try ignore (Sys.signal s (Sys.Signal_handle handle))
      with Invalid_argument _ -> ())
    [ Sys.sigterm; Sys.sigint ]

(* One reader thread per connection: frame lines, dispatch to the core,
   drain the sequencer on EOF so every admitted request's response is on
   the wire before the socket closes. *)
let handle_connection core ic oc ~on_shutdown =
  Obs.incr c_connections;
  Obs.add_gauge g_connections 1;
  let seq =
    Server.Sequencer.create ~flush_each:true ~write:(output_string oc)
      ~flush:(fun () -> flush oc) ()
  in
  let n = ref 0 in
  let shutdown = ref false in
  let eof = ref false in
  (try
     while not (!eof || !shutdown) do
       match
         Server.read_line_bounded ic ~max_bytes:(Core.(core.cfg).max_request_bytes)
       with
       | Server.Eof -> eof := true
       | Server.Too_long ->
         let i = !n in
         incr n;
         Server.Sequencer.emit seq i
           (Protocol.err ~id:Json.Null Protocol.Oversized
              (Printf.sprintf "request line exceeds %d bytes"
                 Core.(core.cfg).max_request_bytes))
       | Server.Line l when String.trim l = "" -> ()
       | Server.Line l -> (
         let i = !n in
         incr n;
         match Core.dispatch core seq i l with
         | `Dispatched -> ()
         | `Shutdown -> shutdown := true)
     done
   with Sys_error _ | Unix.Unix_error _ -> ());
  ignore (Server.Sequencer.wait seq ~upto:!n);
  (try flush oc with Sys_error _ | Unix.Unix_error _ -> ());
  Obs.add_gauge g_connections (-1);
  if !shutdown then on_shutdown ()

let write_port_file path port =
  let oc = open_out path in
  output_string oc (string_of_int port);
  output_char oc '\n';
  close_out oc

let serve_tcp cfg ~host ~port ?port_file () =
  let core = Core.create cfg in
  ignore_sigpipe ();
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  let stop = Atomic.make false in
  (* live connection fds, so teardown can force EOF on blocked readers *)
  let conns : (int, Unix.file_descr) Hashtbl.t = Hashtbl.create 32 in
  let conns_lock = Mutex.create () in
  let threads = ref [] in
  let conn_id = ref 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.setsockopt sock Unix.SO_REUSEADDR true;
      Unix.bind sock (Unix.ADDR_INET (resolve_host host, port));
      Unix.listen sock 64;
      let bound_port =
        match Unix.getsockname sock with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> port
      in
      Option.iter (fun f -> write_port_file f bound_port) port_file;
      Printf.eprintf "ppredict: fleet listening on %s:%d (%d shard%s, sched %s)\n%!"
        host bound_port cfg.jobs
        (if cfg.jobs = 1 then "" else "s")
        (Sched.name cfg.sched);
      install_stop_handlers stop;
      while not (Atomic.get stop) do
        (* poll-accept: a stop request (signal or shutdown verb) is
           noticed within a tick, never blocked on accept *)
        match Unix.select [ sock ] [] [] 0.25 with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | [], _, _ -> ()
        | _ -> (
          match Unix.accept sock with
          | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _) -> ()
          | conn, _ ->
            (try Unix.setsockopt conn Unix.TCP_NODELAY true
             with Unix.Unix_error _ -> ());
            let id = !conn_id in
            incr conn_id;
            Mutex.protect conns_lock (fun () -> Hashtbl.replace conns id conn);
            let th =
              Thread.create
                (fun () ->
                  let ic = Unix.in_channel_of_descr conn in
                  (* the write side gets its own duplicated fd so each
                     channel can be closed exactly once — a shared fd
                     closed twice could tear down an unrelated connection
                     that reused the number in between *)
                  let oc = Unix.out_channel_of_descr (Unix.dup conn) in
                  handle_connection core ic oc ~on_shutdown:(fun () ->
                      Atomic.set stop true);
                  Mutex.protect conns_lock (fun () -> Hashtbl.remove conns id);
                  (* close the channels, not just the fds: a leaked channel
                     stays on the runtime's open-channel list forever and
                     stretches process exit *)
                  close_in_noerr ic;
                  close_out_noerr oc)
                ()
            in
            threads := th :: !threads)
      done;
      (* drain: force EOF on blocked readers, let every connection flush
         its in-order tail, then retire the shard domains *)
      Mutex.protect conns_lock (fun () ->
          Hashtbl.iter
            (fun _ fd ->
              try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
            conns);
      List.iter Thread.join !threads;
      Core.drain core;
      Core.stop core;
      0)
