(* Load-generation client for the fleet: a script-replay mode (serial,
   deterministic, used to pin transcripts) and a seeded synthetic storm
   (many connections, windowed pipelining, mixed hot/cold/malformed
   traffic) that verifies the fleet's contract from the outside: every
   request answered exactly once, per-connection responses in request
   order, overload shed with a structured error rather than a hang. *)

module Json = Pperf_server.Json

type target = Tcp of string * int | Unix_path of string

let resolve_host host =
  if host = "" || host = "localhost" then Unix.inet_addr_loopback
  else
    match Unix.inet_addr_of_string host with
    | a -> a
    | exception Failure _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } | (exception Not_found) ->
        failwith (Printf.sprintf "cannot resolve host %S" host)
      | { Unix.h_addr_list; _ } -> h_addr_list.(0))

let connect target =
  match target with
  | Tcp (host, port) ->
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try
       Unix.connect fd (Unix.ADDR_INET (resolve_host host, port));
       Unix.setsockopt fd Unix.TCP_NODELAY true
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    fd
  | Unix_path path ->
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try Unix.connect fd (Unix.ADDR_UNIX path)
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    fd

(* a couple of retries paper over the race between daemon start-up and
   the first client connect *)
let connect_retry target =
  let rec go n =
    match connect target with
    | fd -> fd
    | exception e -> if n = 0 then raise e else (Unix.sleepf 0.2; go (n - 1))
  in
  go 25

(* ------------------------------------------------------ script replay *)

let run_script target file =
  let fd = connect_retry target in
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr (Unix.dup fd) in
  let script = open_in file in
  let status = ref 0 in
  Fun.protect
    ~finally:(fun () ->
      close_in_noerr script;
      (try flush oc with Sys_error _ -> ());
      close_in_noerr ic;
      close_out_noerr oc)
    (fun () ->
      (try
         let rec loop () =
           match input_line script with
           | exception End_of_file -> ()
           | l when String.trim l = "" -> loop ()
           | l ->
             output_string oc l;
             output_char oc '\n';
             flush oc;
             (match input_line ic with
             | resp -> print_endline resp
             | exception End_of_file ->
               prerr_endline "ppredict loadgen: server closed the connection mid-script";
               status := 1);
             if !status = 0 then loop ()
         in
         loop ()
       with Sys_error msg | Failure msg ->
         Printf.eprintf "ppredict loadgen: %s\n" msg;
         status := 1);
      !status)

(* -------------------------------------------------- synthetic corpus *)

type expect = Eok | Eerr | Eany

(* a case is the request object minus its id (inserted per send) *)
type case = { fields : (string * Json.t) list; expect : expect }

let flags kvs = ("flags", Json.Obj kvs)

(* compare insists on exactly one unit per source; a cheap textual probe
   (counting top-level subroutines) is enough to keep multi-unit samples
   out of compare pairs and give them an interprocedural predict instead *)
let unit_count path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let n = ref 0 in
      (try
         while true do
           let l = input_line ic in
           if String.length l >= 10 && String.sub l 0 10 = "subroutine" then incr n
         done
       with End_of_file -> ());
      !n)

let corpus ~samples =
  let files =
    Sys.readdir samples |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".pf")
    |> List.sort compare
    |> List.map (Filename.concat samples)
  in
  if files = [] then
    failwith (Printf.sprintf "no *.pf samples under %S" samples);
  let single, multi = List.partition (fun f -> unit_count f <= 1) files in
  let q verb f extra =
    { fields = [ ("verb", Json.String verb); ("file", Json.String f) ] @ extra;
      expect = Eok }
  in
  let compare_pairs =
    match single with
    | a :: b :: _ ->
      [ { fields =
            [ ("verb", Json.String "compare"); ("file", Json.String a);
              ("file2", Json.String b) ];
          expect = Eok } ]
    | _ -> []
  in
  let hot =
    List.concat_map
      (fun f ->
        [ q "predict" f [];
          q "predict" f [ flags [ ("memory", Json.Bool true) ] ];
          q "bounds" f [];
          q "ranges" f [ flags [ ("json", Json.Bool true) ] ];
          q "lint" f [] ])
      files
    @ List.map (fun f -> q "predict" f [ flags [ ("interproc", Json.Bool true) ] ]) multi
    @ compare_pairs
  in
  (Array.of_list hot, Array.of_list files)

let raw_malformed =
  [| "{"; "[]"; "{\"verb\":\"frobnicate\"}"; "{\"verb\":\"predict\"}";
     "{\"v\":99,\"verb\":\"ping\"}" |]

(* ------------------------------------------------------ the storm *)

type tally = {
  mutable sent : int;
  mutable responses : int;
  mutable ok : int;
  mutable expected_errors : int;
  mutable unexpected_errors : int;
  mutable overloaded : int;
  mutable deadline : int;
  mutable out_of_order : int;
  mutable transport_errors : int;
  mutable first_unexpected : string option;
  mutable latencies : float list list;  (** per-segment latency batches, us *)
}

let new_tally () =
  { sent = 0; responses = 0; ok = 0; expected_errors = 0; unexpected_errors = 0;
    overloaded = 0; deadline = 0; out_of_order = 0; transport_errors = 0;
    first_unexpected = None; latencies = [] }

let merge_into ~lock total t =
  Mutex.protect lock (fun () ->
      total.sent <- total.sent + t.sent;
      total.responses <- total.responses + t.responses;
      total.ok <- total.ok + t.ok;
      total.expected_errors <- total.expected_errors + t.expected_errors;
      total.unexpected_errors <- total.unexpected_errors + t.unexpected_errors;
      total.overloaded <- total.overloaded + t.overloaded;
      total.deadline <- total.deadline + t.deadline;
      total.out_of_order <- total.out_of_order + t.out_of_order;
      total.transport_errors <- total.transport_errors + t.transport_errors;
      (match (total.first_unexpected, t.first_unexpected) with
      | None, Some _ -> total.first_unexpected <- t.first_unexpected
      | _ -> ());
      total.latencies <- t.latencies @ total.latencies)

let classify tally ~expect ~expected_id ~request line =
  tally.responses <- tally.responses + 1;
  match Json.of_string line with
  | exception _ ->
    tally.unexpected_errors <- tally.unexpected_errors + 1;
    if tally.first_unexpected = None then
      tally.first_unexpected <- Some ("unparsable response: " ^ line)
  | j ->
    (match Json.member "id" j with
    | Some (Json.String rid) when rid = expected_id -> ()
    | _ -> tally.out_of_order <- tally.out_of_order + 1);
    (match Json.member "error" j with
    | None -> (
      match expect with
      | Eok | Eany -> tally.ok <- tally.ok + 1
      | Eerr ->
        tally.unexpected_errors <- tally.unexpected_errors + 1;
        if tally.first_unexpected = None then
          tally.first_unexpected <-
            Some ("ok where error expected: " ^ line ^ " <- " ^ request))
    | Some e -> (
      match Option.bind (Json.member "code" e) Json.to_string_opt with
      | Some "overloaded" -> tally.overloaded <- tally.overloaded + 1
      | Some "deadline_exceeded" -> tally.deadline <- tally.deadline + 1
      | Some _ when expect = Eerr || expect = Eany ->
        tally.expected_errors <- tally.expected_errors + 1
      | _ ->
        tally.unexpected_errors <- tally.unexpected_errors + 1;
        if tally.first_unexpected = None then
          tally.first_unexpected <-
            Some ("unexpected error: " ^ line ^ " <- " ^ request)))

(* one request drawn from the mix; returns (line-sans-newline, expect) *)
let draw rng ~hot ~files ~id =
  let case fields expect =
    (Json.to_string (Json.Obj (("id", Json.String id) :: fields)), expect)
  in
  let pick arr = arr.(Random.State.int rng (Array.length arr)) in
  let r = Random.State.int rng 100 in
  if r < 45 then
    (* hot: repeat queries, exercising the shared result cache *)
    let c = pick hot in
    case c.fields c.expect
  else if r < 80 then
    (* cold: same kernel, fresh eval binding — misses the result cache,
       hits the home shard's warm incremental predictor *)
    let f = pick files in
    let k = Random.State.int rng 1_000_000 in
    case
      [ ("verb", Json.String "predict"); ("file", Json.String f);
        flags [ ("eval", Json.List [ Json.String (Printf.sprintf "N=%d" k) ]) ] ]
      Eok
  else if r < 88 then
    (* control-plane: affinity-free traffic, stealable under ws *)
    case [ ("verb", Json.String (if r land 1 = 0 then "ping" else "stats")) ] Eok
  else if r < 94 then
    (* deadline churn: near-zero budgets race the queue; rejected-late and
       finished-in-time are both correct outcomes *)
    let f = pick files in
    case
      [ ("verb", Json.String "predict"); ("file", Json.String f);
        ("deadline_ms", Json.Float (if Random.State.bool rng then 0.001 else 10_000.)) ]
      Eany
  else
    (* malformed: the server must answer with a structured error, not die.
       The raw line carries no id, so skip the id check for these *)
    (raw_malformed.(Random.State.int rng (Array.length raw_malformed)), Eerr)

let run_connection target ~hot ~files ~seed ~conn_idx ~count ~window tally =
  let rng = Random.State.make [| seed; conn_idx |] in
  let segment = 4096 in
  let done_ = ref 0 in
  while !done_ < count do
    let seg = min segment (count - !done_) in
    match connect_retry target with
    | exception _ ->
      tally.transport_errors <- tally.transport_errors + 1;
      done_ := count
    | fd ->
      let ic = Unix.in_channel_of_descr fd in
      let oc = Unix.out_channel_of_descr (Unix.dup fd) in
      let outstanding = Queue.create () in
      let lats = ref [] in
      let sent = ref 0 in
      let received = ref 0 in
      (try
         while !received < seg do
           if !sent < seg && Queue.length outstanding < window then (
             let id = Printf.sprintf "c%d-%d" conn_idx (!done_ + !sent) in
             let line, expect = draw rng ~hot ~files ~id in
             let expect_id = if expect = Eerr then "" else id in
             output_string oc line;
             output_char oc '\n';
             flush oc;
             tally.sent <- tally.sent + 1;
             incr sent;
             Queue.push (expect_id, expect, Unix.gettimeofday (), line) outstanding)
           else
             match input_line ic with
             | exception End_of_file -> raise Exit
             | resp ->
               let expected_id, expect, t0, request = Queue.pop outstanding in
               lats := (Unix.gettimeofday () -. t0) *. 1e6 :: !lats;
               if expected_id = "" then (
                 (* id-less malformed request: the slot still consumes one
                    response (exactly-once), but all we require of it is a
                    structured error *)
                 tally.responses <- tally.responses + 1;
                 match Json.of_string resp with
                 | exception _ ->
                   tally.unexpected_errors <- tally.unexpected_errors + 1
                 | j -> (
                   match Json.member "error" j with
                   | Some _ -> tally.expected_errors <- tally.expected_errors + 1
                   | None ->
                     tally.unexpected_errors <- tally.unexpected_errors + 1))
               else classify tally ~expect ~expected_id ~request resp;
               incr received
         done
       with
      | Exit | Sys_error _ | Unix.Unix_error _ ->
        (* connection died with responses outstanding *)
        tally.transport_errors <-
          tally.transport_errors + (!sent - !received)
      | Json.Parse_error _ -> tally.unexpected_errors <- tally.unexpected_errors + 1);
      tally.latencies <- !lats :: tally.latencies;
      (try flush oc with Sys_error _ -> ());
      close_in_noerr ic;
      close_out_noerr oc;
      done_ := !done_ + seg
  done

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(min (n - 1) (int_of_float (p *. float_of_int (n - 1) +. 0.5)))

let run_load target ~requests ~connections ~window ~seed ~samples ~json () =
  if requests < 1 || connections < 1 || window < 1 then
    failwith "loadgen: requests, connections and window must all be >= 1";
  let hot, files = corpus ~samples in
  let total = new_tally () in
  let lock = Mutex.create () in
  let t_start = Unix.gettimeofday () in
  let threads =
    List.init connections (fun i ->
        let count =
          (requests / connections) + if i < requests mod connections then 1 else 0
        in
        Thread.create
          (fun () ->
            let tally = new_tally () in
            run_connection target ~hot ~files ~seed ~conn_idx:i ~count ~window tally;
            merge_into ~lock total tally)
          ())
  in
  List.iter Thread.join threads;
  let wall = Unix.gettimeofday () -. t_start in
  let lats =
    total.latencies |> List.concat |> Array.of_list
  in
  Array.sort compare lats;
  let ok_exit =
    total.unexpected_errors = 0 && total.out_of_order = 0
    && total.transport_errors = 0
    && total.responses = total.sent
  in
  let summary =
    Json.Obj
      [ ("requests", Json.Int requests);
        ("sent", Json.Int total.sent);
        ("responses", Json.Int total.responses);
        ("ok", Json.Int total.ok);
        ("expected_errors", Json.Int total.expected_errors);
        ("unexpected_errors", Json.Int total.unexpected_errors);
        ("overloaded", Json.Int total.overloaded);
        ("deadline", Json.Int total.deadline);
        ("out_of_order", Json.Int total.out_of_order);
        ("transport_errors", Json.Int total.transport_errors);
        ("connections", Json.Int connections);
        ("window", Json.Int window);
        ("wall_s", Json.Float wall);
        ("rps", Json.Float (float_of_int total.responses /. max wall 1e-9));
        ("p50_us", Json.Float (percentile lats 0.50));
        ("p90_us", Json.Float (percentile lats 0.90));
        ("p99_us", Json.Float (percentile lats 0.99));
        ("max_us", Json.Float (percentile lats 1.0));
        ("pass", Json.Bool ok_exit) ]
  in
  print_endline (Json.to_string summary);
  if not json then
    Printf.eprintf
      "loadgen: %d/%d answered in %.2fs (%.0f req/s), p99 %.0fus%s\n%!"
      total.responses total.sent wall
      (float_of_int total.responses /. max wall 1e-9)
      (percentile lats 0.99)
      (match total.first_unexpected with
      | Some s -> "\n  first unexpected: " ^ s
      | None -> "");
  if ok_exit then 0 else 1
