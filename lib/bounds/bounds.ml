open Pperf_num
open Pperf_symbolic
open Pperf_lang
open Pperf_sched
module Translator = Pperf_translate.Translator
module Memcost = Pperf_memcost.Memcost
module Diagnostic = Pperf_lint.Diagnostic
module Obs = Pperf_obs.Obs
module SSet = Analysis.SSet

let sp_bounds = Obs.span "bounds"
let c_nests = Obs.counter "bounds.nests"
let c_chains = Obs.counter "bounds.lcd_chains"
let c_disagreements = Obs.counter "bounds.disagreements"
let c_compute = Obs.counter "bounds.compute_bound"
let c_latency = Obs.counter "bounds.latency_bound"
let c_memory = Obs.counter "bounds.memory_bound"

type carried = {
  carray : string;
  clevel : string;
  cdistance : int;
  cexact : bool;
  cratio : Rat.t;
}

type classification = Compute_bound | Latency_bound | Memory_bound

type nest = {
  at : Srcloc.t;
  loop_vars : string list;
  trips : Poly.t;
  bin_per_iter : int;
  bin_once : int;
  critical_path : int;
  lcd_per_iter : Rat.t;
  carried : carried list;
  bin_bound : Poly.t;
  lcd_bound : Poly.t;
  mem_bound : Poly.t option;
  classification : classification;
  disagreement : Diagnostic.t option;
}

type routine = { rname : string; nests : nest list; diagnostics : Diagnostic.t list }

let classification_string = function
  | Compute_bound -> "compute-bound"
  | Latency_bound -> "LCD-bound"
  | Memory_bound -> "memory-bound"

(* ---------------------------------------------------- carried distances *)

(* distances farther out than this contribute < 1 cycle/iter for any
   realistic latency and would blow up the lifted DAG *)
let max_distance = 16

(* the coefficient of [v]^1 when [p] is affine in [v] and the coefficient
   is a constant *)
let coeff1 v p =
  if Poly.degree_in v p <> 1 then None
  else
    match List.assoc_opt 1 (Poly.coeffs_in v p) with
    | Some c -> Poly.to_const c
    | None -> None

(* The iteration distance of a carried dependence at loop [lvar]: the
   source writes a*i + c_s, the destination reads a*i + c_d, so the read
   at iteration i touches what was written d = (c_s - c_d)/a iterations
   earlier. Solved per subscript; all subscripts that vary in [lvar] must
   agree, else the distance is unknown. *)
let distance_of ~lvar (dep : Depend.dependence) =
  if List.length dep.src.Analysis.subs <> List.length dep.dst.Analysis.subs then None
  else (
    let candidates =
      List.filter_map
        (fun (es, ed) ->
          match (Sym_expr.to_poly es, Sym_expr.to_poly ed) with
          | Some ps, Some pd
            when Poly.degree_in lvar ps = 1 || Poly.degree_in lvar pd = 1 -> (
            match (coeff1 lvar ps, coeff1 lvar pd) with
            | Some a, Some b when Rat.equal a b && not (Rat.is_zero a) ->
              let diff = Poly.sub ps pd in
              if Poly.is_const diff then (
                let d = Rat.div (Poly.constant_term diff) a in
                if Rat.is_integer d then Rat.to_int d else None)
              else None
            | _ -> None)
          | _ -> None)
        (List.combine dep.src.Analysis.subs dep.dst.Analysis.subs)
    in
    match candidates with
    | d :: rest when List.for_all (fun x -> x = d) rest -> Some d
    | _ -> None)

(* the first loop level (outermost first) whose direction is not Eq *)
let carrying_level directions =
  let rec go i = function
    | [] -> None
    | Depend.Eq :: rest -> go (i + 1) rest
    | (Depend.Lt | Depend.Gt) :: _ -> Some i
  in
  go 0 directions

(* ------------------------------------------------ iteration-crossing DAG *)

(* store/load DAG nodes of [array], found by the translator's label
   conventions ("store <a>(...)" / "load <a>[<subs>]") *)
let nodes_with_prefix dag prefix =
  let out = ref [] in
  for i = Dag.length dag - 1 downto 0 do
    let n = Dag.node dag i in
    if String.length n.Dag.label >= String.length prefix
       && String.sub n.Dag.label 0 (String.length prefix) = prefix
    then out := i :: !out
  done;
  !out

(* [body] replicated [k] times with carry edges: each (prod, cons, dist)
   adds a dependence from copy t's [cons] back to copy (t - dist)'s
   [prod] — Dag.repeat generalized to distances > 1 *)
let lift body carries k =
  let nb = Dag.length body in
  let arr =
    Array.init (k * nb) (fun idx ->
        let t = idx / nb and i = idx mod nb in
        let n = Dag.node body i in
        let deps = List.map (fun d -> d + (t * nb)) n.Dag.deps in
        let deps =
          List.fold_left
            (fun acc (prod, cons, dist) ->
              if cons = i && t >= dist then (prod + ((t - dist) * nb)) :: acc else acc)
            deps carries
        in
        (n.Dag.op, deps, n.Dag.label))
  in
  Dag.make arr

(* critical-path slope of the lifted DAG: cycles per iteration once the
   transient has died out. Warm up past the longest distance, then measure
   over a window that is a multiple of every distance <= max_distance. *)
let chain_ratio body carries =
  match carries with
  | [] -> Rat.zero
  | _ ->
    let dmax = List.fold_left (fun acc (_, _, d) -> max acc d) 1 carries in
    let k1 = 4 * dmax and k2 = 8 * dmax in
    let cp1 = Dag.critical_path (lift body carries k1) in
    let cp2 = Dag.critical_path (lift body carries k2) in
    Rat.max Rat.zero (Rat.of_ints (cp2 - cp1) (k2 - k1))

(* ------------------------------------------------------------- per nest *)

let trips_of loops =
  List.fold_left
    (fun acc (l : Analysis.loop_ctx) ->
      let t =
        match Sym_expr.trip_count ~lo:l.llo ~hi:l.lhi ~step:l.lstep with
        | Some p -> p
        | None -> Poly.var ("trip_" ^ l.lvar)
      in
      Poly.mul acc t)
    Poly.one loops

let wrap_nest (loops : Analysis.loop_ctx list) body =
  List.fold_right
    (fun (l : Analysis.loop_ctx) inner ->
      [ Ast.mk (Ast.Do { Ast.var = l.lvar; lo = l.llo; hi = l.lhi; step = l.lstep; body = inner }) ])
    loops body

(* the carried flow dependences of the nest, with resolved distances *)
let carried_chains ~(loops : Analysis.loop_ctx list) body =
  let deps = Depend.dependences_in (wrap_nest loops body) in
  List.filter_map
    (fun (dep : Depend.dependence) ->
      if dep.kind <> Depend.Flow then None
      else
        match carrying_level dep.directions with
        | None -> None
        | Some lvl -> (
          match List.nth_opt loops lvl with
          | None -> None
          | Some l -> (
            let solved = distance_of ~lvar:l.Analysis.lvar dep in
            match solved with
            | Some d when d <= 0 || d > max_distance -> None
            | Some d -> Some (dep.src.Analysis.array, l.Analysis.lvar, d, true)
            | None ->
              (* conservative: an unresolved carried flow chain is
                 assumed to serialize consecutive iterations *)
              Some (dep.src.Analysis.array, l.Analysis.lvar, 1, false))))
    deps
  (* one chain per (array, level, distance): uniformly generated pairs
     produce duplicate dependences *)
  |> List.sort_uniq compare

let point bindings v =
  match List.assoc_opt v bindings with Some f -> f | None -> 256.0

let pp_rat fmt r =
  if Rat.is_integer r then Format.fprintf fmt "%s" (Rat.to_string r)
  else Format.fprintf fmt "%s (~%.1f)" (Rat.to_string r) (Rat.to_float r)

let rat_string r = Format.asprintf "%a" pp_rat r

let analyze_nest ~machine ~include_memory ~bindings ~symtab ~invariants
    (loops, body) =
  match body with
  | [] -> None
  | (first : Ast.stmt) :: _ -> (
    let loop_vars = List.map (fun (l : Analysis.loop_ctx) -> l.lvar) loops in
    match
      Translator.translate_block ~machine ~symtab ~loop_vars ~invariants body
    with
    | exception _ -> None
    | res ->
      Obs.incr c_nests;
      (* bin-packing: per-iteration steady state (drop the body plus loop
         control twice, take the increment — the aggregate's coefficient)
         and the standalone one-iteration cost *)
      let dag =
        Dag.concat res.Translator.body (Translator.loop_overhead_dag ~machine ())
      in
      let bins = Bins.create machine in
      let s1 = Bins.drop_dag bins dag in
      let s2 = Bins.drop_dag bins dag in
      let bin_once = s1.cost in
      let bin_per_iter = max 1 (s2.cost - s1.cost) in
      let critical_path = Dag.critical_path res.Translator.body in
      (* LCD: carry edges from each store of the carried array to each of
         its loads, at the dependence distance *)
      let chains = carried_chains ~loops body in
      let carry_edges (a, _, d, _) =
        let stores = nodes_with_prefix res.Translator.body ("store " ^ a ^ "(") in
        let loads = nodes_with_prefix res.Translator.body ("load " ^ a ^ "[") in
        List.concat_map (fun s -> List.map (fun l -> (s, l, d)) loads) stores
      in
      let carried =
        List.filter_map
          (fun ((a, lvl, d, exact) as chain) ->
            match carry_edges chain with
            | [] -> None
            | edges ->
              Obs.incr c_chains;
              Some
                {
                  carray = a;
                  clevel = lvl;
                  cdistance = d;
                  cexact = exact;
                  cratio = chain_ratio res.Translator.body edges;
                })
          chains
      in
      let all_edges = List.concat_map carry_edges chains in
      let lcd_per_iter = chain_ratio res.Translator.body all_edges in
      let trips = trips_of loops in
      let bin_bound = Poly.scale_int bin_per_iter trips in
      let lcd_bound = Poly.scale lcd_per_iter trips in
      let mem_bound =
        if include_memory then
          Some (Memcost.nest_cost ~machine ~symtab loops body)
        else None
      in
      (* classify at a concrete point: the bound expressions are
         polynomials, so "which is largest" needs values *)
      let ev p = Poly.eval_float (point bindings) p in
      let b_bin = ev bin_bound and b_lcd = ev lcd_bound in
      let b_mem = Option.map ev mem_bound in
      let classification =
        match b_mem with
        | Some m when m > b_bin && m > b_lcd -> Memory_bound
        | _ when b_lcd > b_bin -> Latency_bound
        | _ -> Compute_bound
      in
      (match classification with
       | Compute_bound -> Obs.incr c_compute
       | Latency_bound -> Obs.incr c_latency
       | Memory_bound -> Obs.incr c_memory);
      let disagreement =
        match classification with
        | Compute_bound -> None
        | Latency_bound ->
          Obs.incr c_disagreements;
          Some
            (Diagnostic.make Diagnostic.Precision ~check:"bound-disagreement"
               ~loc:first.Ast.loc
               (Printf.sprintf
                  "LCD bound %s (%s cycles/iter through the carried chain%s) exceeds \
                   the bin-packing bound %s (%d cycles/iter); the schedule-packing \
                   model is optimistic for this nest"
                  (Poly.to_string lcd_bound) (rat_string lcd_per_iter)
                  (match carried with
                   | { carray; clevel; cdistance; _ } :: _ ->
                     Printf.sprintf " on %s, distance %d at loop %s" carray cdistance
                       clevel
                   | [] -> "")
                  (Poly.to_string bin_bound) bin_per_iter))
        | Memory_bound ->
          Obs.incr c_disagreements;
          let mem = Option.get mem_bound in
          Some
            (Diagnostic.make Diagnostic.Precision ~check:"bound-disagreement"
               ~loc:first.Ast.loc
               (Printf.sprintf
                  "memory bound %s exceeds the bin-packing bound %s (%.0f vs %.0f \
                   cycles at the evaluation point); the nest streams more lines than \
                   the schedule hides"
                  (Poly.to_string mem) (Poly.to_string bin_bound)
                  (Option.get b_mem) b_bin))
      in
      Some
        {
          at = first.Ast.loc;
          loop_vars;
          trips;
          bin_per_iter;
          bin_once;
          critical_path;
          lcd_per_iter;
          carried;
          bin_bound;
          lcd_bound;
          mem_bound;
          classification;
          disagreement;
        })

let analyze_stmts ~machine ?(include_memory = false) ?(bindings = []) ~symtab body =
  Obs.time sp_bounds @@ fun () ->
  let assigned = Analysis.assigned_vars body in
  let invariants =
    SSet.diff (SSet.union (Analysis.used_vars body) assigned) assigned
  in
  let nests =
    List.filter_map
      (analyze_nest ~machine ~include_memory ~bindings ~symtab ~invariants)
      (Analysis.innermost_bodies body)
  in
  (nests, List.filter_map (fun n -> n.disagreement) nests)

let analyze ~machine ?include_memory ?bindings (checked : Typecheck.checked) =
  let nests, diagnostics =
    analyze_stmts ~machine ?include_memory ?bindings ~symtab:checked.symbols
      checked.routine.Ast.body
  in
  { rname = checked.routine.Ast.rname; nests; diagnostics }

let steady_total r =
  List.fold_left
    (fun acc n ->
      let rate_bound =
        (* valid for every positive trip count: both totals are the same
           trips polynomial scaled by their per-iteration rate *)
        if Rat.compare n.lcd_per_iter (Rat.of_int n.bin_per_iter) > 0 then n.lcd_bound
        else n.bin_bound
      in
      let acc = Poly.add acc rate_bound in
      match n.mem_bound with Some m -> Poly.add acc m | None -> acc)
    Poly.zero r.nests
