(** The three-bound model: bin-packing vs critical-path/LCD vs memory.

    The paper's Tetris model (§2) yields one throughput-style bound per
    innermost loop body. Following OSACA's critical-path and loop-carried
    dependency analysis and Kerncraft's cache-model integration, this pass
    computes, per loop nest:

    - the {e bin-packing} bound: the steady-state per-iteration cost of
      dropping the body (plus loop control) into the functional bins — the
      paper's prediction;
    - the {e critical path} through the body's dependence DAG under the
      result latencies — a lower bound on one iteration in isolation;
    - the {e LCD} bound: the maximum latency-to-distance ratio over the
      loop-carried flow dependences, measured as the critical-path slope
      of an iteration-crossing DAG (the body replicated with store→load
      carry edges at the dependence distance) — what serialization through
      the carried chain costs per iteration at steady state;
    - the {e memory} bound: the cache-line fill cycles of
      {!Pperf_memcost.Memcost.nest_cost}, folded into the same expression
      rather than reported beside it.

    Each bound is totalled symbolically over the (possibly symbolic) trip
    counts; the steady-state prediction for the nest is their max, and a
    [bound-disagreement] precision event is reported when a latency or
    memory bound crosses above the bin-packing bound — the places where
    the paper's model is provably optimistic. *)

open Pperf_num
open Pperf_symbolic
open Pperf_lang
open Pperf_machine

type carried = {
  carray : string;  (** array carrying the dependence *)
  clevel : string;  (** loop variable of the carrying level *)
  cdistance : int;  (** iteration distance at that level *)
  cexact : bool;  (** distance solved from the subscripts (vs assumed 1) *)
  cratio : Rat.t;  (** chain cycles per iteration: latency / distance *)
}

type classification = Compute_bound | Latency_bound | Memory_bound

type nest = {
  at : Srcloc.t;
  loop_vars : string list;  (** outermost first *)
  trips : Poly.t;  (** product of the nest's trip counts *)
  bin_per_iter : int;  (** steady-state Tetris cycles per iteration *)
  bin_once : int;  (** one iteration dropped alone (>= critical path) *)
  critical_path : int;  (** longest latency chain inside one iteration *)
  lcd_per_iter : Rat.t;  (** max carried-chain ratio; zero without chains *)
  carried : carried list;  (** the carried flow chains found *)
  bin_bound : Poly.t;  (** bin_per_iter * trips *)
  lcd_bound : Poly.t;  (** lcd_per_iter * trips *)
  mem_bound : Poly.t option;  (** cache cycles, when memory is included *)
  classification : classification;
  disagreement : Pperf_lint.Diagnostic.t option;
}

type routine = {
  rname : string;
  nests : nest list;
  diagnostics : Pperf_lint.Diagnostic.t list;
      (** every [bound-disagreement] event, in nest order *)
}

val analyze_stmts :
  machine:Machine.t ->
  ?include_memory:bool ->
  ?bindings:(string * float) list ->
  symtab:Typecheck.symtab ->
  Ast.stmt list ->
  nest list * Pperf_lint.Diagnostic.t list
(** Analyze every innermost loop nest of the fragment. [bindings] supply
    concrete values for the classification comparison; unbound unknowns
    default to 256. *)

val analyze :
  machine:Machine.t ->
  ?include_memory:bool ->
  ?bindings:(string * float) list ->
  Typecheck.checked ->
  routine

val steady_total : routine -> Poly.t
(** The routine's steady-state performance expression under the
    three-bound model: per nest, the larger of the bin-packing and LCD
    rates times the trip counts, plus the memory bound when present — an
    ECM-style sum used by [compare] to decide variants the bin expression
    alone cannot. *)

val classification_string : classification -> string
