(* Exact rationals, normalized: den > 0, gcd(num, den) = 1. *)

module B = Bigint

type t = { num : B.t; den : B.t }

let normalize num den =
  if B.is_zero den then raise Division_by_zero;
  if B.is_zero num then { num = B.zero; den = B.one }
  else (
    let num, den = if B.sign den < 0 then (B.neg num, B.neg den) else (num, den) in
    let g = B.gcd num den in
    if B.is_one g then { num; den } else { num = B.div num g; den = B.div den g })

let make num den = normalize num den
let of_bigint n = { num = n; den = B.one }
let of_int i = of_bigint (B.of_int i)
let of_ints a b = normalize (B.of_int a) (B.of_int b)

let zero = of_int 0
let one = of_int 1
let minus_one = of_int (-1)
let two = of_int 2
let half = of_ints 1 2

let num t = t.num
let den t = t.den
let sign t = B.sign t.num
let is_zero t = B.is_zero t.num
let is_integer t = B.is_one t.den

let equal a b = B.equal a.num b.num && B.equal a.den b.den

let compare a b =
  if B.is_one a.den && B.is_one b.den then B.compare a.num b.num
  else
    (* a.num/a.den ? b.num/b.den  <=>  a.num*b.den ? b.num*a.den (dens > 0) *)
    B.compare (B.mul a.num b.den) (B.mul b.num a.den)

let hash t = Hashtbl.hash (B.hash t.num, B.hash t.den)
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let neg t = { t with num = B.neg t.num }
let abs t = { t with num = B.abs t.num }

(* Most rationals flowing through the symbolic layer are integers
   (den = 1): skip the cross-multiply and gcd for that common case. *)
let add a b =
  if B.is_one a.den && B.is_one b.den then { num = B.add a.num b.num; den = B.one }
  else normalize (B.add (B.mul a.num b.den) (B.mul b.num a.den)) (B.mul a.den b.den)

let sub a b = add a (neg b)

let mul a b =
  if B.is_one a.den && B.is_one b.den then { num = B.mul a.num b.num; den = B.one }
  else normalize (B.mul a.num b.num) (B.mul a.den b.den)

let inv t =
  if is_zero t then raise Division_by_zero;
  if B.sign t.num < 0 then { num = B.neg t.den; den = B.neg t.num }
  else { num = t.den; den = t.num }

let div a b = mul a (inv b)

let pow t n =
  if n >= 0 then { num = B.pow t.num n; den = B.pow t.den n }
  else inv { num = B.pow t.num (-n); den = B.pow t.den (-n) }

let floor t = fst (B.ediv t.num t.den)

let ceil t =
  let q, r = B.ediv t.num t.den in
  if B.is_zero r then q else B.succ q

let round t =
  (* half away from zero *)
  let doubled = { num = B.mul B.two (B.abs t.num); den = t.den } in
  let fl = floor { num = B.add doubled.num t.den; den = B.mul B.two t.den } in
  if sign t < 0 then B.neg fl else fl

let mediant a b = normalize (B.add a.num b.num) (B.add a.den b.den)

let to_float t = B.to_float t.num /. B.to_float t.den

let to_int t = if is_integer t then B.to_int t.num else None

let of_float f =
  if not (Float.is_finite f) then invalid_arg "Rat.of_float: not finite";
  let m, e = Float.frexp f in
  (* f = m * 2^e with 0.5 <= |m| < 1; m * 2^53 is integral *)
  let mi = Int64.to_int (Int64.of_float (m *. 9007199254740992.0 (* 2^53 *))) in
  let e = e - 53 in
  let n = B.of_int mi in
  if e >= 0 then of_bigint (B.shift_left n e)
  else normalize n (B.shift_left B.one (-e))

let of_float_approx ?(tol = 1e-9) f =
  if not (Float.is_finite f) then invalid_arg "Rat.of_float_approx: not finite";
  if Float.abs f < 1e-300 then zero
  else if Float.abs f >= 9007199254740992.0 (* 2^53 *) then
    (* every such float is an exact integer; [of_float] is both exact and
       safe where [int_of_float] is unspecified (|f| ≳ 4.6e18) *)
    of_float f
  else (
    let neg_in = f < 0.0 in
    let x = Float.abs f in
    (* continued-fraction convergents h_k / k_k until within tolerance.
       Partial quotients fit native ints here (a_0 <= x < 2^53), but the
       convergent numerators do not: accumulate them in Bigint so
       [ai * h1 + h2] cannot silently wrap. *)
    let rec go a (h1, k1) (h2, k2) depth =
      let ai = int_of_float a in
      let h = B.add (B.mul_int h1 ai) h2 and k = B.add (B.mul_int k1 ai) k2 in
      let approx = B.to_float h /. B.to_float k in
      if Float.abs (approx -. x) <= tol *. x || depth > 40 then make h k
      else (
        let frac = a -. float_of_int ai in
        if frac <= 1e-12 then make h k
        else go (1.0 /. frac) (h, k) (h1, k1) (depth + 1))
    in
    let r = go x (B.one, B.zero) (B.zero, B.one) 0 in
    if neg_in then neg r else r)

let to_string t =
  if is_integer t then B.to_string t.num
  else B.to_string t.num ^ "/" ^ B.to_string t.den

let of_string s =
  match String.index_opt s '/' with
  | Some i ->
    let n = B.of_string (String.sub s 0 i) in
    let d = B.of_string (String.sub s (i + 1) (String.length s - i - 1)) in
    normalize n d
  | None ->
    (match String.index_opt s '.' with
     | None -> of_bigint (B.of_string s)
     | Some i ->
       let int_part = String.sub s 0 i in
       let frac = String.sub s (i + 1) (String.length s - i - 1) in
       let digits = String.length frac in
       let sign = if String.length int_part > 0 && int_part.[0] = '-' then -1 else 1 in
       let ip = if int_part = "" || int_part = "-" || int_part = "+" then B.zero else B.of_string int_part in
       let fp = if frac = "" then B.zero else B.of_string frac in
       let scale = B.pow B.ten digits in
       let total = B.add (B.mul (B.abs ip) scale) fp in
       let total = if sign < 0 then B.neg total else total in
       normalize total scale)

let pp fmt t = Format.pp_print_string fmt (to_string t)

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( ~- ) = neg
  let ( = ) = equal
  let ( <> ) a b = not (equal a b)
  let ( < ) a b = compare a b < 0
  let ( <= ) a b = compare a b <= 0
  let ( > ) a b = compare a b > 0
  let ( >= ) a b = compare a b >= 0
end
