(* Arbitrary-precision integers in sign-magnitude form.

   Magnitudes are little-endian arrays of base-2^24 digits. With 63-bit
   native ints, a digit product is < 2^48 and a full schoolbook row
   accumulation stays well below 2^62, so no intermediate overflows. *)

let base_bits = 24
let base = 1 lsl base_bits
let base_mask = base - 1

type t = { sign : int; (* -1, 0, 1 *) mag : int array (* canonical: no leading zeros *) }

let zero = { sign = 0; mag = [||] }

(* ---- magnitude helpers (arrays of digits, little-endian) ---- *)

let mag_normalize a =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do decr n done;
  if !n = Array.length a then a else Array.sub a 0 !n

let mag_compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else (
    let rec go i = if i < 0 then 0 else if a.(i) <> b.(i) then compare a.(i) b.(i) else go (i - 1) in
    go (la - 1))

let mag_add a b =
  let la = Array.length a and lb = Array.length b in
  let lmax = if la > lb then la else lb in
  let r = Array.make (lmax + 1) 0 in
  let carry = ref 0 in
  for i = 0 to lmax - 1 do
    let da = if i < la then a.(i) else 0 in
    let db = if i < lb then b.(i) else 0 in
    let s = da + db + !carry in
    r.(i) <- s land base_mask;
    carry := s lsr base_bits
  done;
  r.(lmax) <- !carry;
  mag_normalize r

(* precondition: a >= b *)
let mag_sub a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let db = if i < lb then b.(i) else 0 in
    let s = a.(i) - db - !borrow in
    if s < 0 then (
      r.(i) <- s + base;
      borrow := 1)
    else (
      r.(i) <- s;
      borrow := 0)
  done;
  assert (!borrow = 0);
  mag_normalize r

let mag_mul a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else (
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      if ai <> 0 then (
        for j = 0 to lb - 1 do
          let s = r.(i + j) + (ai * b.(j)) + !carry in
          r.(i + j) <- s land base_mask;
          carry := s lsr base_bits
        done;
        let k = ref (i + lb) in
        while !carry <> 0 do
          let s = r.(!k) + !carry in
          r.(!k) <- s land base_mask;
          carry := s lsr base_bits;
          incr k
        done)
    done;
    mag_normalize r)

(* divide magnitude by small int d in (0, base); returns (quotient, remainder) *)
let mag_divmod_small a d =
  let la = Array.length a in
  let q = Array.make la 0 in
  let r = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!r lsl base_bits) lor a.(i) in
    q.(i) <- cur / d;
    r := cur mod d
  done;
  (mag_normalize q, !r)

let mag_shift_left_digits a k =
  if Array.length a = 0 then [||]
  else (
    let r = Array.make (Array.length a + k) 0 in
    Array.blit a 0 r k (Array.length a);
    r)

let mag_shift_left_bits a s =
  (* 0 <= s < base_bits *)
  if s = 0 then Array.copy a
  else (
    let la = Array.length a in
    let r = Array.make (la + 1) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let v = (a.(i) lsl s) lor !carry in
      r.(i) <- v land base_mask;
      carry := v lsr base_bits
    done;
    r.(la) <- !carry;
    mag_normalize r)

let mag_shift_right_bits a s =
  (* 0 <= s < base_bits *)
  if s = 0 then Array.copy a
  else (
    let la = Array.length a in
    let r = Array.make la 0 in
    for i = 0 to la - 1 do
      let hi = if i + 1 < la then a.(i + 1) else 0 in
      r.(i) <- (a.(i) lsr s) lor ((hi lsl (base_bits - s)) land base_mask)
    done;
    mag_normalize r)

(* Knuth algorithm D. Preconditions: |v| >= 2 digits, |u| >= |v|. *)
let mag_divmod_knuth u v =
  let n = Array.length v in
  (* normalize so that top digit of v >= base/2 *)
  let s =
    let top = v.(n - 1) in
    let rec go s = if top lsl s >= base / 2 then s else go (s + 1) in
    go 0
  in
  let v = mag_shift_left_bits v s in
  let u = mag_shift_left_bits u s in
  let n = Array.length v in
  (* pad u with one extra high digit *)
  let m = Array.length u - n in
  let u = Array.append u [| 0 |] in
  let q = Array.make (m + 1) 0 in
  let vn1 = v.(n - 1) in
  let vn2 = if n >= 2 then v.(n - 2) else 0 in
  for j = m downto 0 do
    let num = (u.(j + n) lsl base_bits) lor u.(j + n - 1) in
    let qhat = ref (num / vn1) in
    let rhat = ref (num mod vn1) in
    let continue_adjust = ref true in
    while !continue_adjust do
      if !qhat >= base || !qhat * vn2 > (!rhat lsl base_bits) lor u.(j + n - 2) then (
        decr qhat;
        rhat := !rhat + vn1;
        if !rhat >= base then continue_adjust := false)
      else continue_adjust := false
    done;
    (* multiply-subtract: u[j .. j+n] -= qhat * v *)
    let borrow = ref 0 in
    let carry = ref 0 in
    for i = 0 to n - 1 do
      let p = (!qhat * v.(i)) + !carry in
      carry := p lsr base_bits;
      let sub = u.(i + j) - (p land base_mask) - !borrow in
      if sub < 0 then (
        u.(i + j) <- sub + base;
        borrow := 1)
      else (
        u.(i + j) <- sub;
        borrow := 0)
    done;
    let sub = u.(j + n) - !carry - !borrow in
    if sub < 0 then (
      (* qhat was one too large: add back *)
      u.(j + n) <- sub + base;
      decr qhat;
      let carry2 = ref 0 in
      for i = 0 to n - 1 do
        let sum = u.(i + j) + v.(i) + !carry2 in
        u.(i + j) <- sum land base_mask;
        carry2 := sum lsr base_bits
      done;
      u.(j + n) <- (u.(j + n) + !carry2) land base_mask)
    else u.(j + n) <- sub;
    q.(j) <- !qhat
  done;
  let r = mag_shift_right_bits (mag_normalize (Array.sub u 0 n)) s in
  (mag_normalize q, r)

let mag_divmod u v =
  match Array.length v with
  | 0 -> raise Division_by_zero
  | 1 ->
    let q, r = mag_divmod_small u v.(0) in
    (q, if r = 0 then [||] else [| r |])
  | _ -> if mag_compare u v < 0 then ([||], Array.copy u) else mag_divmod_knuth u v

(* ---- signed interface ---- *)

let make sign mag =
  let mag = mag_normalize mag in
  if Array.length mag = 0 then zero else { sign; mag }

let one = { sign = 1; mag = [| 1 |] }
let two = { sign = 1; mag = [| 2 |] }
let minus_one = { sign = -1; mag = [| 1 |] }
let ten = { sign = 1; mag = [| 10 |] }

let sign t = t.sign
let is_zero t = t.sign = 0
let is_one t = t.sign = 1 && Array.length t.mag = 1 && t.mag.(0) = 1

let equal a b = a.sign = b.sign && mag_compare a.mag b.mag = 0

let compare a b =
  if a.sign <> b.sign then compare a.sign b.sign
  else if a.sign >= 0 then mag_compare a.mag b.mag
  else mag_compare b.mag a.mag

let hash t = Hashtbl.hash (t.sign, t.mag)
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let neg t = if t.sign = 0 then t else { t with sign = -t.sign }
let abs t = if t.sign < 0 then { t with sign = 1 } else t

let add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then { sign = a.sign; mag = mag_add a.mag b.mag }
  else (
    let c = mag_compare a.mag b.mag in
    if c = 0 then zero
    else if c > 0 then { sign = a.sign; mag = mag_sub a.mag b.mag }
    else { sign = b.sign; mag = mag_sub b.mag a.mag })

let sub a b = add a (neg b)
let succ a = add a one
let pred a = sub a one

let mul a b =
  if a.sign = 0 || b.sign = 0 then zero
  else { sign = a.sign * b.sign; mag = mag_mul a.mag b.mag }

let of_int i =
  if i = 0 then zero
  else (
    let rec digits v acc =
      if v = 0 then List.rev acc else digits (v lsr base_bits) ((v land base_mask) :: acc)
    in
    if i = min_int then neg (add { sign = 1; mag = Array.of_list (digits max_int []) } one)
    else (
      let sign = if i > 0 then 1 else -1 in
      { sign; mag = Array.of_list (digits (Stdlib.abs i) []) }))

let mul_int a i = mul a (of_int i)
let add_int a i = add a (of_int i)

let divmod a b =
  if b.sign = 0 then raise Division_by_zero
  else if a.sign = 0 then (zero, zero)
  else (
    let qm, rm = mag_divmod a.mag b.mag in
    let q = make (a.sign * b.sign) qm in
    let r = make a.sign rm in
    (q, r))

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let ediv a b =
  let q, r = divmod a b in
  if r.sign >= 0 then (q, r)
  else if b.sign > 0 then (pred q, add r b)
  else (succ q, sub r b)

let rec gcd a b =
  let a = abs a and b = abs b in
  if is_zero b then a else gcd b (rem a b)

let lcm a b = if is_zero a || is_zero b then zero else abs (div (mul a b) (gcd a b))

let pow x n =
  if n < 0 then invalid_arg "Bigint.pow: negative exponent";
  let rec go acc x n =
    if n = 0 then acc
    else if n land 1 = 1 then go (mul acc x) (mul x x) (n asr 1)
    else go acc (mul x x) (n asr 1)
  in
  go one x n

let shift_left t n =
  if n < 0 then invalid_arg "Bigint.shift_left";
  if t.sign = 0 then zero
  else (
    let digits = n / base_bits and bits = n mod base_bits in
    let m = mag_shift_left_bits (mag_shift_left_digits t.mag digits) bits in
    make t.sign m)

let shift_right t n =
  if n < 0 then invalid_arg "Bigint.shift_right";
  if t.sign = 0 then zero
  else (
    let digits = n / base_bits and bits = n mod base_bits in
    let la = Array.length t.mag in
    if digits >= la then (if t.sign > 0 then zero else minus_one)
    else (
      let m = mag_shift_right_bits (Array.sub t.mag digits (la - digits)) bits in
      let q = make t.sign m in
      if t.sign < 0 then (
        (* floor semantics for negatives: if any bits were shifted out, round down *)
        let shifted_back = shift_left q n in
        if equal shifted_back t then q else pred q)
      else q))

let num_bits t =
  let la = Array.length t.mag in
  if la = 0 then 0
  else (
    let top = t.mag.(la - 1) in
    let rec bits v acc = if v = 0 then acc else bits (v lsr 1) (acc + 1) in
    ((la - 1) * base_bits) + bits top 0)

let is_even t = t.sign = 0 || t.mag.(0) land 1 = 0
let is_odd t = not (is_even t)

let to_int t =
  if t.sign = 0 then Some 0
  else if num_bits t <= 62 then (
    let v = Array.fold_right (fun d acc -> (acc lsl base_bits) lor d) t.mag 0 in
    Some (if t.sign < 0 then -v else v))
  else if t.sign < 0 && equal t (of_int min_int) then Some min_int
  else None

let to_int_exn t =
  match to_int t with Some i -> i | None -> failwith "Bigint.to_int_exn: out of range"

let to_float t =
  let m = Array.fold_right (fun d acc -> (acc *. float_of_int base) +. float_of_int d) t.mag 0.0 in
  if t.sign < 0 then -.m else m

let to_string t =
  if t.sign = 0 then "0"
  else (
    let buf = Buffer.create 32 in
    let rec go m =
      if Array.length m = 0 then ()
      else (
        let q, r = mag_divmod_small m 1_000_000 in
        if Array.length q = 0 then Buffer.add_string buf (string_of_int r)
        else (
          go q;
          Buffer.add_string buf (Printf.sprintf "%06d" r)))
    in
    go t.mag;
    (if t.sign < 0 then "-" else "") ^ Buffer.contents buf)

let of_string s =
  let len = String.length s in
  if len = 0 then invalid_arg "Bigint.of_string: empty string";
  let sign, start =
    match s.[0] with '-' -> (-1, 1) | '+' -> (1, 1) | _ -> (1, 0)
  in
  if start >= len then invalid_arg "Bigint.of_string: no digits";
  let acc = ref zero in
  for i = start to len - 1 do
    let c = s.[i] in
    if c < '0' || c > '9' then invalid_arg "Bigint.of_string: invalid character";
    acc := add (mul !acc ten) (of_int (Char.code c - Char.code '0'))
  done;
  if sign < 0 then neg !acc else !acc

let pp fmt t = Format.pp_print_string fmt (to_string t)

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( mod ) = rem
  let ( ~- ) = neg
  let ( = ) = equal
  let ( <> ) a b = not (equal a b)
  let ( < ) a b = compare a b < 0
  let ( <= ) a b = compare a b <= 0
  let ( > ) a b = compare a b > 0
  let ( >= ) a b = compare a b >= 0
end
