(* Arbitrary-precision integers in sign-magnitude form, with an unboxed
   fast path for small values.

   Values with |v| < 2^30 are carried as a native [int] ([S]); everything
   else keeps the little-endian base-2^24 digit-array form ([B]). The
   2^30 threshold makes every small-small operation overflow-free in
   63-bit native arithmetic: sums stay below 2^31 and products below
   2^60. The representation is canonical — [B] is only used outside the
   small range — so equality never needs cross-representation digit
   comparisons. Rationals (and through them the whole symbolic layer) do
   almost all their arithmetic on small values, which this fast path
   serves without allocating.

   Magnitudes are little-endian arrays of base-2^24 digits. With 63-bit
   native ints, a digit product is < 2^48 and a full schoolbook row
   accumulation stays well below 2^62, so no intermediate overflows. *)

let base_bits = 24
let base = 1 lsl base_bits
let base_mask = base - 1

(* S values satisfy |v| < small_limit; B values are canonical (no leading
   zero digits) and always >= small_limit in magnitude *)
let small_limit = 1 lsl 30

type t = S of int | B of { sign : int; (* -1 or 1 *) mag : int array }

let zero = S 0

(* ---- magnitude helpers (arrays of digits, little-endian) ---- *)

let mag_normalize a =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do decr n done;
  if !n = Array.length a then a else Array.sub a 0 !n

let mag_compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else (
    let rec go i = if i < 0 then 0 else if a.(i) <> b.(i) then compare a.(i) b.(i) else go (i - 1) in
    go (la - 1))

let mag_add a b =
  let la = Array.length a and lb = Array.length b in
  let lmax = if la > lb then la else lb in
  let r = Array.make (lmax + 1) 0 in
  let carry = ref 0 in
  for i = 0 to lmax - 1 do
    let da = if i < la then a.(i) else 0 in
    let db = if i < lb then b.(i) else 0 in
    let s = da + db + !carry in
    r.(i) <- s land base_mask;
    carry := s lsr base_bits
  done;
  r.(lmax) <- !carry;
  mag_normalize r

(* precondition: a >= b *)
let mag_sub a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let db = if i < lb then b.(i) else 0 in
    let s = a.(i) - db - !borrow in
    if s < 0 then (
      r.(i) <- s + base;
      borrow := 1)
    else (
      r.(i) <- s;
      borrow := 0)
  done;
  assert (!borrow = 0);
  mag_normalize r

let mag_mul a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else (
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      if ai <> 0 then (
        for j = 0 to lb - 1 do
          let s = r.(i + j) + (ai * b.(j)) + !carry in
          r.(i + j) <- s land base_mask;
          carry := s lsr base_bits
        done;
        let k = ref (i + lb) in
        while !carry <> 0 do
          let s = r.(!k) + !carry in
          r.(!k) <- s land base_mask;
          carry := s lsr base_bits;
          incr k
        done)
    done;
    mag_normalize r)

(* divide magnitude by small int d in (0, base); returns (quotient, remainder) *)
let mag_divmod_small a d =
  let la = Array.length a in
  let q = Array.make la 0 in
  let r = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!r lsl base_bits) lor a.(i) in
    q.(i) <- cur / d;
    r := cur mod d
  done;
  (mag_normalize q, !r)

let mag_shift_left_digits a k =
  if Array.length a = 0 then [||]
  else (
    let r = Array.make (Array.length a + k) 0 in
    Array.blit a 0 r k (Array.length a);
    r)

let mag_shift_left_bits a s =
  (* 0 <= s < base_bits *)
  if s = 0 then Array.copy a
  else (
    let la = Array.length a in
    let r = Array.make (la + 1) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let v = (a.(i) lsl s) lor !carry in
      r.(i) <- v land base_mask;
      carry := v lsr base_bits
    done;
    r.(la) <- !carry;
    mag_normalize r)

let mag_shift_right_bits a s =
  (* 0 <= s < base_bits *)
  if s = 0 then Array.copy a
  else (
    let la = Array.length a in
    let r = Array.make la 0 in
    for i = 0 to la - 1 do
      let hi = if i + 1 < la then a.(i + 1) else 0 in
      r.(i) <- (a.(i) lsr s) lor ((hi lsl (base_bits - s)) land base_mask)
    done;
    mag_normalize r)

(* Knuth algorithm D. Preconditions: |v| >= 2 digits, |u| >= |v|. *)
let mag_divmod_knuth u v =
  let n = Array.length v in
  (* normalize so that top digit of v >= base/2 *)
  let s =
    let top = v.(n - 1) in
    let rec go s = if top lsl s >= base / 2 then s else go (s + 1) in
    go 0
  in
  let v = mag_shift_left_bits v s in
  let u = mag_shift_left_bits u s in
  let n = Array.length v in
  (* pad u with one extra high digit *)
  let m = Array.length u - n in
  let u = Array.append u [| 0 |] in
  let q = Array.make (m + 1) 0 in
  let vn1 = v.(n - 1) in
  let vn2 = if n >= 2 then v.(n - 2) else 0 in
  for j = m downto 0 do
    let num = (u.(j + n) lsl base_bits) lor u.(j + n - 1) in
    let qhat = ref (num / vn1) in
    let rhat = ref (num mod vn1) in
    let continue_adjust = ref true in
    while !continue_adjust do
      if !qhat >= base || !qhat * vn2 > (!rhat lsl base_bits) lor u.(j + n - 2) then (
        decr qhat;
        rhat := !rhat + vn1;
        if !rhat >= base then continue_adjust := false)
      else continue_adjust := false
    done;
    (* multiply-subtract: u[j .. j+n] -= qhat * v *)
    let borrow = ref 0 in
    let carry = ref 0 in
    for i = 0 to n - 1 do
      let p = (!qhat * v.(i)) + !carry in
      carry := p lsr base_bits;
      let sub = u.(i + j) - (p land base_mask) - !borrow in
      if sub < 0 then (
        u.(i + j) <- sub + base;
        borrow := 1)
      else (
        u.(i + j) <- sub;
        borrow := 0)
    done;
    let sub = u.(j + n) - !carry - !borrow in
    if sub < 0 then (
      (* qhat was one too large: add back *)
      u.(j + n) <- sub + base;
      decr qhat;
      let carry2 = ref 0 in
      for i = 0 to n - 1 do
        let sum = u.(i + j) + v.(i) + !carry2 in
        u.(i + j) <- sum land base_mask;
        carry2 := sum lsr base_bits
      done;
      u.(j + n) <- (u.(j + n) + !carry2) land base_mask)
    else u.(j + n) <- sub;
    q.(j) <- !qhat
  done;
  let r = mag_shift_right_bits (mag_normalize (Array.sub u 0 n)) s in
  (mag_normalize q, r)

let mag_divmod u v =
  match Array.length v with
  | 0 -> raise Division_by_zero
  | 1 ->
    let q, r = mag_divmod_small u v.(0) in
    (q, if r = 0 then [||] else [| r |])
  | _ -> if mag_compare u v < 0 then ([||], Array.copy u) else mag_divmod_knuth u v

(* ---- representation helpers ---- *)

let fits_small v = v > -small_limit && v < small_limit

(* magnitude of a native int as digits; |i| may be any int except min_int *)
let mag_of_abs_int v =
  let rec digits v acc =
    if v = 0 then List.rev acc else digits (v lsr base_bits) ((v land base_mask) :: acc)
  in
  Array.of_list (digits v [])

(* value of a (normalized) magnitude when it fits a native int, else None *)
let mag_to_int mag =
  let la = Array.length mag in
  if la * base_bits <= 60 then (
    let v = ref 0 in
    for i = la - 1 downto 0 do
      v := (!v lsl base_bits) lor mag.(i)
    done;
    Some !v)
  else None

(* canonical constructor from sign * magnitude *)
let make sign mag =
  let mag = mag_normalize mag in
  if Array.length mag = 0 then S 0
  else (
    match mag_to_int mag with
    | Some v when fits_small v -> S (if sign < 0 then -v else v)
    | _ -> B { sign; mag })

(* canonical constructor from a native int; total (handles min_int) *)
let of_int i =
  if fits_small i then S i
  else if i = min_int then B { sign = -1; mag = mag_add (mag_of_abs_int max_int) [| 1 |] }
  else B { sign = (if i > 0 then 1 else -1); mag = mag_of_abs_int (Stdlib.abs i) }

(* magnitude + sign view, for mixed-representation slow paths *)
let sign_mag = function
  | S 0 -> (0, [||])
  | S v when v > 0 -> (1, mag_of_abs_int v)
  | S v -> (-1, mag_of_abs_int (-v))
  | B { sign; mag } -> (sign, mag)

let one = S 1
let two = S 2
let minus_one = S (-1)
let ten = S 10

let sign = function S v -> compare v 0 | B { sign; _ } -> sign
let is_zero t = t = S 0
let is_one t = t = S 1

let equal a b =
  match (a, b) with
  | S x, S y -> x = y
  | B x, B y -> x.sign = y.sign && mag_compare x.mag y.mag = 0
  | _ -> false (* canonical: B never holds a small value *)

let compare a b =
  match (a, b) with
  | S x, S y -> Stdlib.compare x y
  | B x, B y ->
    if x.sign <> y.sign then Stdlib.compare x.sign y.sign
    else if x.sign >= 0 then mag_compare x.mag y.mag
    else mag_compare y.mag x.mag
  | S _, B y -> if y.sign > 0 then -1 else 1 (* |B| > |S| always *)
  | B x, S _ -> if x.sign > 0 then 1 else -1

let hash = function S v -> Hashtbl.hash v | B { sign; mag } -> Hashtbl.hash (sign, mag)
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let neg = function S v -> S (-v) | B { sign; mag } -> B { sign = -sign; mag }
let abs = function S v -> S (Stdlib.abs v) | B { mag; _ } -> B { sign = 1; mag }

let add a b =
  match (a, b) with
  | S x, S y -> of_int (x + y) (* |x+y| < 2^31: no overflow *)
  | _ ->
    let sa, ma = sign_mag a and sb, mb = sign_mag b in
    if sa = 0 then b
    else if sb = 0 then a
    else if sa = sb then make sa (mag_add ma mb)
    else (
      let c = mag_compare ma mb in
      if c = 0 then zero
      else if c > 0 then make sa (mag_sub ma mb)
      else make sb (mag_sub mb ma))

let sub a b = add a (neg b)
let succ a = add a one
let pred a = sub a one

let mul a b =
  match (a, b) with
  | S x, S y -> of_int (x * y) (* |x*y| < 2^60: no overflow *)
  | _ ->
    let sa, ma = sign_mag a and sb, mb = sign_mag b in
    if sa = 0 || sb = 0 then zero else make (sa * sb) (mag_mul ma mb)

let mul_int a i = mul a (of_int i)
let add_int a i = add a (of_int i)

let divmod a b =
  match (a, b) with
  | _, S 0 -> raise Division_by_zero
  | S x, S y -> (S (x / y), S (x mod y)) (* truncated toward zero, like the array path *)
  | _ ->
    let sa, ma = sign_mag a and sb, mb = sign_mag b in
    if sb = 0 then raise Division_by_zero
    else if sa = 0 then (zero, zero)
    else (
      let qm, rm = mag_divmod ma mb in
      (make (sa * sb) qm, make sa rm))

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let ediv a b =
  let q, r = divmod a b in
  if sign r >= 0 then (q, r)
  else if sign b > 0 then (pred q, add r b)
  else (succ q, sub r b)

let gcd a b =
  match (a, b) with
  | S x, S y ->
    let rec go a b = if b = 0 then a else go b (a mod b) in
    S (go (Stdlib.abs x) (Stdlib.abs y))
  | _ ->
    let rec go a b = if is_zero b then a else go b (rem a b) in
    go (abs a) (abs b)

let lcm a b = if is_zero a || is_zero b then zero else abs (div (mul a b) (gcd a b))

let pow x n =
  if n < 0 then invalid_arg "Bigint.pow: negative exponent";
  let rec go acc x n =
    if n = 0 then acc
    else if n land 1 = 1 then go (mul acc x) (mul x x) (n asr 1)
    else go acc (mul x x) (n asr 1)
  in
  go one x n

let shift_left t n =
  if n < 0 then invalid_arg "Bigint.shift_left";
  match t with
  | S 0 -> zero
  | S v when n <= 30 -> of_int (v lsl n) (* |v| < 2^30, n <= 30: fits 60 bits *)
  | _ ->
    let s, m = sign_mag t in
    let digits = n / base_bits and bits = n mod base_bits in
    make s (mag_shift_left_bits (mag_shift_left_digits m digits) bits)

let shift_right t n =
  if n < 0 then invalid_arg "Bigint.shift_right";
  match t with
  | S v -> S (v asr Stdlib.min n 62) (* asr floors, matching the array path *)
  | B { sign; mag } ->
    let digits = n / base_bits and bits = n mod base_bits in
    let la = Array.length mag in
    if digits >= la then (if sign > 0 then zero else minus_one)
    else (
      let m = mag_shift_right_bits (Array.sub mag digits (la - digits)) bits in
      let q = make sign m in
      if sign < 0 then (
        (* floor semantics for negatives: if any bits were shifted out, round down *)
        let shifted_back = shift_left q n in
        if equal shifted_back t then q else pred q)
      else q)

let num_bits t =
  let rec bits v acc = if v = 0 then acc else bits (v lsr 1) (acc + 1) in
  match t with
  | S v -> bits (Stdlib.abs v) 0
  | B { mag; _ } ->
    let la = Array.length mag in
    ((la - 1) * base_bits) + bits mag.(la - 1) 0

let is_even = function S v -> v land 1 = 0 | B { mag; _ } -> mag.(0) land 1 = 0
let is_odd t = not (is_even t)

let to_int = function
  | S v -> Some v
  | B { sign; mag } as t ->
    if num_bits t <= 62 then (
      let v = Array.fold_right (fun d acc -> (acc lsl base_bits) lor d) mag 0 in
      Some (if sign < 0 then -v else v))
    else if sign < 0 && equal t (of_int min_int) then Some min_int
    else None

let to_int_exn t =
  match to_int t with Some i -> i | None -> failwith "Bigint.to_int_exn: out of range"

let to_float = function
  | S v -> float_of_int v
  | B { sign; mag } ->
    let m = Array.fold_right (fun d acc -> (acc *. float_of_int base) +. float_of_int d) mag 0.0 in
    if sign < 0 then -.m else m

let to_string = function
  | S v -> string_of_int v
  | B { sign; mag } ->
    let buf = Buffer.create 32 in
    let rec go m =
      if Array.length m = 0 then ()
      else (
        let q, r = mag_divmod_small m 1_000_000 in
        if Array.length q = 0 then Buffer.add_string buf (string_of_int r)
        else (
          go q;
          Buffer.add_string buf (Printf.sprintf "%06d" r)))
    in
    go mag;
    (if sign < 0 then "-" else "") ^ Buffer.contents buf

let of_string s =
  let len = String.length s in
  if len = 0 then invalid_arg "Bigint.of_string: empty string";
  let sign, start =
    match s.[0] with '-' -> (-1, 1) | '+' -> (1, 1) | _ -> (1, 0)
  in
  if start >= len then invalid_arg "Bigint.of_string: no digits";
  let acc = ref zero in
  for i = start to len - 1 do
    let c = s.[i] in
    if c < '0' || c > '9' then invalid_arg "Bigint.of_string: invalid character";
    acc := add (mul !acc ten) (of_int (Char.code c - Char.code '0'))
  done;
  if sign < 0 then neg !acc else !acc

let pp fmt t = Format.pp_print_string fmt (to_string t)

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( mod ) = rem
  let ( ~- ) = neg
  let ( = ) = equal
  let ( <> ) a b = not (equal a b)
  let ( < ) a b = compare a b < 0
  let ( <= ) a b = compare a b <= 0
  let ( > ) a b = compare a b > 0
  let ( >= ) a b = compare a b >= 0
end
