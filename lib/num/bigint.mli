(** Arbitrary-precision signed integers.

    Implemented from scratch (the sealed build environment has no [zarith]).
    Magnitudes are little-endian arrays of base-2{^24} digits, so every
    intermediate product in schoolbook multiplication and Knuth division
    fits comfortably in OCaml's 63-bit native integers.

    Values are immutable; all operations return fresh values. The
    representation is canonical: no leading zero digits, and the zero value
    has an empty magnitude, so structural equality coincides with numeric
    equality. *)

type t

(** {1 Constants} *)

val zero : t
val one : t
val two : t
val minus_one : t
val ten : t

(** {1 Conversions} *)

val of_int : int -> t

val to_int : t -> int option
(** [to_int x] is [Some i] when [x] fits in a native [int]. *)

val to_int_exn : t -> int
(** @raise Failure when the value does not fit a native [int]. *)

val to_float : t -> float
(** Nearest float; may overflow to infinity for huge values. *)

val of_string : string -> t
(** Decimal, optionally signed. @raise Invalid_argument on malformed input. *)

val to_string : t -> string

val pp : Format.formatter -> t -> unit

(** {1 Predicates and comparisons} *)

val sign : t -> int
(** [-1], [0] or [1]. *)

val is_zero : t -> bool
val is_one : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val min : t -> t -> t
val max : t -> t -> t

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val succ : t -> t
val pred : t -> t
val mul : t -> t -> t

val divmod : t -> t -> t * t
(** [divmod a b] is [(q, r)] with [a = q*b + r], truncated toward zero
    (like OCaml's [(/)] and [(mod)]); [sign r = sign a] or [r = 0].
    @raise Division_by_zero when [b] is zero. *)

val div : t -> t -> t
val rem : t -> t -> t

val ediv : t -> t -> t * t
(** Euclidean division: remainder is always non-negative. *)

val gcd : t -> t -> t
(** Greatest common divisor; always non-negative. [gcd zero zero = zero]. *)

val lcm : t -> t -> t

val pow : t -> int -> t
(** [pow x n] for [n >= 0]. @raise Invalid_argument on negative exponent. *)

val shift_left : t -> int -> t
(** Multiply by 2{^n}. *)

val shift_right : t -> int -> t
(** Arithmetic shift: floor division by 2{^n}. *)

val mul_int : t -> int -> t
val add_int : t -> int -> t

(** {1 Inspection} *)

val num_bits : t -> int
(** Bits in the magnitude; [num_bits zero = 0]. *)

val is_even : t -> bool
val is_odd : t -> bool

(** {1 Infix operators} *)

module Infix : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( mod ) : t -> t -> t
  val ( ~- ) : t -> t
  val ( = ) : t -> t -> bool
  val ( <> ) : t -> t -> bool
  val ( < ) : t -> t -> bool
  val ( <= ) : t -> t -> bool
  val ( > ) : t -> t -> bool
  val ( >= ) : t -> t -> bool
end
