(** Exact rational numbers over {!Bigint}.

    Values are kept normalized: the denominator is strictly positive and
    [gcd num den = 1], so structural equality coincides with numeric
    equality. Used as the coefficient field of symbolic performance
    polynomials, where exactness matters (Sturm sequences, sign tests). *)

type t

(** {1 Constants} *)

val zero : t
val one : t
val minus_one : t
val two : t
val half : t

(** {1 Construction} *)

val make : Bigint.t -> Bigint.t -> t
(** [make num den]; normalizes. @raise Division_by_zero if [den] is zero. *)

val of_bigint : Bigint.t -> t
val of_int : int -> t

val of_ints : int -> int -> t
(** [of_ints a b] is the rational [a/b]. *)

val of_float : float -> t
(** Exact dyadic conversion of a finite float.
    @raise Invalid_argument on NaN or infinities. *)

val of_float_approx : ?tol:float -> float -> t
(** Smallest-denominator rational within relative [tol] (default 1e-9) of
    the float — continued-fraction convergents. Keeps printed coefficients
    humane where exact dyadic conversion would produce 2{^52}-denominator
    fractions. *)

val of_string : string -> t
(** Accepts ["3"], ["-3/4"], ["2.5"]. *)

(** {1 Accessors} *)

val num : t -> Bigint.t
val den : t -> Bigint.t
val to_float : t -> float

val to_int : t -> int option
(** [Some i] when the value is an integer fitting in native [int]. *)

val is_integer : t -> bool

(** {1 Predicates and comparisons} *)

val sign : t -> int
val is_zero : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val min : t -> t -> t
val max : t -> t -> t

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val inv : t -> t
(** @raise Division_by_zero on zero. *)

val div : t -> t -> t
(** @raise Division_by_zero when the divisor is zero. *)

val pow : t -> int -> t
(** Integer exponent, may be negative (then the base must be nonzero). *)

val floor : t -> Bigint.t
val ceil : t -> Bigint.t
val round : t -> Bigint.t
(** Round half away from zero. *)

val mediant : t -> t -> t
(** [(a+c)/(b+d)] — lies strictly between its arguments; used for
    root-isolation refinement. *)

(** {1 Printing} *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** {1 Infix operators} *)

module Infix : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( ~- ) : t -> t
  val ( = ) : t -> t -> bool
  val ( <> ) : t -> t -> bool
  val ( < ) : t -> t -> bool
  val ( <= ) : t -> t -> bool
  val ( > ) : t -> t -> bool
  val ( >= ) : t -> t -> bool
end
