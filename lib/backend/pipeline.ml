open Pperf_machine
open Pperf_sched

type exec_result = { cycles : int; issue : int array; stalls : int }

exception Livelock of { cycle : int; unissued : int }

let default_max_cycles = 10_000_000

(* per-unit busy state: the cycle at which the unit becomes free *)
type state = {
  machine : Machine.t;
  free_at : int array;
  kind_candidates : int array array;
}

let make_state (m : Machine.t) =
  let n = Machine.num_units m in
  let kind_candidates =
    Array.init n (fun u ->
        let kind = (Machine.unit_at m u).Funit.kind in
        Array.of_list
          (Machine.units_list m
          |> List.filter_map (fun (v : Funit.t) -> if v.kind = kind then Some v.id else None)))
  in
  { machine = m; free_at = Array.make n 0; kind_candidates }

(* can all components of [op] issue at [cycle]? if so return the chosen
   units (one per component needing occupancy) *)
let units_available st cycle (op : Atomic_op.t) =
  (* greedy per-component choice; components of one op are on distinct
     kinds in practice, so greedy is exact *)
  let taken = Hashtbl.create 4 in
  let rec choose = function
    | [] -> Some []
    | (c : Atomic_op.component) :: rest ->
      if c.noncoverable = 0 then Option.map (fun l -> (c, -1) :: l) (choose rest)
      else (
        let candidates =
          (* ports components carry their own eligible set; [taken] already
             keeps two µops of one op off the same port in one cycle *)
          if Array.length c.eligible = 0 then st.kind_candidates.(c.unit_id)
          else c.eligible
        in
        let cand =
          Array.to_list candidates
          |> List.find_opt (fun u -> st.free_at.(u) <= cycle && not (Hashtbl.mem taken u))
        in
        match cand with
        | None -> None
        | Some u ->
          Hashtbl.add taken u ();
          (match choose rest with
           | Some l -> Some ((c, u) :: l)
           | None -> None))
  in
  choose op.components

let do_issue st cycle (op : Atomic_op.t) chosen =
  List.iter
    (fun ((c : Atomic_op.component), u) ->
      if u >= 0 then st.free_at.(u) <- cycle + c.noncoverable)
    chosen;
  cycle + Atomic_op.result_latency op

(* generic engine: [pick ready] chooses the next op to try to issue among
   ready ones (indices into the dag) *)
let run ?(max_cycles = default_max_cycles) ~pick (m : Machine.t) (dag : Dag.t) =
  let n = Dag.length dag in
  let st = make_state m in
  let issue = Array.make n (-1) in
  let result_at = Array.make n max_int in
  let remaining = ref n in
  let cycle = ref 0 in
  let stalls = ref 0 in
  let makespan = ref 0 in
  let guard = ref 0 in
  while !remaining > 0 do
    incr guard;
    if !guard > max_cycles then
      raise (Livelock { cycle = !cycle; unissued = !remaining });
    (* ops whose predecessors' results are available at this cycle *)
    let ready =
      List.filter
        (fun i ->
          issue.(i) < 0
          && List.for_all (fun d -> result_at.(d) <= !cycle) (Dag.node dag i).Dag.deps)
        (List.init n (fun i -> i))
    in
    let issued_this_cycle = ref 0 in
    let continue_issuing = ref true in
    let ready = ref (pick ready) in
    while !continue_issuing && !issued_this_cycle < m.Machine.issue_width do
      match !ready with
      | [] -> continue_issuing := false
      | i :: rest -> (
        let op = (Dag.node dag i).Dag.op in
        match units_available st !cycle op with
        | Some chosen ->
          let res = do_issue st !cycle op chosen in
          issue.(i) <- !cycle;
          result_at.(i) <- res;
          makespan := max !makespan res;
          decr remaining;
          incr issued_this_cycle;
          ready := rest
        | None ->
          (* structural hazard: in-order semantics stop at the first
             blocked op; list scheduling skips it and tries the next *)
          ready := rest)
    done;
    if !issued_this_cycle = 0 then incr stalls;
    incr cycle
  done;
  { cycles = !makespan; issue; stalls = !stalls }

let run_in_order ?(max_cycles = default_max_cycles) m dag =
  (* strict program order with head-of-line blocking: an op may not issue
     before all earlier ops have issued *)
  let n = Dag.length dag in
  let st = make_state m in
  let issue = Array.make n (-1) in
  let result_at = Array.make n max_int in
  let cycle = ref 0 in
  let stalls = ref 0 in
  let makespan = ref 0 in
  let next = ref 0 in
  while !next < n do
    if !cycle > max_cycles then
      raise (Livelock { cycle = !cycle; unissued = n - !next });
    let issued_this_cycle = ref 0 in
    let blocked = ref false in
    while (not !blocked) && !next < n && !issued_this_cycle < m.Machine.issue_width do
      let i = !next in
      let nd = Dag.node dag i in
      let deps_ready = List.for_all (fun d -> result_at.(d) <= !cycle) nd.Dag.deps in
      if not deps_ready then blocked := true
      else (
        match units_available st !cycle nd.Dag.op with
        | Some chosen ->
          let res = do_issue st !cycle nd.Dag.op chosen in
          issue.(i) <- !cycle;
          result_at.(i) <- res;
          makespan := max !makespan res;
          incr next;
          incr issued_this_cycle
        | None -> blocked := true)
    done;
    if !issued_this_cycle = 0 then incr stalls;
    incr cycle
  done;
  { cycles = !makespan; issue; stalls = !stalls }

let run_list_scheduled ?max_cycles m dag =
  (* priority = critical-path height to any sink *)
  let n = Dag.length dag in
  let height = Array.make n 0 in
  (* successors from deps *)
  for i = n - 1 downto 0 do
    let nd = Dag.node dag i in
    let lat = Atomic_op.result_latency nd.Dag.op in
    height.(i) <- max height.(i) lat;
    List.iter (fun d -> height.(d) <- max height.(d) (height.(i) + Atomic_op.result_latency (Dag.node dag d).Dag.op)) nd.Dag.deps
  done;
  let pick ready =
    List.sort (fun a b -> compare (height.(b), a) (height.(a), b)) ready
  in
  run ?max_cycles ~pick m dag

let reference_cycles m dag = (run_list_scheduled m dag).cycles
