(** Reference back-end: a real instruction scheduler plus an in-order
    superscalar pipeline timing model.

    This plays the role IBM xlf's [-qdebug=cycles] listings played in the
    paper's evaluation (Fig. 7): an independent, more expensive measurement
    of how many cycles a competently scheduled basic block takes on the
    declared machine. The predictor (the Tetris model in {!Pperf_sched})
    and this oracle share only the machine description — units, costs,
    issue width — not the algorithm:

    - the oracle picks instructions by critical-path priority from a ready
      set, cycle by cycle, like a production list scheduler;
    - it enforces the issue width, which the drop model ignores;
    - it never reorders across the dependence DAG, and charges structural
      stalls exactly.

    [run_in_order] additionally models a naive back-end that issues in
    program order (no scheduling) — the lower baseline. *)

open Pperf_machine
open Pperf_sched

type exec_result = {
  cycles : int;  (** makespan: last result available *)
  issue : int array;  (** issue cycle per DAG node *)
  stalls : int;  (** cycles in which nothing could be issued *)
}

exception Livelock of { cycle : int; unissued : int }
(** The pipeline made no progress within the cycle budget — typically an
    operation whose required unit kind the machine description does not
    provide. Carries the cycle reached and the operations still unissued;
    callers (the CLI, the server) turn it into a structured error rather
    than a crash. *)

val run_list_scheduled : ?max_cycles:int -> Machine.t -> Dag.t -> exec_result
(** Greedy critical-path list scheduling — the reference measurement.
    @raise Livelock after [max_cycles] (default 10M) cycles without
    completing. *)

val run_in_order : ?max_cycles:int -> Machine.t -> Dag.t -> exec_result
(** Strict program-order issue (still multi-issue and pipelined).
    @raise Livelock after [max_cycles] cycles without completing. *)

val reference_cycles : Machine.t -> Dag.t -> int
(** [= (run_list_scheduled m d).cycles]. *)
