open Pperf_lang

type report = { routine : string; diagnostics : Diagnostic.t list }

let run_checked ?known ?(ranges = false) ?domain (c : Typecheck.checked) =
  let ctx =
    {
      Checks.known = (match known with None -> (fun _ -> false) | Some f -> f);
      ranges = (if ranges then Some (Pperf_absint.Absint.analyze ?domain c) else None);
    }
  in
  List.concat_map (fun (check : Checks.check) -> check.run ctx c) Checks.registry
  |> List.sort Diagnostic.compare

let run_program ?(ranges = false) ?domain (checkeds : Typecheck.checked list) =
  let names = List.map (fun (c : Typecheck.checked) -> c.routine.Ast.rname) checkeds in
  let known f = List.mem f names in
  List.map
    (fun (c : Typecheck.checked) ->
      { routine = c.routine.Ast.rname; diagnostics = run_checked ~known ~ranges ?domain c })
    checkeds

let run_source ?ranges ?domain src =
  run_program ?ranges ?domain (Typecheck.check_program (Parser.parse_program src))

let precision = List.filter (fun (d : Diagnostic.t) -> d.severity = Diagnostic.Precision)

let dedupe ds =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun (d : Diagnostic.t) ->
      let k = (d.check, d.loc.Srcloc.line, d.loc.Srcloc.col) in
      if Hashtbl.mem seen k then false
      else (
        Hashtbl.add seen k ();
        true))
    (List.sort Diagnostic.compare ds)

let all_diagnostics reports = List.concat_map (fun r -> r.diagnostics) reports

let exit_code reports = Diagnostic.exit_code (all_diagnostics reports)

let pp fmt reports =
  List.iter
    (fun r ->
      if r.diagnostics = [] then Format.fprintf fmt "%s: clean@." r.routine
      else (
        Format.fprintf fmt "%s: %d diagnostic%s@." r.routine
          (List.length r.diagnostics)
          (if List.length r.diagnostics = 1 then "" else "s");
        List.iter (fun d -> Format.fprintf fmt "  %a@." Diagnostic.pp d) r.diagnostics))
    reports

let to_json reports =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"routines\":[";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "{\"routine\":\"";
      Buffer.add_string buf r.routine;
      Buffer.add_string buf "\",\"diagnostics\":[";
      List.iteri
        (fun j d ->
          if j > 0 then Buffer.add_char buf ',';
          Diagnostic.to_json buf d)
        r.diagnostics;
      Buffer.add_string buf "]}")
    reports;
  Buffer.add_string buf "],\"max_severity\":";
  (match Diagnostic.max_severity (all_diagnostics reports) with
   | None -> Buffer.add_string buf "null"
   | Some s ->
     Buffer.add_char buf '"';
     Buffer.add_string buf (Diagnostic.severity_to_string s);
     Buffer.add_char buf '"');
  Buffer.add_string buf ",\"exit_code\":";
  Buffer.add_string buf (string_of_int (exit_code reports));
  Buffer.add_string buf "}\n";
  Buffer.contents buf
