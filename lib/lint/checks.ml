open Pperf_num
open Pperf_symbolic
open Pperf_lang
module SSet = Analysis.SSet
module Absint = Pperf_absint.Absint

type ctx = {
  known : string -> bool;
  ranges : Absint.result option;
      (** interval abstract interpretation of the routine; when present the
          checks consult flow-sensitive ranges to avoid false positives and
          decide more conditions *)
}

let default_ctx = { known = (fun _ -> false); ranges = None }

type check = {
  id : string;
  about : string;
  run : ctx -> Typecheck.checked -> Diagnostic.t list;
}

(* ---- shared helpers ---- *)

let const_of e =
  match Sym_expr.to_poly e with Some p -> Poly.to_const p | None -> None

let is_scalar symtab x =
  match Typecheck.lookup symtab x with Some s -> s.Typecheck.dims = [] | None -> true

(* scalar names read by an expression (array elements read the array, not a
   scalar; their subscripts are visited by the fold) *)
let scalar_reads symtab e =
  Ast.fold_expr
    (fun acc e ->
      match e with
      | Ast.Var x when is_scalar symtab x -> SSet.add x acc
      | _ -> acc)
    SSet.empty e

(* the range of a loop index as an interval, from whatever bounds are
   constant; the sign of the step orients which bound is which *)
let extend_env env (d : Ast.do_loop) =
  let step = match d.step with None -> Some Rat.one | Some e -> const_of e in
  let lo = const_of d.lo and hi = const_of d.hi in
  let iv =
    match (lo, hi, step) with
    | Some lo, Some hi, Some s when Rat.sign s <> 0 ->
      Interval.of_rats (Rat.min lo hi) (Rat.max lo hi)
    | Some lo, None, Some s when Rat.sign s > 0 -> Interval.make (Interval.Fin lo) Interval.Pos_inf
    | None, Some hi, Some s when Rat.sign s > 0 -> Interval.make Interval.Neg_inf (Interval.Fin hi)
    | Some lo, None, Some s when Rat.sign s < 0 -> Interval.make Interval.Neg_inf (Interval.Fin lo)
    | None, Some hi, Some s when Rat.sign s < 0 -> Interval.make (Interval.Fin hi) Interval.Pos_inf
    | _ -> Interval.full
  in
  Interval.Env.add d.var iv env

let bound_lt0 = function
  | Interval.Neg_inf -> true
  | Interval.Fin r -> Rat.sign r < 0
  | Interval.Pos_inf -> false

let bound_le0 = function
  | Interval.Neg_inf -> true
  | Interval.Fin r -> Rat.sign r <= 0
  | Interval.Pos_inf -> false

let bound_gt0 b = not (bound_le0 b)
let bound_ge0 b = not (bound_lt0 b)

(* decide a comparison [d op 0] over the interval enclosure of [d] *)
let decide_cmp (op : Ast.binop) i =
  let lo = Interval.lo i and hi = Interval.hi i in
  match op with
  | Ast.Lt -> if bound_lt0 hi then Some true else if bound_ge0 lo then Some false else None
  | Ast.Le -> if bound_le0 hi then Some true else if bound_gt0 lo then Some false else None
  | Ast.Gt -> if bound_gt0 lo then Some true else if bound_le0 hi then Some false else None
  | Ast.Ge -> if bound_ge0 lo then Some true else if bound_lt0 hi then Some false else None
  | Ast.Eq ->
    if (match Interval.is_point i with Some r -> Rat.is_zero r | None -> false) then Some true
    else if not (Interval.contains i Rat.zero) then Some false
    else None
  | Ast.Ne ->
    if not (Interval.contains i Rat.zero) then Some true
    else if (match Interval.is_point i with Some r -> Rat.is_zero r | None -> false) then Some false
    else None
  | _ -> None

(* three-valued truth of a condition over the index ranges *)
let rec cond_value env (e : Ast.expr) =
  match e with
  | Ast.Logical b -> Some b
  | Ast.Unop (Ast.Not, c) -> Option.map not (cond_value env c)
  | Ast.Binop (Ast.And, a, b) -> (
    match (cond_value env a, cond_value env b) with
    | Some false, _ | _, Some false -> Some false
    | Some true, Some true -> Some true
    | _ -> None)
  | Ast.Binop (Ast.Or, a, b) -> (
    match (cond_value env a, cond_value env b) with
    | Some true, _ | _, Some true -> Some true
    | Some false, Some false -> Some false
    | _ -> None)
  | Ast.Binop ((Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge) as op, a, b) -> (
    match (Sym_expr.to_poly a, Sym_expr.to_poly b) with
    | Some pa, Some pb -> decide_cmp op (Interval.eval_poly env (Poly.sub pa pb))
    | _ -> None)
  | _ -> None

(* ---- 1. use before def ---- *)

let use_before_def _ctx (c : Typecheck.checked) =
  let symtab = c.symbols in
  let diags = ref [] and flagged = ref SSet.empty in
  let report loc x =
    if not (SSet.mem x !flagged) then (
      flagged := SSet.add x !flagged;
      diags :=
        Diagnostic.make Diagnostic.Warning ~check:"use-before-def" ~loc
          (Printf.sprintf "scalar %s may be read before it is assigned" x)
          ~fix:(Printf.sprintf "assign %s before this statement" x)
        :: !diags)
  in
  let check_reads defined loc e =
    SSet.iter (fun x -> if not (SSet.mem x defined) then report loc x) (scalar_reads symtab e)
  in
  let rec walk defined stmts =
    List.fold_left
      (fun defined (s : Ast.stmt) ->
        let loc = s.Ast.loc in
        match s.Ast.kind with
        | Ast.Assign (lhs, e) ->
          List.iter (check_reads defined loc) lhs.subs;
          check_reads defined loc e;
          if lhs.subs = [] && is_scalar symtab lhs.base then SSet.add lhs.base defined
          else defined
        | Ast.If (branches, els) ->
          List.iter (fun (cond, _) -> check_reads defined loc cond) branches;
          let outs = List.map (fun (_, body) -> walk defined body) branches in
          let outs = walk defined els :: outs in
          (* only definitions made on every path survive the join *)
          List.fold_left SSet.inter (List.hd outs) (List.tl outs)
        | Ast.Do d ->
          List.iter (check_reads defined loc) (d.lo :: d.hi :: Option.to_list d.step);
          let defined' = SSet.add d.var defined in
          ignore (walk defined' d.body);
          (* the body may execute zero times: only the index is surely set *)
          defined'
        | Ast.Call_stmt (_, args) ->
          (* bare scalar arguments may be written by the callee: not flagged
             as reads, and defined afterwards *)
          List.iter
            (fun a ->
              match a with
              | Ast.Var x when is_scalar symtab x -> ()
              | _ -> check_reads defined loc a)
            args;
          List.fold_left
            (fun def a ->
              match a with
              | Ast.Var x when is_scalar symtab x -> SSet.add x def
              | _ -> def)
            defined args
        | Ast.Return -> defined)
      defined stmts
  in
  let init = List.fold_left (fun s p -> SSet.add p s) SSet.empty c.routine.params in
  ignore (walk init c.routine.body);
  List.rev !diags

(* ---- 2a. unused variables ---- *)

let unused_var _ctx (c : Typecheck.checked) =
  let used = Analysis.used_vars c.routine.body in
  let assigned = Analysis.assigned_vars c.routine.body in
  (* names referenced by declaration dimensions count as used *)
  let dim_used =
    List.fold_left
      (fun acc (d : Ast.decl) ->
        List.fold_left
          (fun acc (dim : Ast.array_dim) ->
            let acc = SSet.union acc (SSet.of_list (Ast.expr_vars dim.dim_hi)) in
            match dim.dim_lo with
            | Some e -> SSet.union acc (SSet.of_list (Ast.expr_vars e))
            | None -> acc)
          acc d.dims)
      SSet.empty c.routine.decls
  in
  List.filter_map
    (fun (d : Ast.decl) ->
      if
        List.mem d.dname c.routine.params
        || SSet.mem d.dname used || SSet.mem d.dname assigned || SSet.mem d.dname dim_used
      then None
      else
        Some
          (Diagnostic.make Diagnostic.Hint ~check:"unused-var" ~loc:Srcloc.dummy
             (Printf.sprintf "variable %s is declared but never referenced" d.dname)
             ~fix:(Printf.sprintf "remove the declaration of %s" d.dname)))
    c.routine.decls

(* ---- 2b. dead stores ---- *)

let dead_store _ctx (c : Typecheck.checked) =
  let used = Analysis.used_vars c.routine.body in
  let result_name =
    match c.routine.rkind with Ast.Function _ -> Some c.routine.rname | _ -> None
  in
  let diags = ref [] in
  Ast.iter_stmts
    (fun s ->
      match s.Ast.kind with
      | Ast.Assign (lhs, _)
        when lhs.subs = []
             && is_scalar c.symbols lhs.base
             && (not (List.mem lhs.base c.routine.params))
             && Some lhs.base <> result_name
             && not (SSet.mem lhs.base used) ->
        diags :=
          Diagnostic.make Diagnostic.Warning ~check:"dead-store" ~loc:s.Ast.loc
            (Printf.sprintf "value stored to %s is never read" lhs.base)
            ~fix:(Printf.sprintf "delete the assignment or use %s afterwards" lhs.base)
          :: !diags
      | _ -> ())
    c.routine.body;
  List.rev !diags

(* ---- 3. symbolic out-of-bounds subscripts ---- *)

(* iteration range of one loop as [min; max] bound polynomials, oriented by
   the (constant) step sign; [None] when the bounds are not polynomial *)
let loop_range (l : Analysis.loop_ctx) =
  let step =
    match l.lstep with
    | None -> Some 1
    | Some e -> (
      match const_of e with Some c -> Rat.to_int c | None -> None)
  in
  match (Sym_expr.to_poly l.llo, Sym_expr.to_poly l.lhi, step) with
  | Some lo, Some hi, Some s when s > 0 -> Some (lo, hi)
  | Some lo, Some hi, Some s when s < 0 -> Some (hi, lo)
  | _ -> None

let oob_subscript ctx (c : Typecheck.checked) =
  let diags = ref [] in
  let flag severity loc msg fix = diags := Diagnostic.make severity ~check:"oob-subscript" ~loc msg ~fix :: !diags in
  (* flow-sensitive rebuttal: a violation derived from the full iteration
     space is dropped when the ranges holding at the reference (branch
     refinements included) prove the margin polynomial non-negative *)
  let ranges_refute at margin =
    match ctx.ranges with
    | None -> false
    | Some res -> bound_ge0 (Interval.lo (Absint.bound_at res at margin))
  in
  List.iter
    (fun (r : Analysis.array_ref) ->
      match Typecheck.lookup c.symbols r.array with
      | Some sym when sym.Typecheck.dims <> [] && List.length sym.dims = List.length r.subs ->
        let extents = Typecheck.array_extent sym in
        let vars = List.map (fun (l : Analysis.loop_ctx) -> l.lvar) r.loops in
        let ranges = List.map loop_range r.loops in
        List.iteri
          (fun k sub ->
            match Sym_expr.affine_in vars sub with
            | None -> () (* the non-affine check owns this case *)
            | Some (coeffs, rest) ->
              let sub_poly =
                List.fold_left2
                  (fun acc cf v -> Poly.add acc (Poly.scale_int cf (Poly.var v)))
                  rest coeffs vars
              in
              let analyzable =
                List.for_all2 (fun cf rg -> cf = 0 || rg <> None) coeffs ranges
              in
              if analyzable then (
                let extreme pick_max =
                  List.fold_left2
                    (fun acc cf rg ->
                      match rg with
                      | Some (mn, mx) when cf <> 0 ->
                        let b = if (cf > 0) = pick_max then mx else mn in
                        Poly.add acc (Poly.scale_int cf b)
                      | _ -> acc)
                    rest coeffs ranges
                in
                let max_sub = extreme true and min_sub = extreme false in
                let dim = List.nth sym.dims k in
                let lo_b =
                  match dim.Ast.dim_lo with
                  | None -> Poly.one
                  | Some e -> (
                    match Sym_expr.to_poly e with Some p -> p | None -> Poly.var "?dim")
                in
                let hi_b = Poly.sub (Poly.add lo_b (List.nth extents k)) Poly.one in
                let dim_str =
                  if List.length r.subs > 1 then Printf.sprintf " (dimension %d)" (k + 1) else ""
                in
                if
                  Interval.sign_of_poly Interval.Env.empty (Poly.sub hi_b max_sub) = Interval.Neg
                  && not (ranges_refute r.at (Poly.sub hi_b sub_poly))
                then
                  flag Diagnostic.Error r.at
                    (Printf.sprintf "subscript of %s%s reaches %s, past its upper bound %s"
                       r.array dim_str (Poly.to_string max_sub) (Poly.to_string hi_b))
                    "shrink the loop bounds or enlarge the array";
                if
                  Interval.sign_of_poly Interval.Env.empty (Poly.sub min_sub lo_b) = Interval.Neg
                  && not (ranges_refute r.at (Poly.sub sub_poly lo_b))
                then
                  flag Diagnostic.Error r.at
                    (Printf.sprintf "subscript of %s%s reaches %s, below its lower bound %s"
                       r.array dim_str (Poly.to_string min_sub) (Poly.to_string lo_b))
                    "shift the loop bounds or the array's lower bound"))
          r.subs
      | _ -> ())
    (Analysis.array_refs c.routine.body);
  List.sort_uniq Diagnostic.compare !diags

(* ---- 4. loop-carried dependences ---- *)

let dep_kind_str = Depend.kind_to_string

let loop_carried ?env ?oracle ~loc (d : Ast.do_loop) =
  List.map
    (fun (dep : Depend.dependence) ->
      Diagnostic.make Diagnostic.Hint ~check:"carried-dep" ~loc
        (Printf.sprintf
           "loop over %s carries a %s dependence on %s (%s): iterations are not independent"
           d.var (dep_kind_str dep.kind) dep.src.Analysis.array
           (String.concat "," (List.map Depend.direction_to_string dep.directions)))
        ~fix:"do not parallelize or reorder this loop's iterations")
    (Depend.carried_dependences ?env ?oracle d)
  |> List.sort_uniq Diagnostic.compare

(* ranges holding before the statement, restricted to variables the
   fragment does not reassign (the dependence tests need loop-invariant
   facts) *)
let invariant_env_at ctx loc (body : Ast.stmt list) index =
  match ctx.ranges with
  | None -> None
  | Some res ->
    let assigned =
      SSet.add index
        (SSet.union (Analysis.assigned_vars body) (Analysis.loop_indices body))
    in
    Some (Absint.restrict (Absint.ranges_at res loc) ~keep:(fun x -> not (SSet.mem x assigned)))

(* relational facts at the statement, usable as a sound dependence-test
   oracle only on polynomials over unreassigned variables *)
let invariant_oracle ctx loc (body : Ast.stmt list) index =
  match ctx.ranges with
  | None -> None
  | Some res ->
    if Absint.domain_used res = Absint.Box then None
    else (
      let assigned =
        SSet.add index
          (SSet.union (Analysis.assigned_vars body) (Analysis.loop_indices body))
      in
      Some
        (fun p ->
          if List.exists (fun x -> SSet.mem x assigned) (Poly.vars p) then Interval.full
          else Absint.bound_at res loc p))

let carried_dep ctx (c : Typecheck.checked) =
  let diags = ref [] in
  Ast.iter_stmts
    (fun s ->
      match s.Ast.kind with
      | Ast.Do d ->
        let env = invariant_env_at ctx s.Ast.loc d.body d.var in
        let oracle = invariant_oracle ctx s.Ast.loc d.body d.var in
        diags := loop_carried ?env ?oracle ~loc:s.Ast.loc d @ !diags
      | _ -> ())
    c.routine.body;
  List.sort_uniq Diagnostic.compare !diags

(* ---- 5. non-affine subscripts ---- *)

let non_affine _ctx (c : Typecheck.checked) =
  List.filter_map
    (fun (r : Analysis.array_ref) ->
      let vars = List.map (fun (l : Analysis.loop_ctx) -> l.lvar) r.loops in
      let bad sub = match Sym_expr.affine_in vars sub with None -> true | Some _ -> false in
      if List.exists bad r.subs then
        Some
          (Diagnostic.make Diagnostic.Precision ~check:"non-affine-subscript" ~loc:r.at
             (Printf.sprintf
                "non-affine subscript of %s: the dependence tests assume a dependence, blocking transformations conservatively"
                r.array)
             ~fix:"rewrite the subscript as an affine function of the loop indices")
      else None)
    (Analysis.array_refs c.routine.body)
  |> List.sort_uniq Diagnostic.compare

(* ---- 6. degenerate do steps ---- *)

let bad_step _ctx (c : Typecheck.checked) =
  let diags = ref [] in
  let add severity loc msg fix =
    diags := Diagnostic.make severity ~check:"bad-step" ~loc msg ~fix :: !diags
  in
  Ast.iter_stmts
    (fun s ->
      match s.Ast.kind with
      | Ast.Do d -> (
        match d.step with
        | None -> ()
        | Some e -> (
          match Sym_expr.to_poly e with
          | None ->
            add Diagnostic.Precision s.Ast.loc
              (Printf.sprintf
                 "step %s of the loop over %s is not polynomial: the trip count becomes an unknown"
                 (Pp_ast.expr_to_string e) d.var)
              "use a constant or polynomial step"
          | Some p -> (
            match Poly.to_const p with
            | Some z when Rat.is_zero z ->
              add Diagnostic.Error s.Ast.loc
                (Printf.sprintf "zero step: the loop over %s never advances" d.var)
                "use a nonzero step"
            | Some neg when Rat.sign neg < 0 -> (
              match (const_of d.lo, const_of d.hi) with
              | Some lo, Some hi when Rat.compare lo hi < 0 ->
                add Diagnostic.Warning s.Ast.loc
                  (Printf.sprintf
                     "negative step with ascending bounds %s..%s: the loop over %s never executes"
                     (Rat.to_string lo) (Rat.to_string hi) d.var)
                  "swap the bounds or make the step positive"
              | _ -> ())
            | Some _ -> ()
            | None -> (
              match Interval.sign_of_poly Interval.Env.empty p with
              | Interval.Pos | Interval.Neg -> ()
              | Interval.Zero | Interval.Mixed ->
                add Diagnostic.Precision s.Ast.loc
                  (Printf.sprintf
                     "step %s of the loop over %s has unknown sign: the trip count is treated as an unknown"
                     (Poly.to_string p) d.var)
                  "declare the step's sign or use a constant step"))))
      | _ -> ())
    c.routine.body;
  List.rev !diags

(* ---- 7. loop-index shadowing and modification ---- *)

let index_abuse ~shadowed ~modified (c : Typecheck.checked) =
  let diags = ref [] in
  let rec walk stack stmts =
    List.iter
      (fun (s : Ast.stmt) ->
        match s.Ast.kind with
        | Ast.Do d ->
          if shadowed && List.mem d.var stack then
            diags :=
              Diagnostic.make Diagnostic.Error ~check:"index-shadowed" ~loc:s.Ast.loc
                (Printf.sprintf "loop index %s shadows the index of an enclosing loop" d.var)
                ~fix:"rename the inner loop index"
              :: !diags;
          walk (d.var :: stack) d.body
        | Ast.Assign (lhs, _) when modified && lhs.subs = [] && List.mem lhs.base stack ->
          diags :=
            Diagnostic.make Diagnostic.Error ~check:"index-modified" ~loc:s.Ast.loc
              (Printf.sprintf "loop index %s is modified inside the loop body" lhs.base)
              ~fix:"use a separate scalar for the computation"
            :: !diags
        | Ast.Assign _ | Ast.Call_stmt _ | Ast.Return -> ()
        | Ast.If (branches, els) ->
          List.iter (fun (_, b) -> walk stack b) branches;
          walk stack els)
      stmts
  in
  walk [] c.routine.body;
  List.rev !diags

let index_shadowed _ctx c = index_abuse ~shadowed:true ~modified:false c
let index_modified _ctx c = index_abuse ~shadowed:false ~modified:true c

(* ---- 8. unreachable branches ---- *)

let unreachable _ctx (c : Typecheck.checked) =
  let diags = ref [] in
  let rec walk env stmts =
    List.iter
      (fun (s : Ast.stmt) ->
        match s.Ast.kind with
        | Ast.If (branches, els) ->
          let n = List.length branches in
          List.iteri
            (fun i (cond, body) ->
              (match cond_value env cond with
               | Some false ->
                 diags :=
                   Diagnostic.make Diagnostic.Warning ~check:"unreachable-branch" ~loc:s.Ast.loc
                     (Printf.sprintf "condition %s is always false: its branch is never taken"
                        (Pp_ast.expr_to_string cond))
                     ~fix:"remove the branch or fix the condition"
                   :: !diags
               | Some true when i < n - 1 || els <> [] ->
                 diags :=
                   Diagnostic.make Diagnostic.Warning ~check:"unreachable-branch" ~loc:s.Ast.loc
                     (Printf.sprintf
                        "condition %s is always true: the remaining branches are unreachable"
                        (Pp_ast.expr_to_string cond))
                     ~fix:"remove the dead branches or fix the condition"
                   :: !diags
               | _ -> ());
              walk env body)
            branches;
          walk env els
        | Ast.Do d -> walk (extend_env env d) d.body
        | Ast.Assign _ | Ast.Call_stmt _ | Ast.Return -> ())
      stmts
  in
  walk Interval.Env.empty c.routine.body;
  List.rev !diags

(* ---- 9. denominator sign regions that include zero ---- *)

let div_zero ctx (c : Typecheck.checked) =
  let diags = ref [] in
  (* with the abstract interpretation available, its flow-sensitive env at
     the statement (literal propagation, branch refinements) replaces the
     local constant-bounds one *)
  let env_at fallback loc =
    match ctx.ranges with Some res -> Absint.ranges_at res loc | None -> fallback
  in
  let check_expr env loc e =
    let env = env_at env loc in
    Ast.fold_expr
      (fun () sub ->
        match sub with
        | Ast.Binop (Ast.Div, _, den) -> (
          match Sym_expr.to_poly den with
          | None -> () (* non-polynomial denominator: nothing provable *)
          | Some p ->
            let i =
              match ctx.ranges with
              | Some res -> Absint.bound_at res loc p
              | None -> Interval.eval_poly env p
            in
            if match Interval.is_point i with Some r -> Rat.is_zero r | None -> false then
              diags :=
                Diagnostic.make Diagnostic.Error ~check:"div-by-zero" ~loc "division by zero"
                  ~fix:"remove the division or fix the denominator"
                :: !diags
            else if Interval.contains i Rat.zero then
              diags :=
                Diagnostic.make Diagnostic.Warning ~check:"div-by-zero" ~loc
                  (Printf.sprintf "denominator %s has a sign region that includes zero"
                     (Poly.to_string p))
                  ~fix:"guard the division or declare a range excluding zero"
                :: !diags)
        | _ -> ())
      () e
  in
  let rec walk env stmts =
    List.iter
      (fun (s : Ast.stmt) ->
        let loc = s.Ast.loc in
        match s.Ast.kind with
        | Ast.Assign (lhs, e) ->
          List.iter (check_expr env loc) lhs.subs;
          check_expr env loc e
        | Ast.If (branches, els) ->
          List.iter
            (fun (cond, body) ->
              check_expr env loc cond;
              walk env body)
            branches;
          walk env els
        | Ast.Do d ->
          List.iter (check_expr env loc) (d.lo :: d.hi :: Option.to_list d.step);
          walk (extend_env env d) d.body
        | Ast.Call_stmt (_, args) -> List.iter (check_expr env loc) args
        | Ast.Return -> ())
      stmts
  in
  walk Interval.Env.empty c.routine.body;
  List.rev !diags

(* ---- 9b. provably empty loops ---- *)

let empty_loop ctx (c : Typecheck.checked) =
  let diags = ref [] in
  let add loc var why =
    diags :=
      Diagnostic.make Diagnostic.Warning ~check:"provably-empty-loop" ~loc
        (Printf.sprintf "the loop over %s never executes (%s)" var why)
        ~fix:"delete the loop or fix its bounds"
      :: !diags
  in
  Ast.iter_stmts
    (fun s ->
      match s.Ast.kind with
      | Ast.Do d -> (
        (* closed-form trip count that is a non-positive constant *)
        let static =
          match Sym_expr.trip_count ~lo:d.lo ~hi:d.hi ~step:d.step with
          | Some p -> (
            match Poly.to_const p with Some t when Rat.sign t <= 0 -> Some p | _ -> None)
          | None -> None
        in
        match static with
        | Some p ->
          add s.Ast.loc d.var (Printf.sprintf "its trip count is %s" (Poly.to_string p))
        | None -> (
          (* inferred trip interval with upper bound zero *)
          match ctx.ranges with
          | Some res -> (
            match
              List.find_opt
                (fun (l : Absint.loop_range) -> l.at = s.Ast.loc && l.lvar = d.var)
                (Absint.loops res)
            with
            | Some l when bound_le0 (Interval.hi l.trip) ->
              add s.Ast.loc d.var
                (Printf.sprintf "its inferred trip count is %s" (Interval.to_string l.trip))
            | _ -> ())
          | None -> ()))
      | _ -> ())
    c.routine.body;
  List.rev !diags

(* ---- 9c. conditions constant over the inferred ranges ---- *)

let constant_condition ctx (c : Typecheck.checked) =
  match ctx.ranges with
  | None -> [] (* needs the abstract interpretation; see unreachable-branch *)
  | Some res ->
    let diags = ref [] in
    let rec walk env stmts =
      List.iter
        (fun (s : Ast.stmt) ->
          match s.Ast.kind with
          | Ast.If (branches, els) ->
            List.iter
              (fun (cond, body) ->
                (* skip what the range-free unreachable-branch check already
                   decides, to avoid duplicate reports *)
                (match (cond_value env cond, Absint.decide_cond_at res s.Ast.loc cond) with
                | None, Some b ->
                  diags :=
                    Diagnostic.make Diagnostic.Hint ~check:"constant-condition" ~loc:s.Ast.loc
                      (Printf.sprintf "condition %s is always %s over the inferred ranges"
                         (Pp_ast.expr_to_string cond)
                         (if b then "true" else "false"))
                      ~fix:"drop the test or widen the variable's range"
                    :: !diags
                | _ -> ());
                walk env body)
              branches;
            walk env els
          | Ast.Do d -> walk (extend_env env d) d.body
          | Ast.Assign _ | Ast.Call_stmt _ | Ast.Return -> ())
        stmts
    in
    walk Interval.Env.empty c.routine.body;
    List.rev !diags

(* ---- 10. calls with no known cost ---- *)

let unknown_call ctx (c : Typecheck.checked) =
  let diags = ref [] in
  let flag loc f =
    diags :=
      Diagnostic.make Diagnostic.Precision ~check:"unknown-call" ~loc
        (Printf.sprintf "call to unknown routine %s falls back to the default call cost" f)
        ~fix:
          (Printf.sprintf
             "predict interprocedurally (-i) or register %s in the library cost table" f)
      :: !diags
  in
  let check_expr loc e =
    Ast.fold_expr
      (fun () sub ->
        match sub with
        | Ast.Call (f, _) when (not (Intrinsics.is_intrinsic f)) && not (ctx.known f) ->
          flag loc f
        | _ -> ())
      () e
  in
  Ast.iter_stmts
    (fun s ->
      let loc = s.Ast.loc in
      match s.Ast.kind with
      | Ast.Assign (lhs, e) -> List.iter (check_expr loc) (e :: lhs.subs)
      | Ast.If (branches, _) -> List.iter (fun (cond, _) -> check_expr loc cond) branches
      | Ast.Do d -> List.iter (check_expr loc) (d.lo :: d.hi :: Option.to_list d.step)
      | Ast.Call_stmt (f, args) ->
        if (not (Intrinsics.is_intrinsic f)) && not (ctx.known f) then flag loc f;
        List.iter (check_expr loc) args
      | Ast.Return -> ())
    c.routine.body;
  List.sort_uniq Diagnostic.compare !diags

(* ---- registry ---- *)

let registry =
  [
    { id = "use-before-def"; about = "scalar read before any assignment"; run = use_before_def };
    { id = "unused-var"; about = "declared variable never referenced"; run = unused_var };
    { id = "dead-store"; about = "scalar store whose value is never read"; run = dead_store };
    {
      id = "oob-subscript";
      about = "subscript provably outside the array extent (symbolic bounds included)";
      run = oob_subscript;
    };
    {
      id = "carried-dep";
      about = "loop-carried dependence: iterations are not independent";
      run = carried_dep;
    };
    {
      id = "non-affine-subscript";
      about = "subscript outside the affine domain of the dependence tests (precision loss)";
      run = non_affine;
    };
    { id = "bad-step"; about = "zero, contradictory, or sign-unknown do step"; run = bad_step };
    {
      id = "index-shadowed";
      about = "inner loop reuses an enclosing loop index";
      run = index_shadowed;
    };
    {
      id = "index-modified";
      about = "loop index assigned inside its loop body";
      run = index_modified;
    };
    {
      id = "unreachable-branch";
      about = "branch condition decided by sign analysis over the index ranges";
      run = unreachable;
    };
    { id = "div-by-zero"; about = "denominator sign region includes zero"; run = div_zero };
    {
      id = "provably-empty-loop";
      about = "do loop whose trip count is provably zero";
      run = empty_loop;
    };
    {
      id = "constant-condition";
      about = "branch condition decided by the inferred ranges (needs --ranges)";
      run = constant_condition;
    };
    {
      id = "unknown-call";
      about = "call charged the default cost (precision loss)";
      run = unknown_call;
    };
  ]

let ids = List.map (fun c -> c.id) registry
