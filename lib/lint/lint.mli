(** Running the diagnostic registry over routines and programs, with the
    text and JSON renderings the [ppredict lint] subcommand emits. *)

open Pperf_lang

type report = {
  routine : string;
  diagnostics : Diagnostic.t list;  (** in {!Diagnostic.compare} order *)
}

val run_checked :
  ?known:(string -> bool) ->
  ?ranges:bool ->
  ?domain:Pperf_absint.Absint.domain ->
  Typecheck.checked ->
  Diagnostic.t list
(** Every registry check over one routine. [known] marks routine names
    with a known cost (defaults to none). [ranges] (default false) runs
    the interval abstract interpretation first and hands the result to the
    checks: fewer out-of-bounds / div-by-zero false positives, dependence
    tests with variable ranges, and the [constant-condition] check.
    [domain] selects the abstract domain of that analysis — relational
    domains rebut further false positives (an [i + 1 <= n] guard inside an
    [i = 1..n] loop proves a subscript in range). *)

val run_program :
  ?ranges:bool -> ?domain:Pperf_absint.Absint.domain -> Typecheck.checked list -> report list
(** Routines defined in the program are [known] to each other. *)

val run_source :
  ?ranges:bool -> ?domain:Pperf_absint.Absint.domain -> string -> report list
(** Parse, check, lint. @raise Parser.Error / Typecheck.Type_error *)

val precision : Diagnostic.t list -> Diagnostic.t list
(** Only the [Precision] diagnostics — the subset predictions carry. *)

val dedupe : Diagnostic.t list -> Diagnostic.t list
(** Sort and drop diagnostics that repeat an earlier (check, location)
    pair — used when merging aggregation events with lint passes. *)

val all_diagnostics : report list -> Diagnostic.t list
val exit_code : report list -> int

val pp : Format.formatter -> report list -> unit
val to_json : report list -> string
