(** Running the diagnostic registry over routines and programs, with the
    text and JSON renderings the [ppredict lint] subcommand emits. *)

open Pperf_lang

type report = {
  routine : string;
  diagnostics : Diagnostic.t list;  (** in {!Diagnostic.compare} order *)
}

val run_checked :
  ?known:(string -> bool) -> ?ranges:bool -> Typecheck.checked -> Diagnostic.t list
(** Every registry check over one routine. [known] marks routine names
    with a known cost (defaults to none). [ranges] (default false) runs
    the interval abstract interpretation first and hands the result to the
    checks: fewer out-of-bounds / div-by-zero false positives, dependence
    tests with variable ranges, and the [constant-condition] check. *)

val run_program : ?ranges:bool -> Typecheck.checked list -> report list
(** Routines defined in the program are [known] to each other. *)

val run_source : ?ranges:bool -> string -> report list
(** Parse, check, lint. @raise Parser.Error / Typecheck.Type_error *)

val precision : Diagnostic.t list -> Diagnostic.t list
(** Only the [Precision] diagnostics — the subset predictions carry. *)

val dedupe : Diagnostic.t list -> Diagnostic.t list
(** Sort and drop diagnostics that repeat an earlier (check, location)
    pair — used when merging aggregation events with lint passes. *)

val all_diagnostics : report list -> Diagnostic.t list
val exit_code : report list -> int

val pp : Format.formatter -> report list -> unit
val to_json : report list -> string
