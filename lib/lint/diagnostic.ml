open Pperf_lang

type severity = Error | Warning | Precision | Hint

type t = {
  severity : severity;
  check : string;
  loc : Srcloc.t;
  message : string;
  fix : string option;
}

let make ?fix severity ~check ~loc message = { severity; check; loc; message; fix }

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Precision -> "precision"
  | Hint -> "hint"

let severity_rank = function Error -> 3 | Warning -> 2 | Precision -> 1 | Hint -> 0

let max_severity = function
  | [] -> None
  | d :: ds ->
    Some
      (List.fold_left
         (fun acc d -> if severity_rank d.severity > severity_rank acc then d.severity else acc)
         d.severity ds)

let exit_code ds =
  match max_severity ds with
  | Some Error -> 2
  | Some Warning -> 1
  | Some Precision | Some Hint | None -> 0

let compare a b =
  let c = Stdlib.compare (a.loc.Srcloc.line, a.loc.Srcloc.col) (b.loc.Srcloc.line, b.loc.Srcloc.col) in
  if c <> 0 then c
  else (
    let c = Stdlib.compare (severity_rank b.severity) (severity_rank a.severity) in
    if c <> 0 then c
    else (
      let c = String.compare a.check b.check in
      if c <> 0 then c else String.compare a.message b.message))

let pp_short fmt d =
  Format.fprintf fmt "%s %s[%s] %s" (Srcloc.to_string d.loc)
    (severity_to_string d.severity) d.check d.message

let pp fmt d =
  pp_short fmt d;
  match d.fix with None -> () | Some f -> Format.fprintf fmt "@.    fix: %s" f

(* hand-rolled JSON: the toolchain has no JSON library and the shape is flat *)
let json_escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let to_json buf d =
  Buffer.add_string buf "{\"severity\":\"";
  Buffer.add_string buf (severity_to_string d.severity);
  Buffer.add_string buf "\",\"check\":\"";
  json_escape buf d.check;
  Buffer.add_string buf (Printf.sprintf "\",\"line\":%d,\"col\":%d,\"message\":\"" d.loc.Srcloc.line d.loc.Srcloc.col);
  json_escape buf d.message;
  Buffer.add_string buf "\"";
  (match d.fix with
   | None -> ()
   | Some f ->
     Buffer.add_string buf ",\"fix\":\"";
     json_escape buf f;
     Buffer.add_string buf "\"");
  Buffer.add_string buf "}"
