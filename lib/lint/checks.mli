(** The diagnostic check registry: independent passes over a checked PF
    routine.

    Each check inspects one class of static fact the prediction framework
    rests on (§2.2.2's analyzer assumptions) and reports where it is
    violated ([Error]/[Warning]) or where the analyzer falls back to a
    conservative answer ([Precision]). Checks are pure and independent —
    they share only the type-checked routine — so the registry can grow
    without coupling. *)

open Pperf_lang

type ctx = {
  known : string -> bool;
      (** routines with a known cost: defined in the same program or
          registered in a library cost table *)
  ranges : Pperf_absint.Absint.result option;
      (** interval abstract interpretation of the routine; when present,
          out-of-bounds and division-by-zero verdicts are rebutted by the
          flow-sensitive ranges, the dependence tests receive invariant
          variable ranges, and [constant-condition] activates *)
}

val default_ctx : ctx
(** Nothing known beyond the intrinsics; no ranges. *)

type check = {
  id : string;  (** stable identifier, shown as [severity[id]] *)
  about : string;  (** one-line description for docs and [--help] *)
  run : ctx -> Typecheck.checked -> Diagnostic.t list;
}

val registry : check list
val ids : string list

val loop_carried :
  ?env:Pperf_symbolic.Interval.Env.t ->
  ?oracle:(Pperf_symbolic.Poly.t -> Pperf_symbolic.Interval.t) ->
  loc:Srcloc.t ->
  Ast.do_loop ->
  Diagnostic.t list
(** The carried-dependence diagnostics of one loop — exposed so the
    transformation search can cite the diagnostic that blocked an action.
    [env] passes loop-invariant variable ranges to the dependence tests;
    [oracle] passes relational facts over unreassigned variables. *)
