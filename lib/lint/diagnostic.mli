(** Structured static-analysis diagnostics for PF programs.

    The paper's framework is precise only while its static analyses hold:
    affine subscripts, decidable branches, known trip counts. Each
    diagnostic is a machine-checkable account of one place where a check
    found a defect ([Error]/[Warning]), where the analyzer's assumptions
    degrade the prediction ([Precision]), or where the code could be
    tightened ([Hint]). *)

open Pperf_lang

type severity =
  | Error  (** the program is wrong (out-of-bounds, zero step, ...) *)
  | Warning  (** likely wrong or meaningless (use before def, dead branch) *)
  | Precision  (** the prediction silently became conservative here *)
  | Hint  (** informational (dead store, carried dependence, ...) *)

type t = {
  severity : severity;
  check : string;  (** stable check identifier, e.g. ["oob-subscript"] *)
  loc : Srcloc.t;
  message : string;
  fix : string option;  (** optional remediation hint *)
}

val make : ?fix:string -> severity -> check:string -> loc:Srcloc.t -> string -> t

val severity_to_string : severity -> string

val severity_rank : severity -> int
(** [Error] > [Warning] > [Precision] > [Hint]. *)

val max_severity : t list -> severity option

val exit_code : t list -> int
(** Shell convention for the [lint] subcommand: 2 when any [Error], 1 when
    any [Warning], 0 otherwise ([Precision] and [Hint] are informational). *)

val compare : t -> t -> int
(** Source order (line, then column), then decreasing severity, then check
    id — the order reports print in. *)

val pp_short : Format.formatter -> t -> unit
(** [LINE:COL severity[check] message] on one line, no fix hint. *)

val pp : Format.formatter -> t -> unit
(** {!pp_short}, plus a [fix:] line when present. *)

val to_json : Buffer.t -> t -> unit
(** One JSON object; strings are escaped. *)
