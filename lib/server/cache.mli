(** Content-addressed result cache for the prediction service.

    Keys digest (machine hash, source hash, query kind, canonical flags);
    values are finished response payloads. Domain-safe; bounded with a
    second-chance sweep when full. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** [capacity] defaults to 4096 entries. *)

val key : machine_hash:string -> source_hash:string -> kind:string -> flags:string -> string

val find : 'a t -> string -> 'a option
(** Counts a hit or a miss. *)

val store : 'a t -> string -> 'a -> unit
(** First writer wins; concurrent duplicate computations store once. *)

val stats : 'a t -> int * int * int
(** [(hits, misses, entries)]. *)

val clear : 'a t -> unit
