(* Minimal JSON: just enough for the prediction service's line protocol.
   No external dependency; objects keep field order so responses render
   with a stable, pinnable layout. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

let error fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

(* ---------------------------------------------------------------- parse *)

type state = { s : string; mutable i : int }

let max_depth = 64

let peek st = if st.i < String.length st.s then Some st.s.[st.i] else None

let skip_ws st =
  while
    st.i < String.length st.s
    && match st.s.[st.i] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.i <- st.i + 1
  done

let expect st c =
  match peek st with
  | Some c' when c' = c -> st.i <- st.i + 1
  | Some c' -> error "expected '%c' at offset %d, got '%c'" c st.i c'
  | None -> error "expected '%c' at offset %d, got end of input" c st.i

let literal st word value =
  let n = String.length word in
  if st.i + n <= String.length st.s && String.sub st.s st.i n = word then (
    st.i <- st.i + n;
    value)
  else error "invalid literal at offset %d" st.i

let utf8_of_code buf code =
  (* encode one Unicode scalar value as UTF-8 *)
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then (
    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F))))
  else if code < 0x10000 then (
    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F))))
  else (
    Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F))))

let hex4 st =
  if st.i + 4 > String.length st.s then error "truncated \\u escape at offset %d" st.i;
  let v = ref 0 in
  for k = st.i to st.i + 3 do
    let d =
      match st.s.[k] with
      | '0' .. '9' as c -> Char.code c - Char.code '0'
      | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
      | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
      | c -> error "bad hex digit '%c' in \\u escape" c
    in
    v := (!v * 16) + d
  done;
  st.i <- st.i + 4;
  !v

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    if st.i >= String.length st.s then error "unterminated string";
    let c = st.s.[st.i] in
    st.i <- st.i + 1;
    match c with
    | '"' -> Buffer.contents buf
    | '\\' -> (
      if st.i >= String.length st.s then error "unterminated escape";
      let e = st.s.[st.i] in
      st.i <- st.i + 1;
      (match e with
       | '"' -> Buffer.add_char buf '"'
       | '\\' -> Buffer.add_char buf '\\'
       | '/' -> Buffer.add_char buf '/'
       | 'b' -> Buffer.add_char buf '\b'
       | 'f' -> Buffer.add_char buf '\012'
       | 'n' -> Buffer.add_char buf '\n'
       | 'r' -> Buffer.add_char buf '\r'
       | 't' -> Buffer.add_char buf '\t'
       | 'u' ->
         let code = hex4 st in
         let code =
           (* surrogate pair *)
           if code >= 0xD800 && code <= 0xDBFF
              && st.i + 2 <= String.length st.s
              && st.s.[st.i] = '\\'
              && st.s.[st.i + 1] = 'u'
           then (
             st.i <- st.i + 2;
             let lo = hex4 st in
             if lo >= 0xDC00 && lo <= 0xDFFF then
               0x10000 + ((code - 0xD800) lsl 10) + (lo - 0xDC00)
             else error "invalid low surrogate \\u%04X" lo)
           else code
         in
         (* a lone high or low surrogate is not a scalar value: encoding
            it would emit invalid UTF-8 that the printer passes through *)
         if code >= 0xD800 && code <= 0xDFFF then
           error "unpaired surrogate \\u%04X" code;
         utf8_of_code buf code
       | c -> error "bad escape '\\%c'" c);
      go ())
    | c when Char.code c < 0x20 -> error "raw control character in string"
    | c ->
      Buffer.add_char buf c;
      go ()
  in
  go ()

let parse_number st =
  let start = st.i in
  let is_num_char c =
    match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
  in
  while st.i < String.length st.s && is_num_char st.s.[st.i] do
    st.i <- st.i + 1
  done;
  let text = String.sub st.s start (st.i - start) in
  match int_of_string_opt text with
  | Some n -> Int n
  | None -> (
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> error "malformed number '%s' at offset %d" text start)

let rec parse_value st depth =
  if depth > max_depth then error "nesting deeper than %d" max_depth;
  skip_ws st;
  match peek st with
  | None -> error "unexpected end of input"
  | Some '"' -> String (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some '[' ->
    expect st '[';
    skip_ws st;
    if peek st = Some ']' then (
      st.i <- st.i + 1;
      List [])
    else (
      let rec items acc =
        let v = parse_value st (depth + 1) in
        skip_ws st;
        match peek st with
        | Some ',' ->
          st.i <- st.i + 1;
          items (v :: acc)
        | Some ']' ->
          st.i <- st.i + 1;
          List.rev (v :: acc)
        | _ -> error "expected ',' or ']' at offset %d" st.i
      in
      List (items []))
  | Some '{' ->
    expect st '{';
    skip_ws st;
    if peek st = Some '}' then (
      st.i <- st.i + 1;
      Obj [])
    else (
      let rec fields acc =
        skip_ws st;
        let k = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st (depth + 1) in
        skip_ws st;
        match peek st with
        | Some ',' ->
          st.i <- st.i + 1;
          fields ((k, v) :: acc)
        | Some '}' ->
          st.i <- st.i + 1;
          Obj (List.rev ((k, v) :: acc))
        | _ -> error "expected ',' or '}' at offset %d" st.i
      in
      fields [])
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> error "unexpected character '%c' at offset %d" c st.i

let of_string s =
  let st = { s; i = 0 } in
  let v = parse_value st 0 in
  skip_ws st;
  if st.i <> String.length s then error "trailing garbage at offset %d" st.i;
  v

(* ---------------------------------------------------------------- print *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 -> Printf.bprintf buf "\\u%04x" (Char.code c)
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f ->
    if Float.is_integer f && Float.abs f < 1e15 then
      Printf.bprintf buf "%.0f" f
    else Printf.bprintf buf "%.17g" f
  | String s -> escape buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        write buf v)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape buf k;
        Buffer.add_char buf ':';
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* ------------------------------------------------------------- accessors *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None

let to_string_opt = function String s -> Some s | _ -> None
let to_bool_opt = function Bool b -> Some b | _ -> None

let to_number_opt = function
  | Int n -> Some (float_of_int n)
  | Float f -> Some f
  | _ -> None

let to_list_opt = function List l -> Some l | _ -> None
