(* "Load the machine once": every subcommand and every server request
   resolves its machine spec through this memo, so a .pmach file is read,
   parsed, and its derived tables (atomic-op chains, bin kind-candidates)
   built exactly once per distinct machine — the cold-start cost the
   one-shot CLI used to pay on every invocation, and a daemon must not
   pay on every request. *)

open Pperf_machine
open Pperf_translate

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let builtin = function
  | "power1" -> Some Machine.power1
  | "power1x2" -> Some Machine.power1_wide
  | "alpha21064" | "alpha" -> Some Machine.alpha21064
  | "scalar" -> Some Machine.scalar
  | _ -> None

(* basic ops every translation asks for; mapping them at load time makes
   the shared chain memo effectively read-only before worker domains start
   hammering it *)
let common_basic_ops =
  Basic_op.
    [ B_iadd; B_isub; B_imul { small = true }; B_imul { small = false }; B_icmp;
      B_fadd Single; B_fsub Single; B_fmul Single; B_fma Single; B_fneg; B_fcmp;
      B_load { float = true }; B_load { float = false }; B_store { float = true };
      B_store { float = false }; B_branch; B_branch_cond; B_call ]

(* warming is purely an optimization: a machine that lacks one of the
   common ops must fail at translation time (with the op the translation
   actually needed), not at load time *)
let warm m =
  List.iter
    (fun b -> try ignore (Atomic_map.map m b) with Machine.Unknown_atomic _ -> ())
    common_basic_ops;
  ignore (Pperf_sched.Bins.create m)

(* warm once per machine (physical identity), so builtins served on every
   request do not rebuild their bins structure per request; a concurrent
   double-warm is harmless (warm is idempotent), the CAS only keeps the
   memo list consistent *)
let warmed : Machine.t list Atomic.t = Atomic.make []

let ensure_warm m =
  if not (List.memq m (Atomic.get warmed)) then (
    warm m;
    let rec publish () =
      let old = Atomic.get warmed in
      if List.memq m old then ()
      else if not (Atomic.compare_and_set warmed old (m :: old)) then publish ()
    in
    publish ())

let lock = Mutex.create ()
let with_lock f = Mutex.protect lock f

(* parse memo for file-based machines, keyed by the file's content digest
   (content-addressed: re-reading a changed file loads the new machine,
   re-reading an unchanged one is a table lookup) *)
let by_digest : (string, Machine.t) Hashtbl.t = Hashtbl.create 8

(* physically-keyed digest memo: Descr.to_string is canonical, so the
   digest identifies the machine's content wherever it came from *)
let hashes : (Machine.t * string) list Atomic.t = Atomic.make []

let hash (m : Machine.t) =
  match List.assq_opt m (Atomic.get hashes) with
  | Some h -> h
  | None ->
    let h = Digest.to_hex (Digest.string (Descr.to_string m)) in
    let rec publish () =
      let old = Atomic.get hashes in
      if List.mem_assq m old then ()
      else if Atomic.compare_and_set hashes old ((m, h) :: old) then ()
      else publish ()
    in
    publish ();
    h

let load spec =
  match builtin spec with
  | Some m ->
    ensure_warm m;
    m
  | None ->
    if Sys.file_exists spec then (
      let text = read_file spec in
      let digest = Digest.string text in
      with_lock (fun () ->
          match Hashtbl.find_opt by_digest digest with
          | Some m -> m
          | None ->
            let m = Descr.of_string text in
            ensure_warm m;
            Hashtbl.add by_digest digest m;
            m))
    else
      failwith
        (Printf.sprintf "unknown machine %s (power1|power1x2|alpha21064|scalar|FILE)" spec)

let loaded_count () = with_lock (fun () -> Hashtbl.length by_digest)
