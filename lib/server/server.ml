(* The service loops: `ppredict batch` (read requests to EOF, answer all)
   and `ppredict serve` (long-lived daemon on stdin/stdout or a Unix
   socket). One JSON request per line in, one JSON response per line out,
   in request order even though evaluation fans out to the domain pool —
   a sequencer holds out-of-order completions until their turn. The loop
   never dies on input: unparsable, ill-formed, or oversized lines get
   structured error responses and reading continues.

   The sequencer and the bounded line reader are exposed because the TCP
   fleet (lib/fleet) frames many concurrent connections onto the same
   protocol: one sequencer per connection, same reader per socket. *)

let default_max_request_bytes = 1 lsl 20

(* response-write latency (the last lifecycle stage a request sees) *)
let h_write = Pperf_obs.Obs.histogram "server.write_ns"

(* ------------------------------------------------------- bounded reader *)

type line = Line of string | Too_long | Eof

(* read one line, at most [max_bytes] long; longer lines are discarded to
   the newline and reported, so a runaway request cannot hold the line
   buffer hostage *)
let read_line_bounded ic ~max_bytes =
  let buf = Buffer.create 256 in
  let rec skip () =
    match input_char ic with exception End_of_file -> () | '\n' -> () | _ -> skip ()
  in
  let rec go n =
    match input_char ic with
    | exception End_of_file -> if n = 0 then Eof else Line (Buffer.contents buf)
    | '\n' -> Line (Buffer.contents buf)
    | c ->
      if n >= max_bytes then (
        skip ();
        Too_long)
      else (
        Buffer.add_char buf c;
        go (n + 1))
  in
  go 0

(* --------------------------------------------------------- sequencer *)

(* responses leave in request order: a worker finishing request [n] parks
   its response and whoever holds the next-to-emit response drains the run *)
module Sequencer = struct
  type t = {
    write : string -> unit;
    flush_out : unit -> unit;
    flush_each : bool;
    lock : Mutex.t;
    advanced : Condition.t;  (** signalled whenever [next] moves or the peer dies *)
    parked : (int, Protocol.response) Hashtbl.t;
    mutable next : int;
    mutable dead : bool;
        (** a write failed (peer hung up): stop emitting so the session can
            unwind instead of parking every later response forever *)
  }

  let create ?(flush_each = false) ~write ~flush () =
    { write; flush_out = flush; flush_each; lock = Mutex.create ();
      advanced = Condition.create (); parked = Hashtbl.create 16; next = 0; dead = false }

  (* emit is called from worker domains whose exceptions the pool swallows,
     so a failed write must not be silently dropped: the entry stays parked,
     [next] only advances on success, and [dead] tells the read loop to stop *)
  let emit seq n response =
    Mutex.protect seq.lock (fun () ->
        Hashtbl.replace seq.parked n response;
        let advanced = ref false in
        let rec pump () =
          if not seq.dead then
            match Hashtbl.find_opt seq.parked seq.next with
            | None -> ()
            | Some r -> (
              let t0 = Unix.gettimeofday () in
              match seq.write (Protocol.response_line r ^ "\n") with
              | () ->
                Pperf_obs.Obs.record h_write
                  (int_of_float ((Unix.gettimeofday () -. t0) *. 1e9));
                Hashtbl.remove seq.parked seq.next;
                seq.next <- seq.next + 1;
                advanced := true;
                pump ()
              | exception (Sys_error _ | Unix.Unix_error _) -> seq.dead <- true)
        in
        pump ();
        if seq.flush_each && not seq.dead then (
          try seq.flush_out ()
          with Sys_error _ | Unix.Unix_error _ -> seq.dead <- true);
        if !advanced || seq.dead then Condition.broadcast seq.advanced)

  let dead seq = Mutex.protect seq.lock (fun () -> seq.dead)
  let emitted seq = Mutex.protect seq.lock (fun () -> seq.next)

  (* block until every response below [upto] has left (or the peer died);
     [true] iff they were all written — the fleet's per-connection drain *)
  let wait seq ~upto =
    Mutex.protect seq.lock (fun () ->
        while seq.next < upto && not seq.dead do
          Condition.wait seq.advanced seq.lock
        done;
        not seq.dead)
end

let sequencer ~flush_each ~write ~flush_out =
  Sequencer.create ~flush_each ~write ~flush:flush_out ()

let emit = Sequencer.emit
let sequencer_dead = Sequencer.dead

(* ----------------------------------------------------------- session *)

(* best effort at correlating an error with the request's id *)
let id_of_line line =
  match Json.of_string line with
  | exception _ -> Json.Null
  | j -> Option.value (Json.member "id" j) ~default:Json.Null

(* Read requests until EOF, a shutdown verb, or a dead peer (write
   failure); returns [true] iff the session ended by shutdown. *)
let session ~engine ~pool ~max_request_bytes ~flush_each ic write flush_out =
  let seq = sequencer ~flush_each ~write ~flush_out in
  let n = ref 0 in
  let next () =
    let i = !n in
    incr n;
    i
  in
  let shutdown = ref false in
  let eof = ref false in
  while not (!shutdown || !eof || sequencer_dead seq) do
    match read_line_bounded ic ~max_bytes:max_request_bytes with
    | Eof -> eof := true
    | Too_long ->
      emit seq (next ())
        (Protocol.err ~id:Json.Null Protocol.Oversized
           (Printf.sprintf "request line exceeds %d bytes" max_request_bytes))
    | Line l when String.trim l = "" -> ()
    | Line l -> (
      let received = Unix.gettimeofday () in
      match Protocol.request_of_line l with
      | Error (code, msg) -> emit seq (next ()) (Protocol.err ~id:(id_of_line l) code msg)
      | Ok ({ verb = Protocol.Shutdown; _ } as req) ->
        emit seq (next ()) (Engine.handle engine ~received req);
        shutdown := true
      | Ok req ->
        let i = next () in
        Pool.submit pool (fun () -> emit seq i (Engine.handle engine ~received req)))
  done;
  Pool.drain pool;
  if not (sequencer_dead seq) then flush_out ();
  !shutdown

(* ------------------------------------------------------------- modes *)

let with_engine ?cache_capacity ~jobs f =
  let engine = Engine.create ?cache_capacity ~jobs () in
  let pool = Pool.create ~jobs in
  Fun.protect ~finally:(fun () -> Pool.close pool) (fun () -> f engine pool)

let batch ?cache_capacity ?(max_request_bytes = default_max_request_bytes) ~jobs ic oc =
  with_engine ?cache_capacity ~jobs (fun engine pool ->
      ignore
        (session ~engine ~pool ~max_request_bytes ~flush_each:false ic
           (output_string oc) (fun () -> flush oc));
      0)

let serve_channels ?cache_capacity ?(max_request_bytes = default_max_request_bytes)
    ~jobs ic oc =
  with_engine ?cache_capacity ~jobs (fun engine pool ->
      ignore
        (session ~engine ~pool ~max_request_bytes ~flush_each:true ic
           (output_string oc) (fun () -> flush oc));
      0)

(* ------------------------------------------ socket daemon plumbing *)

exception Already_serving of string

(* A leftover socket file from a killed daemon must not block restart,
   but hijacking a live daemon's socket would silently split traffic: a
   connect probe tells the two apart. Refused/ENOENT means nobody is
   accepting — stale, unlink it; an accepted connect means a live daemon. *)
let claim_socket_path path =
  if Sys.file_exists path then (
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      match Unix.connect probe (Unix.ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error _ -> false
    in
    (try Unix.close probe with Unix.Unix_error _ -> ());
    if live then raise (Already_serving path);
    try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())

let ignore_sigpipe () =
  try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore) with Invalid_argument _ -> ()

(* SIGTERM/SIGINT ask for a drain, not an abort: [on_stop] runs inside the
   handler (normal OCaml code at a safepoint) and must unblock whatever
   the accept/read loop is waiting on. Best-effort on platforms without
   signals. *)
let install_stop_handlers on_stop =
  let handle _ = on_stop () in
  List.iter
    (fun s -> try ignore (Sys.signal s (Sys.Signal_handle handle)) with Invalid_argument _ -> ())
    [ Sys.sigterm; Sys.sigint ]

(* Unix-socket daemon: one engine (one warm cache) across connections,
   served one at a time; a shutdown verb ends the whole daemon, EOF just
   the connection. SIGTERM/SIGINT drain the in-flight session and exit 0,
   unlinking the socket file on the way out. *)
let serve_socket ?cache_capacity ?(max_request_bytes = default_max_request_bytes)
    ~jobs path =
  claim_socket_path path;
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  ignore_sigpipe ();
  let stop = Atomic.make false in
  (* the fd the current session is reading; the signal handler shuts its
     receive side down so the blocked read sees EOF and the session winds
     down through its normal drain path. Atomic, not mutex: the handler
     runs at a safepoint of the main thread and must never try to take a
     lock that thread may hold *)
  let current = Atomic.make None in
  install_stop_handlers (fun () ->
      Atomic.set stop true;
      match Atomic.get current with
      | Some fd -> (
        try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
      | None -> ());
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock 8;
      with_engine ?cache_capacity ~jobs (fun engine pool ->
          while not (Atomic.get stop) do
            (* poll-accept so a signal between sessions is noticed within
               a tick instead of blocking in accept forever *)
            match Unix.select [ sock ] [] [] 0.25 with
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
            | [], _, _ -> ()
            | _ -> (
              match Unix.accept sock with
              | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _) -> ()
              | conn, _ ->
                Atomic.set current (Some conn);
                let ic = Unix.in_channel_of_descr conn in
                let oc = Unix.out_channel_of_descr conn in
                let shutdown =
                  try
                    session ~engine ~pool ~max_request_bytes ~flush_each:true ic
                      (output_string oc) (fun () -> flush oc)
                  with Sys_error _ | Unix.Unix_error _ ->
                    (* peer hung up mid-session: drop the connection, keep serving *)
                    Pool.drain pool;
                    false
                in
                Atomic.set current None;
                (try flush oc with Sys_error _ -> ());
                (try Unix.close conn with Unix.Unix_error _ -> ());
                if shutdown then Atomic.set stop true)
          done;
          0))

let serve ?cache_capacity ?max_request_bytes ?socket ~jobs () =
  match socket with
  | Some path -> serve_socket ?cache_capacity ?max_request_bytes ~jobs path
  | None -> serve_channels ?cache_capacity ?max_request_bytes ~jobs stdin stdout

(* In-memory batch session for tests and benchmarks: request lines in,
   response lines out, same code path as [batch]. *)
let batch_lines ?cache_capacity ?(max_request_bytes = default_max_request_bytes)
    ~jobs lines =
  with_engine ?cache_capacity ~jobs (fun engine pool ->
      let buf = Buffer.create 4096 in
      let seq =
        sequencer ~flush_each:false ~write:(Buffer.add_string buf) ~flush_out:ignore
      in
      let lines = List.filter (fun l -> String.trim l <> "") lines in
      List.iteri
        (fun i l ->
          if String.length l > max_request_bytes then
            emit seq i
              (Protocol.err ~id:Json.Null Protocol.Oversized
                 (Printf.sprintf "request line exceeds %d bytes" max_request_bytes))
          else (
            let received = Unix.gettimeofday () in
            match Protocol.request_of_line l with
            | Error (code, msg) -> emit seq i (Protocol.err ~id:(id_of_line l) code msg)
            | Ok req -> Pool.submit pool (fun () -> emit seq i (Engine.handle engine ~received req))))
        lines;
      Pool.drain pool;
      String.split_on_char '\n' (String.trim (Buffer.contents buf))
      |> List.filter (fun s -> s <> ""))
