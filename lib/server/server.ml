(* The service loops: `ppredict batch` (read requests to EOF, answer all)
   and `ppredict serve` (long-lived daemon on stdin/stdout or a Unix
   socket). One JSON request per line in, one JSON response per line out,
   in request order even though evaluation fans out to the domain pool —
   a sequencer holds out-of-order completions until their turn. The loop
   never dies on input: unparsable, ill-formed, or oversized lines get
   structured error responses and reading continues. *)

let default_max_request_bytes = 1 lsl 20

(* response-write latency (the last lifecycle stage a request sees) *)
let h_write = Pperf_obs.Obs.histogram "server.write_ns"

(* ------------------------------------------------------- bounded reader *)

type line = Line of string | Too_long | Eof

(* read one line, at most [max_bytes] long; longer lines are discarded to
   the newline and reported, so a runaway request cannot hold the line
   buffer hostage *)
let read_line_bounded ic ~max_bytes =
  let buf = Buffer.create 256 in
  let rec skip () =
    match input_char ic with exception End_of_file -> () | '\n' -> () | _ -> skip ()
  in
  let rec go n =
    match input_char ic with
    | exception End_of_file -> if n = 0 then Eof else Line (Buffer.contents buf)
    | '\n' -> Line (Buffer.contents buf)
    | c ->
      if n >= max_bytes then (
        skip ();
        Too_long)
      else (
        Buffer.add_char buf c;
        go (n + 1))
  in
  go 0

(* --------------------------------------------------------- sequencer *)

(* responses leave in request order: a worker finishing request [n] parks
   its response and whoever holds the next-to-emit response drains the run *)
type sequencer = {
  write : string -> unit;
  flush_out : unit -> unit;
  flush_each : bool;
  lock : Mutex.t;
  parked : (int, Protocol.response) Hashtbl.t;
  mutable next : int;
  mutable dead : bool;
      (** a write failed (peer hung up): stop emitting so the session can
          unwind instead of parking every later response forever *)
}

let sequencer ~flush_each ~write ~flush_out =
  { write; flush_out; flush_each; lock = Mutex.create (); parked = Hashtbl.create 16;
    next = 0; dead = false }

(* emit is called from worker domains whose exceptions the pool swallows,
   so a failed write must not be silently dropped: the entry stays parked,
   [next] only advances on success, and [dead] tells the read loop to stop *)
let emit seq n response =
  Mutex.protect seq.lock (fun () ->
      Hashtbl.replace seq.parked n response;
      let rec pump () =
        if not seq.dead then
          match Hashtbl.find_opt seq.parked seq.next with
          | None -> ()
          | Some r -> (
            let t0 = Unix.gettimeofday () in
            match seq.write (Protocol.response_line r ^ "\n") with
            | () ->
              Pperf_obs.Obs.record h_write
                (int_of_float ((Unix.gettimeofday () -. t0) *. 1e9));
              Hashtbl.remove seq.parked seq.next;
              seq.next <- seq.next + 1;
              pump ()
            | exception (Sys_error _ | Unix.Unix_error _) -> seq.dead <- true)
      in
      pump ();
      if seq.flush_each && not seq.dead then
        try seq.flush_out ()
        with Sys_error _ | Unix.Unix_error _ -> seq.dead <- true)

let sequencer_dead seq = Mutex.protect seq.lock (fun () -> seq.dead)

(* ----------------------------------------------------------- session *)

(* best effort at correlating an error with the request's id *)
let id_of_line line =
  match Json.of_string line with
  | exception _ -> Json.Null
  | j -> Option.value (Json.member "id" j) ~default:Json.Null

(* Read requests until EOF, a shutdown verb, or a dead peer (write
   failure); returns [true] iff the session ended by shutdown. *)
let session ~engine ~pool ~max_request_bytes ~flush_each ic write flush_out =
  let seq = sequencer ~flush_each ~write ~flush_out in
  let n = ref 0 in
  let next () =
    let i = !n in
    incr n;
    i
  in
  let shutdown = ref false in
  let eof = ref false in
  while not (!shutdown || !eof || sequencer_dead seq) do
    match read_line_bounded ic ~max_bytes:max_request_bytes with
    | Eof -> eof := true
    | Too_long ->
      emit seq (next ())
        (Protocol.err ~id:Json.Null Protocol.Oversized
           (Printf.sprintf "request line exceeds %d bytes" max_request_bytes))
    | Line l when String.trim l = "" -> ()
    | Line l -> (
      let received = Unix.gettimeofday () in
      match Protocol.request_of_line l with
      | Error (code, msg) -> emit seq (next ()) (Protocol.err ~id:(id_of_line l) code msg)
      | Ok ({ verb = Protocol.Shutdown; _ } as req) ->
        emit seq (next ()) (Engine.handle engine ~received req);
        shutdown := true
      | Ok req ->
        let i = next () in
        Pool.submit pool (fun () -> emit seq i (Engine.handle engine ~received req)))
  done;
  Pool.drain pool;
  if not (sequencer_dead seq) then flush_out ();
  !shutdown

(* ------------------------------------------------------------- modes *)

let with_engine ?cache_capacity ~jobs f =
  let engine = Engine.create ?cache_capacity ~jobs () in
  let pool = Pool.create ~jobs in
  Fun.protect ~finally:(fun () -> Pool.close pool) (fun () -> f engine pool)

let batch ?cache_capacity ?(max_request_bytes = default_max_request_bytes) ~jobs ic oc =
  with_engine ?cache_capacity ~jobs (fun engine pool ->
      ignore
        (session ~engine ~pool ~max_request_bytes ~flush_each:false ic
           (output_string oc) (fun () -> flush oc));
      0)

let serve_channels ?cache_capacity ?(max_request_bytes = default_max_request_bytes)
    ~jobs ic oc =
  with_engine ?cache_capacity ~jobs (fun engine pool ->
      ignore
        (session ~engine ~pool ~max_request_bytes ~flush_each:true ic
           (output_string oc) (fun () -> flush oc));
      0)

(* Unix-socket daemon: one engine (one warm cache) across connections,
   served one at a time; a shutdown verb ends the whole daemon, EOF just
   the connection. *)
let serve_socket ?cache_capacity ?(max_request_bytes = default_max_request_bytes)
    ~jobs path =
  if Sys.file_exists path then Unix.unlink path;
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore) with Invalid_argument _ -> ());
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock 8;
      with_engine ?cache_capacity ~jobs (fun engine pool ->
          let stop = ref false in
          while not !stop do
            let conn, _ = Unix.accept sock in
            let ic = Unix.in_channel_of_descr conn in
            let oc = Unix.out_channel_of_descr conn in
            let shutdown =
              try
                session ~engine ~pool ~max_request_bytes ~flush_each:true ic
                  (output_string oc) (fun () -> flush oc)
              with Sys_error _ | Unix.Unix_error _ ->
                (* peer hung up mid-session: drop the connection, keep serving *)
                Pool.drain pool;
                false
            in
            (try flush oc with Sys_error _ -> ());
            (try Unix.close conn with Unix.Unix_error _ -> ());
            if shutdown then stop := true
          done;
          0))

let serve ?cache_capacity ?max_request_bytes ?socket ~jobs () =
  match socket with
  | Some path -> serve_socket ?cache_capacity ?max_request_bytes ~jobs path
  | None -> serve_channels ?cache_capacity ?max_request_bytes ~jobs stdin stdout

(* In-memory batch session for tests and benchmarks: request lines in,
   response lines out, same code path as [batch]. *)
let batch_lines ?cache_capacity ?(max_request_bytes = default_max_request_bytes)
    ~jobs lines =
  with_engine ?cache_capacity ~jobs (fun engine pool ->
      let buf = Buffer.create 4096 in
      let seq =
        sequencer ~flush_each:false ~write:(Buffer.add_string buf) ~flush_out:ignore
      in
      let lines = List.filter (fun l -> String.trim l <> "") lines in
      List.iteri
        (fun i l ->
          if String.length l > max_request_bytes then
            emit seq i
              (Protocol.err ~id:Json.Null Protocol.Oversized
                 (Printf.sprintf "request line exceeds %d bytes" max_request_bytes))
          else (
            let received = Unix.gettimeofday () in
            match Protocol.request_of_line l with
            | Error (code, msg) -> emit seq i (Protocol.err ~id:(id_of_line l) code msg)
            | Ok req -> Pool.submit pool (fun () -> emit seq i (Engine.handle engine ~received req))))
        lines;
      Pool.drain pool;
      String.split_on_char '\n' (String.trim (Buffer.contents buf))
      |> List.filter (fun s -> s <> ""))
