(** The JSON-lines request/response protocol spoken by [ppredict batch]
    and [ppredict serve].

    One request object per input line; one response object per output
    line, in request order. Query verbs ([predict], [compare], [ranges],
    [lint], [bounds]) carry a machine spec, a source (inline text or a
    file path) and CLI-mirroring flags; their [output] field is
    byte-identical to the one-shot CLI subcommand's stdout. [machines]
    (list known machines) and [calibrate] (fit a ports cost model to the
    request's machine by measurement) take no source; both are cached like
    the other query verbs. Control verbs: [ping], [stats], [metrics],
    [shutdown].

    {b Versioning.} Requests may carry an optional top-level [{"v": 1}]
    field; absent means version {!protocol_version}. Any other value is a
    [bad_request]. Unknown top-level fields are a [bad_request] under
    [flags.strict] and a response warning otherwise, so old servers fail
    loudly (or at least visibly) on newer clients. *)

type verb =
  | Predict | Compare | Ranges | Lint | Bounds | Machines | Calibrate
  | Ping | Stats | Metrics | Shutdown

val protocol_version : int
(** The wire version this server speaks (1). *)

val verb_string : verb -> string
val verb_of_string : string -> verb option

type source = File of string | Text of string

type flags = Options.t = {
  memory : bool;  (** include the cache cost model (CLI [--memory]) *)
  ranges : bool;  (** interval analysis first (CLI [--ranges]) *)
  interproc : bool;  (** call-site charging (CLI [-i], predict only) *)
  strict : bool;  (** binding/protocol mismatches are errors (CLI [--strict]) *)
  json : bool;  (** JSON output for [ranges]/[lint] (CLI [--json]) *)
  trace : bool;  (** append the span tree of the evaluation (CLI [--trace]) *)
  eval : string list;  (** [VAR=VALUE] bindings (CLI [--eval]) *)
  range : string list;  (** [VAR=LO:HI] ranges (CLI [--range], compare only) *)
  domain : string option;
      (** abstract domain for range analysis (CLI [--domain]); validated
          against {!Pperf_absint.Absint.all_domains} at parse time *)
}

val default_flags : flags

type request = {
  id : Json.t;  (** echoed verbatim in the response; [Null] if absent *)
  verb : verb;
  machine : string;  (** builtin name or .pmach path; default ["power1"] *)
  source : source option;
  source2 : source option;  (** second variant, [compare] only *)
  flags : flags;
  deadline_ms : float option;
      (** budget from the moment the server reads the request: requests
          still queued past it are rejected with [deadline_exceeded];
          responses finishing past it carry [deadline_missed] *)
  proto_warnings : string list;
      (** non-strict protocol diagnoses (unknown top-level fields),
          surfaced in the response's [warnings] *)
}

type error_code =
  | Bad_json  (** the line is not valid JSON *)
  | Unknown_verb
  | Bad_request  (** well-formed JSON, ill-formed request *)
  | Oversized  (** line longer than the server's request budget *)
  | Parse_error  (** PF source failed to parse *)
  | Type_error  (** PF source failed to typecheck *)
  | Machine_error  (** unknown machine, bad description, missing atomic *)
  | Deadline_exceeded
  | Overloaded
      (** admission control shed the request (fleet queue full); the
          response carries a [retry_after_ms] hint *)
  | Failed  (** the analysis itself reported an error ([Failure]) *)
  | Internal  (** anything else; the server stays up *)

val error_code_string : error_code -> string

val request_of_json : Json.t -> (request, error_code * string) result
val request_of_line : string -> (request, error_code * string) result

val flags_key : flags -> string
(** Canonical flag rendering used in the result-cache key; an alias for
    {!Options.to_canonical_string}. *)

val cacheable : verb -> bool

type timing = { queue_ns : int; eval_ns : int }

type response =
  | Ok_response of {
      id : Json.t;
      verb : verb;
      status : int;  (** the one-shot CLI's exit code (lint: 0/1/2) *)
      cached : bool;
      deadline_missed : bool;
      warnings : string list;  (** what the CLI would print to stderr *)
      output : string;  (** byte-identical to the CLI subcommand's stdout *)
      stats : Json.t option;  (** [stats] verb payload, replaces [output] *)
      trace : Json.t option;  (** span tree, present iff [flags.trace] *)
      timing : timing;
    }
  | Err_response of {
      id : Json.t;
      code : error_code;
      message : string;
      retry_after_ms : int option;
          (** rendered as ["retry_after_ms"] in the error object; only
              admission-control rejections set it *)
    }

val ok :
  ?status:int ->
  ?cached:bool ->
  ?deadline_missed:bool ->
  ?warnings:string list ->
  ?stats:Json.t ->
  ?trace:Json.t ->
  id:Json.t ->
  verb:verb ->
  timing:timing ->
  string ->
  response

val err : ?retry_after_ms:int -> id:Json.t -> error_code -> string -> response
val response_id : response -> Json.t
val response_to_json : response -> Json.t
val response_line : response -> string
