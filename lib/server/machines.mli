(** The "load the machine once" helper shared by every CLI subcommand and
    by the prediction server.

    Resolves a machine spec — a builtin name ([power1], [power1x2],
    [alpha21064]/[alpha], [scalar]) or a [.pmach] description file — and
    memoizes file loads by content digest, so a long-lived server parses
    each distinct description once while still picking up edits to the
    file. Loading also pre-builds the machine's derived tables (atomic-op
    chains, bin kind-candidate arrays) so worker domains mostly read them.
    Domain-safe. *)

open Pperf_machine

val load : string -> Machine.t
(** @raise Failure on an unknown name, {!Descr.Parse_error} on a bad
    description file. *)

val hash : Machine.t -> string
(** Content digest of the machine's canonical textual description
    (memoized per machine); part of the server's result-cache key. *)

val warm : Machine.t -> unit
(** Pre-build the derived tables for a machine obtained elsewhere. *)

val loaded_count : unit -> int
(** Distinct description files parsed so far (the [stats] verb's
    [machines] field). *)
