(** Fixed pool of OCaml 5 worker domains over a shared job queue.

    [jobs = 1] degenerates to inline execution on the submitting domain —
    no spawn, deterministic order — so sequential mode is exactly the
    sequential semantics. Jobs must handle their own errors; a raising job
    is swallowed (the server's jobs always produce a response instead). *)

type t

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count], at least 1. *)

val create : jobs:int -> t
(** @raise Invalid_argument when [jobs < 1] — callers validate user input
    (the CLI rejects [--jobs 0] at parse time) rather than silently
    clamping. *)

val jobs : t -> int

val submit : t -> (unit -> unit) -> unit
(** Enqueue (or run inline when [jobs = 1]).
    @raise Invalid_argument after {!close}. *)

val drain : t -> unit
(** Block until every submitted job has finished. *)

val close : t -> unit
(** Drain, then stop and join the workers. Idempotent. *)
