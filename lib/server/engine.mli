(** Request evaluation for the prediction service.

    [handle] maps one {!Protocol.request} to one {!Protocol.response} and
    never lets an exception escape: the CLI's error table (parse, type,
    machine, [Failure]) becomes structured error responses, and anything
    else becomes [internal] with the server still live.

    Query verbs are served through a content-addressed result cache keyed
    by (machine hash, source hash, verb, canonical flags) — file sources
    are digested by content, so editing the file invalidates the entry —
    and, on a miss, rendered with {!Render} (predict through a per-domain
    {!Pperf_core.Incremental} predictor), so [output] is byte-identical
    to the one-shot CLI subcommand. *)

type t

val create : ?cache_capacity:int -> jobs:int -> unit -> t
(** [jobs] is reported by the [stats] verb.
    @raise Invalid_argument when [jobs < 1]. *)

val jobs : t -> int

val mean_eval_ns : t -> int
(** Mean evaluation wall time per answered request so far (0 before any
    request completes); the fleet's admission control scales its
    [retry_after_ms] hint by it. *)

val handle : t -> received:float -> Protocol.request -> Protocol.response
(** [received] is [Unix.gettimeofday ()] at the moment the request line
    was read; deadlines and queue time are measured from it. *)

val stats_json : t -> Json.t
(** The [stats] verb payload: request/outcome counts, result-cache and
    incremental-cache hit rates, loaded machines, jobs, cumulative
    queue/eval time, p50/p90/p99 request latency plus per-stage
    (queue/cache/eval/write) histogram summaries, span aggregates, and
    the {!Pperf_obs.Obs} counter snapshot. *)

val metrics_text : t -> string
(** The [metrics] verb payload: the full telemetry snapshot (counters,
    gauges, latency histograms, span aggregates) as Prometheus text
    exposition, with the engine's own state published as gauges. *)

val cache_stats : t -> int * int * int
(** [(hits, misses, entries)] of the result cache. *)
