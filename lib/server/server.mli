(** The service loops behind [ppredict batch] and [ppredict serve].

    JSON-lines protocol (see {!Protocol}): one request per input line,
    one response per output line, responses in request order even though
    evaluation fans out to a {!Pool} of worker domains. Malformed,
    unknown-verb, and oversized lines produce structured error responses;
    the loop itself never dies on input. *)

val default_max_request_bytes : int
(** 1 MiB. *)

val batch :
  ?cache_capacity:int ->
  ?max_request_bytes:int ->
  jobs:int ->
  in_channel ->
  out_channel ->
  int
(** Read requests until EOF (or a [shutdown] verb), answer all, flush
    once at the end. Returns the process exit code (0). *)

val serve :
  ?cache_capacity:int ->
  ?max_request_bytes:int ->
  ?socket:string ->
  jobs:int ->
  unit ->
  int
(** Long-lived daemon. Without [socket]: stdin/stdout, one response
    flushed per request, until EOF or [shutdown]. With [socket]: bind a
    Unix socket at the path (replacing any stale file) and serve
    connections one at a time with a single shared engine — a warm cache
    survives across connections; EOF ends a connection, [shutdown] ends
    the daemon. *)

val batch_lines :
  ?cache_capacity:int -> ?max_request_bytes:int -> jobs:int -> string list -> string list
(** In-memory batch session for tests and benchmarks: request lines in,
    response lines out (blank input lines skipped), same evaluation path
    as {!batch}. *)
