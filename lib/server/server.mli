(** The service loops behind [ppredict batch] and [ppredict serve].

    JSON-lines protocol (see {!Protocol}): one request per input line,
    one response per output line, responses in request order even though
    evaluation fans out to a {!Pool} of worker domains. Malformed,
    unknown-verb, and oversized lines produce structured error responses;
    the loop itself never dies on input.

    The building blocks ({!Sequencer}, {!read_line_bounded}) are exposed
    for the TCP fleet (lib/fleet), which frames many concurrent
    connections onto this same protocol. *)

val default_max_request_bytes : int
(** 1 MiB. *)

type line = Line of string | Too_long | Eof

val read_line_bounded : in_channel -> max_bytes:int -> line
(** Read one newline-terminated line of at most [max_bytes] bytes. A
    longer line is consumed up to its newline and reported as [Too_long],
    so an oversized request cannot wedge the connection. A final unterminated
    line is returned as [Line]. *)

(** Per-connection in-order response emission. Workers finish in any
    order; [emit t n r] parks response [n] and writes out the maximal
    contiguous run starting at the next unemitted index. A failed write
    marks the sequencer {!Sequencer.dead} (the peer hung up) and further
    emissions are dropped so the session can unwind. *)
module Sequencer : sig
  type t

  val create :
    ?flush_each:bool -> write:(string -> unit) -> flush:(unit -> unit) -> unit -> t
  (** [flush_each] flushes after every [emit] that wrote something —
      daemon mode; batch mode flushes once at the end. *)

  val emit : t -> int -> Protocol.response -> unit
  (** Thread- and domain-safe. *)

  val dead : t -> bool
  val emitted : t -> int
  (** Number of responses written so far (= next index awaited). *)

  val wait : t -> upto:int -> bool
  (** Block until all responses below [upto] have been written, or the
      sequencer died; [true] iff they were all written. *)
end

val batch :
  ?cache_capacity:int ->
  ?max_request_bytes:int ->
  jobs:int ->
  in_channel ->
  out_channel ->
  int
(** Read requests until EOF (or a [shutdown] verb), answer all, flush
    once at the end. Returns the process exit code (0). *)

exception Already_serving of string
(** Raised when the requested Unix-socket path is owned by a live daemon
    (a probe connect was accepted). *)

val claim_socket_path : string -> unit
(** Prepare to bind a Unix socket at the path: nothing to do if the file
    is absent; if present, probe-connect — refused means a stale file
    from a dead daemon (unlink it), accepted means a live daemon
    (@raise Already_serving). *)

val serve :
  ?cache_capacity:int ->
  ?max_request_bytes:int ->
  ?socket:string ->
  jobs:int ->
  unit ->
  int
(** Long-lived daemon. Without [socket]: stdin/stdout, one response
    flushed per request, until EOF or [shutdown]. With [socket]: bind a
    Unix socket at the path (replacing a stale socket file, refusing a
    live one — see {!claim_socket_path}) and serve connections one at a
    time with a single shared engine — a warm cache survives across
    connections; EOF ends a connection, [shutdown] ends the daemon.
    SIGTERM/SIGINT drain the in-flight session, then exit cleanly (the
    socket file is unlinked on every exit path). *)

val batch_lines :
  ?cache_capacity:int -> ?max_request_bytes:int -> jobs:int -> string list -> string list
(** In-memory batch session for tests and benchmarks: request lines in,
    response lines out (blank input lines skipped), same evaluation path
    as {!batch}. *)
