(* Content-addressed result cache. The key digests (machine hash, source
   hash, query kind, canonical flags); the value is the finished response
   payload, so a warm hit costs one digest and one table lookup — no
   parsing, no translation, no bin packing. Shared across worker domains
   behind a mutex (critical sections are lookups and inserts only; the
   expensive evaluation happens outside the lock). Bounded: when full,
   a cheap second-chance sweep evicts the stalest entries. *)

type 'a entry = { value : 'a; mutable live : bool }

type 'a t = {
  capacity : int;
  table : (string, 'a entry) Hashtbl.t;
  lock : Mutex.t;
  hits : int Atomic.t;
  misses : int Atomic.t;
}

let create ?(capacity = 4096) () =
  {
    capacity = max 1 capacity;
    table = Hashtbl.create 256;
    lock = Mutex.create ();
    hits = Atomic.make 0;
    misses = Atomic.make 0;
  }

let key ~machine_hash ~source_hash ~kind ~flags =
  Digest.to_hex
    (Digest.string (String.concat "\x00" [ machine_hash; source_hash; kind; flags ]))

let find t k =
  Mutex.protect t.lock (fun () ->
      match Hashtbl.find_opt t.table k with
      | Some e ->
        e.live <- true;
        Atomic.incr t.hits;
        Some e.value
      | None ->
        Atomic.incr t.misses;
        None)

(* second-chance eviction: clear every live bit; drop entries not touched
   since the previous sweep until half the capacity is free *)
let evict_locked t =
  let stale =
    Hashtbl.fold
      (fun k e acc -> if e.live then (e.live <- false; acc) else k :: acc)
      t.table []
  in
  let want_free = t.capacity / 2 in
  let rec drop n = function
    | k :: rest when n < want_free ->
      Hashtbl.remove t.table k;
      drop (n + 1) rest
    | _ -> n
  in
  let freed = drop 0 stale in
  if freed < want_free then (
    (* everything was recently touched: fall back to dropping arbitrary
       entries so an adversarial key stream cannot pin the table *)
    let extra = ref (want_free - freed) in
    let keys = Hashtbl.fold (fun k _ acc -> k :: acc) t.table [] in
    List.iter
      (fun k ->
        if !extra > 0 then (
          Hashtbl.remove t.table k;
          decr extra))
      keys)

let store t k v =
  Mutex.protect t.lock (fun () ->
      if Hashtbl.length t.table >= t.capacity then evict_locked t;
      if not (Hashtbl.mem t.table k) then Hashtbl.add t.table k { value = v; live = true })

let stats t =
  Mutex.protect t.lock (fun () ->
      (Atomic.get t.hits, Atomic.get t.misses, Hashtbl.length t.table))

let clear t =
  Mutex.protect t.lock (fun () ->
      Hashtbl.reset t.table;
      Atomic.set t.hits 0;
      Atomic.set t.misses 0)
