(* The one-shot renderings of the query subcommands, shared verbatim by
   `ppredict predict/compare/ranges/lint` and the server's verbs of the
   same names: both sides call these, so a server response's [output] is
   byte-identical to the one-shot CLI's stdout by construction (the CI
   serve-gate asserts it end-to-end). *)

open Pperf_lang
open Pperf_core
module Obs = Pperf_obs.Obs
module Bounds = Pperf_bounds.Bounds

(* one span for the whole rendering of a query verb: in a trace it is the
   parent of the pipeline phase spans (parse, typecheck, aggregate, ...) *)
let sp_render = Obs.span "render"

let with_formatter f =
  let buf = Buffer.create 1024 in
  let fmt = Format.formatter_of_buffer buf in
  f fmt;
  Format.pp_print_flush fmt ();
  Buffer.contents buf

exception Bad_flag of string
(* A malformed --eval/--bind/--range value. The CLI never raises it (its
   cmdliner converters validate at parse time); the server maps it to a
   structured bad_request response instead of a generic failure. *)

let parse_bindings specs =
  List.map
    (fun s ->
      match String.index_opt s '=' with
      | Some i -> (
        let value = String.sub s (i + 1) (String.length s - i - 1) in
        match float_of_string_opt value with
        | Some f -> (String.sub s 0 i, f)
        | None ->
          raise
            (Bad_flag
               (Printf.sprintf "malformed binding '%s': '%s' is not a number" s value)))
      | None ->
        raise
          (Bad_flag (Printf.sprintf "malformed binding '%s': expected VAR=VALUE" s)))
    specs

let range_env specs =
  List.fold_left
    (fun env spec ->
      match String.split_on_char '=' spec with
      | [ v; range ] -> (
        match String.split_on_char ':' range with
        | [ lo; hi ] -> (
          match (int_of_string_opt lo, int_of_string_opt hi) with
          | Some lo, Some hi ->
            Pperf_symbolic.Interval.Env.add v
              (Pperf_symbolic.Interval.of_ints lo hi)
              env
          | _ ->
            raise
              (Bad_flag
                 (Printf.sprintf "malformed range '%s': bounds must be integers" spec)))
        | _ ->
          raise
            (Bad_flag (Printf.sprintf "malformed range '%s': expected VAR=LO:HI" spec)))
      | _ ->
        raise
          (Bad_flag (Printf.sprintf "malformed range '%s': expected VAR=LO:HI" spec)))
    Pperf_symbolic.Interval.Env.empty specs

(* an --eval/--bind set that names variables the expression does not have,
   or misses variables it does, silently predicts with the wrong values
   (unbound unknowns default to 1.0); say so *)
let check_bindings ~strict ~warn ~expr_vars ~prob_vars bindings =
  if bindings <> [] then (
    let bound = List.map fst bindings in
    let known v = List.mem v expr_vars || List.mem v prob_vars in
    let unused = List.filter (fun v -> not (known v)) bound in
    let unbound = List.filter (fun v -> not (List.mem v bound)) expr_vars in
    let msgs =
      (if unused = [] then []
       else
         [ Printf.sprintf
             "binding%s %s do%s not match any variable of the performance expression"
             (if List.length unused = 1 then "" else "s")
             (String.concat ", " unused)
             (if List.length unused = 1 then "es" else "") ])
      @
      if unbound = [] then []
      else
        [ Printf.sprintf "unbound variable%s %s default%s to 1.0"
            (if List.length unbound = 1 then "" else "s")
            (String.concat ", " unbound)
            (if List.length unbound = 1 then "s" else "") ]
    in
    if msgs <> [] then
      if strict then failwith (String.concat "; " msgs) else List.iter warn msgs)

(* ---- predict ---- *)

let predict ?predictor ~machine ~options ~interproc ~strict ~evals ~warn src =
  Obs.time sp_render @@ fun () ->
  let use_ranges = options.Aggregate.infer_ranges in
  let bindings = parse_bindings evals in
  with_formatter (fun fmt ->
      if interproc then (
        let t = Interproc.of_source ~options ~machine src in
        Format.fprintf fmt "%a" Interproc.pp t;
        if bindings <> [] then
          List.iter
            (fun (rp : Interproc.routine_prediction) ->
              let total = Perf_expr.total rp.prediction.cost in
              check_bindings ~strict ~warn ~expr_vars:(Pperf_symbolic.Poly.vars total)
                ~prob_vars:rp.prediction.prob_vars bindings;
              let v =
                Pperf_symbolic.Poly.eval_float
                  (fun x -> match List.assoc_opt x bindings with Some f -> f | None -> 1.0)
                  total
              in
              Format.fprintf fmt "  %s at bindings: %.0f cycles@." rp.checked.routine.rname v)
            t.routines)
      else (
        let checkeds = Typecheck.check_program (Parser.parse_program src) in
        let predictions =
          List.map
            (fun (c : Typecheck.checked) ->
              let prediction =
                match predictor with
                | Some f -> f c
                | None -> Aggregate.routine ~machine ~options c
              in
              { Predict.routine = c.routine; symbols = c.symbols; machine; prediction })
            checkeds
        in
        List.iter
          (fun p ->
            Format.fprintf fmt "%a@." Predict.pp p;
            if Predict.prob_vars p <> [] then
              Format.fprintf fmt "  branch probabilities: %s (in [0,1])@."
                (String.concat ", " (Predict.prob_vars p));
            let diags = Predict.precision_diagnostics ~ranges:use_ranges p in
            if diags <> [] then (
              Format.fprintf fmt "  precision diagnostics:@.";
              List.iter
                (fun d -> Format.fprintf fmt "    %a@." Pperf_lint.Diagnostic.pp_short d)
                diags);
            if bindings <> [] then (
              check_bindings ~strict ~warn
                ~expr_vars:(Pperf_symbolic.Poly.vars (Predict.total p))
                ~prob_vars:(Predict.prob_vars p) bindings;
              Format.fprintf fmt "  at %s: %.0f cycles@."
                (String.concat ", "
                   (List.map (fun (v, x) -> Printf.sprintf "%s=%g" v x) bindings))
                (Predict.eval p bindings)))
          predictions))

(* ---- compare ---- *)

let compare ?(domain = Pperf_absint.Absint.Box) ~machine ~options ~use_ranges ~ranges
    src1 src2 =
  Obs.time sp_render @@ fun () ->
  let user_env = range_env ranges in
  with_formatter (fun fmt ->
      let c1 = Typecheck.check_routine (Parser.parse_routine src1) in
      let c2 = Typecheck.check_routine (Parser.parse_routine src2) in
      let env, rel =
        if use_ranges || domain <> Pperf_absint.Absint.Box then
          Compare.inferred_rel ~base:user_env ~domain [ c1; c2 ]
        else (user_env, None)
      in
      let p1 = Predict.of_checked ~options ~machine c1 in
      let p2 = Predict.of_checked ~options ~machine c2 in
      Format.fprintf fmt "first:  %a@." Predict.pp p1;
      Format.fprintf fmt "second: %a@." Predict.pp p2;
      (match rel with
      | Some r when r.Compare.rel_show <> [] ->
        Format.fprintf fmt "relations (%s domain): %s@."
          (Pperf_absint.Absint.domain_to_string domain)
          (String.concat "; " r.Compare.rel_show)
      | _ -> ());
      let d = Compare.decide ?rel env (Predict.cost p1) (Predict.cost p2) in
      Format.fprintf fmt "%a@." Compare.pp_decision d;
      match d.verdict with
      | Pperf_symbolic.Signs.Undecided diff -> (
        (* before suggesting a measurement, consult the three-bound
           steady state: the tighter of the bin/LCD rates (plus the memory
           bound) can separate variants whose bin expressions cannot *)
        let include_memory = options.Aggregate.include_memory in
        let b1 = Bounds.steady_total (Bounds.analyze ~machine ~include_memory c1) in
        let b2 = Bounds.steady_total (Bounds.analyze ~machine ~include_memory c2) in
        let module Poly = Pperf_symbolic.Poly in
        let consulted =
          if Poly.equal b1 (Predict.total p1) && Poly.equal b2 (Predict.total p2) then
            None
          else (
            let db = Compare.decide ?rel env (Perf_expr.of_cpu b1) (Perf_expr.of_cpu b2) in
            match db.verdict with
            | Pperf_symbolic.Signs.Always_le | Pperf_symbolic.Signs.Always_ge
            | Pperf_symbolic.Signs.Equal ->
              Some db
            | _ -> None)
        in
        match consulted with
        | Some db ->
          Format.fprintf fmt "three-bound steady state: first %s vs second %s@."
            (Poly.to_string b1) (Poly.to_string b2);
          Format.fprintf fmt "%a (decided by the tighter bound; no run-time test needed)@."
            Compare.pp_decision db
        | None ->
          let t = Runtime_test.of_difference env diff in
          Format.fprintf fmt "suggested run-time test: %a@." Runtime_test.pp t)
      | _ -> ())

(* ---- ranges ---- *)

let ranges ?(domain = Pperf_absint.Absint.Box) ~json src =
  Obs.time sp_render @@ fun () ->
  let module Absint = Pperf_absint.Absint in
  let module Lin = Pperf_absint.Lin in
  let module Interval = Pperf_symbolic.Interval in
  let relational = domain <> Absint.Box in
  let checkeds = Typecheck.check_program (Parser.parse_program src) in
  let analyzed =
    List.map (fun (c : Typecheck.checked) -> (c, Absint.analyze ~domain c)) checkeds
  in
  if json then (
    let buf = Buffer.create 1024 in
    Buffer.add_string buf "{";
    (* the domain and relations keys appear only under a relational domain,
       so interval output is byte-identical to the historical format *)
    if relational then
      Printf.bprintf buf "\"domain\":\"%s\"," (Absint.domain_to_string domain);
    Buffer.add_string buf "\"routines\":[";
    List.iteri
      (fun i ((c : Typecheck.checked), r) ->
        if i > 0 then Buffer.add_char buf ',';
        Printf.bprintf buf "{\"routine\":\"%s\",\"loops\":[" c.routine.rname;
        List.iteri
          (fun j (l : Absint.loop_range) ->
            if j > 0 then Buffer.add_char buf ',';
            Printf.bprintf buf
              "{\"var\":\"%s\",\"line\":%d,\"depth\":%d,\"index\":\"%s\",\"trip\":\"%s\"}"
              l.lvar l.at.Srcloc.line l.depth
              (Interval.to_string l.index)
              (Interval.to_string l.trip))
          (Absint.loops r);
        Buffer.add_string buf "],\"summary\":{";
        List.iteri
          (fun j (x, iv) ->
            if j > 0 then Buffer.add_char buf ',';
            Printf.bprintf buf "\"%s\":\"%s\"" x (Interval.to_string iv))
          (Interval.Env.bindings (Absint.summary r));
        Buffer.add_string buf "}";
        if relational then (
          Buffer.add_string buf ",\"relations\":[";
          List.iteri
            (fun j ((loc : Srcloc.t), cons) ->
              if j > 0 then Buffer.add_char buf ',';
              Printf.bprintf buf "{\"line\":%d,\"facts\":[" loc.line;
              List.iteri
                (fun k c ->
                  if k > 0 then Buffer.add_char buf ',';
                  Printf.bprintf buf "\"%s\"" (Lin.cons_to_string c))
                cons;
              Buffer.add_string buf "]}")
            (Absint.relation_points r);
          Buffer.add_string buf "],\"summary_relations\":[";
          List.iteri
            (fun j c ->
              if j > 0 then Buffer.add_char buf ',';
              Printf.bprintf buf "\"%s\"" (Lin.cons_to_string c))
            (Absint.relations r);
          Buffer.add_string buf "]");
        Buffer.add_string buf "}")
      analyzed;
    Buffer.add_string buf "]}\n";
    Buffer.contents buf)
  else
    with_formatter (fun fmt ->
        List.iter
          (fun ((c : Typecheck.checked), r) ->
            Format.fprintf fmt "routine %s:@." c.routine.rname;
            (match Absint.loops r with
             | [] -> Format.fprintf fmt "  no loops@."
             | ls ->
               Format.fprintf fmt "  loops:@.";
               List.iter (fun l -> Format.fprintf fmt "    %a@." Absint.pp_loop_range l) ls);
            (match Interval.Env.bindings (Absint.summary r) with
            | [] -> Format.fprintf fmt "  no variable ranges inferred@."
            | bs ->
              Format.fprintf fmt "  variable ranges:@.";
              List.iter
                (fun (x, iv) -> Format.fprintf fmt "    %s in %s@." x (Interval.to_string iv))
                bs);
            if relational then (
              match Absint.relation_points r with
              | [] -> Format.fprintf fmt "  no relations inferred@."
              | pts ->
                Format.fprintf fmt "  relations (%s domain):@."
                  (Absint.domain_to_string domain);
                List.iter
                  (fun ((loc : Srcloc.t), cons) ->
                    Format.fprintf fmt "    line %d: %s@." loc.line
                      (String.concat "; " (List.map Lin.cons_to_string cons)))
                  pts;
                match Absint.relations r with
                | [] -> ()
                | cs ->
                  Format.fprintf fmt "    summary: %s@."
                    (String.concat "; " (List.map Lin.cons_to_string cs))))
          analyzed)

(* ---- bounds ---- *)

let bounds ~machine ~memory ~json ~evals src =
  Obs.time sp_render @@ fun () ->
  let bindings = parse_bindings evals in
  let mname = machine.Pperf_machine.Machine.name in
  let module Poly = Pperf_symbolic.Poly in
  let routines =
    List.map
      (Bounds.analyze ~machine ~include_memory:memory ~bindings)
      (Typecheck.check_program (Parser.parse_program src))
  in
  let point_string =
    String.concat ", " (List.map (fun (v, x) -> Printf.sprintf "%s=%g" v x) bindings)
  in
  let eval_at p =
    Poly.eval_float
      (fun v -> match List.assoc_opt v bindings with Some f -> f | None -> 256.0)
      p
  in
  if json then (
    let buf = Buffer.create 1024 in
    Buffer.add_string buf "{\"routines\":[";
    List.iteri
      (fun i (r : Bounds.routine) ->
        if i > 0 then Buffer.add_char buf ',';
        Printf.bprintf buf "{\"routine\":\"%s\",\"machine\":\"%s\",\"nests\":[" r.rname
          mname;
        List.iteri
          (fun j (n : Bounds.nest) ->
            if j > 0 then Buffer.add_char buf ',';
            Printf.bprintf buf
              "{\"line\":%d,\"loops\":[%s],\"trips\":\"%s\",\"bin_per_iter\":%d,\"bin_once\":%d,\"critical_path\":%d,\"lcd_per_iter\":\"%s\",\"carried\":[%s],\"bin_bound\":\"%s\",\"lcd_bound\":\"%s\","
              n.at.Srcloc.line
              (String.concat "," (List.map (Printf.sprintf "\"%s\"") n.loop_vars))
              (Poly.to_string n.trips) n.bin_per_iter n.bin_once n.critical_path
              (Pperf_num.Rat.to_string n.lcd_per_iter)
              (String.concat ","
                 (List.map
                    (fun (c : Bounds.carried) ->
                      Printf.sprintf
                        "{\"array\":\"%s\",\"level\":\"%s\",\"distance\":%d,\"exact\":%b,\"ratio\":\"%s\"}"
                        c.carray c.clevel c.cdistance c.cexact
                        (Pperf_num.Rat.to_string c.cratio))
                    n.carried))
              (Poly.to_string n.bin_bound)
              (Poly.to_string n.lcd_bound);
            (match n.mem_bound with
             | Some m -> Printf.bprintf buf "\"mem_bound\":\"%s\"," (Poly.to_string m)
             | None -> ());
            Printf.bprintf buf "\"classification\":\"%s\"}"
              (Bounds.classification_string n.classification))
          r.nests;
        Buffer.add_string buf "],\"events\":[";
        List.iteri
          (fun j (d : Pperf_lint.Diagnostic.t) ->
            if j > 0 then Buffer.add_char buf ',';
            Printf.bprintf buf "{\"check\":\"%s\",\"line\":%d,\"message\":\"%s\"}"
              d.check d.loc.Srcloc.line (String.escaped d.message))
          r.diagnostics;
        Buffer.add_string buf "]}")
      routines;
    Buffer.add_string buf "]}\n";
    Buffer.contents buf)
  else
    with_formatter (fun fmt ->
        List.iter
          (fun (r : Bounds.routine) ->
            Format.fprintf fmt "routine %s on %s:@." r.rname mname;
            if r.nests = [] then Format.fprintf fmt "  no loop nests@."
            else
              List.iter
                (fun (n : Bounds.nest) ->
                  Format.fprintf fmt "  nest at line %d, loops [%s], trips %s:@."
                    n.at.Srcloc.line
                    (String.concat "," n.loop_vars)
                    (Poly.to_string n.trips);
                  Format.fprintf fmt "    bin-packing:   %d cycles/iter | total %s@."
                    n.bin_per_iter (Poly.to_string n.bin_bound);
                  Format.fprintf fmt
                    "    critical path: %d cycles (one iteration alone packs in %d)@."
                    n.critical_path n.bin_once;
                  (match n.carried with
                   | [] -> Format.fprintf fmt "    LCD:           no carried chain@."
                   | cs ->
                     Format.fprintf fmt "    LCD:           %s cycles/iter via %s | total %s@."
                       (Pperf_num.Rat.to_string n.lcd_per_iter)
                       (String.concat "; "
                          (List.map
                             (fun (c : Bounds.carried) ->
                               Printf.sprintf "%s (distance %d at loop %s%s)" c.carray
                                 c.cdistance c.clevel
                                 (if c.cexact then "" else ", assumed"))
                             cs))
                       (Poly.to_string n.lcd_bound));
                  (match n.mem_bound with
                   | Some m ->
                     Format.fprintf fmt "    memory:        total %s@." (Poly.to_string m)
                   | None -> ());
                  if bindings <> [] then
                    Format.fprintf fmt "    at %s: bin %.0f | lcd %.0f%s@." point_string
                      (eval_at n.bin_bound) (eval_at n.lcd_bound)
                      (match n.mem_bound with
                       | Some m -> Printf.sprintf " | mem %.0f" (eval_at m)
                       | None -> "");
                  Format.fprintf fmt "    steady state:  %s@."
                    (Bounds.classification_string n.classification))
                r.nests;
            List.iter
              (fun d ->
                Format.fprintf fmt "  %a@." Pperf_lint.Diagnostic.pp_short d)
              r.diagnostics)
          routines)

(* ---- machines ---- *)

let builtin_machine_names = [ "alpha21064"; "power1"; "power1x2"; "scalar" ]

let machines ~dir () =
  Obs.time sp_render @@ fun () ->
  let module M = Pperf_machine.Machine in
  let module C = Pperf_machine.Costmodel in
  let row name m origin =
    Printf.sprintf "%-12s %-8s %5d %6d  %s" name
      (C.kind_string (M.model m))
      (M.num_units m) m.M.issue_width origin
  in
  let builtins =
    List.map (fun n -> row n (Machines.load n) "builtin") builtin_machine_names
  in
  let files =
    if Sys.file_exists dir && Sys.is_directory dir then
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".pmach")
      |> List.sort String.compare
      |> List.map (fun f ->
             let path = Filename.concat dir f in
             match Machines.load path with
             | m -> row m.M.name m path
             | exception Pperf_machine.Descr.Parse_error msg ->
               Printf.sprintf "%s: machine description error: %s" path msg
             | exception Sys_error msg -> Printf.sprintf "%s: %s" path msg)
    else []
  in
  String.concat "\n"
    ((Printf.sprintf "%-12s %-8s %5s %6s  %s" "machine" "model" "units" "width" "source"
     :: builtins)
    @ files)
  ^ "\n"

(* ---- calibrate ---- *)

let calibrate ~machine =
  Obs.time sp_render @@ fun () ->
  Pperf_exec.Calibrate.(report (run ~machine ()))

(* ---- lint ---- *)

let lint ?(domain = Pperf_absint.Absint.Box) ~json ~use_ranges src =
  Obs.time sp_render @@ fun () ->
  (* a relational domain is only consulted through the range analysis, so
     requesting one implies --ranges *)
  let use_ranges = use_ranges || domain <> Pperf_absint.Absint.Box in
  let reports = Pperf_lint.Lint.run_source ~ranges:use_ranges ~domain src in
  let output =
    if json then Pperf_lint.Lint.to_json reports
    else with_formatter (fun fmt -> Format.fprintf fmt "%a" Pperf_lint.Lint.pp reports)
  in
  (output, Pperf_lint.Lint.exit_code reports)
