(** Minimal JSON values for the prediction service's line protocol.

    Self-contained (the repo deliberately has no JSON dependency); objects
    preserve field order so rendered responses have a stable layout the
    cram tests can pin byte-for-byte. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

val of_string : string -> t
(** Parse one complete JSON value; rejects trailing garbage, raw control
    characters in strings, and nesting deeper than 64 levels.
    @raise Parse_error with a position-carrying message. *)

val to_string : t -> string
(** Compact single-line rendering with full string escaping. *)

val member : string -> t -> t option
(** Field of an object; [None] on missing field or non-object. *)

val to_string_opt : t -> string option
val to_bool_opt : t -> bool option
val to_number_opt : t -> float option
val to_list_opt : t -> t list option
