(* Query options shared by the CLI subcommands and the server verbs —
   one record, one canonical rendering, one Aggregate.options mapping,
   so flag identity (and with it the result-cache key) cannot diverge
   between the two surfaces. *)

type t = {
  memory : bool;
  ranges : bool;
  interproc : bool;
  strict : bool;
  json : bool;
  trace : bool;
  eval : string list;
  range : string list;
  domain : string option;
}

let default =
  {
    memory = false;
    ranges = false;
    interproc = false;
    strict = false;
    json = false;
    trace = false;
    eval = [];
    range = [];
    domain = None;
  }

(* every field, fixed order: two option sets share a cache entry iff
   their canonical strings agree *)
let to_canonical_string f =
  Printf.sprintf "m%b,r%b,i%b,s%b,j%b,t%b,e[%s],g[%s],d[%s]" f.memory f.ranges
    f.interproc f.strict f.json f.trace
    (String.concat ";" f.eval)
    (String.concat ";" f.range)
    (match f.domain with None -> "interval" | Some d -> d)

let domain f =
  match f.domain with
  | None -> Pperf_absint.Absint.Box
  | Some d -> (
    match Pperf_absint.Absint.domain_of_string d with
    | Some dom -> dom
    | None -> Pperf_absint.Absint.Box)

let to_aggregate f =
  {
    Pperf_core.Aggregate.default_options with
    include_memory = f.memory;
    infer_ranges = f.ranges;
    range_domain = domain f;
  }
