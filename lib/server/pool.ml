(* Domain pool: a fixed set of OCaml 5 worker domains draining a shared
   queue. jobs = 1 runs everything inline on the caller — no domain spawn,
   fully deterministic scheduling — so `--jobs 1` sessions are exactly the
   sequential semantics and the parallel path is pure opt-in. *)

type t = {
  jobs : int;
  queue : (unit -> unit) Queue.t;
  lock : Mutex.t;
  nonempty : Condition.t;
  drained : Condition.t;
  mutable pending : int;  (** queued + running jobs *)
  mutable closing : bool;
  mutable workers : unit Domain.t list;
}

let recommended_jobs () = max 1 (Domain.recommended_domain_count ())

let rec worker t =
  let job =
    Mutex.protect t.lock (fun () ->
        let rec wait () =
          if not (Queue.is_empty t.queue) then Some (Queue.pop t.queue)
          else if t.closing then None
          else (
            Condition.wait t.nonempty t.lock;
            wait ())
        in
        wait ())
  in
  match job with
  | None -> ()
  | Some job ->
    (try job () with _ -> ());
    Mutex.protect t.lock (fun () ->
        t.pending <- t.pending - 1;
        if t.pending = 0 then Condition.broadcast t.drained);
    worker t

let create ~jobs =
  if jobs < 1 then
    invalid_arg (Printf.sprintf "Pool.create: jobs must be >= 1 (got %d)" jobs);
  let t =
    {
      jobs;
      queue = Queue.create ();
      lock = Mutex.create ();
      nonempty = Condition.create ();
      drained = Condition.create ();
      pending = 0;
      closing = false;
      workers = [];
    }
  in
  if jobs > 1 then t.workers <- List.init jobs (fun _ -> Domain.spawn (fun () -> worker t));
  t

let jobs t = t.jobs

let submit t job =
  if t.jobs = 1 then (try job () with _ -> ())
  else
    Mutex.protect t.lock (fun () ->
        if t.closing then invalid_arg "Pool.submit: pool is closing";
        t.pending <- t.pending + 1;
        Queue.push job t.queue;
        Condition.signal t.nonempty)

let drain t =
  if t.jobs > 1 then
    Mutex.protect t.lock (fun () ->
        while t.pending > 0 do
          Condition.wait t.drained t.lock
        done)

let close t =
  drain t;
  if t.jobs > 1 then (
    Mutex.protect t.lock (fun () ->
        t.closing <- true;
        Condition.broadcast t.nonempty);
    List.iter Domain.join t.workers;
    t.workers <- [])
