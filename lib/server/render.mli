(** Shared renderers for the query verbs.

    Both the one-shot CLI subcommands and the server verbs call these, so
    a server response's [output] field is byte-identical to the CLI's
    stdout for the same machine, source, and flags — by construction, not
    by parallel maintenance of two formatting paths. *)

open Pperf_lang
open Pperf_machine
open Pperf_core

exception Bad_flag of string
(** A malformed [--eval]/[--bind]/[--range] value. The server maps it to a
    structured [bad_request] response; the CLI's cmdliner converters
    validate the same syntax at parse time, so it never escapes there. *)

val parse_bindings : string list -> (string * float) list
(** ["VAR=VALUE"] specs to bindings. @raise Bad_flag on malformed specs. *)

val range_env : string list -> Pperf_symbolic.Interval.Env.t
(** ["VAR=LO:HI"] specs to an interval environment.
    @raise Bad_flag on malformed specs. *)

val check_bindings :
  strict:bool ->
  warn:(string -> unit) ->
  expr_vars:string list ->
  prob_vars:string list ->
  (string * float) list ->
  unit
(** Diagnose bindings that name no variable of the expression and
    expression variables left unbound. [strict] turns the diagnoses into
    [Failure]; otherwise each message goes to [warn]. *)

val predict :
  ?predictor:(Typecheck.checked -> Aggregate.prediction) ->
  machine:Machine.t ->
  options:Aggregate.options ->
  interproc:bool ->
  strict:bool ->
  evals:string list ->
  warn:(string -> unit) ->
  string ->
  string
(** Render the prediction report for a program source. [predictor]
    substitutes for [Aggregate.routine ~machine ~options] in the
    intraprocedural path (the server passes its incremental engine);
    it must produce bit-identical predictions. *)

val compare :
  ?domain:Pperf_absint.Absint.domain ->
  machine:Machine.t ->
  options:Aggregate.options ->
  use_ranges:bool ->
  ranges:string list ->
  string ->
  string ->
  string
(** [compare ~machine ~options ~use_ranges ~ranges src1 src2]. A relational
    [domain] (default [Box]) implies range inference, prints the joined
    whole-routine relations, and feeds them to the decision procedure. *)

val bounds :
  machine:Machine.t -> memory:bool -> json:bool -> evals:string list -> string -> string
(** The three-bound summary (bin-packing vs critical-path/LCD vs memory)
    of every loop nest of every routine, text or JSON. [memory] folds the
    cache-line bound in; [evals] moves the classification's evaluation
    point (unbound unknowns default to 256). *)

val ranges : ?domain:Pperf_absint.Absint.domain -> json:bool -> string -> string
(** Under a relational [domain] the JSON gains a top-level ["domain"] key
    and per-routine ["relations"] / ["summary_relations"]; with the default
    [Box] the output is byte-identical to the historical format. *)

val lint :
  ?domain:Pperf_absint.Absint.domain ->
  json:bool ->
  use_ranges:bool ->
  string ->
  string * int
(** Returns the rendered report and the lint exit code. A relational
    [domain] implies [use_ranges]. *)

val builtin_machine_names : string list
(** The builtin machine specs, in listing order. *)

val machines : dir:string -> unit -> string
(** One table of every known machine: the builtins plus each [.pmach]
    file of [dir] (default CLI dir: ["machines"]) — name, cost-model kind
    ([classic]/[ports]), unit/port count, issue width, and provenance.
    Unreadable description files become one diagnostic line each instead
    of failing the whole listing. *)

val calibrate : machine:Pperf_machine.Machine.t -> string
(** {!Pperf_exec.Calibrate.report} of a calibration run against [machine]
    at the default tolerance — the server side of [ppredict calibrate]
    (the CLI prints the same report via the same functions, so the two
    surfaces stay byte-identical). *)
