(* Request evaluation: one request in, one response out, never an
   escaping exception. Query verbs go through a content-addressed result
   cache keyed by (machine hash, source hash, verb, canonical flags); a
   miss renders with the shared Render module — predict through a
   per-domain Incremental predictor — so the output is byte-identical to
   the one-shot CLI. Every error maps to a structured error response with
   the same message the CLI prints to stderr.

   Telemetry: every lifecycle stage is measured into the Obs registry —
   queue wait, cache lookup, and evaluation as log-bucketed histograms
   (plus the end-to-end request latency), cache lookup and evaluation
   additionally as spans so a traced request ([flags.trace]) shows where
   it spent its time down through the pipeline phases. *)

open Pperf_lang
open Pperf_machine
open Pperf_core
module Obs = Pperf_obs.Obs

(* the cacheable part of a finished query *)
type payload = { output : string; warnings : string list; status : int }

type t = {
  cache : payload Cache.t;
  jobs : int;
  requests : int Atomic.t;
  ok_count : int Atomic.t;
  err_count : int Atomic.t;
  inc_hits : int Atomic.t;
  inc_misses : int Atomic.t;
  queue_ns_total : int Atomic.t;
  eval_ns_total : int Atomic.t;
}

(* request-lifecycle telemetry (shared registry: a daemon has one engine,
   so the per-process registry is the engine's) *)
let h_request = Obs.histogram "server.request_ns"
let h_queue = Obs.histogram "server.queue_ns"
let h_cache = Obs.histogram "server.cache_ns"
let h_eval = Obs.histogram "server.eval_ns"
let sp_cache = Obs.span "server.cache_lookup"
let sp_eval = Obs.span "server.eval"
let g_requests = Obs.gauge "server.requests"
let g_ok = Obs.gauge "server.ok"
let g_errors = Obs.gauge "server.errors"
let g_cache_hits = Obs.gauge "server.cache.hits"
let g_cache_misses = Obs.gauge "server.cache.misses"
let g_cache_entries = Obs.gauge "server.cache.entries"
let g_inc_hits = Obs.gauge "server.incremental.hits"
let g_inc_misses = Obs.gauge "server.incremental.misses"
let g_jobs = Obs.gauge "server.jobs"
let g_machines = Obs.gauge "server.machines"

let create ?cache_capacity ~jobs () =
  if jobs < 1 then
    invalid_arg (Printf.sprintf "Engine.create: jobs must be >= 1 (got %d)" jobs);
  {
    cache = Cache.create ?capacity:cache_capacity ();
    jobs;
    requests = Atomic.make 0;
    ok_count = Atomic.make 0;
    err_count = Atomic.make 0;
    inc_hits = Atomic.make 0;
    inc_misses = Atomic.make 0;
    queue_ns_total = Atomic.make 0;
    eval_ns_total = Atomic.make 0;
  }

let jobs t = t.jobs
let cache_stats t = Cache.stats t.cache

(* mean wall time of one evaluated request so far — the unit behind the
   fleet's retry-after hint. Zero before the first request completes. *)
let mean_eval_ns t =
  let n = Atomic.get t.ok_count + Atomic.get t.err_count in
  if n = 0 then 0 else Atomic.get t.eval_ns_total / n

let now = Unix.gettimeofday
let ns_of_span s = int_of_float (s *. 1e9)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let source_text = function Protocol.File p -> read_file p | Protocol.Text s -> s

(* a span plus a latency histogram around one lifecycle stage *)
let staged sp hist f =
  Obs.enter sp;
  let t0 = now () in
  Fun.protect
    ~finally:(fun () ->
      Obs.record hist (ns_of_span (now () -. t0));
      Obs.exit sp)
    f

(* Worker domains keep their own Incremental predictors (no lock on the
   unit cache), one per (machine, options) pair. *)
let inc_key : (string, Incremental.t) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 8)

let incremental ~machine ~machine_hash ~(options : Aggregate.options) =
  let tbl = Domain.DLS.get inc_key in
  let key =
    Printf.sprintf "%s|mem=%b|rng=%b|dom=%s" machine_hash options.include_memory
      options.infer_ranges
      (Pperf_absint.Absint.domain_to_string options.range_domain)
  in
  match Hashtbl.find_opt tbl key with
  | Some inc -> inc
  | None ->
    let inc = Incremental.create ~options machine in
    Hashtbl.add tbl key inc;
    inc

exception Bad_req of string

(* the machines verb lists this directory (the CLI's --dir default);
   requests carry no source, so the cache key digests the directory's
   listing and file contents instead — an added, removed or edited .pmach
   invalidates the cached table *)
let machines_dir = "machines"

let machines_dir_digest dir =
  let entries =
    if Sys.file_exists dir && Sys.is_directory dir then
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".pmach")
      |> List.sort compare
      |> List.map (fun f ->
             let p = Filename.concat dir f in
             f ^ ":" ^ (try Digest.to_hex (Digest.file p) with Sys_error _ -> "unreadable"))
    else []
  in
  Digest.string (String.concat ";" entries)

let require_source verb = function
  | Some s -> s
  | None ->
    raise
      (Bad_req
         (Printf.sprintf "verb %S needs a \"source\" or \"file\" field"
            (Protocol.verb_string verb)))

(* Evaluate a query verb from scratch; exceptions escape to [handle].
   [src]/[src2] are the request's sources already resolved to text — the
   same text the cache key digested, so a file edit racing the request
   can never cache one version's output under the other's digest. *)
let run_query t (req : Protocol.request) ~src ~src2 machine : payload =
  let flags = req.flags in
  let options = Options.to_aggregate flags in
  let warnings = ref [] in
  let warn m = warnings := m :: !warnings in
  let output, status =
    match req.verb with
    | Protocol.Predict ->
      let src = require_source req.verb src in
      let machine_hash = Machines.hash machine in
      let inc = incremental ~machine ~machine_hash ~options in
      let h0, m0 = Incremental.stats inc in
      let out =
        Render.predict
          ~predictor:(Incremental.predict_checked inc)
          ~machine ~options ~interproc:flags.interproc ~strict:flags.strict
          ~evals:flags.eval ~warn src
      in
      let h1, m1 = Incremental.stats inc in
      if h1 > h0 then ignore (Atomic.fetch_and_add t.inc_hits (h1 - h0));
      if m1 > m0 then ignore (Atomic.fetch_and_add t.inc_misses (m1 - m0));
      (out, 0)
    | Protocol.Compare ->
      let src1 = require_source req.verb src in
      let src2 =
        match src2 with
        | Some s -> s
        | None -> raise (Bad_req "verb \"compare\" needs a \"source2\" or \"file2\" field")
      in
      ( Render.compare
          ~domain:(Options.domain flags)
          ~machine ~options ~use_ranges:flags.ranges ~ranges:flags.range src1 src2,
        0 )
    | Protocol.Ranges ->
      let src = require_source req.verb src in
      (Render.ranges ~domain:(Options.domain flags) ~json:flags.json src, 0)
    | Protocol.Lint ->
      let src = require_source req.verb src in
      Render.lint
        ~domain:(Options.domain flags)
        ~json:flags.json ~use_ranges:flags.ranges src
    | Protocol.Bounds ->
      let src = require_source req.verb src in
      (Render.bounds ~machine ~memory:flags.memory ~json:flags.json ~evals:flags.eval src, 0)
    | Protocol.Machines -> (Render.machines ~dir:machines_dir (), 0)
    | Protocol.Calibrate -> (Render.calibrate ~machine, 0)
    | Protocol.Ping | Protocol.Stats | Protocol.Metrics | Protocol.Shutdown ->
      assert false
  in
  { output; warnings = List.rev !warnings; status }

(* digest the request's resolved sources so a file edit invalidates the
   entry *)
let source_key ~src ~src2 =
  let one = function None -> "" | Some s -> Digest.string s in
  Digest.string (one src ^ one src2)

(* refresh the engine-state gauges so stats/metrics exposition and any
   later scrape see current values *)
let publish_gauges t =
  let hits, misses, entries = Cache.stats t.cache in
  Obs.set_gauge g_requests (Atomic.get t.requests);
  Obs.set_gauge g_ok (Atomic.get t.ok_count);
  Obs.set_gauge g_errors (Atomic.get t.err_count);
  Obs.set_gauge g_cache_hits hits;
  Obs.set_gauge g_cache_misses misses;
  Obs.set_gauge g_cache_entries entries;
  Obs.set_gauge g_inc_hits (Atomic.get t.inc_hits);
  Obs.set_gauge g_inc_misses (Atomic.get t.inc_misses);
  Obs.set_gauge g_jobs t.jobs;
  Obs.set_gauge g_machines (Machines.loaded_count ())

let quantile_json hs q =
  let v = Obs.quantile hs q in
  if Float.is_finite v then Json.Float v else Json.String "+Inf"

let hist_json hs =
  Json.Obj
    [ ("count", Json.Int hs.Obs.hist_count); ("sum_ns", Json.Int hs.Obs.hist_sum);
      ("p50_ns", quantile_json hs 0.50); ("p90_ns", quantile_json hs 0.90);
      ("p99_ns", quantile_json hs 0.99) ]

let stats_json t =
  let hits, misses, entries = Cache.stats t.cache in
  let snap = Obs.snapshot () in
  let hist name =
    match List.assoc_opt name snap.Obs.histograms with
    | Some hs -> hist_json hs
    | None -> Json.Obj []
  in
  Json.Obj
    [ ("requests", Json.Int (Atomic.get t.requests));
      ("ok", Json.Int (Atomic.get t.ok_count));
      ("errors", Json.Int (Atomic.get t.err_count));
      ( "cache",
        Json.Obj
          [ ("hits", Json.Int hits); ("misses", Json.Int misses);
            ("entries", Json.Int entries) ] );
      ( "incremental",
        Json.Obj
          [ ("hits", Json.Int (Atomic.get t.inc_hits));
            ("misses", Json.Int (Atomic.get t.inc_misses)) ] );
      ("machines", Json.Int (Machines.loaded_count ()));
      ("jobs", Json.Int t.jobs);
      ("queue_ns", Json.Int (Atomic.get t.queue_ns_total));
      ("eval_ns", Json.Int (Atomic.get t.eval_ns_total));
      ("latency", hist "server.request_ns");
      ( "stages",
        Json.Obj
          [ ("queue", hist "server.queue_ns"); ("cache", hist "server.cache_ns");
            ("eval", hist "server.eval_ns"); ("write", hist "server.write_ns") ] );
      ( "spans",
        Json.Obj
          (List.map
             (fun (name, s) ->
               ( name,
                 Json.Obj
                   [ ("count", Json.Int s.Obs.span_count);
                     ("total_ns", Json.Int s.Obs.span_total_ns);
                     ("self_ns", Json.Int s.Obs.span_self_ns) ] ))
             snap.Obs.spans) );
      ( "counters",
        Json.Obj (List.map (fun (name, n) -> (name, Json.Int n)) snap.Obs.counters) ) ]

let metrics_text t =
  publish_gauges t;
  Obs.Export.prometheus (Obs.snapshot ())

let rec trace_to_json (n : Obs.Trace.node) =
  Json.Obj
    [ ("name", Json.String n.name); ("total_ns", Json.Int n.total_ns);
      ("self_ns", Json.Int n.self_ns);
      ("children", Json.List (List.map trace_to_json n.children)) ]

(* the CLI's handle_code exception table, as structured error responses *)
let error_of_exn = function
  | Bad_req msg -> Some (Protocol.Bad_request, msg)
  | Render.Bad_flag msg -> Some (Protocol.Bad_request, msg)
  | Pperf_backend.Pipeline.Livelock { cycle; unissued } ->
    Some
      ( Protocol.Failed,
        Printf.sprintf
          "pipeline schedule livelocked after %d cycles with %d operation(s) unissued"
          cycle unissued )
  | Parser.Error (msg, loc) ->
    Some
      ( Protocol.Parse_error,
        Printf.sprintf "parse error at %s: %s" (Srcloc.to_string loc) msg )
  | Typecheck.Type_error (msg, loc) ->
    Some
      ( Protocol.Type_error,
        Printf.sprintf "type error at %s: %s" (Srcloc.to_string loc) msg )
  | Descr.Parse_error msg ->
    Some (Protocol.Machine_error, Printf.sprintf "machine description error: %s" msg)
  | Machine.Unknown_atomic { machine; op } ->
    Some
      ( Protocol.Machine_error,
        Printf.sprintf "machine %s has no atomic operation %s" machine op )
  | Failure msg -> Some (Protocol.Failed, msg)
  | Sys_error msg -> Some (Protocol.Failed, msg)
  | _ -> None

let handle t ~received (req : Protocol.request) : Protocol.response =
  Atomic.incr t.requests;
  let start = now () in
  let queue_ns = ns_of_span (start -. received) in
  ignore (Atomic.fetch_and_add t.queue_ns_total queue_ns);
  Obs.record h_queue queue_ns;
  let expired at =
    match req.deadline_ms with
    | Some d -> (at -. received) *. 1000.0 > d
    | None -> false
  in
  let finish response =
    (match response with
     | Protocol.Ok_response _ -> Atomic.incr t.ok_count
     | Protocol.Err_response _ -> Atomic.incr t.err_count);
    Obs.record h_request (ns_of_span (now () -. received));
    response
  in
  if expired start then
    finish
      (Protocol.err ~id:req.id Protocol.Deadline_exceeded
         (Printf.sprintf "deadline of %gms expired before evaluation"
            (Option.get req.deadline_ms)))
  else
    match req.verb with
    | Protocol.Ping ->
      finish
        (Protocol.ok ~id:req.id ~verb:req.verb ~warnings:req.proto_warnings
           ~timing:{ queue_ns; eval_ns = 0 } "pong")
    | Protocol.Stats ->
      finish
        (Protocol.ok ~id:req.id ~verb:req.verb ~stats:(stats_json t)
           ~warnings:req.proto_warnings ~timing:{ queue_ns; eval_ns = 0 } "")
    | Protocol.Metrics ->
      finish
        (Protocol.ok ~id:req.id ~verb:req.verb ~warnings:req.proto_warnings
           ~timing:{ queue_ns; eval_ns = 0 } (metrics_text t))
    | Protocol.Shutdown ->
      finish
        (Protocol.ok ~id:req.id ~verb:req.verb ~warnings:req.proto_warnings
           ~timing:{ queue_ns; eval_ns = 0 } "")
    | Protocol.Predict | Protocol.Compare | Protocol.Ranges | Protocol.Lint
    | Protocol.Bounds | Protocol.Machines | Protocol.Calibrate -> (
      match
        let machine = Machines.load req.machine in
        (* resolve file sources to text exactly once: digesting and
           evaluating the same bytes even if the file changes mid-request *)
        let src = Option.map source_text req.source in
        let src2 = Option.map source_text req.source2 in
        (* traced requests bypass the result cache: their span tree is
           per-evaluation by definition, and must not be served stale *)
        let key =
          if Protocol.cacheable req.verb && not req.flags.trace then
            Some
              (Cache.key ~machine_hash:(Machines.hash machine)
                 ~source_hash:
                   (match req.verb with
                   | Protocol.Machines -> machines_dir_digest machines_dir
                   | _ -> source_key ~src ~src2)
                 ~kind:(Protocol.verb_string req.verb)
                 ~flags:(Protocol.flags_key req.flags))
          else None
        in
        let lookup () =
          match key with
          | None -> None
          | Some k -> staged sp_cache h_cache (fun () -> Cache.find t.cache k)
        in
        let payload, cached, trace =
          match lookup () with
          | Some p -> (p, true, None)
          | None ->
            let eval () =
              staged sp_eval h_eval (fun () -> run_query t req ~src ~src2 machine)
            in
            let p, trace =
              if req.flags.trace then (
                let p, node = Obs.Trace.collect eval in
                (p, Some (trace_to_json node)))
              else (eval (), None)
            in
            Option.iter (fun k -> Cache.store t.cache k p) key;
            (p, false, trace)
        in
        (payload, cached, trace)
      with
      | payload, cached, trace ->
        let stop = now () in
        let eval_ns = ns_of_span (stop -. start) in
        ignore (Atomic.fetch_and_add t.eval_ns_total eval_ns);
        finish
          (Protocol.ok ~id:req.id ~verb:req.verb ~status:payload.status ~cached
             ~deadline_missed:(expired stop)
             ~warnings:(payload.warnings @ req.proto_warnings)
             ?trace ~timing:{ queue_ns; eval_ns } payload.output)
      | exception e -> (
        match error_of_exn e with
        | Some (code, message) -> finish (Protocol.err ~id:req.id code message)
        | None ->
          finish
            (Protocol.err ~id:req.id Protocol.Internal
               (Printf.sprintf "uncaught exception: %s" (Printexc.to_string e)))))
