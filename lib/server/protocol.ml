(* The JSON-lines request/response protocol of `ppredict batch` and
   `ppredict serve`. One request object per line in; one response object
   per line out, emitted in request order. See README "Prediction
   service" for the schema.

   Wire versioning: requests may carry "v": 1 (the only version so far;
   absent means 1). Unknown top-level fields are rejected with a
   structured bad_request under flags.strict and warned about otherwise,
   so clients probing a future field learn about it instead of being
   silently ignored. *)

type verb =
  | Predict | Compare | Ranges | Lint | Bounds | Machines | Calibrate
  | Ping | Stats | Metrics | Shutdown

let protocol_version = 1

let verb_string = function
  | Predict -> "predict"
  | Compare -> "compare"
  | Ranges -> "ranges"
  | Lint -> "lint"
  | Bounds -> "bounds"
  | Machines -> "machines"
  | Calibrate -> "calibrate"
  | Ping -> "ping"
  | Stats -> "stats"
  | Metrics -> "metrics"
  | Shutdown -> "shutdown"

let verb_of_string = function
  | "predict" -> Some Predict
  | "compare" -> Some Compare
  | "ranges" -> Some Ranges
  | "lint" -> Some Lint
  | "bounds" -> Some Bounds
  | "machines" -> Some Machines
  | "calibrate" -> Some Calibrate
  | "ping" -> Some Ping
  | "stats" -> Some Stats
  | "metrics" -> Some Metrics
  | "shutdown" -> Some Shutdown
  | _ -> None

type source = File of string | Text of string

type flags = Options.t = {
  memory : bool;
  ranges : bool;
  interproc : bool;
  strict : bool;
  json : bool;
  trace : bool;
  eval : string list;
  range : string list;
  domain : string option;
}

let default_flags = Options.default

type request = {
  id : Json.t;
  verb : verb;
  machine : string;
  source : source option;
  source2 : source option;
  flags : flags;
  deadline_ms : float option;
  proto_warnings : string list;
}

type error_code =
  | Bad_json
  | Unknown_verb
  | Bad_request
  | Oversized
  | Parse_error
  | Type_error
  | Machine_error
  | Deadline_exceeded
  | Overloaded
  | Failed
  | Internal

let error_code_string = function
  | Bad_json -> "bad_json"
  | Unknown_verb -> "unknown_verb"
  | Bad_request -> "bad_request"
  | Oversized -> "oversized"
  | Parse_error -> "parse_error"
  | Type_error -> "type_error"
  | Machine_error -> "machine_error"
  | Deadline_exceeded -> "deadline_exceeded"
  | Overloaded -> "overloaded"
  | Failed -> "error"
  | Internal -> "internal"

(* ------------------------------------------------------------- requests *)

let get_bool obj name ~default =
  match Json.member name obj with
  | None -> Ok default
  | Some j -> (
    match Json.to_bool_opt j with
    | Some b -> Ok b
    | None -> Error (Bad_request, Printf.sprintf "flag %S must be a boolean" name))

let get_string_list obj name =
  match Json.member name obj with
  | None -> Ok []
  | Some j -> (
    match Json.to_list_opt j with
    | None -> Error (Bad_request, Printf.sprintf "field %S must be a list of strings" name)
    | Some items ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | x :: rest -> (
          match Json.to_string_opt x with
          | Some s -> go (s :: acc) rest
          | None ->
            Error (Bad_request, Printf.sprintf "field %S must be a list of strings" name))
      in
      go [] items)

let ( let* ) = Result.bind

let parse_flags obj =
  match Json.member "flags" obj with
  | None -> Ok default_flags
  | Some (Json.Obj _ as f) ->
    let* memory = get_bool f "memory" ~default:false in
    let* ranges = get_bool f "ranges" ~default:false in
    let* interproc = get_bool f "interproc" ~default:false in
    let* strict = get_bool f "strict" ~default:false in
    let* json = get_bool f "json" ~default:false in
    let* trace = get_bool f "trace" ~default:false in
    let* eval = get_string_list f "eval" in
    let* range = get_string_list f "range" in
    let* domain =
      match Json.member "domain" f with
      | None -> Ok None
      | Some j -> (
        match Json.to_string_opt j with
        | Some d when List.mem d Pperf_absint.Absint.all_domains -> Ok (Some d)
        | Some d ->
          Error
            ( Bad_request,
              Printf.sprintf "unknown domain %S (expected one of %s)" d
                (String.concat ", " Pperf_absint.Absint.all_domains) )
        | None -> Error (Bad_request, "field \"domain\" must be a string"))
    in
    Ok { memory; ranges; interproc; strict; json; trace; eval; range; domain }
  | Some _ -> Error (Bad_request, "field \"flags\" must be an object")

let parse_source obj ~file_field ~text_field =
  match (Json.member file_field obj, Json.member text_field obj) with
  | None, None -> Ok None
  | Some _, Some _ ->
    Error
      ( Bad_request,
        Printf.sprintf "give %S or %S, not both" file_field text_field )
  | Some j, None -> (
    match Json.to_string_opt j with
    | Some p -> Ok (Some (File p))
    | None -> Error (Bad_request, Printf.sprintf "field %S must be a string" file_field))
  | None, Some j -> (
    match Json.to_string_opt j with
    | Some s -> Ok (Some (Text s))
    | None -> Error (Bad_request, Printf.sprintf "field %S must be a string" text_field))

(* every top-level field this protocol version understands *)
let known_fields =
  [ "v"; "id"; "verb"; "machine"; "file"; "source"; "file2"; "source2"; "flags";
    "deadline_ms" ]

let request_of_json j =
  match j with
  | Json.Obj fields ->
    let id = Option.value (Json.member "id" j) ~default:Json.Null in
    let* () =
      match Json.member "v" j with
      | None | Some (Json.Int 1) -> Ok ()
      | Some v ->
        Error
          ( Bad_request,
            Printf.sprintf "unsupported protocol version %s (this server speaks v%d)"
              (Json.to_string v) protocol_version )
    in
    let* verb =
      match Json.member "verb" j with
      | None -> Error (Bad_request, "missing \"verb\"")
      | Some v -> (
        match Json.to_string_opt v with
        | None -> Error (Bad_request, "field \"verb\" must be a string")
        | Some s -> (
          match verb_of_string s with
          | Some verb -> Ok verb
          | None -> Error (Unknown_verb, Printf.sprintf "unknown verb %S" s)))
    in
    let* machine =
      match Json.member "machine" j with
      | None -> Ok "power1"
      | Some v -> (
        match Json.to_string_opt v with
        | Some s -> Ok s
        | None -> Error (Bad_request, "field \"machine\" must be a string"))
    in
    let* source = parse_source j ~file_field:"file" ~text_field:"source" in
    let* source2 = parse_source j ~file_field:"file2" ~text_field:"source2" in
    let* flags = parse_flags j in
    let* deadline_ms =
      match Json.member "deadline_ms" j with
      | None -> Ok None
      | Some v -> (
        match Json.to_number_opt v with
        | Some f when f > 0.0 -> Ok (Some f)
        | _ -> Error (Bad_request, "field \"deadline_ms\" must be a positive number"))
    in
    let unknown =
      List.filter_map
        (fun (k, _) -> if List.mem k known_fields then None else Some k)
        fields
    in
    let* proto_warnings =
      match unknown with
      | [] -> Ok []
      | ks ->
        let listed = String.concat ", " (List.map (Printf.sprintf "%S") ks) in
        if flags.strict then
          Error
            ( Bad_request,
              Printf.sprintf "unknown field%s %s (this server speaks protocol v%d)"
                (if List.length ks = 1 then "" else "s")
                listed protocol_version )
        else
          Ok
            [ Printf.sprintf "ignoring unknown field%s %s (protocol v%d)"
                (if List.length ks = 1 then "" else "s")
                listed protocol_version ]
    in
    Ok { id; verb; machine; source; source2; flags; deadline_ms; proto_warnings }
  | _ -> Error (Bad_request, "request must be a JSON object")

let request_of_line line =
  match Json.of_string line with
  | exception Json.Parse_error msg -> Error (Bad_json, msg)
  | j -> request_of_json j

let flags_key = Options.to_canonical_string

let cacheable = function
  | Predict | Compare | Ranges | Lint | Bounds | Machines | Calibrate -> true
  | Ping | Stats | Metrics | Shutdown -> false

(* ------------------------------------------------------------ responses *)

type timing = { queue_ns : int; eval_ns : int }

type response =
  | Ok_response of {
      id : Json.t;
      verb : verb;
      status : int;
      cached : bool;
      deadline_missed : bool;
      warnings : string list;
      output : string;
      stats : Json.t option;
      trace : Json.t option;
      timing : timing;
    }
  | Err_response of {
      id : Json.t;
      code : error_code;
      message : string;
      retry_after_ms : int option;
          (** backpressure hint: when the fleet sheds a request
              ([Overloaded]), roughly how long the client should wait
              before retrying *)
    }

let ok ?(status = 0) ?(cached = false) ?(deadline_missed = false) ?(warnings = [])
    ?stats ?trace ~id ~verb ~timing output =
  Ok_response
    { id; verb; status; cached; deadline_missed; warnings; output; stats; trace; timing }

let err ?retry_after_ms ~id code message = Err_response { id; code; message; retry_after_ms }

let response_id = function Ok_response { id; _ } | Err_response { id; _ } -> id

let response_to_json = function
  | Ok_response r ->
    Json.Obj
      ([ ("id", r.id); ("ok", Json.Bool true); ("verb", Json.String (verb_string r.verb));
         ("status", Json.Int r.status); ("cached", Json.Bool r.cached) ]
      @ (if r.deadline_missed then [ ("deadline_missed", Json.Bool true) ] else [])
      @ (if r.warnings = [] then []
         else [ ("warnings", Json.List (List.map (fun w -> Json.String w) r.warnings)) ])
      @ (match r.stats with Some s -> [ ("stats", s) ] | None -> [ ("output", Json.String r.output) ])
      @ (match r.trace with Some t -> [ ("trace", t) ] | None -> [])
      @ [ ("t", Json.Obj [ ("queue_ns", Json.Int r.timing.queue_ns);
                           ("eval_ns", Json.Int r.timing.eval_ns) ]) ])
  | Err_response r ->
    Json.Obj
      [ ("id", r.id); ("ok", Json.Bool false);
        ("error",
         Json.Obj
           ([ ("code", Json.String (error_code_string r.code));
              ("message", Json.String r.message) ]
           @
           match r.retry_after_ms with
           | Some ms -> [ ("retry_after_ms", Json.Int ms) ]
           | None -> [])) ]

let response_line r = Json.to_string (response_to_json r)
