(** The one set of query options shared by the CLI subcommands and the
    server verbs.

    Both [bin/ppredict] and {!Protocol} build this record from their
    respective surfaces (cmdliner flags, JSON [flags] objects), and both
    the result-cache key and any future flag-sensitive identity go
    through {!to_canonical_string} — so a new flag added here is
    automatically part of the cache identity on both sides and cannot
    silently diverge between CLI and server. *)

type t = {
  memory : bool;  (** include the cache cost model (CLI [--memory]) *)
  ranges : bool;  (** interval analysis first (CLI [--ranges]) *)
  interproc : bool;  (** call-site charging (CLI [-i], predict only) *)
  strict : bool;  (** binding/protocol mismatches are errors (CLI [--strict]) *)
  json : bool;  (** JSON output for [ranges]/[lint] (CLI [--json]) *)
  trace : bool;  (** capture and append the span tree (CLI [--trace]) *)
  eval : string list;  (** [VAR=VALUE] bindings (CLI [--eval]) *)
  range : string list;  (** [VAR=LO:HI] ranges (CLI [--range], compare only) *)
  domain : string option;
      (** abstract domain for the range analysis (CLI [--domain]);
          [None] means interval. Part of the canonical string, so an
          octagon answer is never served from an interval cache entry. *)
}

val default : t

val to_canonical_string : t -> string
(** Canonical rendering of every field in a fixed order: two option sets
    share a result-cache entry iff their canonical strings agree. *)

val domain : t -> Pperf_absint.Absint.domain
(** The parsed {!Pperf_absint.Absint.domain}; unknown or absent spellings
    fall back to [Box] (validation happens at the surfaces). *)

val to_aggregate : t -> Pperf_core.Aggregate.options
(** The {!Pperf_core.Aggregate.options} these flags select. *)
