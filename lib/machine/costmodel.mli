(** The cost-model abstraction behind {!Machine.t}.

    Two implementations share the scheduler-facing component
    representation of {!Atomic_op}:

    - {b Classic} — the paper's two-component coverable/noncoverable
      model (§2.1): components name functional units, replication is by
      unit kind.
    - {b Ports} — a PALMED/OSACA-style issue-port model: an atomic op is
      a multiset of µops, each eligible to a set of issue ports and
      consuming one port-cycle; eligibility travels on the lowered
      component ({!Atomic_op.component.eligible}), so the Tetris bins and
      the reference pipeline honour it directly.

    An op's steady-state reciprocal throughput under the ports model is
    the optimal fractional assignment of its µops to eligible ports —
    computed exactly as [max over port subsets S of #{µops with eligible
    ⊆ S} / |S|] (the LP dual of the assignment problem). *)

type kind = Classic | Ports

val kind_string : kind -> string
val kind_of_string : string -> kind option

type uop_group = {
  eligible : int list;  (** sorted, distinct port (unit) ids *)
  count : int;  (** µops with this eligible set, one port-cycle each *)
}

val canonical_groups : uop_group list -> uop_group list
(** Merge groups with equal eligible sets; sort by eligible set. The
    canonical order used by construction and {!Descr.to_string}.
    @raise Invalid_argument on a negative count or empty eligible set. *)

val lower : latency:int -> uop_group list -> Atomic_op.component list
(** Deterministic round-robin lowering of µop groups to scheduler
    components; the result latency is realised as a coverable tail on
    the first component. @raise Invalid_argument on an empty group list. *)

val groups_of_op : Atomic_op.t -> uop_group list
(** Recover the canonical µop groups of a lowered op (inverse of
    {!lower} up to canonicalization). Classic components count as pinned
    to their own unit. *)

module type S = sig
  val kind : kind

  val reciprocal_throughput : units:Funit.t array -> Atomic_op.t -> float
  (** Steady-state cycles per instance of the op issued back to back with
      no other contenders. *)
end

module Classic_model : S
module Ports_model : S

val model : kind -> (module S)
