(** Target machine descriptions.

    A machine bundles its functional units, its table of atomic operations
    with their costs (the paper's {e atomic operation cost table}), pipeline
    parameters used by the reference back-end, a memory hierarchy
    description for the cache cost model, and optionally message-passing
    parameters for distributed-memory configurations.

    Porting the predictor to a new architecture is, per the paper, "a matter
    of defining the atomic operation mapping and the atomic operation cost
    table" — see {!builder} and {!Descr} for the textual format. *)

type cache_params = {
  line_bytes : int;
  cache_bytes : int;
  associativity : int;  (** 0 = fully associative *)
  miss_cycles : int;
  tlb_entries : int;
  page_bytes : int;
  tlb_miss_cycles : int;
}

type comm_params = {
  processors : int;
  startup_cycles : int;  (** per-message software overhead (alpha) *)
  per_byte_cycles : float;  (** inverse bandwidth (beta) *)
}

type t = {
  name : string;
  description : string;
  units : Funit.t array
      [@deprecated "access units via unit_at/units_list/iter_units/num_units"];
  atomics : (string, Atomic_op.t) Hashtbl.t
      [@deprecated
        "access the cost table via atomic/atomic_opt/fold_atomics/iter_atomics"];
  model : Costmodel.kind;  (** which cost model interprets the table *)
  issue_width : int;
  branch_taken_cycles : int;
      (** extra cycles charged for a taken branch that the schedule cannot
          hide *)
  register_load_limit : int;
      (** §2.2.1: limited registers are simulated by forcing a store after
          this many outstanding loads *)
  has_fma : bool;
  cache : cache_params;
  comm : comm_params option;
}

val make :
  name:string ->
  ?description:string ->
  units:(string * Funit.kind) list ->
  atomics:(string * (int * int * int) list) list ->
  ?issue_width:int ->
  ?branch_taken_cycles:int ->
  ?register_load_limit:int ->
  ?has_fma:bool ->
  ?cache:cache_params ->
  ?comm:comm_params ->
  unit ->
  t
(** Build a {!Costmodel.Classic} machine.
    @raise Invalid_argument on dangling unit ids or duplicate names. *)

val make_ports :
  name:string ->
  ?description:string ->
  ports:string list ->
  atomics:(string * int * (string list * int) list) list ->
  ?issue_width:int ->
  ?branch_taken_cycles:int ->
  ?register_load_limit:int ->
  ?has_fma:bool ->
  ?cache:cache_params ->
  ?comm:comm_params ->
  unit ->
  t
(** Build a {!Costmodel.Ports} machine. Every unit is an issue port
    ({!Funit.Port}); each atomic op is [(name, latency, groups)] where a
    group [(ports, count)] contributes [count] µops eligible to any port in
    [ports]. Groups are canonicalized and lowered round-robin to scheduler
    components (see {!Costmodel.lower}).
    @raise Invalid_argument on missing ports, duplicate names, or negative
    costs. *)

exception Unknown_atomic of { machine : string; op : string }
(** A required operation is missing from a machine's cost table — typically
    a hand-written [.pmach] description that omits an op the translator
    needs. Carries both names so drivers can report them and exit cleanly
    instead of surfacing an anonymous [Failure]. *)

val atomic : t -> string -> Atomic_op.t
(** @raise Unknown_atomic naming the machine and operation when the
    operation is not in the cost table. *)

val atomic_opt : t -> string -> Atomic_op.t option
val has_atomic : t -> string -> bool
val num_units : t -> int
val units_of_kind : t -> Funit.kind -> Funit.t list
val default_cache : cache_params

(** {1 Cost-model accessors}

    The redesigned API: consumers outside [lib/machine] use these rather
    than reaching into the raw [units] array / [atomics] hashtable, so both
    cost models present one interface. *)

val model : t -> Costmodel.kind
val unit_at : t -> int -> Funit.t
val units_list : t -> Funit.t list
val iter_units : (Funit.t -> unit) -> t -> unit
val num_atomics : t -> int
val iter_atomics : (string -> Atomic_op.t -> unit) -> t -> unit
val fold_atomics : (string -> Atomic_op.t -> 'a -> 'a) -> t -> 'a -> 'a

val atomic_names : t -> string list
(** Sorted. *)

val reciprocal_throughput : t -> Atomic_op.t -> float
(** Steady-state cycles per back-to-back instance of the op, under the
    machine's cost model (see {!Costmodel.S.reciprocal_throughput}). *)

val pp_summary : Format.formatter -> t -> unit

(** {1 Built-in machines} *)

val power1 : t
(** RS/6000-like: the machine of the paper's evaluation. Five units (FXU,
    FPU, branch, CR-logic, load/store), fused multiply-add, FP add/multiply
    1 noncoverable + 1 coverable on the FPU, FP store 2 cycles FPU (one
    coverable) + 1 cycle FXU, integer multiply 3 cycles for a small
    multiplier and 5 in general (§2.2.1). *)

val power1_wide : t
(** A 2-way superscalar variant of {!power1} with duplicated FXU/FPU/LSU —
    used for cross-architecture portability experiments. *)

val alpha21064 : t
(** DEC Alpha 21064-like — the Cray T3D node mentioned in the paper's
    introduction. Dual issue, no fused multiply-add, 6-cycle pipelined FP,
    long integer multiplies, a small direct-mapped cache, and T3D-style
    message-passing parameters. *)

val scalar : t
(** A strictly sequential single-unit machine: every cost noncoverable on
    one bin. On this machine the Tetris model degenerates to operation
    counting — the baseline the paper contrasts against. *)
