type kind =
  | Fixed_point
  | Float_point
  | Branch
  | Cr_logic
  | Load_store
  | Port
  | Custom of string

type t = { id : int; name : string; kind : kind }

let kind_to_string = function
  | Fixed_point -> "fxu"
  | Float_point -> "fpu"
  | Branch -> "branch"
  | Cr_logic -> "cr"
  | Load_store -> "lsu"
  | Port -> "port"
  | Custom s -> s

let kind_of_string = function
  | "fxu" -> Fixed_point
  | "fpu" -> Float_point
  | "branch" -> Branch
  | "cr" -> Cr_logic
  | "lsu" -> Load_store
  | "port" -> Port
  | s -> Custom s

let pp fmt t = Format.fprintf fmt "%s(#%d:%s)" t.name t.id (kind_to_string t.kind)
let equal a b = a.id = b.id
