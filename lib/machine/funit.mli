(** Functional units ("bins") of a target machine.

    The paper's conceptual picture (§2.1, Fig. 3) is a two-dimensional grid
    with one bin per instruction execution unit; POWER-like machines have
    fixed-point, floating-point, branch, condition-register-logic and
    load/store units, possibly replicated. *)

type kind =
  | Fixed_point
  | Float_point
  | Branch
  | Cr_logic
  | Load_store
  | Port  (** an issue port of a ports-model machine (see {!Costmodel}) *)
  | Custom of string

type t = { id : int;  (** index into the machine's unit array *)
           name : string;
           kind : kind }

val kind_to_string : kind -> string
val kind_of_string : string -> kind
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
