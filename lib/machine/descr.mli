(** Textual machine descriptions.

    The paper argues portability comes from keeping all architecture
    knowledge in tables: "Adding a new architecture to the cost model is a
    matter of defining the atomic operation mapping and the atomic operation
    cost table" (§2.2.1). This module gives those tables a concrete textual
    form, a small S-expression dialect:

    {v
    (machine (name power1)
      (issue-width 4)
      (branch-taken-cycles 3)
      (register-load-limit 24)
      (fma true)
      (units (FXU fxu) (FPU fpu) (BR branch) (CR cr) (LSU lsu))
      (atomics
        (fadd (FPU 1 1))
        (store_fp (FPU 1 1) (FXU 1 0) (LSU 1 0)))
      (cache (line-bytes 128) (cache-bytes 65536) (associativity 4)
             (miss-cycles 12) (tlb-entries 128) (page-bytes 4096)
             (tlb-miss-cycles 36)))
    v}

    The v2 {e ports} dialect describes issue-port machines
    ({!Costmodel.Ports}): [(model ports)] selects the model, [(ports p0 p1
    ...)] replaces [(units ...)], and each atomic op lists µop groups —
    [(fadd (latency 3) (uops (p0|p1 1)))] is one µop eligible on either of
    two ports with a 3-cycle result latency. [latency] defaults to the
    op's total µop count:

    {v
    (machine (name ooo4)
      (model ports)
      (issue-width 4)
      (ports p0 p1 p2 p3)
      (atomics
        (fadd (latency 3) (uops (p0|p1 1)))
        (load_fp (latency 4) (uops (p2|p3 1)))))
    v} *)

exception Parse_error of string
(** Raised with a line-annotated message on malformed input — including
    duplicate unit, port or atomic-op names, unknown units/ports, negative
    costs and malformed fields. *)

val of_string : string -> Machine.t
val of_channel : in_channel -> Machine.t
val to_string : Machine.t -> string
(** Round-trips through {!of_string} (up to whitespace). *)
