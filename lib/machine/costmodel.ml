(* The cost-model abstraction behind Machine.t: the same bins/scheduler
   machinery speaks to two families of machines through one component
   representation.

   Classic — the paper's two-component coverable/noncoverable model: each
   atomic op names the functional units it occupies; replication is
   expressed by unit *kinds* (a component may be placed on any unit of
   the named unit's kind).

   Ports — a PALMED/OSACA-style issue-port model: each atomic op is a
   multiset of µops, each µop eligible to a *set* of issue ports and
   consuming one port-cycle. Eligibility is per-µop (carried on the
   lowered component), not per-kind. The steady-state reciprocal
   throughput of an op is the optimal fractional assignment of its µops
   to eligible ports; by LP duality this equals

     max over port subsets S of  #{µops whose eligible set ⊆ S} / |S|

   which we compute exactly by enumerating subsets of the ports the op
   actually mentions. *)

type kind = Classic | Ports

let kind_string = function Classic -> "classic" | Ports -> "ports"

let kind_of_string = function
  | "classic" -> Some Classic
  | "ports" -> Some Ports
  | _ -> None

type uop_group = {
  eligible : int list;  (** sorted, distinct port (unit) ids *)
  count : int;  (** µops with this eligible set; each costs one port-cycle *)
}

(* merge groups with equal eligible sets and order them canonically, so
   construction order, Descr.to_string order and re-parse order agree *)
let canonical_groups groups =
  let tbl = Hashtbl.create 8 in
  let keys = ref [] in
  List.iter
    (fun g ->
      let key = List.sort_uniq compare g.eligible in
      if g.count < 0 then invalid_arg "Costmodel: negative uop count";
      if key = [] then invalid_arg "Costmodel: empty eligible port set";
      match Hashtbl.find_opt tbl key with
      | Some n -> Hashtbl.replace tbl key (n + g.count)
      | None ->
        Hashtbl.add tbl key g.count;
        keys := key :: !keys)
    groups;
  List.sort compare !keys |> List.map (fun k -> { eligible = k; count = Hashtbl.find tbl k })

(* Lower a ports op to scheduler components: round-robin each group's
   µops over its eligible ports (a deterministic, conservative integer
   assignment — the exact fractional optimum is what
   [reciprocal_throughput] reports), merging µops that land on the same
   primary port into one component. The op's result latency is realised
   as a coverable tail on the first component. *)
let lower ~latency groups =
  let groups = canonical_groups groups in
  if groups = [] then invalid_arg "Costmodel.lower: no uops";
  let comps = ref [] in
  List.iter
    (fun g ->
      let elig = Array.of_list g.eligible in
      let k = Array.length elig in
      if g.count = 0 then
        (* zero-cost op (e.g. nop): keep one empty component so the op
           still names its eligible ports *)
        comps := (elig.(0), 0, elig) :: !comps
      else (
        let per = Array.make k 0 in
        for j = 0 to g.count - 1 do
          per.(j mod k) <- per.(j mod k) + 1
        done;
        Array.iteri (fun i c -> if c > 0 then comps := (elig.(i), c, elig) :: !comps) per))
    groups;
  match List.rev !comps with
  | [] -> invalid_arg "Costmodel.lower: no uops"
  | (u, nc, elig) :: rest ->
    { Atomic_op.unit_id = u; noncoverable = nc; coverable = max 0 (latency - nc); eligible = elig }
    :: List.map
         (fun (u, nc, elig) ->
           { Atomic_op.unit_id = u; noncoverable = nc; coverable = 0; eligible = elig })
         rest

(* Recover the µop groups of a lowered ports op (inverse of [lower] up to
   canonicalization). Components with no eligibility annotation (classic
   ops) count as pinned to their own unit. *)
let groups_of_op (op : Atomic_op.t) =
  canonical_groups
    (List.map
       (fun (c : Atomic_op.component) ->
         let eligible =
           if Array.length c.eligible = 0 then [ c.unit_id ] else Array.to_list c.eligible
         in
         { eligible; count = c.noncoverable })
       op.components)

module type S = sig
  val kind : kind

  val reciprocal_throughput : units:Funit.t array -> Atomic_op.t -> float
  (** Steady-state cycles per instance of the op when issued back to back
      with no other contenders. *)
end

module Classic_model : S = struct
  let kind = Classic

  (* a component may run on any unit of its kind, so the op's rate on
     kind k is (total noncoverable cycles on k-units) / (#k-units) *)
  let reciprocal_throughput ~(units : Funit.t array) (op : Atomic_op.t) =
    let kinds = Hashtbl.create 4 in
    List.iter
      (fun (c : Atomic_op.component) ->
        let k = units.(c.unit_id).Funit.kind in
        let prev = Option.value (Hashtbl.find_opt kinds k) ~default:0 in
        Hashtbl.replace kinds k (prev + c.noncoverable))
      op.components;
    Hashtbl.fold
      (fun k total acc ->
        let replicas =
          Array.fold_left
            (fun n (u : Funit.t) -> if u.kind = k then n + 1 else n)
            0 units
        in
        if replicas = 0 then acc else Stdlib.max acc (float_of_int total /. float_of_int replicas))
      kinds 0.0
end

module Ports_model : S = struct
  let kind = Ports

  let reciprocal_throughput ~units:_ (op : Atomic_op.t) =
    let groups = groups_of_op op in
    let ports = List.sort_uniq compare (List.concat_map (fun g -> g.eligible) groups) in
    let ports = Array.of_list ports in
    let np = Array.length ports in
    if np = 0 then 0.0
    else (
      (* bitmask of each group's eligible set over the op's own ports *)
      let index id =
        let rec go i = if ports.(i) = id then i else go (i + 1) in
        go 0
      in
      let group_masks =
        List.map
          (fun g ->
            (List.fold_left (fun m id -> m lor (1 lsl index id)) 0 g.eligible, g.count))
          groups
      in
      let rec popcount m = if m = 0 then 0 else (m land 1) + popcount (m lsr 1) in
      let best = ref 0.0 in
      (* subsets of the ports this op mentions; np is small (µop sets) *)
      for mask = 1 to (1 lsl np) - 1 do
        let load =
          List.fold_left
            (fun acc (gm, count) -> if gm land lnot mask = 0 then acc + count else acc)
            0 group_masks
        in
        let rate = float_of_int load /. float_of_int (popcount mask) in
        if rate > !best then best := rate
      done;
      !best)
end

let model = function
  | Classic -> (module Classic_model : S)
  | Ports -> (module Ports_model : S)
