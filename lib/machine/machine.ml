type cache_params = {
  line_bytes : int;
  cache_bytes : int;
  associativity : int;
  miss_cycles : int;
  tlb_entries : int;
  page_bytes : int;
  tlb_miss_cycles : int;
}

type comm_params = {
  processors : int;
  startup_cycles : int;
  per_byte_cycles : float;
}

type t = {
  name : string;
  description : string;
  units : Funit.t array;
  atomics : (string, Atomic_op.t) Hashtbl.t;
  model : Costmodel.kind;
  issue_width : int;
  branch_taken_cycles : int;
  register_load_limit : int;
  has_fma : bool;
  cache : cache_params;
  comm : comm_params option;
}

let default_cache =
  {
    line_bytes = 128;
    cache_bytes = 64 * 1024;
    associativity = 4;
    miss_cycles = 12;
    tlb_entries = 128;
    page_bytes = 4096;
    tlb_miss_cycles = 36;
  }

let make ~name ?(description = "") ~units ~atomics ?(issue_width = 4)
    ?(branch_taken_cycles = 3) ?(register_load_limit = 24) ?(has_fma = false)
    ?(cache = default_cache) ?comm () =
  let unit_arr =
    Array.of_list (List.mapi (fun id (uname, kind) -> { Funit.id; name = uname; kind }) units)
  in
  let names = Hashtbl.create 16 in
  Array.iter
    (fun (u : Funit.t) ->
      if Hashtbl.mem names u.name then invalid_arg ("Machine.make: duplicate unit " ^ u.name);
      Hashtbl.add names u.name ())
    unit_arr;
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (opname, comps) ->
      List.iter
        (fun (uid, _, _) ->
          if uid < 0 || uid >= Array.length unit_arr then
            invalid_arg
              (Printf.sprintf "Machine.make: op %s references missing unit %d" opname uid))
        comps;
      if Hashtbl.mem tbl opname then
        invalid_arg ("Machine.make: duplicate atomic op " ^ opname);
      Hashtbl.add tbl opname (Atomic_op.make opname comps))
    atomics;
  {
    name;
    description;
    units = unit_arr;
    atomics = tbl;
    model = Costmodel.Classic;
    issue_width;
    branch_taken_cycles;
    register_load_limit;
    has_fma;
    cache;
    comm;
  }

let make_ports ~name ?(description = "") ~ports ~atomics ?(issue_width = 4)
    ?(branch_taken_cycles = 3) ?(register_load_limit = 24) ?(has_fma = false)
    ?(cache = default_cache) ?comm () =
  if ports = [] then invalid_arg "Machine.make_ports: no ports";
  let unit_arr =
    Array.of_list
      (List.mapi (fun id pname -> { Funit.id; name = pname; kind = Funit.Port }) ports)
  in
  let ids = Hashtbl.create 16 in
  Array.iter
    (fun (u : Funit.t) ->
      if Hashtbl.mem ids u.name then
        invalid_arg ("Machine.make_ports: duplicate port " ^ u.name);
      Hashtbl.add ids u.name u.id)
    unit_arr;
  let port_id opname p =
    match Hashtbl.find_opt ids p with
    | Some id -> id
    | None ->
      invalid_arg
        (Printf.sprintf "Machine.make_ports: op %s references missing port %s" opname p)
  in
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (opname, latency, groups) ->
      if Hashtbl.mem tbl opname then
        invalid_arg ("Machine.make_ports: duplicate atomic op " ^ opname);
      if latency < 0 then
        invalid_arg ("Machine.make_ports: negative latency for " ^ opname);
      let groups =
        List.map
          (fun (eligible, count) ->
            { Costmodel.eligible = List.map (port_id opname) eligible; count })
          groups
      in
      let groups = Costmodel.canonical_groups groups in
      let components = Costmodel.lower ~latency groups in
      Hashtbl.add tbl opname (Atomic_op.of_components opname components))
    atomics;
  {
    name;
    description;
    units = unit_arr;
    atomics = tbl;
    model = Costmodel.Ports;
    issue_width;
    branch_taken_cycles;
    register_load_limit;
    has_fma;
    cache;
    comm;
  }

exception Unknown_atomic of { machine : string; op : string }

let () =
  Printexc.register_printer (function
    | Unknown_atomic { machine; op } ->
      Some (Printf.sprintf "machine %s has no atomic operation %s" machine op)
    | _ -> None)

let atomic t name =
  match Hashtbl.find_opt t.atomics name with
  | Some op -> op
  | None -> raise (Unknown_atomic { machine = t.name; op = name })

let atomic_opt t name = Hashtbl.find_opt t.atomics name
let has_atomic t name = Hashtbl.mem t.atomics name
let num_units t = Array.length t.units

let units_of_kind t kind =
  Array.to_list t.units |> List.filter (fun (u : Funit.t) -> u.kind = kind)

(* ---- cost-model API: consumers outside lib/machine go through these
   accessors rather than the raw [units]/[atomics] fields ---- *)

let model t = t.model
let unit_at t id = t.units.(id)
let units_list t = Array.to_list t.units
let iter_units f t = Array.iter f t.units
let num_atomics t = Hashtbl.length t.atomics
let iter_atomics f t = Hashtbl.iter f t.atomics
let fold_atomics f t init = Hashtbl.fold f t.atomics init

let atomic_names t =
  List.sort compare (Hashtbl.fold (fun name _ acc -> name :: acc) t.atomics [])

let reciprocal_throughput t op =
  let (module M : Costmodel.S) = Costmodel.model t.model in
  M.reciprocal_throughput ~units:t.units op

let pp_summary fmt t =
  Format.fprintf fmt "machine %s: %d units (%a), %d atomic ops, issue width %d%s" t.name
    (Array.length t.units)
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " ")
       (fun fmt (u : Funit.t) -> Format.pp_print_string fmt u.name))
    (Array.to_list t.units)
    (Hashtbl.length t.atomics) t.issue_width
    (if t.has_fma then ", fma" else "")

(* ---- built-in machines ---- *)

(* POWER1 unit indices *)
let fxu = 0
let fpu = 1
let br = 2
let cr = 3
let lsu = 4

let power1_atomics =
  [
    (* integer ops: one FXU cycle *)
    ("iadd", [ (fxu, 1, 0) ]);
    ("isub", [ (fxu, 1, 0) ]);
    ("ineg", [ (fxu, 1, 0) ]);
    ("ilogic", [ (fxu, 1, 0) ]);
    ("ishift", [ (fxu, 1, 0) ]);
    ("icopy", [ (fxu, 1, 0) ]);
    (* §2.2.1: integer multiply is 3 cycles for multipliers in [-128,127],
       5 cycles in general *)
    ("imul_small", [ (fxu, 3, 0) ]);
    ("imul", [ (fxu, 5, 0) ]);
    ("idiv", [ (fxu, 19, 0) ]);
    ("icmp", [ (fxu, 1, 0); (cr, 0, 1) ]);
    (* floating point: the paper's 1 noncoverable + 1 coverable FPU cycle *)
    ("fadd", [ (fpu, 1, 1) ]);
    ("fsub", [ (fpu, 1, 1) ]);
    ("fmul", [ (fpu, 1, 1) ]);
    ("fma", [ (fpu, 1, 1) ]);
    ("fneg", [ (fpu, 1, 0) ]);
    ("fabs", [ (fpu, 1, 0) ]);
    ("fcopy", [ (fpu, 1, 0) ]);
    ("fdiv", [ (fpu, 16, 1) ]);
    ("fcmp", [ (fpu, 1, 0); (cr, 0, 1) ]);
    ("cvt_if", [ (fpu, 1, 1) ]);
    ("cvt_fi", [ (fpu, 1, 1); (fxu, 1, 0) ]);
    (* memory: loads issue on the FXU (address generation) and occupy the
       load/store port; result after one extra (coverable) cycle *)
    ("load_int", [ (fxu, 1, 0); (lsu, 1, 1) ]);
    ("load_fp", [ (fxu, 1, 0); (lsu, 1, 1) ]);
    ("store_int", [ (fxu, 1, 0); (lsu, 1, 0) ]);
    (* §2.1: FP store = two FPU cycles, one coverable, plus one integer-unit
       cycle *)
    ("store_fp", [ (fpu, 1, 1); (fxu, 1, 0); (lsu, 1, 0) ]);
    (* control *)
    ("branch", [ (br, 1, 0) ]);
    ("branch_cond", [ (br, 1, 0); (cr, 1, 0) ]);
    ("call", [ (br, 2, 0); (fxu, 2, 0) ]);
    (* expensive intrinsics (software sequences on POWER1) *)
    ("fsqrt", [ (fpu, 27, 1) ]);
    ("fsin", [ (fpu, 40, 1) ]);
    ("fcos", [ (fpu, 40, 1) ]);
    ("fexp", [ (fpu, 35, 1) ]);
    ("flog", [ (fpu, 35, 1) ]);
    ("ftanh", [ (fpu, 45, 1) ]);
    ("nop", [ (fxu, 0, 0) ]);
  ]

let power1 =
  make ~name:"power1"
    ~description:"IBM POWER (RS/6000-like): 5 units, FMA, the paper's target"
    ~units:
      [ ("FXU", Funit.Fixed_point); ("FPU", Funit.Float_point); ("BR", Funit.Branch);
        ("CR", Funit.Cr_logic); ("LSU", Funit.Load_store) ]
    ~atomics:power1_atomics ~issue_width:4 ~branch_taken_cycles:3 ~register_load_limit:24
    ~has_fma:true ()

let power1_wide =
  (* duplicated FXU/FPU/LSU; atomic components still name the first unit of
     each kind — the scheduler may place a component on any unit of the same
     kind *)
  let units =
    [ ("FXU0", Funit.Fixed_point); ("FPU0", Funit.Float_point); ("BR", Funit.Branch);
      ("CR", Funit.Cr_logic); ("LSU0", Funit.Load_store); ("FXU1", Funit.Fixed_point);
      ("FPU1", Funit.Float_point); ("LSU1", Funit.Load_store) ]
  in
  make ~name:"power1x2"
    ~description:"2-way POWER variant: duplicated FXU/FPU/LSU"
    ~units ~atomics:power1_atomics ~issue_width:6 ~branch_taken_cycles:3
    ~register_load_limit:28 ~has_fma:true ()

let alpha21064 =
  (* DEC Alpha 21064-like (the Cray T3D node the paper's intro mentions):
     dual issue, no FMA, longer FP latencies than POWER1, separate
     load/store pipe. Costs follow the 21064 hardware reference manual's
     well-known latencies (fadd/fmul 6, pipelined; idiv via software). *)
  let fxu = 0 and fpu = 1 and br = 2 and lsu = 3 in
  make ~name:"alpha21064"
    ~description:"DEC Alpha 21064-like (Cray T3D node): dual issue, no FMA"
    ~units:
      [ ("EBOX", Funit.Fixed_point); ("FBOX", Funit.Float_point); ("IBOX", Funit.Branch);
        ("ABOX", Funit.Load_store) ]
    ~atomics:
      [
        ("iadd", [ (fxu, 1, 0) ]);
        ("isub", [ (fxu, 1, 0) ]);
        ("ineg", [ (fxu, 1, 0) ]);
        ("ilogic", [ (fxu, 1, 0) ]);
        ("ishift", [ (fxu, 1, 1) ]);
        ("icopy", [ (fxu, 1, 0) ]);
        ("imul_small", [ (fxu, 1, 18) ]) (* 21064 integer multiply: long latency *);
        ("imul", [ (fxu, 1, 20) ]);
        ("idiv", [ (fxu, 40, 0) ]) (* software sequence *);
        ("icmp", [ (fxu, 1, 0) ]);
        ("fadd", [ (fpu, 1, 5) ]) (* 6-cycle latency, fully pipelined *);
        ("fsub", [ (fpu, 1, 5) ]);
        ("fmul", [ (fpu, 1, 5) ]);
        ("fneg", [ (fpu, 1, 0) ]);
        ("fabs", [ (fpu, 1, 0) ]);
        ("fcopy", [ (fpu, 1, 0) ]);
        ("fdiv", [ (fpu, 30, 4) ]) (* single precision, not pipelined *);
        ("ddiv", [ (fpu, 59, 4) ]) (* 21064: double divide ~63 vs ~34 cycles *);
        ("fcmp", [ (fpu, 1, 2) ]);
        ("cvt_if", [ (fpu, 1, 5) ]);
        ("cvt_fi", [ (fpu, 1, 5); (fxu, 1, 0) ]);
        ("load_int", [ (lsu, 1, 2) ]);
        ("load_fp", [ (lsu, 1, 2) ]);
        ("store_int", [ (lsu, 1, 0) ]);
        ("store_fp", [ (lsu, 1, 0) ]);
        ("branch", [ (br, 1, 0) ]);
        ("branch_cond", [ (br, 1, 1) ]);
        ("call", [ (br, 2, 0); (fxu, 2, 0) ]);
        ("fsqrt", [ (fpu, 34, 0) ]);
        ("fsin", [ (fpu, 60, 0) ]);
        ("fcos", [ (fpu, 60, 0) ]);
        ("fexp", [ (fpu, 50, 0) ]);
        ("flog", [ (fpu, 50, 0) ]);
        ("ftanh", [ (fpu, 70, 0) ]);
        ("nop", [ (fxu, 0, 0) ]);
      ]
    ~issue_width:2 ~branch_taken_cycles:4 ~register_load_limit:28 ~has_fma:false
    ~cache:
      {
        line_bytes = 32;
        cache_bytes = 8 * 1024;
        associativity = 1;
        miss_cycles = 25;
        tlb_entries = 32;
        page_bytes = 8192;
        tlb_miss_cycles = 50;
      }
    ~comm:{ processors = 64; startup_cycles = 1500; per_byte_cycles = 0.35 }
    ()

let scalar =
  let alu = 0 in
  let serial_ops =
    [
      ("iadd", 1); ("isub", 1); ("ineg", 1); ("ilogic", 1); ("ishift", 1); ("icopy", 1);
      ("imul_small", 3); ("imul", 5); ("idiv", 19); ("icmp", 1);
      ("fadd", 2); ("fsub", 2); ("fmul", 2); ("fneg", 1); ("fabs", 1); ("fcopy", 1);
      ("fdiv", 17); ("fcmp", 1); ("cvt_if", 2); ("cvt_fi", 2);
      ("load_int", 2); ("load_fp", 2); ("store_int", 2); ("store_fp", 2);
      ("branch", 1); ("branch_cond", 2); ("call", 4);
      ("fsqrt", 28); ("fsin", 41); ("fcos", 41); ("fexp", 36); ("flog", 36); ("ftanh", 46);
      ("nop", 0);
    ]
  in
  make ~name:"scalar"
    ~description:"strictly sequential single-unit machine (operation counting)"
    ~units:[ ("ALU", Funit.Custom "alu") ]
    ~atomics:(List.map (fun (n, c) -> (n, [ (alu, c, 0) ])) serial_ops)
    ~issue_width:1 ~branch_taken_cycles:2 ~register_load_limit:8 ~has_fma:false ()
