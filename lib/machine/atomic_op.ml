type component = {
  unit_id : int;
  noncoverable : int;
  coverable : int;
  eligible : int array;
}

type t = { name : string; components : component list }

let make name comps =
  if comps = [] then invalid_arg "Atomic_op.make: no components";
  let seen = Hashtbl.create 4 in
  let components =
    List.map
      (fun (unit_id, noncoverable, coverable) ->
        if noncoverable < 0 || coverable < 0 then
          invalid_arg "Atomic_op.make: negative cost";
        if Hashtbl.mem seen unit_id then
          invalid_arg "Atomic_op.make: duplicate unit component";
        Hashtbl.add seen unit_id ();
        { unit_id; noncoverable; coverable; eligible = [||] })
      comps
  in
  { name; components }

let of_components name components =
  if components = [] then invalid_arg "Atomic_op.of_components: no components";
  let seen = Hashtbl.create 4 in
  List.iter
    (fun c ->
      if c.noncoverable < 0 || c.coverable < 0 then
        invalid_arg "Atomic_op.of_components: negative cost";
      (* a unit may appear more than once only for port-eligible
         components (two µop groups sharing a primary port) *)
      if Array.length c.eligible = 0 then (
        if Hashtbl.mem seen c.unit_id then
          invalid_arg "Atomic_op.of_components: duplicate unit component";
        Hashtbl.add seen c.unit_id ()))
    components;
  { name; components }

let result_latency t =
  List.fold_left (fun acc c -> max acc (c.noncoverable + c.coverable)) 0 t.components

let busy_cycles t = List.fold_left (fun acc c -> acc + c.noncoverable) 0 t.components

let serial_cycles = result_latency

let component_on t unit_id = List.find_opt (fun c -> c.unit_id = unit_id) t.components

let pp fmt t =
  Format.fprintf fmt "%s[%a]" t.name
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ",")
       (fun fmt c -> Format.fprintf fmt "u%d:%d+%dc" c.unit_id c.noncoverable c.coverable))
    t.components
