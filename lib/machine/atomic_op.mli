(** Atomic operations and their two-component costs (§2.1).

    Each atomic operation carries, per functional unit it touches:

    - a {e noncoverable} cost — cycles the unit truly dedicates to it
      (a solid Tetris piece: cannot share its time slots);
    - a {e coverable} cost — latency cycles during which {e independent}
      operations may proceed, but consumers of the result must wait
      (a transparent piece acting as a filter for dependents).

    The paper's canonical example: a POWER floating-point add is one
    noncoverable plus one coverable cycle on the FPU — it costs one cycle
    if the compiler can cover the second, two if not. A floating-point
    store occupies the FPU two cycles (one coverable) {e and} an integer
    unit one cycle. *)

type component = {
  unit_id : int;
  noncoverable : int;  (** >= 0 *)
  coverable : int;  (** >= 0 *)
  eligible : int array;
      (** issue ports this component's cycles may be placed on; empty
          means classic semantics (any unit of [unit_id]'s kind). Ports
          machines lower every µop group to a component carrying its
          eligible set — see {!Costmodel}. *)
}

type t = {
  name : string;
  components : component list;
      (** at most one component per unit for classic ops; ports ops may
          repeat a primary unit across eligible components *)
}

val make : string -> (int * int * int) list -> t
(** [make name [(unit, noncoverable, coverable); ...]] — classic
    components (empty [eligible]).
    @raise Invalid_argument on negative costs, an empty component list, or
    duplicate units. *)

val of_components : string -> component list -> t
(** Build from explicit components (the ports-model lowering path).
    Duplicate units are allowed only on port-eligible components.
    @raise Invalid_argument on negative costs or an empty list. *)

val result_latency : t -> int
(** Cycles from issue until a dependent may start:
    max over components of (noncoverable + coverable). *)

val busy_cycles : t -> int
(** Total noncoverable cycles summed over components — the work a pure
    operation-count model would charge. *)

val serial_cycles : t -> int
(** What a non-overlapping (fully serial) machine pays: equals
    {!result_latency}. *)

val component_on : t -> int -> component option
val pp : Format.formatter -> t -> unit
