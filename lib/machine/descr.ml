exception Parse_error of string

(* ---- a tiny S-expression reader ---- *)

type sexp = Atom of string | List of sexp list

let parse_sexp (s : string) : sexp =
  let n = String.length s in
  let pos = ref 0 in
  let line = ref 1 in
  let error msg = raise (Parse_error (Printf.sprintf "line %d: %s" !line msg)) in
  let rec skip_ws () =
    if !pos < n then (
      match s.[!pos] with
      | ' ' | '\t' | '\r' -> incr pos; skip_ws ()
      | '\n' -> incr line; incr pos; skip_ws ()
      | ';' ->
        while !pos < n && s.[!pos] <> '\n' do incr pos done;
        skip_ws ()
      | _ -> ())
  in
  let atom () =
    let start = !pos in
    while
      !pos < n
      && (match s.[!pos] with
          | ' ' | '\t' | '\n' | '\r' | '(' | ')' | ';' -> false
          | _ -> true)
    do
      incr pos
    done;
    if !pos = start then error "expected atom";
    Atom (String.sub s start (!pos - start))
  in
  let rec value () =
    skip_ws ();
    if !pos >= n then error "unexpected end of input";
    if s.[!pos] = '(' then (
      incr pos;
      let items = ref [] in
      let rec loop () =
        skip_ws ();
        if !pos >= n then error "unterminated list";
        if s.[!pos] = ')' then incr pos
        else (
          items := value () :: !items;
          loop ())
      in
      loop ();
      List (List.rev !items))
    else if s.[!pos] = ')' then error "unexpected )"
    else atom ()
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then error "trailing input after machine description";
  v

(* ---- interpretation ---- *)

let as_atom = function Atom a -> a | List _ -> raise (Parse_error "expected atom")

let as_int sx =
  let a = as_atom sx in
  match int_of_string_opt a with
  | Some i -> i
  | None -> raise (Parse_error ("expected integer, got " ^ a))

let as_bool sx =
  match as_atom sx with
  | "true" -> true
  | "false" -> false
  | a -> raise (Parse_error ("expected bool, got " ^ a))

let field name fields =
  List.find_map
    (function List (Atom key :: rest) when String.equal key name -> Some rest | _ -> None)
    fields

let field_exn name fields =
  match field name fields with
  | Some v -> v
  | None -> raise (Parse_error ("missing field " ^ name))

let int_field name default fields =
  match field name fields with Some [ v ] -> as_int v | Some _ -> raise (Parse_error name) | None -> default

let of_string str =
  match parse_sexp str with
  | List (Atom "machine" :: fields) ->
    let name =
      match field_exn "name" fields with
      | [ v ] -> as_atom v
      | _ -> raise (Parse_error "name")
    in
    let units =
      match field_exn "units" fields with
      | us ->
        List.map
          (function
            | List [ Atom uname; Atom kind ] -> (uname, Funit.kind_of_string kind)
            | _ -> raise (Parse_error "unit entries must be (NAME kind)"))
          us
    in
    let unit_index =
      List.mapi (fun i (uname, _) -> (uname, i)) units
    in
    let resolve_unit u =
      match List.assoc_opt u unit_index with
      | Some i -> i
      | None -> raise (Parse_error ("unknown unit in atomic op: " ^ u))
    in
    let atomics =
      match field_exn "atomics" fields with
      | ops ->
        List.map
          (function
            | List (Atom opname :: comps) ->
              ( opname,
                List.map
                  (function
                    | List [ Atom u; nc; cv ] -> (resolve_unit u, as_int nc, as_int cv)
                    | _ -> raise (Parse_error ("bad component in op " ^ opname)))
                  comps )
            | _ -> raise (Parse_error "atomic entries must be (name (UNIT nc cv) ...)"))
          ops
    in
    let cache =
      match field "cache" fields with
      | None -> Machine.default_cache
      | Some cfields ->
        {
          Machine.line_bytes = int_field "line-bytes" Machine.default_cache.line_bytes cfields;
          cache_bytes = int_field "cache-bytes" Machine.default_cache.cache_bytes cfields;
          associativity = int_field "associativity" Machine.default_cache.associativity cfields;
          miss_cycles = int_field "miss-cycles" Machine.default_cache.miss_cycles cfields;
          tlb_entries = int_field "tlb-entries" Machine.default_cache.tlb_entries cfields;
          page_bytes = int_field "page-bytes" Machine.default_cache.page_bytes cfields;
          tlb_miss_cycles = int_field "tlb-miss-cycles" Machine.default_cache.tlb_miss_cycles cfields;
        }
    in
    let comm =
      match field "comm" fields with
      | None -> None
      | Some cfields ->
        Some
          {
            Machine.processors = int_field "processors" 1 cfields;
            startup_cycles = int_field "startup-cycles" 1000 cfields;
            per_byte_cycles =
              (match field "per-byte-cycles" cfields with
               | Some [ Atom a ] ->
                 (match float_of_string_opt a with
                  | Some f -> f
                  | None -> raise (Parse_error "per-byte-cycles"))
               | _ -> 1.0);
          }
    in
    let has_fma = match field "fma" fields with Some [ v ] -> as_bool v | _ -> false in
    Machine.make ~name ~units ~atomics
      ~issue_width:(int_field "issue-width" 4 fields)
      ~branch_taken_cycles:(int_field "branch-taken-cycles" 3 fields)
      ~register_load_limit:(int_field "register-load-limit" 24 fields)
      ~has_fma ~cache ?comm ()
  | _ -> raise (Parse_error "expected (machine ...)")

let of_channel ic =
  let buf = Buffer.create 4096 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  of_string (Buffer.contents buf)

let to_string (m : Machine.t) =
  let b = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "(machine (name %s)\n" m.name;
  pf "  (issue-width %d)\n" m.issue_width;
  pf "  (branch-taken-cycles %d)\n" m.branch_taken_cycles;
  pf "  (register-load-limit %d)\n" m.register_load_limit;
  pf "  (fma %b)\n" m.has_fma;
  pf "  (units";
  Array.iter
    (fun (u : Funit.t) -> pf " (%s %s)" u.name (Funit.kind_to_string u.kind))
    m.units;
  pf ")\n  (atomics\n";
  let ops = Hashtbl.fold (fun k v acc -> (k, v) :: acc) m.atomics [] in
  let ops = List.sort (fun (a, _) (b, _) -> String.compare a b) ops in
  List.iter
    (fun (opname, (op : Atomic_op.t)) ->
      pf "    (%s" opname;
      List.iter
        (fun (c : Atomic_op.component) ->
          pf " (%s %d %d)" m.units.(c.unit_id).name c.noncoverable c.coverable)
        op.components;
      pf ")\n")
    ops;
  pf "  )\n";
  pf "  (cache (line-bytes %d) (cache-bytes %d) (associativity %d) (miss-cycles %d)\n"
    m.cache.line_bytes m.cache.cache_bytes m.cache.associativity m.cache.miss_cycles;
  pf "         (tlb-entries %d) (page-bytes %d) (tlb-miss-cycles %d))\n" m.cache.tlb_entries
    m.cache.page_bytes m.cache.tlb_miss_cycles;
  (match m.comm with
   | Some c ->
     pf "  (comm (processors %d) (startup-cycles %d) (per-byte-cycles %g))\n" c.processors
       c.startup_cycles c.per_byte_cycles
   | None -> ());
  pf ")\n";
  Buffer.contents b
