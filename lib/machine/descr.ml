exception Parse_error of string

(* ---- a tiny S-expression reader; every node carries its source line ---- *)

type sexp = Atom of string * int | List of sexp list * int

let sexp_line = function Atom (_, l) | List (_, l) -> l
let err line msg = raise (Parse_error (Printf.sprintf "line %d: %s" line msg))

let parse_sexp (s : string) : sexp =
  let n = String.length s in
  let pos = ref 0 in
  let line = ref 1 in
  let error msg = err !line msg in
  let rec skip_ws () =
    if !pos < n then (
      match s.[!pos] with
      | ' ' | '\t' | '\r' -> incr pos; skip_ws ()
      | '\n' -> incr line; incr pos; skip_ws ()
      | ';' ->
        while !pos < n && s.[!pos] <> '\n' do incr pos done;
        skip_ws ()
      | _ -> ())
  in
  let atom () =
    let start = !pos in
    while
      !pos < n
      && (match s.[!pos] with
          | ' ' | '\t' | '\n' | '\r' | '(' | ')' | ';' -> false
          | _ -> true)
    do
      incr pos
    done;
    if !pos = start then error "expected atom";
    Atom (String.sub s start (!pos - start), !line)
  in
  let rec value () =
    skip_ws ();
    if !pos >= n then error "unexpected end of input";
    if s.[!pos] = '(' then (
      let open_line = !line in
      incr pos;
      let items = ref [] in
      let rec loop () =
        skip_ws ();
        if !pos >= n then err open_line "unterminated list";
        if s.[!pos] = ')' then incr pos
        else (
          items := value () :: !items;
          loop ())
      in
      loop ();
      List (List.rev !items, open_line))
    else if s.[!pos] = ')' then error "unexpected )"
    else atom ()
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then error "trailing input after machine description";
  v

(* ---- interpretation ---- *)

let as_atom = function Atom (a, _) -> a | List (_, l) -> err l "expected atom"

let as_int sx =
  let a = as_atom sx in
  match int_of_string_opt a with
  | Some i -> i
  | None -> err (sexp_line sx) ("expected integer, got " ^ a)

let as_bool sx =
  match as_atom sx with
  | "true" -> true
  | "false" -> false
  | a -> err (sexp_line sx) ("expected bool, got " ^ a)

let field name fields =
  List.find_map
    (function
      | List (Atom (key, _) :: rest, l) when String.equal key name -> Some (l, rest)
      | _ -> None)
    fields

let field_exn ~line name fields =
  match field name fields with
  | Some v -> v
  | None -> err line ("missing field " ^ name)

let int_field name default fields =
  match field name fields with
  | Some (_, [ v ]) -> as_int v
  | Some (l, _) -> err l ("field " ^ name ^ " expects a single integer")
  | None -> default

let no_duplicates what entries =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (name, line) ->
      (match Hashtbl.find_opt seen name with
       | Some first ->
         err line
           (Printf.sprintf "duplicate %s %s (first defined at line %d)" what name first)
       | None -> ());
      Hashtbl.add seen name line)
    entries

(* ---- classic (v1) dialect: (units ...) + (atomics (op (UNIT nc cv)...)) ---- *)

let classic_of_fields ~line ~name ~cache ~comm ~has_fma fields =
  let units =
    let _, us = field_exn ~line "units" fields in
    List.map
      (function
        | List ([ Atom (uname, _); Atom (kind, _) ], l) ->
          (uname, Funit.kind_of_string kind, l)
        | sx -> err (sexp_line sx) "unit entries must be (NAME kind)")
      us
  in
  no_duplicates "unit" (List.map (fun (u, _, l) -> (u, l)) units);
  let unit_index = List.mapi (fun i (uname, _, _) -> (uname, i)) units in
  let resolve_unit sx =
    let u = as_atom sx in
    match List.assoc_opt u unit_index with
    | Some i -> i
    | None -> err (sexp_line sx) ("unknown unit in atomic op: " ^ u)
  in
  let atomics =
    let _, ops = field_exn ~line "atomics" fields in
    List.map
      (function
        | List (Atom (opname, l) :: comps, _) ->
          ( (opname, l),
            List.map
              (function
                | List ([ u; nc; cv ], _) -> (resolve_unit u, as_int nc, as_int cv)
                | sx -> err (sexp_line sx) ("bad component in op " ^ opname))
              comps )
        | sx -> err (sexp_line sx) "atomic entries must be (name (UNIT nc cv) ...)")
      ops
  in
  no_duplicates "atomic op" (List.map fst atomics);
  Machine.make ~name
    ~units:(List.map (fun (u, k, _) -> (u, k)) units)
    ~atomics:(List.map (fun ((n, _), comps) -> (n, comps)) atomics)
    ~issue_width:(int_field "issue-width" 4 fields)
    ~branch_taken_cycles:(int_field "branch-taken-cycles" 3 fields)
    ~register_load_limit:(int_field "register-load-limit" 24 fields)
    ~has_fma ~cache ?comm ()

(* ---- ports (v2) dialect: (model ports) + (ports p0 p1 ...) +
        (atomics (op (latency n) (uops (p0|p1 count) ...))) ---- *)

let split_ports sx =
  let a = as_atom sx in
  let parts = String.split_on_char '|' a in
  if List.exists (fun p -> p = "") parts then
    err (sexp_line sx) ("malformed port set " ^ a);
  parts

let ports_of_fields ~line ~name ~cache ~comm ~has_fma fields =
  let ports =
    let l, ps = field_exn ~line "ports" fields in
    if ps = [] then err l "ports machine declares no ports";
    List.map (fun sx -> (as_atom sx, sexp_line sx)) ps
  in
  no_duplicates "port" ports;
  let port_names = List.map fst ports in
  let known p = List.mem p port_names in
  let atomics =
    let _, ops = field_exn ~line "atomics" fields in
    List.map
      (function
        | List (Atom (opname, l) :: body, _) ->
          let uops =
            let ul, us = field_exn ~line:l "uops" body in
            if us = [] then err ul ("op " ^ opname ^ " lists no uops");
            List.map
              (function
                | List ([ pset; count ], _) ->
                  let names = split_ports pset in
                  List.iter
                    (fun p ->
                      if not (known p) then
                        err (sexp_line pset)
                          ("unknown port in op " ^ opname ^ ": " ^ p))
                    names;
                  let c = as_int count in
                  if c < 0 then err (sexp_line count) ("negative uop count in op " ^ opname);
                  (names, c)
                | sx -> err (sexp_line sx) ("bad uop group in op " ^ opname))
              us
          in
          let latency =
            match field "latency" body with
            | Some (_, [ v ]) ->
              let lat = as_int v in
              if lat < 0 then err (sexp_line v) ("negative latency in op " ^ opname);
              lat
            | Some (ll, _) -> err ll ("field latency expects a single integer in op " ^ opname)
            | None -> max 1 (List.fold_left (fun acc (_, c) -> acc + c) 0 uops)
          in
          ((opname, l), latency, uops)
        | sx -> err (sexp_line sx) "atomic entries must be (name (latency n) (uops ...))")
      ops
  in
  no_duplicates "atomic op" (List.map (fun (nl, _, _) -> nl) atomics);
  Machine.make_ports ~name ~ports:port_names
    ~atomics:(List.map (fun ((n, _), lat, uops) -> (n, lat, uops)) atomics)
    ~issue_width:(int_field "issue-width" 4 fields)
    ~branch_taken_cycles:(int_field "branch-taken-cycles" 3 fields)
    ~register_load_limit:(int_field "register-load-limit" 24 fields)
    ~has_fma ~cache ?comm ()

let of_string str =
  match parse_sexp str with
  | List (Atom ("machine", _) :: fields, line) ->
    let name =
      match field_exn ~line "name" fields with
      | _, [ v ] -> as_atom v
      | l, _ -> err l "field name expects a single atom"
    in
    let cache =
      match field "cache" fields with
      | None -> Machine.default_cache
      | Some (_, cfields) ->
        {
          Machine.line_bytes = int_field "line-bytes" Machine.default_cache.line_bytes cfields;
          cache_bytes = int_field "cache-bytes" Machine.default_cache.cache_bytes cfields;
          associativity = int_field "associativity" Machine.default_cache.associativity cfields;
          miss_cycles = int_field "miss-cycles" Machine.default_cache.miss_cycles cfields;
          tlb_entries = int_field "tlb-entries" Machine.default_cache.tlb_entries cfields;
          page_bytes = int_field "page-bytes" Machine.default_cache.page_bytes cfields;
          tlb_miss_cycles = int_field "tlb-miss-cycles" Machine.default_cache.tlb_miss_cycles cfields;
        }
    in
    let comm =
      match field "comm" fields with
      | None -> None
      | Some (_, cfields) ->
        Some
          {
            Machine.processors = int_field "processors" 1 cfields;
            startup_cycles = int_field "startup-cycles" 1000 cfields;
            per_byte_cycles =
              (match field "per-byte-cycles" cfields with
               | Some (_, [ v ]) ->
                 let a = as_atom v in
                 (match float_of_string_opt a with
                  | Some f -> f
                  | None -> err (sexp_line v) ("expected number, got " ^ a))
               | _ -> 1.0);
          }
    in
    let has_fma = match field "fma" fields with Some (_, [ v ]) -> as_bool v | _ -> false in
    let model =
      match field "model" fields with
      | None -> Costmodel.Classic
      | Some (l, [ v ]) ->
        (match Costmodel.kind_of_string (as_atom v) with
         | Some k -> k
         | None -> err l ("unknown cost model " ^ as_atom v))
      | Some (l, _) -> err l "field model expects a single atom"
    in
    (match model with
     | Costmodel.Classic -> classic_of_fields ~line ~name ~cache ~comm ~has_fma fields
     | Costmodel.Ports -> ports_of_fields ~line ~name ~cache ~comm ~has_fma fields)
  | sx -> err (sexp_line sx) "expected (machine ...)"

let of_channel ic =
  let buf = Buffer.create 4096 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  of_string (Buffer.contents buf)

let to_string (m : Machine.t) =
  let b = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "(machine (name %s)\n" m.name;
  (match Machine.model m with
   | Costmodel.Classic -> ()
   | Costmodel.Ports -> pf "  (model ports)\n");
  pf "  (issue-width %d)\n" m.issue_width;
  pf "  (branch-taken-cycles %d)\n" m.branch_taken_cycles;
  pf "  (register-load-limit %d)\n" m.register_load_limit;
  pf "  (fma %b)\n" m.has_fma;
  (match Machine.model m with
   | Costmodel.Classic ->
     pf "  (units";
     Machine.iter_units
       (fun (u : Funit.t) -> pf " (%s %s)" u.name (Funit.kind_to_string u.kind))
       m;
     pf ")\n  (atomics\n";
     let ops =
       List.sort compare
         (Machine.fold_atomics (fun k v acc -> (k, v) :: acc) m [])
     in
     List.iter
       (fun (opname, (op : Atomic_op.t)) ->
         pf "    (%s" opname;
         List.iter
           (fun (c : Atomic_op.component) ->
             pf " (%s %d %d)" (Machine.unit_at m c.unit_id).Funit.name c.noncoverable
               c.coverable)
           op.components;
         pf ")\n")
       ops
   | Costmodel.Ports ->
     pf "  (ports";
     Machine.iter_units (fun (u : Funit.t) -> pf " %s" u.name) m;
     pf ")\n  (atomics\n";
     let ops =
       List.sort compare
         (Machine.fold_atomics (fun k v acc -> (k, v) :: acc) m [])
     in
     List.iter
       (fun (opname, (op : Atomic_op.t)) ->
         pf "    (%s (latency %d) (uops" opname (Atomic_op.result_latency op);
         List.iter
           (fun (g : Costmodel.uop_group) ->
             let names =
               List.map (fun id -> (Machine.unit_at m id).Funit.name) g.eligible
             in
             pf " (%s %d)" (String.concat "|" names) g.count)
           (Costmodel.groups_of_op op);
         pf "))\n")
       ops);
  pf "  )\n";
  pf "  (cache (line-bytes %d) (cache-bytes %d) (associativity %d) (miss-cycles %d)\n"
    m.cache.line_bytes m.cache.cache_bytes m.cache.associativity m.cache.miss_cycles;
  pf "         (tlb-entries %d) (page-bytes %d) (tlb-miss-cycles %d))\n" m.cache.tlb_entries
    m.cache.page_bytes m.cache.tlb_miss_cycles;
  (match m.comm with
   | Some c ->
     pf "  (comm (processors %d) (startup-cycles %d) (per-byte-cycles %g))\n" c.processors
       c.startup_cycles c.per_byte_cycles
   | None -> ());
  pf ")\n";
  Buffer.contents b
