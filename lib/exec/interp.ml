open Pperf_lang
open Pperf_machine
open Pperf_sched
module SSet = Analysis.SSet

type value = VInt of int | VReal of float | VLog of bool

exception Runtime_error of string * Srcloc.t

exception Return_exn

let err loc fmt = Printf.ksprintf (fun m -> raise (Runtime_error (m, loc))) fmt

(* ---- profile ---- *)

module Profile = struct
  type t = {
    branches : (Srcloc.t, int array) Hashtbl.t;  (** per-branch taken counts, else last *)
    loops : (Srcloc.t, int * int) Hashtbl.t;  (** entries, iterations *)
  }

  let empty () = { branches = Hashtbl.create 16; loops = Hashtbl.create 16 }

  let record_branch t loc ~arity ~taken =
    let counts =
      match Hashtbl.find_opt t.branches loc with
      | Some c -> c
      | None ->
        let c = Array.make arity 0 in
        Hashtbl.add t.branches loc c;
        c
    in
    counts.(taken) <- counts.(taken) + 1

  let record_loop t loc ~iterations =
    let entries, total =
      match Hashtbl.find_opt t.loops loc with Some x -> x | None -> (0, 0)
    in
    Hashtbl.replace t.loops loc (entries + 1, total + iterations)

  let branch_prob t loc =
    match Hashtbl.find_opt t.branches loc with
    | None -> None
    | Some counts ->
      let total = Array.fold_left ( + ) 0 counts in
      if total = 0 then None
      else
        Some
          (Pperf_symbolic.Poly.of_rat (Pperf_num.Rat.of_ints counts.(0) total))

  let branch_counts t = Hashtbl.fold (fun loc c acc -> (loc, c) :: acc) t.branches []
  let trip_counts t = Hashtbl.fold (fun loc (e, n) acc -> (loc, e, n) :: acc) t.loops []

  let pp fmt t =
    List.iter
      (fun (loc, counts) ->
        Format.fprintf fmt "if at %s: [%s]@." (Srcloc.to_string loc)
          (String.concat "; " (Array.to_list (Array.map string_of_int counts))))
      (branch_counts t);
    List.iter
      (fun (loc, entries, total) ->
        Format.fprintf fmt "do at %s: %d entries, %d iterations@." (Srcloc.to_string loc)
          entries total)
      (trip_counts t)
end

(* ---- storage ---- *)

type arr = {
  ty : Ast.dtype;
  lows : int array;
  extents : int array;
  fdata : float array;  (** used for real/double *)
  idata : int array;  (** used for int/logical (0/1) *)
}

type frame = {
  scalars : (string, value) Hashtbl.t;
  arrays : (string, arr) Hashtbl.t;
}

type state = {
  machine : Machine.t;
  options : Pperf_core.Aggregate.options;
  program : Typecheck.checked list;
  profile : Profile.t;
  mutable cycles : float;
  mutable steps : int;
  block_costs : (Srcloc.t * string, int * int) Hashtbl.t;
      (** (first-stmt loc, loop ctx) -> (per-execution cycles, one-time cycles) *)
  cond_costs : (Srcloc.t, int) Hashtbl.t;
  charged_one_time : (Srcloc.t * string, int) Hashtbl.t;
      (** block -> activation id for which one-time cost was last charged *)
  mutable next_activation : int;
      (** loop-entry counter; each [do] entry gets a fresh id, which is the
          key under which its body's hoisted (one-time) costs are charged *)
}

let max_steps = 50_000_000

let budget st loc =
  st.steps <- st.steps + 1;
  if st.steps > max_steps then err loc "interpreter budget exceeded (%d steps)" max_steps

(* ---- value helpers ---- *)

let as_int loc = function
  | VInt i -> i
  | VReal f -> int_of_float f
  | VLog _ -> err loc "logical used as number"

let as_float loc = function
  | VReal f -> f
  | VInt i -> float_of_int i
  | VLog _ -> err loc "logical used as number"

let as_bool loc = function
  | VLog b -> b
  | _ -> err loc "number used as logical"

(* ---- expression evaluation ---- *)

let rec eval st frame loc (e : Ast.expr) : value =
  match e with
  | Ast.Int i -> VInt i
  | Ast.Real (f, _) -> VReal f
  | Ast.Logical b -> VLog b
  | Ast.Var x -> (
    match Hashtbl.find_opt frame.scalars x with
    | Some v -> v
    | None -> err loc "unbound variable %s" x)
  | Ast.Index (a, subs) -> (
    let arr = lookup_array st frame loc a in
    let off = element_offset st frame loc arr a subs in
    match arr.ty with
    | Ast.Treal | Ast.Tdouble -> VReal arr.fdata.(off)
    | Ast.Tint -> VInt arr.idata.(off)
    | Ast.Tlogical -> VLog (arr.idata.(off) <> 0))
  | Ast.Unop (Ast.Neg, a) -> (
    match eval st frame loc a with
    | VInt i -> VInt (-i)
    | VReal f -> VReal (-.f)
    | VLog _ -> err loc "negation of logical")
  | Ast.Unop (Ast.Not, a) -> VLog (not (as_bool loc (eval st frame loc a)))
  | Ast.Binop (op, a, b) -> eval_binop st frame loc op a b
  | Ast.Call (f, args) -> eval_call st frame loc f args

and eval_binop st frame loc op a b =
  let va = eval st frame loc a and vb = eval st frame loc b in
  let num_op fi ff =
    match (va, vb) with
    | VInt x, VInt y -> VInt (fi x y)
    | _ -> VReal (ff (as_float loc va) (as_float loc vb))
  in
  let cmp f = VLog (f (compare (as_float loc va) (as_float loc vb)) 0) in
  match op with
  | Ast.Add -> num_op ( + ) ( +. )
  | Ast.Sub -> num_op ( - ) ( -. )
  | Ast.Mul -> num_op ( * ) ( *. )
  | Ast.Div -> (
    match (va, vb) with
    | VInt _, VInt 0 -> err loc "integer division by zero"
    | VInt x, VInt y -> VInt (x / y)
    | _ ->
      let d = as_float loc vb in
      if d = 0.0 then err loc "division by zero";
      VReal (as_float loc va /. d))
  | Ast.Pow -> (
    match (va, vb) with
    | VInt x, VInt y when y >= 0 ->
      let rec go acc b n = if n = 0 then acc else if n land 1 = 1 then go (acc * b) (b * b) (n asr 1) else go acc (b * b) (n asr 1) in
      VInt (go 1 x y)
    | _ -> VReal (Float.pow (as_float loc va) (as_float loc vb)))
  | Ast.Eq -> cmp ( = )
  | Ast.Ne -> cmp ( <> )
  | Ast.Lt -> cmp ( < )
  | Ast.Le -> cmp ( <= )
  | Ast.Gt -> cmp ( > )
  | Ast.Ge -> cmp ( >= )
  | Ast.And -> VLog (as_bool loc va && as_bool loc vb)
  | Ast.Or -> VLog (as_bool loc va || as_bool loc vb)

and eval_call st frame loc f args =
  match (f, List.map (eval st frame loc) args) with
  | "sqrt", [ v ] -> VReal (sqrt (as_float loc v))
  | "sin", [ v ] -> VReal (sin (as_float loc v))
  | "cos", [ v ] -> VReal (cos (as_float loc v))
  | "exp", [ v ] -> VReal (exp (as_float loc v))
  | "log", [ v ] -> VReal (log (as_float loc v))
  | "tanh", [ v ] -> VReal (tanh (as_float loc v))
  | "abs", [ v ] -> (
    match v with VInt i -> VInt (abs i) | VReal f -> VReal (Float.abs f) | _ -> err loc "abs")
  | "iabs", [ v ] -> VInt (abs (as_int loc v))
  | ("min" | "min0"), (v :: _ as vs) ->
    let floats = List.map (as_float loc) vs in
    let m = List.fold_left Float.min infinity floats in
    (match v with VInt _ -> VInt (int_of_float m) | _ -> VReal m)
  | ("max" | "max0"), (v :: _ as vs) ->
    let floats = List.map (as_float loc) vs in
    let m = List.fold_left Float.max neg_infinity floats in
    (match v with VInt _ -> VInt (int_of_float m) | _ -> VReal m)
  | "mod", [ a; b ] -> (
    match (a, b) with
    | VInt x, VInt y -> if y = 0 then err loc "mod by zero" else VInt (x mod y)
    | _ -> VReal (Float.rem (as_float loc a) (as_float loc b)))
  | ("float" | "dble"), [ v ] -> VReal (as_float loc v)
  | "int", [ v ] -> VInt (int_of_float (as_float loc v))
  | "nint", [ v ] -> VInt (int_of_float (Float.round (as_float loc v)))
  | "sign", [ a; b ] ->
    let m = Float.abs (as_float loc a) in
    VReal (if as_float loc b >= 0.0 then m else -.m)
  | _, vargs -> call_routine st loc f vargs

and call_routine st loc f vargs =
  match
    List.find_opt
      (fun (c : Typecheck.checked) -> String.equal c.routine.rname f)
      st.program
  with
  | None -> err loc "call to unknown routine %s" f
  | Some callee -> (
    (* by-value for scalars; arrays cannot be passed by expression here *)
    let bindings =
      try List.combine callee.routine.params vargs
      with Invalid_argument _ -> err loc "arity mismatch calling %s" f
    in
    let named = List.map (fun (p, v) -> (p, v)) bindings in
    let res = exec_routine st callee named in
    match res with Some v -> v | None -> VInt 0)

(* ---- arrays ---- *)

and lookup_array st frame loc a =
  ignore st;
  match Hashtbl.find_opt frame.arrays a with
  | Some arr -> arr
  | None -> err loc "unbound array %s" a

and element_offset st frame loc arr name subs =
  let idxs = List.map (fun s -> as_int loc (eval st frame loc s)) subs in
  if List.length idxs <> Array.length arr.extents then
    err loc "array %s: rank mismatch" name;
  let off = ref 0 and scale = ref 1 in
  List.iteri
    (fun d i ->
      let low = arr.lows.(d) and ext = arr.extents.(d) in
      if i < low || i >= low + ext then
        err loc "array %s: subscript %d out of bounds [%d, %d] in dimension %d" name i low
          (low + ext - 1) (d + 1);
      off := !off + ((i - low) * !scale);
      scale := !scale * ext)
    idxs;
  !off

(* ---- cost accounting (mirrors Aggregate's recipe) ---- *)

and loop_ctx_key loop_vars = String.concat "," loop_vars

(* mode mirrors Aggregate's cost rules:
   - Direct_loop_body: per-iteration steady-state cost; the first run of an
     iteration absorbs the loop-control overhead; one-time parts charged
     once per loop activation.
   - Standalone: plain drop cost with the one-time part folded in (used at
     the routine top level and inside if-branches, like Aggregate's
     agg_stmts). *)
and block_cost st (symtab : Typecheck.symtab) ~standalone ~with_overhead loop_vars invariants
    first_loc run =
  let key = (first_loc, loop_ctx_key loop_vars ^ if with_overhead then "+o" else "") in
  match Hashtbl.find_opt st.block_costs key with
  | Some c -> c
  | None ->
    let res =
      Pperf_translate.Translator.translate_block ~machine:st.machine
        ~flags:st.options.Pperf_core.Aggregate.flags ~symtab ~loop_vars ~invariants run
    in
    let result =
      if standalone then (
        let bins = Bins.create ~focus_span:st.options.focus_span st.machine in
        ((Bins.drop_dag bins (Dag.concat res.one_time res.body)).cost, 0))
      else (
        let overhead =
          if with_overhead then Pperf_translate.Translator.loop_overhead_dag ~machine:st.machine ()
          else Dag.make [||]
        in
        let dag = Dag.concat res.body overhead in
        let bins = Bins.create ~focus_span:st.options.focus_span st.machine in
        let s1 = Bins.drop_dag bins dag in
        let per_exec =
          if not st.options.iteration_overlap then s1.cost
          else (
            let s2 = Bins.drop_dag bins dag in
            max 1 (s2.cost - s1.cost))
        in
        let one_time =
          if Dag.length res.one_time = 0 then 0
          else (
            let one_bins = Bins.create ~focus_span:st.options.focus_span st.machine in
            (Bins.drop_dag one_bins res.one_time).cost)
        in
        (per_exec, one_time))
    in
    Hashtbl.replace st.block_costs key result;
    result

and cond_dag st symtab loop_vars invariants cond =
  (Pperf_translate.Translator.translate_condition ~machine:st.machine
     ~flags:st.options.Pperf_core.Aggregate.flags ~symtab ~loop_vars ~invariants cond)
    .body

and cond_cost st symtab loop_vars invariants loc cond =
  (* condition evaluation only; the taken-branch penalty is shape-matched
     per branch (§2.2.2) and charged separately *)
  match Hashtbl.find_opt st.cond_costs loc with
  | Some c -> c
  | None ->
    let d = cond_dag st symtab loop_vars invariants cond in
    let bins = Bins.create st.machine in
    let c = (Bins.drop_dag bins d).cost in
    Hashtbl.replace st.cond_costs loc c;
    c

and charge_block st symtab ~standalone ~with_overhead ~activation loop_vars invariants
    (run : Ast.stmt list) =
  match run with
  | [] -> ()
  | first :: _ ->
    let per_exec, one_time =
      block_cost st symtab ~standalone ~with_overhead loop_vars invariants first.Ast.loc run
    in
    st.cycles <- st.cycles +. float_of_int per_exec;
    if one_time > 0 then (
      let key = (first.Ast.loc, loop_ctx_key loop_vars) in
      let already =
        match Hashtbl.find_opt st.charged_one_time key with
        | Some act -> act = activation
        | None -> false
      in
      if not already then (
        Hashtbl.replace st.charged_one_time key activation;
        st.cycles <- st.cycles +. float_of_int one_time))

(* ---- statement execution ---- *)

and is_straight (s : Ast.stmt) =
  match s.kind with Ast.Assign _ | Ast.Call_stmt _ | Ast.Return -> true | _ -> false

and exec_stmts st (checked : Typecheck.checked) frame ?overhead_pending ~activation loop_vars
    invariants stmts =
  let symtab = checked.symbols in
  (* overhead_pending = Some r: we are a direct loop body; the first
     straight-line run absorbs the loop-control overhead (Aggregate's
     rule); r is set once absorbed. None: standalone costing. *)
  let rec go = function
    | [] -> ()
    | s :: _ as rest when is_straight s ->
      let rec take acc = function
        | x :: r when is_straight x -> take (x :: acc) r
        | r -> (List.rev acc, r)
      in
      let run, rest' = take [] rest in
      (match overhead_pending with
       | Some r ->
         let with_overhead = not !r in
         r := true;
         charge_block st symtab ~standalone:false ~with_overhead ~activation loop_vars
           invariants run
       | None ->
         charge_block st symtab ~standalone:true ~with_overhead:false ~activation loop_vars
           invariants run);
      List.iter (exec_straight st checked frame) run;
      go rest'
    | { Ast.kind = Ast.Do d; loc } :: rest ->
      exec_do st checked frame loop_vars invariants loc d;
      go rest
    | { Ast.kind = Ast.If (branches, els); loc } :: rest ->
      exec_if st checked frame ~activation loop_vars invariants loc branches els;
      go rest
    | _ :: rest -> go rest
  in
  go stmts

and exec_straight st checked frame (s : Ast.stmt) =
  let loc = s.Ast.loc in
  budget st loc;
  match s.kind with
  | Ast.Assign (lhs, e) ->
    let v = eval st frame loc e in
    if lhs.subs = [] then (
      (* coerce to the declared type *)
      let v' =
        match Typecheck.lookup checked.Typecheck.symbols lhs.base with
        | Some { ty = Ast.Tint; _ } -> VInt (as_int loc v)
        | Some { ty = Ast.Treal | Ast.Tdouble; _ } -> VReal (as_float loc v)
        | Some { ty = Ast.Tlogical; _ } -> VLog (as_bool loc v)
        | None -> v
      in
      Hashtbl.replace frame.scalars lhs.base v')
    else (
      let arr = lookup_array st frame loc lhs.base in
      let off = element_offset st frame loc arr lhs.base lhs.subs in
      match arr.ty with
      | Ast.Treal | Ast.Tdouble -> arr.fdata.(off) <- as_float loc v
      | Ast.Tint -> arr.idata.(off) <- as_int loc v
      | Ast.Tlogical -> arr.idata.(off) <- (if as_bool loc v then 1 else 0))
  | Ast.Call_stmt (f, args) ->
    let vargs = List.map (eval st frame loc) args in
    ignore (call_routine st loc f vargs)
  | Ast.Return -> raise Return_exn
  | _ -> assert false

and exec_do st checked frame loop_vars invariants loc (d : Ast.do_loop) =
  let lo = as_int loc (eval st frame loc d.lo) in
  let hi = as_int loc (eval st frame loc d.hi) in
  let step = match d.step with None -> 1 | Some e -> as_int loc (eval st frame loc e) in
  if step = 0 then err loc "zero loop step";
  (* bound evaluation cost, once per entry *)
  let bounds_res =
    Pperf_translate.Translator.translate_exprs ~machine:st.machine
      ~flags:st.options.Pperf_core.Aggregate.flags ~symtab:checked.Typecheck.symbols
      ~loop_vars ~invariants
      (d.lo :: d.hi :: Option.to_list d.step)
  in
  let bins = Bins.create st.machine in
  st.cycles <-
    st.cycles
    +. float_of_int (Bins.drop_dag bins (Dag.concat bounds_res.one_time bounds_res.body)).cost;
  (* inner context *)
  let assigned = SSet.add d.var (Analysis.assigned_vars d.body) in
  let visible =
    SSet.union (Analysis.used_vars d.body)
      (SSet.of_list (List.map fst (Typecheck.symbols_list checked.Typecheck.symbols)))
  in
  let invariants' = SSet.diff visible assigned in
  let loop_vars' = loop_vars @ [ d.var ] in
  st.next_activation <- st.next_activation + 1;
  let activation = st.next_activation in
  (* per-iteration loop-control overhead when no straight-line run absorbs
     it (mirrors Aggregate's fallback) *)
  let overhead_dag = Pperf_translate.Translator.loop_overhead_dag ~machine:st.machine () in
  let overhead_alone =
    let b = Bins.create ~focus_span:st.options.focus_span st.machine in
    let s1 = Bins.drop_dag b overhead_dag in
    if not st.options.iteration_overlap then s1.cost
    else (
      let s2 = Bins.drop_dag b overhead_dag in
      max 1 (s2.cost - s1.cost))
  in
  let iterations = ref 0 in
  let i = ref lo in
  while (step > 0 && !i <= hi) || (step < 0 && !i >= hi) do
    budget st loc;
    incr iterations;
    Hashtbl.replace frame.scalars d.var (VInt !i);
    let absorbed = ref false in
    exec_stmts st checked frame ~overhead_pending:absorbed ~activation loop_vars' invariants'
      d.body;
    if not !absorbed then st.cycles <- st.cycles +. float_of_int overhead_alone;
    i := !i + step
  done;
  Profile.record_loop st.profile loc ~iterations:!iterations

and exec_if st checked frame ~activation loop_vars invariants loc branches els =
  budget st loc;
  let symtab = checked.Typecheck.symbols in
  let arity = List.length branches + 1 in
  (* static aggregation charges every condition's evaluation; mirror that *)
  List.iter
    (fun (cond, _) ->
      st.cycles <- st.cycles +. float_of_int (cond_cost st symtab loop_vars invariants loc cond))
    branches;
  let rec pick idx = function
    | [] -> (List.length branches, els)
    | (cond, body) :: rest ->
      if as_bool loc (eval st frame loc cond) then (idx, body) else pick (idx + 1) rest
  in
  let taken, body = pick 0 branches in
  Profile.record_branch st.profile loc ~arity ~taken;
  (* shape-matched taken-branch penalty, cached per (if, alternative) *)
  (if body <> [] then (
     let pkey = (loc, "pen" ^ string_of_int taken) in
     let pen =
       match Hashtbl.find_opt st.block_costs pkey with
       | Some (p, _) -> p
       | None ->
         let which_cond =
           if taken < List.length branches then fst (List.nth branches taken)
           else fst (List.hd branches)
         in
         let d = cond_dag st symtab loop_vars invariants which_cond in
         let p =
           Pperf_core.Aggregate.if_penalty ~machine:st.machine ~options:st.options ~symtab
             ~loop_vars ~invariants d body
         in
         Hashtbl.replace st.block_costs pkey (p, 0);
         p
     in
     st.cycles <- st.cycles +. float_of_int pen));
  exec_stmts st checked frame ~activation loop_vars invariants body

(* ---- routine setup ---- *)

and make_frame st (checked : Typecheck.checked) (args : (string * value) list) =
  let frame = { scalars = Hashtbl.create 32; arrays = Hashtbl.create 8 } in
  (* scalar parameters and defaults *)
  List.iter
    (fun (name, sym) ->
      if sym.Typecheck.dims = [] then (
        let default =
          match sym.ty with
          | Ast.Tint -> VInt 10
          | Ast.Treal | Ast.Tdouble -> VReal 1.0
          | Ast.Tlogical -> VLog false
        in
        let v = match List.assoc_opt name args with Some v -> v | None -> default in
        Hashtbl.replace frame.scalars name v))
    (Typecheck.symbols_list checked.symbols);
  (* arrays: evaluate extents under the scalar bindings *)
  List.iter
    (fun (name, sym) ->
      if sym.Typecheck.dims <> [] then (
        let eval_int_expr e =
          let loc = Srcloc.dummy in
          as_int loc (eval st frame loc e)
        in
        let lows =
          List.map
            (fun (dim : Ast.array_dim) ->
              match dim.dim_lo with None -> 1 | Some e -> eval_int_expr e)
            sym.dims
          |> Array.of_list
        in
        let extents =
          List.map
            (fun (dim : Ast.array_dim) ->
              let hi = eval_int_expr dim.dim_hi in
              let lo = match dim.dim_lo with None -> 1 | Some e -> eval_int_expr e in
              max 0 (hi - lo + 1))
            sym.dims
          |> Array.of_list
        in
        let size = Array.fold_left ( * ) 1 extents in
        if size > 50_000_000 then
          raise (Runtime_error (Printf.sprintf "array %s too large (%d elems)" name size, Srcloc.dummy));
        let arr =
          match sym.ty with
          | Ast.Treal | Ast.Tdouble ->
            { ty = sym.ty; lows; extents; fdata = Array.make size 0.0; idata = [||] }
          | Ast.Tint | Ast.Tlogical ->
            { ty = sym.ty; lows; extents; fdata = [||]; idata = Array.make size 0 }
        in
        Hashtbl.replace frame.arrays name arr))
    (Typecheck.symbols_list checked.symbols);
  frame

and exec_routine st (checked : Typecheck.checked) (args : (string * value) list) :
    value option =
  let frame = make_frame st checked args in
  (try exec_stmts st checked frame ~activation:0 [] SSet.empty checked.routine.body
   with Return_exn -> ());
  match checked.routine.rkind with
  | Ast.Function _ -> Hashtbl.find_opt frame.scalars checked.routine.rname
  | _ -> None

(* ---- public API ---- *)

type result = {
  cycles : float;
  profile : Profile.t;
  return_value : value option;
  scalars : (string * value) list;
}

let run ~machine ?(options = Pperf_core.Aggregate.default_options) ?(args = [])
    ?(program = []) (checked : Typecheck.checked) =
  let st =
    {
      machine;
      options;
      program = checked :: program;
      profile = Profile.empty ();
      cycles = 0.0;
      steps = 0;
      block_costs = Hashtbl.create 64;
      cond_costs = Hashtbl.create 16;
      charged_one_time = Hashtbl.create 64;
      next_activation = 0;
    }
  in
  let frame = make_frame st checked args in
  let return_value =
    try
      exec_stmts st checked frame ~activation:0 [] SSet.empty checked.routine.body;
      None
    with Return_exn -> None
  in
  let return_value =
    match checked.routine.rkind with
    | Ast.Function _ -> Hashtbl.find_opt frame.scalars checked.routine.rname
    | _ -> return_value
  in
  {
    cycles = st.cycles;
    profile = st.profile;
    return_value;
    scalars = Hashtbl.fold (fun k v acc -> (k, v) :: acc) frame.scalars [];
  }

let run_source ~machine ?options ?args src =
  match Typecheck.check_program (Parser.parse_program src) with
  | [] -> failwith "empty program"
  | main :: rest -> run ~machine ?options ?args ~program:rest main
