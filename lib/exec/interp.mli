(** A PF interpreter with cost accounting and profiling.

    Two of the paper's needs require actually running programs:

    - {b profiling} (§3.4): "Profiling can be used to eliminate some
      variables that result from unknown values in the control structures
      (such as the branching probabilities of conditional statements)";
    - {b validation}: a dynamic reference for the symbolic predictions —
      the interpreter walks the real execution path, charging each
      straight-line block its Tetris-model cost, each loop entry its bound
      cost, each executed branch its condition cost. Evaluating the static
      performance expression at the actual parameter values should agree
      with this accumulation (exactly, when control flow does not depend
      on data; through measured probabilities otherwise).

    Arrays are dense column-major floats/ints; intrinsics are evaluated
    natively; calls resolve to other routines of the same program.

    Cost and profile caches are keyed by statement source locations, so
    the routine must carry distinct locations per statement — anything
    produced by {!Pperf_lang.Parser} qualifies; hand-built ASTs should be
    printed and re-parsed first. *)

open Pperf_lang
open Pperf_machine

type value = VInt of int | VReal of float | VLog of bool

exception Runtime_error of string * Srcloc.t

module Profile : sig
  type t

  val empty : unit -> t

  val branch_prob : t -> Srcloc.t -> Pperf_symbolic.Poly.t option
  (** Measured probability of the first branch of the [if] at this
      location, as a constant polynomial — plugs directly into
      {!Pperf_core.Aggregate.options.branch_prob}. *)

  val branch_counts : t -> (Srcloc.t * int array) list
  (** Per [if]: how often each branch (else last) was taken. *)

  val trip_counts : t -> (Srcloc.t * int * int) list
  (** Per [do]: (location, entries, total iterations). *)

  val pp : Format.formatter -> t -> unit
end

type result = {
  cycles : float;  (** machine cycles accumulated along the execution *)
  profile : Profile.t;
  return_value : value option;  (** for functions *)
  scalars : (string * value) list;  (** final scalar bindings *)
}

val run :
  machine:Machine.t ->
  ?options:Pperf_core.Aggregate.options ->
  ?args:(string * value) list ->
  ?program:Typecheck.checked list ->
  Typecheck.checked ->
  result
(** [run ~machine checked] interprets the routine. Integer parameters not
    supplied in [args] default to 10; reals to 1.0. Arrays are allocated
    from their declarations (symbolic extents evaluated under the scalar
    bindings) and zero-initialized. [program] supplies callee routines for
    [call] statements and user function calls.

    @raise Runtime_error on out-of-bounds accesses, missing routines,
    division by zero, or non-terminating suspicion (iteration budget). *)

val run_source :
  machine:Machine.t ->
  ?options:Pperf_core.Aggregate.options ->
  ?args:(string * value) list ->
  string ->
  result
(** Parse, check and {!run} the first routine of the source; remaining
    routines are callable. *)
