(** Fit an issue-port cost model ({!Pperf_machine.Costmodel.Ports}) to an
    existing machine by measurement.

    The target machine is treated as a black box reachable only through
    {!Interp}: calibration runs a fixed suite of microbenchmark kernels
    (steady-state reduction loops whose per-iteration slope isolates one op
    family's reciprocal throughput, and straight-line dependence chains
    whose slope is a result latency) and then searches for the port
    structure and µop table whose {e forward predictions} — the same
    kernels re-run through the same interpreter under the candidate
    machine — best match the measurements.

    Ops the kernels cannot observe individually get documented defaults:
    integer/logic aliases share the fitted [iadd], [store_int] shares
    [store_fp], intrinsics are scaled from the fitted divide, [call] is a
    fixed 2-µop integer sequence, and [has_fma] is pinned off (fusion is
    also disabled during measurement so op mixes match). *)

open Pperf_machine

type measurement = {
  label : string;  (** kernel name, e.g. ["fp x4"] or ["iadd chain"] *)
  oracle : float;  (** cycles measured on the target machine *)
  fitted : float;  (** same probe re-run under the fitted machine *)
  rel_err : float;  (** [|fitted - oracle| / max 1 |oracle|] *)
}

type t = {
  machine : Machine.t;  (** the fitted ports machine, named ["<target>+fit"] *)
  description : string;  (** [Descr.to_string machine] — a v2 [.pmach] *)
  measurements : measurement list;
  max_rel_err : float;
  tolerance : float;
  ok : bool;  (** [max_rel_err <= tolerance] *)
}

val default_tolerance : float
(** 0.25 — generous enough for bin-packing edge effects on small kernels
    while still rejecting structurally wrong fits. *)

val run : machine:Machine.t -> ?tolerance:float -> unit -> t
(** Calibrate against [machine]. Runs a few hundred interpreter
    executions; typically well under a second per machine. *)

val report : t -> string
(** Human-readable table of every probe plus the fitted description —
    shared verbatim by the CLI verb and the server verb. *)
