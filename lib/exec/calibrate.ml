(* Fit a ports-model cost table (Costmodel.Ports) from interpreter
   measurements of an oracle machine.

   The oracle is only ever consulted through Interp — the same dynamic
   path a user program takes — so calibration treats it as a black box:
   run microbenchmark kernels, read cycles. Two kinds of probes:

   - steady-state loop kernels: per-iteration cost is the exact slope
     (cycles(n2) - cycles(n1)) / (n2 - n1), since the interpreter charges
     loops linearly in the trip count. Marginals over the number of
     independent accumulator statements isolate the reciprocal throughput
     of one op family.
   - straight-line dependence chains (nested expressions, store-load
     chains): the slope over the chain length is the op's result latency.

   Fitting is model-based rather than closed-form: every structural
   choice (which op families share issue ports, how many ports a class
   has, how many µops an op costs) is scored by rebuilding a candidate
   ports machine and re-running the same kernels through the same
   interpreter — so the bins/packing quirks of the cost model cancel
   instead of biasing the fit. *)

open Pperf_machine
module Aggregate = Pperf_core.Aggregate
module Flags = Pperf_translate.Flags

(* fma fusion would make the measured op mix depend on the oracle's
   [has_fma]; pin it off so kernels translate identically everywhere *)
let options =
  {
    Aggregate.default_options with
    Aggregate.flags = { Flags.default with Flags.fma_fusion = false };
  }

let cycles machine src ~n =
  (Interp.run_source ~machine ~options ~args:[ ("n", Interp.VInt n) ] src).Interp.cycles

let per_iter machine src = (cycles machine src ~n:48 -. cycles machine src ~n:16) /. 32.
let straight machine src = cycles machine src ~n:16

(* ---- kernel generation ---- *)

let range k = List.init k (fun j -> j + 1)
let commas f k = String.concat ", " (List.map f (range k))
let lines f k = String.concat "" (List.map f (range k))
let sp = Printf.sprintf

(* k independent integer reductions: k iadd per iteration *)
let k_int k =
  sp "subroutine kern(%s, n)\n  integer n, i, %s\n  do i = 1, n\n%s  end do\nend\n"
    (commas (sp "m%d") k) (commas (sp "m%d") k)
    (lines (fun j -> sp "    m%d = m%d + i\n" j j) k)

(* k independent float reductions with a variant rhs: 2k fadd *)
let k_fp k =
  sp "subroutine kern(%s, %s, n)\n  integer n, i\n  real %s, %s\n  do i = 1, n\n%s  end do\nend\n"
    (commas (sp "x%d") k) (commas (sp "s%d") k) (commas (sp "x%d") k) (commas (sp "s%d") k)
    (lines (fun j -> sp "    s%d = s%d + (x%d + i)\n" j j j) k)

(* int and float reductions interleaved: contention discriminator *)
let k_fp_int k =
  sp
    "subroutine kern(%s, %s, %s, n)\n  integer n, i, %s\n  real %s, %s\n  do i = 1, n\n%s  end do\nend\n"
    (commas (sp "m%d") k) (commas (sp "x%d") k) (commas (sp "s%d") k) (commas (sp "m%d") k)
    (commas (sp "x%d") k) (commas (sp "s%d") k)
    (lines (fun j -> sp "    m%d = m%d + i\n    s%d = s%d + (x%d + i)\n" j j j j j) k)

(* k float-array reductions: k x (load_fp + fadd) *)
let k_load_fp k =
  sp "subroutine kern(%s, %s, n)\n  integer n, i\n  real %s, %s\n  do i = 1, n\n%s  end do\nend\n"
    (commas (sp "a%d") k) (commas (sp "s%d") k)
    (commas (sp "a%d(100)") k) (commas (sp "s%d") k)
    (lines (fun j -> sp "    s%d = s%d + a%d(i)\n" j j j) k)

(* k integer-array reductions: k x (load_int + iadd) *)
let k_load_int k =
  sp
    "subroutine kern(%s, %s, n)\n  integer n, i, %s\n  integer %s\n  do i = 1, n\n%s  end do\nend\n"
    (commas (sp "ia%d") k) (commas (sp "m%d") k) (commas (sp "m%d") k)
    (commas (sp "ia%d(100)") k)
    (lines (fun j -> sp "    m%d = m%d + ia%d(i)\n" j j j) k)

(* k array-to-array maps: k x (load_fp + fadd + store_fp) *)
let k_store k =
  sp
    "subroutine kern(%s, %s, %s, n)\n  integer n, i\n  real %s, %s, %s\n  do i = 1, n\n%s  end do\nend\n"
    (commas (sp "a%d") k) (commas (sp "b%d") k) (commas (sp "q%d") k)
    (commas (sp "a%d(100)") k) (commas (sp "b%d(100)") k) (commas (sp "q%d") k)
    (lines (fun j -> sp "    b%d(i) = a%d(i) + q%d\n" j j j) k)

(* k x (load_fp + fmul + fadd) *)
let k_fmul k =
  sp
    "subroutine kern(%s, %s, %s, n)\n  integer n, i\n  real %s, %s, %s\n  do i = 1, n\n%s  end do\nend\n"
    (commas (sp "a%d") k) (commas (sp "b%d") k) (commas (sp "s%d") k)
    (commas (sp "a%d(100)") k) (commas (sp "b%d") k) (commas (sp "s%d") k)
    (lines (fun j -> sp "    s%d = s%d + a%d(i) * b%d\n" j j j j) k)

(* k x (load_fp + fdiv + fadd); divisors are real parameters (default 1.0) *)
let k_fdiv k =
  sp
    "subroutine kern(%s, %s, %s, n)\n  integer n, i\n  real %s, %s, %s\n  do i = 1, n\n%s  end do\nend\n"
    (commas (sp "a%d") k) (commas (sp "c%d") k) (commas (sp "s%d") k)
    (commas (sp "a%d(100)") k) (commas (sp "c%d") k) (commas (sp "s%d") k)
    (lines (fun j -> sp "    s%d = s%d + a%d(i) / c%d\n" j j j j) k)

(* k x (imul + iadd); multipliers are variables so the general imul is used *)
let k_imul k =
  sp "subroutine kern(%s, %s, n)\n  integer n, i, %s, %s\n  do i = 1, n\n%s  end do\nend\n"
    (commas (sp "w%d") k) (commas (sp "m%d") k) (commas (sp "w%d") k) (commas (sp "m%d") k)
    (lines (fun j -> sp "    m%d = m%d + i * w%d\n" j j j) k)

(* k x (idiv + iadd); integer divisors default to 10 *)
let k_idiv k =
  sp "subroutine kern(%s, %s, n)\n  integer n, i, %s, %s\n  do i = 1, n\n%s  end do\nend\n"
    (commas (sp "w%d") k) (commas (sp "m%d") k) (commas (sp "w%d") k) (commas (sp "m%d") k)
    (lines (fun j -> sp "    m%d = m%d + i / w%d\n" j j j) k)

(* dependence chain of [l] binary ops as one nested expression *)
let chain_fp op l =
  sp "subroutine kern(p, q, r, n)\n  integer n\n  real p, q, r\n  r = p%s\nend\n"
    (String.concat "" (List.map (fun _ -> sp " %s q" op) (range l)))

let chain_int op l =
  sp "subroutine kern(mp, mq, mr, n)\n  integer n, mp, mq, mr\n  mr = mp%s\nend\n"
    (String.concat "" (List.map (fun _ -> sp " %s mq" op) (range l)))

(* store-load dependence chain through one array cell *)
let chain_mem l =
  sp "subroutine kern(a, c, n)\n  integer n\n  real a(100), c\n%send\n"
    (lines (fun _ -> "  a(1) = a(1) + c\n") l)

(* ---- fitted-machine construction ---- *)

type mem_class = Mem_own of int | Mem_int | Mem_fp
type st_class = St_own of int | St_int | St_fp | St_mem

type spec = {
  mutable g_int : int;  (** ports of the integer class *)
  mutable fp_merged : bool;  (** fp ops issue on the integer ports *)
  mutable g_fp : int;  (** ports of a separate fp class *)
  mutable mem : mem_class;
  mutable st : st_class;
  mutable counts : (string * int) list;  (** op -> µops *)
  mutable lats : (string * int) list;  (** op -> result latency *)
}

let initial_spec () =
  {
    g_int = 1;
    fp_merged = true;
    g_fp = 1;
    mem = Mem_int;
    st = St_int;
    counts = [];
    lats = [];
  }

let count spec op = match List.assoc_opt op spec.counts with Some n -> n | None -> 1
let lat spec op ~default = match List.assoc_opt op spec.lats with Some l -> l | None -> default
let set_count spec op n = spec.counts <- (op, n) :: List.remove_assoc op spec.counts
let set_lat spec op l = spec.lats <- (op, l) :: List.remove_assoc op spec.lats

let port_layout spec =
  let int_ports = List.init spec.g_int (fun i -> sp "p%d" i) in
  let next = ref spec.g_int in
  let fresh g =
    let ps = List.init g (fun i -> sp "p%d" (!next + i)) in
    next := !next + g;
    ps
  in
  let fp_ports = if spec.fp_merged then int_ports else fresh spec.g_fp in
  let mem_ports =
    match spec.mem with Mem_own g -> fresh g | Mem_int -> int_ports | Mem_fp -> fp_ports
  in
  let st_ports =
    match spec.st with
    | St_own g -> fresh g
    | St_int -> int_ports
    | St_fp -> fp_ports
    | St_mem -> mem_ports
  in
  let all = List.init !next (fun i -> sp "p%d" i) in
  (all, int_ports, fp_ports, mem_ports, st_ports)

let build spec (om : Machine.t) =
  let all, int_ports, fp_ports, mem_ports, st_ports = port_layout spec in
  let n = count spec in
  let l = lat spec in
  let l_iadd = l "iadd" ~default:1 in
  let l_imul = l "imul" ~default:3 in
  let l_fadd = l "fadd" ~default:2 in
  let l_fmul = l "fmul" ~default:2 in
  let l_fdiv = l "fdiv" ~default:(max 2 (n "fdiv")) in
  let l_load = l "load_fp" ~default:2 in
  let simple_int name = (name, l_iadd, [ (int_ports, n "iadd") ]) in
  let simple_fp1 name = (name, 1, [ (fp_ports, 1) ]) in
  let atomics =
    [
      simple_int "iadd"; simple_int "isub"; simple_int "ineg"; simple_int "ilogic";
      simple_int "ishift"; simple_int "icopy";
      ("imul_small", l_imul, [ (int_ports, n "imul") ]);
      ("imul", l_imul, [ (int_ports, n "imul") ]);
      ("idiv", max 1 (l "idiv" ~default:(n "idiv")), [ (int_ports, n "idiv") ]);
      ("icmp", l_iadd, [ (int_ports, n "iadd") ]);
      ("fadd", l_fadd, [ (fp_ports, n "fadd") ]);
      ("fsub", l_fadd, [ (fp_ports, n "fadd") ]);
      ("fmul", l_fmul, [ (fp_ports, n "fmul") ]);
      ("fma", max l_fadd l_fmul, [ (fp_ports, n "fadd" + n "fmul") ]);
      simple_fp1 "fneg"; simple_fp1 "fabs"; simple_fp1 "fcopy"; simple_fp1 "fcmp";
      ("fdiv", l_fdiv, [ (fp_ports, n "fdiv") ]);
      ("cvt_if", l_fadd, [ (fp_ports, n "fadd") ]);
      ("cvt_fi", l_fadd, [ (fp_ports, n "fadd") ]);
      ("load_int", l_load, [ (mem_ports, n "load_int") ]);
      ("load_fp", l_load, [ (mem_ports, n "load_fp") ]);
      ("store_int", l "store_fp" ~default:1, [ (st_ports, n "store_fp") ]);
      ("store_fp", l "store_fp" ~default:1, [ (st_ports, n "store_fp") ]);
      ("branch", 1, [ (int_ports, 1) ]);
      ("branch_cond", max 1 (n "branch_cond"), [ (int_ports, n "branch_cond") ]);
      ("call", 2, [ (int_ports, 2) ]);
      (* intrinsics are software sequences the kernels cannot observe
         one by one; scale them from the fitted divide (documented) *)
      ("fsqrt", 2 * l_fdiv, [ (fp_ports, 2 * n "fdiv") ]);
      ("fsin", 3 * l_fdiv, [ (fp_ports, 3 * n "fdiv") ]);
      ("fcos", 3 * l_fdiv, [ (fp_ports, 3 * n "fdiv") ]);
      ("fexp", 2 * l_fdiv, [ (fp_ports, 2 * n "fdiv") ]);
      ("flog", 2 * l_fdiv, [ (fp_ports, 2 * n "fdiv") ]);
      ("ftanh", 3 * l_fdiv, [ (fp_ports, 3 * n "fdiv") ]);
      ("nop", 0, [ (int_ports, 0) ]);
    ]
  in
  Machine.make_ports
    ~name:(om.Machine.name ^ "+fit")
    ~description:("ports model calibrated against " ^ om.Machine.name)
    ~ports:all ~atomics ~issue_width:om.Machine.issue_width
    ~branch_taken_cycles:om.Machine.branch_taken_cycles
    ~register_load_limit:om.Machine.register_load_limit ~has_fma:false
    ~cache:om.Machine.cache ?comm:om.Machine.comm ()

(* ---- fitting ---- *)

(* candidate µop counts for one op given the measured marginal rate r and
   a class width g: the two integers bracketing r*g, plus neighbours *)
let count_candidates r g =
  let c = r *. float_of_int g in
  let lo = int_of_float (Float.floor c) and hi = int_of_float (Float.ceil c) in
  List.sort_uniq compare (List.filter (fun n -> n >= 1) [ lo - 1; lo; hi; hi + 1 ])

let argmin candidates eval =
  match candidates with
  | [] -> invalid_arg "Calibrate.argmin: no candidates"
  | first :: rest ->
    let best = ref first and best_score = ref (eval first) in
    List.iter
      (fun c ->
        let s = eval c in
        if s < !best_score -. 1e-9 then (
          best := c;
          best_score := s))
      rest;
    (!best, !best_score)

type measurement = { label : string; oracle : float; fitted : float; rel_err : float }

type t = {
  machine : Machine.t;
  description : string;
  measurements : measurement list;
  max_rel_err : float;
  tolerance : float;
  ok : bool;
}

let default_tolerance = 0.25

let run ~machine:om ?(tolerance = default_tolerance) () =
  let spec = initial_spec () in
  (* oracle steady-state per-iteration costs, measured once *)
  let probe gen k = (sp "%s" (gen k), per_iter om (gen k)) in
  let ki4 = probe k_int 4 and ki8 = probe k_int 8 in
  let kf4 = probe k_fp 4 and kf8 = probe k_fp 8 in
  let kfi4 = probe k_fp_int 4 and kfi8 = probe k_fp_int 8 in
  let ka4 = probe k_load_fp 4 and ka8 = probe k_load_fp 8 in
  let kil4 = probe k_load_int 4 and kil8 = probe k_load_int 8 in
  let ks4 = probe k_store 4 and ks8 = probe k_store 8 in
  let km4 = probe k_fmul 4 and km8 = probe k_fmul 8 in
  let kd4 = probe k_fdiv 4 and kd8 = probe k_fdiv 8 in
  let kim4 = probe k_imul 4 and kim8 = probe k_imul 8 in
  let kid4 = probe k_idiv 4 and kid8 = probe k_idiv 8 in
  let marginal (_, p4) (_, p8) = (p8 -. p4) /. 4. in
  (* result latencies from dependence-chain slopes (oracle only) *)
  let chain_lat gen l1 l2 =
    let d = (straight om (gen l2) -. straight om (gen l1)) /. float_of_int (l2 - l1) in
    max 1 (int_of_float (Float.round d))
  in
  set_lat spec "iadd" (chain_lat (chain_int "+") 4 12);
  set_lat spec "imul" (chain_lat (chain_int "*") 4 12);
  set_lat spec "fadd" (chain_lat (chain_fp "+") 4 12);
  set_lat spec "fmul" (chain_lat (chain_fp "*") 4 12);
  set_lat spec "fdiv" (chain_lat (chain_fp "/") 3 8);
  set_lat spec "idiv" (chain_lat (chain_int "/") 3 8);
  let score kernels =
    let fm = build spec om in
    List.fold_left
      (fun acc (src, oracle_v) -> acc +. Float.abs (per_iter fm src -. oracle_v))
      0. kernels
  in
  (* straight-line probes for the latency-sensitive stages *)
  let chmem4 = straight om (chain_mem 4) and chmem8 = straight om (chain_mem 8) in
  let score_mem_chain () =
    let fm = build spec om in
    Float.abs (straight fm (chain_mem 4) -. chmem4)
    +. Float.abs (straight fm (chain_mem 8) -. chmem8)
  in
  (* stage A: integer class width, iadd µops, loop-control residual.
     candidates ordered simplest-first; argmin keeps the first best, so
     observationally equivalent structures resolve to the smallest one. *)
  let mi = marginal ki4 ki8 in
  let cands_a =
    List.concat_map
      (fun g ->
        List.concat_map
          (fun n -> List.map (fun bc -> (g, n, bc)) [ 0; 1; 2; 3 ])
          (count_candidates mi g))
      [ 1; 2; 3; 4 ]
  in
  let (g_int, n_iadd, n_bc), _ =
    argmin cands_a (fun (g, n, bc) ->
        spec.g_int <- g;
        set_count spec "iadd" n;
        set_count spec "branch_cond" bc;
        score [ ki4; ki8 ])
  in
  spec.g_int <- g_int;
  set_count spec "iadd" n_iadd;
  set_count spec "branch_cond" n_bc;
  (* stage B: does fp share the integer ports? how wide, how many µops? *)
  let mf = marginal kf4 kf8 /. 2. in
  let cands_b =
    List.map (fun n -> (true, spec.g_int, n)) (count_candidates mf spec.g_int)
    @ List.concat_map
        (fun g -> List.map (fun n -> (false, g, n)) (count_candidates mf g))
        [ 1; 2; 3; 4 ]
  in
  let (fp_merged, g_fp, n_fadd), _ =
    argmin cands_b (fun (merged, g, n) ->
        spec.fp_merged <- merged;
        spec.g_fp <- g;
        set_count spec "fadd" n;
        score [ kf4; kf8; kfi4; kfi8 ])
  in
  spec.fp_merged <- fp_merged;
  spec.g_fp <- g_fp;
  set_count spec "fadd" n_fadd;
  (* stage C: memory class, load µop counts (int and fp separately), and
     load latency. The latency is searched rather than derived because the
     last load's coverable tail extends the steady-state block cost, so a
     wrong latency perturbs the very marginals the counts are fit to. *)
  let structs_c = [ Mem_int; Mem_fp; Mem_own 1; Mem_own 2; Mem_own 3; Mem_own 4 ] in
  let fit_loads (st, l_ld) =
    spec.mem <- st;
    set_lat spec "load_fp" l_ld;
    let n_li, s_li =
      argmin [ 1; 2; 3; 4; 5; 6 ] (fun n ->
          set_count spec "load_int" n;
          score [ kil4; kil8 ])
    in
    set_count spec "load_int" n_li;
    let n_lf, s_lf =
      argmin [ 1; 2; 3; 4; 5; 6 ] (fun n ->
          set_count spec "load_fp" n;
          score [ ka4; ka8 ])
    in
    set_count spec "load_fp" n_lf;
    ((n_li, n_lf), s_li +. s_lf)
  in
  let cands_c =
    List.concat_map
      (fun st -> List.map (fun l -> (st, l)) [ 1; 2; 3; 4; 5; 6; 7; 8 ])
      structs_c
  in
  let (mem_st, l_load), _ = argmin cands_c (fun c -> snd (fit_loads c)) in
  let (n_li, n_lf), _ = fit_loads (mem_st, l_load) in
  spec.mem <- mem_st;
  set_lat spec "load_fp" l_load;
  set_count spec "load_int" n_li;
  set_count spec "load_fp" n_lf;
  (* stage D: store class, µops and latency. The store-load chain through
     one array cell pins load + fadd + store latency, disambiguating
     store latency from store occupancy. *)
  let cands_d =
    List.concat_map
      (fun st ->
        List.concat_map
          (fun n -> List.map (fun l -> (st, n, l)) [ 1; 2; 3; 4 ])
          [ 1; 2; 3; 4; 5; 6 ])
      [ St_int; St_fp; St_mem; St_own 1; St_own 2 ]
  in
  let (st_st, n_st, l_st), _ =
    argmin cands_d (fun (st, n, l) ->
        spec.st <- st;
        set_count spec "store_fp" n;
        set_lat spec "store_fp" l;
        score [ ks4; ks8 ] +. score_mem_chain ())
  in
  spec.st <- st_st;
  set_count spec "store_fp" n_st;
  set_lat spec "store_fp" l_st;
  (* stage E: multiply and divide µop counts on the now-fixed classes *)
  let fit_count op cands kernels =
    let n, _ =
      argmin cands (fun n ->
          set_count spec op n;
          score kernels)
    in
    set_count spec op n
  in
  fit_count "fmul" (List.init 8 (fun i -> i + 1)) [ km4; km8 ];
  fit_count "imul" (List.init 10 (fun i -> i + 1)) [ kim4; kim8 ];
  fit_count "fdiv" (List.init 40 (fun i -> i + 1)) [ kd4; kd8 ];
  fit_count "idiv" (List.init 48 (fun i -> i + 1)) [ kid4; kid8 ];
  (* ---- verification: replay the whole suite under the fitted machine ---- *)
  let fitted = build spec om in
  let loop_meas label (src, oracle_v) =
    let f = per_iter fitted src in
    { label; oracle = oracle_v; fitted = f; rel_err = Float.abs (f -. oracle_v) /. Float.max 1. (Float.abs oracle_v) }
  in
  let chain_meas label gen l =
    let o = straight om (gen l) and f = straight fitted (gen l) in
    { label; oracle = o; fitted = f; rel_err = Float.abs (f -. o) /. Float.max 1. (Float.abs o) }
  in
  let measurements =
    [
      loop_meas "int x4" ki4; loop_meas "int x8" ki8;
      loop_meas "fp x4" kf4; loop_meas "fp x8" kf8;
      loop_meas "fp+int x4" kfi4; loop_meas "fp+int x8" kfi8;
      loop_meas "load_fp x4" ka4; loop_meas "load_fp x8" ka8;
      loop_meas "load_int x4" kil4; loop_meas "load_int x8" kil8;
      loop_meas "store x4" ks4; loop_meas "store x8" ks8;
      loop_meas "fmul x4" km4; loop_meas "fmul x8" km8;
      loop_meas "fdiv x4" kd4; loop_meas "fdiv x8" kd8;
      loop_meas "imul x4" kim4; loop_meas "imul x8" kim8;
      loop_meas "idiv x4" kid4; loop_meas "idiv x8" kid8;
      chain_meas "fadd chain" (chain_fp "+") 12;
      chain_meas "fmul chain" (chain_fp "*") 12;
      chain_meas "fdiv chain" (chain_fp "/") 8;
      chain_meas "iadd chain" (chain_int "+") 12;
      chain_meas "imul chain" (chain_int "*") 12;
      chain_meas "idiv chain" (chain_int "/") 8;
      chain_meas "mem chain" chain_mem 8;
    ]
  in
  let max_rel_err =
    List.fold_left (fun acc m -> Float.max acc m.rel_err) 0. measurements
  in
  {
    machine = fitted;
    description = Descr.to_string fitted;
    measurements;
    max_rel_err;
    tolerance;
    ok = max_rel_err <= tolerance;
  }

let report t =
  let b = Buffer.create 2048 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "calibration of %s (tolerance %.3f)\n\n" t.machine.Machine.name t.tolerance;
  pf "  %-14s %10s %10s %9s\n" "kernel" "oracle" "fitted" "rel.err";
  List.iter
    (fun m -> pf "  %-14s %10.3f %10.3f %9.3f\n" m.label m.oracle m.fitted m.rel_err)
    t.measurements;
  pf "\nmax relative error %.3f -> %s\n" t.max_rel_err (if t.ok then "ok" else "FAIL");
  pf "\nfitted machine description:\n%s" t.description;
  Buffer.contents b
