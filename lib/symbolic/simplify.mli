(** Expression simplification by range-justified term dropping (§3.1, §3.3.2).

    The paper's example: over [x ∈ \[3,100\]] the expression
    [4x⁴ + 2x³ − 4x + 1/x³] may be simplified to [4x⁴ + 2x³ − 4x] because
    the dropped term is negligible throughout the range. *)

open Pperf_num

val drop_negligible : ?rel_tol:Rat.t -> Interval.Env.t -> Poly.t -> Poly.t
(** Remove every term whose magnitude upper bound over the box is at most
    [rel_tol] (default 1/1000) times the largest term-magnitude lower
    bound. Conservative: terms with unbounded ranges are never the basis
    of dropping others, and a term is only dropped against a term that
    dominates it {e everywhere} in the box. *)

val max_relative_error : Interval.Env.t -> original:Poly.t -> simplified:Poly.t -> float
(** Sampled (not sound) estimate of [max |orig − simp| / |orig|] over the
    box, for reporting simplification quality. *)
