open Pperf_num

type bound = Neg_inf | Fin of Rat.t | Pos_inf

let bound_compare a b =
  match (a, b) with
  | Neg_inf, Neg_inf | Pos_inf, Pos_inf -> 0
  | Neg_inf, _ -> -1
  | _, Neg_inf -> 1
  | Pos_inf, _ -> 1
  | _, Pos_inf -> -1
  | Fin x, Fin y -> Rat.compare x y

let bound_min a b = if bound_compare a b <= 0 then a else b
let bound_max a b = if bound_compare a b >= 0 then a else b

let bound_neg = function Neg_inf -> Pos_inf | Pos_inf -> Neg_inf | Fin x -> Fin (Rat.neg x)

let bound_add a b =
  match (a, b) with
  | Neg_inf, Pos_inf | Pos_inf, Neg_inf -> invalid_arg "Interval: inf - inf"
  | Neg_inf, _ | _, Neg_inf -> Neg_inf
  | Pos_inf, _ | _, Pos_inf -> Pos_inf
  | Fin x, Fin y -> Fin (Rat.add x y)

(* sign of a bound: -1, 0, 1 *)
let bound_sign = function
  | Neg_inf -> -1
  | Pos_inf -> 1
  | Fin x -> Rat.sign x

let bound_mul a b =
  match (a, b) with
  | Fin x, Fin y -> Fin (Rat.mul x y)
  | _ ->
    let s = bound_sign a * bound_sign b in
    if s > 0 then Pos_inf else if s < 0 then Neg_inf else Fin Rat.zero

type t = { lo : bound; hi : bound }

let make lo hi =
  if bound_compare lo hi > 0 then invalid_arg "Interval.make: lo > hi";
  { lo; hi }

let of_rats a b = make (Fin a) (Fin b)
let of_ints a b = of_rats (Rat.of_int a) (Rat.of_int b)
let point r = { lo = Fin r; hi = Fin r }
let of_int i = point (Rat.of_int i)
let full = { lo = Neg_inf; hi = Pos_inf }
let nonneg = { lo = Fin Rat.zero; hi = Pos_inf }
let pos_ge r = { lo = Fin r; hi = Pos_inf }
let unit_prob = of_ints 0 1

let lo t = t.lo
let hi t = t.hi

let is_point t = match (t.lo, t.hi) with Fin a, Fin b when Rat.equal a b -> Some a | _ -> None

let equal a b = bound_compare a.lo b.lo = 0 && bound_compare a.hi b.hi = 0
let is_full t = t.lo = Neg_inf && t.hi = Pos_inf

let contains t r = bound_compare t.lo (Fin r) <= 0 && bound_compare (Fin r) t.hi <= 0
let subset a b = bound_compare b.lo a.lo <= 0 && bound_compare a.hi b.hi <= 0

let intersect a b =
  let lo = bound_max a.lo b.lo and hi = bound_min a.hi b.hi in
  if bound_compare lo hi <= 0 then Some { lo; hi } else None

let union a b = { lo = bound_min a.lo b.lo; hi = bound_max a.hi b.hi }

(* widening: any bound that moved outward jumps to infinity, so ascending
   chains in a fixpoint stabilize after one widening step per bound *)
let widen a b =
  {
    lo = (if bound_compare b.lo a.lo < 0 then Neg_inf else a.lo);
    hi = (if bound_compare b.hi a.hi > 0 then Pos_inf else a.hi);
  }

(* narrowing: recover a finite bound that widening threw away, but never
   move a finite bound (so a descending chain also stabilizes) *)
let narrow a b =
  {
    lo = (match a.lo with Neg_inf -> b.lo | _ -> a.lo);
    hi = (match a.hi with Pos_inf -> b.hi | _ -> a.hi);
  }

let width t =
  match (t.lo, t.hi) with Fin a, Fin b -> Some (Rat.sub b a) | _ -> None

let midpoint t =
  match (t.lo, t.hi) with
  | Fin a, Fin b -> Rat.mul Rat.half (Rat.add a b)
  | Fin a, Pos_inf -> Rat.add a Rat.one
  | Neg_inf, Fin b -> Rat.sub b Rat.one
  | _ -> Rat.zero

let sample t n =
  if n <= 0 then []
  else
    match (t.lo, t.hi) with
    | Fin a, Fin b ->
      if n = 1 then [ midpoint t ]
      else (
        let w = Rat.sub b a in
        List.init n (fun i ->
            Rat.add a (Rat.mul w (Rat.of_ints i (n - 1)))))
    | _ -> [ midpoint t ]

let neg t = { lo = bound_neg t.hi; hi = bound_neg t.lo }

let add a b = { lo = bound_add a.lo b.lo; hi = bound_add a.hi b.hi }
let sub a b = add a (neg b)

let mul a b =
  let cands = [ bound_mul a.lo b.lo; bound_mul a.lo b.hi; bound_mul a.hi b.lo; bound_mul a.hi b.hi ] in
  {
    lo = List.fold_left bound_min Pos_inf cands;
    hi = List.fold_left bound_max Neg_inf cands;
  }

let scale r t =
  if Rat.sign r >= 0 then
    { lo = bound_mul (Fin r) t.lo; hi = bound_mul (Fin r) t.hi }
  else { lo = bound_mul (Fin r) t.hi; hi = bound_mul (Fin r) t.lo }

type sign = Neg | Zero | Pos | Mixed

let sign t =
  let ls = bound_sign t.lo and hs = bound_sign t.hi in
  if ls > 0 then Pos
  else if hs < 0 then Neg
  else if ls = 0 && hs = 0 then Zero
  else if ls = 0 && bound_compare t.lo t.hi = 0 then Zero
  else Mixed

let inv t =
  (* 1/t for t not containing 0 *)
  match sign t with
  | Zero -> raise Division_by_zero
  | Mixed ->
    if contains t Rat.zero then raise Division_by_zero
    else full (* unreachable: Mixed implies contains 0 for closed intervals *)
  | Pos | Neg ->
    let binv = function
      | Neg_inf | Pos_inf -> Fin Rat.zero
      | Fin x -> Fin (Rat.inv x)
    in
    { lo = binv t.hi; hi = binv t.lo }

let rec pow t n =
  if n = 0 then point Rat.one
  else if n < 0 then inv (pow t (-n))
  else if n = 1 then t
  else if n land 1 = 0 then (
    (* even power: range of x^n is [min^n or 0, max(|lo|,|hi|)^n] *)
    let bpow b = match b with Neg_inf | Pos_inf -> Pos_inf | Fin x -> Fin (Rat.pow x n) in
    let abs_lo = bound_neg t.lo in
    let hi_mag = bound_max abs_lo t.hi in
    let hi' = bpow hi_mag in
    let lo' = if contains t Rat.zero then Fin Rat.zero
      else bound_min (bpow t.lo) (bpow t.hi)
    in
    { lo = lo'; hi = hi' })
  else (
    let bpow b = match b with
      | Neg_inf -> Neg_inf
      | Pos_inf -> Pos_inf
      | Fin x -> Fin (Rat.pow x n)
    in
    { lo = bpow t.lo; hi = bpow t.hi })

let pp_bound fmt = function
  | Neg_inf -> Format.pp_print_string fmt "-inf"
  | Pos_inf -> Format.pp_print_string fmt "+inf"
  | Fin x -> Rat.pp fmt x

let pp fmt t = Format.fprintf fmt "[%a, %a]" pp_bound t.lo pp_bound t.hi
let to_string t = Format.asprintf "%a" pp t

module Env = struct
  module SMap = Map.Make (String)

  type nonrec t = t SMap.t

  let empty = SMap.empty
  let add = SMap.add
  let of_list l = List.fold_left (fun acc (x, iv) -> SMap.add x iv acc) empty l
  let find x t = match SMap.find_opt x t with Some iv -> iv | None -> full
  let find_opt = SMap.find_opt
  let bindings = SMap.bindings
  let midpoint_valuation t x = midpoint (find x t)

  let pp fmt t =
    Format.pp_print_list
      ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
      (fun fmt (x, iv) -> Format.fprintf fmt "%s in %s" x (to_string iv))
      fmt (bindings t)
end

let eval_poly env p =
  List.fold_left
    (fun acc (c, m) ->
      let mi =
        List.fold_left
          (fun acc (x, k) -> mul acc (pow (Env.find x env) k))
          (point Rat.one) (Monomial.to_list m)
      in
      add acc (scale c mi))
    (point Rat.zero) (Poly.terms p)

let sign_of_poly env p = sign (eval_poly env p)
