(** Sign analysis of performance expressions over variable ranges.

    Implements the paper's §3.1: given [P = C(f) - C(g)], find the regions
    where [P] is positive/negative, so the compiler can choose between
    transformations [f] and [g] without guessing unknowns — or emit the
    region boundary as a run-time test. *)

open Pperf_num

type sign = Interval.sign = Neg | Zero | Pos | Mixed

type region = { range : Interval.t; sign : sign }
(** [Zero] regions are either exact root points or enclosures narrower than
    the isolation [eps]. *)

val regions : ?eps:Rat.t -> Poly.t -> string -> Interval.t -> region list
(** Partition of the (finite part of the) interval by the sign of a
    univariate polynomial, in increasing order. Unbounded ends are clipped
    at the Cauchy root bound, beyond which the sign is constant — the
    clipped tail is included with that constant sign. *)

val sign_over :
  ?oracle:(Poly.t -> Interval.t) -> ?depth:int -> Interval.Env.t -> Poly.t -> sign
(** Conservative multivariate sign over a box: interval evaluation with
    recursive subdivision (splitting the widest finite range, [depth]
    levels, default 3). [Mixed] means "could not prove a constant sign".
    [oracle], when given, must return a sound enclosure of any polynomial
    it is asked about (typically backed by relational abstract-domain
    facts); it is consulted only where the box alone is inconclusive. *)

(** {1 Symbolic comparison of two expressions} *)

type verdict =
  | Always_le  (** first never costs more, strict somewhere or not *)
  | Always_ge
  | Equal
  | Crossover of region list
      (** sign regions of [first - second] in the single deciding variable *)
  | Undecided of Poly.t
      (** multivariate and not interval-decidable: the returned difference
          polynomial is the run-time test condition ([<= 0] favors first) *)

val compare_over :
  ?eps:Rat.t ->
  ?depth:int ->
  ?oracle:(Poly.t -> Interval.t) ->
  Interval.Env.t ->
  Poly.t ->
  Poly.t ->
  verdict
(** [compare_over env c_f c_g] decides which expression is cheaper over the
    box, following the paper's strategy: try range-based sign proof first;
    if the difference is univariate, fall back to exact root-based region
    analysis; otherwise return the condition for a run-time test. The
    [oracle] (see {!sign_over}) sharpens both steps: it can decide the sign
    outright or clip the deciding variable's range. *)

val pp_verdict : Format.formatter -> verdict -> unit
val pp_region : Format.formatter -> region -> unit
