(* Multivariate Laurent polynomials as parallel sorted arrays.

   [ms] holds monomials strictly increasing under [Monomial.compare] and
   [cs] the matching nonzero coefficients. The representation is
   canonical, so [equal] is element-wise; [add] is a single merge pass;
   [mul] builds the cross products once, sorts them, and combines
   adjacent duplicates — no per-term map rebalancing or re-scanning.
   Note the term order is plain lexicographic, not multiplicative: with
   Laurent exponents, multiplying by a monomial can reorder terms, so
   products always go through the sort-and-combine path. *)

open Pperf_num
module Obs = Pperf_obs.Obs

let c_add = Obs.counter "poly.add"
let c_mul = Obs.counter "poly.mul"
let c_eval = Obs.counter "poly.eval"
let c_subst = Obs.counter "poly.subst"

type t = { ms : Monomial.t array; cs : Rat.t array }

let zero = { ms = [||]; cs = [||] }

let monomial c m = if Rat.is_zero c then zero else { ms = [| m |]; cs = [| c |] }
let const c = monomial c Monomial.unit
let of_rat = const
let of_int i = const (Rat.of_int i)
let one = of_int 1
let var x = monomial Rat.one (Monomial.var x)
let var_pow x k = monomial Rat.one (Monomial.var_pow x k)

(* canonicalize an unsorted (monomial, coefficient) array in place:
   sort, combine equal monomials, drop zero coefficients *)
let of_pairs pairs =
  let n = Array.length pairs in
  if n = 0 then zero
  else (
    Array.sort (fun (m1, _) (m2, _) -> Monomial.compare m1 m2) pairs;
    let ms = Array.make n Monomial.unit in
    let cs = Array.make n Rat.zero in
    let out = ref 0 in
    let cur_m = ref (fst pairs.(0)) in
    let cur_c = ref (snd pairs.(0)) in
    let flush () =
      if not (Rat.is_zero !cur_c) then (
        ms.(!out) <- !cur_m;
        cs.(!out) <- !cur_c;
        incr out)
    in
    for i = 1 to n - 1 do
      let m, c = pairs.(i) in
      if Monomial.compare m !cur_m = 0 then cur_c := Rat.add !cur_c c
      else (
        flush ();
        cur_m := m;
        cur_c := c)
    done;
    flush ();
    if !out = 0 then zero
    else { ms = Array.sub ms 0 !out; cs = Array.sub cs 0 !out })

let of_terms l = of_pairs (Array.of_list (List.map (fun (c, m) -> (m, c)) l))

let neg p = { p with cs = Array.map Rat.neg p.cs }

let add p q =
  Obs.incr c_add;
  let la = Array.length p.ms and lb = Array.length q.ms in
  if la = 0 then q
  else if lb = 0 then p
  else (
    let ms = Array.make (la + lb) Monomial.unit in
    let cs = Array.make (la + lb) Rat.zero in
    let i = ref 0 and j = ref 0 and n = ref 0 in
    while !i < la && !j < lb do
      let c = Monomial.compare p.ms.(!i) q.ms.(!j) in
      if c < 0 then (
        ms.(!n) <- p.ms.(!i);
        cs.(!n) <- p.cs.(!i);
        incr i;
        incr n)
      else if c > 0 then (
        ms.(!n) <- q.ms.(!j);
        cs.(!n) <- q.cs.(!j);
        incr j;
        incr n)
      else (
        let s = Rat.add p.cs.(!i) q.cs.(!j) in
        if not (Rat.is_zero s) then (
          ms.(!n) <- p.ms.(!i);
          cs.(!n) <- s;
          incr n);
        incr i;
        incr j)
    done;
    while !i < la do
      ms.(!n) <- p.ms.(!i);
      cs.(!n) <- p.cs.(!i);
      incr i;
      incr n
    done;
    while !j < lb do
      ms.(!n) <- q.ms.(!j);
      cs.(!n) <- q.cs.(!j);
      incr j;
      incr n
    done;
    if !n = 0 then zero
    else if !n = la + lb then { ms; cs }
    else { ms = Array.sub ms 0 !n; cs = Array.sub cs 0 !n })

let sub p q = add p (neg q)

let scale r p =
  if Rat.is_zero r then zero else { p with cs = Array.map (Rat.mul r) p.cs }

let scale_int i p = scale (Rat.of_int i) p
let add_const r p = add p (const r)

let mul p q =
  Obs.incr c_mul;
  let la = Array.length p.ms and lb = Array.length q.ms in
  if la = 0 || lb = 0 then zero
  else if la = 1 && lb = 1 then
    monomial (Rat.mul p.cs.(0) q.cs.(0)) (Monomial.mul p.ms.(0) q.ms.(0))
  else if lb = 1 && Monomial.is_unit q.ms.(0) then scale q.cs.(0) p
  else if la = 1 && Monomial.is_unit p.ms.(0) then scale p.cs.(0) q
  else (
    let pairs = Array.make (la * lb) (Monomial.unit, Rat.zero) in
    let n = ref 0 in
    for i = 0 to la - 1 do
      let mi = p.ms.(i) and ci = p.cs.(i) in
      for j = 0 to lb - 1 do
        pairs.(!n) <- (Monomial.mul mi q.ms.(j), Rat.mul ci q.cs.(j));
        incr n
      done
    done;
    of_pairs pairs)

let sum = List.fold_left add zero

let is_zero p = Array.length p.ms = 0
let num_terms p = Array.length p.ms

let terms p =
  let acc = ref [] in
  for i = Array.length p.ms - 1 downto 0 do
    acc := (p.cs.(i), p.ms.(i)) :: !acc
  done;
  !acc

let coeff m p =
  (* binary search over the sorted monomial array *)
  let lo = ref 0 and hi = ref (Array.length p.ms) in
  let found = ref Rat.zero in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let c = Monomial.compare m p.ms.(mid) in
    if c = 0 then (
      found := p.cs.(mid);
      lo := !hi)
    else if c < 0 then hi := mid
    else lo := mid + 1
  done;
  !found

let constant_term p = coeff Monomial.unit p

let is_const p =
  match Array.length p.ms with
  | 0 -> true
  | 1 -> Monomial.is_unit p.ms.(0)
  | _ -> false

let to_const p =
  if is_zero p then Some Rat.zero else if is_const p then Some p.cs.(0) else None

let pow p n =
  if n >= 0 then (
    let rec go acc b n =
      if n = 0 then acc
      else if n land 1 = 1 then go (mul acc b) (mul b b) (n asr 1)
      else go acc (mul b b) (n asr 1)
    in
    go one p n)
  else if num_terms p = 1 then monomial (Rat.pow p.cs.(0) n) (Monomial.pow p.ms.(0) n)
  else invalid_arg "Poly.pow: negative exponent of a multi-term polynomial"

let div_exact p q =
  if num_terms q = 1 then (
    let mq = q.ms.(0) and cq = q.cs.(0) in
    Some
      (of_pairs
         (Array.init (num_terms p) (fun i ->
              (Monomial.div p.ms.(i) mq, Rat.div p.cs.(i) cq)))))
  else None

let vars p =
  Array.fold_left
    (fun acc m -> List.fold_left (fun s x -> x :: s) acc (Monomial.vars m))
    [] p.ms
  |> List.sort_uniq String.compare

let mem_var x p = Array.exists (fun m -> Monomial.exponent x m <> 0) p.ms

let total_degree p =
  Array.fold_left (fun acc m -> max acc (Monomial.total_degree m)) 0 p.ms

let degree_in x p =
  if is_zero p then 0
  else Array.fold_left (fun acc m -> max acc (Monomial.exponent x m)) min_int p.ms

let min_degree_in x p =
  if is_zero p then 0
  else Array.fold_left (fun acc m -> min acc (Monomial.exponent x m)) max_int p.ms

let is_polynomial p = Array.for_all Monomial.is_polynomial p.ms

let is_univariate p = match vars p with [ x ] -> Some x | _ -> None

let eval env p =
  Obs.incr c_eval;
  let acc = ref Rat.zero in
  for i = 0 to Array.length p.ms - 1 do
    acc := Rat.add !acc (Rat.mul p.cs.(i) (Monomial.eval env p.ms.(i)))
  done;
  !acc

let eval_float env p =
  let acc = ref 0.0 in
  for i = 0 to Array.length p.ms - 1 do
    let mv =
      List.fold_left
        (fun a (x, k) -> a *. (env x ** float_of_int k))
        1.0
        (Monomial.to_list p.ms.(i))
    in
    acc := !acc +. (Rat.to_float p.cs.(i) *. mv)
  done;
  !acc

let eval_partial env p =
  let pairs =
    Array.init (num_terms p) (fun i ->
        let kept, value =
          List.fold_left
            (fun (kept, value) (x, k) ->
              match env x with
              | Some v -> (kept, Rat.mul value (Rat.pow v k))
              | None -> (Monomial.mul kept (Monomial.var_pow x k), value))
            (Monomial.unit, p.cs.(i))
            (Monomial.to_list p.ms.(i))
        in
        (kept, value))
  in
  of_pairs pairs

let subst x q p =
  Obs.incr c_subst;
  let acc = ref zero in
  for i = 0 to num_terms p - 1 do
    let m = p.ms.(i) and c = p.cs.(i) in
    let k = Monomial.exponent x m in
    if k = 0 then acc := add !acc (monomial c m)
    else (
      let rest = Monomial.div m (Monomial.var_pow x k) in
      let qk =
        if k >= 0 then pow q k
        else if num_terms q = 1 then pow q k
        else invalid_arg "Poly.subst: negative power of a multi-term substituend"
      in
      acc := add !acc (mul (monomial c rest) qk))
  done;
  !acc

let deriv x p =
  let pairs =
    Array.init (num_terms p) (fun i ->
        let m = p.ms.(i) in
        let k = Monomial.exponent x m in
        if k = 0 then (Monomial.unit, Rat.zero)
        else (Monomial.mul m (Monomial.var_pow x (-1)), Rat.mul p.cs.(i) (Rat.of_int k)))
  in
  of_pairs pairs

let coeffs_in x p =
  let tbl = Hashtbl.create 8 in
  for i = 0 to num_terms p - 1 do
    let m = p.ms.(i) in
    let k = Monomial.exponent x m in
    let rest = Monomial.div m (Monomial.var_pow x k) in
    let cur = match Hashtbl.find_opt tbl k with Some q -> q | None -> zero in
    Hashtbl.replace tbl k (add cur (monomial p.cs.(i) rest))
  done;
  Hashtbl.fold (fun k q acc -> (k, q) :: acc) tbl []
  |> List.filter (fun (_, q) -> not (is_zero q))
  |> List.sort (fun (a, _) (b, _) -> Stdlib.compare a b)

let univariate_coeffs x p =
  let d = degree_in x p in
  let lo = min_degree_in x p in
  if lo < 0 then invalid_arg "Poly.univariate_coeffs: negative exponents present";
  let d = max d 0 in
  let cs = Array.make (d + 1) Rat.zero in
  for i = 0 to num_terms p - 1 do
    let m = p.ms.(i) in
    let k = Monomial.exponent x m in
    if not (Monomial.equal m (Monomial.var_pow x k)) then
      invalid_arg "Poly.univariate_coeffs: polynomial is not univariate";
    cs.(k) <- Rat.add cs.(k) p.cs.(i)
  done;
  cs

let of_univariate_coeffs x cs =
  of_pairs (Array.mapi (fun k c -> (Monomial.var_pow x k, c)) cs)

let clear_denominators x p =
  let lo = min_degree_in x p in
  if lo >= 0 then p else mul p (var_pow x (-lo))

let equal p q =
  p == q
  || (Array.length p.ms = Array.length q.ms
      && (let ok = ref true in
          let i = ref 0 in
          let n = Array.length p.ms in
          while !ok && !i < n do
            if
              not
                (Monomial.equal p.ms.(!i) q.ms.(!i) && Rat.equal p.cs.(!i) q.cs.(!i))
            then ok := false;
            incr i
          done;
          !ok))

(* same order as the previous map-based representation: lexicographic
   over (monomial, coefficient) bindings in increasing monomial order,
   with the shorter polynomial sorting first on a tie *)
let compare p q =
  if p == q then 0
  else (
    let la = Array.length p.ms and lb = Array.length q.ms in
    let rec go i =
      if i >= la then if i >= lb then 0 else -1
      else if i >= lb then 1
      else (
        let c = Monomial.compare p.ms.(i) q.ms.(i) in
        if c <> 0 then c
        else (
          let c = Rat.compare p.cs.(i) q.cs.(i) in
          if c <> 0 then c else go (i + 1)))
    in
    go 0)

let hash p =
  Hashtbl.hash (List.map (fun (c, m) -> (Rat.hash c, Monomial.hash m)) (terms p))

let pp fmt p =
  if is_zero p then Format.pp_print_string fmt "0"
  else (
    (* print highest total degree first for readability *)
    let ts =
      terms p
      |> List.sort (fun (_, m1) (_, m2) ->
             let d = Stdlib.compare (Monomial.total_degree m2) (Monomial.total_degree m1) in
             if d <> 0 then d else Monomial.compare m1 m2)
    in
    List.iteri
      (fun i (c, m) ->
        let neg = Rat.sign c < 0 in
        let ac = Rat.abs c in
        if i = 0 then (if neg then Format.pp_print_string fmt "-")
        else Format.pp_print_string fmt (if neg then " - " else " + ");
        if Monomial.is_unit m then Format.fprintf fmt "%a" Rat.pp ac
        else if Rat.equal ac Rat.one then Monomial.pp fmt m
        else Format.fprintf fmt "%a*%a" Rat.pp ac Monomial.pp m)
      ts)

let to_string p = Format.asprintf "%a" pp p

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( ~- ) = neg
end
