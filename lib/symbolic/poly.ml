(* Multivariate Laurent polynomials: canonical map monomial -> nonzero Rat. *)

open Pperf_num
module MMap = Map.Make (Monomial)

type t = Rat.t MMap.t

let zero = MMap.empty

let monomial c m = if Rat.is_zero c then zero else MMap.singleton m c
let const c = monomial c Monomial.unit
let of_rat = const
let of_int i = const (Rat.of_int i)
let one = of_int 1
let var x = monomial Rat.one (Monomial.var x)
let var_pow x k = monomial Rat.one (Monomial.var_pow x k)

let add_term m c p =
  if Rat.is_zero c then p
  else
    MMap.update m
      (function
        | None -> Some c
        | Some c0 ->
          let s = Rat.add c0 c in
          if Rat.is_zero s then None else Some s)
      p

let of_terms l = List.fold_left (fun acc (c, m) -> add_term m c acc) zero l

let neg p = MMap.map Rat.neg p
let add p q = MMap.fold (fun m c acc -> add_term m c acc) q p
let sub p q = add p (neg q)

let scale r p = if Rat.is_zero r then zero else MMap.map (Rat.mul r) p
let scale_int i p = scale (Rat.of_int i) p
let add_const r p = add_term Monomial.unit r p

let mul p q =
  MMap.fold
    (fun mp cp acc ->
      MMap.fold (fun mq cq acc -> add_term (Monomial.mul mp mq) (Rat.mul cp cq) acc) q acc)
    p zero

let sum = List.fold_left add zero

let is_zero p = MMap.is_empty p
let num_terms p = MMap.cardinal p
let terms p = MMap.fold (fun m c acc -> (c, m) :: acc) p [] |> List.rev
let coeff m p = match MMap.find_opt m p with Some c -> c | None -> Rat.zero
let constant_term p = coeff Monomial.unit p

let is_const p =
  MMap.is_empty p || (MMap.cardinal p = 1 && Monomial.is_unit (fst (MMap.min_binding p)))

let to_const p =
  if MMap.is_empty p then Some Rat.zero
  else if is_const p then Some (snd (MMap.min_binding p))
  else None

let pow p n =
  if n >= 0 then (
    let rec go acc b n =
      if n = 0 then acc else if n land 1 = 1 then go (mul acc b) (mul b b) (n asr 1) else go acc (mul b b) (n asr 1)
    in
    go one p n)
  else if MMap.cardinal p = 1 then (
    let m, c = MMap.min_binding p in
    monomial (Rat.pow c n) (Monomial.pow m n))
  else invalid_arg "Poly.pow: negative exponent of a multi-term polynomial"

let div_exact p q =
  if MMap.cardinal q = 1 then (
    let mq, cq = MMap.min_binding q in
    Some (MMap.fold (fun m c acc -> add_term (Monomial.div m mq) (Rat.div c cq) acc) p zero))
  else None

let vars p =
  MMap.fold (fun m _ acc -> List.fold_left (fun s x -> x :: s) acc (Monomial.vars m)) p []
  |> List.sort_uniq String.compare

let mem_var x p = MMap.exists (fun m _ -> Monomial.exponent x m <> 0) p

let total_degree p = MMap.fold (fun m _ acc -> max acc (Monomial.total_degree m)) p 0

let degree_in x p =
  MMap.fold (fun m _ acc -> max acc (Monomial.exponent x m)) p min_int
  |> fun d -> if d = min_int then 0 else d

let min_degree_in x p =
  MMap.fold (fun m _ acc -> min acc (Monomial.exponent x m)) p max_int
  |> fun d -> if d = max_int then 0 else d

let is_polynomial p = MMap.for_all (fun m _ -> Monomial.is_polynomial m) p

let is_univariate p = match vars p with [ x ] -> Some x | _ -> None

let eval env p =
  MMap.fold (fun m c acc -> Rat.add acc (Rat.mul c (Monomial.eval env m))) p Rat.zero

let eval_float env p =
  MMap.fold
    (fun m c acc ->
      let mv =
        List.fold_left
          (fun a (x, k) -> a *. (env x ** float_of_int k))
          1.0 (Monomial.to_list m)
      in
      acc +. (Rat.to_float c *. mv))
    p 0.0

let eval_partial env p =
  MMap.fold
    (fun m c acc ->
      let kept, value =
        List.fold_left
          (fun (kept, value) (x, k) ->
            match env x with
            | Some v -> (kept, Rat.mul value (Rat.pow v k))
            | None -> (Monomial.mul kept (Monomial.var_pow x k), value))
          (Monomial.unit, c) (Monomial.to_list m)
      in
      add_term kept value acc)
    p zero

let subst x q p =
  MMap.fold
    (fun m c acc ->
      let k = Monomial.exponent x m in
      if k = 0 then add_term m c acc
      else (
        let rest = Monomial.div m (Monomial.var_pow x k) in
        let qk =
          if k >= 0 then pow q k
          else if MMap.cardinal q = 1 then pow q k
          else invalid_arg "Poly.subst: negative power of a multi-term substituend"
        in
        add acc (mul (monomial c rest) qk)))
    p zero

let deriv x p =
  MMap.fold
    (fun m c acc ->
      let k = Monomial.exponent x m in
      if k = 0 then acc
      else (
        let m' = Monomial.mul m (Monomial.var_pow x (-1)) in
        add_term m' (Rat.mul c (Rat.of_int k)) acc))
    p zero

let coeffs_in x p =
  let tbl = Hashtbl.create 8 in
  MMap.iter
    (fun m c ->
      let k = Monomial.exponent x m in
      let rest = Monomial.div m (Monomial.var_pow x k) in
      let cur = match Hashtbl.find_opt tbl k with Some q -> q | None -> zero in
      Hashtbl.replace tbl k (add_term rest c cur))
    p;
  Hashtbl.fold (fun k q acc -> (k, q) :: acc) tbl []
  |> List.filter (fun (_, q) -> not (is_zero q))
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let univariate_coeffs x p =
  let d = degree_in x p in
  let lo = min_degree_in x p in
  if lo < 0 then invalid_arg "Poly.univariate_coeffs: negative exponents present";
  let d = max d 0 in
  let cs = Array.make (d + 1) Rat.zero in
  MMap.iter
    (fun m c ->
      let k = Monomial.exponent x m in
      if not (Monomial.equal m (Monomial.var_pow x k)) then
        invalid_arg "Poly.univariate_coeffs: polynomial is not univariate";
      cs.(k) <- Rat.add cs.(k) c)
    p;
  cs

let of_univariate_coeffs x cs =
  let p = ref zero in
  Array.iteri (fun k c -> p := add_term (Monomial.var_pow x k) c !p) cs;
  !p

let clear_denominators x p =
  let lo = min_degree_in x p in
  if lo >= 0 then p else mul p (var_pow x (-lo))

let equal = MMap.equal Rat.equal
let compare = MMap.compare Rat.compare
let hash p = Hashtbl.hash (List.map (fun (c, m) -> (Rat.hash c, Monomial.hash m)) (terms p))

let pp fmt p =
  if MMap.is_empty p then Format.pp_print_string fmt "0"
  else (
    (* print highest total degree first for readability *)
    let ts =
      terms p
      |> List.sort (fun (_, m1) (_, m2) ->
             let d = Stdlib.compare (Monomial.total_degree m2) (Monomial.total_degree m1) in
             if d <> 0 then d else Monomial.compare m1 m2)
    in
    List.iteri
      (fun i (c, m) ->
        let neg = Rat.sign c < 0 in
        let ac = Rat.abs c in
        if i = 0 then (if neg then Format.pp_print_string fmt "-")
        else Format.pp_print_string fmt (if neg then " - " else " + ");
        if Monomial.is_unit m then Format.fprintf fmt "%a" Rat.pp ac
        else if Rat.equal ac Rat.one then Monomial.pp fmt m
        else Format.fprintf fmt "%a*%a" Rat.pp ac Monomial.pp m)
      ts)

let to_string p = Format.asprintf "%a" pp p

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( ~- ) = neg
end
