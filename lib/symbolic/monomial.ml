(* Monomials as strictly-sorted (var, exponent) association lists.
   Invariant: variables strictly increasing, exponents nonzero. *)

module Rat = Pperf_num.Rat

type t = (string * int) list

let unit = []
let is_unit m = m = []

let var_pow x k = if k = 0 then [] else [ (x, k) ]
let var x = var_pow x 1

(* merge two sorted lists, summing exponents, dropping zeros *)
let rec merge a b =
  match (a, b) with
  | [], m | m, [] -> m
  | (xa, ka) :: ta, (xb, kb) :: tb ->
    let c = String.compare xa xb in
    if c < 0 then (xa, ka) :: merge ta b
    else if c > 0 then (xb, kb) :: merge a tb
    else (
      let k = ka + kb in
      if k = 0 then merge ta tb else (xa, k) :: merge ta tb)

let mul = merge

let of_list l = List.fold_left (fun acc (x, k) -> mul acc (var_pow x k)) unit l
let to_list m = m

let pow m n = List.filter_map (fun (x, k) -> if k * n = 0 then None else Some (x, k * n)) m
let div a b = mul a (pow b (-1))

let exponent x m = match List.assoc_opt x m with Some k -> k | None -> 0
let vars m = List.map fst m
let total_degree m = List.fold_left (fun acc (_, k) -> acc + k) 0 m

let max_negative_exponent m =
  List.fold_left (fun acc (_, k) -> if k < 0 then max acc (-k) else acc) 0 m

let is_polynomial m = List.for_all (fun (_, k) -> k > 0) m

let compare = Stdlib.compare
let equal a b = a = b
let hash = Hashtbl.hash

let eval env m =
  List.fold_left (fun acc (x, k) -> Rat.mul acc (Rat.pow (env x) k)) Rat.one m

let pp fmt m =
  match m with
  | [] -> Format.pp_print_string fmt "1"
  | _ ->
    Format.pp_print_list
      ~pp_sep:(fun fmt () -> Format.pp_print_string fmt "*")
      (fun fmt (x, k) ->
        if k = 1 then Format.pp_print_string fmt x else Format.fprintf fmt "%s^%d" x k)
      fmt m

let to_string m = Format.asprintf "%a" pp m
