(* Monomials as strictly-sorted (var, exponent) arrays with cached hash
   and total degree.
   Invariant: variables strictly increasing, exponents nonzero.

   The cached hash makes map/table lookups O(1) in the monomial size on
   mismatch, and the cached degree turns [total_degree] (called per term
   by Poly's degree queries and printing order) into a field read. The
   comparison order is the same lexicographic prefix-is-less order the
   previous assoc-list representation had under [Stdlib.compare], so
   printed term order — and therefore every pinned output — is
   unchanged. *)

module Rat = Pperf_num.Rat

let c_alloc = Pperf_obs.Obs.counter "monomial.alloc"

type t = { exps : (string * int) array; h : int; deg : int }

let mk exps =
  Pperf_obs.Obs.incr c_alloc;
  let deg = Array.fold_left (fun acc (_, k) -> acc + k) 0 exps in
  { exps; h = Hashtbl.hash exps; deg }

let unit = mk [||]
let is_unit m = Array.length m.exps = 0

let var_pow x k = if k = 0 then unit else mk [| (x, k) |]
let var x = var_pow x 1

(* merge two sorted arrays, summing exponents, dropping zeros *)
let mul a b =
  if is_unit a then b
  else if is_unit b then a
  else (
    let ea = a.exps and eb = b.exps in
    let la = Array.length ea and lb = Array.length eb in
    let out = Array.make (la + lb) ("", 0) in
    let i = ref 0 and j = ref 0 and n = ref 0 in
    while !i < la && !j < lb do
      let (xa, ka) = ea.(!i) and (xb, kb) = eb.(!j) in
      let c = String.compare xa xb in
      if c < 0 then (
        out.(!n) <- ea.(!i);
        incr i;
        incr n)
      else if c > 0 then (
        out.(!n) <- eb.(!j);
        incr j;
        incr n)
      else (
        let k = ka + kb in
        if k <> 0 then (
          out.(!n) <- (xa, k);
          incr n);
        incr i;
        incr j)
    done;
    while !i < la do
      out.(!n) <- ea.(!i);
      incr i;
      incr n
    done;
    while !j < lb do
      out.(!n) <- eb.(!j);
      incr j;
      incr n
    done;
    if !n = 0 then unit else mk (if !n = la + lb then out else Array.sub out 0 !n))

let of_list l = List.fold_left (fun acc (x, k) -> mul acc (var_pow x k)) unit l
let to_list m = Array.to_list m.exps

let pow m n =
  if n = 0 then unit
  else if n = 1 then m
  else mk (Array.map (fun (x, k) -> (x, k * n)) m.exps)

let div a b = mul a (pow b (-1))

let exponent x m =
  (* binary search: variables are strictly sorted *)
  let e = m.exps in
  let lo = ref 0 and hi = ref (Array.length e) in
  let found = ref 0 in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let (y, k) = e.(mid) in
    let c = String.compare x y in
    if c = 0 then (
      found := k;
      lo := !hi)
    else if c < 0 then hi := mid
    else lo := mid + 1
  done;
  !found

let vars m = Array.to_list (Array.map fst m.exps)
let total_degree m = m.deg

let max_negative_exponent m =
  Array.fold_left (fun acc (_, k) -> if k < 0 then max acc (-k) else acc) 0 m.exps

let is_polynomial m = Array.for_all (fun (_, k) -> k > 0) m.exps

(* Same order as Stdlib.compare on the old sorted assoc lists:
   lexicographic over (var, exponent) pairs, a strict prefix sorting
   before its extensions. *)
let compare a b =
  if a == b then 0
  else (
    let ea = a.exps and eb = b.exps in
    let la = Array.length ea and lb = Array.length eb in
    let rec go i =
      if i >= la then if i >= lb then 0 else -1
      else if i >= lb then 1
      else (
        let (xa, ka) = ea.(i) and (xb, kb) = eb.(i) in
        let c = String.compare xa xb in
        if c <> 0 then c
        else (
          let c = Stdlib.compare ka kb in
          if c <> 0 then c else go (i + 1)))
    in
    go 0)

let equal a b = a == b || (a.h = b.h && a.deg = b.deg && compare a b = 0)
let hash m = m.h

let eval env m =
  Array.fold_left (fun acc (x, k) -> Rat.mul acc (Rat.pow (env x) k)) Rat.one m.exps

let pp fmt m =
  if is_unit m then Format.pp_print_string fmt "1"
  else
    Format.pp_print_list
      ~pp_sep:(fun fmt () -> Format.pp_print_string fmt "*")
      (fun fmt (x, k) ->
        if k = 1 then Format.pp_print_string fmt x else Format.fprintf fmt "%s^%d" x k)
      fmt
      (Array.to_list m.exps)

let to_string m = Format.asprintf "%a" pp m
