open Pperf_num

(* magnitude bounds of coeff*monomial over the box: |c| * |m| range *)
let term_magnitude env c m =
  let iv =
    List.fold_left
      (fun acc (x, k) -> Interval.mul acc (Interval.pow (Interval.Env.find x env) k))
      (Interval.point Rat.one) (Monomial.to_list m)
  in
  let iv = Interval.scale c iv in
  (* |iv| as (lower, upper) with upper possibly None = unbounded *)
  let mag_bound b = match b with Interval.Fin x -> Some (Rat.abs x) | _ -> None in
  let lo_m = mag_bound (Interval.lo iv) and hi_m = mag_bound (Interval.hi iv) in
  let upper = match (lo_m, hi_m) with Some a, Some b -> Some (Rat.max a b) | _ -> None in
  let lower =
    if Interval.contains iv Rat.zero then Rat.zero
    else
      match (lo_m, hi_m) with
      | Some a, Some b -> Rat.min a b
      | Some a, None | None, Some a -> a
      | None, None -> Rat.zero
  in
  (lower, upper)

let drop_negligible ?(rel_tol = Rat.of_ints 1 1000) env p =
  let ts = Poly.terms p in
  if List.length ts <= 1 then p
  else (
    let mags = List.map (fun (c, m) -> ((c, m), term_magnitude env c m)) ts in
    (* dominant: the largest guaranteed (lower-bound) magnitude *)
    let dominant =
      List.fold_left (fun acc (_, (lower, _)) -> Rat.max acc lower) Rat.zero mags
    in
    if Rat.is_zero dominant then p
    else (
      let threshold = Rat.mul rel_tol dominant in
      let kept =
        List.filter
          (fun (_, (_, upper)) ->
            match upper with
            | None -> true (* unbounded term can never be dropped *)
            | Some u -> Rat.compare u threshold > 0)
          mags
      in
      if List.length kept = List.length mags then p
      else Poly.of_terms (List.map fst kept)))

let max_relative_error env ~original ~simplified =
  let vars = Poly.vars original in
  let samples_per_var = 5 in
  let rec enumerate acc = function
    | [] -> [ acc ]
    | v :: rest ->
      let iv = Interval.Env.find v env in
      Interval.sample iv samples_per_var
      |> List.concat_map (fun s -> enumerate ((v, s) :: acc) rest)
  in
  let assignments = enumerate [] vars in
  List.fold_left
    (fun worst asg ->
      let valuation x =
        match List.assoc_opt x asg with
        | Some v -> v
        | None ->
          invalid_arg
            (Printf.sprintf "Simplify.max_relative_error: unbound variable %s" x)
      in
      let o = Poly.eval valuation original in
      let s = Poly.eval valuation simplified in
      if Rat.is_zero o then worst
      else (
        let e = Rat.to_float (Rat.abs (Rat.div (Rat.sub o s) o)) in
        Float.max worst e))
    0.0 assignments
