open Pperf_num

let antiderivative x p =
  Poly.terms p
  |> List.map (fun (c, m) ->
         let k = Monomial.exponent x m in
         if k = -1 then
           invalid_arg "Integrate.antiderivative: x^-1 term has no polynomial antiderivative";
         let m' = Monomial.mul m (Monomial.var x) in
         (Rat.div c (Rat.of_int (k + 1)), m'))
  |> Poly.of_terms

let integral p x a b =
  let anti = antiderivative x p in
  Rat.sub (Roots.eval_at anti x b) (Roots.eval_at anti x a)

type split = {
  pos_measure : Rat.t;
  neg_measure : Rat.t;
  pos_integral : Rat.t;
  neg_integral : Rat.t;
}

let pos_neg_split ?eps p x iv =
  let a, b =
    match (Interval.lo iv, Interval.hi iv) with
    | Interval.Fin a, Interval.Fin b -> (a, b)
    | _ -> invalid_arg "Integrate.pos_neg_split: unbounded interval"
  in
  ignore b;
  ignore a;
  let rs = Signs.regions ?eps p x iv in
  List.fold_left
    (fun acc (r : Signs.region) ->
      match (Interval.lo r.range, Interval.hi r.range) with
      | Interval.Fin lo, Interval.Fin hi ->
        let w = Rat.sub hi lo in
        (match r.sign with
         | Signs.Pos ->
           { acc with
             pos_measure = Rat.add acc.pos_measure w;
             pos_integral = Rat.add acc.pos_integral (integral p x lo hi);
           }
         | Signs.Neg ->
           { acc with
             neg_measure = Rat.add acc.neg_measure w;
             neg_integral = Rat.add acc.neg_integral (Rat.neg (integral p x lo hi));
           }
         | _ -> acc)
      | _ -> acc)
    { pos_measure = Rat.zero; neg_measure = Rat.zero;
      pos_integral = Rat.zero; neg_integral = Rat.zero }
    rs

let pp_split fmt s =
  Format.fprintf fmt "P+ on length %a (area %a); P- on length %a (area %a)"
    Rat.pp s.pos_measure Rat.pp s.pos_integral Rat.pp s.neg_measure Rat.pp s.neg_integral
