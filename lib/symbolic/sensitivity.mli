(** Sensitivity analysis of performance expressions (paper §3.4).

    "Sensitivity analysis varies the values of the variables for small
    amounts and measures the resulting perturbations to the values of the
    function. Run-time tests can be formulated based on the most sensitive
    variables." *)

open Pperf_num

type report = {
  variable : string;
  sensitivity : Rat.t;
      (** |P(mid with v perturbed by delta·width) − P(mid)|, the paper's
          finite-perturbation measure *)
  gradient : Rat.t;  (** ∂P/∂v at the range midpoint *)
}

val rank : ?delta:Rat.t -> Interval.Env.t -> Poly.t -> report list
(** All variables of the polynomial ranked by decreasing sensitivity.
    [delta] (default 1/16) is the relative perturbation; variables with
    unbounded ranges are perturbed relative to their midpoint
    representative. *)

val top : ?delta:Rat.t -> int -> Interval.Env.t -> Poly.t -> report list

val pp_report : Format.formatter -> report -> unit
