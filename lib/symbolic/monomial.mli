(** Monomials: finite products of variables raised to nonzero integer powers.

    Exponents may be negative ("Laurent monomials"): the paper's own
    simplification example (§3.1) manipulates [4x^4 + 2x^3 - 4x + 1/x^3].
    Variables are plain strings; the representation is a strictly sorted
    association list, so structural comparison is a total order usable as a
    map key. *)

type t
(** The unit monomial (empty product) represents the constant term. *)

val unit : t
val is_unit : t -> bool

val var : string -> t
(** [var x] is the monomial [x]. *)

val var_pow : string -> int -> t
(** [var_pow x k] is [x^k]; [k = 0] yields {!unit}. *)

val of_list : (string * int) list -> t
(** Builds from (variable, exponent) pairs; duplicate variables have their
    exponents summed, zero exponents are dropped. *)

val to_list : t -> (string * int) list
(** Sorted by variable name; all exponents nonzero. *)

val mul : t -> t -> t
val div : t -> t -> t

val pow : t -> int -> t

val exponent : string -> t -> int
(** 0 when the variable does not occur. *)

val vars : t -> string list

val total_degree : t -> int
(** Sum of exponents (negative exponents subtract). *)

val max_negative_exponent : t -> int
(** Largest [k >= 0] such that some variable occurs with exponent [-k]. *)

val is_polynomial : t -> bool
(** True when all exponents are positive (no Laurent part). *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val eval : (string -> Pperf_num.Rat.t) -> t -> Pperf_num.Rat.t
(** @raise Division_by_zero if a variable with negative exponent is zero. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
