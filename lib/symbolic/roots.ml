open Pperf_num

(* ---- dense univariate utilities (internal) ---- *)

(* coefficient arrays, low-to-high, trimmed: last element nonzero (or empty = zero poly) *)

let trim (a : Rat.t array) =
  let n = ref (Array.length a) in
  while !n > 0 && Rat.is_zero a.(!n - 1) do decr n done;
  Array.sub a 0 !n

let degree a = Array.length a - 1 (* -1 for zero poly *)

let eval_dense a x =
  let acc = ref Rat.zero in
  for i = Array.length a - 1 downto 0 do
    acc := Rat.add (Rat.mul !acc x) a.(i)
  done;
  !acc

let deriv_dense a =
  if Array.length a <= 1 then [||]
  else Array.init (Array.length a - 1) (fun i -> Rat.mul (Rat.of_int (i + 1)) a.(i + 1))

(* remainder of a / b, b nonzero *)
let rem_dense a b =
  let b = trim b in
  let db = degree b in
  if db < 0 then raise Division_by_zero;
  let r = Array.copy a in
  let lead_b = b.(db) in
  let dr = ref (degree (trim r)) in
  while !dr >= db do
    let q = Rat.div r.(!dr) lead_b in
    for i = 0 to db do
      r.(!dr - db + i) <- Rat.sub r.(!dr - db + i) (Rat.mul q b.(i))
    done;
    (* the leading term cancels exactly *)
    r.(!dr) <- Rat.zero;
    let r' = trim r in
    dr := degree r'
  done;
  trim r

(* Sturm chain: p, p', then negated remainders *)
let sturm_chain p =
  let p = trim p in
  if degree p <= 0 then [ p ]
  else (
    let rec go acc p0 p1 =
      if Array.length p1 = 0 then List.rev (p0 :: acc)
      else (
        let r = rem_dense p0 p1 in
        go (p0 :: acc) p1 (Array.map Rat.neg r))
    in
    go [] p (trim (deriv_dense p)))

let variations chain x =
  (* all queries are at finite points: infinities are clipped at the Cauchy
     bound before any Sturm query *)
  let signs =
    List.filter_map
      (fun p ->
        let s = Rat.sign (eval_dense p x) in
        if s = 0 then None else Some s)
      chain
  in
  let rec count = function
    | a :: (b :: _ as rest) -> (if a <> b then 1 else 0) + count rest
    | _ -> 0
  in
  count signs

(* distinct roots in (a, b] by Sturm *)
let count_half_open chain a b = variations chain a - variations chain b

(* Cauchy root bound: all roots have |x| <= 1 + max|a_i|/|a_n| *)
let cauchy_bound p =
  let d = degree p in
  if d <= 0 then Rat.one
  else (
    let lead = Rat.abs p.(d) in
    let m = ref Rat.zero in
    for i = 0 to d - 1 do
      m := Rat.max !m (Rat.abs p.(i))
    done;
    Rat.add Rat.one (Rat.div !m lead))

(* ---- public interface over Poly ---- *)

type enclosure = { lo : Rat.t; hi : Rat.t }

let enclosure_mid e = Rat.mul Rat.half (Rat.add e.lo e.hi)

let dense_of_poly p x =
  let p = Poly.clear_denominators x p in
  (match Poly.vars p with
   | [] -> ()
   | [ v ] when String.equal v x -> ()
   | _ -> invalid_arg "Roots: polynomial is not univariate in the given variable");
  trim (Poly.univariate_coeffs x p)

let eval_at p x v =
  (* evaluate the original (possibly Laurent) polynomial *)
  Poly.eval (fun y -> if String.equal y x then v else invalid_arg "Roots.eval_at: extra variable") p

let interval_points (iv : Interval.t) bound_hint =
  (* produce finite endpoints for Sturm queries, clipping infinities at the
     Cauchy bound (no roots beyond it) *)
  let lo =
    match Interval.lo iv with
    | Interval.Neg_inf -> Rat.neg bound_hint
    | Interval.Fin x -> x
    | Interval.Pos_inf -> bound_hint
  in
  let hi =
    match Interval.hi iv with
    | Interval.Pos_inf -> bound_hint
    | Interval.Fin x -> x
    | Interval.Neg_inf -> Rat.neg bound_hint
  in
  (lo, hi)

let count_in p x iv =
  let d = dense_of_poly p x in
  if degree d <= 0 then 0
  else (
    let chain = sturm_chain d in
    let b = cauchy_bound d in
    let lo, hi = interval_points iv b in
    if Rat.compare lo hi >= 0 then (if Interval.contains iv lo && Rat.is_zero (eval_dense d lo) then 1 else 0)
    else (
      let n = count_half_open chain lo hi in
      (* (lo, hi] -> adjust for lo itself being a root *)
      let n = if Rat.is_zero (eval_dense d lo) then n + 1 else n in
      n))

let default_eps = Rat.make Pperf_num.Bigint.one (Pperf_num.Bigint.shift_left Pperf_num.Bigint.one 20)

(* simplest rational in the closed interval [a, b] (a <= b), by the
   continued-fraction construction; used to recognize exact rational roots
   inside a narrow enclosure *)
let rec simplest_in a b =
  if Rat.compare a b > 0 then invalid_arg "simplest_in";
  if Rat.sign a <= 0 && Rat.sign b >= 0 then Rat.zero
  else if Rat.sign b < 0 then Rat.neg (simplest_in (Rat.neg b) (Rat.neg a))
  else (
    (* 0 < a <= b *)
    let fa = Rat.floor a in
    let fb = Rat.floor b in
    if Pperf_num.Bigint.compare fa fb < 0 || Rat.is_integer a then
      (* an integer lies within *)
      Rat.of_bigint (Rat.ceil a)
    else (
      let fa_r = Rat.of_bigint fa in
      let a' = Rat.sub a fa_r and b' = Rat.sub b fa_r in
      (* recurse on reciprocals: simplest in [1/b', 1/a'] *)
      let inner = simplest_in (Rat.inv b') (Rat.inv a') in
      Rat.add fa_r (Rat.inv inner)))

let isolate ?(eps = default_eps) p x iv =
  let d = dense_of_poly p x in
  if degree d <= 0 then []
  else (
    let chain = sturm_chain d in
    let b = cauchy_bound d in
    let lo, hi = interval_points iv b in
    if Rat.compare lo hi > 0 then []
    else (
      let roots_in a b = count_half_open chain a b in
      (* recursively split [a, b] (treating roots in (a,b]; root at global lo
         handled separately) until each piece holds exactly one root, then
         bisect to eps *)
      let acc = ref [] in
      let rec refine a b n =
        if n = 0 then ()
        else if n = 1 then (
          (* single root in (a, b]: bisect until narrow or exact *)
          let rec go a b =
            if Rat.compare (Rat.sub b a) eps <= 0 then (
              (* recognize exact rational roots: endpoints, then the
                 simplest rational inside the enclosure *)
              if Rat.is_zero (eval_dense d b) then acc := { lo = b; hi = b } :: !acc
              else (
                let cand = simplest_in a b in
                if Rat.is_zero (eval_dense d cand) then acc := { lo = cand; hi = cand } :: !acc
                else acc := { lo = a; hi = b } :: !acc))
            else (
              let m = Rat.mul Rat.half (Rat.add a b) in
              if Rat.is_zero (eval_dense d m) then acc := { lo = m; hi = m } :: !acc
              else if roots_in a m = 1 then go a m
              else go m b)
          in
          go a b)
        else (
          let m = Rat.mul Rat.half (Rat.add a b) in
          let nl = roots_in a m in
          refine a m nl;
          refine m b (n - nl))
      in
      (if Rat.is_zero (eval_dense d lo) && Interval.contains iv lo then
         acc := { lo; hi = lo } :: !acc);
      if Rat.compare lo hi < 0 then refine lo hi (roots_in lo hi);
      List.sort (fun e1 e2 -> Rat.compare e1.lo e2.lo) !acc))

(* ---- closed-form float solvers ---- *)

module Closed_form = struct
  let dedup_sorted xs =
    let tol = 1e-9 in
    let rec go = function
      | a :: b :: rest when Float.abs (a -. b) <= tol *. (1.0 +. Float.abs a) -> go (a :: rest)
      | a :: rest -> a :: go rest
      | [] -> []
    in
    go (List.sort Float.compare xs)

  let linear c =
    if Float.abs c.(1) = 0.0 then []
    else [ -.c.(0) /. c.(1) ]

  let quadratic c =
    let a = c.(2) and b = c.(1) and k = c.(0) in
    if a = 0.0 then linear [| k; b |]
    else (
      let disc = (b *. b) -. (4.0 *. a *. k) in
      if disc < 0.0 then []
      else if disc = 0.0 then [ -.b /. (2.0 *. a) ]
      else (
        let sq = sqrt disc in
        (* numerically stable form *)
        let q = -0.5 *. (b +. (Float.of_int (compare b 0.0) |> fun s -> if s = 0. then 1. else s) *. sq) in
        let r1 = q /. a in
        let r2 = if q = 0.0 then -.b /. (2. *. a) else k /. q in
        dedup_sorted [ r1; r2 ]))

  let cubic c =
    let a = c.(3) in
    if a = 0.0 then quadratic [| c.(0); c.(1); c.(2) |]
    else (
      (* normalize to x^3 + px + q via depressed cubic *)
      let b = c.(2) /. a and cc = c.(1) /. a and d = c.(0) /. a in
      let p = cc -. (b *. b /. 3.0) in
      let q = ((2.0 *. b *. b *. b) -. (9.0 *. b *. cc)) /. 27.0 +. d in
      let shift = b /. 3.0 in
      let disc = ((q *. q) /. 4.0) +. ((p *. p *. p) /. 27.0) in
      let roots =
        if disc > 1e-13 then (
          let sq = sqrt disc in
          let cbrt v = if v >= 0.0 then v ** (1.0 /. 3.0) else -.((-.v) ** (1.0 /. 3.0)) in
          [ cbrt ((-.q /. 2.0) +. sq) +. cbrt ((-.q /. 2.0) -. sq) ])
        else if Float.abs disc <= 1e-13 then
          if Float.abs q <= 1e-13 && Float.abs p <= 1e-13 then [ 0.0 ]
          else dedup_sorted [ 3.0 *. q /. p; -3.0 *. q /. (2.0 *. p) ]
        else (
          (* three real roots: trigonometric method *)
          let r = sqrt (-.p *. p *. p /. 27.0) in
          let phi = acos (Float.max (-1.0) (Float.min 1.0 (-.q /. (2.0 *. r)))) in
          let m = 2.0 *. sqrt (-.p /. 3.0) in
          [ m *. cos (phi /. 3.0);
            m *. cos ((phi +. (2.0 *. Float.pi)) /. 3.0);
            m *. cos ((phi +. (4.0 *. Float.pi)) /. 3.0) ])
      in
      dedup_sorted (List.map (fun x -> x -. shift) roots))

  let quartic c =
    let a = c.(4) in
    if a = 0.0 then cubic [| c.(0); c.(1); c.(2); c.(3) |]
    else (
      (* Ferrari: depressed quartic y^4 + p y^2 + q y + r *)
      let b = c.(3) /. a and cc = c.(2) /. a and d = c.(1) /. a and e = c.(0) /. a in
      let p = cc -. (3.0 *. b *. b /. 8.0) in
      let q = d -. (b *. cc /. 2.0) +. (b *. b *. b /. 8.0) in
      let r =
        e -. (b *. d /. 4.0) +. (b *. b *. cc /. 16.0) -. (3.0 *. b *. b *. b *. b /. 256.0)
      in
      let shift = b /. 4.0 in
      let ys =
        if Float.abs q <= 1e-12 then (
          (* biquadratic *)
          let zs = quadratic [| r; p; 1.0 |] in
          List.concat_map (fun z -> if z > 0.0 then [ sqrt z; -.sqrt z ] else if z = 0.0 then [ 0.0 ] else []) zs)
        else (
          (* resolvent cubic: z^3 + 2p z^2 + (p^2 - 4r) z - q^2 = 0, pick a positive root *)
          let res = cubic [| -.(q *. q); (p *. p) -. (4.0 *. r); 2.0 *. p; 1.0 |] in
          match List.filter (fun z -> z > 1e-12) res with
          | [] -> []
          | z :: _ ->
            let w = sqrt z in
            let half1 = quadratic [| (p +. z) /. 2.0 -. (q /. (2.0 *. w)); w; 1.0 |] in
            let half2 = quadratic [| (p +. z) /. 2.0 +. (q /. (2.0 *. w)); -.w; 1.0 |] in
            half1 @ half2)
      in
      dedup_sorted (List.map (fun y -> y -. shift) ys))

  let solve c =
    let c = Array.copy c in
    let n = ref (Array.length c) in
    while !n > 0 && c.(!n - 1) = 0.0 do decr n done;
    let c = Array.sub c 0 !n in
    match Array.length c with
    | 0 | 1 -> Some []
    | 2 -> Some (linear c)
    | 3 -> Some (quadratic c)
    | 4 -> Some (cubic c)
    | 5 -> Some (quartic c)
    | _ -> None
end
