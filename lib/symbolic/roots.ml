open Pperf_num
module B = Bigint
module Obs = Pperf_obs.Obs

let c_chain_builds = Obs.counter "roots.chain_builds"
let c_chain_hits = Obs.counter "roots.chain_cache_hits"
let c_variations = Obs.counter "roots.variations"
let sp_sturm = Obs.span "sturm"

(* ---- dense univariate utilities (internal) ---- *)

(* coefficient arrays, low-to-high, trimmed: last element nonzero (or empty = zero poly) *)

let trim (a : Rat.t array) =
  let n = ref (Array.length a) in
  while !n > 0 && Rat.is_zero a.(!n - 1) do decr n done;
  Array.sub a 0 !n

let degree a = Array.length a - 1 (* -1 for zero poly *)

(* ---- integer dense polynomials (the Sturm-chain representation) ----

   The remainder sequence is computed over primitive integer polynomials:
   coefficient denominators are cleared once up front, every
   pseudo-remainder is divided by its content, and the pseudo-remainder
   multiplier is kept positive so each chain element is a positive
   rational multiple of the classical Sturm chain element — same signs
   everywhere, hence the same variation counts — while coefficient digit
   counts grow linearly instead of doubling per step as they do under the
   naive Euclidean sequence over {!Rat}. *)

let btrim (a : B.t array) =
  let n = ref (Array.length a) in
  while !n > 0 && B.is_zero a.(!n - 1) do decr n done;
  if !n = Array.length a then a else Array.sub a 0 !n

(* clear denominators: lcm of the denominators times the array, giving a
   primitive-up-to-content integer polynomial with the same roots/signs *)
let bigint_of_rat_dense (a : Rat.t array) : B.t array =
  let l = Array.fold_left (fun acc r -> B.lcm acc (Rat.den r)) B.one a in
  Array.map (fun r -> B.mul (Rat.num r) (B.div l (Rat.den r))) a

let content a = Array.fold_left (fun g c -> B.gcd g c) B.zero a

let primitive a =
  let g = content a in
  if B.is_zero g || B.is_one g then a else Array.map (fun c -> B.div c g) a

let bderiv a =
  if Array.length a <= 1 then [||]
  else Array.init (Array.length a - 1) (fun i -> B.mul_int a.(i + 1) (i + 1))

(* sign-preserving pseudo-remainder: repeatedly
     r <- |lc(b)| * r - sign(lc(b)) * lead(r) * x^(deg r - deg b) * b
   so each step scales r by the positive |lc(b)| and cancels the leading
   term exactly; the result is a positive multiple of (a mod b) *)
let sprem (a : B.t array) (b : B.t array) : B.t array =
  let db = Array.length b - 1 in
  let lc = b.(db) in
  let alc = B.abs lc in
  let neg_lead = B.sign lc < 0 in
  let r = Array.copy a in
  let dr = ref (Array.length r - 1) in
  while !dr >= db do
    let top = r.(!dr) in
    if B.is_zero top then decr dr
    else (
      let top = if neg_lead then B.neg top else top in
      for i = 0 to !dr - 1 do
        r.(i) <- B.mul alc r.(i)
      done;
      let shift = !dr - db in
      for i = 0 to db - 1 do
        r.(shift + i) <- B.sub r.(shift + i) (B.mul top b.(i))
      done;
      (* the leading term cancels exactly: |lc|*lead(r) - sign(lc)*lead(r)*lc = 0 *)
      r.(!dr) <- B.zero;
      decr dr)
  done;
  btrim r

(* Sturm chain over primitive integer polynomials: p, p', then negated
   primitive pseudo-remainders *)
let sturm_chain_int (p : B.t array) =
  if Array.length p <= 1 then [ p ]
  else (
    let rec go acc p0 p1 =
      if Array.length p1 = 0 then List.rev (p0 :: acc)
      else (
        let r = sprem p0 p1 in
        go (p0 :: acc) p1 (Array.map B.neg (primitive r)))
    in
    go [] (primitive p) (primitive (btrim (bderiv p))))

(* sign of a(n/d) for d > 0: sum a_i n^i d^(deg-i), pure integer Horner *)
let beval_sign (a : B.t array) ~num ~den =
  let deg = Array.length a - 1 in
  if deg < 0 then 0
  else (
    let acc = ref a.(deg) in
    let dp = ref B.one in
    for i = deg - 1 downto 0 do
      dp := B.mul !dp den;
      acc := B.add (B.mul !acc num) (B.mul a.(i) !dp)
    done;
    B.sign !acc)

(* ---- cached chains ----

   A chain is built once per distinct dense polynomial and kept in a
   capped per-domain memo (same domain-safety pattern as the per-machine
   atomic-chain memos: worker domains never share mutable state, so no
   locks on this hot path). Endpoint variation counts are memoized inside
   the chain record, because bisection in [isolate] and the region walk
   in [Signs.regions] re-query the full chain at every shared midpoint. *)

module Rat_tbl = Hashtbl.Make (struct
  type t = Rat.t

  let equal = Rat.equal
  let hash = Rat.hash
end)

type chain = {
  polys : B.t array list;  (* primitive Sturm chain, first element = p *)
  bound : Rat.t;  (* Cauchy root bound of p *)
  var_memo : int Rat_tbl.t;  (* endpoint -> variation count *)
}

let var_memo_cap = 8192

let variations ch x =
  match Rat_tbl.find_opt ch.var_memo x with
  | Some v -> v
  | None ->
    Obs.incr c_variations;
    let num = Rat.num x and den = Rat.den x in
    let signs =
      List.filter_map
        (fun p ->
          let s = beval_sign p ~num ~den in
          if s = 0 then None else Some s)
        ch.polys
    in
    let rec count = function
      | a :: (b :: _ as rest) -> (if a <> b then 1 else 0) + count rest
      | _ -> 0
    in
    let v = count signs in
    if Rat_tbl.length ch.var_memo < var_memo_cap then Rat_tbl.add ch.var_memo x v;
    v

(* distinct roots in (a, b] by Sturm *)
let count_half_open ch a b = variations ch a - variations ch b

(* sign of p at a rational point, via the chain's primitive first element:
   pure-Bigint Horner, no Rat normalization — this is the bisection's
   zero-check hot path (a dense Rat eval at a depth-k dyadic midpoint costs
   ~0.3ms in gcd work; this is microseconds) *)
let point_sign ch x = beval_sign (List.hd ch.polys) ~num:(Rat.num x) ~den:(Rat.den x)
let is_root ch x = point_sign ch x = 0

(* Cauchy root bound: all roots have |x| <= 1 + max|a_i|/|a_n| *)
let cauchy_bound p =
  let d = degree p in
  if d <= 0 then Rat.one
  else (
    let lead = Rat.abs p.(d) in
    let m = ref Rat.zero in
    for i = 0 to d - 1 do
      m := Rat.max !m (Rat.abs p.(i))
    done;
    Rat.add Rat.one (Rat.div !m lead))

let chain_cache_cap = 128

(* per-domain chain memo, keyed on the dense coefficient array (canonical:
   trimmed, exact rationals), so the same difference polynomial queried in
   different variables or re-derived from different sources still shares
   one chain. Capped by wholesale flush: the working set of distinct
   polynomials per domain is tiny, and a flush only costs rebuilds. *)
let chain_tbl_key : (Rat.t array, chain) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 32)

let build_chain (d : Rat.t array) =
  Obs.incr c_chain_builds;
  Obs.time sp_sturm @@ fun () ->
  { polys = sturm_chain_int (bigint_of_rat_dense d);
    bound = cauchy_bound d;
    var_memo = Rat_tbl.create 64 }

let chain_for (d : Rat.t array) =
  let tbl = Domain.DLS.get chain_tbl_key in
  match Hashtbl.find_opt tbl d with
  | Some ch -> Obs.incr c_chain_hits; ch
  | None ->
    let ch = build_chain d in
    if Hashtbl.length tbl >= chain_cache_cap then Hashtbl.reset tbl;
    Hashtbl.add tbl d ch;
    ch

(* ---- public interface over Poly ---- *)

type enclosure = { lo : Rat.t; hi : Rat.t }

let enclosure_mid e = Rat.mul Rat.half (Rat.add e.lo e.hi)

let dense_of_poly p x =
  let p = Poly.clear_denominators x p in
  (match Poly.vars p with
   | [] -> ()
   | [ v ] when String.equal v x -> ()
   | _ -> invalid_arg "Roots: polynomial is not univariate in the given variable");
  trim (Poly.univariate_coeffs x p)

let eval_at p x v =
  (* evaluate the original (possibly Laurent) polynomial *)
  Poly.eval (fun y -> if String.equal y x then v else invalid_arg "Roots.eval_at: extra variable") p

let interval_points (iv : Interval.t) bound_hint =
  (* produce finite endpoints for Sturm queries, clipping infinities at the
     Cauchy bound (no roots beyond it) *)
  let lo =
    match Interval.lo iv with
    | Interval.Neg_inf -> Rat.neg bound_hint
    | Interval.Fin x -> x
    | Interval.Pos_inf -> bound_hint
  in
  let hi =
    match Interval.hi iv with
    | Interval.Pos_inf -> bound_hint
    | Interval.Fin x -> x
    | Interval.Neg_inf -> Rat.neg bound_hint
  in
  (lo, hi)

let count_in p x iv =
  let d = dense_of_poly p x in
  if degree d <= 0 then 0
  else (
    let chain = chain_for d in
    let b = chain.bound in
    let lo, hi = interval_points iv b in
    if Rat.compare lo hi >= 0 then (if Interval.contains iv lo && is_root chain lo then 1 else 0)
    else (
      let n = count_half_open chain lo hi in
      (* (lo, hi] -> adjust for lo itself being a root *)
      let n = if is_root chain lo then n + 1 else n in
      n))

let default_eps = Rat.make Pperf_num.Bigint.one (Pperf_num.Bigint.shift_left Pperf_num.Bigint.one 20)

(* simplest rational in the closed interval [a, b] (a <= b), by the
   continued-fraction construction; used to recognize exact rational roots
   inside a narrow enclosure *)
let rec simplest_in a b =
  if Rat.compare a b > 0 then invalid_arg "simplest_in";
  if Rat.sign a <= 0 && Rat.sign b >= 0 then Rat.zero
  else if Rat.sign b < 0 then Rat.neg (simplest_in (Rat.neg b) (Rat.neg a))
  else (
    (* 0 < a <= b *)
    let fa = Rat.floor a in
    let fb = Rat.floor b in
    if Pperf_num.Bigint.compare fa fb < 0 || Rat.is_integer a then
      (* an integer lies within *)
      Rat.of_bigint (Rat.ceil a)
    else (
      let fa_r = Rat.of_bigint fa in
      let a' = Rat.sub a fa_r and b' = Rat.sub b fa_r in
      (* recurse on reciprocals: simplest in [1/b', 1/a'] *)
      let inner = simplest_in (Rat.inv b') (Rat.inv a') in
      Rat.add fa_r (Rat.inv inner)))

let isolate ?(eps = default_eps) p x iv =
  let d = dense_of_poly p x in
  if degree d <= 0 then []
  else (
    let chain = chain_for d in
    let b = chain.bound in
    let lo, hi = interval_points iv b in
    if Rat.compare lo hi > 0 then []
    else (
      let roots_in a b = count_half_open chain a b in
      (* recursively split [a, b] (treating roots in (a,b]; root at global lo
         handled separately) until each piece holds exactly one root, then
         bisect to eps *)
      let acc = ref [] in
      let rec refine a b n =
        if n = 0 then ()
        else if n = 1 then (
          (* single root in (a, b]: bisect until narrow or exact *)
          let rec go a b =
            if Rat.compare (Rat.sub b a) eps <= 0 then (
              (* recognize exact rational roots: endpoints, then the
                 simplest rational inside the enclosure *)
              if is_root chain b then acc := { lo = b; hi = b } :: !acc
              else (
                let cand = simplest_in a b in
                if is_root chain cand then acc := { lo = cand; hi = cand } :: !acc
                else acc := { lo = a; hi = b } :: !acc))
            else (
              let m = Rat.mul Rat.half (Rat.add a b) in
              if is_root chain m then acc := { lo = m; hi = m } :: !acc
              else if roots_in a m = 1 then go a m
              else go m b)
          in
          go a b)
        else (
          let m = Rat.mul Rat.half (Rat.add a b) in
          let nl = roots_in a m in
          refine a m nl;
          refine m b (n - nl))
      in
      (if is_root chain lo && Interval.contains iv lo then
         acc := { lo; hi = lo } :: !acc);
      if Rat.compare lo hi < 0 then refine lo hi (roots_in lo hi);
      List.sort (fun e1 e2 -> Rat.compare e1.lo e2.lo) !acc))

(* ---- closed-form float solvers ---- *)

module Closed_form = struct
  let dedup_sorted xs =
    let tol = 1e-9 in
    let rec go = function
      | a :: b :: rest when Float.abs (a -. b) <= tol *. (1.0 +. Float.abs a) -> go (a :: rest)
      | a :: rest -> a :: go rest
      | [] -> []
    in
    go (List.sort Float.compare xs)

  let linear c =
    if Float.abs c.(1) = 0.0 then []
    else [ -.c.(0) /. c.(1) ]

  let quadratic c =
    let a = c.(2) and b = c.(1) and k = c.(0) in
    if a = 0.0 then linear [| k; b |]
    else (
      let disc = (b *. b) -. (4.0 *. a *. k) in
      if disc < 0.0 then []
      else if disc = 0.0 then [ -.b /. (2.0 *. a) ]
      else (
        let sq = sqrt disc in
        (* numerically stable form *)
        let q = -0.5 *. (b +. (Float.of_int (compare b 0.0) |> fun s -> if s = 0. then 1. else s) *. sq) in
        let r1 = q /. a in
        let r2 = if q = 0.0 then -.b /. (2. *. a) else k /. q in
        dedup_sorted [ r1; r2 ]))

  let cubic c =
    let a = c.(3) in
    if a = 0.0 then quadratic [| c.(0); c.(1); c.(2) |]
    else (
      (* normalize to x^3 + px + q via depressed cubic *)
      let b = c.(2) /. a and cc = c.(1) /. a and d = c.(0) /. a in
      let p = cc -. (b *. b /. 3.0) in
      let q = ((2.0 *. b *. b *. b) -. (9.0 *. b *. cc)) /. 27.0 +. d in
      let shift = b /. 3.0 in
      let disc = ((q *. q) /. 4.0) +. ((p *. p *. p) /. 27.0) in
      (* all multiplicity tests are against magnitude-normalized
         tolerances: an absolute cutoff like [disc > 1e-13] flips the
         classification when the coefficients are uniformly scaled (the
         discriminant of (x-λ)(x-2λ)(x-3λ) scales as λ^6) *)
      let eps = 1e-12 in
      let disc_scale = ((q *. q) /. 4.0) +. (Float.abs (p *. p *. p) /. 27.0) in
      let p_scale = Float.abs cc +. (b *. b /. 3.0) in
      let q_scale =
        ((2.0 *. Float.abs (b *. b *. b)) +. (9.0 *. Float.abs (b *. cc))) /. 27.0
        +. Float.abs d
      in
      let roots =
        if disc > eps *. disc_scale then (
          let sq = sqrt disc in
          let cbrt v = if v >= 0.0 then v ** (1.0 /. 3.0) else -.((-.v) ** (1.0 /. 3.0)) in
          [ cbrt ((-.q /. 2.0) +. sq) +. cbrt ((-.q /. 2.0) -. sq) ])
        else if Float.abs disc <= eps *. disc_scale then
          if Float.abs q <= eps *. q_scale && Float.abs p <= eps *. p_scale then [ 0.0 ]
          else dedup_sorted [ 3.0 *. q /. p; -3.0 *. q /. (2.0 *. p) ]
        else (
          (* three real roots: trigonometric method *)
          let r = sqrt (-.p *. p *. p /. 27.0) in
          let phi = acos (Float.max (-1.0) (Float.min 1.0 (-.q /. (2.0 *. r)))) in
          let m = 2.0 *. sqrt (-.p /. 3.0) in
          [ m *. cos (phi /. 3.0);
            m *. cos ((phi +. (2.0 *. Float.pi)) /. 3.0);
            m *. cos ((phi +. (4.0 *. Float.pi)) /. 3.0) ])
      in
      dedup_sorted (List.map (fun x -> x -. shift) roots))

  let quartic c =
    let a = c.(4) in
    if a = 0.0 then cubic [| c.(0); c.(1); c.(2); c.(3) |]
    else (
      (* Ferrari: depressed quartic y^4 + p y^2 + q y + r *)
      let b = c.(3) /. a and cc = c.(2) /. a and d = c.(1) /. a and e = c.(0) /. a in
      let p = cc -. (3.0 *. b *. b /. 8.0) in
      let q = d -. (b *. cc /. 2.0) +. (b *. b *. b /. 8.0) in
      let r =
        e -. (b *. d /. 4.0) +. (b *. b *. cc /. 16.0) -. (3.0 *. b *. b *. b *. b /. 256.0)
      in
      let shift = b /. 4.0 in
      (* same scale-normalization story as [cubic]: q and the resolvent
         roots are compared against the magnitudes of their formation
         terms, not absolute cutoffs *)
      let q_scale =
        Float.abs d +. (Float.abs (b *. cc) /. 2.0) +. (Float.abs (b *. b *. b) /. 8.0)
      in
      let z_scale =
        Float.max (Float.abs p) (Float.max (sqrt (Float.abs r)) ((q *. q) ** (1.0 /. 3.0)))
      in
      let ys =
        if Float.abs q <= 1e-12 *. q_scale then (
          (* biquadratic *)
          let zs = quadratic [| r; p; 1.0 |] in
          List.concat_map (fun z -> if z > 0.0 then [ sqrt z; -.sqrt z ] else if z = 0.0 then [ 0.0 ] else []) zs)
        else (
          (* resolvent cubic: z^3 + 2p z^2 + (p^2 - 4r) z - q^2 = 0, pick a positive root *)
          let res = cubic [| -.(q *. q); (p *. p) -. (4.0 *. r); 2.0 *. p; 1.0 |] in
          match List.filter (fun z -> z > 1e-12 *. z_scale) res with
          | [] -> []
          | z :: _ ->
            let w = sqrt z in
            let half1 = quadratic [| (p +. z) /. 2.0 -. (q /. (2.0 *. w)); w; 1.0 |] in
            let half2 = quadratic [| (p +. z) /. 2.0 +. (q /. (2.0 *. w)); -.w; 1.0 |] in
            half1 @ half2)
      in
      dedup_sorted (List.map (fun y -> y -. shift) ys))

  let solve c =
    let c = Array.copy c in
    let n = ref (Array.length c) in
    while !n > 0 && c.(!n - 1) = 0.0 do decr n done;
    let c = Array.sub c 0 !n in
    match Array.length c with
    | 0 | 1 -> Some []
    | 2 -> Some (linear c)
    | 3 -> Some (quadratic c)
    | 4 -> Some (cubic c)
    | 5 -> Some (quartic c)
    | _ -> None
end
