(** Multivariate (Laurent) polynomials over exact rationals.

    These are the paper's {e performance expressions}: symbolic costs whose
    variables are unknowns in program constructs — loop bounds, trip counts,
    branch probabilities (§2.4.1). Representation is a canonical map from
    monomials to nonzero coefficients, so [equal] is structural. *)

open Pperf_num

type t

(** {1 Construction} *)

val zero : t
val one : t
val const : Rat.t -> t
val of_int : int -> t
val of_rat : Rat.t -> t
val var : string -> t
val var_pow : string -> int -> t
val monomial : Rat.t -> Monomial.t -> t
val of_terms : (Rat.t * Monomial.t) list -> t

(** {1 Arithmetic} *)

val neg : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val scale : Rat.t -> t -> t
val scale_int : int -> t -> t
val add_const : Rat.t -> t -> t

val pow : t -> int -> t
(** Non-negative exponents only, except that a single-term polynomial may be
    raised to a negative power. @raise Invalid_argument otherwise. *)

val div_exact : t -> t -> t option
(** [div_exact p q] is [Some r] with [p = q * r] when [q] divides [p]
    exactly (e.g. dividing an aggregate cost by a trip count); [None]
    otherwise. Only supported for single-term [q]. *)

val sum : t list -> t

(** {1 Inspection} *)

val is_zero : t -> bool
val is_const : t -> bool

val to_const : t -> Rat.t option
(** [Some c] when the polynomial is the constant [c]. *)

val terms : t -> (Rat.t * Monomial.t) list
(** In increasing monomial order. *)

val num_terms : t -> int
val coeff : Monomial.t -> t -> Rat.t
val constant_term : t -> Rat.t
val vars : t -> string list
val mem_var : string -> t -> bool
val total_degree : t -> int
val degree_in : string -> t -> int
(** Highest exponent of the variable (0 if absent; can be negative only if
    all occurrences are negative). *)

val min_degree_in : string -> t -> int
val is_polynomial : t -> bool
(** No negative exponents. *)

val is_univariate : t -> string option
(** [Some x] when exactly one variable occurs. *)

(** {1 Evaluation and substitution} *)

val eval : (string -> Rat.t) -> t -> Rat.t
val eval_partial : (string -> Rat.t option) -> t -> t
val subst : string -> t -> t -> t
(** [subst x q p] replaces [x] by [q] in [p]. [q] must be a single term if
    [x] occurs with negative exponents. @raise Invalid_argument otherwise. *)

val eval_float : (string -> float) -> t -> float
(** Fast approximate evaluation. *)

(** {1 Calculus} *)

val deriv : string -> t -> t

val coeffs_in : string -> t -> (int * t) list
(** [coeffs_in x p] views [p] as a polynomial in [x]: list of
    (exponent, coefficient-polynomial in the remaining variables), in
    increasing exponent order. *)

val univariate_coeffs : string -> t -> Rat.t array
(** Dense coefficient array [c0; c1; ...] of a genuinely univariate
    polynomial in [x] with no negative exponents.
    @raise Invalid_argument if other variables occur or exponents are
    negative. *)

val of_univariate_coeffs : string -> Rat.t array -> t

val clear_denominators : string -> t -> t
(** Multiply by [x^k] to remove negative powers of [x] (sign-preserving for
    [x > 0]); used before root analysis. *)

(** {1 Ordering and printing} *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Infix : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( ~- ) : t -> t
end
