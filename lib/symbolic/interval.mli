(** Closed intervals over extended rationals, and interval evaluation of
    performance polynomials.

    Used for the paper's range-based reasoning (§3.1): "there are many
    situations where it is possible to determine whether the expression is
    positive or negative based on bounds on the variables". *)

open Pperf_num

type bound = Neg_inf | Fin of Rat.t | Pos_inf

type t = private { lo : bound; hi : bound }
(** Invariant: [lo <= hi]. Endpoints are included where finite. *)

val make : bound -> bound -> t
(** @raise Invalid_argument when [lo > hi]. *)

val of_rats : Rat.t -> Rat.t -> t
val of_ints : int -> int -> t
val point : Rat.t -> t
val of_int : int -> t
val full : t
val nonneg : t
val pos_ge : Rat.t -> t
val unit_prob : t
(** [0, 1] — the range of a branch probability. *)

val lo : t -> bound
val hi : t -> bound

val is_point : t -> Rat.t option
val equal : t -> t -> bool
val is_full : t -> bool
(** Both bounds infinite — the "no information" element. *)

val contains : t -> Rat.t -> bool
val subset : t -> t -> bool
val intersect : t -> t -> t option
val union : t -> t -> t

val widen : t -> t -> t
(** [widen a b] keeps each bound of [a] that [b] does not escape and sends
    the others to infinity — the classic interval widening; [widen a a = a]
    and [widen a b = a] whenever [b] is a subset of [a]. *)

val narrow : t -> t -> t
(** [narrow a b] refines the infinite bounds of [a] with those of [b] (one
    standard narrowing pass after widening); finite bounds of [a] win. *)

val width : t -> Rat.t option
(** [None] when unbounded. *)

val midpoint : t -> Rat.t
(** Midpoint of a finite interval; for half-bounded intervals a finite
    representative (offset 1 from the finite end); 0 for [full]. *)

val sample : t -> int -> Rat.t list
(** [sample t n] returns up to [n] evenly spaced points inside [t]. *)

(** {1 Interval arithmetic} *)

val neg : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val pow : t -> int -> t
(** For negative exponents the interval must not contain zero.
    @raise Division_by_zero otherwise. *)

val scale : Rat.t -> t -> t

(** {1 Signs} *)

type sign = Neg | Zero | Pos | Mixed

val sign : t -> sign
(** [Neg]/[Pos] require the whole interval strictly on that side; [Zero]
    means the interval is exactly \{0\}. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** {1 Environments: variable ranges} *)

module Env : sig
  type interval := t
  type t

  val empty : t
  val add : string -> interval -> t -> t
  val of_list : (string * interval) list -> t
  val find : string -> t -> interval
  (** Unknown variables default to {!full}. *)

  val find_opt : string -> t -> interval option
  val bindings : t -> (string * interval) list
  val midpoint_valuation : t -> string -> Rat.t
  val pp : Format.formatter -> t -> unit
end

val eval_poly : Env.t -> Poly.t -> t
(** Sound enclosure of the polynomial's range over the box; monomial-wise
    (each monomial evaluated with interval powers, then summed). *)

val sign_of_poly : Env.t -> Poly.t -> sign
(** Sign of the enclosure — [Mixed] is "don't know", not "changes sign". *)
