(** Integration of univariate performance polynomials.

    §3.1 of the paper: "either the value of the function, size of the area
    where P⁺ and P⁻ are nonzero, or integral values of P⁺ and P⁻ can be
    used to compare the transformations f and g". *)

open Pperf_num

val antiderivative : string -> Poly.t -> Poly.t
(** Formal antiderivative in the named variable (constant of integration 0).
    @raise Invalid_argument on an [x^-1] term. *)

val integral : Poly.t -> string -> Rat.t -> Rat.t -> Rat.t
(** Exact definite integral of a univariate polynomial. *)

type split = {
  pos_measure : Rat.t;  (** total length where the polynomial is > 0 *)
  neg_measure : Rat.t;  (** total length where the polynomial is < 0 *)
  pos_integral : Rat.t;  (** integral of P⁺ (i.e. ∫ max(P,0)) *)
  neg_integral : Rat.t;  (** integral of −P⁻ (i.e. ∫ max(−P,0)), non-negative *)
}

val pos_neg_split : ?eps:Rat.t -> Poly.t -> string -> Interval.t -> split
(** Region-based decomposition over a finite interval. Root enclosures of
    width ≤ [eps] contribute error at most [eps·max|P|] per root.
    @raise Invalid_argument on an unbounded interval. *)

val pp_split : Format.formatter -> split -> unit
