open Pperf_num

type sign = Interval.sign = Neg | Zero | Pos | Mixed

type region = { range : Interval.t; sign : sign }

let sign_of_rat r =
  let s = Rat.sign r in
  if s > 0 then Pos else if s < 0 then Neg else Zero

let regions ?eps p x iv =
  match Poly.to_const p with
  | Some c -> [ { range = iv; sign = sign_of_rat c } ]
  | None ->
    let encls = Roots.isolate ?eps p x iv in
    (* Build an ordered list of cut intervals; sample sign between them. *)
    let eval_sign v = sign_of_rat (Roots.eval_at p x v) in
    let lo_b = Interval.lo iv and hi_b = Interval.hi iv in
    let acc = ref [] in
    let push range sign = acc := { range; sign } :: !acc in
    let cursor = ref lo_b in
    let sample_between a b =
      (* a, b : Interval.bound; return a rational strictly between *)
      match (a, b) with
      | Interval.Fin x, Interval.Fin y -> Rat.mul Rat.half (Rat.add x y)
      | Interval.Neg_inf, Interval.Fin y -> Rat.sub y Rat.one
      | Interval.Fin x, Interval.Pos_inf -> Rat.add x Rat.one
      | Interval.Neg_inf, Interval.Pos_inf -> Rat.zero
      | _ -> Rat.zero
    in
    let push_gap gap =
      match Interval.is_point gap with
      | Some v -> push gap (eval_sign v)
      | None -> push gap (eval_sign (sample_between (Interval.lo gap) (Interval.hi gap)))
    in
    List.iter
      (fun (e : Roots.enclosure) ->
        let root_lo = Interval.Fin e.lo and root_hi = Interval.Fin e.hi in
        (* the gap before this root *)
        (match Interval.intersect (Interval.make !cursor root_lo) iv with
         | Some gap -> push_gap gap
         | None -> ());
        push (Interval.make root_lo root_hi) Zero;
        cursor := root_hi)
      encls;
    (* final gap *)
    (match Interval.intersect (Interval.make !cursor hi_b) iv with
     | Some gap -> push_gap gap
     | None -> ());
    (* merge adjacent regions with identical sign; drop empty point-gaps
       duplicated at region boundaries *)
    let merged =
      List.fold_left
        (fun out r ->
          match out with
          | prev :: rest when prev.sign = r.sign ->
            { range = Interval.union prev.range r.range; sign = r.sign } :: rest
          | _ -> r :: out)
        [] (List.rev !acc)
    in
    List.rev merged

let rec sign_over ?oracle ?(depth = 3) env p =
  let base =
    match Interval.sign_of_poly env p with
    | Mixed ->
      (* a relational oracle (e.g. octagon facts from {!Pperf_absint}) may
         know a sign the variable box cannot express *)
      (match oracle with Some f -> Interval.sign (f p) | None -> Mixed)
    | s -> s
  in
  match base with
  | (Pos | Neg | Zero) as s -> s
  | Mixed when depth <= 0 -> Mixed
  | Mixed ->
    (* split the widest finite variable range and recurse *)
    let bindings = Interval.Env.bindings env in
    let widest =
      List.fold_left
        (fun best (x, iv) ->
          if not (Poly.mem_var x p) then best
          else
            match (Interval.width iv, best) with
            | Some w, Some (_, _, bw) when Rat.compare w bw > 0 -> Some (x, iv, w)
            | Some w, None -> Some (x, iv, w)
            | _ -> best)
        None bindings
    in
    (match widest with
     | None -> Mixed
     | Some (x, iv, w) ->
       if Rat.sign w <= 0 then Mixed
       else (
         let m = Interval.midpoint iv in
         let left = Interval.make (Interval.lo iv) (Interval.Fin m) in
         let right = Interval.make (Interval.Fin m) (Interval.hi iv) in
         let s1 = sign_over ?oracle ~depth:(depth - 1) (Interval.Env.add x left env) p in
         if s1 = Mixed then Mixed
         else (
           let s2 = sign_over ?oracle ~depth:(depth - 1) (Interval.Env.add x right env) p in
           match (s1, s2) with
           | a, b when a = b -> a
           | Pos, Zero | Zero, Pos -> Pos (* zero only on the seam boundary *)
           | Neg, Zero | Zero, Neg -> Neg
           | _ -> Mixed)))

type verdict =
  | Always_le
  | Always_ge
  | Equal
  | Crossover of region list
  | Undecided of Poly.t

let compare_over ?eps ?depth ?oracle env cf cg =
  let d = Poly.sub cf cg in
  if Poly.is_zero d then Equal
  else
    match sign_over ?oracle ?depth env d with
    | Neg -> Always_le
    | Pos -> Always_ge
    | Zero -> Equal
    | Mixed ->
      (match Poly.is_univariate d with
       | Some x ->
         let iv = Interval.Env.find x env in
         let iv =
           (* the oracle may clip an unbounded variable to a finite range *)
           match oracle with
           | Some f -> (
             match Interval.intersect iv (f (Poly.var x)) with
             | Some m -> m
             | None -> iv)
           | None -> iv
         in
         let rs = regions ?eps d x iv in
         (* the regions may still be single-signed if interval arith was too
            coarse *)
         let has_pos = List.exists (fun r -> r.sign = Pos) rs in
         let has_neg = List.exists (fun r -> r.sign = Neg) rs in
         if has_pos && not has_neg then Always_ge
         else if has_neg && not has_pos then Always_le
         else if (not has_pos) && not has_neg then Equal
         else Crossover rs
       | None -> Undecided d)

let pp_sign fmt = function
  | Pos -> Format.pp_print_string fmt "+"
  | Neg -> Format.pp_print_string fmt "-"
  | Zero -> Format.pp_print_string fmt "0"
  | Mixed -> Format.pp_print_string fmt "?"

let pp_region fmt r = Format.fprintf fmt "%a on %a" pp_sign r.sign Interval.pp r.range

let pp_verdict fmt = function
  | Always_le -> Format.pp_print_string fmt "first <= second over the whole range"
  | Always_ge -> Format.pp_print_string fmt "first >= second over the whole range"
  | Equal -> Format.pp_print_string fmt "equal"
  | Crossover rs ->
    Format.fprintf fmt "crossover: %a"
      (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.pp_print_string fmt "; ") pp_region)
      rs
  | Undecided p -> Format.fprintf fmt "undecided; run-time test on sign of %a" Poly.pp p
