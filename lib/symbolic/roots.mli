(** Real-root isolation and refinement for univariate performance
    polynomials.

    The paper (§3.1) observes that the difference of two performance
    expressions is usually a polynomial in a single variable (a loop
    transformation changes one structure at a time) and that its sign
    regions can be found from its real roots. We provide:

    - an exact path: Sturm sequences computed as integer primitive-part
      pseudo-remainder sequences (denominators cleared once, each
      remainder divided by its content, signs preserved), giving
      isolating intervals refined by bisection to any requested width,
      correct for roots of any multiplicity and any degree. Chains and
      endpoint variation counts are memoized per worker domain behind
      capped tables ([roots.chain_builds] / [roots.chain_cache_hits] /
      [roots.variations] counters, [sturm] span; DESIGN.md §2.6);
    - a fast float path with the closed-form formulas the paper alludes to
      (quadratic, Cardano cubic, Ferrari quartic), used by benchmarks. *)

open Pperf_num

type enclosure = {
  lo : Rat.t;
  hi : Rat.t;  (** [lo = hi] iff the root is known exactly. *)
}

val enclosure_mid : enclosure -> Rat.t

val count_in : Poly.t -> string -> Interval.t -> int
(** [count_in p x iv] is the number of {e distinct} real roots of [p]
    (viewed as univariate in [x]) within [iv], by Sturm's theorem.
    @raise Invalid_argument if [p] mentions other variables. *)

val isolate : ?eps:Rat.t -> Poly.t -> string -> Interval.t -> enclosure list
(** Disjoint enclosures, in increasing order, one per distinct real root of
    [p] in the interval, each either exact or of width [<= eps]
    (default [1/2^20]). Exact rational roots are recognized and returned
    with [lo = hi]. The zero polynomial yields [[]] (caller should treat
    "identically zero" separately via {!Poly.is_zero}). *)

val eval_at : Poly.t -> string -> Rat.t -> Rat.t
(** Exact evaluation of a univariate polynomial. *)

(** {1 Closed-form float solvers}

    Real roots only, ascending, with multiplicity collapsed. Coefficients
    are given low-to-high ([c.(i)] multiplies [x^i]). *)

module Closed_form : sig
  val linear : float array -> float list
  val quadratic : float array -> float list
  val cubic : float array -> float list
  val quartic : float array -> float list

  val solve : float array -> float list option
  (** Dispatch on degree; [None] above degree 4 (use {!isolate}). *)
end
