open Pperf_num

type report = { variable : string; sensitivity : Rat.t; gradient : Rat.t }

let default_delta = Rat.of_ints 1 16

let rank ?(delta = default_delta) env p =
  let mid x = Interval.Env.midpoint_valuation env x in
  let base = Poly.eval mid p in
  let reports =
    Poly.vars p
    |> List.map (fun v ->
           let iv = Interval.Env.find v env in
           let m = mid v in
           let step =
             match Interval.width iv with
             | Some w when Rat.sign w > 0 -> Rat.mul delta w
             | _ ->
               (* unbounded or degenerate range: perturb relative to the
                  midpoint representative, with a floor of delta *)
               Rat.max delta (Rat.mul delta (Rat.abs m))
           in
           let perturbed = Poly.eval (fun x -> if String.equal x v then Rat.add m step else mid x) p in
           let sensitivity = Rat.abs (Rat.sub perturbed base) in
           let gradient = Poly.eval mid (Poly.deriv v p) in
           { variable = v; sensitivity; gradient })
  in
  List.sort (fun a b -> Rat.compare b.sensitivity a.sensitivity) reports

let top ?delta n env p =
  let all = rank ?delta env p in
  List.filteri (fun i _ -> i < n) all

let pp_report fmt r =
  Format.fprintf fmt "%s: sensitivity %a (dP/d%s at midpoint = %a)" r.variable Rat.pp
    r.sensitivity r.variable Rat.pp r.gradient
