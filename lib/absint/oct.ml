open Pperf_num
open Pperf_symbolic

(* lazy so interval-only runs leave the telemetry registry untouched *)
let c_closures = lazy (Pperf_obs.Obs.counter "absint.octagon.closures")

(* ---------- extended upper bounds ---------- *)

type ub = Fin of Rat.t | Inf

let ub_add a b =
  match (a, b) with Inf, _ | _, Inf -> Inf | Fin x, Fin y -> Fin (Rat.add x y)

let ub_le a b =
  match (a, b) with
  | _, Inf -> true
  | Inf, _ -> false
  | Fin x, Fin y -> Rat.compare x y <= 0

let ub_min a b = if ub_le a b then a else b
let ub_max a b = if ub_le a b then b else a
let ub_half = function Inf -> Inf | Fin x -> Fin (Rat.mul Rat.half x)
let ub_equal a b = ub_le a b && ub_le b a

(* ---------- representation ---------- *)

(* Invariant: the matrix is strongly closed with a zero diagonal. *)
type oct = { vars : string array; m : ub array array }
type t = Bot | Oct of oct

let max_vars = 24
let top = Oct { vars = [||]; m = [||] }
let bot = Bot
let is_bot t = t = Bot

let dim o = 2 * Array.length o.vars

let idx o x =
  let n = Array.length o.vars in
  let rec go i = if i >= n then None else if o.vars.(i) = x then Some i else go (i + 1) in
  go 0

let tracked = function Bot -> [] | Oct o -> Array.to_list o.vars

let is_top = function
  | Bot -> false
  | Oct o ->
    let all = ref true in
    let n2 = dim o in
    for i = 0 to n2 - 1 do
      for j = 0 to n2 - 1 do
        match o.m.(i).(j) with Fin _ when i <> j -> all := false | _ -> ()
      done
    done;
    !all

let copy_m m = Array.map Array.copy m

(* Add missing variables (unconstrained), respecting the cap. *)
let extend o xs =
  let fresh =
    List.sort_uniq String.compare xs
    |> List.filter (fun x -> idx o x = None)
  in
  let room = max 0 (max_vars - Array.length o.vars) in
  let rec take n = function [] -> [] | x :: tl -> if n = 0 then [] else x :: take (n - 1) tl in
  let fresh = take room fresh in
  if fresh = [] then o
  else (
    let vars = Array.append o.vars (Array.of_list fresh) in
    let old_n2 = dim o in
    let n2 = 2 * Array.length vars in
    let m =
      Array.init n2 (fun i ->
          Array.init n2 (fun j ->
              if i < old_n2 && j < old_n2 then o.m.(i).(j)
              else if i = j then Fin Rat.zero
              else Inf))
    in
    { vars; m })

(* ---------- strong closure ---------- *)

let close o =
  Pperf_obs.Obs.incr (Lazy.force c_closures);
  let nv = Array.length o.vars in
  let n2 = dim o in
  let m = copy_m o.m in
  for k = 0 to nv - 1 do
    let k1 = 2 * k and k2 = (2 * k) + 1 in
    for i = 0 to n2 - 1 do
      let row = m.(i) in
      let ik1 = row.(k1) and ik2 = row.(k2) in
      for j = 0 to n2 - 1 do
        let v1 = ub_add ik1 m.(k1).(j)
        and v2 = ub_add ik2 m.(k2).(j)
        and v3 = ub_add (ub_add ik1 m.(k1).(k2)) m.(k2).(j)
        and v4 = ub_add (ub_add ik2 m.(k2).(k1)) m.(k1).(j) in
        row.(j) <- ub_min row.(j) (ub_min (ub_min v1 v2) (ub_min v3 v4))
      done
    done;
    (* strengthening: m[i][j] <- min m[i][j] ((m[i][ī] + m[j̄][j]) / 2) *)
    for i = 0 to n2 - 1 do
      let d = ub_half m.(i).(i lxor 1) in
      for j = 0 to n2 - 1 do
        let e = ub_half m.(j lxor 1).(j) in
        m.(i).(j) <- ub_min m.(i).(j) (ub_add d e)
      done
    done
  done;
  let empty = ref false in
  for i = 0 to n2 - 1 do
    (match m.(i).(i) with
    | Fin c when Rat.sign c < 0 -> empty := true
    | _ -> ());
    m.(i).(i) <- Fin Rat.zero
  done;
  if !empty then Bot else Oct { o with m }

(* ---------- entry helpers ---------- *)

(* Index of the split variable carrying [s·x] for variable slot [a]. *)
let pos_of a s = if s > 0 then 2 * a else (2 * a) + 1

(* Upper bound of [sa·x_a + sb·x_b] straight from the matrix: the column
   holds the split variable equal to [-sb·x_b]. *)
let pair_ub o a sa b sb = o.m.(pos_of a sa).(pos_of b (-sb))

let unary_ub o a s =
  let i = pos_of a s in
  ub_half o.m.(i).(i lxor 1)

let iv_of_ubs hi_ub neg_lo_ub =
  (* x <= hi_ub and -x <= neg_lo_ub *)
  let hi = match hi_ub with Inf -> Interval.Pos_inf | Fin c -> Interval.Fin c in
  let lo = match neg_lo_ub with Inf -> Interval.Neg_inf | Fin c -> Interval.Fin (Rat.neg c) in
  try Interval.make lo hi with Invalid_argument _ -> Interval.full

let proj o x =
  match idx o x with
  | None -> Interval.full
  | Some a -> iv_of_ubs (unary_ub o a 1) (unary_ub o a (-1))

let project t x = match t with Bot -> Interval.full | Oct o -> proj o x

let imeet a b = match Interval.intersect a b with Some i -> i | None -> a

let full_ivb : string -> Interval.t = fun _ -> Interval.full

(* ---------- bounding linear forms ---------- *)

let bound_hi_of_iv a iv =
  (* upper bound of a·x given x ∈ iv *)
  if Rat.sign a >= 0 then
    match Interval.hi iv with Interval.Fin h -> Fin (Rat.mul a h) | _ -> Inf
  else
    match Interval.lo iv with Interval.Fin l -> Fin (Rat.mul a l) | _ -> Inf

(* Greedy pairing: peel [λ·(±x ± y)] sub-forms that the matrix bounds
   finitely; everything left falls back to its unary interval bound. *)
let upper o ~vb (lin : Lin.t) =
  let rec go acc = function
    | [] -> acc
    | (a, x) :: rest ->
      let sa = Rat.sign a in
      let pick =
        match idx o x with
        | None -> None
        | Some ia ->
          let rec find pre = function
            | [] -> None
            | (b, y) :: tl -> (
              match idx o y with
              | Some ib when y <> x -> (
                match pair_ub o ia sa ib (Rat.sign b) with
                | Fin c -> Some ((b, y), c, List.rev_append pre tl)
                | Inf -> find ((b, y) :: pre) tl)
              | _ -> find ((b, y) :: pre) tl)
          in
          find [] rest
      in
      (match pick with
      | Some ((b, y), c, rest') ->
        let lam = Rat.min (Rat.abs a) (Rat.abs b) in
        let leftover coeff s v =
          let r = Rat.sub (Rat.abs coeff) lam in
          if Rat.is_zero r then [] else [ (Rat.mul (Rat.of_int s) r, v) ]
        in
        go
          (ub_add acc (Fin (Rat.mul lam c)))
          (leftover a sa x @ leftover b (Rat.sign b) y @ rest')
      | None -> go (ub_add acc (bound_hi_of_iv a (vb x))) rest)
  in
  ub_add (Fin lin.const) (go (Fin Rat.zero) lin.terms)

let bound ?(ivb = full_ivb) t lin =
  match t with
  | Bot -> Interval.full
  | Oct o ->
    let vb x = imeet (ivb x) (proj o x) in
    let hi = upper o ~vb lin in
    let neg_lo = upper o ~vb (Lin.neg lin) in
    imeet (iv_of_ubs hi neg_lo) (Lin.eval_iv vb lin)

(* ---------- meets ---------- *)

let tighten m i j v = m.(i).(j) <- ub_min m.(i).(j) v

let tighten2 m i j v =
  tighten m i j v;
  tighten m (j lxor 1) (i lxor 1) v

let set_upper m a c = tighten m (2 * a) ((2 * a) + 1) (Fin (Rat.mul Rat.two c))
let set_lower m a c = tighten m ((2 * a) + 1) (2 * a) (Fin (Rat.neg (Rat.mul Rat.two c)))

let set_interval m a iv =
  (match Interval.hi iv with Interval.Fin h -> set_upper m a h | _ -> ());
  match Interval.lo iv with Interval.Fin l -> set_lower m a l | _ -> ()

let meet_le ?(ivb = full_ivb) t (lin : Lin.t) =
  match t with
  | Bot -> Bot
  | Oct o -> (
    match Lin.is_const lin with
    | Some c -> if Rat.sign c > 0 then Bot else t
    | None ->
      let o = extend o (Lin.vars lin) in
      let pre = Oct o in
      let m = copy_m o.m in
      (* unary: a·x <= -(rest lower bound) for each linear term *)
      List.iter
        (fun (a, x) ->
          match idx o x with
          | None -> ()
          | Some ia -> (
            let rest = Lin.drop_var x lin in
            match Interval.lo (bound ~ivb pre rest) with
            | Interval.Fin rl ->
              let v = Rat.div (Rat.neg rl) a in
              if Rat.sign a > 0 then set_upper m ia v else set_lower m ia v
            | _ -> ()))
        lin.terms;
      (* binary: λ·(sx·x + sy·y) <= -(residual lower bound) for each pair *)
      let rec pairs = function
        | [] -> ()
        | (a, x) :: rest ->
          (match idx o x with
          | None -> ()
          | Some ia ->
            List.iter
              (fun (b, y) ->
                match idx o y with
                | None -> ()
                | Some ib -> (
                  let sa = Rat.sign a and sb = Rat.sign b in
                  let lam = Rat.min (Rat.abs a) (Rat.abs b) in
                  let peeled =
                    Lin.of_terms
                      [ (Rat.mul (Rat.of_int sa) lam, x); (Rat.mul (Rat.of_int sb) lam, y) ]
                      Rat.zero
                  in
                  match Interval.lo (bound ~ivb pre (Lin.sub lin peeled)) with
                  | Interval.Fin rl ->
                    let c = Rat.div (Rat.neg rl) lam in
                    tighten2 m (pos_of ia sa) (pos_of ib (-sb)) (Fin c)
                  | _ -> ()))
              rest);
          pairs rest
      in
      pairs lin.terms;
      close { o with m })

let meet_eq ?ivb t lin =
  match meet_le ?ivb t lin with
  | Bot -> Bot
  | t' -> meet_le ?ivb t' (Lin.neg lin)

(* ---------- forget / assign ---------- *)

let forget_idx m a =
  let n2 = Array.length m in
  let i1 = 2 * a and i2 = (2 * a) + 1 in
  for j = 0 to n2 - 1 do
    if j <> i1 then m.(i1).(j) <- Inf;
    if j <> i2 then m.(i2).(j) <- Inf;
    if j <> i1 then m.(j).(i1) <- Inf;
    if j <> i2 then m.(j).(i2) <- Inf
  done;
  m.(i1).(i2) <- Inf;
  m.(i2).(i1) <- Inf

let forget t x =
  match t with
  | Bot -> Bot
  | Oct o -> (
    match idx o x with
    | None -> t
    | Some a ->
      let m = copy_m o.m in
      forget_idx m a;
      (* forgetting in a closed matrix preserves closure *)
      Oct { o with m })

let shift o a c =
  (* exact transfer of x := x + c *)
  let m = copy_m o.m in
  let i1 = 2 * a and i2 = (2 * a) + 1 in
  let n2 = Array.length m in
  for j = 0 to n2 - 1 do
    if j <> i1 && j <> i2 then (
      m.(i1).(j) <- ub_add m.(i1).(j) (Fin c);
      m.(i2).(j) <- ub_add m.(i2).(j) (Fin (Rat.neg c));
      m.(j).(i1) <- ub_add m.(j).(i1) (Fin (Rat.neg c));
      m.(j).(i2) <- ub_add m.(j).(i2) (Fin c))
  done;
  let c2 = Rat.mul Rat.two c in
  m.(i1).(i2) <- ub_add m.(i1).(i2) (Fin c2);
  m.(i2).(i1) <- ub_add m.(i2).(i1) (Fin (Rat.neg c2));
  Oct { o with m }

let assign ?(ivb = full_ivb) t x rhs =
  match t with
  | Bot -> Bot
  | Oct o -> (
    match rhs with
    | None -> forget t x
    | Some (e : Lin.t) -> (
      match (e.terms, idx o x) with
      | [ (a, y) ], Some ia when y = x && Rat.equal a Rat.one ->
        shift o ia e.const
      | [ (a, y) ], _ when y <> x && Rat.equal (Rat.abs a) Rat.one ->
        (* x := ±y + c, exact *)
        let o = extend o [ x; y ] in
        (match (idx o x, idx o y) with
        | Some ia, Some ib ->
          let m = copy_m o.m in
          forget_idx m ia;
          let s = Rat.sign a in
          (* x - (±y) <= c and (±y) - x <= -c *)
          tighten2 m (pos_of ia 1) (pos_of ib s) (Fin e.const);
          tighten2 m (pos_of ia (-1)) (pos_of ib (-s)) (Fin (Rat.neg e.const));
          close { o with m }
        | _ ->
          (* y past the cap: fall back to the interval value of e *)
          let iv = bound ~ivb (Oct o) e in
          (match idx o x with
          | None -> Oct o
          | Some ia ->
            let m = copy_m o.m in
            forget_idx m ia;
            set_interval m ia iv;
            close { o with m }))
      | _, _ ->
        (* general affine (may mention x): bound value and pairwise
           relations against the pre-state, then kill x *)
        let pre = Oct o in
        let iv = bound ~ivb pre e in
        let rels =
          Array.to_list o.vars
          |> List.filter (fun y -> y <> x)
          |> List.map (fun y ->
                 ( y,
                   bound ~ivb pre (Lin.sub e (Lin.var y)),
                   bound ~ivb pre (Lin.add e (Lin.var y)) ))
        in
        let o = extend o [ x ] in
        (match idx o x with
        | None -> Oct o
        | Some ia ->
          let m = copy_m o.m in
          forget_idx m ia;
          set_interval m ia iv;
          List.iter
            (fun (y, diff, sum) ->
              match idx o y with
              | None -> ()
              | Some ib ->
                (* x - y ∈ diff, x + y ∈ sum *)
                (match Interval.hi diff with
                | Interval.Fin h -> tighten2 m (pos_of ia 1) (pos_of ib 1) (Fin h)
                | _ -> ());
                (match Interval.lo diff with
                | Interval.Fin l ->
                  tighten2 m (pos_of ia (-1)) (pos_of ib (-1)) (Fin (Rat.neg l))
                | _ -> ());
                (match Interval.hi sum with
                | Interval.Fin h -> tighten2 m (pos_of ia 1) (pos_of ib (-1)) (Fin h)
                | _ -> ());
                match Interval.lo sum with
                | Interval.Fin l ->
                  tighten2 m (pos_of ia (-1)) (pos_of ib 1) (Fin (Rat.neg l))
                | _ -> ())
            rels;
          close { o with m })))

(* ---------- lattice operations ---------- *)

(* Rebuild o's matrix in the variable order of [vars]. *)
let conform o vars =
  let map = Array.map (fun x -> idx o x) vars in
  let n2 = 2 * Array.length vars in
  Array.init n2 (fun i ->
      Array.init n2 (fun j ->
          if i = j then Fin Rat.zero
          else
            match (map.(i / 2), map.(j / 2)) with
            | Some oi, Some oj -> o.m.((2 * oi) + (i mod 2)).((2 * oj) + (j mod 2))
            | _ -> Inf))

let union_vars oa ob =
  let all =
    List.sort_uniq String.compare (Array.to_list oa.vars @ Array.to_list ob.vars)
  in
  let rec take n = function [] -> [] | x :: tl -> if n = 0 then [] else x :: take (n - 1) tl in
  Array.of_list (take max_vars all)

let lift2 f a b =
  match (a, b) with
  | Bot, t | t, Bot -> t
  | Oct oa, Oct ob ->
    let vars = union_vars oa ob in
    let ma = conform oa vars and mb = conform ob vars in
    let n2 = 2 * Array.length vars in
    let m = Array.init n2 (fun i -> Array.init n2 (fun j -> f ma.(i).(j) mb.(i).(j))) in
    Oct { vars; m }

(* pointwise max of strongly closed matrices is strongly closed *)
let join a b = lift2 ub_max a b

let widen ?(thresholds = []) a b =
  match (a, b) with
  | Bot, t | t, Bot -> t
  | Oct _, Oct _ ->
    let ths = List.sort_uniq Rat.compare thresholds in
    let wid ea eb =
      if ub_le eb ea then ea
      else
        match List.find_opt (fun th -> ub_le eb (Fin th)) ths with
        | Some th -> Fin th
        | None -> Inf
    in
    (match lift2 wid a b with Bot -> Bot | Oct o -> close o)

let narrow a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Oct _, Oct _ -> (
    let nar ea eb = match ea with Inf -> eb | _ -> ea in
    match lift2 nar a b with Bot -> Bot | Oct o -> close o)

let equal a b =
  match (a, b) with
  | Bot, Bot -> true
  | Bot, _ | _, Bot -> false
  | Oct oa, Oct ob ->
    let vars = union_vars oa ob in
    let ma = conform oa vars and mb = conform ob vars in
    let n2 = 2 * Array.length vars in
    let eq = ref true in
    for i = 0 to n2 - 1 do
      for j = 0 to n2 - 1 do
        if not (ub_equal ma.(i).(j) mb.(i).(j)) then eq := false
      done
    done;
    !eq

(* ---------- inspection ---------- *)

let signs = [ (1, 1); (1, -1); (-1, 1); (-1, -1) ]

let binary_cons o a sa b sb c : Lin.cons =
  {
    lhs =
      Lin.of_terms
        [ (Rat.of_int sa, o.vars.(a)); (Rat.of_int sb, o.vars.(b)) ]
        (Rat.neg c);
    is_eq = false;
  }

let constraints t =
  match t with
  | Bot -> []
  | Oct o ->
    let nv = Array.length o.vars in
    let out = ref [] in
    for a = 0 to nv - 1 do
      for b = a + 1 to nv - 1 do
        (* fuse opposite-sign pairs into equalities where exact *)
        let entry (sa, sb) = pair_ub o a sa b sb in
        let emitted_eq = ref [] in
        List.iter
          (fun (sa, sb) ->
            if sa > 0 then (
              match (entry (sa, sb), entry (-sa, -sb)) with
              | Fin c, Fin c' when Rat.equal c' (Rat.neg c) ->
                emitted_eq := (sa, sb) :: (-sa, -sb) :: !emitted_eq;
                let cons = binary_cons o a sa b sb c in
                out := { cons with Lin.is_eq = true } :: !out
              | _ -> ()))
          signs;
        List.iter
          (fun (sa, sb) ->
            if not (List.mem (sa, sb) !emitted_eq) then
              match entry (sa, sb) with
              | Inf -> ()
              | Fin c ->
                (* only worth reporting when tighter than the unary bounds *)
                let implied = ub_add (unary_ub o a sa) (unary_ub o b sb) in
                if not (ub_le implied (Fin c)) then
                  out := binary_cons o a sa b sb c :: !out)
          signs
      done
    done;
    List.rev !out

let entails t (c : Lin.cons) =
  match t with
  | Bot -> true
  | Oct _ -> (
    let hi_le_zero l =
      match Interval.hi (bound t l) with
      | Interval.Fin h -> Rat.sign h <= 0
      | _ -> false
    in
    hi_le_zero c.lhs && ((not c.is_eq) || hi_le_zero (Lin.neg c.lhs)))

let unconstrained t x =
  match t with
  | Bot -> false
  | Oct o -> (
    match idx o x with
    | None -> true
    | Some a ->
      let n2 = dim o in
      let i1 = 2 * a and i2 = (2 * a) + 1 in
      let free = ref true in
      let fin = function Fin _ -> true | Inf -> false in
      for j = 0 to n2 - 1 do
        if j <> i1 && (fin o.m.(i1).(j) || fin o.m.(j).(i1)) then free := false;
        if j <> i2 && (fin o.m.(i2).(j) || fin o.m.(j).(i2)) then free := false
      done;
      !free)

let satisfies f t =
  match t with
  | Bot -> false
  | Oct o ->
    let n2 = dim o in
    let value i =
      let v = f o.vars.(i / 2) in
      if i mod 2 = 0 then v else Rat.neg v
    in
    let ok = ref true in
    for i = 0 to n2 - 1 do
      for j = 0 to n2 - 1 do
        match o.m.(i).(j) with
        | Inf -> ()
        | Fin c -> if Rat.compare (Rat.sub (value i) (value j)) c > 0 then ok := false
      done
    done;
    !ok
