open Pperf_num
open Pperf_symbolic

type domain = Box | Octagon | Affine | Product

let domain_of_string = function
  | "interval" | "box" -> Some Box
  | "octagon" -> Some Octagon
  | "affine" -> Some Affine
  | "product" -> Some Product
  | _ -> None

let domain_to_string = function
  | Box -> "interval"
  | Octagon -> "octagon"
  | Affine -> "affine"
  | Product -> "product"

let all_domains = [ "interval"; "octagon"; "affine"; "product" ]

type t = { dom : domain; oct : Oct.t; aff : Affine.t }

(* lazy so interval-only runs leave the telemetry registry untouched *)
let sp_relational = lazy (Pperf_obs.Obs.span "absint.relational")
let c_widenings = lazy (Pperf_obs.Obs.counter "absint.relational.widenings")

let has_oct d = d = Octagon || d = Product
let has_aff d = d = Affine || d = Product

let top dom = { dom; oct = Oct.top; aff = Affine.top }
let domain t = t.dom
let is_bot t = Oct.is_bot t.oct || Affine.is_bot t.aff
let is_top t = Oct.is_top t.oct && Affine.is_top t.aff
let equal a b = Oct.equal a.oct b.oct && Affine.equal a.aff b.aff

let join a b =
  if a.dom = Box then a
  else { a with oct = Oct.join a.oct b.oct; aff = Affine.join a.aff b.aff }

let widen ?thresholds a b =
  if a.dom = Box then a
  else (
    Pperf_obs.Obs.incr (Lazy.force c_widenings);
    { a with oct = Oct.widen ?thresholds a.oct b.oct; aff = Affine.widen a.aff b.aff })

let narrow a b =
  if a.dom = Box then a
  else { a with oct = Oct.narrow a.oct b.oct; aff = Affine.narrow a.aff b.aff }

let forget t x =
  if t.dom = Box then t
  else { t with oct = Oct.forget t.oct x; aff = Affine.forget t.aff x }

(* light reduction: exchange the facts each component can express *)
let reduce t =
  if t.dom <> Product || is_bot t then t
  else (
    (* affine x = ±y + c and x = c rows sharpen the octagon *)
    let oct =
      List.fold_left
        (fun oct (f : Lin.t) ->
          match f.terms with
          | [ _ ] | [ _; _ ] -> Oct.meet_eq oct f
          | _ -> oct)
        t.oct (Affine.rows t.aff)
    in
    (* octagon point values become rows *)
    let aff =
      List.fold_left
        (fun aff x ->
          match Interval.is_point (Oct.project oct x) with
          | Some c -> Affine.add_eq aff (Lin.add_const (Rat.neg c) (Lin.var x))
          | None -> aff)
        t.aff (Oct.tracked oct)
    in
    { t with oct; aff })

let lin_of ~aff p = Lin.of_poly (Affine.reduce_poly aff p)

let assign ~ivb t x p =
  if t.dom = Box then t
  else (
    let rhs = Option.bind p (lin_of ~aff:t.aff) in
    let rhs_oct = if has_oct t.dom then rhs else None in
    let rhs_aff = if has_aff t.dom then rhs else None in
    reduce
      {
        t with
        oct = Oct.assign ~ivb t.oct x rhs_oct;
        aff = Affine.assign t.aff x rhs_aff;
      })

let assume_le ~ivb t p =
  if t.dom = Box then t
  else
    match lin_of ~aff:t.aff p with
    | None -> t
    | Some l ->
      let t' = if has_oct t.dom then { t with oct = Oct.meet_le ~ivb t.oct l } else t in
      (match Lin.is_const (Affine.reduce_lin t'.aff l) with
      | Some c when Rat.sign c > 0 -> { t' with aff = Affine.bot }
      | _ -> t')

let assume_eq ~ivb t p =
  if t.dom = Box then t
  else
    match lin_of ~aff:t.aff p with
    | None -> t
    | Some l ->
      reduce
        {
          t with
          oct = (if has_oct t.dom then Oct.meet_eq ~ivb t.oct l else t.oct);
          aff = (if has_aff t.dom then Affine.add_eq t.aff l else t.aff);
        }

let assume_cons t (c : Lin.cons) =
  if t.dom = Box then t
  else if c.is_eq then
    reduce
      {
        t with
        oct = (if has_oct t.dom then Oct.meet_eq t.oct c.lhs else t.oct);
        aff = (if has_aff t.dom then Affine.add_eq t.aff c.lhs else t.aff);
      }
  else if has_oct t.dom then { t with oct = Oct.meet_le t.oct c.lhs }
  else t

let imeet a b = match Interval.intersect a b with Some i -> i | None -> a

let bound ~ivb t p =
  if t.dom = Box then Interval.full
  else (
    let reduced = Affine.reduce_poly t.aff p in
    let env =
      List.fold_left (fun e x -> Interval.Env.add x (ivb x) e) Interval.Env.empty
        (Poly.vars reduced)
    in
    let iv = Interval.eval_poly env reduced in
    match Lin.of_poly reduced with
    | Some l when has_oct t.dom -> imeet (Oct.bound ~ivb t.oct l) iv
    | _ -> iv)

let project t x = imeet (Oct.project t.oct x) (Affine.project t.aff x)
let rewrites t = Affine.rewrites t.aff
let reduce_poly t p = Affine.reduce_poly t.aff p
let constraints t =
  (* under Product an equality can surface from both components (an affine
     row and a fused octagon pair); keep the first rendering *)
  let same (a : Lin.cons) (b : Lin.cons) =
    Lin.cons_equal a b
    || (a.is_eq && b.is_eq && Lin.equal a.lhs (Lin.neg b.lhs))
  in
  List.fold_left
    (fun acc c -> if List.exists (same c) acc then acc else c :: acc)
    []
    (Affine.constraints t.aff @ Oct.constraints t.oct)
  |> List.rev
let entails t c = Oct.entails t.oct c || Affine.entails t.aff c

let unconstrained t x =
  (not (has_oct t.dom) || Oct.unconstrained t.oct x)
  && ((not (has_aff t.dom)) || Affine.unconstrained t.aff x)

let satisfies f t = Oct.satisfies f t.oct && Affine.satisfies f t.aff
