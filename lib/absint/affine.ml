open Pperf_num
open Pperf_symbolic

(* Rows are linear forms [f = 0], each with unit leading coefficient,
   sorted by leading variable, leading variables eliminated everywhere
   else. *)
type t = Bot | Rows of Lin.t list

let top = Rows []
let bot = Bot
let is_bot t = t = Bot
let is_top t = t = Rows []

let lead (f : Lin.t) =
  match f.terms with (_, x) :: _ -> x | [] -> invalid_arg "Affine.lead"

let reduce_form rows (l : Lin.t) =
  (* leading variables occur in exactly one row each, so one pass is a
     full reduction *)
  List.fold_left
    (fun l f ->
      let c = Lin.coeff (lead f) l in
      if Rat.is_zero c then l else Lin.sub l (Lin.scale c f))
    l rows

let reduce_lin t l = match t with Bot -> l | Rows rows -> reduce_form rows l

(* Insert a (not yet reduced) form. *)
let add_eq t lin =
  match t with
  | Bot -> Bot
  | Rows rows -> (
    let l = reduce_form rows lin in
    match l.terms with
    | [] -> if Rat.is_zero l.const then t else Bot
    | (a, x) :: _ ->
      let f = Lin.scale (Rat.inv a) l in
      let rows =
        List.map
          (fun g ->
            let c = Lin.coeff x g in
            if Rat.is_zero c then g else Lin.sub g (Lin.scale c f))
          rows
      in
      let rec insert = function
        | [] -> [ f ]
        | g :: tl ->
          if String.compare x (lead g) < 0 then f :: g :: tl else g :: insert tl
      in
      Rows (insert rows))

let of_forms forms = List.fold_left add_eq top forms
let meet a b = match (a, b) with Bot, _ | _, Bot -> Bot | Rows _, Rows rb -> List.fold_left add_eq a rb

let rows = function Bot -> [] | Rows rows -> rows

let equal a b =
  match (a, b) with
  | Bot, Bot -> true
  | Bot, _ | _, Bot -> false
  | Rows ra, Rows rb -> List.length ra = List.length rb && List.for_all2 Lin.equal ra rb

(* ---------- join: affine hull via rowspace intersection ---------- *)

(* An affine functional vanishing on both row sets' solution spaces is one
   in the intersection of their spans: Zassenhaus block elimination on
   [[A|A];[B|0]] — reduced rows with a zero left block carry intersection
   vectors in their right block. *)
let join a b =
  match (a, b) with
  | Bot, t | t, Bot -> t
  | Rows ra, Rows rb ->
    if equal a b then a
    else (
      let vars =
        List.sort_uniq String.compare
          (List.concat_map Lin.vars ra @ List.concat_map Lin.vars rb)
      in
      let n = List.length vars in
      let dimv = n + 1 in
      let pos = Hashtbl.create 16 in
      List.iteri (fun i x -> Hashtbl.add pos x i) vars;
      let vec_of (f : Lin.t) =
        let v = Array.make dimv Rat.zero in
        List.iter (fun (c, x) -> v.(Hashtbl.find pos x) <- c) f.terms;
        v.(n) <- f.const;
        v
      in
      let width = 2 * dimv in
      let rows_m =
        List.map
          (fun f ->
            let v = vec_of f in
            Array.append v v)
          ra
        @ List.map (fun f -> Array.append (vec_of f) (Array.make dimv Rat.zero)) rb
      in
      let mat = Array.of_list rows_m in
      let nrows = Array.length mat in
      (* plain Gaussian elimination, left-to-right *)
      let rank = ref 0 in
      for col = 0 to width - 1 do
        if !rank < nrows then (
          let piv = ref (-1) in
          for r = !rank to nrows - 1 do
            if !piv < 0 && not (Rat.is_zero mat.(r).(col)) then piv := r
          done;
          if !piv >= 0 then (
            let tmp = mat.(!rank) in
            mat.(!rank) <- mat.(!piv);
            mat.(!piv) <- tmp;
            let p = mat.(!rank).(col) in
            for r = 0 to nrows - 1 do
              if r <> !rank && not (Rat.is_zero mat.(r).(col)) then (
                let k = Rat.div mat.(r).(col) p in
                for c = col to width - 1 do
                  mat.(r).(c) <- Rat.sub mat.(r).(c) (Rat.mul k mat.(!rank).(c))
                done)
            done;
            incr rank))
      done;
      let lin_of_right v =
        let terms = List.mapi (fun i x -> (v.(dimv + i), x)) vars in
        Lin.of_terms terms v.(dimv + n)
      in
      let inter = ref [] in
      Array.iter
        (fun v ->
          let left_zero = ref true in
          for c = 0 to dimv - 1 do
            if not (Rat.is_zero v.(c)) then left_zero := false
          done;
          if !left_zero then (
            let l = lin_of_right v in
            match Lin.is_const l with
            | Some c when Rat.is_zero c -> ()
            | _ -> inter := l :: !inter))
        mat;
      of_forms !inter)

let widen = join
let narrow = meet

(* ---------- forget / assign ---------- *)

let forget t x =
  match t with
  | Bot -> Bot
  | Rows rws ->
    if not (List.exists (Lin.mem_var x) rws) then t
    else (
      (* eliminate x with one pivot row, drop the pivot *)
      let pivot = List.find (Lin.mem_var x) rws in
      let px = Lin.coeff x pivot in
      let rest =
        List.filter (fun g -> g != pivot) rws
        |> List.map (fun g ->
               let c = Lin.coeff x g in
               if Rat.is_zero c then g
               else Lin.sub g (Lin.scale (Rat.div c px) pivot))
      in
      of_forms rest)

let ghost = "%old"

let assign t x rhs =
  match t with
  | Bot -> Bot
  | Rows rws -> (
    match rhs with
    | None -> forget t x
    | Some (e : Lin.t) ->
      if not (Lin.mem_var x e) then
        add_eq (forget t x) (Lin.sub (Lin.var x) e)
      else (
        (* invertible-ish update: route the old value through a ghost *)
        let renamed = List.map (Lin.rename x ghost) rws in
        let e' = Lin.rename x ghost e in
        match add_eq (of_forms renamed) (Lin.sub (Lin.var x) e') with
        | Bot -> Bot
        | t' -> forget t' ghost))

(* ---------- inspection ---------- *)

let project t x =
  match t with
  | Bot -> Interval.full
  | Rows rws -> (
    match List.find_opt (fun f -> lead f = x) rws with
    | Some { Lin.terms = [ (a, y) ]; const }
      when y = x && Rat.equal a Rat.one ->
      Interval.point (Rat.neg const)
    | _ -> Interval.full)

let rewrites t =
  match t with
  | Bot -> []
  | Rows rws ->
    List.map
      (fun f ->
        let x = lead f in
        (x, Lin.to_poly (Lin.neg (Lin.drop_var x f))))
      rws

let reduce_poly t p =
  List.fold_left
    (fun p (x, q) ->
      if Poly.mem_var x p && Poly.min_degree_in x p >= 0 then Poly.subst x q p else p)
    p (rewrites t)

let constraints t =
  match t with Bot -> [] | Rows rws -> List.map (fun f -> { Lin.lhs = f; is_eq = true }) rws

let entails t (c : Lin.cons) =
  match t with
  | Bot -> true
  | Rows rows -> (
    let r = reduce_form rows c.lhs in
    match Lin.is_const r with
    | Some v -> if c.is_eq then Rat.is_zero v else Rat.sign v <= 0
    | None -> false)

let unconstrained t x =
  match t with Bot -> false | Rows rws -> not (List.exists (Lin.mem_var x) rws)

let satisfies f t =
  match t with
  | Bot -> false
  | Rows rws -> List.for_all (fun r -> Rat.is_zero (Lin.eval f r)) rws
