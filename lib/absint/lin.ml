open Pperf_num
open Pperf_symbolic

type t = { terms : (Rat.t * string) list; const : Rat.t }

let norm terms =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (a, x) ->
      let cur = match Hashtbl.find_opt tbl x with Some c -> c | None -> Rat.zero in
      Hashtbl.replace tbl x (Rat.add cur a))
    terms;
  Hashtbl.fold (fun x a acc -> if Rat.is_zero a then acc else (a, x) :: acc) tbl []
  |> List.sort (fun (_, x) (_, y) -> String.compare x y)

let of_terms terms const = { terms = norm terms; const }
let zero = { terms = []; const = Rat.zero }
let const c = { terms = []; const = c }
let var x = { terms = [ (Rat.one, x) ]; const = Rat.zero }
let is_const l = match l.terms with [] -> Some l.const | _ -> None
let coeff x l =
  match List.find_opt (fun (_, y) -> y = x) l.terms with
  | Some (a, _) -> a
  | None -> Rat.zero

let vars l = List.map snd l.terms
let mem_var x l = List.exists (fun (_, y) -> y = x) l.terms
let neg l = { terms = List.map (fun (a, x) -> (Rat.neg a, x)) l.terms; const = Rat.neg l.const }
let add a b = of_terms (a.terms @ b.terms) (Rat.add a.const b.const)
let sub a b = add a (neg b)

let scale k l =
  if Rat.is_zero k then zero
  else { terms = List.map (fun (a, x) -> (Rat.mul k a, x)) l.terms; const = Rat.mul k l.const }

let add_const c l = { l with const = Rat.add l.const c }
let drop_var x l = { l with terms = List.filter (fun (_, y) -> y <> x) l.terms }

let rename x y l =
  of_terms (List.map (fun (a, v) -> (a, if v = x then y else v)) l.terms) l.const

let of_poly p =
  let exception Not_affine in
  try
    let terms, const =
      List.fold_left
        (fun (ts, c) (a, m) ->
          match Monomial.to_list m with
          | [] -> (ts, Rat.add c a)
          | [ (x, 1) ] -> ((a, x) :: ts, c)
          | _ -> raise Not_affine)
        ([], Rat.zero) (Poly.terms p)
    in
    Some (of_terms terms const)
  with Not_affine -> None

let to_poly l =
  List.fold_left
    (fun acc (a, x) -> Poly.add acc (Poly.scale a (Poly.var x)))
    (Poly.const l.const) l.terms

let eval f l =
  List.fold_left (fun acc (a, x) -> Rat.add acc (Rat.mul a (f x))) l.const l.terms

let eval_iv f l =
  List.fold_left
    (fun acc (a, x) -> Interval.add acc (Interval.scale a (f x)))
    (Interval.point l.const) l.terms

let equal a b =
  Rat.equal a.const b.const
  && List.length a.terms = List.length b.terms
  && List.for_all2 (fun (c, x) (d, y) -> x = y && Rat.equal c d) a.terms b.terms

type cons = { lhs : t; is_eq : bool }

let cons_equal a b = a.is_eq = b.is_eq && equal a.lhs b.lhs

let to_string l =
  let term_str first a x =
    let sign = if Rat.sign a < 0 then "- " else if first then "" else "+ " in
    let mag = Rat.abs a in
    if Rat.equal mag Rat.one then Printf.sprintf "%s%s" sign x
    else Printf.sprintf "%s%s*%s" sign (Rat.to_string mag) x
  in
  match l.terms with
  | [] -> Rat.to_string l.const
  | (a0, x0) :: rest ->
    let buf = Buffer.create 32 in
    Buffer.add_string buf (term_str true a0 x0);
    List.iter
      (fun (a, x) ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf (term_str false a x))
      rest;
    if not (Rat.is_zero l.const) then (
      Buffer.add_string buf (if Rat.sign l.const < 0 then " - " else " + ");
      Buffer.add_string buf (Rat.to_string (Rat.abs l.const)));
    Buffer.contents buf

let cons_to_string c =
  if c.is_eq then (
    match c.lhs.terms with
    | (a, x) :: _ ->
      (* solve for the leading variable: a*x + rest = 0  =>  x = -rest/a *)
      let rhs = scale (Rat.neg (Rat.inv a)) (drop_var x c.lhs) in
      Printf.sprintf "%s = %s" x (to_string rhs)
    | [] -> Printf.sprintf "%s = 0" (Rat.to_string c.lhs.const))
  else
    Printf.sprintf "%s <= %s"
      (to_string { c.lhs with const = Rat.zero })
      (Rat.to_string (Rat.neg c.lhs.const))
