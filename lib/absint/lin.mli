(** Affine linear forms over exact rationals: [Σ aᵢ·xᵢ + c].

    The shared currency of the relational domains: octagon constraints,
    affine-equality rows, and the bridge to {!Pperf_symbolic.Poly}
    performance polynomials (a form converts exactly when the polynomial
    has total degree at most one). *)

open Pperf_num
open Pperf_symbolic

type t = {
  terms : (Rat.t * string) list;  (** sorted by variable, coefficients nonzero *)
  const : Rat.t;
}

val zero : t
val const : Rat.t -> t
val var : string -> t
val of_terms : (Rat.t * string) list -> Rat.t -> t

val of_poly : Poly.t -> t option
(** [Some l] exactly when the polynomial is affine (total degree <= 1). *)

val to_poly : t -> Poly.t
val is_const : t -> Rat.t option
val coeff : string -> t -> Rat.t
val vars : t -> string list
val mem_var : string -> t -> bool

val neg : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val scale : Rat.t -> t -> t
val add_const : Rat.t -> t -> t
val drop_var : string -> t -> t
(** Remove the variable's term (not a sound transfer by itself — callers
    account for the dropped term separately). *)

val rename : string -> string -> t -> t
val eval : (string -> Rat.t) -> t -> Rat.t
val eval_iv : (string -> Interval.t) -> t -> Interval.t
(** Sound interval enclosure under per-variable bounds. *)

val equal : t -> t -> bool
val to_string : t -> string
(** Render as a constraint-friendly sum, e.g. ["i - n + 1"]. *)

type cons = { lhs : t; is_eq : bool }
(** A linear constraint [lhs <= 0] (or [lhs = 0] when [is_eq]). *)

val cons_equal : cons -> cons -> bool
val cons_to_string : cons -> string
(** Human form: inequalities as ["i - n <= -1"] (constant moved right),
    equalities solved for their leading variable as ["m = 2*n"]. *)
