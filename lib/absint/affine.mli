(** The affine-equality abstract domain (Karr): conjunctions of exact
    equations [x = Σ aᵢ·yᵢ + c] over rationals.

    Rows are linear forms [f = 0] in fully reduced echelon form — each row
    normalized to a unit leading coefficient, the leading variable of each
    row eliminated from every other row — so equality is structural and
    every leading variable has a closed-form rewrite in terms of
    non-leading ones. Chains are finite (each join can only drop rows), so
    [join] doubles as the widening. *)

open Pperf_num
open Pperf_symbolic

type t

val top : t
val bot : t
val is_bot : t -> bool
val is_top : t -> bool
val equal : t -> t -> bool

val add_eq : t -> Lin.t -> t
(** Assume [lin = 0]; {!bot} when it contradicts the rows. *)

val meet : t -> t -> t
val join : t -> t -> t
(** Affine hull: the equalities holding in both operands (rowspace
    intersection, Zassenhaus block elimination). *)

val widen : t -> t -> t
(** [join] — the domain has no infinite ascending chains. *)

val narrow : t -> t -> t
(** [meet] — descending chains are finite too, so one pass is safe. *)

val assign : t -> string -> Lin.t option -> t
(** Strongest post of [x := e]; invertible updates ([x] on both sides) are
    handled exactly via a ghost name, [None] forgets [x]. *)

val forget : t -> string -> t
val project : t -> string -> Interval.t
(** The point interval when the rows pin [x] to a constant, else full. *)

val rows : t -> Lin.t list
val rewrites : t -> (string * Poly.t) list
(** One rewrite per row: leading variable to its affine right-hand side
    (right-hand sides never mention leading variables). *)

val reduce_poly : t -> Poly.t -> Poly.t
(** Substitute every rewrite — exact on any polynomial, e.g. [m = 2*n]
    turns [m·n] into [2·n²]. *)

val reduce_lin : t -> Lin.t -> Lin.t
val constraints : t -> Lin.cons list
val entails : t -> Lin.cons -> bool
val unconstrained : t -> string -> bool
val satisfies : (string -> Rat.t) -> t -> bool
