(** Reduced product of the relational domains, switched by {!domain}.

    [Box] is the degenerate no-relations element (both components top,
    every transfer a no-op) so the interval-only analysis pays nothing;
    [Octagon] and [Affine] run one component; [Product] runs both with a
    light reduction after each transfer (affine [x = ±y + c] rows feed the
    octagon, octagon point projections feed the rows). All transfers take
    [~ivb], the interval component's per-variable bounds, to bound
    residuals the relational domains cannot express. *)

open Pperf_num
open Pperf_symbolic

type domain = Box | Octagon | Affine | Product

val domain_of_string : string -> domain option
(** CLI spelling: interval | octagon | affine | product. *)

val domain_to_string : domain -> string
val all_domains : string list

type t

val top : domain -> t
val domain : t -> domain
val is_bot : t -> bool
val is_top : t -> bool
val equal : t -> t -> bool
val join : t -> t -> t

val widen : ?thresholds:Rat.t list -> t -> t -> t
(** Octagon bounds widen through the thresholds; affine rows join (finite
    chains). Bumps the [absint.relational.widenings] counter. *)

val narrow : t -> t -> t
val forget : t -> string -> t

val assign : ivb:(string -> Interval.t) -> t -> string -> Poly.t option -> t
(** Affine right-hand sides transfer exactly (after rewriting through the
    affine rows, so e.g. [k := m - 2*n] is constant under [m = 2*n]);
    anything else forgets the target. *)

val assume_le : ivb:(string -> Interval.t) -> t -> Poly.t -> t
(** Assume [p <= 0] (no-op when [p] is not affine modulo the rows). *)

val assume_eq : ivb:(string -> Interval.t) -> t -> Poly.t -> t

val assume_cons : t -> Lin.cons -> t
(** Re-assume a harvested constraint (summary reconstruction). *)

val bound : ivb:(string -> Interval.t) -> t -> Poly.t -> Interval.t
(** Sound enclosure of the polynomial: rewrite through the affine rows,
    then the octagon bound meets the interval evaluation of the rewritten
    form. Never wider than evaluating the rewritten polynomial alone. *)

val project : t -> string -> Interval.t
val rewrites : t -> (string * Poly.t) list
val reduce_poly : t -> Poly.t -> Poly.t
val constraints : t -> Lin.cons list
(** Displayable facts: affine rows plus binary octagon constraints
    strictly tighter than the unary bounds. *)

val entails : t -> Lin.cons -> bool
val unconstrained : t -> string -> bool
(** Neither component holds any fact mentioning the variable. *)

val satisfies : (string -> Rat.t) -> t -> bool
val sp_relational : Pperf_obs.Obs.span Lazy.t
(** The [absint.relational] span; {!Absint} times relational transfer
    batches under the fixpoint span with it. Lazy (like the octagon and
    widening counters) so interval-only runs never register it. *)
