open Pperf_num
open Pperf_symbolic
open Pperf_lang
module Env = Interval.Env

type domain = Reldom.domain = Box | Octagon | Affine | Product

let domain_of_string = Reldom.domain_of_string
let domain_to_string = Reldom.domain_to_string
let all_domains = Reldom.all_domains

type loop_range = {
  at : Srcloc.t;
  lvar : string;
  index : Interval.t;
  trip : Interval.t;
  depth : int;
}

type result = {
  at_stmt : (Srcloc.t, Env.t) Hashtbl.t;
  rel_stmt : (Srcloc.t, Reldom.t) Hashtbl.t;
  loop_ranges : loop_range list;
  exit_env : Env.t;
  summary_env : Env.t;
  exit_rel : Reldom.t;
  sum_rel : Reldom.t;
  dom : domain;
}

(* ---------- bounds (Interval exposes the bound constructors) ---------- *)

let bcmp a b =
  match (a, b) with
  | Interval.Neg_inf, Interval.Neg_inf | Interval.Pos_inf, Interval.Pos_inf -> 0
  | Interval.Neg_inf, _ -> -1
  | _, Interval.Neg_inf -> 1
  | Interval.Pos_inf, _ -> 1
  | _, Interval.Pos_inf -> -1
  | Interval.Fin x, Interval.Fin y -> Rat.compare x y

let bmin a b = if bcmp a b <= 0 then a else b
let bmax a b = if bcmp a b >= 0 then a else b
let bneg = function
  | Interval.Neg_inf -> Interval.Pos_inf
  | Interval.Pos_inf -> Interval.Neg_inf
  | Interval.Fin x -> Interval.Fin (Rat.neg x)

let lo_ge_zero iv = bcmp (Interval.lo iv) (Fin Rat.zero) >= 0
let hi_le_zero iv = bcmp (Interval.hi iv) (Fin Rat.zero) <= 0

(* ---------- environment lattice ---------- *)

let domain_of a b =
  List.sort_uniq String.compare
    (List.map fst (Env.bindings a) @ List.map fst (Env.bindings b))

let env_merge f a b =
  List.fold_left
    (fun acc x -> Env.add x (f (Env.find x a) (Env.find x b)) acc)
    Env.empty (domain_of a b)

let join_env a b = env_merge Interval.union a b
let c_widen = Pperf_obs.Obs.counter "absint.widenings"

let widen_env a b =
  Pperf_obs.Obs.incr c_widen;
  env_merge Interval.widen a b
let narrow_env a b = env_merge Interval.narrow a b

let env_equal a b =
  List.for_all
    (fun x -> Interval.equal (Env.find x a) (Env.find x b))
    (domain_of a b)

let strip env =
  List.fold_left
    (fun acc (x, iv) -> if Interval.is_full iv then acc else Env.add x iv acc)
    Env.empty (Env.bindings env)

let restrict env ~keep =
  List.fold_left
    (fun acc (x, iv) -> if keep x then Env.add x iv acc else acc)
    Env.empty (Env.bindings env)

(* ---------- expression evaluation ---------- *)

let imin a b =
  Interval.make (bmin (Interval.lo a) (Interval.lo b)) (bmin (Interval.hi a) (Interval.hi b))

let imax a b =
  Interval.make (bmax (Interval.lo a) (Interval.lo b)) (bmax (Interval.hi a) (Interval.hi b))

let iabs a =
  if lo_ge_zero a then a
  else if hi_le_zero a then Interval.neg a
  else Interval.make (Fin Rat.zero) (bmax (bneg (Interval.lo a)) (Interval.hi a))

let rec eval env (e : Ast.expr) : Interval.t =
  match Sym_expr.to_poly e with
  | Some p -> Interval.eval_poly env p
  | None -> eval_raw env e

and eval_raw env e =
  match e with
  | Ast.Int i -> Interval.of_int i
  | Ast.Real (f, _) -> (
    try Interval.point (Rat.of_float f) with Invalid_argument _ -> Interval.full)
  | Ast.Logical _ -> Interval.full
  | Ast.Var x -> Env.find x env
  | Ast.Index _ -> Interval.full
  | Ast.Unop (Ast.Neg, a) -> Interval.neg (eval env a)
  | Ast.Unop (Ast.Not, _) -> Interval.full
  | Ast.Binop (Ast.Add, a, b) -> Interval.add (eval env a) (eval env b)
  | Ast.Binop (Ast.Sub, a, b) -> Interval.sub (eval env a) (eval env b)
  | Ast.Binop (Ast.Mul, a, b) -> Interval.mul (eval env a) (eval env b)
  | Ast.Binop (Ast.Div, a, b) -> (
    let ia = eval env a and ib = eval env b in
    try Interval.mul ia (Interval.pow ib (-1)) with Division_by_zero -> Interval.full)
  | Ast.Binop (Ast.Pow, a, b) -> (
    match Interval.is_point (eval env b) with
    | Some k -> (
      match Rat.to_int k with
      | Some n -> ( try Interval.pow (eval env a) n with Division_by_zero -> Interval.full)
      | None -> Interval.full)
    | None -> Interval.full)
  | Ast.Binop ((Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.And | Ast.Or), _, _)
    ->
    Interval.full
  | Ast.Call (fn, args) -> eval_call (String.lowercase_ascii fn) (List.map (eval env) args)

and eval_call fn args =
  match (fn, args) with
  | ("min" | "min0" | "amin1" | "dmin1"), a :: rest -> List.fold_left imin a rest
  | ("max" | "max0" | "amax1" | "dmax1"), a :: rest -> List.fold_left imax a rest
  | ("abs" | "iabs" | "dabs"), [ a ] -> iabs a
  | "mod", [ a; b ] -> (
    match Interval.is_point b with
    | Some k when Rat.is_integer k && Rat.sign k > 0 ->
      let km1 = Rat.sub k Rat.one in
      if lo_ge_zero a then Interval.of_rats Rat.zero km1
      else Interval.of_rats (Rat.neg km1) km1
    | _ -> Interval.full)
  | ("sqrt" | "dsqrt" | "exp" | "dexp"), [ _ ] -> Interval.nonneg
  | ("float" | "real" | "dble"), [ a ] -> a
  | ("int" | "nint" | "ifix"), [ a ] ->
    (* truncation lands between 0 and the operand *)
    Interval.union (Interval.point Rat.zero) a
  | _ -> Interval.full

let eval_expr = eval

(* ---------- condition refinement ---------- *)

exception Infeasible

type cmp = Cle | Clt | Cge | Cgt | Ceq

let is_int_var symtab x =
  match Typecheck.lookup symtab x with
  | Some (s : Typecheck.sym) -> s.ty = Ast.Tint
  | None -> false

let int_floor r = Rat.of_bigint (Rat.floor r)
let int_ceil r = Rat.of_bigint (Rat.ceil r)

let constrain_upper ~strict ~is_int env x v =
  let ub =
    if is_int then
      if strict then Rat.sub (int_ceil v) Rat.one else int_floor v
    else v
  in
  let cur = Env.find x env in
  match Interval.intersect cur (Interval.make Neg_inf (Fin ub)) with
  | Some iv -> Env.add x iv env
  | None -> raise Infeasible

let constrain_lower ~strict ~is_int env x v =
  let lb =
    if is_int then
      if strict then Rat.add (int_floor v) Rat.one else int_ceil v
    else v
  in
  let cur = Env.find x env in
  match Interval.intersect cur (Interval.make (Fin lb) Pos_inf) with
  | Some iv -> Env.add x iv env
  | None -> raise Infeasible

(* Constrain [a*x + rest cmp 0] given an enclosure of [rest]: from
   [a*x <= -rest] and [rest >= rest_lo] deduce [x <= -rest_lo / a] (for
   [a > 0]), and the three mirrored cases. *)
let refine_var symtab env x a rest_iv cmp =
  let is_int = is_int_var symtab x in
  let upper env strict =
    match Interval.lo rest_iv with
    | Fin rl -> (
      let v = Rat.div (Rat.neg rl) a in
      if Rat.sign a > 0 then constrain_upper ~strict ~is_int env x v
      else constrain_lower ~strict ~is_int env x v)
    | _ -> env
  in
  let lower env strict =
    match Interval.hi rest_iv with
    | Fin rh -> (
      let v = Rat.div (Rat.neg rh) a in
      if Rat.sign a > 0 then constrain_lower ~strict ~is_int env x v
      else constrain_upper ~strict ~is_int env x v)
    | _ -> env
  in
  match cmp with
  | Cle -> upper env false
  | Clt -> upper env true
  | Cge -> lower env false
  | Cgt -> lower env true
  | Ceq -> lower (upper env false) false

(* Constrain [d cmp 0] by refining every variable linear in [d]. Refined
   variables feed the enclosure of the residual for the next one, so
   [if (i <= n - 1)] tightens both [i] (up) and [n] (down). *)
let refine_cmp symtab env cmp (d : Poly.t) =
  List.fold_left
    (fun env x ->
      let coeffs = Poly.coeffs_in x d in
      let higher = List.exists (fun (k, _) -> k <> 0 && k <> 1) coeffs in
      match (List.assoc_opt 1 coeffs, higher) with
      | Some c1, false -> (
        match Poly.to_const c1 with
        | Some a when not (Rat.is_zero a) ->
          let rest =
            match List.assoc_opt 0 coeffs with Some r -> r | None -> Poly.zero
          in
          refine_var symtab env x a (Interval.eval_poly env rest) cmp
        | _ -> env)
      | _ -> env)
    env (Poly.vars d)

let surely_false op di =
  match op with
  | Ast.Le -> bcmp (Interval.lo di) (Fin Rat.zero) > 0
  | Ast.Lt -> lo_ge_zero di
  | Ast.Ge -> bcmp (Interval.hi di) (Fin Rat.zero) < 0
  | Ast.Gt -> hi_le_zero di
  | Ast.Eq -> not (Interval.contains di Rat.zero)
  | Ast.Ne -> ( match Interval.is_point di with Some p -> Rat.is_zero p | None -> false)
  | _ -> false

let cmp_of = function
  | Ast.Le -> Cle
  | Ast.Lt -> Clt
  | Ast.Ge -> Cge
  | Ast.Gt -> Cgt
  | Ast.Eq -> Ceq
  | _ -> invalid_arg "Absint.cmp_of"

let rec assume symtab env cond =
  match cond with
  | Ast.Logical true -> Some env
  | Ast.Logical false -> None
  | Ast.Unop (Ast.Not, c) -> assume_not symtab env c
  | Ast.Binop (Ast.And, a, b) ->
    Option.bind (assume symtab env a) (fun e -> assume symtab e b)
  | Ast.Binop (Ast.Or, a, b) -> (
    match (assume symtab env a, assume symtab env b) with
    | None, r | r, None -> r
    | Some x, Some y -> Some (join_env x y))
  | Ast.Binop ((Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge) as op, a, b) -> (
    match Sym_expr.to_poly (Ast.Binop (Ast.Sub, a, b)) with
    | None -> Some env
    | Some d ->
      if surely_false op (Interval.eval_poly env d) then None
      else if op = Ast.Ne then Some env
      else ( try Some (refine_cmp symtab env (cmp_of op) d) with Infeasible -> None))
  | _ -> Some env

and assume_not symtab env c =
  match c with
  | Ast.Logical b -> if b then None else Some env
  | Ast.Unop (Ast.Not, c') -> assume symtab env c'
  | Ast.Binop (Ast.And, a, b) -> (
    match (assume_not symtab env a, assume_not symtab env b) with
    | None, r | r, None -> r
    | Some x, Some y -> Some (join_env x y))
  | Ast.Binop (Ast.Or, a, b) ->
    Option.bind (assume_not symtab env a) (fun e -> assume_not symtab e b)
  | Ast.Binop (Ast.Eq, a, b) -> assume symtab env (Ast.Binop (Ast.Ne, a, b))
  | Ast.Binop (Ast.Ne, a, b) -> assume symtab env (Ast.Binop (Ast.Eq, a, b))
  | Ast.Binop (Ast.Lt, a, b) -> assume symtab env (Ast.Binop (Ast.Ge, a, b))
  | Ast.Binop (Ast.Le, a, b) -> assume symtab env (Ast.Binop (Ast.Gt, a, b))
  | Ast.Binop (Ast.Gt, a, b) -> assume symtab env (Ast.Binop (Ast.Le, a, b))
  | Ast.Binop (Ast.Ge, a, b) -> assume symtab env (Ast.Binop (Ast.Lt, a, b))
  | _ -> Some env

(* Relational counterpart of [assume]: [env] is the (already refined)
   interval box, used to bound residuals the octagon cannot carry. *)
let rec rel_assume symtab env rel cond =
  if Reldom.domain rel = Box then rel
  else (
    let ivb v = Env.find v env in
    match cond with
    | Ast.Unop (Ast.Not, c) -> rel_assume symtab env rel (negate_cond c)
    | Ast.Binop (Ast.And, a, b) -> rel_assume symtab env (rel_assume symtab env rel a) b
    | Ast.Binop (Ast.Or, a, b) ->
      Reldom.join (rel_assume symtab env rel a) (rel_assume symtab env rel b)
    | Ast.Binop ((Ast.Le | Ast.Lt | Ast.Ge | Ast.Gt | Ast.Eq) as op, a, b) -> (
      match Sym_expr.to_poly (Ast.Binop (Ast.Sub, a, b)) with
      | None -> rel
      | Some d ->
        (* strict comparisons tighten by one on all-integer forms *)
        let integral p =
          List.for_all (is_int_var symtab) (Poly.vars p)
          && List.for_all (fun (c, _) -> Rat.is_integer c) (Poly.terms p)
        in
        let bump p = if integral p then Poly.add_const Rat.one p else p in
        (match op with
        | Ast.Le -> Reldom.assume_le ~ivb rel d
        | Ast.Lt -> Reldom.assume_le ~ivb rel (bump d)
        | Ast.Ge -> Reldom.assume_le ~ivb rel (Poly.neg d)
        | Ast.Gt -> Reldom.assume_le ~ivb rel (bump (Poly.neg d))
        | _ -> Reldom.assume_eq ~ivb rel d))
    | _ -> rel)

and negate_cond c =
  match c with
  | Ast.Logical b -> Ast.Logical (not b)
  | Ast.Unop (Ast.Not, c') -> c'
  | Ast.Binop (Ast.And, a, b) -> Ast.Binop (Ast.Or, negate_cond a, negate_cond b)
  | Ast.Binop (Ast.Or, a, b) -> Ast.Binop (Ast.And, negate_cond a, negate_cond b)
  | Ast.Binop ((Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge) as op, a, b) ->
    Ast.Binop (negate_op op, a, b)
  | _ -> Ast.Unop (Ast.Not, c)

and decide_cond ?rel env cond =
  match cond with
  | Ast.Logical b -> Some b
  | Ast.Unop (Ast.Not, c) -> Option.map not (decide_cond ?rel env c)
  | Ast.Binop (Ast.And, a, b) -> (
    match (decide_cond ?rel env a, decide_cond ?rel env b) with
    | Some false, _ | _, Some false -> Some false
    | Some true, Some true -> Some true
    | _ -> None)
  | Ast.Binop (Ast.Or, a, b) -> (
    match (decide_cond ?rel env a, decide_cond ?rel env b) with
    | Some true, _ | _, Some true -> Some true
    | Some false, Some false -> Some false
    | _ -> None)
  | Ast.Binop ((Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge) as op, a, b) ->
    let di =
      match Sym_expr.to_poly (Ast.Binop (Ast.Sub, a, b)) with
      | Some d -> (
        let iv = Interval.eval_poly env d in
        match rel with
        | Some r when Reldom.domain r <> Box -> (
          let ivb v = Env.find v env in
          match Interval.intersect iv (Reldom.bound ~ivb r d) with
          | Some m -> m
          | None -> iv)
        | _ -> iv)
      | None -> Interval.sub (eval env a) (eval env b)
    in
    let surely_true op di = surely_false (negate_op op) di in
    if surely_true op di then Some true
    else if surely_false op di then Some false
    else None
  | _ -> None

and negate_op = function
  | Ast.Eq -> Ast.Ne
  | Ast.Ne -> Ast.Eq
  | Ast.Lt -> Ast.Ge
  | Ast.Le -> Ast.Gt
  | Ast.Gt -> Ast.Le
  | Ast.Ge -> Ast.Lt
  | op -> op

(* ---------- statement transfer ---------- *)

type ctx = {
  symtab : Typecheck.symtab;
  tbl : (Srcloc.t, Env.t) Hashtbl.t;
  rel_tbl : (Srcloc.t, Reldom.t) Hashtbl.t;
  dom : domain;
  thresholds : Rat.t list;
  mutable loops : loop_range list;
  mutable exits : (Env.t * Reldom.t) list;
  mutable depth : int;
}

(* Relational transfers run under their own span so --trace shows the cost
   split out of the enclosing fixpoint. *)
let rtime ctx f =
  if ctx.dom = Box then f ()
  else Pperf_obs.Obs.time (Lazy.force Reldom.sp_relational) f

let record ctx loc env rel =
  (match Hashtbl.find_opt ctx.tbl loc with
  | Some e -> Hashtbl.replace ctx.tbl loc (join_env e env)
  | None -> Hashtbl.add ctx.tbl loc env);
  if ctx.dom <> Box then
    match Hashtbl.find_opt ctx.rel_tbl loc with
    | Some r -> Hashtbl.replace ctx.rel_tbl loc (Reldom.join r rel)
    | None -> Hashtbl.add ctx.rel_tbl loc rel

let join_st (e1, r1) (e2, r2) = (join_env e1 e2, Reldom.join r1 r2)

let assume_st ctx (env, rel) cond =
  match assume ctx.symtab env cond with
  | None -> None
  | Some env' -> Some (env', rtime ctx (fun () -> rel_assume ctx.symtab env' rel cond))

let assume_not_st ctx (env, rel) cond =
  match assume_not ctx.symtab env cond with
  | None -> None
  | Some env' ->
    Some (env', rtime ctx (fun () -> rel_assume ctx.symtab env' rel (negate_cond cond)))

let is_scalar ctx x =
  match Typecheck.lookup ctx.symtab x with
  | Some (s : Typecheck.sym) -> s.dims = []
  | None -> true

let max_iters = 50

let rec exec_stmts ctx ~rec_ st stmts =
  List.fold_left (fun st s -> exec_stmt ctx ~rec_ st s) st stmts

and exec_stmt ctx ~rec_ st (s : Ast.stmt) =
  match st with
  | None -> None
  | Some ((env, rel) as st) -> (
    if rec_ then record ctx s.loc env rel;
    match s.kind with
    | Ast.Assign (lhs, e) ->
      if lhs.subs = [] && is_scalar ctx lhs.base then (
        let rel' =
          rtime ctx (fun () ->
              let ivb v = Env.find v env in
              Reldom.assign ~ivb rel lhs.base (Sym_expr.to_poly e))
        in
        Some (Env.add lhs.base (eval env e) env, rel'))
      else Some st
    | Ast.Call_stmt (_, args) ->
      (* scalars passed by reference may be clobbered by the callee *)
      Some
        (List.fold_left
           (fun (env, rel) a ->
             match a with
             | Ast.Var x when is_scalar ctx x ->
               (Env.add x Interval.full env, Reldom.forget rel x)
             | _ -> (env, rel))
           st args)
    | Ast.Return ->
      if rec_ then ctx.exits <- st :: ctx.exits;
      None
    | Ast.If (branches, els) ->
      let fall = ref (Some st) in
      let outs = ref [] in
      List.iter
        (fun (cond, body) ->
          let enter = Option.bind !fall (fun e -> assume_st ctx e cond) in
          (match exec_stmts ctx ~rec_ enter body with
          | Some o -> outs := o :: !outs
          | None -> ());
          fall := Option.bind !fall (fun e -> assume_not_st ctx e cond))
        branches;
      (match exec_stmts ctx ~rec_ !fall els with
      | Some o -> outs := o :: !outs
      | None -> ());
      (match !outs with
      | [] -> None
      | o :: rest -> Some (List.fold_left join_st o rest))
    | Ast.Do d -> exec_do ctx ~rec_ st s.loc d)

and exec_do ctx ~rec_ (env, rel) loc (d : Ast.do_loop) =
  let lo_iv = eval env d.lo and hi_iv = eval env d.hi in
  let step_expr = match d.step with Some s -> s | None -> Ast.Int 1 in
  let step_iv = eval env step_expr in
  let step_const = Interval.is_point step_iv in
  let step_sign =
    match step_const with
    | Some r -> Rat.sign r
    | None -> ( match Interval.sign step_iv with Pos -> 1 | Neg -> -1 | _ -> 0)
  in
  (* enclosure of the index over all executed iterations; None = provably
     zero-trip *)
  let idx_opt =
    if step_sign > 0 then (
      try Some (Interval.make (Interval.lo lo_iv) (Interval.hi hi_iv))
      with Invalid_argument _ -> None)
    else if step_sign < 0 then (
      try Some (Interval.make (Interval.lo hi_iv) (Interval.hi lo_iv))
      with Invalid_argument _ -> None)
    else Some (Interval.union lo_iv hi_iv)
  in
  let clamp iv =
    match Interval.intersect iv Interval.nonneg with
    | Some t -> t
    | None -> Interval.point Rat.zero
  in
  let trip =
    match idx_opt with
    | None -> Interval.point Rat.zero
    | Some _ -> (
      match step_const with
      | Some s when Rat.sign s <> 0 ->
        (* trip = max 0 (floor ((hi - lo) / s) + 1), evaluated over the box *)
        let t =
          Interval.add
            (Interval.scale (Rat.inv s) (Interval.sub hi_iv lo_iv))
            (Interval.point Rat.one)
        in
        let t =
          match (Interval.lo t, Interval.hi t) with
          | l, Fin h ->
            let fh = Interval.Fin (int_floor h) in
            Interval.make (bmin l fh) fh
          | _ -> t
        in
        clamp t
      | _ -> Interval.nonneg)
  in
  (if rec_ then
     let index = match idx_opt with Some i -> i | None -> Interval.union lo_iv hi_iv in
     ctx.loops <- { at = loc; lvar = d.var; index; trip; depth = ctx.depth } :: ctx.loops);
  match idx_opt with
  | None ->
    (* the body never executes; the index is left at lo *)
    let rel' =
      rtime ctx (fun () ->
          let ivb v = Env.find v env in
          Reldom.assign ~ivb rel d.var (Sym_expr.to_poly d.lo))
    in
    Some (Env.add d.var lo_iv env, rel')
  | Some idx ->
    let entry = env in
    (* Loop-head relational guards [lo <= i <= hi] (mirrored for a negative
       step). Sound only for loop-invariant bounds — Fortran evaluates DO
       bounds once at entry, so the guard may not mention anything the body
       (or the loop itself) assigns. *)
    let mutated =
      Analysis.SSet.add d.var
        (Analysis.SSet.union
           (Analysis.assigned_vars d.body)
           (Analysis.loop_indices d.body))
    in
    let inv_poly e =
      match Sym_expr.to_poly e with
      | Some p when List.for_all (fun x -> not (Analysis.SSet.mem x mutated)) (Poly.vars p)
        ->
        Some p
      | _ -> None
    in
    let guards =
      if ctx.dom = Box || step_sign = 0 then []
      else (
        let ip = Poly.var d.var in
        let pair lo hi =
          (match lo with Some p -> [ Poly.sub p ip ] | None -> [])
          @ (match hi with Some p -> [ Poly.sub ip p ] | None -> [])
        in
        if step_sign > 0 then pair (inv_poly d.lo) (inv_poly d.hi)
        else pair (inv_poly d.hi) (inv_poly d.lo))
    in
    let set_idx_st (env, rel) =
      let env' = Env.add d.var idx env in
      let rel' =
        rtime ctx (fun () ->
            let ivb v = Env.find v env' in
            List.fold_left
              (fun r g -> Reldom.assume_le ~ivb r g)
              (Reldom.forget rel d.var) guards)
      in
      (env', rel')
    in
    let head = ref (set_idx_st (entry, rel)) in
    ctx.depth <- ctx.depth + 1;
    (let continue = ref true and iter = ref 0 in
     while !continue && !iter < max_iters do
       incr iter;
       match exec_stmts ctx ~rec_:false (Some !head) d.body with
       | None -> continue := false
       | Some out ->
         let he, hr = !head in
         let ne, nr = join_st !head (set_idx_st out) in
         if env_equal ne he && Reldom.equal nr hr then continue := false
         else
           head :=
             if !iter >= 3 then
               (widen_env he ne, Reldom.widen ~thresholds:ctx.thresholds hr nr)
             else (ne, nr)
     done);
    (* one narrowing pass to recover bounds widening discarded *)
    (match exec_stmts ctx ~rec_:false (Some !head) d.body with
    | Some out ->
      let he, hr = !head in
      let ne, nr = join_st (set_idx_st (entry, rel)) (set_idx_st out) in
      head := (narrow_env he ne, Reldom.narrow hr nr)
    | None -> ());
    let out = exec_stmts ctx ~rec_ (Some !head) d.body in
    ctx.depth <- ctx.depth - 1;
    let after_base, after_rel =
      match out with
      | None -> (entry, rel)
      | Some (oe, orl) -> (join_env entry oe, Reldom.join rel orl)
    in
    (* the index's exit value is not one of the in-loop values the
       relational facts were proved for *)
    let after_rel = rtime ctx (fun () -> Reldom.forget after_rel d.var) in
    let idx_after =
      match step_const with
      | Some s ->
        (* exit value lies in (hi, hi+s] (or [hi+s, hi) downward), plus lo
           when the loop runs zero times *)
        let sstep = Interval.of_rats (Rat.min Rat.zero s) (Rat.max Rat.zero s) in
        Interval.union lo_iv (Interval.add hi_iv sstep)
      | None -> Interval.full
    in
    Some (Env.add d.var idx_after after_base, after_rel)

(* ---------- seeding and entry point ---------- *)

(* Declared dimension extents are at least one element: [hi - lo >= 0].
   Constrains e.g. [n >= 1] for a parameter array [a(n)]. *)
let seed_env symtab =
  List.fold_left
    (fun env (_, (s : Typecheck.sym)) ->
      List.fold_left
        (fun env (dim : Ast.array_dim) ->
          let lo_e = Option.value dim.dim_lo ~default:(Ast.Int 1) in
          match Sym_expr.to_poly (Ast.Binop (Ast.Sub, dim.dim_hi, lo_e)) with
          | Some diff -> ( try refine_cmp symtab env Cge diff with Infeasible -> env)
          | None -> env)
        env s.dims)
    Env.empty (Typecheck.symbols_list symtab)

let sp_fixpoint = Pperf_obs.Obs.span "absint.fixpoint"

(* Widening thresholds: the routine's integer literals (and their simple
   multiples), so octagon bounds step through program constants instead of
   jumping straight to infinity. *)
let collect_thresholds (r : Ast.routine) =
  let acc = ref [ Rat.zero ] in
  let rec expr (e : Ast.expr) =
    match e with
    | Ast.Int i ->
      let k = Rat.of_int i in
      let k2 = Rat.mul Rat.two k in
      acc := k :: Rat.neg k :: k2 :: Rat.neg k2 :: !acc
    | Ast.Real _ | Ast.Logical _ | Ast.Var _ -> ()
    | Ast.Index (_, es) | Ast.Call (_, es) -> List.iter expr es
    | Ast.Unop (_, a) -> expr a
    | Ast.Binop (_, a, b) ->
      expr a;
      expr b
  in
  let rec stmt (s : Ast.stmt) =
    match s.kind with
    | Ast.Assign (lhs, e) ->
      List.iter expr lhs.subs;
      expr e
    | Ast.If (branches, els) ->
      List.iter
        (fun (c, body) ->
          expr c;
          List.iter stmt body)
        branches;
      List.iter stmt els
    | Ast.Do d ->
      expr d.lo;
      expr d.hi;
      Option.iter expr d.step;
      List.iter stmt d.body
    | Ast.Call_stmt (_, es) -> List.iter expr es
    | Ast.Return -> ()
  in
  List.iter stmt r.body;
  List.sort_uniq Rat.compare !acc

(* Relational counterpart of [seed_env]: declared extents give
   [lo - hi <= 0] octagon facts relating e.g. a bound variable pair. *)
let seed_rel symtab dom entry =
  let top = Reldom.top dom in
  if dom = Box then top
  else (
    let ivb v = Env.find v entry in
    List.fold_left
      (fun rel (_, (s : Typecheck.sym)) ->
        List.fold_left
          (fun rel (dim : Ast.array_dim) ->
            let lo_e = Option.value dim.dim_lo ~default:(Ast.Int 1) in
            match Sym_expr.to_poly (Ast.Binop (Ast.Sub, lo_e, dim.dim_hi)) with
            | Some diff -> Reldom.assume_le ~ivb rel diff
            | None -> rel)
          rel s.dims)
      top
      (Typecheck.symbols_list symtab))

let analyze ?(domain = Box) (checked : Typecheck.checked) =
  Pperf_obs.Obs.time sp_fixpoint @@ fun () ->
  let ctx =
    {
      symtab = checked.symbols;
      tbl = Hashtbl.create 64;
      rel_tbl = Hashtbl.create 64;
      dom = domain;
      thresholds = (if domain = Box then [] else collect_thresholds checked.routine);
      loops = [];
      exits = [];
      depth = 0;
    }
  in
  let entry = seed_env checked.symbols in
  let entry_rel = rtime ctx (fun () -> seed_rel checked.symbols domain entry) in
  let out = exec_stmts ctx ~rec_:true (Some (entry, entry_rel)) checked.routine.body in
  let exits = match out with Some o -> o :: ctx.exits | None -> ctx.exits in
  let exit_envs = List.map fst exits in
  let exit_env =
    match exit_envs with [] -> Env.empty | e :: r -> strip (List.fold_left join_env e r)
  in
  let exit_rel =
    match List.map snd exits with
    | [] -> Reldom.top domain
    | e :: r -> List.fold_left Reldom.join e r
  in
  let assigned =
    Analysis.SSet.union
      (Analysis.assigned_vars checked.routine.body)
      (Analysis.loop_indices checked.routine.body)
  in
  let summary_env =
    (* assigned variables: union of every tracked value; inputs: only the
       routine-wide facts from the declaration seed *)
    let tbl = Hashtbl.create 16 in
    let absorb env =
      List.iter
        (fun (x, iv) ->
          if Analysis.SSet.mem x assigned && not (Interval.is_full iv) then
            match Hashtbl.find_opt tbl x with
            | Some cur -> Hashtbl.replace tbl x (Interval.union cur iv)
            | None -> Hashtbl.add tbl x iv)
        (Env.bindings env)
    in
    Hashtbl.iter (fun _ e -> absorb e) ctx.tbl;
    List.iter absorb exit_envs;
    let acc =
      Hashtbl.fold
        (fun x iv acc -> if Interval.is_full iv then acc else Env.add x iv acc)
        tbl Env.empty
    in
    List.fold_left
      (fun acc (x, iv) ->
        if Analysis.SSet.mem x assigned || Interval.is_full iv then acc
        else Env.add x iv acc)
      acc (Env.bindings entry)
  in
  let sum_rel =
    (* a relation graduates to the summary when every recorded program
       point either entails it or leaves some of its variables completely
       unconstrained (the fact is about values not yet computed there) *)
    if domain = Box then entry_rel
    else
      rtime ctx (fun () ->
          let states =
            Hashtbl.fold (fun _ r acc -> r :: acc) ctx.rel_tbl (List.map snd exits)
          in
          let holds_at p (c : Lin.cons) =
            Reldom.entails p c
            || List.exists (fun x -> Reldom.unconstrained p x) (Lin.vars c.lhs)
          in
          let kept =
            List.filter
              (fun c -> List.for_all (fun p -> holds_at p c) states)
              (Reldom.constraints exit_rel)
          in
          List.fold_left Reldom.assume_cons (Reldom.top domain) kept)
  in
  {
    at_stmt = ctx.tbl;
    rel_stmt = ctx.rel_tbl;
    loop_ranges = List.rev ctx.loops;
    exit_env;
    summary_env;
    exit_rel;
    sum_rel;
    dom = domain;
  }

let ranges_at r loc =
  match Hashtbl.find_opt r.at_stmt loc with Some e -> strip e | None -> Env.empty

let summary r = r.summary_env
let exit_env r = r.exit_env
let loops r = r.loop_ranges
let domain_used (r : result) = r.dom

let rel_at r loc =
  match Hashtbl.find_opt r.rel_stmt loc with Some rel -> rel | None -> Reldom.top r.dom

let env_at r loc =
  match Hashtbl.find_opt r.at_stmt loc with Some e -> e | None -> Env.empty

let meet_rel env rel p iv =
  let ivb v = Env.find v env in
  match Interval.intersect iv (Reldom.bound ~ivb rel p) with Some m -> m | None -> iv

let bound_at r loc p =
  let env = env_at r loc in
  let iv = Interval.eval_poly env p in
  if r.dom = Box then iv else meet_rel env (rel_at r loc) p iv

let decide_cond_at r loc cond =
  let env = env_at r loc in
  if r.dom = Box then decide_cond env cond
  else decide_cond ~rel:(rel_at r loc) env cond

let summary_rel r = r.sum_rel

let summary_bound r p =
  let iv = Interval.eval_poly r.summary_env p in
  if r.dom = Box then iv else meet_rel r.summary_env r.sum_rel p iv

let rewrites r = Reldom.rewrites r.sum_rel
let relations r = Reldom.constraints r.sum_rel
let relations_at (r : result) loc =
  if r.dom = Box then [] else Reldom.constraints (rel_at r loc)

let relation_points (r : result) =
  if r.dom = Box then []
  else
    Hashtbl.fold (fun loc rel acc -> (loc, Reldom.constraints rel) :: acc) r.rel_stmt []
    |> List.filter (fun (_, cs) -> cs <> [])
    |> List.sort (fun ((a : Srcloc.t), _) ((b : Srcloc.t), _) ->
           compare (a.line, a.col) (b.line, b.col))

let pp_loop_range fmt (l : loop_range) =
  Format.fprintf fmt "%s%s at %s: index %s, trip %s"
    (String.make (2 * l.depth) ' ')
    l.lvar (Srcloc.to_string l.at)
    (Interval.to_string l.index)
    (Interval.to_string l.trip)
