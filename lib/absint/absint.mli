(** Flow-sensitive interval abstract interpretation over typechecked PF
    routines.

    A forward fixpoint maps each scalar to an {!Pperf_symbolic.Interval.t}:
    environments are seeded from declared array dimensions (an extent is at
    least one element), updated by literal and computed assignments, widened
    at loop heads (with one narrowing pass), and refined through branch
    conditions. [do] loops bind their index to [lo..hi] inside the body and
    record a sound trip-count interval.

    The inferred ranges feed the paper's range-based sign decisions (§3.1:
    "determine whether the expression is positive or negative based on
    bounds on the variables"): {!Pperf_core}'s comparison seeds its variable
    box from {!summary}, aggregation attaches bounds to symbolic trip
    counts, the dependence tests use subscript ranges to prove independence,
    and the lint checks drop false positives that the ranges refute. *)

open Pperf_symbolic
open Pperf_lang

type domain = Reldom.domain = Box | Octagon | Affine | Product
(** Abstract domain selector: [Box] is the interval-only analysis (the
    historical behaviour, zero relational overhead); [Octagon] adds
    [±x ± y <= c] difference facts; [Affine] adds exact equalities
    [x = Σ aᵢ·yᵢ + c]; [Product] runs both with mutual reduction. *)

val domain_of_string : string -> domain option
val domain_to_string : domain -> string
val all_domains : string list

type loop_range = {
  at : Srcloc.t;  (** location of the [do] statement *)
  lvar : string;  (** loop index variable *)
  index : Interval.t;  (** enclosure of the index over all iterations *)
  trip : Interval.t;  (** iteration count; always within [0, +inf) *)
  depth : int;  (** nesting depth, outermost loop = 0 *)
}

type result

val analyze : ?domain:domain -> Typecheck.checked -> result
(** Run the fixpoint over the routine body. Always terminates (widening
    jumps escaping bounds to infinity) and never raises. [domain] (default
    [Box]) additionally threads a relational state through the same
    fixpoint: loop-head guards assume [lo <= i <= hi] for loop-invariant
    bounds, affine assignments transfer exactly, and octagon bounds widen
    through thresholds harvested from the routine's integer literals. *)

val ranges_at : result -> Srcloc.t -> Interval.Env.t
(** Environment holding immediately {e before} the statement at this
    location: inside loop bodies the enclosing indexes are bound to their
    iteration ranges, inside branches the condition refinements apply.
    Unknown locations give the empty environment (every variable [full]). *)

val summary : result -> Interval.Env.t
(** Whole-routine box: for an assigned variable, the union of its values at
    every program point where the analysis tracked it; for a never-assigned
    input, only the routine-wide facts implied by array declarations (an
    array extent has at least one element). Flow-local branch refinements
    of inputs are deliberately excluded. *)

val exit_env : result -> Interval.Env.t
(** Join of the environments at every [return] and at fall-through. *)

val loops : result -> loop_range list
(** Every reachable [do] loop in source order, with index and trip
    enclosures computed in the stable environment at its entry. *)

val eval_expr : Interval.Env.t -> Ast.expr -> Interval.t
(** Sound enclosure of an expression over the box; polynomial expressions
    go through {!Interval.eval_poly}, the rest structurally (division,
    [min]/[max]/[abs]/[mod] intrinsics); unknown constructs give [full]. *)

val decide_cond : ?rel:Reldom.t -> Interval.Env.t -> Ast.expr -> bool option
(** [Some b] when the condition provably evaluates to [b] over the box,
    optionally sharpened by a relational state ([i - n <= -1] decides
    [i + 1 <= n] even when both boxes are unbounded). *)

val domain_used : result -> domain

val rel_at : result -> Srcloc.t -> Reldom.t
(** Relational state holding immediately before the statement (top for
    unknown locations or the [Box] domain). *)

val bound_at : result -> Srcloc.t -> Poly.t -> Interval.t
(** Enclosure of the polynomial at the location: interval evaluation met
    with the relational bound. *)

val decide_cond_at : result -> Srcloc.t -> Ast.expr -> bool option
(** {!decide_cond} in the environment and relational state at the
    location. *)

val summary_rel : result -> Reldom.t
(** Whole-routine relational summary: the exit relations that every
    recorded program point either entails or is agnostic about (all
    variables unconstrained there). Survivors are typically input
    couplings like [m = 2*n]; loop-local facts are filtered out. *)

val summary_bound : result -> Poly.t -> Interval.t
(** Enclosure of the polynomial over {!summary}, met with the relational
    summary's bound. *)

val rewrites : result -> (string * Poly.t) list
(** Exact substitutions from the affine rows of {!summary_rel}, usable on
    arbitrary polynomials (e.g. [m = 2*n] turns [m·n] into [2·n²]). *)

val relations : result -> Lin.cons list
(** Displayable constraints of {!summary_rel}. *)

val relations_at : result -> Srcloc.t -> Lin.cons list

val relation_points : result -> (Srcloc.t * Lin.cons list) list
(** Every recorded program point with at least one relational fact, in
    source order — the [ranges --json] relational report. *)

val assume : Typecheck.symtab -> Interval.Env.t -> Ast.expr -> Interval.Env.t option
(** Refine the box assuming the condition holds; [None] when the condition
    is infeasible over the box. Affine comparisons tighten the interval of
    each variable occurring linearly (with floor/ceil rounding for integer
    variables); anything else is kept unrefined. *)

val restrict : Interval.Env.t -> keep:(string -> bool) -> Interval.Env.t
(** Drop bindings whose name fails the predicate — e.g. variables assigned
    inside a loop nest, whose entry-env range is not loop-invariant. *)

val pp_loop_range : Format.formatter -> loop_range -> unit
