(** The octagon abstract domain over exact rationals (Miné).

    Conjunctions of constraints [±x ± y <= c] kept as a difference-bound
    matrix over the split variables [v₂ₖ = +xₖ], [v₂ₖ₊₁ = -xₖ]: entry
    [m.(i).(j)] bounds [vᵢ - vⱼ]. Values are kept strongly closed
    (Floyd–Warshall interleaved with the [((x-x̄)+(ȳ-y))/2] strengthening
    step), so entailment and projection read straight off the matrix.
    Variables enter the matrix lazily as constraints mention them, capped
    at {!max_vars}; constraints over variables past the cap are silently
    dropped (sound: fewer facts). *)

open Pperf_num
open Pperf_symbolic

type t

val top : t
val bot : t
val is_bot : t -> bool
val is_top : t -> bool
val tracked : t -> string list
val max_vars : int

val equal : t -> t -> bool
(** Equality of strongly closed normal forms. *)

val join : t -> t -> t
val widen : ?thresholds:Rat.t list -> t -> t -> t
(** [widen a b] keeps each bound of [a] that [b] does not escape; escaping
    bounds jump to the smallest threshold that still contains [b]'s bound,
    or to infinity when none does. *)

val narrow : t -> t -> t
(** Refine the infinite bounds of [a] with those of [b]. *)

val meet_le : ?ivb:(string -> Interval.t) -> t -> Lin.t -> t
(** Assume [lin <= 0]. The optional [ivb] supplies outside interval bounds
    (the interval component of the product) used to bound residuals when
    octagonalizing constraints with more than two variables. *)

val meet_eq : ?ivb:(string -> Interval.t) -> t -> Lin.t -> t
(** Assume [lin = 0]. *)

val assign : ?ivb:(string -> Interval.t) -> t -> string -> Lin.t option -> t
(** [assign t x e] is the strongest octagon after [x := e] ([None] = an
    unanalyzable right-hand side, which forgets [x]). [x := x + c] shifts
    exactly; [x := ±y + c] transfers exactly; other affine forms keep
    interval and pairwise difference/sum bounds derived before the kill. *)

val forget : t -> string -> t
val project : t -> string -> Interval.t

val bound : ?ivb:(string -> Interval.t) -> t -> Lin.t -> Interval.t
(** Sound enclosure of a linear form: the naive interval sum meets a greedy
    pairing that routes [±x ± y] sub-forms through the matrix entries. *)

val constraints : t -> Lin.cons list
(** The binary constraints strictly tighter than what the unary bounds
    already imply, with opposite pairs fused into equalities. *)

val entails : t -> Lin.cons -> bool
val unconstrained : t -> string -> bool
(** No finite constraint mentions the variable. *)

val satisfies : (string -> Rat.t) -> t -> bool
(** Concrete model check — test support. *)
