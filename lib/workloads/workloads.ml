(** The evaluation corpus for the Fig. 7 reproduction.

    The paper's F1–F7 are "innermost basic blocks taken from Purdue
    benchmarks in the HPF Benchmark suite"; their exact identity is not
    given, so we use seven kernels of the same character — small FP-heavy
    innermost blocks mixing loads/stores, adds, multiplies, divides, sqrt
    and int/float conversions (see DESIGN.md §4 on this substitution).
    Matmul is "the innermost basic block of a matrix-multiply loop which is
    blocked and unrolled 4 times in both dimensions (a total of 16 FMA
    operations in the basic block)", Jacobi and RB are the Jacobi and
    red-black relaxation inner blocks — exactly as in the paper. *)

open Pperf_lang

type kernel = {
  name : string;
  descr : string;
  source : string;  (** a complete PF routine *)
}

let f1 =
  {
    name = "F1";
    descr = "daxpy: y(i) = y(i) + a*x(i)";
    source =
      "subroutine f1(x, y, a, n)\n  integer n, i\n  real x(100000), y(100000), a\n\
      \  do i = 1, n\n    y(i) = y(i) + a * x(i)\n  end do\nend\n";
  }

let f2 =
  {
    name = "F2";
    descr = "dot product reduction";
    source =
      "subroutine f2(x, y, s, n)\n  integer n, i\n  real x(100000), y(100000), s\n\
      \  do i = 1, n\n    s = s + x(i) * y(i)\n  end do\nend\n";
  }

let f3 =
  {
    name = "F3";
    descr = "1-d smoothing stencil with divide";
    source =
      "subroutine f3(x, z, n)\n  integer n, i\n  real x(100000), z(100000)\n\
      \  do i = 2, n - 1\n    z(i) = (x(i-1) + 2.0 * x(i) + x(i+1)) / 4.0\n  end do\nend\n";
  }

let f4 =
  {
    name = "F4";
    descr = "degree-4 Horner polynomial evaluation";
    source =
      "subroutine f4(t, p, c0, c1, c2, c3, c4, n)\n  integer n, i\n\
      \  real t(100000), p(100000), c0, c1, c2, c3, c4\n\
      \  do i = 1, n\n    p(i) = (((c4 * t(i) + c3) * t(i) + c2) * t(i) + c1) * t(i) + c0\n\
      \  end do\nend\n";
  }

let f5 =
  {
    name = "F5";
    descr = "complex multiply (split arrays)";
    source =
      "subroutine f5(xr, xi, yr, yi, zr, zi, n)\n  integer n, i\n\
      \  real xr(100000), xi(100000), yr(100000), yi(100000), zr(100000), zi(100000)\n\
      \  do i = 1, n\n    zr(i) = xr(i) * yr(i) - xi(i) * yi(i)\n\
      \    zi(i) = xr(i) * yi(i) + xi(i) * yr(i)\n  end do\nend\n";
  }

let f6 =
  {
    name = "F6";
    descr = "normalization with sqrt and divide";
    source =
      "subroutine f6(x, w, n)\n  integer n, i\n  real x(100000), w(100000)\n\
      \  do i = 1, n\n    w(i) = x(i) / sqrt(x(i) * x(i) + 1.0)\n  end do\nend\n";
  }

let f7 =
  {
    name = "F7";
    descr = "scaled update with int/float conversion";
    source =
      "subroutine f7(x, y, h, n)\n  integer n, i\n  real x(100000), y(100000), h\n\
      \  do i = 1, n\n    y(i) = x(i) * (h * float(i)) + 0.5\n  end do\nend\n";
  }

let matmul_unrolled =
  (* the 4x4-unrolled, blocked matrix-multiply inner block: 16 FMAs *)
  let body =
    List.init 4 (fun bi ->
        List.init 4 (fun bj ->
            Printf.sprintf
              "      c(i+%d,j+%d) = c(i+%d,j+%d) + a(i+%d,k) * b(k,j+%d)" bi bj bi bj bi bj))
    |> List.concat |> String.concat "\n"
  in
  {
    name = "Matmul";
    descr = "matrix multiply blocked and 4x4-unrolled: 16 FMAs";
    source =
      Printf.sprintf
        "subroutine mm44(a, b, c, n)\n  integer n, i, j, k\n\
        \  real a(512,512), b(512,512), c(512,512)\n\
        \  do i = 1, n, 4\n    do j = 1, n, 4\n      do k = 1, n\n%s\n      end do\n    end do\n  end do\nend\n"
        body;
  }

let jacobi =
  {
    name = "Jacobi";
    descr = "Jacobi relaxation inner block";
    source =
      "subroutine jacobi(a, b, n)\n  integer n, i, j\n  real a(1000,1000), b(1000,1000)\n\
      \  do i = 2, n - 1\n    do j = 2, n - 1\n\
      \      a(i,j) = 0.25 * (b(i-1,j) + b(i+1,j) + b(i,j-1) + b(i,j+1))\n\
      \    end do\n  end do\nend\n";
  }

let redblack =
  {
    name = "RB";
    descr = "red-black Gauss-Seidel inner block";
    source =
      "subroutine rb(u, f, w, h2, n)\n  integer n, i, j\n\
      \  real u(1000,1000), f(1000,1000), w, h2\n\
      \  do j = 2, n - 1\n    do i = 2, n - 1, 2\n\
      \      u(i,j) = u(i,j) + w * (0.25 * (u(i-1,j) + u(i+1,j) + u(i,j-1) + u(i,j+1) - h2 * f(i,j)) - u(i,j))\n\
      \    end do\n  end do\nend\n";
  }

let fig7_kernels = [ f1; f2; f3; f4; f5; f6; f7; matmul_unrolled; jacobi; redblack ]

(* ---- extended corpus: not in the paper's Fig. 7, used by the extended
   accuracy table and the cross-machine experiments ---- *)

let tridiag =
  {
    name = "Tridiag";
    descr = "tridiagonal forward elimination step (recurrence)";
    source =
      "subroutine tri(a, b, c, d, n)
  integer n, i
      \  real a(100000), b(100000), c(100000), d(100000)
      \  do i = 2, n
    b(i) = b(i) - a(i) / b(i-1) * c(i-1)
      \    d(i) = d(i) - a(i) / b(i-1) * d(i-1)
  end do
end
";
  }

let prefix_sum =
  {
    name = "Scan";
    descr = "prefix sum (carried dependence, integer+float mix)";
    source =
      "subroutine scan(x, y, n)
  integer n, i
  real x(100000), y(100000)
      \  do i = 2, n
    y(i) = y(i-1) + x(i)
  end do
end
";
  }

let rational_fn =
  {
    name = "RatFn";
    descr = "pointwise rational function (two divides)";
    source =
      "subroutine rf(x, y, n)\n  integer n, i\n  real x(100000), y(100000)\n\
      \  do i = 1, n\n    y(i) = (x(i) + 1.0) / (x(i) - 1.0) / (x(i) + 2.0)\n  end do\nend\n";
  }

let convolve =
  {
    name = "Conv5";
    descr = "5-tap convolution (FMA chain per element)";
    source =
      "subroutine cv(x, y, c0, c1, c2, c3, c4, n)
  integer n, i
      \  real x(100000), y(100000), c0, c1, c2, c3, c4
      \  do i = 3, n - 2
      \    y(i) = c0 * x(i-2) + c1 * x(i-1) + c2 * x(i) + c3 * x(i+1) + c4 * x(i+2)
      \  end do
end
";
  }

let saxpy_strided =
  {
    name = "StrideAx";
    descr = "strided axpy (step-4 loop, address arithmetic)";
    source =
      "subroutine sax(x, y, a, n)
  integer n, i
  real x(100000), y(100000), a
      \  do i = 1, n, 4
    y(i) = y(i) + a * x(i)
  end do
end
";
  }

let extended_kernels = [ tridiag; prefix_sum; rational_fn; convolve; saxpy_strided ]

let all_kernels = fig7_kernels @ extended_kernels

(** Extract the innermost straight-line block of a kernel, translated to an
    atomic-operation DAG for the given machine, with proper loop context. *)
let innermost_dag ?(flags = Pperf_translate.Flags.default) ~machine kernel =
  let checked = Typecheck.check_routine (Parser.parse_routine kernel.source) in
  let loops, body = List.hd (Analysis.innermost_bodies checked.routine.body) in
  let loop_vars = List.map (fun (l : Analysis.loop_ctx) -> l.lvar) loops in
  let assigned = Analysis.assigned_vars checked.routine.body in
  let all = Analysis.SSet.union (Analysis.used_vars checked.routine.body) assigned in
  let invariants = Analysis.SSet.diff all assigned in
  Pperf_translate.Translator.translate_block ~machine ~flags ~symtab:checked.symbols
    ~loop_vars ~invariants body

let checked kernel = Typecheck.check_routine (Parser.parse_routine kernel.source)
