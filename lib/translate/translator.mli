(** The instruction translation module (§2.2).

    Converts straight-line PF statements into a dependence DAG of atomic
    operations while {e imitating the back-end}: the estimate must match
    the code the real code generator would emit, several phases later.
    Imitated optimizations (each gated by a {!Flags.t} field):

    - value numbering / CSE, with the limited register file simulated by
      an LRU window of {!Pperf_machine.Machine.t}[.register_load_limit]
      resident loads;
    - loop-invariant code motion: invariant work lands in separate
      {e one-time} bins (§2.2.2 "two functional bins are used to count the
      one-time and iterative costs separately");
    - fused multiply-add recognition;
    - sum-reduction recognition: accumulator loads/stores move to the
      one-time part, "all but one store instruction can be eliminated";
    - update-form addressing: subscript arithmetic affine in the enclosing
      loop indices costs nothing per iteration;
    - dead code elimination;
    - small-multiplier integer multiplies and power-of-two strength
      reduction (§2.2.1's variable-latency operations). *)

open Pperf_lang
open Pperf_machine
open Pperf_sched

type result = {
  body : Dag.t;  (** per-iteration atomic operations *)
  one_time : Dag.t;  (** invariant/one-time atomic operations *)
  loads : int;  (** memory loads in [body] *)
  stores : int;
  flops : int;  (** floating-point operations in [body] (an FMA counts 2) *)
  int_ops : int;
}

exception Not_straight_line of Srcloc.t
(** Raised when the fragment contains control flow ([do]/[if]) — those are
    the aggregation layer's job. *)

val translate_block :
  machine:Machine.t ->
  ?flags:Flags.t ->
  symtab:Typecheck.symtab ->
  ?loop_vars:string list ->
  ?invariants:Analysis.SSet.t ->
  Ast.stmt list ->
  result
(** [loop_vars] are the enclosing loop indices (innermost last);
    [invariants] the variables (scalars and array bases) not assigned
    inside the enclosing loop. Both default to "no enclosing loop". *)

val translate_condition :
  machine:Machine.t ->
  ?flags:Flags.t ->
  symtab:Typecheck.symtab ->
  ?loop_vars:string list ->
  ?invariants:Analysis.SSet.t ->
  Ast.expr ->
  result
(** The condition evaluation plus conditional branch of an [if]. *)

val translate_exprs :
  machine:Machine.t ->
  ?flags:Flags.t ->
  symtab:Typecheck.symtab ->
  ?loop_vars:string list ->
  ?invariants:Analysis.SSet.t ->
  Ast.expr list ->
  result
(** Pure evaluation of expressions (loop bounds, call arguments) with no
    stores; dead-code elimination is disabled so every operation counts. *)

val loop_overhead_dag : machine:Machine.t -> unit -> Dag.t
(** Per-iteration loop control: induction increment, compare, branch. *)
