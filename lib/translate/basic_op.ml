(** Basic operations: the middle layer of the paper's two-level translation
    (Fig. 6). Language-independent, type-specific, architecture-agnostic.

    The {e operation specialization mapping} (language-dependent) produces
    these from source expressions; the {e atomic operation mapping}
    (architecture-dependent, {!Atomic_map}) lowers them to a machine's
    atomic operations. *)

type precision = Single | Double

type t =
  | B_iadd
  | B_isub
  | B_imul of { small : bool }
      (** [small]: the multiplier is a compile-time constant in [-128,127]
          — the paper's variable-latency example (§2.2.1) *)
  | B_ishift
  | B_ilogic
  | B_idiv
  | B_ineg
  | B_icmp
  | B_fadd of precision
  | B_fsub of precision
  | B_fmul of precision
  | B_fma of precision  (** fused multiply-add *)
  | B_fdiv of precision
  | B_fneg
  | B_fcmp
  | B_fselect  (** min/max selection *)
  | B_cvt_if  (** int -> float *)
  | B_cvt_fi  (** float -> int *)
  | B_load of { float : bool }
  | B_store of { float : bool }
  | B_branch
  | B_branch_cond
  | B_call
  | B_intrinsic of string  (** costed via a dedicated atomic op, e.g. fsqrt *)

let to_string = function
  | B_iadd -> "IADD"
  | B_isub -> "ISUB"
  | B_imul { small = true } -> "IMUL.S"
  | B_imul { small = false } -> "IMUL"
  | B_ishift -> "ISHIFT"
  | B_ilogic -> "ILOGIC"
  | B_idiv -> "IDIV"
  | B_ineg -> "INEG"
  | B_icmp -> "ICMP"
  | B_fadd Single -> "FADD"
  | B_fadd Double -> "DADD"
  | B_fsub Single -> "FSUB"
  | B_fsub Double -> "DSUB"
  | B_fmul Single -> "FMUL"
  | B_fmul Double -> "DMUL"
  | B_fma Single -> "FMA"
  | B_fma Double -> "DFMA"
  | B_fdiv Single -> "FDIV"
  | B_fdiv Double -> "DDIV"
  | B_fneg -> "FNEG"
  | B_fcmp -> "FCMP"
  | B_fselect -> "FSEL"
  | B_cvt_if -> "CVTIF"
  | B_cvt_fi -> "CVTFI"
  | B_load { float = true } -> "FLOAD"
  | B_load { float = false } -> "ILOAD"
  | B_store { float = true } -> "FSTORE"
  | B_store { float = false } -> "ISTORE"
  | B_branch -> "BR"
  | B_branch_cond -> "BC"
  | B_call -> "CALL"
  | B_intrinsic s -> "INTR:" ^ s

let is_store = function B_store _ -> true | _ -> false
let is_load = function B_load _ -> true | _ -> false
