(** Back-end capability flags (§2.2.2).

    "Porting the cost model to a new compiler ... flags representing the
    optimization capabilities of the back-end are defined and used for
    tuning the cost model." Turning a flag off makes the translator stop
    imitating that optimization, matching a weaker back-end; the TAB-FLAGS
    benchmark quantifies each flag's effect on prediction accuracy. *)

type t = {
  cse : bool;  (** common-subexpression elimination / value numbering *)
  licm : bool;  (** loop-invariant code motion into the one-time bins *)
  fma_fusion : bool;
  sum_reduction : bool;
      (** keep reduction scalars in registers across iterations (§2.2.2) *)
  dce : bool;
  update_addressing : bool;
      (** affine subscript arithmetic costs nothing per iteration *)
  register_pressure : bool;
      (** simulate the register file by an LRU window of resident loads
          (§2.2.1) *)
}

val all_on : t
val all_off : t
val default : t
val to_string : t -> string
