(** Back-end capability flags (§2.2.2).

    "Porting the cost model to a new compiler ... flags representing the
    optimization capabilities of the back-end are defined and used for
    tuning the cost model." Turning a flag off makes the translator stop
    imitating that optimization, so the estimate matches a weaker
    back-end. *)

type t = {
  cse : bool;  (** common-subexpression elimination / value numbering *)
  licm : bool;  (** loop-invariant code motion into the one-time bins *)
  fma_fusion : bool;  (** fuse a*b+c into multiply-add *)
  sum_reduction : bool;
      (** keep reduction scalars in registers across iterations,
          eliminating all but one store (§2.2.2) *)
  dce : bool;  (** dead code elimination *)
  update_addressing : bool;
      (** strength-reduce affine subscripts to update-form addressing:
          index arithmetic that is affine in enclosing loop indices costs
          nothing inside the block *)
  register_pressure : bool;
      (** simulate the limited register file by re-loading values evicted
          after [Machine.register_load_limit] distinct live loads (§2.2.1) *)
}

let all_on =
  {
    cse = true;
    licm = true;
    fma_fusion = true;
    sum_reduction = true;
    dce = true;
    update_addressing = true;
    register_pressure = true;
  }

let all_off =
  {
    cse = false;
    licm = false;
    fma_fusion = false;
    sum_reduction = false;
    dce = false;
    update_addressing = false;
    register_pressure = false;
  }

let default = all_on

let to_string f =
  let b name v = if v then name else "no-" ^ name in
  String.concat ","
    [
      b "cse" f.cse; b "licm" f.licm; b "fma" f.fma_fusion; b "red" f.sum_reduction;
      b "dce" f.dce; b "upd" f.update_addressing; b "regs" f.register_pressure;
    ]
