(** The atomic operation mapping: architecture-dependent, language-
    independent lowering of basic operations to a machine's atomic
    operations (Fig. 6, second translation level). *)

open Pperf_machine

val map : Machine.t -> Basic_op.t -> Atomic_op.t list
(** The chain of atomic operations implementing the basic operation;
    element [k+1] consumes element [k]'s result. Examples: a fused
    multiply-add on a machine without FMA hardware becomes multiply then
    add; min/max becomes compare then select; double-precision operations
    use [d]-prefixed cost-table entries when the machine provides them.
    @raise Failure when the machine's cost table lacks a required entry. *)
