(** The atomic operation mapping: architecture-dependent, language-
    independent lowering of basic operations to a machine's atomic
    operations (Fig. 6, second translation level).

    A basic operation may expand to a {e chain} of atomic operations (each
    depending on the previous one), e.g. a fused multiply-add on a machine
    without FMA hardware becomes multiply then add, and min/max becomes a
    compare feeding a select/copy. *)

open Pperf_machine

(** [map machine b] is the chain of atomic operations implementing [b];
    element [k+1] consumes the result of element [k]. *)
let map_uncached (m : Machine.t) (b : Basic_op.t) : Atomic_op.t list =
  let a name = [ Machine.atomic m name ] in
  let a2 n1 n2 = [ Machine.atomic m n1; Machine.atomic m n2 ] in
  let prefer name fallback = if Machine.has_atomic m name then a name else fallback () in
  let fp prec single double =
    (* double-precision ops use their own table entry when the machine
       distinguishes them (e.g. divide latency), else the single one *)
    match prec with
    | Basic_op.Double when Machine.has_atomic m double -> a double
    | _ -> a single
  in
  match b with
  | Basic_op.B_iadd -> a "iadd"
  | B_isub -> a "isub"
  | B_imul { small } ->
    if small && Machine.has_atomic m "imul_small" then a "imul_small" else a "imul"
  | B_ishift -> prefer "ishift" (fun () -> a "iadd")
  | B_ilogic -> prefer "ilogic" (fun () -> a "iadd")
  | B_idiv -> a "idiv"
  | B_ineg -> prefer "ineg" (fun () -> a "isub")
  | B_icmp -> a "icmp"
  | B_fadd p -> fp p "fadd" "dadd"
  | B_fsub p -> (match p with
    | Basic_op.Double when Machine.has_atomic m "dsub" -> a "dsub"
    | _ -> prefer "fsub" (fun () -> a "fadd"))
  | B_fmul p -> fp p "fmul" "dmul"
  | B_fma p ->
    if m.Machine.has_fma && Machine.has_atomic m "fma" then
      (match p with
       | Basic_op.Double when Machine.has_atomic m "dfma" -> a "dfma"
       | _ -> a "fma")
    else a2 "fmul" "fadd"
  | B_fdiv p -> fp p "fdiv" "ddiv"
  | B_fneg -> prefer "fneg" (fun () -> a "fsub")
  | B_fcmp -> a "fcmp"
  | B_fselect -> a2 "fcmp" "fcopy"
  | B_cvt_if -> a "cvt_if"
  | B_cvt_fi -> a "cvt_fi"
  | B_load { float } -> a (if float then "load_fp" else "load_int")
  | B_store { float } -> a (if float then "store_fp" else "store_int")
  | B_branch -> a "branch"
  | B_branch_cond -> a "branch_cond"
  | B_call -> a "call"
  | B_intrinsic name ->
    if Machine.has_atomic m name then a name
    else a "call" (* unknown intrinsic: library call *)

(* the mapping is a pure function of the machine's tables; every block
   translation asks for the same handful of basic ops, so cache the
   chains per machine (keyed by physical identity). The prediction
   server's worker domains translate concurrently, so the memo must be
   domain-safe: per machine an immutable map swapped in with CAS (lost
   races just recompute a pure value), never a shared Hashtbl. *)
module BMap = Map.Make (struct
  type t = Basic_op.t

  let compare = Stdlib.compare
end)

type entry = { machine : Machine.t; chains : Atomic_op.t list BMap.t Atomic.t }

let cache : entry list Atomic.t = Atomic.make []

let entry_for (m : Machine.t) =
  match List.find_opt (fun e -> e.machine == m) (Atomic.get cache) with
  | Some e -> e
  | None ->
    let e = { machine = m; chains = Atomic.make BMap.empty } in
    let rec push () =
      let old = Atomic.get cache in
      match List.find_opt (fun e' -> e'.machine == m) old with
      | Some e' -> e'
      | None ->
        if Atomic.compare_and_set cache old (e :: List.filteri (fun i _ -> i < 15) old)
        then e
        else push ()
    in
    push ()

let map (m : Machine.t) (b : Basic_op.t) : Atomic_op.t list =
  let e = entry_for m in
  match BMap.find_opt b (Atomic.get e.chains) with
  | Some chain -> chain
  | None ->
    let chain = map_uncached m b in
    let rec publish () =
      let old = Atomic.get e.chains in
      if BMap.mem b old then ()
      else if Atomic.compare_and_set e.chains old (BMap.add b chain old) then ()
      else publish ()
    in
    publish ();
    chain
