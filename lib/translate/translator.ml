open Pperf_lang
open Pperf_machine
open Pperf_sched
module SSet = Analysis.SSet

type result = {
  body : Dag.t;
  one_time : Dag.t;
  loads : int;
  stores : int;
  flops : int;
  int_ops : int;
}

exception Not_straight_line of Srcloc.t

(* ---- builder state ---- *)

type instr = {
  basic : Basic_op.t;
  deps : int list;  (** indices of producing instrs; -1 entries are free values *)
  label : string;
  invariant : bool;
}

type builder = {
  machine : Machine.t;
  flags : Flags.t;
  symtab : Typecheck.symtab;
  loop_vars : string list;
  invariants : SSet.t;
  mutable instrs : instr array;  (** growable; first [count] entries valid *)
  mutable count : int;
  vtable : (string, int) Hashtbl.t;  (** value numbering: key -> instr id *)
  etype : (Ast.expr, Ast.dtype option) Hashtbl.t;  (** memoized expr_type *)
  ekey : (Ast.expr, string) Hashtbl.t;  (** memoized expr_key *)
  mutable reg_queue : string list;  (** LRU of resident load keys (oldest first) *)
  mutable scalar_env : (string * int) list;  (** block-local scalar values *)
  mutable last_store : (string * int) list;  (** array -> last store instr *)
  mutable n_loads : int;
  mutable n_stores : int;
  mutable n_flops : int;
  mutable n_intops : int;
}

let free_value = -1

(* a value that lives in a register but varies with the enclosing loop
   (an induction variable): free to read, NOT loop-invariant *)
let loop_value = -2

let dummy_instr = { basic = Basic_op.B_branch; deps = []; label = ""; invariant = false }

let emit b ?(invariant = false) basic deps label =
  let id = b.count in
  b.count <- id + 1;
  let deps = List.filter (fun d -> d >= 0) deps in
  (* statistics describe the per-iteration body; one-time ops don't count *)
  if not invariant then
  (match basic with
   | Basic_op.B_load _ -> b.n_loads <- b.n_loads + 1
   | B_store _ -> b.n_stores <- b.n_stores + 1
   | B_fadd _ | B_fsub _ | B_fmul _ | B_fdiv _ | B_fneg | B_fcmp | B_fselect -> b.n_flops <- b.n_flops + 1
   | B_fma _ -> b.n_flops <- b.n_flops + 2
   | B_iadd | B_isub | B_imul _ | B_ishift | B_ilogic | B_idiv | B_ineg | B_icmp ->
     b.n_intops <- b.n_intops + 1
   | _ -> ());
  if id >= Array.length b.instrs then (
    let grown = Array.make (Stdlib.max 16 (2 * Array.length b.instrs)) dummy_instr in
    Array.blit b.instrs 0 grown 0 id;
    b.instrs <- grown);
  b.instrs.(id) <- { basic; deps; label; invariant };
  id

let instr_of b id = b.instrs.(id)

let is_invariant_value b id =
  if id = free_value then true
  else if id = loop_value then false
  else (instr_of b id).invariant

let binop_key_name : Ast.binop -> string = function
  | Ast.Add -> "+"
  | Ast.Sub -> "-"
  | Ast.Mul -> "*"
  | Ast.Div -> "/"
  | Ast.Pow -> "**"
  | Ast.Eq -> "=="
  | Ast.Ne -> "/="
  | Ast.Lt -> "<"
  | Ast.Le -> "<="
  | Ast.Gt -> ">"
  | Ast.Ge -> ">="
  | Ast.And -> "&&"
  | Ast.Or -> "||"

(* the exact-hex rendering of a float literal is format-machinery slow;
   distinct literals recur across the many builders one prediction makes,
   so memoize the rendering. Domain-local: each server worker keeps its
   own table, so no locking on this hot path and no Hashtbl races *)
let real_key_tbl_key =
  Domain.DLS.new_key (fun () : (float, string) Hashtbl.t -> Hashtbl.create 64)

let real_key f =
  let real_key_tbl = Domain.DLS.get real_key_tbl_key in
  match Hashtbl.find_opt real_key_tbl f with
  | Some k -> k
  | None ->
    let k = Printf.sprintf "%h" f in
    if Hashtbl.length real_key_tbl < 4096 then Hashtbl.add real_key_tbl f k;
    k

(* canonical string key of an expression for value numbering; memoized
   per builder so nested expressions don't rebuild their children's keys
   at every enclosing node *)
let rec expr_key b (e : Ast.expr) : string =
  match Hashtbl.find_opt b.ekey e with
  | Some k -> k
  | None ->
    let k =
      match e with
      | Ast.Int i -> string_of_int i
      | Ast.Real (f, _) -> real_key f
      | Ast.Logical l -> string_of_bool l
      | Ast.Var x -> x
      | Ast.Index (a, subs) -> a ^ "[" ^ String.concat "," (List.map (expr_key b) subs) ^ "]"
      | Ast.Call (f, args) -> f ^ "(" ^ String.concat "," (List.map (expr_key b) args) ^ ")"
      | Ast.Unop (op, a) -> (match op with Ast.Neg -> "-" | Ast.Not -> "!") ^ expr_key b a
      | Ast.Binop (op, x, y) ->
        let ka = expr_key b x and kb = expr_key b y in
        let ka, kb =
          (* commutative normalization *)
          match op with
          | Ast.Add | Ast.Mul | Ast.And | Ast.Or | Ast.Eq | Ast.Ne ->
            if String.compare ka kb <= 0 then (ka, kb) else (kb, ka)
          | _ -> (ka, kb)
        in
        String.concat "" [ "("; ka; " "; binop_key_name op; " "; kb; ")" ]
    in
    Hashtbl.add b.ekey e k;
    k

(* value-numbering lookup gated by the CSE flag and the register-pressure
   LRU window for loads *)
let vn_lookup b ~is_load key =
  if not b.flags.Flags.cse then None
  else
    match Hashtbl.find_opt b.vtable key with
    | None -> None
    | Some id when not is_load -> Some id
    | Some id ->
      if not b.flags.Flags.register_pressure then Some id
      else if List.mem key b.reg_queue then (
        (* refresh LRU position *)
        b.reg_queue <- List.filter (fun k -> not (String.equal k key)) b.reg_queue @ [ key ];
        Some id)
      else None (* evicted: must reload *)

let vn_record b ~is_load key id =
  if b.flags.Flags.cse then (
    Hashtbl.replace b.vtable key id;
    if is_load && b.flags.Flags.register_pressure then (
      b.reg_queue <- b.reg_queue @ [ key ];
      let limit = max 4 b.machine.Machine.register_load_limit in
      if List.length b.reg_queue > limit then (
        match b.reg_queue with
        | oldest :: rest ->
          b.reg_queue <- rest;
          Hashtbl.remove b.vtable oldest
        | [] -> ())))

(* expr_type walks the whole subexpression; the translator asks for the
   type of every node of every expression, so memoize per builder *)
let expr_type_memo b e =
  match Hashtbl.find_opt b.etype e with
  | Some r -> r
  | None ->
    let r = try Some (Typecheck.expr_type b.symtab e) with _ -> None in
    Hashtbl.add b.etype e r;
    r

let float_expr b e =
  match expr_type_memo b e with Some t -> Typecheck.is_float_type t | None -> true

let prec_of b e =
  match expr_type_memo b e with Some Ast.Tdouble -> Basic_op.Double | _ -> Basic_op.Single

(* is this integer expression free inside the block? loop indices and small
   constants live in registers; affine combinations of them are handled by
   update-form addressing when the flag is on *)
let subscript_is_free b (e : Ast.expr) =
  if not b.flags.Flags.update_addressing then
    match e with Ast.Int _ | Ast.Var _ -> true | _ -> false
  else (
    match Sym_expr.affine_hint b.loop_vars e with
    | `Affine -> true (* affine residues are loop-var free by construction *)
    | `Not -> false
    | `Unknown -> (
      match Sym_expr.affine_in b.loop_vars e with
      | Some (_, rest) ->
        (* the residue must be invariant (symbolic constants allowed: their
           contribution is folded into the preloaded base address) *)
        List.for_all
          (fun v -> SSet.mem v b.invariants || not (List.mem v b.loop_vars))
          (Pperf_symbolic.Poly.vars rest)
      | None -> false))

let small_int_const = function
  | Ast.Int i when i >= -128 && i <= 127 -> true
  | _ -> false

let is_pow2_const = function
  | Ast.Int i when i > 0 && i land (i - 1) = 0 -> true
  | _ -> false

(* ---- expression translation: returns the producing instr id ---- *)

let rec tr_expr b (e : Ast.expr) : int =
  match e with
  | Ast.Int _ | Ast.Real _ | Ast.Logical _ -> free_value
  | Ast.Var x -> (
    match List.assoc_opt x b.scalar_env with
    | Some v -> v (* block-local value, still in a register *)
    | None ->
      if List.mem x b.loop_vars then loop_value (* induction variable in a register *)
      else (
        let key = "var:" ^ x in
        match vn_lookup b ~is_load:true key with
        | Some id -> id
        | None ->
          let float = float_expr b e in
          let inv = b.flags.Flags.licm && SSet.mem x b.invariants && b.loop_vars <> [] in
          let id = emit b ~invariant:inv (Basic_op.B_load { float }) [] ("load " ^ x) in
          vn_record b ~is_load:true key id;
          id))
  | Ast.Index (a, subs) ->
    let store_gen =
      match List.assoc_opt a b.last_store with Some id -> id | None -> free_value
    in
    let key =
      String.concat "" [ "mem:"; a; ":"; expr_key b e; ":"; string_of_int store_gen ]
    in
    (match vn_lookup b ~is_load:true key with
     | Some id -> id
     | None ->
       let addr_deps = tr_address b subs in
       let float = float_expr b e in
       let inv =
         b.flags.Flags.licm && b.loop_vars <> []
         && SSet.mem a b.invariants
         && store_gen = free_value
         && List.for_all
              (fun sub ->
                (not (Analysis.has_call sub))
                && SSet.for_all (fun v -> SSet.mem v b.invariants) (Analysis.expr_reads sub))
              subs
       in
       let deps = if store_gen >= 0 then store_gen :: addr_deps else addr_deps in
       let id = emit b ~invariant:inv (Basic_op.B_load { float }) deps ("load " ^ expr_key b e) in
       vn_record b ~is_load:true key id;
       id)
  | Ast.Unop (Ast.Neg, a) ->
    let va = tr_expr b a in
    let basic = if float_expr b a then Basic_op.B_fneg else Basic_op.B_ineg in
    emit_vn b basic [ va ] ("-" ^ expr_key b a)
  | Ast.Unop (Ast.Not, a) ->
    let va = tr_expr b a in
    emit_vn b Basic_op.B_ilogic [ va ] (".not. " ^ expr_key b a)
  | Ast.Binop (op, x, y) -> tr_binop b e op x y
  | Ast.Call (f, args) -> tr_call b e f args

and emit_vn b basic deps label =
  (* the label (a canonical rendering of the source expression) keeps
     constant-fed operations from colliding in the value table *)
  let key =
    String.concat ""
      ("op:" :: Basic_op.to_string basic :: ":"
      :: List.fold_right (fun d acc -> string_of_int d :: "," :: acc) deps [ ":"; label ])
  in
  match vn_lookup b ~is_load:false key with
  | Some id -> id
  | None ->
    let inv =
      b.flags.Flags.licm && b.loop_vars <> [] && List.for_all (is_invariant_value b) deps
      && (match basic with Basic_op.B_load _ | B_store _ | B_call -> false | _ -> true)
    in
    let id = emit b ~invariant:inv basic deps label in
    vn_record b ~is_load:false key id;
    id

and tr_address b subs =
  (* address arithmetic for an array reference; free when affine in the
     loop indices (update-form addressing / strength reduction) *)
  List.filter_map
    (fun sub ->
      if subscript_is_free b sub then None
      else (
        let v = tr_expr b sub in
        (* index scaling: one integer op to fold into the address *)
        let id = emit_vn b Basic_op.B_iadd [ v ] ("addr " ^ expr_key b sub) in
        Some id))
    subs

and tr_binop b whole op x y =
  let float = float_expr b whole in
  let prec = prec_of b whole in
  match op with
  | Ast.Add | Ast.Sub when float && b.flags.Flags.fma_fusion ->
    (* FMA fusion: a*b + c, c + a*b, a*b - c *)
    let fuse mx my other order_label =
      let vx = tr_expr b mx in
      let vy = tr_expr b my in
      let vo = tr_expr b other in
      emit_vn b (Basic_op.B_fma prec) [ vx; vy; vo ] order_label
    in
    (match (op, x, y) with
     | _, Ast.Binop (Ast.Mul, mx, my), other when float_expr b x ->
       fuse mx my other ("fma " ^ expr_key b whole)
     | Ast.Add, other, Ast.Binop (Ast.Mul, mx, my) when float_expr b y ->
       fuse mx my other ("fma " ^ expr_key b whole)
     | _ ->
       let vx = tr_expr b x and vy = tr_expr b y in
       let basic = if op = Ast.Add then Basic_op.B_fadd prec else Basic_op.B_fsub prec in
       emit_vn b basic [ vx; vy ] (expr_key b whole))
  | Ast.Add | Ast.Sub ->
    let vx = tr_expr b x and vy = tr_expr b y in
    let basic =
      if float then if op = Ast.Add then Basic_op.B_fadd prec else Basic_op.B_fsub prec
      else if op = Ast.Add then Basic_op.B_iadd
      else Basic_op.B_isub
    in
    emit_vn b basic [ vx; vy ] (expr_key b whole)
  | Ast.Mul ->
    let vx = tr_expr b x and vy = tr_expr b y in
    if float then emit_vn b (Basic_op.B_fmul prec) [ vx; vy ] (expr_key b whole)
    else if is_pow2_const x || is_pow2_const y then
      emit_vn b Basic_op.B_ishift [ vx; vy ] (expr_key b whole)
    else (
      let small = small_int_const x || small_int_const y in
      emit_vn b (Basic_op.B_imul { small }) [ vx; vy ] (expr_key b whole))
  | Ast.Div ->
    let vx = tr_expr b x and vy = tr_expr b y in
    if float then emit_vn b (Basic_op.B_fdiv prec) [ vx; vy ] (expr_key b whole)
    else if is_pow2_const y then emit_vn b Basic_op.B_ishift [ vx; vy ] (expr_key b whole)
    else emit_vn b Basic_op.B_idiv [ vx; vy ] (expr_key b whole)
  | Ast.Pow -> tr_pow b whole x y
  | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
    let vx = tr_expr b x and vy = tr_expr b y in
    let basic = if float_expr b x || float_expr b y then Basic_op.B_fcmp else Basic_op.B_icmp in
    emit_vn b basic [ vx; vy ] (expr_key b whole)
  | Ast.And | Ast.Or ->
    let vx = tr_expr b x and vy = tr_expr b y in
    emit_vn b Basic_op.B_ilogic [ vx; vy ] (expr_key b whole)

and tr_pow b whole x y =
  let float = float_expr b whole in
  let prec = prec_of b whole in
  match y with
  | Ast.Int k when k >= 1 && k <= 16 ->
    (* repeated squaring chain *)
    let vx = tr_expr b x in
    let mul_basic = if float then Basic_op.B_fmul prec else Basic_op.B_imul { small = false } in
    let rec build k =
      if k = 1 then vx
      else if k land 1 = 0 then (
        let h = build (k / 2) in
        emit_vn b mul_basic [ h; h ] (Printf.sprintf "pow^%d" k))
      else (
        let h = build (k - 1) in
        emit_vn b mul_basic [ h; vx ] (Printf.sprintf "pow^%d" k))
    in
    build k
  | _ ->
    (* x ** y = exp(y * log x): log, multiply, exp *)
    let vx = tr_expr b x and vy = tr_expr b y in
    let l = emit_vn b (Basic_op.B_intrinsic "flog") [ vx ] "log" in
    let m = emit_vn b (Basic_op.B_fmul prec) [ l; vy ] "y*log x" in
    emit_vn b (Basic_op.B_intrinsic "fexp") [ m ] "exp"

and tr_call b whole f args =
  match Intrinsics.find f with
  | Some info -> (
    let vargs = List.map (tr_expr b) args in
    match info.cost with
    | Intrinsics.Arith atomic -> emit_vn b (Basic_op.B_intrinsic atomic) vargs (expr_key b whole)
    | Intrinsics.Minmax ->
      (* n-ary min/max: n-1 compare+select chains *)
      (match vargs with
       | [] -> free_value
       | first :: rest ->
         List.fold_left
           (fun acc v -> emit_vn b Basic_op.B_fselect [ acc; v ] (f ^ " select"))
           first rest)
    | Intrinsics.Conversion ->
      let basic = if info.result_real then Basic_op.B_cvt_if else Basic_op.B_cvt_fi in
      emit_vn b basic vargs (expr_key b whole)
    | Intrinsics.Free -> (match vargs with v :: _ -> v | [] -> free_value))
  | None ->
    (* external call: arguments are passed by reference, so their values
       need not be computed here, but the call itself costs *)
    let vargs = List.map (tr_expr b) args in
    emit b Basic_op.B_call vargs ("call " ^ f)

(* reduction accumulator: x = x + e / x = x - e / x = e + x *)
let reduction_rhs x (e : Ast.expr) =
  match e with
  | Ast.Binop (Ast.Add, Ast.Var y, rest) when String.equal x y -> Some rest
  | Ast.Binop (Ast.Add, rest, Ast.Var y) when String.equal x y -> Some rest
  | Ast.Binop (Ast.Sub, Ast.Var y, rest) when String.equal x y -> Some rest
  | _ -> None

let tr_assign b (lhs : Ast.lhs) (rhs : Ast.expr) =
  let lhs_float =
    match Typecheck.lookup b.symtab lhs.base with
    | Some s -> Typecheck.is_float_type s.ty
    | None -> Typecheck.is_float_type (Typecheck.expr_type b.symtab (Ast.Var lhs.base))
  in
  let coerce v rhs_e =
    let rhs_float = float_expr b rhs_e in
    if lhs_float && not rhs_float then emit_vn b Basic_op.B_cvt_if [ v ] "coerce"
    else if (not lhs_float) && rhs_float then emit_vn b Basic_op.B_cvt_fi [ v ] "coerce"
    else v
  in
  if lhs.subs = [] then (
    let x = lhs.base in
    let is_reduction =
      b.flags.Flags.sum_reduction && b.loop_vars <> []
      && Option.is_some (reduction_rhs x rhs)
      && not (List.mem_assoc x b.scalar_env)
    in
    if is_reduction then (
      (* the accumulator lives in a register: its initial load and final
         store are one-time costs *)
      let init =
        emit b ~invariant:true (Basic_op.B_load { float = lhs_float }) [] ("load acc " ^ x)
      in
      b.scalar_env <- (x, init) :: b.scalar_env;
      let v = coerce (tr_expr b rhs) rhs in
      b.scalar_env <- (x, v) :: List.remove_assoc x b.scalar_env;
      ignore
        (emit b ~invariant:true (Basic_op.B_store { float = lhs_float }) [ v ]
           ("store acc " ^ x)))
    else (
      let v = coerce (tr_expr b rhs) rhs in
      b.scalar_env <- (x, v) :: List.remove_assoc x b.scalar_env;
      ignore (emit b (Basic_op.B_store { float = lhs_float }) [ v ] ("store " ^ x))))
  else (
    let v = coerce (tr_expr b rhs) rhs in
    let addr = tr_address b lhs.subs in
    let id =
      emit b (Basic_op.B_store { float = lhs_float }) (v :: addr)
        ("store " ^ lhs.base ^ "(...)")
    in
    b.last_store <- (lhs.base, id) :: List.remove_assoc lhs.base b.last_store)

(* ---- DCE ---- *)

let dce (instrs : instr array) =
  let n = Array.length instrs in
  let live = Array.make n false in
  let rec mark i =
    if not live.(i) then (
      live.(i) <- true;
      List.iter mark instrs.(i).deps)
  in
  Array.iteri
    (fun i ins ->
      match ins.basic with
      | Basic_op.B_store _ | B_call | B_branch | B_branch_cond -> mark i
      | _ -> ())
    instrs;
  live

(* ---- expansion to atomic DAGs ---- *)

let build_dags (b : builder) : Dag.t * Dag.t =
  let instrs = Array.sub b.instrs 0 b.count in
  let live = if b.flags.Flags.dce then dce instrs else Array.map (fun _ -> true) instrs in
  (* split into (body, one_time); each basic op expands to a chain of
     atomics. Track, per instr, the dag ("which side") and last atomic
     index, so dependences can be remapped. Cross-side deps are dropped:
     the value is in a register by the time the body runs. *)
  let body = ref [] and one_time = ref [] in
  let body_n = ref 0 and one_n = ref 0 in
  let place = Array.make (Array.length instrs) None in
  Array.iteri
    (fun i ins ->
      if live.(i) then (
        let invariant = ins.invariant in
        let atoms = Atomic_map.map b.machine ins.basic in
        let deps =
          List.filter_map
            (fun d ->
              match place.(d) with
              | Some (inv, last) when inv = invariant -> Some last
              | _ -> None (* cross-side or dead: register-resident *))
            ins.deps
        in
        let target, counter = if invariant then (one_time, one_n) else (body, body_n) in
        let last =
          List.fold_left
            (fun prev atom ->
              let deps = match prev with None -> deps | Some p -> [ p ] in
              target := (atom, deps, ins.label) :: !target;
              let id = !counter in
              counter := id + 1;
              Some id)
            None atoms
        in
        match last with
        | Some l -> place.(i) <- Some (invariant, l)
        | None -> ()))
    instrs;
  let finish lst = Dag.make (Array.of_list (List.rev_map (fun (a, d, l) -> (a, d, l)) !lst)) in
  (finish body, finish one_time)

let make_builder ~machine ~flags ~symtab ~loop_vars ~invariants =
  {
    machine;
    flags;
    symtab;
    loop_vars;
    invariants;
    instrs = [||];
    count = 0;
    vtable = Hashtbl.create 16;
    etype = Hashtbl.create 16;
    ekey = Hashtbl.create 16;
    reg_queue = [];
    scalar_env = [];
    last_store = [];
    n_loads = 0;
    n_stores = 0;
    n_flops = 0;
    n_intops = 0;
  }

let result_of_builder b =
  let body, one_time = build_dags b in
  {
    body;
    one_time;
    loads = b.n_loads;
    stores = b.n_stores;
    flops = b.n_flops;
    int_ops = b.n_intops;
  }

let translate_block ~machine ?(flags = Flags.default) ~symtab ?(loop_vars = [])
    ?(invariants = SSet.empty) stmts =
  let b = make_builder ~machine ~flags ~symtab ~loop_vars ~invariants in
  List.iter
    (fun (s : Ast.stmt) ->
      match s.kind with
      | Ast.Assign (lhs, rhs) -> tr_assign b lhs rhs
      | Ast.Call_stmt (f, args) ->
        let vargs = List.map (tr_expr b) args in
        ignore (emit b Basic_op.B_call vargs ("call " ^ f))
      | Ast.Return -> ()
      | Ast.Do _ | Ast.If _ -> raise (Not_straight_line s.loc))
    stmts;
  result_of_builder b

let translate_condition ~machine ?(flags = Flags.default) ~symtab ?(loop_vars = [])
    ?(invariants = SSet.empty) cond =
  let b = make_builder ~machine ~flags ~symtab ~loop_vars ~invariants in
  let v = tr_expr b cond in
  ignore (emit b Basic_op.B_branch_cond [ v ] "if branch");
  result_of_builder b

let translate_exprs ~machine ?(flags = Flags.default) ~symtab ?(loop_vars = [])
    ?(invariants = SSet.empty) exprs =
  let b = make_builder ~machine ~flags ~symtab ~loop_vars ~invariants in
  (* evaluation only: results are consumed by loop control, so pin them
     live by disabling DCE for this builder *)
  let b = { b with flags = { b.flags with Flags.dce = false } } in
  List.iter (fun e -> ignore (tr_expr b e)) exprs;
  result_of_builder b

let loop_overhead_dag ~machine () =
  let iadd = Machine.atomic machine "iadd" in
  let icmp = Machine.atomic machine "icmp" in
  let bc = Machine.atomic machine "branch_cond" in
  Dag.make
    [| (iadd, [], "index += step"); (icmp, [ 0 ], "index <= bound"); (bc, [ 1 ], "loop back") |]
