open Pperf_num
open Pperf_symbolic
open Pperf_lang
open Pperf_machine

type ref_group = {
  array : string;
  leader : Analysis.array_ref;
  members : int;
  elements : Poly.t;
  lines : Poly.t;
  min_stride_bytes : int option;
}

(* trip count of a loop as a polynomial (fresh variable when symbolic step
   defeats the closed form) *)
let trip_poly (l : Analysis.loop_ctx) =
  match Sym_expr.trip_count ~lo:l.llo ~hi:l.lhi ~step:l.lstep with
  | Some p -> p
  | None -> Poly.var ("trip_" ^ l.lvar)

(* linearized element address of a reference (column-major), as a
   polynomial over loop indices and symbolic extents; None when a
   subscript is not polynomial *)
let linearize ~symtab (r : Analysis.array_ref) : Poly.t option =
  match Typecheck.lookup symtab r.array with
  | None -> None
  | Some sym ->
    let extents = Typecheck.array_extent sym in
    let lower (d : Ast.array_dim) =
      match d.dim_lo with
      | None -> Some Poly.one
      | Some lo -> Sym_expr.to_poly lo
    in
    let rec go subs dims exts scale acc =
      match (subs, dims, exts) with
      | [], [], _ -> Some acc
      | sub :: subs', dim :: dims', ext :: exts' -> (
        match (Sym_expr.to_poly sub, lower dim) with
        | Some sp, Some lp ->
          let term = Poly.mul (Poly.sub sp lp) scale in
          go subs' dims' exts' (Poly.mul scale ext) (Poly.add acc term)
        | _ -> None)
      | _ -> None
    in
    go r.subs sym.dims extents Poly.one Poly.zero

(* constant integer coefficient of a degree-1 variable, if any *)
let const_coeff var poly =
  let cs = Poly.coeffs_in var poly in
  if List.exists (fun (k, _) -> k < 0 || k > 1) cs then None
  else
    match List.assoc_opt 1 cs with
    | None -> Some 0
    | Some c -> (
      match Poly.to_const c with
      | Some r when Rat.is_integer r -> Rat.to_int r
      | _ -> None)

(* Can lines touched by the loops inside [outer_idx] survive in the cache
   so that the next outer iteration reuses them? Needs concrete trip counts;
   accounts for set conflicts when the stride is line-aligned. *)
let reuse_fits ~machine ~bounds inner_lines stride_bytes =
  let cache = machine.Machine.cache in
  match bounds with
  | None -> false (* symbolically unknown: be conservative, no cross-loop reuse *)
  | Some b ->
    let lines =
      match Rat.to_int (Poly.eval (fun v -> Rat.of_int (b v)) inner_lines) with
      | Some v -> max 1 v
      | None -> max_int
    in
    let assoc = if cache.associativity <= 0 then cache.cache_bytes / cache.line_bytes else cache.associativity in
    let num_sets = max 1 (cache.cache_bytes / (cache.line_bytes * assoc)) in
    (* effective capacity: a line-aligned power-of-two-ish stride hits only
       a fraction of the sets *)
    let effective_sets =
      match stride_bytes with
      | Some s when s >= cache.line_bytes && s mod cache.line_bytes = 0 ->
        let stride_lines = s / cache.line_bytes in
        let rec gcd a b = if b = 0 then a else gcd b (a mod b) in
        num_sets / gcd stride_lines num_sets |> max 1
      | _ -> num_sets
    in
    lines * cache.line_bytes <= effective_sets * assoc * cache.line_bytes

let analyze_nest ?bounds ~machine ~symtab loops stmts =
  let cache = machine.Machine.cache in
  let refs = Analysis.array_refs stmts in
  (* group by (array, linear part); the constant offset is dropped *)
  let tbl : (string, Analysis.array_ref * Poly.t option * int ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let order = ref [] in
  List.iter
    (fun (r : Analysis.array_ref) ->
      let lin = linearize ~symtab r in
      let key =
        match lin with
        | Some p ->
          let linear_part = Poly.sub p (Poly.const (Poly.constant_term p)) in
          r.array ^ "|" ^ Poly.to_string linear_part
        | None -> r.array ^ "|?" ^ string_of_int (Hashtbl.length tbl)
      in
      match Hashtbl.find_opt tbl key with
      | Some (_, _, count) -> incr count
      | None ->
        Hashtbl.add tbl key (r, lin, ref 1);
        order := key :: !order)
    refs;
  let loop_vars = List.map (fun (l : Analysis.loop_ctx) -> l.lvar) loops in
  List.rev !order
  |> List.map (fun key ->
         let r, lin, count = Hashtbl.find tbl key in
         let elem_bytes =
           match Typecheck.lookup symtab r.array with
           | Some s -> s.element_bytes
           | None -> 4
         in
         match lin with
         | None ->
           (* unanalyzable: every iteration may touch a new line *)
           let all_trips =
             List.fold_left (fun acc l -> Poly.mul acc (trip_poly l)) Poly.one loops
           in
           {
             array = r.array;
             leader = r;
             members = !count;
             elements = all_trips;
             lines = all_trips;
             min_stride_bytes = None;
           }
         | Some addr ->
           (* loops whose index the address depends on *)
           let varying =
             List.filter (fun (l : Analysis.loop_ctx) -> Poly.mem_var l.lvar addr) loops
           in
           let elements =
             List.fold_left (fun acc l -> Poly.mul acc (trip_poly l)) Poly.one varying
           in
           (* per-loop constant strides, innermost first *)
           let stride_of (l : Analysis.loop_ctx) =
             match const_coeff l.Analysis.lvar addr with
             | Some c ->
               let step =
                 match l.lstep with
                 | None -> 1
                 | Some (Ast.Int s) -> abs s
                 | Some _ -> 1
               in
               Some (abs c * step * elem_bytes)
             | None -> None
           in
           (* walk loops innermost -> outermost, accumulating the lines the
              sub-nest touches. A loop whose stride is below the line size
              shares lines along its direction: always for the innermost
              varying loop (a contiguous streak), and for an outer loop only
              when the inner sub-nest's lines provably survive in the cache
              (Ferrante-Sarkar-Thrash localized iteration space). *)
           let inner_first = List.rev varying in
           (* stride of the innermost varying loop, for set-conflict
              estimation of the surviving lines *)
           let s_inner_of_group =
             match inner_first with [] -> None | l :: _ -> stride_of l
           in
           let lines, _ =
             List.fold_left
               (fun (cum, is_innermost) (l : Analysis.loop_ctx) ->
                 let trip = trip_poly l in
                 let s = stride_of l in
                 let shares =
                   match s with
                   | Some s when s > 0 && s < cache.line_bytes ->
                     is_innermost || reuse_fits ~machine ~bounds cum s_inner_of_group
                   | _ -> false
                 in
                 let contribution =
                   if shares then
                     Poly.scale (Rat.of_ints (Option.get s) cache.line_bytes) trip
                   else trip
                 in
                 (Poly.mul cum contribution, false))
               (Poly.one, true) inner_first
           in
           let stride_bytes =
             match inner_first with
             | [] -> Some 0
             | l :: _ -> stride_of l
           in
           {
             array = r.array;
             leader = r;
             members = !count;
             elements;
             lines;
             min_stride_bytes = stride_bytes;
           })
  |> List.filter (fun g -> ignore loop_vars; not (Poly.is_zero g.lines))

let nest_cost ?bounds ~machine ~symtab loops stmts =
  let cache = machine.Machine.cache in
  let groups = analyze_nest ?bounds ~machine ~symtab loops stmts in
  List.fold_left
    (fun acc g ->
      let miss_cost = Poly.scale_int cache.miss_cycles g.lines in
      let tlb_cost =
        match g.min_stride_bytes with
        | Some s when s >= cache.page_bytes ->
          (* page-grained strides thrash the TLB: one TLB miss per element *)
          Poly.scale_int cache.tlb_miss_cycles g.elements
        | _ -> Poly.zero
      in
      Poly.add acc (Poly.add miss_cost tlb_cost))
    Poly.zero groups

let footprint_bytes ~machine ~symtab loops stmts =
  let groups = analyze_nest ~machine ~symtab loops stmts in
  List.fold_left
    (fun acc g ->
      let elem_bytes =
        match Typecheck.lookup symtab g.array with Some s -> s.element_bytes | None -> 4
      in
      Poly.add acc (Poly.scale_int elem_bytes g.elements))
    Poly.zero groups

module Sim = struct
  type t = {
    params : Machine.cache_params;
    sets : int;
    assoc : int;
    tags : int array array;  (** [set][way] = line tag, -1 empty *)
    lru : int array array;  (** last-use stamps *)
    mutable clock : int;
    mutable misses : int;
    mutable accesses : int;
  }

  let create (params : Machine.cache_params) =
    let assoc = if params.associativity <= 0 then params.cache_bytes / params.line_bytes else params.associativity in
    let sets = max 1 (params.cache_bytes / (params.line_bytes * assoc)) in
    {
      params;
      sets;
      assoc;
      tags = Array.make_matrix sets assoc (-1);
      lru = Array.make_matrix sets assoc 0;
      clock = 0;
      misses = 0;
      accesses = 0;
    }

  let access t addr =
    t.clock <- t.clock + 1;
    t.accesses <- t.accesses + 1;
    let line = addr / t.params.line_bytes in
    let set = line mod t.sets in
    let tags = t.tags.(set) and lru = t.lru.(set) in
    let hit = ref false in
    (try
       for w = 0 to t.assoc - 1 do
         if tags.(w) = line then (
           lru.(w) <- t.clock;
           hit := true;
           raise Exit)
       done
     with Exit -> ());
    if not !hit then (
      t.misses <- t.misses + 1;
      (* evict LRU way *)
      let victim = ref 0 in
      for w = 1 to t.assoc - 1 do
        if lru.(w) < lru.(!victim) then victim := w
      done;
      tags.(!victim) <- line;
      lru.(!victim) <- t.clock);
    not !hit

  let misses t = t.misses
  let accesses t = t.accesses

  exception Non_int of Ast.expr

  (* integer expression evaluation under an environment *)
  let rec eval_int env (e : Ast.expr) : int =
    match e with
    | Ast.Int i -> i
    | Ast.Var x -> env x
    | Ast.Unop (Ast.Neg, a) -> -eval_int env a
    | Ast.Binop (Ast.Add, a, b) -> eval_int env a + eval_int env b
    | Ast.Binop (Ast.Sub, a, b) -> eval_int env a - eval_int env b
    | Ast.Binop (Ast.Mul, a, b) -> eval_int env a * eval_int env b
    | Ast.Binop (Ast.Div, a, b) -> eval_int env a / eval_int env b
    | Ast.Call ("mod", [ a; b ]) -> eval_int env a mod eval_int env b
    | Ast.Call ("min", args) | Ast.Call ("min0", args) ->
      List.fold_left (fun acc a -> min acc (eval_int env a)) max_int args
    | Ast.Call ("max", args) | Ast.Call ("max0", args) ->
      List.fold_left (fun acc a -> max acc (eval_int env a)) min_int args
    | _ -> raise (Non_int e)

  let run_nest ?(on_diag = fun (_ : Pperf_lint.Diagnostic.t) -> ()) ~machine ~symtab
      ~bounds loops stmts =
    (* report each offending source location once, however many iterations
       hit it *)
    let reported = Hashtbl.create 4 in
    let skip ~(loc : Srcloc.t) ~what e =
      if not (Hashtbl.mem reported (loc.line, loc.col, what)) then (
        Hashtbl.add reported (loc.line, loc.col, what) ();
        on_diag
          (Pperf_lint.Diagnostic.make Pperf_lint.Diagnostic.Precision
             ~check:"sim-non-integer" ~loc
             (Printf.sprintf
                "cache simulation skipped this %s: '%s' does not evaluate to an integer"
                what (Pp_ast.expr_to_string e))))
    in
    let cache = create machine.Machine.cache in
    (* lay arrays out at disjoint bases *)
    let bases = Hashtbl.create 8 in
    let next_base = ref 0 in
    let base_of name =
      match Hashtbl.find_opt bases name with
      | Some entry -> entry
      | None ->
        let sym = Typecheck.lookup symtab name in
        let elem_bytes, extents, lows =
          match sym with
          | Some s ->
            let exts =
              List.map
                (fun p ->
                  let v = Poly.eval (fun x -> Rat.of_int (bounds x)) p in
                  match Rat.to_int v with Some i -> max 1 i | None -> 1)
                (Typecheck.array_extent s)
            in
            let lows =
              List.map
                (fun (d : Ast.array_dim) ->
                  match d.dim_lo with None -> 1 | Some e -> eval_int bounds e)
                s.dims
            in
            (s.element_bytes, exts, lows)
          | None -> (4, [ 1024 ], [ 1 ])
        in
        let size = elem_bytes * List.fold_left ( * ) 1 extents in
        let b = !next_base in
        next_base := b + size + machine.Machine.cache.line_bytes (* pad *);
        Hashtbl.add bases name (b, (elem_bytes, extents, lows));
        (b, (elem_bytes, extents, lows))
    in
    let touch env (r : Analysis.array_ref) =
      try
        let b, (elem_bytes, extents, lows) = base_of r.array in
        let idxs = List.map (eval_int env) r.subs in
        let rec addr idxs extents lows scale acc =
          match (idxs, extents, lows) with
          | [], _, _ -> acc
          | i :: is, e :: es, l :: ls -> addr is es ls (scale * e) (acc + ((i - l) * scale))
          | i :: is, [], [] -> addr is [] [] scale (acc + ((i - 1) * scale))
          | _ -> acc
        in
        let a = addr idxs extents lows 1 0 in
        ignore (access cache (b + (a * elem_bytes)))
      with Non_int e -> skip ~loc:r.at ~what:"array reference" e
    in
    let rec exec env (ss : Ast.stmt list) =
      List.iter
        (fun (s : Ast.stmt) ->
          match s.kind with
          | Ast.Assign (lhs, e) ->
            (* reads first, then the write *)
            let reads = Analysis.array_refs [ Ast.mk (Ast.Assign ({ lhs with subs = [] }, e)) ] in
            List.iter (fun r -> touch env { r with loops = [] }) reads;
            if lhs.subs <> [] then
              touch env { array = lhs.base; subs = lhs.subs; is_write = true; loops = []; at = s.loc }
          | Ast.Do d -> (
            match
              ( eval_int env d.lo,
                eval_int env d.hi,
                match d.step with None -> 1 | Some e -> eval_int env e )
            with
            | lo, hi, step ->
              let i = ref lo in
              while (step > 0 && !i <= hi) || (step < 0 && !i >= hi) do
                let env' x = if String.equal x d.var then !i else env x in
                exec env' d.body;
                i := !i + step
              done
            | exception Non_int e -> skip ~loc:s.loc ~what:"loop bound" e)
          | Ast.If (branches, els) ->
            (* execute the first branch: for cost validation we take the
               hot path; conditions with array refs are rare in our
               workloads *)
            (match branches with
             | (_, body) :: _ -> exec env body
             | [] -> exec env els)
          | Ast.Call_stmt _ | Ast.Return -> ())
        ss
    in
    let outer_env x = bounds x in
    (* wrap the statement list in the given loops *)
    let wrapped =
      List.fold_right
        (fun (l : Analysis.loop_ctx) inner ->
          [ Ast.mk (Ast.Do { var = l.lvar; lo = l.llo; hi = l.lhi; step = l.lstep; body = inner }) ])
        loops stmts
    in
    exec outer_env wrapped;
    (misses cache, accesses cache)
end
