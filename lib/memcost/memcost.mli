(** Memory access cost (§2.3): cache lines, TLB, page faults.

    "The total number of cache line accesses is counted and the cost of
    filling these cache lines is used to approximate the memory cost",
    following Ferrante–Sarkar–Thrash [8]. The count is computed
    {e symbolically} over the loop-nest trip counts, so blocked and
    unblocked variants can be compared without knowing the array sizes —
    one of the paper's showcased benefits of symbolic processing (§3.3.1:
    blocking changes the cache expression, not the straight-line cost).

    References are grouped into {e uniformly generated} classes (same
    linear part, constant offset difference): the members of a class walk
    the same line stream and are counted once. *)

open Pperf_symbolic
open Pperf_lang
open Pperf_machine

type ref_group = {
  array : string;
  leader : Analysis.array_ref;
  members : int;  (** references sharing this line stream *)
  elements : Poly.t;  (** distinct elements touched over the nest *)
  lines : Poly.t;  (** distinct cache lines fetched over the nest *)
  min_stride_bytes : int option;
      (** constant byte stride of the innermost varying loop, when known *)
}

val analyze_nest :
  ?bounds:(string -> int) ->
  machine:Machine.t ->
  symtab:Typecheck.symtab ->
  Analysis.loop_ctx list ->
  Ast.stmt list ->
  ref_group list
(** Loops outermost first; trip counts may be symbolic. When [bounds]
    provides concrete values for the unknowns, line reuse across outer
    loops is credited whenever the inner sub-nest's lines provably survive
    in the cache (capacity and set-conflict checked); without [bounds]
    only the innermost streak shares lines — conservative but fully
    symbolic. *)

val nest_cost :
  ?bounds:(string -> int) ->
  machine:Machine.t ->
  symtab:Typecheck.symtab ->
  Analysis.loop_ctx list ->
  Ast.stmt list ->
  Poly.t
(** Total memory cycles: [sum lines * miss_cycles], plus a TLB term when
    page-grained strides are recognizable. *)

val footprint_bytes :
  machine:Machine.t ->
  symtab:Typecheck.symtab ->
  Analysis.loop_ctx list ->
  Ast.stmt list ->
  Poly.t
(** Distinct bytes touched — compare against the cache size to decide
    whether a blocking transformation pays off. *)

(** {1 Validation: a direct set-associative LRU cache simulator} *)

module Sim : sig
  type t

  val create : Machine.cache_params -> t

  val access : t -> int -> bool
  (** [access t byte_addr] returns [true] on a miss. *)

  val misses : t -> int
  val accesses : t -> int

  val run_nest :
    ?on_diag:(Pperf_lint.Diagnostic.t -> unit) ->
    machine:Machine.t ->
    symtab:Typecheck.symtab ->
    bounds:(string -> int) ->
    Analysis.loop_ctx list ->
    Ast.stmt list ->
    int * int
  (** Enumerate the iteration space with concrete bounds, simulate every
      array access in column-major layout, and return
      [(misses, accesses)]. Exponential in principle — use small bounds.

      A subscript or loop bound that does not evaluate to an integer
      (a real-typed expression, an unknown intrinsic) does not abort the
      simulation: the offending reference or loop is skipped and one
      [Precision] diagnostic per source location is passed to [on_diag]
      (dropped by default). *)
end
