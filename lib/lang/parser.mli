(** Recursive-descent parser for PF.

    Grammar sketch (see the README for examples):
    {v
    unit   ::= header NL (decl | stmt)* "end" ... NL
    header ::= "program" id | "subroutine" id [ "(" ids ")" ]
             | type "function" id "(" ids ")"
    decl   ::= type name [ "(" dims ")" ] { "," ... }
    stmt   ::= lhs "=" expr NL
             | "do" id "=" expr "," expr ["," expr] NL stmt* "enddo" NL
             | "if" "(" expr ")" "then" NL ... ["else" ...] "endif" NL
             | "if" "(" expr ")" stmt
             | "call" id ["(" exprs ")"] NL
             | "return" NL
    v} *)

exception Error of string * Srcloc.t

val parse_program : string -> Ast.program
(** @raise Error (also re-raised from {!Lexer.Error}) with position info. *)

val parse_routine : string -> Ast.routine
(** Parse a source containing exactly one unit. *)

val parse_stmts : string -> Ast.stmt list
(** Parse a bare statement sequence (no enclosing unit) — convenient for
    tests and examples. *)

val parse_expr : string -> Ast.expr
