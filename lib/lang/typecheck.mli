(** Name resolution and type checking for PF routines.

    Also resolves the Fortran parse ambiguity between array references and
    function calls: [a(i)] parses as an array reference and is rewritten to
    a call when [a] is not declared as an array. Undeclared names receive
    Fortran implicit types (I-N integer, the rest real). *)

type sym = {
  ty : Ast.dtype;
  dims : Ast.array_dim list;  (** [[]] for scalars *)
  is_param : bool;
  element_bytes : int;
}

type symtab

exception Type_error of string * Srcloc.t

type checked = {
  routine : Ast.routine;  (** with Index/Call ambiguities resolved *)
  symbols : symtab;
}

val check_routine : Ast.routine -> checked
val check_program : Ast.program -> checked list

val lookup : symtab -> string -> sym option
val symbols_list : symtab -> (string * sym) list

val expr_type : symtab -> Ast.expr -> Ast.dtype
(** @raise Type_error on ill-typed expressions. *)

val is_float_type : Ast.dtype -> bool
val type_bytes : Ast.dtype -> int

val array_extent : sym -> Pperf_symbolic.Poly.t list
(** Per-dimension element counts as symbolic polynomials (bounds may
    mention unknowns like [n]). *)
