open Lexer

exception Error of string * Srcloc.t

type state = { toks : spanned array; mutable i : int }

let cur st = st.toks.(st.i)
let peek_tok st = (cur st).tok
let loc st = (cur st).loc
let advance st = st.i <- st.i + 1

let error st msg = raise (Error (msg ^ " (got " ^ token_to_string (peek_tok st) ^ ")", loc st))

let expect st tok msg =
  if peek_tok st = tok then advance st else error st ("expected " ^ msg)

let skip_newlines st =
  while peek_tok st = NEWLINE do
    advance st
  done

let end_of_stmt st =
  match peek_tok st with
  | NEWLINE -> advance st
  | EOF -> ()
  | _ -> error st "expected end of statement"

let at_kw st kw = match peek_tok st with IDENT id -> String.equal id kw | _ -> false

let eat_kw st kw = if at_kw st kw then (advance st; true) else false

let ident st =
  match peek_tok st with
  | IDENT id -> advance st; id
  | _ -> error st "expected identifier"

(* ---- expressions ---- *)

let rec parse_or st =
  let lhs = ref (parse_and st) in
  while peek_tok st = OR do
    advance st;
    lhs := Ast.Binop (Ast.Or, !lhs, parse_and st)
  done;
  !lhs

and parse_and st =
  let lhs = ref (parse_not st) in
  while peek_tok st = AND do
    advance st;
    lhs := Ast.Binop (Ast.And, !lhs, parse_not st)
  done;
  !lhs

and parse_not st =
  if peek_tok st = NOT then (
    advance st;
    Ast.Unop (Ast.Not, parse_not st))
  else parse_rel st

and parse_rel st =
  let lhs = parse_add st in
  let op =
    match peek_tok st with
    | EQ -> Some Ast.Eq | NE -> Some Ast.Ne
    | LT -> Some Ast.Lt | LE -> Some Ast.Le
    | GT -> Some Ast.Gt | GE -> Some Ast.Ge
    | _ -> None
  in
  match op with
  | None -> lhs
  | Some op ->
    advance st;
    Ast.Binop (op, lhs, parse_add st)

and parse_add st =
  let first =
    match peek_tok st with
    | MINUS -> advance st; Ast.Unop (Ast.Neg, parse_mul st)
    | PLUS -> advance st; parse_mul st
    | _ -> parse_mul st
  in
  let lhs = ref first in
  let rec loop () =
    match peek_tok st with
    | PLUS ->
      advance st;
      lhs := Ast.Binop (Ast.Add, !lhs, parse_mul st);
      loop ()
    | MINUS ->
      advance st;
      lhs := Ast.Binop (Ast.Sub, !lhs, parse_mul st);
      loop ()
    | _ -> ()
  in
  loop ();
  !lhs

and parse_mul st =
  let lhs = ref (parse_pow st) in
  let rec loop () =
    match peek_tok st with
    | STAR ->
      advance st;
      lhs := Ast.Binop (Ast.Mul, !lhs, parse_pow st);
      loop ()
    | SLASH ->
      advance st;
      lhs := Ast.Binop (Ast.Div, !lhs, parse_pow st);
      loop ()
    | _ -> ()
  in
  loop ();
  !lhs

and parse_pow st =
  let base = parse_primary st in
  if peek_tok st = POW then (
    advance st;
    (* right associative; allow unary minus in exponent *)
    let exp = match peek_tok st with
      | MINUS -> advance st; Ast.Unop (Ast.Neg, parse_pow st)
      | _ -> parse_pow st
    in
    Ast.Binop (Ast.Pow, base, exp))
  else base

and parse_primary st =
  match peek_tok st with
  | INT_LIT i -> advance st; Ast.Int i
  | REAL_LIT (f, ty) -> advance st; Ast.Real (f, ty)
  | LOGICAL_LIT b -> advance st; Ast.Logical b
  | LPAREN ->
    advance st;
    let e = parse_or st in
    expect st RPAREN ")";
    e
  | IDENT id ->
    advance st;
    if peek_tok st = LPAREN then (
      advance st;
      let args = parse_args st in
      expect st RPAREN ")";
      if Intrinsics.is_intrinsic id then Ast.Call (id, args) else Ast.Index (id, args))
    else Ast.Var id
  | _ -> error st "expected expression"

and parse_args st =
  if peek_tok st = RPAREN then []
  else (
    let rec loop acc =
      let e = parse_or st in
      if peek_tok st = COMMA then (
        advance st;
        loop (e :: acc))
      else List.rev (e :: acc)
    in
    loop [])

let parse_expression = parse_or

(* ---- statements ---- *)

let parse_dtype st =
  if eat_kw st "integer" then Some Ast.Tint
  else if eat_kw st "real" then Some Ast.Treal
  else if eat_kw st "logical" then Some Ast.Tlogical
  else if at_kw st "double" then (
    advance st;
    if not (eat_kw st "precision") then error st "expected 'precision' after 'double'";
    Some Ast.Tdouble)
  else None

let parse_decl st dty =
  (* after the type keyword: name [(dims)] {"," name [(dims)]} *)
  let parse_one () =
    let dname = ident st in
    let dims =
      if peek_tok st = LPAREN then (
        advance st;
        let rec loop acc =
          let e1 = parse_expression st in
          let dim =
            if peek_tok st = COLON then (
              advance st;
              let e2 = parse_expression st in
              { Ast.dim_lo = Some e1; dim_hi = e2 })
            else { Ast.dim_lo = None; dim_hi = e1 }
          in
          if peek_tok st = COMMA then (
            advance st;
            loop (dim :: acc))
          else (
            expect st RPAREN ")";
            List.rev (dim :: acc))
        in
        loop [])
      else []
    in
    { Ast.dname; dty; dims }
  in
  let rec loop acc =
    let d = parse_one () in
    if peek_tok st = COMMA then (
      advance st;
      loop (d :: acc))
    else List.rev (d :: acc)
  in
  let ds = loop [] in
  end_of_stmt st;
  ds

let is_block_end st =
  at_kw st "end" || at_kw st "enddo" || at_kw st "endif" || at_kw st "else"
  || at_kw st "elseif" || peek_tok st = EOF

let rec parse_stmt st : Ast.stmt =
  let sloc = loc st in
  if at_kw st "do" then (
    advance st;
    let var = ident st in
    expect st ASSIGN "=";
    let lo = parse_expression st in
    expect st COMMA ",";
    let hi = parse_expression st in
    let step =
      if peek_tok st = COMMA then (
        advance st;
        Some (parse_expression st))
      else None
    in
    end_of_stmt st;
    let body = parse_body st in
    (if eat_kw st "enddo" then ()
     else if eat_kw st "end" then (
       if not (eat_kw st "do") then error st "expected 'end do'")
     else error st "expected 'enddo'");
    end_of_stmt st;
    Ast.mk ~loc:sloc (Ast.Do { var; lo; hi; step; body }))
  else if at_kw st "if" then (
    advance st;
    expect st LPAREN "(";
    let cond = parse_expression st in
    expect st RPAREN ")";
    if at_kw st "then" then (
      advance st;
      end_of_stmt st;
      let first_body = parse_body st in
      let branches = ref [ (cond, first_body) ] in
      let else_body = ref [] in
      let rec elses () =
        if eat_kw st "elseif" then else_if ()
        else if at_kw st "else" then (
          advance st;
          if eat_kw st "if" then else_if ()
          else (
            end_of_stmt st;
            else_body := parse_body st;
            close ()))
        else close ()
      and else_if () =
        expect st LPAREN "(";
        let c = parse_expression st in
        expect st RPAREN ")";
        if not (eat_kw st "then") then error st "expected 'then'";
        end_of_stmt st;
        let b = parse_body st in
        branches := (c, b) :: !branches;
        elses ()
      and close () =
        if eat_kw st "endif" then ()
        else if eat_kw st "end" then (
          if not (eat_kw st "if") then error st "expected 'end if'")
        else error st "expected 'endif'";
        end_of_stmt st
      in
      elses ();
      Ast.mk ~loc:sloc (Ast.If (List.rev !branches, !else_body)))
    else (
      (* logical if: one statement on the same line *)
      let s = parse_stmt st in
      Ast.mk ~loc:sloc (Ast.If ([ (cond, [ s ]) ], []))))
  else if at_kw st "call" then (
    advance st;
    let name = ident st in
    let args =
      if peek_tok st = LPAREN then (
        advance st;
        let a = parse_args st in
        expect st RPAREN ")";
        a)
      else []
    in
    end_of_stmt st;
    Ast.mk ~loc:sloc (Ast.Call_stmt (name, args)))
  else if at_kw st "return" then (
    advance st;
    end_of_stmt st;
    Ast.mk ~loc:sloc Ast.Return)
  else (
    (* assignment *)
    let base = ident st in
    let subs =
      if peek_tok st = LPAREN then (
        advance st;
        let a = parse_args st in
        expect st RPAREN ")";
        a)
      else []
    in
    expect st ASSIGN "=";
    let e = parse_expression st in
    end_of_stmt st;
    Ast.mk ~loc:sloc (Ast.Assign ({ base; subs }, e)))

and parse_body st =
  skip_newlines st;
  let acc = ref [] in
  while not (is_block_end st) do
    acc := parse_stmt st :: !acc;
    skip_newlines st
  done;
  List.rev !acc

(* ---- units ---- *)

let parse_params st =
  if peek_tok st = LPAREN then (
    advance st;
    if peek_tok st = RPAREN then (
      advance st;
      [])
    else (
      let rec loop acc =
        let p = ident st in
        if peek_tok st = COMMA then (
          advance st;
          loop (p :: acc))
        else (
          expect st RPAREN ")";
          List.rev (p :: acc))
      in
      loop []))
  else []

let parse_unit st : Ast.routine =
  skip_newlines st;
  let rkind, rname, params =
    if eat_kw st "program" then (Ast.Main, ident st, [])
    else if eat_kw st "subroutine" then (
      let name = ident st in
      (Ast.Subroutine, name, parse_params st))
    else (
      match parse_dtype st with
      | Some ty ->
        if not (eat_kw st "function") then error st "expected 'function' after type";
        let name = ident st in
        (Ast.Function ty, name, parse_params st)
      | None -> error st "expected 'program', 'subroutine' or a typed 'function'")
  in
  end_of_stmt st;
  skip_newlines st;
  (* declarations first *)
  let decls = ref [] in
  let continue_decls = ref true in
  while !continue_decls do
    skip_newlines st;
    (* lookahead: a type keyword followed by 'function' starts a new unit; we
       are inside a unit so that cannot happen here *)
    let save = st.i in
    match parse_dtype st with
    | Some ty when not (at_kw st "function") -> decls := !decls @ parse_decl st ty
    | Some _ ->
      st.i <- save;
      continue_decls := false
    | None -> continue_decls := false
  done;
  let body = parse_body st in
  if not (eat_kw st "end") then error st "expected 'end'";
  (* optional: end subroutine foo / end program / end function *)
  (if at_kw st "subroutine" || at_kw st "program" || at_kw st "function" then (
     advance st;
     match peek_tok st with IDENT _ -> advance st | _ -> ()));
  end_of_stmt st;
  { Ast.rname; rkind; params; decls = !decls; body }

let with_state src f =
  try f { toks = Lexer.tokenize src; i = 0 }
  with Lexer.Error (msg, l) -> raise (Error (msg, l))

let sp_parse = Pperf_obs.Obs.span "parse"

let parse_program src =
  Pperf_obs.Obs.time sp_parse (fun () ->
      with_state src (fun st ->
          let units = ref [] in
          skip_newlines st;
          while peek_tok st <> EOF do
            units := parse_unit st :: !units;
            skip_newlines st
          done;
          List.rev !units))

let parse_routine src =
  match parse_program src with
  | [ r ] -> r
  | rs -> raise (Error (Printf.sprintf "expected exactly one unit, found %d" (List.length rs), Srcloc.dummy))

let parse_stmts src =
  with_state src (fun st ->
      let body = parse_body st in
      (match peek_tok st with
       | EOF -> ()
       | _ -> error st "unexpected token after statements");
      body)

let parse_expr src =
  with_state src (fun st ->
      skip_newlines st;
      let e = parse_expression st in
      skip_newlines st;
      (match peek_tok st with
       | EOF -> ()
       | _ -> error st "unexpected token after expression");
      e)
