(** Program analysis over PF ASTs: loop structure, variable def/use, and
    array reference collection.

    The paper's framework assumes "the cost model does not need to do most
    of the analysis needed for these tasks since [the] program analyzer can
    provide these information" (§2.2.2) — this module is that analyzer. *)

module SSet : Set.S with type elt = string

type loop_ctx = {
  lvar : string;
  llo : Ast.expr;
  lhi : Ast.expr;
  lstep : Ast.expr option;
}

type array_ref = {
  array : string;
  subs : Ast.expr list;
  is_write : bool;
  loops : loop_ctx list;  (** enclosing loops, outermost first *)
  at : Srcloc.t;
}

val array_refs : Ast.stmt list -> array_ref list
(** All array references in textual order, with their loop context. *)

val assigned_vars : Ast.stmt list -> SSet.t
(** Scalars and arrays that may be written (loop indices included). *)

val used_vars : Ast.stmt list -> SSet.t
(** Scalars and arrays read. *)

val expr_reads : Ast.expr -> SSet.t

val loop_indices : Ast.stmt list -> SSet.t
(** All [do] indices in the fragment. *)

val has_call : Ast.expr -> bool
(** Whether the expression contains any function call. *)

val is_invariant_expr : SSet.t -> Ast.expr -> bool
(** [is_invariant_expr assigned e]: no variable read by [e] is in
    [assigned] and [e] has no calls (calls may have side effects). *)

val perfect_nest : Ast.do_loop -> loop_ctx list * Ast.stmt list
(** Longest chain of singly-nested loops from this loop inward, and the
    innermost body. *)

val innermost_bodies : Ast.stmt list -> (loop_ctx list * Ast.stmt list) list
(** Every maximal innermost loop body (no [do] inside) with its loop
    context — the granularity of straight-line cost estimation. *)

val count_statements : Ast.stmt list -> int

val scalar_expansion_candidates : Ast.stmt list -> SSet.t
(** Scalars both written and read within the fragment (e.g. reduction
    accumulators), relevant to the sum-reduction pattern (§2.2.2). *)
