module SSet = Set.Make (String)

type loop_ctx = {
  lvar : string;
  llo : Ast.expr;
  lhi : Ast.expr;
  lstep : Ast.expr option;
}

type array_ref = {
  array : string;
  subs : Ast.expr list;
  is_write : bool;
  loops : loop_ctx list;
  at : Srcloc.t;
}

let ctx_of_do (d : Ast.do_loop) = { lvar = d.var; llo = d.lo; lhi = d.hi; lstep = d.step }

let rec expr_array_refs loops at acc (e : Ast.expr) =
  match e with
  | Ast.Int _ | Ast.Real _ | Ast.Logical _ | Ast.Var _ -> acc
  | Ast.Index (a, subs) ->
    let acc = { array = a; subs; is_write = false; loops; at } :: acc in
    List.fold_left (expr_array_refs loops at) acc subs
  | Ast.Call (_, args) -> List.fold_left (expr_array_refs loops at) acc args
  | Ast.Unop (_, a) -> expr_array_refs loops at acc a
  | Ast.Binop (_, a, b) -> expr_array_refs loops at (expr_array_refs loops at acc a) b

let array_refs stmts =
  let rec go loops acc stmts =
    List.fold_left
      (fun acc (s : Ast.stmt) ->
        let at = s.loc in
        match s.kind with
        | Ast.Assign (lhs, e) ->
          let acc =
            if lhs.subs = [] then acc
            else (
              let acc = { array = lhs.base; subs = lhs.subs; is_write = true; loops; at } :: acc in
              List.fold_left (expr_array_refs loops at) acc lhs.subs)
          in
          expr_array_refs loops at acc e
        | Ast.If (branches, els) ->
          let acc =
            List.fold_left
              (fun acc (c, body) -> go loops (expr_array_refs loops at acc c) body)
              acc branches
          in
          go loops acc els
        | Ast.Do d ->
          let acc = List.fold_left (expr_array_refs loops at) acc (d.lo :: d.hi :: Option.to_list d.step) in
          go (loops @ [ ctx_of_do d ]) acc d.body
        | Ast.Call_stmt (_, args) -> List.fold_left (expr_array_refs loops at) acc args
        | Ast.Return -> acc)
      acc stmts
  in
  List.rev (go [] [] stmts)

let expr_reads e =
  Ast.fold_expr
    (fun acc e ->
      match e with
      | Ast.Var x -> SSet.add x acc
      | Ast.Index (a, _) -> SSet.add a acc
      | _ -> acc)
    SSet.empty e

let assigned_vars stmts =
  let acc = ref SSet.empty in
  Ast.iter_stmts
    (fun s ->
      match s.Ast.kind with
      | Ast.Assign (lhs, _) -> acc := SSet.add lhs.base !acc
      | Ast.Do d -> acc := SSet.add d.var !acc
      | Ast.Call_stmt (_, args) ->
        (* conservatively: any variable passed to a call may be modified *)
        List.iter
          (fun a ->
            match a with
            | Ast.Var x | Ast.Index (x, _) -> acc := SSet.add x !acc
            | _ -> ())
          args
      | _ -> ())
    stmts;
  !acc

let used_vars stmts =
  let acc = ref SSet.empty in
  let add_expr e = acc := SSet.union (expr_reads e) !acc in
  Ast.iter_stmts
    (fun s ->
      match s.Ast.kind with
      | Ast.Assign (lhs, e) ->
        List.iter add_expr lhs.subs;
        add_expr e
      | Ast.If (branches, _) -> List.iter (fun (c, _) -> add_expr c) branches
      | Ast.Do d ->
        add_expr d.lo;
        add_expr d.hi;
        Option.iter add_expr d.step
      | Ast.Call_stmt (_, args) -> List.iter add_expr args
      | Ast.Return -> ())
    stmts;
  !acc

let loop_indices stmts =
  let acc = ref SSet.empty in
  Ast.iter_stmts
    (fun s -> match s.Ast.kind with Ast.Do d -> acc := SSet.add d.var !acc | _ -> ())
    stmts;
  !acc

let rec has_call (e : Ast.expr) =
  match e with
  | Ast.Call _ -> true
  | Ast.Int _ | Ast.Real _ | Ast.Logical _ | Ast.Var _ -> false
  | Ast.Index (_, subs) -> List.exists has_call subs
  | Ast.Unop (_, a) -> has_call a
  | Ast.Binop (_, a, b) -> has_call a || has_call b

let is_invariant_expr assigned e =
  (not (has_call e)) && SSet.is_empty (SSet.inter (expr_reads e) assigned)

let rec perfect_nest (d : Ast.do_loop) =
  match d.body with
  | [ { Ast.kind = Ast.Do inner; _ } ] ->
    let inner_ctxs, body = perfect_nest inner in
    (ctx_of_do d :: inner_ctxs, body)
  | body -> ([ ctx_of_do d ], body)

let innermost_bodies stmts =
  let out = ref [] in
  let rec go loops stmts =
    let has_inner_do =
      List.exists (fun (s : Ast.stmt) -> match s.kind with Ast.Do _ -> true | _ -> false) stmts
    in
    if (not has_inner_do) && loops <> [] && stmts <> [] then out := (loops, stmts) :: !out
    else
      List.iter
        (fun (s : Ast.stmt) ->
          match s.kind with
          | Ast.Do d -> go (loops @ [ ctx_of_do d ]) d.body
          | Ast.If (branches, els) ->
            List.iter (fun (_, b) -> go loops b) branches;
            go loops els
          | _ -> ())
        stmts
  in
  go [] stmts;
  List.rev !out

let count_statements stmts =
  let n = ref 0 in
  Ast.iter_stmts (fun _ -> incr n) stmts;
  !n

let scalar_expansion_candidates stmts =
  let written = ref SSet.empty and read = ref SSet.empty in
  Ast.iter_stmts
    (fun s ->
      match s.Ast.kind with
      | Ast.Assign (lhs, e) ->
        if lhs.subs = [] then written := SSet.add lhs.base !written;
        read := SSet.union (expr_reads e) !read
      | _ -> ())
    stmts;
  SSet.inter !written !read
