type sym = {
  ty : Ast.dtype;
  dims : Ast.array_dim list;
  is_param : bool;
  element_bytes : int;
}

module SMap = Map.Make (String)

type symtab = sym SMap.t

exception Type_error of string * Srcloc.t

type checked = { routine : Ast.routine; symbols : symtab }

let is_float_type = function Ast.Treal | Ast.Tdouble -> true | Ast.Tint | Ast.Tlogical -> false

let type_bytes = function
  | Ast.Tint -> 4
  | Ast.Treal -> 4
  | Ast.Tdouble -> 8
  | Ast.Tlogical -> 4

(* Fortran implicit typing: names starting with i..n are integer, others real *)
let implicit_type name =
  if String.length name > 0 && name.[0] >= 'i' && name.[0] <= 'n' then Ast.Tint
  else Ast.Treal

let lookup tab name = SMap.find_opt name tab
let symbols_list tab = SMap.bindings tab

let err loc fmt = Printf.ksprintf (fun m -> raise (Type_error (m, loc))) fmt

let join_numeric loc a b =
  match (a, b) with
  | Ast.Tlogical, _ | _, Ast.Tlogical -> err loc "logical operand in numeric context"
  | Ast.Tdouble, _ | _, Ast.Tdouble -> Ast.Tdouble
  | Ast.Treal, _ | _, Ast.Treal -> Ast.Treal
  | Ast.Tint, Ast.Tint -> Ast.Tint

let rec expr_type_loc tab loc (e : Ast.expr) : Ast.dtype =
  match e with
  | Ast.Int _ -> Ast.Tint
  | Ast.Real (_, ty) -> ty
  | Ast.Logical _ -> Ast.Tlogical
  | Ast.Var x -> (
    match SMap.find_opt x tab with
    | Some s ->
      if s.dims <> [] then err loc "array %s used without subscripts" x;
      s.ty
    | None -> implicit_type x)
  | Ast.Index (a, subs) -> (
    match SMap.find_opt a tab with
    | Some s ->
      if s.dims = [] then err loc "scalar %s used with subscripts" a;
      if List.length subs <> List.length s.dims then
        err loc "array %s has %d dimensions but %d subscripts" a (List.length s.dims)
          (List.length subs);
      List.iter
        (fun sub ->
          match expr_type_loc tab loc sub with
          | Ast.Tint -> ()
          | _ -> err loc "non-integer subscript of %s" a)
        subs;
      s.ty
    | None -> err loc "reference to undeclared array or function %s" a)
  | Ast.Call (f, args) -> (
    match Intrinsics.find f with
    | Some info ->
      if info.arity >= 0 && List.length args <> info.arity then
        err loc "intrinsic %s expects %d arguments" f info.arity;
      if info.arity < 0 && List.length args < 2 then
        err loc "intrinsic %s expects at least 2 arguments" f;
      let arg_types = List.map (expr_type_loc tab loc) args in
      if List.exists (fun t -> t = Ast.Tlogical) arg_types then
        err loc "logical argument to intrinsic %s" f;
      (* generic min/max follow their arguments (Fortran 90 semantics) *)
      if info.cost = Intrinsics.Minmax then
        List.fold_left (join_numeric loc) Ast.Tint arg_types
      else if info.result_real then
        if List.exists (fun t -> t = Ast.Tdouble) arg_types then Ast.Tdouble else Ast.Treal
      else Ast.Tint
    | None ->
      (* external function: implicit result type; whole arrays may be
         passed by reference *)
      List.iter
        (fun a ->
          match a with
          | Ast.Var x when (match SMap.find_opt x tab with Some s -> s.dims <> [] | None -> false) -> ()
          | _ -> ignore (expr_type_loc tab loc a))
        args;
      implicit_type f)
  | Ast.Unop (Ast.Neg, a) ->
    let t = expr_type_loc tab loc a in
    if t = Ast.Tlogical then err loc "negation of a logical";
    t
  | Ast.Unop (Ast.Not, a) ->
    if expr_type_loc tab loc a <> Ast.Tlogical then err loc ".not. of a non-logical";
    Ast.Tlogical
  | Ast.Binop (op, a, b) -> (
    let ta = expr_type_loc tab loc a and tb = expr_type_loc tab loc b in
    match op with
    | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Pow -> join_numeric loc ta tb
    | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
      ignore (join_numeric loc ta tb);
      Ast.Tlogical
    | Ast.And | Ast.Or ->
      if ta <> Ast.Tlogical || tb <> Ast.Tlogical then err loc "logical operator on non-logicals";
      Ast.Tlogical)

let expr_type tab e = expr_type_loc tab Srcloc.dummy e

(* rewrite Index -> Call when the base is not an array in scope *)
let rec resolve_expr tab (e : Ast.expr) : Ast.expr =
  match e with
  | Ast.Int _ | Ast.Real _ | Ast.Logical _ | Ast.Var _ -> e
  | Ast.Index (a, subs) ->
    let subs = List.map (resolve_expr tab) subs in
    (match SMap.find_opt a tab with
     | Some _ -> Ast.Index (a, subs) (* declared scalar: flagged by the checker *)
     | None -> Ast.Call (a, subs))
  | Ast.Call (f, args) -> Ast.Call (f, List.map (resolve_expr tab) args)
  | Ast.Unop (op, a) -> Ast.Unop (op, resolve_expr tab a)
  | Ast.Binop (op, a, b) -> Ast.Binop (op, resolve_expr tab a, resolve_expr tab b)

let rec resolve_stmt tab (s : Ast.stmt) : Ast.stmt =
  let kind =
    match s.Ast.kind with
    | Ast.Assign (lhs, e) -> Ast.Assign ({ lhs with subs = List.map (resolve_expr tab) lhs.subs }, resolve_expr tab e)
    | Ast.If (branches, els) ->
      Ast.If
        ( List.map (fun (c, b) -> (resolve_expr tab c, List.map (resolve_stmt tab) b)) branches,
          List.map (resolve_stmt tab) els )
    | Ast.Do d ->
      Ast.Do
        {
          d with
          lo = resolve_expr tab d.lo;
          hi = resolve_expr tab d.hi;
          step = Option.map (resolve_expr tab) d.step;
          body = List.map (resolve_stmt tab) d.body;
        }
    | Ast.Call_stmt (f, args) -> Ast.Call_stmt (f, List.map (resolve_expr tab) args)
    | Ast.Return -> Ast.Return
  in
  { s with kind }

let rec check_stmt tab (s : Ast.stmt) : unit =
  let loc = s.Ast.loc in
  match s.Ast.kind with
  | Ast.Assign (lhs, e) ->
    let lhs_ty =
      if lhs.subs = [] then (
        match SMap.find_opt lhs.base tab with
        | Some sym ->
          if sym.dims <> [] then err loc "assignment to whole array %s" lhs.base;
          sym.ty
        | None -> implicit_type lhs.base)
      else expr_type_loc tab loc (Ast.Index (lhs.base, lhs.subs))
    in
    let rhs_ty = expr_type_loc tab loc e in
    (match (lhs_ty, rhs_ty) with
     | Ast.Tlogical, Ast.Tlogical -> ()
     | Ast.Tlogical, _ | _, Ast.Tlogical -> err loc "mixed logical/numeric assignment"
     | _ -> () (* numeric coercions are implicit *))
  | Ast.If (branches, els) ->
    List.iter
      (fun (c, body) ->
        if expr_type_loc tab loc c <> Ast.Tlogical then err loc "if condition is not logical";
        List.iter (check_stmt tab) body)
      branches;
    List.iter (check_stmt tab) els
  | Ast.Do d ->
    (match SMap.find_opt d.var tab with
     | Some { ty = Ast.Tint; dims = []; _ } | None -> ()
     | Some { ty; dims = []; _ } when ty <> Ast.Tint -> err loc "do index %s is not integer" d.var
     | Some _ -> err loc "do index %s is an array" d.var);
    List.iter
      (fun e ->
        if expr_type_loc tab loc e <> Ast.Tint then err loc "loop bound is not an integer")
      (d.lo :: d.hi :: Option.to_list d.step);
    List.iter (check_stmt tab) d.body
  | Ast.Call_stmt (_, args) ->
    List.iter
      (fun a ->
        match a with
        | Ast.Var x when (match SMap.find_opt x tab with Some s -> s.dims <> [] | None -> false) ->
          () (* whole array passed by reference *)
        | _ -> ignore (expr_type_loc tab loc a))
      args
  | Ast.Return -> ()

let build_symtab (r : Ast.routine) : symtab =
  let tab = ref SMap.empty in
  List.iter
    (fun (d : Ast.decl) ->
      if SMap.mem d.dname !tab then
        raise (Type_error ("duplicate declaration of " ^ d.dname, Srcloc.dummy));
      tab :=
        SMap.add d.dname
          {
            ty = d.dty;
            dims = d.dims;
            is_param = List.mem d.dname r.params;
            element_bytes = type_bytes d.dty;
          }
          !tab)
    r.decls;
  (* parameters without declarations get implicit types *)
  List.iter
    (fun p ->
      if not (SMap.mem p !tab) then
        tab :=
          SMap.add p
            { ty = implicit_type p; dims = []; is_param = true; element_bytes = type_bytes (implicit_type p) }
            !tab)
    r.params;
  !tab

let sp_typecheck = Pperf_obs.Obs.span "typecheck"

let check_routine (r : Ast.routine) : checked =
  Pperf_obs.Obs.time sp_typecheck (fun () ->
      let tab = build_symtab r in
      let body = List.map (resolve_stmt tab) r.body in
      let routine = { r with body } in
      List.iter (check_stmt tab) body;
      { routine; symbols = tab })

let check_program (p : Ast.program) : checked list = List.map check_routine p

let array_extent (s : sym) : Pperf_symbolic.Poly.t list =
  let module Poly = Pperf_symbolic.Poly in
  List.map
    (fun (d : Ast.array_dim) ->
      let hi = match Sym_expr.to_poly d.dim_hi with Some p -> p | None -> Poly.var "?dim" in
      match d.dim_lo with
      | None -> hi (* 1-based: extent = hi *)
      | Some lo ->
        let lo = match Sym_expr.to_poly lo with Some p -> p | None -> Poly.zero in
        Poly.add (Poly.sub hi lo) Poly.one)
    s.dims
