(** Pretty-printing PF programs back to concrete syntax.

    Output re-parses to an equal AST (property-tested round trip) — the
    restructurer prints transformed programs, so this is a functional
    requirement, not a convenience. *)

val pp_expr : ?parent:int -> Format.formatter -> Ast.expr -> unit
(** [parent] is the enclosing operator precedence, for minimal
    parenthesization. *)

val expr_to_string : Ast.expr -> string
val pp_stmt : int -> Format.formatter -> Ast.stmt -> unit
(** The [int] is the indentation depth in spaces. *)

val pp_decl : int -> Format.formatter -> Ast.decl -> unit
val pp_routine : Format.formatter -> Ast.routine -> unit
val pp_program : Format.formatter -> Ast.program -> unit
val routine_to_string : Ast.routine -> string
val program_to_string : Ast.program -> string
val stmts_to_string : Ast.stmt list -> string
val dtype_str : Ast.dtype -> string
val binop_str : Ast.binop -> string
