(** PF intrinsic functions: names, result typing, and how the translator
    should cost them. *)

type cost_class =
  | Arith of string
      (** maps to a single atomic operation of the given name, e.g. sqrt *)
  | Minmax  (** compare + select sequence *)
  | Conversion  (** int<->float conversion *)
  | Free  (** no generated code (abs folded into FP ops, sign tricks) *)

type info = {
  name : string;
  arity : int;  (** -1 = variadic (>= 2) *)
  cost : cost_class;
  result_real : bool;
      (** true: result is floating; false: follows/returns integer *)
}

let table =
  [
    { name = "sqrt"; arity = 1; cost = Arith "fsqrt"; result_real = true };
    { name = "sin"; arity = 1; cost = Arith "fsin"; result_real = true };
    { name = "cos"; arity = 1; cost = Arith "fcos"; result_real = true };
    { name = "exp"; arity = 1; cost = Arith "fexp"; result_real = true };
    { name = "log"; arity = 1; cost = Arith "flog"; result_real = true };
    { name = "tanh"; arity = 1; cost = Arith "ftanh"; result_real = true };
    { name = "abs"; arity = 1; cost = Free; result_real = true };
    { name = "iabs"; arity = 1; cost = Free; result_real = false };
    { name = "min"; arity = -1; cost = Minmax; result_real = true };
    { name = "max"; arity = -1; cost = Minmax; result_real = true };
    { name = "min0"; arity = -1; cost = Minmax; result_real = false };
    { name = "max0"; arity = -1; cost = Minmax; result_real = false };
    { name = "mod"; arity = 2; cost = Arith "idiv"; result_real = false };
    { name = "dble"; arity = 1; cost = Conversion; result_real = true };
    { name = "float"; arity = 1; cost = Conversion; result_real = true };
    { name = "int"; arity = 1; cost = Conversion; result_real = false };
    { name = "nint"; arity = 1; cost = Conversion; result_real = false };
    { name = "sign"; arity = 2; cost = Free; result_real = true };
  ]

let find name = List.find_opt (fun i -> String.equal i.name name) table
let is_intrinsic name = Option.is_some (find name)
