(** Conversion of PF integer expressions to symbolic polynomials.

    The bridge the paper's aggregation relies on: "unknowns in control
    statements and array subscripts are treated as variables in the
    performance expressions" (§2). Program variables become polynomial
    variables of the same name. *)

open Pperf_symbolic

val to_poly : Ast.expr -> Poly.t option
(** [Some p] when the expression is polynomial over program variables:
    literals, variables, [+], [-], [*], non-negative integer [**], and
    division by a nonzero constant (rational coefficients, as in trip
    counts). [None] for calls, array elements, logicals, or symbolic
    divisors. *)

val affine_in : string list -> Ast.expr -> (int list * Poly.t) option
(** [affine_in vars e] views [e] as [sum coeffs_i * vars_i + rest] with
    integer-constant coefficients and [rest] free of [vars]; the subscript
    form the dependence tests and the cache model need. *)

val affine_hint : string list -> Ast.expr -> [ `Affine | `Not | `Unknown ]
(** Polynomial-free screen for [affine_in <> None]: a single AST walk
    that computes the exact linear coefficients of [vars] when they are
    syntactically evident. [`Affine] and [`Not] agree with [affine_in];
    [`Unknown] means the caller must fall back to the full test (e.g. a
    coefficient whose constness needs polynomial normalization). Hot
    path of the translator's per-subscript addressing test. *)

val trip_count : lo:Ast.expr -> hi:Ast.expr -> step:Ast.expr option -> Poly.t option
(** Loop trip count [(hi - lo + step) / step] for constant steps, assuming
    a non-empty loop (the paper does the same). Recognizes two
    restructuring idioms exactly: strip-mined inner loops
    [do i = s, min(s+w-1, hi)] (returns [w]) and unroll remainder loops
    [do i = hi - mod(e, f) + 1, hi] (returns the average [(f-1)/2], a
    justified bounded guess). [None] when bounds are non-polynomial or the
    step is symbolic. *)
