(** Hand-written lexer for PF source (menhir/ocamllex are not available in
    the sealed build environment, and the language is small). *)

type token =
  | IDENT of string  (** lowercased; keywords are resolved by the parser *)
  | INT_LIT of int
  | REAL_LIT of float * Ast.dtype  (** [d] exponents give [Tdouble] *)
  | LOGICAL_LIT of bool
  | PLUS | MINUS | STAR | SLASH | POW
  | LPAREN | RPAREN | COMMA | COLON
  | ASSIGN  (** [=] *)
  | EQ | NE | LT | LE | GT | GE
  | AND | OR | NOT
  | NEWLINE
  | EOF

type spanned = { tok : token; loc : Srcloc.t }

exception Error of string * Srcloc.t

val tokenize : string -> spanned array
(** Comments ([!] to end of line), blank lines, and [&] continuations are
    handled here; consecutive separators are collapsed to one [NEWLINE].
    @raise Error on an unrecognizable character sequence. *)

val token_to_string : token -> string
