(** PF intrinsic functions: names, typing behaviour, and how the translator
    costs them. *)

type cost_class =
  | Arith of string
      (** a single atomic operation of this name (e.g. [fsqrt]) *)
  | Minmax  (** n-ary compare+select chain; result type follows arguments *)
  | Conversion  (** int<->float *)
  | Free  (** no generated code (e.g. [abs] folded into FP sign bits) *)

type info = {
  name : string;
  arity : int;  (** [-1] = variadic (at least 2) *)
  cost : cost_class;
  result_real : bool;
}

val table : info list
val find : string -> info option
val is_intrinsic : string -> bool
