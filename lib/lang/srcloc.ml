(** Source positions for diagnostics. *)

type t = { line : int; col : int } [@@deriving show, eq]

let dummy = { line = 0; col = 0 }
let make line col = { line; col }
let to_string t = Printf.sprintf "%d:%d" t.line t.col
let pp_short fmt t = Format.fprintf fmt "%d:%d" t.line t.col
