open Pperf_num
open Pperf_symbolic

type direction = Lt | Eq | Gt

type dep_kind = Flow | Anti | Output | Input

type dependence = {
  kind : dep_kind;
  directions : direction list;
  src : Analysis.array_ref;
  dst : Analysis.array_ref;
}

(* internal: 'any' extends direction during hierarchical refinement *)
type dir_or_any = D of direction | Any

let direction_to_string = function Lt -> "<" | Eq -> "=" | Gt -> ">"

(* constant loop bounds when available; with a range environment, symbolic
   bounds collapse to sound integer enclosures (floor the lower end, ceil
   the upper), e.g. [do i = 1, m] with m in [2,2] gives (1, 2) *)
let const_bounds ?env ?oracle (l : Analysis.loop_ctx) =
  let poly_of e = Sym_expr.to_poly e in
  let const e =
    match poly_of e with
    | Some p -> (match Poly.to_const p with Some c -> Rat.to_int c | None -> None)
    | None -> None
  in
  let enclose p =
    let base =
      match env with Some env -> Interval.eval_poly env p | None -> Interval.full
    in
    match oracle with
    | Some f -> (
      match Interval.intersect base (f p) with Some m -> m | None -> base)
    | None -> base
  in
  let iv_bound round pick e =
    match poly_of e with
    | Some p -> (
      match pick (enclose p) with
      | Interval.Fin r -> Bigint.to_int (round r)
      | _ -> None)
    | None -> None
  in
  let step_ok = match l.lstep with None -> true | Some (Ast.Int 1) -> true | _ -> false in
  if not step_ok then None
  else (
    let lo =
      match const l.llo with
      | Some lo -> Some lo
      | None -> iv_bound Rat.floor Interval.lo l.llo
    in
    let hi =
      match const l.lhi with
      | Some hi -> Some hi
      | None -> iv_bound Rat.ceil Interval.hi l.lhi
    in
    match (lo, hi) with Some lo, Some hi when lo <= hi -> Some (lo, hi) | _ -> None)

(* one subscript pair viewed affinely in the common loop indices:
   (a_coeffs, b_coeffs, diff) with  sum a_j x_j - sum b_j y_j = diff
   (diff constant); None = not analyzable -> assume dependent *)
let subscript_pair ?env ?oracle common (f : Ast.expr) (g : Ast.expr) =
  let vars = List.map (fun (l : Analysis.loop_ctx) -> l.lvar) common in
  match (Sym_expr.affine_in vars f, Sym_expr.affine_in vars g) with
  | Some (fa, frest), Some (ga, grest) ->
    let diff = Poly.sub grest frest in
    let diff_const =
      match Poly.to_const diff with
      | Some c -> Some c
      | None -> (
        (* a range environment may pin the symbolic difference to a point,
           e.g. a(i) vs a(i+m) with m in [2,2]; a relational oracle can do
           the same for symbolic couplings, e.g. a(i+m) vs a(i+2*n) under
           m = 2*n *)
        let base =
          match env with
          | Some env -> Interval.eval_poly env diff
          | None -> Interval.full
        in
        let iv =
          match oracle with
          | Some f -> (
            match Interval.intersect base (f diff) with Some m -> m | None -> base)
          | None -> base
        in
        Interval.is_point iv)
    in
    (match diff_const with
     | Some c when Rat.is_integer c -> (
       match Rat.to_int c with Some ci -> Some (fa, ga, ci) | None -> None)
     | _ -> None)
  | _ -> None

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

(* GCD test: independent when gcd of all coefficients does not divide diff *)
let gcd_disproves (fa, ga, diff) =
  let g = List.fold_left (fun acc c -> gcd acc c) 0 (fa @ ga) in
  if g = 0 then diff <> 0 else diff mod g <> 0

(* sound bound of the term a*x - b*y under a direction constraint; bounds
   known: x,y in [lo,hi]. Returns (min, max). *)
let term_bounds a b lo hi (dir : dir_or_any) =
  let pos v = max v 0 and neg v = max (-v) 0 in
  let span = hi - lo in
  match dir with
  | Any ->
    let mn = (pos a * lo) - (neg a * hi) - ((pos b * hi) - (neg b * lo)) in
    let mx = (pos a * hi) - (neg a * lo) - ((pos b * lo) - (neg b * hi)) in
    Some (mn, mx)
  | D Eq ->
    let c = a - b in
    Some ((pos c * lo) - (neg c * hi), (pos c * hi) - (neg c * lo))
  | D Lt ->
    (* x < y: y = x + d, d in [1, span]; t = (a-b)x - b*d, relaxed *)
    if span < 1 then None (* direction infeasible *)
    else (
      let c = a - b in
      let mnx = (pos c * lo) - (neg c * hi) and mxx = (pos c * hi) - (neg c * lo) in
      let mnd = min (-b) (-b * span) and mxd = max (-b) (-b * span) in
      Some (mnx + mnd, mxx + mxd))
  | D Gt ->
    if span < 1 then None
    else (
      let c = a - b in
      let mnx = (pos c * lo) - (neg c * hi) and mxx = (pos c * hi) - (neg c * lo) in
      let mnd = min b (b * span) and mxd = max b (b * span) in
      Some (mnx + mnd, mxx + mxd))

(* Banerjee-style test of one subscript pair against a direction vector:
   true = disproved (no dependence with these directions) *)
let banerjee_disproves ?env ?oracle common dirs (fa, ga, diff) =
  let rec go common dirs fa ga (mn, mx) =
    match (common, dirs, fa, ga) with
    | [], [], [], [] -> diff < mn || diff > mx
    | l :: common', d :: dirs', a :: fa', b :: ga' -> (
      match const_bounds ?env ?oracle l with
      | None ->
        (* unknown bounds: only the Eq direction allows exact treatment of
           the (a-b) x term when a = b (contributes 0) *)
        (match d with
         | D Eq when a = b -> go common' dirs' fa' ga' (mn, mx)
         | _ ->
           (* unbounded contribution unless both coefficients are zero *)
           if a = 0 && b = 0 then go common' dirs' fa' ga' (mn, mx) else false)
      | Some (lo, hi) -> (
        match term_bounds a b lo hi d with
        | None -> true (* direction infeasible for this loop *)
        | Some (tmn, tmx) -> go common' dirs' fa' ga' (mn + tmn, mx + tmx)))
    | _ -> false
  in
  go common dirs fa ga (0, 0)

(* test a full direction vector against all subscript pairs; true = the
   tests disproved a dependence with this direction vector *)
let vector_disproved ?env ?oracle common dirs pairs =
  List.exists
    (fun pair ->
      match pair with
      | None -> false (* unanalyzable dimension: cannot disprove *)
      | Some p -> gcd_disproves p || banerjee_disproves ?env ?oracle common dirs p)
    pairs

(* strong-SIV sharpening: when a dim is a*x - a*y = diff with a <> 0, the
   dependence distance is fixed: diff/a. Directions inconsistent with the
   distance sign are disproved. *)
let siv_direction common pairs =
  (* returns, per loop level, the direction forced by some subscript, if any *)
  List.mapi
    (fun j (l : Analysis.loop_ctx) ->
      ignore l;
      List.fold_left
        (fun forced pair ->
          match (forced, pair) with
          | Some _, _ -> forced
          | None, Some (fa, ga, diff) ->
            let a = List.nth fa j and b = List.nth ga j in
            let others_zero =
              List.for_all2 (fun i (x, y) -> i = j || (x = 0 && y = 0))
                (List.mapi (fun i _ -> i) fa)
                (List.combine fa ga)
            in
            if a = b && a <> 0 && others_zero then
              if diff mod a <> 0 then Some `Impossible
              else (
                (* x - y = dist: a positive distance means the first
                   reference's iteration is later (direction >) *)
                let dist = diff / a in
                if dist = 0 then Some (`Dir Eq)
                else if dist > 0 then Some (`Dir Gt)
                else Some (`Dir Lt))
            else None
          | None, None -> None)
        None pairs)
    common

(* interval of one subscript over a range environment extended with the
   enclosing loops' index ranges (outermost first, so triangular bounds
   see the outer index) *)
let subscript_interval env (r : Analysis.array_ref) sub =
  let index_interval env (l : Analysis.loop_ctx) =
    let eval e =
      match Sym_expr.to_poly e with
      | Some p -> Interval.eval_poly env p
      | None -> Interval.full
    in
    let lo_iv = eval l.llo and hi_iv = eval l.lhi in
    let step_sign =
      match l.lstep with
      | None -> 1
      | Some s -> (
        match eval s with iv -> ( match Interval.sign iv with Pos -> 1 | Neg -> -1 | _ -> 0))
    in
    try
      if step_sign > 0 then Interval.make (Interval.lo lo_iv) (Interval.hi hi_iv)
      else if step_sign < 0 then Interval.make (Interval.lo hi_iv) (Interval.hi lo_iv)
      else Interval.union lo_iv hi_iv
    with Invalid_argument _ -> Interval.union lo_iv hi_iv
  in
  let env =
    List.fold_left
      (fun env (l : Analysis.loop_ctx) -> Interval.Env.add l.lvar (index_interval env l) env)
      env r.loops
  in
  match Sym_expr.to_poly sub with
  | Some p -> Interval.eval_poly env p
  | None -> Interval.full

(* range disproof: the two references touch provably disjoint index sets in
   some dimension, so no element is shared at all *)
let ranges_disjoint env (r1 : Analysis.array_ref) (r2 : Analysis.array_ref) =
  List.length r1.subs = List.length r2.subs
  && List.exists2
       (fun s1 s2 ->
         Interval.intersect (subscript_interval env r1 s1) (subscript_interval env r2 s2)
         = None)
       r1.subs r2.subs

let directions ~common ?env ?oracle (r1 : Analysis.array_ref) (r2 : Analysis.array_ref) =
  if not (String.equal r1.array r2.array) then []
  else if (match env with Some env -> ranges_disjoint env r1 r2 | None -> false) then []
  else if List.length r1.subs <> List.length r2.subs then
    (* inconsistent shapes: be conservative, all-any *)
    [ List.map (fun _ -> Eq) common ]
  else (
    let pairs =
      List.map2 (fun f g -> subscript_pair ?env ?oracle common f g) r1.subs r2.subs
    in
    let forced = siv_direction common pairs in
    if List.exists (fun f -> f = Some `Impossible) forced then []
    else (
      (* hierarchical refinement of direction vectors *)
      let n = List.length common in
      let results = ref [] in
      let rec refine prefix j =
        if j = n then (
          let dirs = List.rev prefix in
          if not (vector_disproved ?env ?oracle common (List.map (fun d -> D d) dirs) pairs)
          then
            results := dirs :: !results)
        else (
          let candidates =
            match List.nth forced j with
            | Some (`Dir d) -> [ d ]
            | _ -> [ Lt; Eq; Gt ]
          in
          List.iter
            (fun d ->
              (* prune early with the partial vector extended by Any *)
              let partial =
                List.rev_append (List.map (fun d -> D d) (d :: prefix))
                  (List.init (n - j - 1) (fun _ -> Any))
              in
              if not (vector_disproved ?env ?oracle common partial pairs) then
                refine (d :: prefix) (j + 1))
            candidates)
      in
      refine [] 0;
      List.rev !results))

let may_depend ~common ?env ?oracle r1 r2 = directions ~common ?env ?oracle r1 r2 <> []

let common_loops (r1 : Analysis.array_ref) (r2 : Analysis.array_ref) =
  let rec go l1 l2 =
    match (l1, l2) with
    | (a : Analysis.loop_ctx) :: t1, (b : Analysis.loop_ctx) :: t2
      when String.equal a.lvar b.lvar ->
      a :: go t1 t2
    | _ -> []
  in
  go r1.loops r2.loops

let classify (src : Analysis.array_ref) (dst : Analysis.array_ref) =
  match (src.is_write, dst.is_write) with
  | true, false -> Flow
  | false, true -> Anti
  | true, true -> Output
  | false, false -> Input

let sp_depend = Pperf_obs.Obs.span "depend"

let dependences_in ?env ?oracle stmts =
  Pperf_obs.Obs.time sp_depend @@ fun () ->
  let refs = Analysis.array_refs stmts in
  let deps = ref [] in
  let arr = Array.of_list refs in
  let n = Array.length arr in
  for i = 0 to n - 1 do
    for j = i to n - 1 do
      let r1 = arr.(i) and r2 = arr.(j) in
      if String.equal r1.array r2.array && (r1.is_write || r2.is_write) && not (i = j && not r1.is_write)
      then (
        let common = common_loops r1 r2 in
        let dirs = directions ~common ?env ?oracle r1 r2 in
        List.iter
          (fun dvec ->
            (* orient the dependence source-before-destination *)
            let self_eq = List.for_all (fun d -> d = Eq) dvec in
            if i = j && self_eq then () (* same access, same iteration *)
            else (
              let reversed = List.exists (fun d -> d = Gt) dvec
                             && not (List.exists (fun d -> d = Lt) dvec) in
              let src, dst, dvec =
                if reversed then (r2, r1, List.map (function Gt -> Lt | Lt -> Gt | Eq -> Eq) dvec)
                else (r1, r2, dvec)
              in
              if src.is_write || dst.is_write then
                deps := { kind = classify src dst; directions = dvec; src; dst } :: !deps))
          dirs)
    done
  done;
  List.rev !deps

let carried_dependences ?env ?oracle (d : Ast.do_loop) =
  let deps = dependences_in ?env ?oracle [ Ast.mk (Ast.Do d) ] in
  List.filter
    (fun dep -> match dep.directions with (Lt | Gt) :: _ -> true | _ -> false)
    deps

let interchange_legal ?env ?oracle (d : Ast.do_loop) =
  let deps = dependences_in ?env ?oracle [ Ast.mk (Ast.Do d) ] in
  not
    (List.exists
       (fun dep ->
         match dep.directions with
         | Lt :: Gt :: _ -> true
         | _ -> false)
       deps)

let kind_to_string = function
  | Flow -> "flow"
  | Anti -> "anti"
  | Output -> "output"
  | Input -> "input"

let pp_dependence fmt d =
  Format.fprintf fmt "%s dep on %s (%s)" (kind_to_string d.kind) d.src.Analysis.array
    (String.concat "," (List.map direction_to_string d.directions))
