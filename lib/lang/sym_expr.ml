(** Conversion of PF integer expressions to symbolic polynomials.

    This is the bridge the paper's aggregation model relies on: "unknowns in
    control statements and array subscripts are treated as variables in the
    performance expressions" (§2). Program variables become polynomial
    variables of the same name. *)

open Pperf_num
open Pperf_symbolic

(** [to_poly e] is [Some p] when [e] is a polynomial expression over program
    variables: literals, variables, [+], [-], [*], integer [**], and
    division by a nonzero constant (yielding rational coefficients, as in a
    trip count [(n-1)/2]). [None] otherwise (calls, array elements,
    logicals, symbolic divisors). *)
let rec to_poly (e : Ast.expr) : Poly.t option =
  match e with
  | Ast.Int i -> Some (Poly.of_int i)
  | Ast.Real (f, _) -> if Float.is_integer f then Some (Poly.of_int (int_of_float f)) else None
  | Ast.Logical _ -> None
  | Ast.Var x -> Some (Poly.var x)
  | Ast.Index _ | Ast.Call _ -> None
  | Ast.Unop (Ast.Neg, a) -> Option.map Poly.neg (to_poly a)
  | Ast.Unop (Ast.Not, _) -> None
  | Ast.Binop (op, a, b) -> (
    match (to_poly a, to_poly b) with
    | Some pa, Some pb -> (
      match op with
      | Ast.Add -> Some (Poly.add pa pb)
      | Ast.Sub -> Some (Poly.sub pa pb)
      | Ast.Mul -> Some (Poly.mul pa pb)
      | Ast.Div -> (
        match Poly.to_const pb with
        | Some c when not (Rat.is_zero c) -> Some (Poly.scale (Rat.inv c) pa)
        | _ -> None)
      | Ast.Pow -> (
        match Poly.to_const pb with
        | Some c when Rat.is_integer c && Rat.sign c >= 0 -> (
          match Rat.to_int c with Some k -> Some (Poly.pow pa k) | None -> None)
        | _ -> None)
      | _ -> None)
    | _ -> None)

(** Affine view of a subscript w.r.t. given index variables:
    [Some (coeffs, rest)] where the subscript equals
    [sum_i coeffs_i * var_i + rest] and [rest] does not mention the index
    variables. Coefficients must be integer constants. *)
let affine_in (vars : string list) (e : Ast.expr) : (int list * Poly.t) option =
  match to_poly e with
  | None -> None
  | Some p ->
    let rec extract coeffs rest = function
      | [] -> Some (List.rev coeffs, rest)
      | v :: more ->
        let cpolys = Poly.coeffs_in v rest in
        let ok =
          List.for_all
            (fun (k, _) -> k = 0 || k = 1)
            cpolys
        in
        if not ok then None
        else (
          let c1 = match List.assoc_opt 1 cpolys with Some c -> c | None -> Poly.zero in
          match Poly.to_const c1 with
          | Some c when Rat.is_integer c -> (
            match Rat.to_int c with
            | Some ci ->
              (* ensure the coefficient itself does not mention other index vars *)
              let rest' = Poly.sub rest (Poly.mul (Poly.of_rat c) (Poly.var v)) in
              extract (ci :: coeffs) rest' more
            | None -> None)
          | Some _ -> None
          | None -> None)
    in
    extract [] p vars

(* Cheap affine screen used by the translator's subscript test, which
   runs for every array reference of every block translation. The walk
   computes the exact linear coefficients of the index variables without
   materializing any polynomial; [`Unknown] (coefficient constness not
   syntactically decidable, or possible cancellation of a nonlinear
   term) sends the caller to the full [affine_in]. *)
let affine_hint (vars : string list) (e : Ast.expr) : [ `Affine | `Not | `Unknown ] =
  (* abstract value: [konst] when the expression is that constant;
     [coeffs] the (nonzero) linear coefficients of the index variables.
     The loop-var-free residue is never needed, only whether it is a
     known constant (for products). *)
  let exception Not_poly in
  let exception Dont_know in
  let canon coeffs = List.filter (fun (_, c) -> not (Rat.is_zero c)) coeffs in
  let merge f a b =
    canon
      (List.fold_left
         (fun acc (v, c) ->
           match List.assoc_opt v acc with
           | Some c0 -> (v, f c0 c) :: List.remove_assoc v acc
           | None -> (v, f Rat.zero c) :: acc)
         a b)
  in
  let rec go (e : Ast.expr) : Rat.t option * (string * Rat.t) list =
    match e with
    | Ast.Int i -> (Some (Rat.of_int i), [])
    | Ast.Real (f, _) ->
      if Float.is_integer f then (Some (Rat.of_int (int_of_float f)), []) else raise Not_poly
    | Ast.Logical _ | Ast.Index _ | Ast.Call _ | Ast.Unop (Ast.Not, _) -> raise Not_poly
    | Ast.Var x -> if List.mem x vars then (None, [ (x, Rat.one) ]) else (None, [])
    | Ast.Unop (Ast.Neg, a) ->
      let k, cs = go a in
      (Option.map Rat.neg k, List.map (fun (v, c) -> (v, Rat.neg c)) cs)
    | Ast.Binop (Ast.Add, a, b) ->
      let ka, ca = go a and kb, cb = go b in
      let k = match (ka, kb) with Some x, Some y -> Some (Rat.add x y) | _ -> None in
      (k, merge Rat.add ca cb)
    | Ast.Binop (Ast.Sub, a, b) ->
      let ka, ca = go a and kb, cb = go b in
      let k = match (ka, kb) with Some x, Some y -> Some (Rat.sub x y) | _ -> None in
      (k, merge Rat.sub ca cb)
    | Ast.Binop (Ast.Mul, a, b) -> (
      let ka, ca = go a and kb, cb = go b in
      match (ca, cb) with
      | [], [] -> ((match (ka, kb) with Some x, Some y -> Some (Rat.mul x y) | _ -> None), [])
      | _ :: _, _ :: _ -> raise Dont_know (* nonlinear unless terms cancel later *)
      | _ :: _, [] -> (
        match kb with
        | Some c ->
          if Rat.is_zero c then (Some Rat.zero, [])
          else (None, List.map (fun (v, cv) -> (v, Rat.mul cv c)) ca)
        | None -> raise Dont_know (* coefficient constness undecidable here *))
      | [], _ :: _ -> (
        match ka with
        | Some c ->
          if Rat.is_zero c then (Some Rat.zero, [])
          else (None, List.map (fun (v, cv) -> (v, Rat.mul cv c)) cb)
        | None -> raise Dont_know))
    | Ast.Binop (Ast.Div, a, b) -> (
      let ka, ca = go a in
      let kb, cb = go b in
      match (cb, kb) with
      | [], Some c when not (Rat.is_zero c) ->
        let inv = Rat.inv c in
        (Option.map (Rat.mul inv) ka, List.map (fun (v, cv) -> (v, Rat.mul cv inv)) ca)
      | _ -> raise Not_poly)
    | Ast.Binop (Ast.Pow, a, b) -> (
      let ka, ca = go a in
      let kb, cb = go b in
      match (cb, kb) with
      | [], Some c when Rat.is_integer c && Rat.sign c >= 0 -> (
        match Rat.to_int c with
        | Some 0 -> (Some Rat.one, [])
        | Some 1 -> (ka, ca)
        | Some k -> (
          match ca with
          | [] -> ((match ka with Some x -> Some (Rat.pow x k) | None -> None), [])
          | _ :: _ -> raise Dont_know)
        | None -> raise Not_poly)
      | _ -> raise Not_poly)
    | Ast.Binop ((Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.And | Ast.Or), _, _)
      ->
      raise Not_poly
  in
  match go e with
  | _, coeffs -> if List.for_all (fun (_, c) -> Rat.is_integer c) coeffs then `Affine else `Not
  | exception Not_poly -> `Not
  | exception Dont_know -> `Unknown

(** Trip count of a [do] loop as a polynomial: [(hi - lo + step) / step]
    requires a constant nonzero [step]. [None] when the bounds are not
    polynomial or the step is symbolic/zero. The result uses Fortran
    semantics [max(0, floor((hi-lo+step)/step))] — the max/floor are not
    representable in a polynomial, so callers should interpret the result
    under the assumption of a nonempty loop (the paper does the same:
    performance expressions live in the region where bounds make sense). *)
let trip_count ~(lo : Ast.expr) ~(hi : Ast.expr) ~(step : Ast.expr option) : Poly.t option =
  (* recognizable restructuring idioms first: *)
  match (lo, hi, step) with
  (* strip-mined inner loop: do i = s, min(s + (w-1), H) runs w iterations
     on all but the last strip *)
  | _, Ast.Call ("min", [ Ast.Binop (Ast.Add, lo', Ast.Int w1); _ ]), None
    when Ast.equal_expr lo' lo ->
    Some (Poly.of_int (w1 + 1))
  | _, Ast.Call ("min", [ _; Ast.Binop (Ast.Add, lo', Ast.Int w1) ]), None
    when Ast.equal_expr lo' lo ->
    Some (Poly.of_int (w1 + 1))
  (* unroll remainder loop: do i = H - mod(E, f) + 1, H runs mod(E, f)
     iterations; estimate by the average (f-1)/2 — a justified guess in
     the paper's sense, bounded by the unroll factor *)
  | ( Ast.Binop (Ast.Add, Ast.Binop (Ast.Sub, hi', Ast.Call ("mod", [ _; Ast.Int f ])), Ast.Int 1),
      _, None )
    when Ast.equal_expr hi' hi && f > 0 ->
    Some (Poly.of_rat (Rat.of_ints (f - 1) 2))
  (* unit-step loops with literal/variable bounds: the closed form
     [hi - lo + 1] without materializing intermediate polynomials *)
  | Ast.Int l, Ast.Int h, None -> Some (Poly.of_int (h - l + 1))
  | Ast.Int l, Ast.Var v, None -> Some (Poly.add_const (Rat.of_int (1 - l)) (Poly.var v))
  | _ ->
  let step_poly =
    match step with
    | None -> Some Rat.one
    | Some s -> (
      match to_poly s with
      | Some p -> (
        match Poly.to_const p with
        | Some c when not (Rat.is_zero c) -> Some c
        | _ -> None)
      | None -> None)
  in
  match (to_poly lo, to_poly hi, step_poly) with
  | Some plo, Some phi, Some s ->
    Some (Poly.scale (Rat.inv s) (Poly.add (Poly.sub phi plo) (Poly.of_rat s)))
  | _ -> None
