(** Pretty-printing PF programs back to concrete syntax.

    Output re-parses to an equal AST (round-trip property-tested), which
    matters because the restructurer prints transformed programs. *)

let binop_str = function
  | Ast.Add -> "+" | Ast.Sub -> "-" | Ast.Mul -> "*" | Ast.Div -> "/" | Ast.Pow -> "**"
  | Ast.Eq -> "==" | Ast.Ne -> "/=" | Ast.Lt -> "<" | Ast.Le -> "<=" | Ast.Gt -> ">" | Ast.Ge -> ">="
  | Ast.And -> ".and." | Ast.Or -> ".or."

let prec = function
  | Ast.Or -> 1
  | Ast.And -> 2
  | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> 3
  | Ast.Add | Ast.Sub -> 4
  | Ast.Mul | Ast.Div -> 5
  | Ast.Pow -> 7

let rec pp_expr ?(parent = 0) fmt (e : Ast.expr) =
  match e with
  | Ast.Int i -> Format.fprintf fmt "%d" i
  | Ast.Real (f, ty) ->
    let s = Printf.sprintf "%.17g" f in
    let s = if String.contains s '.' || String.contains s 'e' || String.contains s 'n' then s else s ^ ".0" in
    let s = match ty with Ast.Tdouble -> (match String.index_opt s 'e' with
        | Some i -> String.mapi (fun j c -> if j = i then 'd' else c) s
        | None -> s ^ "d0")
      | _ -> s
    in
    Format.pp_print_string fmt s
  | Ast.Logical b -> Format.pp_print_string fmt (if b then ".true." else ".false.")
  | Ast.Var x -> Format.pp_print_string fmt x
  | Ast.Index (a, subs) | Ast.Call (a, subs) ->
    Format.fprintf fmt "%s(%a)" a
      (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ") (pp_expr ~parent:0))
      subs
  | Ast.Unop (Ast.Neg, a) ->
    if parent > 4 then Format.fprintf fmt "(-%a)" (pp_expr ~parent:6) a
    else Format.fprintf fmt "-%a" (pp_expr ~parent:6) a
  | Ast.Unop (Ast.Not, a) -> Format.fprintf fmt ".not. %a" (pp_expr ~parent:6) a
  | Ast.Binop (op, a, b) ->
    let p = prec op in
    let needs_parens = p < parent || (p = parent && (op = Ast.Sub || op = Ast.Div || op = Ast.Pow)) in
    let body fmt () =
      (* left operand printed at own precedence, right one notch higher for
         the non-associative cases *)
      Format.fprintf fmt "%a %s %a" (pp_expr ~parent:p) a (binop_str op) (pp_expr ~parent:(p + 1)) b
    in
    if needs_parens then Format.fprintf fmt "(%a)" body () else body fmt ()

let expr_to_string e = Format.asprintf "%a" (pp_expr ~parent:0) e

let dtype_str = function
  | Ast.Tint -> "integer"
  | Ast.Treal -> "real"
  | Ast.Tdouble -> "double precision"
  | Ast.Tlogical -> "logical"

let pp_lhs fmt (l : Ast.lhs) =
  if l.subs = [] then Format.pp_print_string fmt l.base
  else
    Format.fprintf fmt "%s(%a)" l.base
      (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ") (pp_expr ~parent:0))
      l.subs

let rec pp_stmt indent fmt (s : Ast.stmt) =
  let pad = String.make indent ' ' in
  match s.Ast.kind with
  | Ast.Assign (lhs, e) -> Format.fprintf fmt "%s%a = %a@." pad pp_lhs lhs (pp_expr ~parent:0) e
  | Ast.Do d ->
    Format.fprintf fmt "%sdo %s = %a, %a%t@." pad d.var (pp_expr ~parent:0) d.lo
      (pp_expr ~parent:0) d.hi
      (fun fmt ->
        match d.step with
        | Some st -> Format.fprintf fmt ", %a" (pp_expr ~parent:0) st
        | None -> ());
    List.iter (pp_stmt (indent + 2) fmt) d.body;
    Format.fprintf fmt "%send do@." pad
  | Ast.If (branches, els) ->
    List.iteri
      (fun i (c, body) ->
        Format.fprintf fmt "%s%s (%a) then@." pad
          (if i = 0 then "if" else "else if")
          (pp_expr ~parent:0) c;
        List.iter (pp_stmt (indent + 2) fmt) body)
      branches;
    if els <> [] then (
      Format.fprintf fmt "%selse@." pad;
      List.iter (pp_stmt (indent + 2) fmt) els);
    Format.fprintf fmt "%send if@." pad
  | Ast.Call_stmt (f, []) -> Format.fprintf fmt "%scall %s@." pad f
  | Ast.Call_stmt (f, args) ->
    Format.fprintf fmt "%scall %s(%a)@." pad f
      (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ") (pp_expr ~parent:0))
      args
  | Ast.Return -> Format.fprintf fmt "%sreturn@." pad

let pp_decl indent fmt (d : Ast.decl) =
  let pad = String.make indent ' ' in
  if d.dims = [] then Format.fprintf fmt "%s%s %s@." pad (dtype_str d.dty) d.dname
  else
    Format.fprintf fmt "%s%s %s(%a)@." pad (dtype_str d.dty) d.dname
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
         (fun fmt (dim : Ast.array_dim) ->
           match dim.dim_lo with
           | None -> pp_expr ~parent:0 fmt dim.dim_hi
           | Some lo -> Format.fprintf fmt "%a:%a" (pp_expr ~parent:0) lo (pp_expr ~parent:0) dim.dim_hi))
      d.dims

let pp_routine fmt (r : Ast.routine) =
  (match r.rkind with
   | Ast.Main -> Format.fprintf fmt "program %s@." r.rname
   | Ast.Subroutine ->
     if r.params = [] then Format.fprintf fmt "subroutine %s@." r.rname
     else
       Format.fprintf fmt "subroutine %s(%a)@." r.rname
         (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ") Format.pp_print_string)
         r.params
   | Ast.Function ty ->
     Format.fprintf fmt "%s function %s(%a)@." (dtype_str ty) r.rname
       (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ") Format.pp_print_string)
       r.params);
  List.iter (pp_decl 2 fmt) r.decls;
  List.iter (pp_stmt 2 fmt) r.body;
  Format.fprintf fmt "end@."

let pp_program fmt (p : Ast.program) =
  List.iteri
    (fun i r ->
      if i > 0 then Format.pp_print_newline fmt ();
      pp_routine fmt r)
    p

let routine_to_string r = Format.asprintf "%a" pp_routine r
let program_to_string p = Format.asprintf "%a" pp_program p
let stmts_to_string ss = Format.asprintf "%a" (fun fmt -> List.iter (pp_stmt 0 fmt)) ss
