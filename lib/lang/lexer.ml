type token =
  | IDENT of string
  | INT_LIT of int
  | REAL_LIT of float * Ast.dtype
  | LOGICAL_LIT of bool
  | PLUS | MINUS | STAR | SLASH | POW
  | LPAREN | RPAREN | COMMA | COLON
  | ASSIGN
  | EQ | NE | LT | LE | GT | GE
  | AND | OR | NOT
  | NEWLINE
  | EOF

type spanned = { tok : token; loc : Srcloc.t }

exception Error of string * Srcloc.t

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_alnum c = is_alpha c || is_digit c

let dot_words =
  [
    ("and", AND); ("or", OR); ("not", NOT);
    ("true", LOGICAL_LIT true); ("false", LOGICAL_LIT false);
    ("eq", EQ); ("ne", NE); ("lt", LT); ("le", LE); ("gt", GT); ("ge", GE);
  ]

let tokenize src =
  let n = String.length src in
  let pos = ref 0 in
  let line = ref 1 in
  let bol = ref 0 in
  let out = ref [] in
  let loc () = Srcloc.make !line (!pos - !bol + 1) in
  let error msg = raise (Error (msg, loc ())) in
  let push tok = out := { tok; loc = loc () } :: !out in
  let peek k = if !pos + k < n then Some src.[!pos + k] else None in
  let newline () =
    (* collapse consecutive newlines *)
    (match !out with
     | { tok = NEWLINE; _ } :: _ | [] -> ()
     | _ -> push NEWLINE);
    incr pos;
    incr line;
    bol := !pos
  in
  while !pos < n do
    let c = src.[!pos] in
    if c = ' ' || c = '\t' || c = '\r' then incr pos
    else if c = '\n' then newline ()
    else if c = '!' then (
      while !pos < n && src.[!pos] <> '\n' do incr pos done)
    else if c = ';' then (
      (match !out with { tok = NEWLINE; _ } :: _ | [] -> () | _ -> push NEWLINE);
      incr pos)
    else if c = '&' then (
      (* continuation: skip to beyond the next newline without emitting one *)
      incr pos;
      while !pos < n && src.[!pos] <> '\n' do
        match src.[!pos] with
        | ' ' | '\t' | '\r' -> incr pos
        | '!' ->
          while !pos < n && src.[!pos] <> '\n' do
            incr pos
          done
        | _ -> error "only a comment may follow a continuation '&'"
      done;
      if !pos < n then (
        incr pos;
        incr line;
        bol := !pos))
    else if is_digit c then (
      let start = !pos in
      while !pos < n && is_digit src.[!pos] do incr pos done;
      (* a '.' begins a fraction only if NOT followed by a letter (else it is
         a dotted operator as in [1 .eq. 2] written [1.eq.2]) *)
      let is_fraction =
        !pos < n && src.[!pos] = '.'
        && (match peek 1 with Some ch when is_alpha ch -> false | _ -> true)
      in
      if is_fraction then (
        incr pos;
        while !pos < n && is_digit src.[!pos] do incr pos done);
      let has_exp, dbl =
        match if !pos < n then Some (Char.lowercase_ascii src.[!pos]) else None with
        | Some 'e' -> (true, false)
        | Some 'd' -> (true, true)
        | _ -> (false, false)
      in
      if has_exp then (
        incr pos;
        (match peek 0 with Some ('+' | '-') -> incr pos | _ -> ());
        if not (!pos < n && is_digit src.[!pos]) then error "malformed exponent";
        while !pos < n && is_digit src.[!pos] do incr pos done);
      let text = String.sub src start (!pos - start) in
      if is_fraction || has_exp then (
        let text = String.map (fun c -> if c = 'd' || c = 'D' then 'e' else c) text in
        match float_of_string_opt text with
        | Some f -> push (REAL_LIT (f, if dbl then Ast.Tdouble else Ast.Treal))
        | None -> error ("malformed real literal " ^ text))
      else (
        match int_of_string_opt text with
        | Some i -> push (INT_LIT i)
        | None -> error ("malformed integer literal " ^ text)))
    else if is_alpha c then (
      let start = !pos in
      while !pos < n && is_alnum src.[!pos] do incr pos done;
      push (IDENT (String.lowercase_ascii (String.sub src start (!pos - start)))))
    else if c = '.' then (
      (* dotted operator .and. etc., or a leading-dot real like .5 *)
      if (match peek 1 with Some d when is_digit d -> true | _ -> false) then (
        let start = !pos in
        incr pos;
        while !pos < n && is_digit src.[!pos] do incr pos done;
        let text = String.sub src start (!pos - start) in
        push (REAL_LIT (float_of_string text, Ast.Treal)))
      else (
        let start = !pos + 1 in
        let e = ref start in
        while !e < n && is_alpha src.[!e] do incr e done;
        if !e < n && src.[!e] = '.' then (
          let word = String.lowercase_ascii (String.sub src start (!e - start)) in
          match List.assoc_opt word dot_words with
          | Some tok ->
            push tok;
            pos := !e + 1
          | None -> error ("unknown dotted operator ." ^ word ^ "."))
        else error "stray '.'"))
    else (
      let two = if !pos + 1 < n then String.sub src !pos 2 else "" in
      match two with
      | "**" -> push POW; pos := !pos + 2
      | "==" -> push EQ; pos := !pos + 2
      | "/=" -> push NE; pos := !pos + 2
      | "<=" -> push LE; pos := !pos + 2
      | ">=" -> push GE; pos := !pos + 2
      | _ ->
        (match c with
         | '+' -> push PLUS; incr pos
         | '-' -> push MINUS; incr pos
         | '*' -> push STAR; incr pos
         | '/' -> push SLASH; incr pos
         | '(' -> push LPAREN; incr pos
         | ')' -> push RPAREN; incr pos
         | ',' -> push COMMA; incr pos
         | ':' -> push COLON; incr pos
         | '=' -> push ASSIGN; incr pos
         | '<' -> push LT; incr pos
         | '>' -> push GT; incr pos
         | _ -> error (Printf.sprintf "unexpected character %C" c)))
  done;
  (match !out with { tok = NEWLINE; _ } :: _ | [] -> () | _ -> push NEWLINE);
  push EOF;
  Array.of_list (List.rev !out)

let token_to_string = function
  | IDENT s -> s
  | INT_LIT i -> string_of_int i
  | REAL_LIT (f, _) -> string_of_float f
  | LOGICAL_LIT b -> if b then ".true." else ".false."
  | PLUS -> "+" | MINUS -> "-" | STAR -> "*" | SLASH -> "/" | POW -> "**"
  | LPAREN -> "(" | RPAREN -> ")" | COMMA -> "," | COLON -> ":"
  | ASSIGN -> "="
  | EQ -> "==" | NE -> "/=" | LT -> "<" | LE -> "<=" | GT -> ">" | GE -> ">="
  | AND -> ".and." | OR -> ".or." | NOT -> ".not."
  | NEWLINE -> "<newline>"
  | EOF -> "<eof>"
