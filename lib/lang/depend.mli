(** Data-dependence testing for array references in loop nests.

    Classic PLDI-era machinery: subscript-wise GCD and Banerjee tests over
    affine subscripts, refined into direction vectors by hierarchical
    testing. Used to gate restructuring transformations (legality) and to
    derive loop-carried dependences for the scheduler's iteration-overlap
    estimates. Conservative: anything non-affine or symbolic beyond the
    loop indices is assumed dependent. *)

type direction = Lt  (** carried forward ( < ) *) | Eq | Gt  (** ( > ) *)

type dep_kind =
  | Flow
  | Anti
  | Output
  | Input  (** read-read pair; never constrains legality, filtered by
               {!dependences_in} *)

type dependence = {
  kind : dep_kind;
  directions : direction list;  (** one per common loop, outermost first *)
  src : Analysis.array_ref;
  dst : Analysis.array_ref;
}

val classify : Analysis.array_ref -> Analysis.array_ref -> dep_kind
(** Total over the four write/read combinations; read-read is {!Input}. *)

val may_depend :
  common:Analysis.loop_ctx list ->
  ?env:Pperf_symbolic.Interval.Env.t ->
  ?oracle:(Pperf_symbolic.Poly.t -> Pperf_symbolic.Interval.t) ->
  Analysis.array_ref ->
  Analysis.array_ref ->
  bool
(** Subscript-by-subscript GCD + Banerjee disproof attempt, any direction. *)

val directions :
  common:Analysis.loop_ctx list ->
  ?env:Pperf_symbolic.Interval.Env.t ->
  ?oracle:(Pperf_symbolic.Poly.t -> Pperf_symbolic.Interval.t) ->
  Analysis.array_ref ->
  Analysis.array_ref ->
  direction list list
(** All direction vectors (outermost first) that the tests could not
    disprove; empty = independent.

    The optional [env] supplies variable ranges (from the interval abstract
    interpretation) and must only bind variables that are invariant over
    the analyzed fragment. It strengthens the tests three ways: symbolic
    loop bounds collapse to integer enclosures for Banerjee, a symbolic
    subscript difference pinned to a point becomes testable, and references
    whose subscript ranges cannot overlap are proved independent.

    The optional [oracle] must return a sound enclosure of any polynomial
    (typically relational abstract-domain facts over subscript pairs); it
    sharpens the same places [env] does, e.g. deciding [a(i+m)] vs
    [a(i+2*n)] under the coupling [m = 2*n]. *)

val dependences_in :
  ?env:Pperf_symbolic.Interval.Env.t ->
  ?oracle:(Pperf_symbolic.Poly.t -> Pperf_symbolic.Interval.t) ->
  Ast.stmt list ->
  dependence list
(** All pairwise dependences among array references of the fragment that
    share an array and include a write ({!Input} pairs are filtered here),
    classified by kind. Scalars are ignored here (handled by the
    translator's renaming/reduction logic). *)

val carried_dependences :
  ?env:Pperf_symbolic.Interval.Env.t ->
  ?oracle:(Pperf_symbolic.Poly.t -> Pperf_symbolic.Interval.t) ->
  Ast.do_loop ->
  dependence list
(** Dependences carried by this loop (direction [Lt] or [Gt] at its
    level). *)

val interchange_legal :
  ?env:Pperf_symbolic.Interval.Env.t ->
  ?oracle:(Pperf_symbolic.Poly.t -> Pperf_symbolic.Interval.t) ->
  Ast.do_loop ->
  bool
(** True when the outer two loops of the (perfect) nest can be swapped:
    no dependence with direction (<, >). *)

val pp_dependence : Format.formatter -> dependence -> unit
val direction_to_string : direction -> string
val kind_to_string : dep_kind -> string
