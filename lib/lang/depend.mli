(** Data-dependence testing for array references in loop nests.

    Classic PLDI-era machinery: subscript-wise GCD and Banerjee tests over
    affine subscripts, refined into direction vectors by hierarchical
    testing. Used to gate restructuring transformations (legality) and to
    derive loop-carried dependences for the scheduler's iteration-overlap
    estimates. Conservative: anything non-affine or symbolic beyond the
    loop indices is assumed dependent. *)

type direction = Lt  (** carried forward ( < ) *) | Eq | Gt  (** ( > ) *)

type dep_kind = Flow | Anti | Output

type dependence = {
  kind : dep_kind;
  directions : direction list;  (** one per common loop, outermost first *)
  src : Analysis.array_ref;
  dst : Analysis.array_ref;
}

val may_depend :
  common:Analysis.loop_ctx list -> Analysis.array_ref -> Analysis.array_ref -> bool
(** Subscript-by-subscript GCD + Banerjee disproof attempt, any direction. *)

val directions :
  common:Analysis.loop_ctx list ->
  Analysis.array_ref ->
  Analysis.array_ref ->
  direction list list
(** All direction vectors (outermost first) that the tests could not
    disprove; empty = independent. *)

val dependences_in : Ast.stmt list -> dependence list
(** All pairwise dependences among array references of the fragment that
    share an array, classified by kind. Scalars are ignored here (handled
    by the translator's renaming/reduction logic). *)

val carried_dependences : Ast.do_loop -> dependence list
(** Dependences carried by this loop (direction [Lt] or [Gt] at its
    level). *)

val interchange_legal : Ast.do_loop -> bool
(** True when the outer two loops of the (perfect) nest can be swapped:
    no dependence with direction (<, >). *)

val pp_dependence : Format.formatter -> dependence -> unit
val direction_to_string : direction -> string
