(** Abstract syntax of PF, the mini Fortran-90/HPF-like source language.

    PF covers what the paper's workloads need: typed scalars and arrays,
    arbitrarily nested [do] loops with symbolic bounds, [if]/[else if]/
    [else], assignments, intrinsic calls and subroutine calls. *)

type dtype = Tint | Treal | Tdouble | Tlogical [@@deriving show { with_path = false }, eq]

type unop = Neg | Not [@@deriving show { with_path = false }, eq]

type binop =
  | Add | Sub | Mul | Div | Pow
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or
[@@deriving show { with_path = false }, eq]

type expr =
  | Int of int
  | Real of float * dtype  (** [Treal] or [Tdouble] literal *)
  | Logical of bool
  | Var of string
  | Index of string * expr list  (** array element reference *)
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Call of string * expr list  (** intrinsic or user function *)
[@@deriving show { with_path = false }, eq]

type lhs = { base : string; subs : expr list  (** [[]] for a scalar *) }
[@@deriving show { with_path = false }, eq]

type stmt = { kind : stmt_kind; loc : Srcloc.t [@equal fun _ _ -> true] }

and stmt_kind =
  | Assign of lhs * expr
  | If of (expr * stmt list) list * stmt list
      (** branches in order (condition, body); final list is the [else] *)
  | Do of do_loop
  | Call_stmt of string * expr list
  | Return

and do_loop = {
  var : string;
  lo : expr;
  hi : expr;
  step : expr option;  (** [None] = step 1 *)
  body : stmt list;
}
[@@deriving show { with_path = false }, eq]

type array_dim = { dim_lo : expr option;  (** default 1 *) dim_hi : expr }
[@@deriving show { with_path = false }, eq]

type decl = {
  dname : string;
  dty : dtype;
  dims : array_dim list;  (** [[]] for a scalar *)
}
[@@deriving show { with_path = false }, eq]

type routine_kind = Subroutine | Function of dtype | Main
[@@deriving show { with_path = false }, eq]

type routine = {
  rname : string;
  rkind : routine_kind;
  params : string list;
  decls : decl list;
  body : stmt list;
}
[@@deriving show { with_path = false }, eq]

type program = routine list [@@deriving show { with_path = false }, eq]

(* ---- convenience constructors (used heavily by tests and examples) ---- *)

let mk ?(loc = Srcloc.dummy) kind = { kind; loc }
let assign ?loc base subs e = mk ?loc (Assign ({ base; subs }, e))
let sassign ?loc base e = assign ?loc base [] e
let do_ ?loc var lo hi ?step body = mk ?loc (Do { var; lo; hi; step; body })
let if_ ?loc cond then_ else_ = mk ?loc (If ([ (cond, then_) ], else_))
let int i = Int i
let real f = Real (f, Treal)
let v x = Var x
let idx a subs = Index (a, subs)
let ( +: ) a b = Binop (Add, a, b)
let ( -: ) a b = Binop (Sub, a, b)
let ( *: ) a b = Binop (Mul, a, b)
let ( /: ) a b = Binop (Div, a, b)

let rec fold_expr f acc e =
  let acc = f acc e in
  match e with
  | Int _ | Real _ | Logical _ | Var _ -> acc
  | Index (_, subs) | Call (_, subs) -> List.fold_left (fold_expr f) acc subs
  | Unop (_, a) -> fold_expr f acc a
  | Binop (_, a, b) -> fold_expr f (fold_expr f acc a) b

let rec iter_stmts f stmts =
  List.iter
    (fun s ->
      f s;
      match s.kind with
      | Assign _ | Call_stmt _ | Return -> ()
      | If (branches, els) ->
        List.iter (fun (_, body) -> iter_stmts f body) branches;
        iter_stmts f els
      | Do d -> iter_stmts f d.body)
    stmts

let expr_vars e =
  fold_expr
    (fun acc e -> match e with Var x -> x :: acc | Index (a, _) -> a :: acc | _ -> acc)
    [] e
  |> List.sort_uniq String.compare
