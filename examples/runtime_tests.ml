(* When symbolic comparison cannot decide, generate a run-time test (§3.4):
   sensitivity analysis picks the variables; the sign condition of
   P = C(f) - C(g) becomes the guard.

     dune exec examples/runtime_tests.exe
*)

open Pperf_machine
open Pperf_symbolic
open Pperf_core

let machine = Machine.power1

(* variant A: precompute a table of the m distinct values, then index it *)
let variant_a = {|
subroutine va(x, t, n, m)
  integer n, m, i, j
  real x(100000), t(1024)
  do j = 1, m
    t(j) = sqrt(float(j)) * 2.0
  end do
  do i = 1, n
    x(i) = x(i) + t(mod(i, m) + 1)
  end do
end
|}

(* variant B: recompute the value for every element *)
let variant_b = {|
subroutine vb(x, n, m)
  integer n, m, i
  real x(100000)
  do i = 1, n
    x(i) = x(i) + sqrt(float(mod(i, m) + 1)) * 2.0
  end do
end
|}

let () =
  let a = Predict.of_source ~machine variant_a in
  let b = Predict.of_source ~machine variant_b in
  Format.printf "C(A) = %a@." Predict.pp a;
  Format.printf "C(B) = %a@.@." Predict.pp b;

  let env =
    Interval.Env.of_list
      [ ("n", Interval.of_ints 1 100000); ("m", Interval.of_ints 1 1024) ]
  in
  let d = Compare.decide env (Predict.cost a) (Predict.cost b) in
  Format.printf "verdict: %a@.@." Compare.pp_decision d;

  (match d.verdict with
   | (Signs.Undecided _ | Signs.Crossover _) when not (Poly.is_zero d.difference) ->
     (* which unknowns drive the decision? *)
     Format.printf "sensitivity of P = C(A) - C(B):@.";
     List.iter
       (fun r -> Format.printf "  %a@." Sensitivity.pp_report r)
       (Sensitivity.rank env d.difference);
     (* the guard the compiler would emit around the two versions *)
     let t = Runtime_test.of_difference env d.difference in
     Format.printf "@.generated guard (choose A when it holds):@.  %a@." Runtime_test.pp t;
     Format.printf "worth inserting? %b@." (Runtime_test.worthwhile env t d.difference)
   | _ -> Format.printf "no run-time test needed.@.");

  (* the paper's term-dropping simplification also applies to the guard *)
  let simplified = Simplify.drop_negligible ~rel_tol:(Pperf_num.Rat.of_ints 1 100) env d.difference in
  Format.printf "@.P simplified over the ranges: %s  (from %s)@." (Poly.to_string simplified)
    (Poly.to_string d.difference)
