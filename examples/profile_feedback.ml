(* Profile feedback (§3.4): run the program once through the interpreter,
   measure branch probabilities, and re-predict with the guesses replaced
   by measurements. Also demonstrates dynamic validation: the interpreter
   accumulates machine cycles along the actual path, which the (profiled)
   static expression should match.

     dune exec examples/profile_feedback.exe
*)

open Pperf_machine
open Pperf_core
open Pperf_exec

let machine = Machine.power1

let source = {|
subroutine filter(x, y, n, t)
  integer n, i
  real x(100000), y(100000), t
  do i = 1, n
    x(i) = float(mod(i, 10))
  end do
  do i = 1, n
    if (x(i) < t) then
      y(i) = sqrt(x(i) + 1.0) + exp(x(i) * 0.1)
    else
      y(i) = 0.0
    end if
  end do
end
|}

let () =
  (* static prediction: the branch probability is an unknown p1 *)
  let plain = Predict.of_source ~machine source in
  Format.printf "static (unknown probability):@.  %a@." Predict.pp plain;
  Format.printf "  unknowns in [0,1]: %s@.@." (String.concat ", " (Predict.prob_vars plain));

  (* profile run: t = 3.0 makes 3 of 10 values pass *)
  let res =
    Interp.run_source ~machine ~args:[ ("n", Interp.VInt 2000); ("t", Interp.VReal 3.0) ]
      source
  in
  Format.printf "profile run (n=2000, t=3.0):@.  %a@." Interp.Profile.pp res.profile;
  Format.printf "  dynamic cycles: %.0f@.@." res.cycles;

  (* re-predict with measured probabilities: the unknown disappears *)
  let options =
    { Aggregate.default_options with branch_prob = Interp.Profile.branch_prob res.profile }
  in
  let profiled = Predict.of_source ~options ~machine source in
  Format.printf "static with profile feedback:@.  %a@." Predict.pp profiled;
  let static = Predict.eval profiled [ ("n", 2000.0) ] in
  Format.printf "  at n=2000: %.0f cycles (dynamic said %.0f; %.1f%% apart)@." static res.cycles
    (100.0 *. Float.abs (static -. res.cycles) /. res.cycles);

  (* the paper's point: with the guess eliminated, symbolic comparison can
     now decide questions the unprofiled expression could not *)
  let cheap = Perf_expr.of_cpu (Pperf_symbolic.Poly.scale_int 30 (Pperf_symbolic.Poly.var "n")) in
  let env = Pperf_symbolic.Interval.Env.of_list
      [ ("n", Pperf_symbolic.Interval.of_ints 100 100000) ] in
  let before = Compare.decide env (Predict.cost plain) cheap in
  let after = Compare.decide env (Predict.cost profiled) cheap in
  Format.printf "@.vs a 30n alternative:@.";
  Format.printf "  without profile: %a@." Compare.pp_decision before;
  Format.printf "  with profile:    %a@." Compare.pp_decision after
