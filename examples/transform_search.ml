(* Automatic, performance-guided restructuring (§3.2): A*-style search over
   transformation sequences, scored by the predictor.

     dune exec examples/transform_search.exe
*)

open Pperf_lang
open Pperf_machine
open Pperf_symbolic
open Pperf_core
open Pperf_transform

let machine = Machine.power1

let source = {|
subroutine sweep(a, b, n)
  integer n, i, j
  real a(512,512), b(512,512)
  do i = 1, n
    do j = 1, n
      a(i,j) = a(i,j) * 0.5 + b(i,j)
    end do
  end do
end
|}

let () =
  let checked = Typecheck.check_routine (Parser.parse_routine source) in
  Format.printf "original program:@.%s@." (Pp_ast.routine_to_string checked.routine);

  let env = Interval.Env.of_list [ ("n", Interval.of_ints 256 256) ] in
  let options = { Aggregate.default_options with include_memory = true } in

  (* what moves are even on the table? *)
  let actions = Search.candidate_actions checked.routine in
  Format.printf "candidate transformations: %d@." (List.length actions);
  List.iter
    (fun (name, path, apply) ->
      let legal = apply checked.routine <> None in
      if legal then Format.printf "  %-12s at %a@." name Transformations.pp_path path)
    actions;

  let out = Search.run ~machine ~options ~env ~max_nodes:80 ~max_depth:3 checked in
  let value c =
    Poly.eval_float
      (fun v -> if String.length v >= 5 && String.sub v 0 5 = "trip_" then 8.0 else 256.0)
      (Perf_expr.total c)
  in
  Format.printf "@.search explored %d states@." out.explored;
  Format.printf "sequence: %s@."
    (if out.trace = [] then "(keep the original)"
     else String.concat " ; " (List.map (fun (s : Search.step) -> s.action) out.trace));
  Format.printf "predicted cost: %.0f -> %.0f (%.1f%% better)@." (value out.initial)
    (value out.predicted)
    (100.0 *. (value out.initial -. value out.predicted) /. value out.initial);
  Format.printf "@.restructured program:@.%s@." (Pp_ast.routine_to_string out.best.routine);

  (* §3.4: when the winner depends on unknown values, emit both versions
     behind a generated run-time test *)
  let wide_env = Interval.Env.of_list [ ("n", Interval.of_ints 4 4096) ] in
  let _, versioned =
    Search.run_versioned ~machine ~options ~env:wide_env ~max_nodes:40 ~max_depth:2 checked
  in
  match versioned with
  | Some v ->
    Format.printf "over n in [4,4096] the winner is input-dependent; versioned program:@.%s@."
      (Pp_ast.routine_to_string v.routine)
  | None ->
    Format.printf "over n in [4,4096] one version always wins - no run-time test emitted.@."
