(* Choosing the unroll factor of a matrix-multiply inner loop by symbolic
   comparison — the paper's motivating use of performance prediction in
   program restructuring (§3).

     dune exec examples/matmul_tuning.exe
*)

open Pperf_lang
open Pperf_machine
open Pperf_sched
open Pperf_backend
open Pperf_core

let machine = Machine.power1

let matmul_with_unroll factor =
  let base =
    "subroutine mm(a, b, c, n)\n  integer n, i, j, k\n\
    \  real a(512,512), b(512,512), c(512,512)\n\
    \  do i = 1, n\n    do j = 1, n\n      do k = 1, 512\n\
    \        c(i,j) = c(i,j) + a(i,k) * b(k,j)\n      end do\n    end do\n  end do\nend\n"
  in
  let checked = Typecheck.check_routine (Parser.parse_routine base) in
  if factor = 1 then checked
  else (
    (* unroll the innermost (k) loop *)
    let loops = Pperf_transform.Transformations.loops_in checked.routine in
    let path, d = List.nth loops 2 in
    match Pperf_transform.Transformations.unroll_exact ~factor d with
    | Some repl ->
      let r = Option.get (Pperf_transform.Transformations.replace_at checked.routine path repl) in
      Typecheck.check_routine (Parser.parse_routine (Pp_ast.routine_to_string r))
    | None -> failwith "unroll failed")

let () =
  Format.printf "Tuning the matmul inner loop unroll factor on %s@.@." machine.Machine.name;
  Format.printf "%-8s %-28s %14s %12s@." "factor" "cost expression" "pred @n=256" "oracle/iter";
  let candidates =
    List.map
      (fun factor ->
        let checked = matmul_with_unroll factor in
        let pred = Aggregate.routine ~machine checked in
        let at_256 =
          Pperf_symbolic.Poly.eval_float
            (fun v -> if v = "n" then 256.0 else 64.0)
            (Perf_expr.total pred.cost)
        in
        (* oracle: steady-state cycles per original iteration of the body *)
        let loops, body = List.hd (Analysis.innermost_bodies checked.routine.body) in
        let loop_vars = List.map (fun (l : Analysis.loop_ctx) -> l.lvar) loops in
        let assigned = Analysis.assigned_vars checked.routine.body in
        let invariants =
          Analysis.SSet.diff
            (Analysis.SSet.union (Analysis.used_vars checked.routine.body) assigned)
            assigned
        in
        let res =
          Pperf_translate.Translator.translate_block ~machine ~symtab:checked.symbols
            ~loop_vars ~invariants body
        in
        let dag =
          Dag.concat res.body (Pperf_translate.Translator.loop_overhead_dag ~machine ())
        in
        let oracle =
          float_of_int (Pipeline.reference_cycles machine (Dag.repeat dag 8))
          /. (8.0 *. float_of_int factor)
        in
        let expr = Pperf_symbolic.Poly.to_string (Perf_expr.total pred.cost) in
        let expr = if String.length expr > 28 then String.sub expr 0 25 ^ "..." else expr in
        Format.printf "%-8d %-28s %14.0f %12.2f@." factor expr at_256 oracle;
        (factor, pred.cost, at_256, oracle))
      [ 1; 2; 4; 8 ]
  in
  (* pick by predicted cost, confirm against the oracle *)
  let by_pred =
    List.fold_left (fun best (f, _, v, _) ->
        match best with Some (_, bv) when bv <= v -> best | _ -> Some (f, v)) None candidates
  in
  let by_oracle =
    List.fold_left (fun best (f, _, _, o) ->
        match best with Some (_, bo) when bo <= o -> best | _ -> Some (f, o)) None candidates
  in
  let pf = fst (Option.get by_pred) and obf = fst (Option.get by_oracle) in
  Format.printf "@.prediction picks unroll %d; the reference back-end agrees? %b@." pf (pf = obf);

  (* symbolic comparison between the top two candidates, without fixing n *)
  match candidates with
  | (_, c1, _, _) :: (_, c2, _, _) :: _ ->
    let env = Pperf_symbolic.Interval.Env.of_list
        [ ("n", Pperf_symbolic.Interval.of_ints 16 512) ] in
    let d = Compare.decide env c1 c2 in
    Format.printf "@.symbolic comparison of factor 1 vs factor 2 over n in [16,512]:@.  %a@."
      Compare.pp_decision d
  | _ -> ()
