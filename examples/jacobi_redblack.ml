(* Jacobi vs red-black relaxation, compared symbolically in the grid size n,
   with the cache model included — the paper's kind of "which variant should
   the compiler emit?" question.

     dune exec examples/jacobi_redblack.exe
*)

open Pperf_machine
open Pperf_symbolic
open Pperf_core

let machine = Machine.power1

let jacobi_src = {|
subroutine jacobi(a, b, n)
  integer n, i, j
  real a(1000,1000), b(1000,1000)
  do i = 2, n - 1
    do j = 2, n - 1
      a(i,j) = 0.25 * (b(i-1,j) + b(i+1,j) + b(i,j-1) + b(i,j+1))
    end do
  end do
end
|}

(* one red-black sweep does both colors: two half-density passes *)
let redblack_src = {|
subroutine rb(u, f, w, h2, n)
  integer n, i, j
  real u(1000,1000), f(1000,1000), w, h2
  do j = 2, n - 1
    do i = 2, n - 1, 2
      u(i,j) = u(i,j) + w * (0.25 * (u(i-1,j) + u(i+1,j) + u(i,j-1) + u(i,j+1) - h2 * f(i,j)) - u(i,j))
    end do
  end do
  do j = 2, n - 1
    do i = 3, n - 1, 2
      u(i,j) = u(i,j) + w * (0.25 * (u(i-1,j) + u(i+1,j) + u(i,j-1) + u(i,j+1) - h2 * f(i,j)) - u(i,j))
    end do
  end do
end
|}

let () =
  let options = { Aggregate.default_options with include_memory = true } in
  let jac = Predict.of_source ~options ~machine jacobi_src in
  let rb = Predict.of_source ~options ~machine redblack_src in
  Format.printf "Jacobi sweep:    %a@." Predict.pp jac;
  Format.printf "Red-black sweep: %a@.@." Predict.pp rb;

  Format.printf "%-8s %14s %14s@." "n" "jacobi" "red-black";
  List.iter
    (fun n ->
      Format.printf "%-8.0f %14.0f %14.0f@." n
        (Predict.eval jac [ ("n", n) ])
        (Predict.eval rb [ ("n", n) ]))
    [ 64.; 128.; 256.; 512. ];

  (* the decision, once and for all n in the range: *)
  let env = Interval.Env.of_list [ ("n", Interval.of_ints 16 1000) ] in
  let d = Compare.decide env (Predict.cost jac) (Predict.cost rb) in
  Format.printf "@.symbolic verdict over n in [16,1000]:@.  %a@." Compare.pp_decision d;

  (* where does the cost go? split by category at n = 512 *)
  let show name (p : Predict.t) =
    let at cat =
      Poly.eval_float (fun v -> if v = "n" then 512.0 else 1.0) cat
    in
    let c = Predict.cost p in
    Format.printf "  %-10s cpu %12.0f   mem %12.0f@." name (at c.Perf_expr.cpu)
      (at c.Perf_expr.mem)
  in
  Format.printf "@.cost breakdown at n = 512:@.";
  show "jacobi" jac;
  show "red-black" rb;

  (* per-iteration sensitivity: which unknown dominates? *)
  Format.printf "@.sensitivity of the jacobi expression (n in [16,1000]):@.";
  List.iter
    (fun r -> Format.printf "  %a@." Sensitivity.pp_report r)
    (Sensitivity.rank env (Predict.total jac))
