(* Quickstart: parse a kernel, predict its cost symbolically, inspect the
   schedule.

     dune exec examples/quickstart.exe
*)

open Pperf_lang
open Pperf_machine
open Pperf_sched
open Pperf_core

let source = {|
subroutine daxpy(x, y, a, n)
  integer n, i
  real x(100000), y(100000), a
  do i = 1, n
    y(i) = y(i) + a * x(i)
  end do
end
|}

let () =
  let machine = Machine.power1 in

  (* 1. one call gives the symbolic performance expression *)
  let p = Predict.of_source ~machine source in
  Format.printf "prediction:   %a@." Predict.pp p;
  Format.printf "at n = 1000:  %.0f cycles@.@." (Predict.eval p [ ("n", 1000.0) ]);

  (* 2. underneath: the translator imitates the back-end... *)
  let checked = Typecheck.check_routine (Parser.parse_routine source) in
  let loops, body = List.hd (Analysis.innermost_bodies checked.routine.body) in
  let loop_vars = List.map (fun (l : Analysis.loop_ctx) -> l.lvar) loops in
  let assigned = Analysis.assigned_vars checked.routine.body in
  let invariants =
    Analysis.SSet.diff
      (Analysis.SSet.union (Analysis.used_vars checked.routine.body) assigned)
      assigned
  in
  let res =
    Pperf_translate.Translator.translate_block ~machine ~symtab:checked.symbols ~loop_vars
      ~invariants body
  in
  Format.printf "atomic operations of the loop body:@.%a@." Dag.pp res.body;

  (* ...and the Tetris model drops them into the virtual bins *)
  let bins = Bins.create machine in
  let s = Bins.drop_dag bins res.body in
  Format.printf "schedule diagram ('##' noncoverable, '::' coverable):@.%a@." Bins.pp bins;
  Format.printf "block cost: %d cycles (operation count would say %d)@." s.cost
    (Bins.Opcount.cost res.body);

  (* 3. the same program on a different machine description *)
  let p_scalar = Predict.of_source ~machine:Machine.scalar source in
  Format.printf "@.on a sequential machine: %a@." Predict.pp p_scalar;
  Format.printf "superscalar speedup at n=1000: %.2fx@."
    (Predict.eval p_scalar [ ("n", 1000.0) ] /. Predict.eval p [ ("n", 1000.0) ])
