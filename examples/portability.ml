(* Portability (§2.2.1): the same source predicted on four architectures,
   plus a custom machine defined purely as a textual cost table — "adding a
   new architecture to the cost model is a matter of defining the atomic
   operation mapping and the atomic operation cost table".

     dune exec examples/portability.exe
*)

open Pperf_machine
open Pperf_core

let source = {|
subroutine smooth(x, z, n)
  integer n, i
  real x(100000), z(100000)
  do i = 2, n - 1
    z(i) = (x(i-1) + 2.0 * x(i) + x(i+1)) / 4.0
  end do
end
|}

(* a made-up "vliw8" machine, defined entirely by its cost tables *)
let vliw8_descr = {|
(machine (name vliw8)
  (issue-width 8)
  (branch-taken-cycles 1)
  (register-load-limit 64)
  (fma true)
  (units (ALU0 fxu) (ALU1 fxu) (FP0 fpu) (FP1 fpu) (FP2 fpu) (FP3 fpu)
         (BR branch) (LS0 lsu) (LS1 lsu))
  (atomics
    (iadd (ALU0 1 0)) (isub (ALU0 1 0)) (ineg (ALU0 1 0)) (ilogic (ALU0 1 0))
    (ishift (ALU0 1 0)) (icopy (ALU0 1 0))
    (imul_small (ALU0 2 0)) (imul (ALU0 3 0)) (idiv (ALU0 12 0)) (icmp (ALU0 1 0))
    (fadd (FP0 1 2)) (fsub (FP0 1 2)) (fmul (FP0 1 2)) (fma (FP0 1 2))
    (fneg (FP0 1 0)) (fabs (FP0 1 0)) (fcopy (FP0 1 0))
    (fdiv (FP0 10 2)) (fcmp (FP0 1 1))
    (cvt_if (FP0 1 2)) (cvt_fi (FP0 1 2))
    (load_int (LS0 1 2)) (load_fp (LS0 1 2))
    (store_int (LS0 1 0)) (store_fp (LS0 1 0))
    (branch (BR 1 0)) (branch_cond (BR 1 0)) (call (BR 2 0))
    (fsqrt (FP0 16 0)) (fsin (FP0 30 0)) (fcos (FP0 30 0))
    (fexp (FP0 25 0)) (flog (FP0 25 0)) (ftanh (FP0 35 0))
    (nop (ALU0 0 0))))
|}

let () =
  let machines =
    [ Machine.power1; Machine.power1_wide; Machine.alpha21064; Machine.scalar;
      Descr.of_string vliw8_descr ]
  in
  Format.printf "%-12s %-28s %12s %10s@." "machine" "expression" "n=10000" "vs power1";
  let base = ref None in
  List.iter
    (fun machine ->
      let p = Predict.of_source ~machine source in
      let v = Predict.eval p [ ("n", 10000.0) ] in
      if !base = None then base := Some v;
      let expr = Pperf_symbolic.Poly.to_string (Predict.total p) in
      Format.printf "%-12s %-28s %12.0f %9.2fx@." machine.Machine.name expr v
        (v /. Option.get !base))
    machines;
  Format.printf
    "@.(vliw8 exists only as the textual description above — no OCaml code\n\
    \ was written to support it; see machines/*.pmach for the shipped files)@."
