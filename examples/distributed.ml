(* Distributed-memory prediction: HPF-style layouts feed the communication
   cost model; the total expression mixes cpu, memory and message-passing
   cycles, all symbolic in the grid size n and comparable as one unit.

     dune exec examples/distributed.exe
*)

open Pperf_machine
open Pperf_symbolic
open Pperf_commcost
open Pperf_core

(* a 1-D block-distributed relaxation: reads left and right neighbours *)
let source = {|
subroutine relax(u, v, n)
  integer n, i
  real u(100000), v(100000)
  do i = 2, n - 1
    v(i) = 0.5 * u(i) + 0.25 * (u(i-1) + u(i+1))
  end do
end
|}

let () =
  (* give power1 T3D-ish message-passing parameters *)
  let machine =
    { Machine.power1 with
      Machine.comm = Some { processors = 16; startup_cycles = 1200; per_byte_cycles = 0.4 } }
  in
  let layouts =
    [ ("u", { Commcost.ldist = [ Commcost.Block ] });
      ("v", { Commcost.ldist = [ Commcost.Block ] }) ]
  in
  let options =
    { Aggregate.default_options with include_memory = true; layouts = Some layouts }
  in
  let p = Predict.of_source ~options ~machine source in
  Format.printf "distributed relaxation on 16 processors:@.  %a@.@." Predict.pp p;

  Format.printf "%-8s %12s %12s %12s@." "n" "cpu" "memory" "comm";
  List.iter
    (fun n ->
      let at cat = Poly.eval_float (fun v -> if v = "n" then n else 1.0) cat in
      let c = Predict.cost p in
      Format.printf "%-8.0f %12.0f %12.0f %12.0f@." n (at c.Perf_expr.cpu) (at c.mem) (at c.comm))
    [ 1000.; 10000.; 100000. ];

  (* the communication events the analyzer recognized *)
  let checked =
    Pperf_lang.Typecheck.check_routine (Pperf_lang.Parser.parse_routine source)
  in
  let comm = Option.get machine.Machine.comm in
  let events =
    Commcost.analyze_nest ~comm ~symtab:checked.symbols ~layouts [] checked.routine.body
  in
  Format.printf "@.recognized communication:@.";
  List.iter
    (fun (e : Commcost.event) ->
      let kind =
        match e.pattern with
        | Commcost.Shift { offset; _ } -> Printf.sprintf "shift by %d" offset
        | Broadcast _ -> "broadcast"
        | Reduce _ -> "reduce"
        | Gather _ -> "gather"
        | Local -> "local"
      in
      Format.printf "  %s of %s@." kind e.array)
    events;

  (* validate against the message-counting simulator at n = 1024 *)
  let msgs, bytes =
    Commcost.Sim.count_messages ~comm ~symtab:checked.symbols ~layouts
      ~bounds:(fun v -> if v = "p" then 16 else 1024)
      [] checked.routine.body
  in
  Format.printf "@.simulator at n=1024, p=16: %d messages, %d bytes@." msgs bytes;
  Format.printf "(static shift model: 2 boundary messages on the critical path;@.";
  Format.printf " the simulator counts all %d point-to-point neighbour pairs)@." msgs
