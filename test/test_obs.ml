(* Tests for the lib/obs telemetry API: histogram bucket boundaries and
   quantiles, span nesting self/total accounting, unbalanced exits,
   cross-domain snapshot merging, and epoch-consistent reset. *)

module Obs = Pperf_obs.Obs

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let hist_of name snap =
  match List.assoc_opt name snap.Obs.histograms with
  | Some h -> h
  | None -> Alcotest.failf "histogram %S missing from snapshot" name

let span_of name snap =
  match List.assoc_opt name snap.Obs.spans with
  | Some s -> s
  | None -> Alcotest.failf "span %S missing from snapshot" name

(* ---------------------------------------------------------- histograms *)

let test_bucket_boundaries () =
  (* bucket 0 is the <= 0 bucket *)
  Alcotest.(check int) "zero" 0 (Obs.bucket_index 0);
  Alcotest.(check int) "negative" 0 (Obs.bucket_index (-7));
  (* one-cycle/one-ns values land in the first finite bucket, bound 1 *)
  Alcotest.(check int) "one" 1 (Obs.bucket_index 1);
  Alcotest.(check (float 0.0)) "bound of bucket 1" 1.0 (Obs.bucket_bound 1);
  (* each finite bucket's inclusive upper bound is a power of two *)
  Alcotest.(check int) "two" 2 (Obs.bucket_index 2);
  Alcotest.(check int) "three" 3 (Obs.bucket_index 3);
  Alcotest.(check int) "four" 3 (Obs.bucket_index 4);
  Alcotest.(check int) "five" 4 (Obs.bucket_index 5);
  List.iter
    (fun i ->
      let b = int_of_float (Obs.bucket_bound i) in
      Alcotest.(check int) (Printf.sprintf "bound %d inclusive" i) i (Obs.bucket_index b);
      Alcotest.(check int) (Printf.sprintf "bound %d + 1 spills" i) (i + 1)
        (Obs.bucket_index (b + 1)))
    [ 1; 2; 5; 10; 20; 30 ];
  (* the last finite bucket is inclusive of its bound; past it, overflow *)
  let last = Obs.bucket_count - 2 in
  let top = int_of_float (Obs.bucket_bound last) in
  Alcotest.(check int) "top finite value" last (Obs.bucket_index top);
  Alcotest.(check int) "overflow" (Obs.bucket_count - 1) (Obs.bucket_index (top + 1));
  Alcotest.(check bool) "overflow bound is +Inf" true
    (Obs.bucket_bound (Obs.bucket_count - 1) = Float.infinity)

let test_histogram_record_and_quantile () =
  Obs.reset_all ();
  let h = Obs.histogram "test.hist" in
  (* empty histogram: quantiles degrade to 0 *)
  let empty = hist_of "test.hist" (Obs.snapshot ()) in
  Alcotest.(check int) "empty count" 0 empty.Obs.hist_count;
  Alcotest.(check (float 0.0)) "empty p50" 0.0 (Obs.quantile empty 0.5);
  (* 90 small values and 10 large ones: p50 small, p99 large *)
  for _ = 1 to 90 do Obs.record h 3 done;
  for _ = 1 to 10 do Obs.record h 1000 done;
  let s = hist_of "test.hist" (Obs.snapshot ()) in
  Alcotest.(check int) "count" 100 s.Obs.hist_count;
  Alcotest.(check int) "sum" ((90 * 3) + (10 * 1000)) s.Obs.hist_sum;
  Alcotest.(check (float 0.0)) "p50 upper bound" 4.0 (Obs.quantile s 0.5);
  Alcotest.(check (float 0.0)) "p99 upper bound" 1024.0 (Obs.quantile s 0.99);
  (* zero and overflow records land in their dedicated buckets *)
  Obs.record h 0;
  Obs.record h max_int;
  let s = hist_of "test.hist" (Obs.snapshot ()) in
  let bucket i = snd (List.nth s.Obs.buckets i) in
  Alcotest.(check int) "zero bucket" 1 (bucket 0);
  Alcotest.(check int) "overflow bucket" 1 (bucket (Obs.bucket_count - 1));
  Alcotest.(check bool) "overflow quantile is +Inf" true
    (Obs.quantile s 1.0 = Float.infinity)

(* --------------------------------------------------------------- spans *)

let spin_ns ns =
  let t0 = Unix.gettimeofday () in
  while (Unix.gettimeofday () -. t0) *. 1e9 < float_of_int ns do () done

let test_span_nesting () =
  Obs.reset_all ();
  let outer = Obs.span "test.outer" and inner = Obs.span "test.inner" in
  Obs.time outer (fun () ->
      spin_ns 200_000;
      Obs.time inner (fun () -> spin_ns 200_000);
      Obs.time inner (fun () -> spin_ns 200_000));
  let snap = Obs.snapshot () in
  let o = span_of "test.outer" snap and i = span_of "test.inner" snap in
  Alcotest.(check int) "outer count" 1 o.Obs.span_count;
  Alcotest.(check int) "inner count" 2 i.Obs.span_count;
  (* the outer span's total covers the inner ones; its self time does not *)
  Alcotest.(check bool) "outer total covers inner" true
    (o.Obs.span_total_ns >= i.Obs.span_total_ns);
  Alcotest.(check bool) "outer self excludes inner" true
    (o.Obs.span_self_ns <= o.Obs.span_total_ns - i.Obs.span_total_ns);
  Alcotest.(check bool) "inner leaf: self = total" true
    (i.Obs.span_self_ns = i.Obs.span_total_ns)

let test_span_exception_balance () =
  Obs.reset_all ();
  let sp = Obs.span "test.raises" in
  (match Obs.time sp (fun () -> failwith "boom") with
  | exception Failure _ -> ()
  | () -> Alcotest.fail "exception swallowed");
  let s = span_of "test.raises" (Obs.snapshot ()) in
  Alcotest.(check int) "frame closed on exception" 1 s.Obs.span_count

let unbalanced_now () =
  match List.assoc_opt "obs.span.unbalanced" (Obs.snapshot ()).Obs.gauges with
  | Some v -> v
  | None -> Alcotest.fail "obs.span.unbalanced gauge missing"

let test_span_unbalanced_exit () =
  Obs.reset_all ();
  let g0 = unbalanced_now () in
  let sp = Obs.span "test.unbalanced" in
  (* exit with no matching frame: counted no-op, no crash *)
  Obs.exit sp;
  Alcotest.(check bool) "unbalanced exit counted" true (unbalanced_now () > g0);
  (* exiting an outer frame implicitly closes frames opened above it *)
  let outer = Obs.span "test.unb.outer" and inner = Obs.span "test.unb.inner" in
  Obs.enter outer;
  Obs.enter inner;
  Obs.exit outer;
  let snap = Obs.snapshot () in
  Alcotest.(check int) "outer recorded" 1 (span_of "test.unb.outer" snap).Obs.span_count;
  Alcotest.(check int) "inner implicitly closed" 1
    (span_of "test.unb.inner" snap).Obs.span_count

let test_trace_tree () =
  Obs.reset_all ();
  let outer = Obs.span "test.tr.outer" and inner = Obs.span "test.tr.inner" in
  let (), tree =
    Obs.Trace.collect (fun () ->
        Obs.time outer (fun () ->
            Obs.time inner (fun () -> spin_ns 100_000)))
  in
  Alcotest.(check string) "root name" "trace" tree.Obs.Trace.name;
  (match tree.Obs.Trace.children with
  | [ o ] ->
    Alcotest.(check string) "outer child" "test.tr.outer" o.Obs.Trace.name;
    (match o.Obs.Trace.children with
    | [ i ] -> Alcotest.(check string) "inner grandchild" "test.tr.inner" i.Obs.Trace.name
    | l -> Alcotest.failf "expected 1 grandchild, got %d" (List.length l));
    Alcotest.(check bool) "root total covers child" true
      (tree.Obs.Trace.total_ns >= o.Obs.Trace.total_ns)
  | l -> Alcotest.failf "expected 1 child, got %d" (List.length l));
  (* tracing leaves the aggregated statistics intact *)
  Alcotest.(check int) "aggregate still recorded" 1
    (span_of "test.tr.outer" (Obs.snapshot ())).Obs.span_count;
  (* spans completed after collection do not leak into a stale tree *)
  let (), empty = Obs.Trace.collect (fun () -> ()) in
  Alcotest.(check int) "fresh collect starts empty" 0
    (List.length empty.Obs.Trace.children)

(* -------------------------------------------------------- cross-domain *)

let test_cross_domain_merge () =
  Obs.reset_all ();
  let c = Obs.counter "test.xd.counter" in
  let h = Obs.histogram "test.xd.hist" in
  let sp = Obs.span "test.xd.span" in
  let work () =
    for _ = 1 to 1000 do Obs.incr c done;
    for v = 1 to 100 do Obs.record h v done;
    Obs.time sp (fun () -> ())
  in
  let domains = List.init 4 (fun _ -> Domain.spawn work) in
  work ();
  List.iter Domain.join domains;
  let snap = Obs.snapshot () in
  Alcotest.(check int) "counter merged over 5 domains" 5000 (Obs.count c);
  let hs = hist_of "test.xd.hist" snap in
  Alcotest.(check int) "histogram merged" 500 hs.Obs.hist_count;
  Alcotest.(check int) "sum merged" (5 * 5050) hs.Obs.hist_sum;
  Alcotest.(check int) "span frames merged" 5 (span_of "test.xd.span" snap).Obs.span_count

(* --------------------------------------------------------------- reset *)

let test_epoch_reset () =
  let c = Obs.counter "test.reset.counter" in
  let h = Obs.histogram "test.reset.hist" in
  let sp = Obs.span "test.reset.span" in
  let g = Obs.gauge "test.reset.gauge" in
  Obs.incr c;
  Obs.record h 5;
  Obs.time sp (fun () -> ());
  Obs.set_gauge g 7;
  Obs.reset_all ();
  (* a new epoch: counted state reads zero, gauges keep current state *)
  Alcotest.(check int) "counter rebased" 0 (Obs.count c);
  let snap = Obs.snapshot () in
  Alcotest.(check int) "histogram rebased" 0 (hist_of "test.reset.hist" snap).Obs.hist_count;
  Alcotest.(check int) "span rebased" 0 (span_of "test.reset.span" snap).Obs.span_count;
  Alcotest.(check int) "gauge untouched" 7 (Obs.gauge_value g);
  (* post-reset activity is visible and never negative *)
  Obs.incr c;
  Alcotest.(check int) "delta since epoch" 1 (Obs.count c);
  Obs.reset_all ();
  Alcotest.(check bool) "never negative" true (Obs.count c >= 0)

(* -------------------------------------------------------------- export *)

let test_export_shapes () =
  Obs.reset_all ();
  let c = Obs.counter "test.exp.counter" in
  Obs.incr c;
  let h = Obs.histogram "test.exp.hist" in
  Obs.record h 3;
  let json = Obs.Export.json (Obs.snapshot ()) in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "json has %S" needle)
        true (contains json needle))
    [ "\"counters\""; "\"gauges\""; "\"histograms\""; "\"spans\""; "test.exp.counter" ];
  let prom = Obs.Export.prometheus (Obs.snapshot ()) in
  Alcotest.(check bool) "counter family" true
    (contains prom "pperf_test_exp_counter_total 1");
  Alcotest.(check bool) "histogram type line" true
    (contains prom "# TYPE pperf_test_exp_hist histogram");
  Alcotest.(check bool) "+Inf bucket" true (contains prom "le=\"+Inf\"");
  Alcotest.(check bool) "hist count" true (contains prom "pperf_test_exp_hist_count 1");
  (* --stats stays the counters-only object *)
  let stats = Obs.to_json () in
  Alcotest.(check bool) "--stats has counters" true
    (contains stats "\"test.exp.counter\": 1");
  Alcotest.(check bool) "--stats has no sections" true
    (not (contains stats "\"histograms\""))

let () =
  Alcotest.run "obs"
    [
      ( "histograms",
        [
          Alcotest.test_case "bucket boundaries" `Quick test_bucket_boundaries;
          Alcotest.test_case "record and quantile" `Quick test_histogram_record_and_quantile;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "exception balance" `Quick test_span_exception_balance;
          Alcotest.test_case "unbalanced exit" `Quick test_span_unbalanced_exit;
          Alcotest.test_case "trace tree" `Quick test_trace_tree;
        ] );
      ( "domains",
        [ Alcotest.test_case "cross-domain merge" `Quick test_cross_domain_merge ] );
      ( "reset",
        [ Alcotest.test_case "epoch reset" `Quick test_epoch_reset ] );
      ( "export",
        [ Alcotest.test_case "export shapes" `Quick test_export_shapes ] );
    ]
